// Package repro_test holds the benchmark harness: one testing.B benchmark
// per figure/sub-plot series of the paper's evaluation (Section 7), plus
// micro-benchmarks of the substrates. Run with:
//
//	go test -bench=. -benchmem
//
// Figure benchmarks measure per-request solver latency on workloads sampled
// exactly as in the corresponding experiment point; the reported reliability
// series themselves are produced by `go run ./cmd/experiments` (see
// EXPERIMENTS.md). Each benchmark pre-samples a pool of instances outside
// the timer so only solving is measured.
package repro_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/lp"
	"repro/internal/matching"
	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/workload"
)

// instancePool pre-builds augmentation instances for a configuration.
func instancePool(cfg workload.Config, fixedLen int, n int, seed int64) []*core.Instance {
	pool := make([]*core.Instance, n)
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		net := cfg.Network(rng)
		var req = cfg.Request(rng, i, net.Catalog().Size())
		if fixedLen > 0 {
			req = cfg.RequestWithLength(rng, i, fixedLen, net.Catalog().Size())
		}
		workload.PlacePrimariesRandom(net, req, rng)
		pool[i] = core.NewInstance(net, req, core.Params{L: cfg.HopBound})
	}
	return pool
}

const poolSize = 16

func benchSolver(b *testing.B, pool []*core.Instance, alg string) {
	sv, ok := core.Get(alg)
	if !ok {
		b.Fatalf("solver %q not registered", alg)
	}
	rng := rand.New(rand.NewSource(99))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sv.Solve(pool[i%len(pool)], rng); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 1: running time vs SFC length (sub-plot 1(c); the same sweep
// regenerates 1(a)/1(b) via cmd/experiments). ---

func BenchmarkFig1(b *testing.B) {
	for _, length := range []int{2, 8, 14, 20} {
		cfg := workload.NewDefaultConfig()
		pool := instancePool(cfg, length, poolSize, 1000+int64(length))
		for _, alg := range []string{"ILP", "Randomized", "Heuristic"} {
			b.Run(fmt.Sprintf("SFCLen%d/%s", length, alg), func(b *testing.B) {
				benchSolver(b, pool, alg)
			})
		}
	}
}

// --- Figure 2: running time vs function reliability (sub-plot 2(c)). ---

func BenchmarkFig2(b *testing.B) {
	for _, iv := range []struct{ lo, hi float64 }{{0.55, 0.65}, {0.85, 0.95}} {
		cfg := workload.NewDefaultConfig()
		cfg.ReliabilityMin, cfg.ReliabilityMax = iv.lo, iv.hi
		pool := instancePool(cfg, 0, poolSize, int64(2000+100*iv.lo))
		for _, alg := range []string{"ILP", "Randomized", "Heuristic"} {
			b.Run(fmt.Sprintf("Rel%02.0f/%s", iv.lo*100, alg), func(b *testing.B) {
				benchSolver(b, pool, alg)
			})
		}
	}
}

// --- Figure 3: running time vs residual capacity (sub-plot 3(c)). ---

func BenchmarkFig3(b *testing.B) {
	for _, frac := range []float64{1.0 / 16, 1.0 / 4, 1} {
		cfg := workload.NewDefaultConfig()
		cfg.ResidualFraction = frac
		pool := instancePool(cfg, 0, poolSize, int64(3000+1000*frac))
		for _, alg := range []string{"ILP", "Randomized", "Heuristic"} {
			b.Run(fmt.Sprintf("Residual%.4f/%s", frac, alg), func(b *testing.B) {
				benchSolver(b, pool, alg)
			})
		}
	}
}

// --- Ablation: hop bound l (DESIGN.md experiment index, Ablation A). ---

func BenchmarkAblationHops(b *testing.B) {
	for _, l := range []int{1, 2, 4} {
		cfg := workload.NewDefaultConfig()
		cfg.HopBound = l
		pool := instancePool(cfg, 0, poolSize, int64(4000+l))
		for _, alg := range []string{"ILP", "Heuristic"} {
			b.Run(fmt.Sprintf("L%d/%s", l, alg), func(b *testing.B) {
				benchSolver(b, pool, alg)
			})
		}
	}
}

// --- Ablation: ILP objective formulation (Ablation B). ---

func BenchmarkAblationObjective(b *testing.B) {
	cfg := workload.NewDefaultConfig()
	pool := instancePool(cfg, 8, poolSize, 5000)
	for _, obj := range []struct {
		name string
		o    core.Objective
	}{{"LogGain", core.ObjectiveLogGain}, {"PaperCost", core.ObjectivePaperCost}} {
		b.Run(obj.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.SolveILP(pool[i%len(pool)], core.ILPOptions{Objective: obj.o}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Substrate micro-benchmarks. ---

func BenchmarkSimplexAssignmentLP(b *testing.B) {
	build := func() *lp.Model {
		rng := rand.New(rand.NewSource(7))
		n := 12
		m := lp.NewModel(lp.Minimize)
		vars := make([][]int, n)
		for i := 0; i < n; i++ {
			vars[i] = make([]int, n)
			for j := 0; j < n; j++ {
				vars[i][j] = m.AddVar(0, 1, rng.Float64()*10, "x")
			}
		}
		for i := 0; i < n; i++ {
			var row, col []lp.Term
			for j := 0; j < n; j++ {
				row = append(row, lp.Term{Var: vars[i][j], Coeff: 1})
				col = append(col, lp.Term{Var: vars[j][i], Coeff: 1})
			}
			m.AddConstr(row, lp.EQ, 1, "r")
			m.AddConstr(col, lp.EQ, 1, "c")
		}
		return m
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := build().Solve(); s.Status != lp.Optimal {
			b.Fatalf("status %v", s.Status)
		}
	}
}

func BenchmarkHungarianMatching(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	var edges []matching.Edge
	nL, nR := 64, 16
	for l := 0; l < nL; l++ {
		for r := 0; r < nR; r++ {
			if rng.Float64() < 0.4 {
				edges = append(edges, matching.Edge{L: l, R: r, Cost: rng.Float64() * 5})
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matching.MinCostMax(nL, nR, edges)
	}
}

func BenchmarkWaxmanTopology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		topology.Waxman(topology.DefaultWaxman(100), rng)
	}
}

func BenchmarkInstanceConstruction(b *testing.B) {
	cfg := workload.NewDefaultConfig()
	rng := rand.New(rand.NewSource(21))
	net := cfg.Network(rng)
	req := cfg.RequestWithLength(rng, 0, 10, net.Catalog().Size())
	workload.PlacePrimariesRandom(net, req, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.NewInstance(net, req, core.Params{L: 1})
	}
}

// BenchmarkSweepPoint measures a full experiment point end-to-end (all three
// paper algorithms, one trial) — the unit of work cmd/experiments repeats.
func BenchmarkSweepPoint(b *testing.B) {
	opt := experiments.Options{Trials: 1, Seed: 7, Quiet: true, Solvers: experiments.PaperSolvers()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Trial engine: parallel scaling over one fixed Fig-1 point. ---

// benchmarkEngineWorkers runs the deterministic trial engine on the Figure 1
// SFC-length-8 point (all three paper solvers, 16 trials per iteration) with
// a fixed worker count, so `go test -bench Engine_Workers` tracks the
// parallel speedup the engine buys on this hardware.
func benchmarkEngineWorkers(b *testing.B, workers int) {
	cfg := workload.NewDefaultConfig()
	solvers := experiments.PaperSolvers()
	const trials = 16
	seed := func(t int) int64 { return 42*1_000_003 + 8*10_007 + int64(t) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := engine.Run(context.Background(), trials, workers, seed,
			func(t int, rng *rand.Rand) (float64, error) {
				net := cfg.Network(rng)
				req := cfg.RequestWithLength(rng, t, 8, net.Catalog().Size())
				workload.PlacePrimariesRandom(net, req, rng)
				inst := core.NewInstance(net, req, core.Params{L: cfg.HopBound})
				rel := 0.0
				for _, sv := range solvers {
					res, err := sv.Solve(inst, rng)
					if err != nil {
						return 0, err
					}
					rel = res.Reliability
				}
				return rel, nil
			})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngine_Workers1(b *testing.B) { benchmarkEngineWorkers(b, 1) }
func BenchmarkEngine_Workers4(b *testing.B) { benchmarkEngineWorkers(b, 4) }
func BenchmarkEngine_Workers8(b *testing.B) { benchmarkEngineWorkers(b, 8) }

// --- Observability: the instrumentation hot path. ---

// BenchmarkObsRegistry pins the cost of the solver wrapper's per-solve
// bookkeeping: a cached counter increment must stay in single-digit
// nanoseconds (budget: <100ns/op) so instrumenting every Solve is free
// relative to even the heuristic's microsecond-scale runtime. The lookup
// benchmarks quantify why the wrapper caches its metric handles instead of
// resolving them per call.
func BenchmarkObsRegistry(b *testing.B) {
	r := obs.NewRegistry()
	b.Run("counter-inc", func(b *testing.B) {
		c := r.Counter("bench_total")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("histogram-observe", func(b *testing.B) {
		h := r.Histogram("bench_seconds", obs.DurationBuckets)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i%1000) * 1e-5)
		}
	})
	b.Run("lookup-counter", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Counter("bench_lookup_total", "solver", "ILP").Inc()
		}
	})
}
