# Convenience targets for the SFC reliability-augmentation reproduction.

GO ?= go

.PHONY: all build vet fmt-check doc-check smoke-serve smoke-recover smoke-replay smoke-chaos smoke-tenants check test test-race test-failsoft test-log fuzz bench bench-lp bench-short bench-serve experiments figures clean

all: build check test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail if any file needs gofmt (prints the offending paths).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Every exported identifier in every package must carry a doc comment
# (stdlib-only AST linter, see cmd/doccheck).
doc-check:
	$(GO) run ./cmd/doccheck $(shell find ./internal ./cmd -type d | sort)

# Build the augmentation server and run its deterministic selftest: the
# in-process load generator replays one request stream at 1 and 8 solver
# workers and the placements must agree bit-for-bit with zero drops.
smoke-serve:
	$(GO) build ./cmd/augmentd
	$(GO) run ./cmd/augmentd -selftest -requests 128 -selftest-workers 1,8 -residual 1.0 -log-level warn

# Kill/restore durability check: one selftest pass prints its durable state
# line and SIGKILLs itself mid-process; a fresh process then boots from the
# surviving WAL and must print the identical state hash and placement count.
smoke-recover:
	@$(GO) build -o augmentd.smoke ./cmd/augmentd
	@rm -rf smoke_wal
	@./augmentd.smoke -selftest -kill -requests 128 -selftest-workers 1 -selftest-batchers 4 \
		-wal-dir smoke_wal -residual 1.0 -log-level warn | tee smoke_kill.txt
	@./augmentd.smoke -restore-only -wal-dir smoke_wal -residual 1.0 -log-level warn | tee smoke_restore.txt
	@k="$$(grep -o 'hash=[0-9a-f]* placed=[0-9]*' smoke_kill.txt | head -n 1)"; \
	r="$$(grep -o 'hash=[0-9a-f]* placed=[0-9]*' smoke_restore.txt | head -n 1)"; \
	if [ -z "$$k" ] || [ "$$k" != "$$r" ]; then \
		echo "smoke-recover FAILED: killed [$$k] restored [$$r]"; exit 1; \
	fi; echo "smoke-recover OK: $$k"
	@rm -rf smoke_wal smoke_kill.txt smoke_restore.txt augmentd.smoke

# Record/replay determinism check: one selftest pass records its request
# trace, then fresh services at every worker × batcher combination replay it
# and must reproduce the recorded run's final state hash and per-request
# placements bit-identically (verified against the trace's EOF trailer).
smoke-replay:
	@$(GO) build -o augmentd.replay ./cmd/augmentd
	@rm -f smoke_replay.trace
	@./augmentd.replay -selftest -requests 128 -selftest-workers 1 -selftest-batchers 1 \
		-record smoke_replay.trace -residual 1.0 -log-level warn
	@./augmentd.replay -replay smoke_replay.trace -selftest-workers 1,8 -selftest-batchers 1,4 \
		-residual 1.0 -log-level warn
	@rm -f smoke_replay.trace augmentd.replay

# Chaos drill: the selftest injects deterministic node outages (seeded
# MTBF/MTTR renewal schedule) between waves; the watchdog destroys hosted
# instances, raises alerts, and proactively re-augments every failed session.
# The run must agree bit-for-bit — placement log AND chaos log — across every
# worker × batcher combination, end with zero silent SLO violations, and its
# WAL replay must reproduce the final state including the down set. A second
# pass records the drill's trace (node transitions, reaug releases and sync
# re-admissions included) and replays it at other combinations.
smoke-chaos:
	@$(GO) build -o augmentd.chaos ./cmd/augmentd
	@rm -rf chaos_wal chaos.trace
	@./augmentd.chaos -selftest -chaos -chaos-mtbf 3 -chaos-mttr 2 -chaos-degraded 0.25 \
		-requests 96 -release-every 8 -selftest-workers 1,8 -selftest-batchers 1,4 \
		-wal-dir chaos_wal -residual 1.0 -log-level error 2>/dev/null
	@./augmentd.chaos -selftest -chaos -chaos-mtbf 3 -chaos-mttr 2 -chaos-degraded 0.25 \
		-requests 96 -release-every 8 -selftest-workers 1 -selftest-batchers 1 \
		-record chaos.trace -residual 1.0 -log-level error 2>/dev/null
	@./augmentd.chaos -replay chaos.trace -selftest-workers 1,8 -selftest-batchers 1,4 \
		-residual 1.0 -log-level error 2>/dev/null
	@rm -rf chaos_wal chaos.trace augmentd.chaos

# Multi-tenant admission-economics smoke: the augmentd selftest runs a
# two-tenant mix under fair queueing at 1 and 8 workers (placements AND
# queue decisions must agree bit-for-bit), then the dessim overload drill
# replays one 10x-overload request stream through fifo, fair, and knapsack
# admission and fails unless knapsack >= fair >= fifo holds on
# tenant-weighted log-gain.
smoke-tenants:
	$(GO) run ./cmd/augmentd -selftest -requests 96 -selftest-workers 1,8 \
		-tenants "gold:weight=4;free:weight=1,rate=2,burst=6" -admission fair \
		-tenant-mix "free:0.7,gold:0.3" -residual 1.0 \
		-alert-warn 0.000001 -alert-crit 0.000001 -log-level warn
	$(GO) run ./cmd/dessim -overload -log-level warn

# Static checks + the serving smoke test + the kill/restore check + the
# record/replay determinism check + the chaos self-healing drill + the
# admission-economics smoke.
check: vet fmt-check doc-check smoke-serve smoke-recover smoke-replay smoke-chaos smoke-tenants

test:
	$(GO) test ./...

# Race-detector pass over the concurrent paths (the trial engine, every
# harness built on it, the root-package benchmarks' shared pools, and the
# MVCC serving layer). The extra serve pass repeats the commit/release races
# with -count=2 so the scheduler reshuffles interleavings.
test-race:
	$(GO) test -race ./...
	$(GO) test -race -count=2 ./internal/serve/...
	$(GO) test -race -count=2 -run BitIdenticalAcrossWorkers ./internal/core/

# Resilience-layer tests under the race detector: the fail-soft engine
# (panic recovery, deadlines, deterministic retries), the solver fallback
# chains, and the fault-injected DES.
test-failsoft:
	$(GO) test -race -run 'Partial|FailSoft|Fallback|Fault|Exhaustion|Budget' \
		./internal/engine/ ./internal/core/ ./internal/des/

# Short fuzzing pass over the fallback chain (the pinned seed corpus in
# internal/core/testdata/fuzz always runs as part of plain `go test`).
fuzz:
	$(GO) test -run FuzzFallbackChain -fuzz FuzzFallbackChain -fuzztime 15s ./internal/core/

# Full test log, as referenced by EXPERIMENTS.md.
test-log:
	@mkdir -p results
	$(GO) test ./... 2>&1 | tee results/test_output.txt

# Benchmark run + parsed artifact + regression guard. BENCH_LABEL names the
# output JSON (BENCH_<label>.json); the run is then diffed against
# BENCH_BASE (per-benchmark table + per-family geomean speedups) and fails
# if any benchmark shared with the baseline got slower than
# BENCH_MAX_REGRESS×. The 1.75 default leaves headroom for the one known,
# intentional trade: the revised simplex keeps the small dense
# SimplexAssignmentLP microbench ~1.6x slower than PR 4's dense tableau in
# exchange for the ~10x win on the sparse Fig1 ILP family (see DESIGN.md
# §12). The proc guard fails fast when GOMAXPROCS < 2 (the pool-contention
# benchmark measures nothing single-threaded); `make bench-short` skips both.
BENCH_LABEL ?= local
BENCH_BASE ?= BENCH_pr4.json
BENCH_MAX_REGRESS ?= 1.75
bench:
	@$(GO) run ./cmd/benchdiff -guard
	@mkdir -p results
	$(GO) test -bench=. -benchmem -count=3 ./... 2>&1 | tee results/bench_output.txt
	$(GO) run ./cmd/benchdiff -parse results/bench_output.txt -label $(BENCH_LABEL) -out BENCH_$(BENCH_LABEL).json
	$(GO) run ./cmd/benchdiff -diff -max-regress $(BENCH_MAX_REGRESS) $(BENCH_BASE) BENCH_$(BENCH_LABEL).json

# Solver-only micro-benchmark loop for iterating on internal/lp and
# internal/ilp: the simplex, warm-start, and branch-and-bound hot paths
# (SimplexAssignmentLP, the Fig1 ILP family, the workspace pool) without the
# serve harness or -count repetition. -short lets the pool-contention
# benchmark skip itself on single-proc machines.
bench-lp:
	$(GO) test -short -bench 'SimplexAssignmentLP|Fig1|WorkspacePool' -benchmem . ./internal/lp/

# Single-proc-tolerant variant: contention benchmarks skip themselves.
bench-short:
	@mkdir -p results
	$(GO) test -short -bench=. -benchmem -count=3 ./... 2>&1 | tee results/bench_output.txt
	$(GO) run ./cmd/benchdiff -parse results/bench_output.txt -label $(BENCH_LABEL) -out BENCH_$(BENCH_LABEL).json

# Serving-throughput snapshot: the augmentd selftest prints a benchmark-style
# line per (workers, batchers) combination that benchdiff parses into
# BENCH_<label>.json (e.g. BENCH_pr6.json). The regime is the batcher-scaling
# load test — short chains, all-admit capacity, one-request batches, durable
# WAL with fsync-per-commit — so the printed "batcher scaling" ratio tracks
# the MVCC group-commit speedup of 4 batchers over 1.
# The selftest also records the first combination's request trace; a canned
# replay of that trace at 1 and 4 batchers then re-verifies bit-identity and
# contributes BenchmarkAugmentdReplay lines to the same parsed artifact, so
# benchdiff -diff guards the replay trajectory alongside serving throughput.
bench-serve:
	@rm -rf serve_bench_wal serve_bench.trace
	@mkdir -p results
	$(GO) run ./cmd/augmentd -selftest -requests 3000 -batch 1 \
		-selftest-workers 1 -selftest-batchers 1,4 -wal-dir serve_bench_wal \
		-aps 20 -cloudlets 0.5 -residual 1.0 -capacity-scale 25000 \
		-dup-every 0 -release-every 0 -rho 0.9 -chain-min 2 -chain-max 3 \
		-record serve_bench.trace -log-level warn | tee results/serve_bench.txt
	$(GO) run ./cmd/augmentd -replay serve_bench.trace -batch 1 \
		-selftest-workers 1 -selftest-batchers 1,4 \
		-aps 20 -cloudlets 0.5 -residual 1.0 -capacity-scale 25000 \
		-log-level warn | tee -a results/serve_bench.txt
	$(GO) run ./cmd/benchdiff -parse results/serve_bench.txt -label $(BENCH_LABEL) -out BENCH_$(BENCH_LABEL).json
	@rm -rf serve_bench_wal serve_bench.trace

# Reproduce every figure and ablation at the paper's trial count (slow).
experiments:
	$(GO) run ./cmd/experiments -fig all -trials 1000 -csvdir results

# Faster pass with tables, CSVs and SVG charts.
figures:
	$(GO) run ./cmd/experiments -fig all -trials 100 -csvdir results -svgdir results/svg

# Remove generated artifacts only; the committed tables under results/
# (results/*.csv, results/*.txt, results/svg) stay.
clean:
	rm -rf results/test_output.txt results/bench_output.txt results/serve_bench.txt \
		test_output.txt bench_output.txt serve_bench.txt \
		serve_bench_wal smoke_wal smoke_kill.txt smoke_restore.txt augmentd.smoke \
		serve_bench.trace smoke_replay.trace augmentd.replay \
		chaos_wal chaos.trace augmentd.chaos
