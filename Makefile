# Convenience targets for the SFC reliability-augmentation reproduction.

GO ?= go

.PHONY: all build vet fmt-check doc-check smoke-serve check test test-race test-failsoft fuzz bench bench-short bench-serve experiments figures clean

all: build check test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail if any file needs gofmt (prints the offending paths).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Every exported identifier in every package must carry a doc comment
# (stdlib-only AST linter, see cmd/doccheck).
doc-check:
	$(GO) run ./cmd/doccheck $(shell find ./internal ./cmd -type d | sort)

# Build the augmentation server and run its deterministic selftest: the
# in-process load generator replays one request stream at 1 and 8 solver
# workers and the placements must agree bit-for-bit with zero drops.
smoke-serve:
	$(GO) build ./cmd/augmentd
	$(GO) run ./cmd/augmentd -selftest -requests 128 -selftest-workers 1,8 -residual 1.0 -log-level warn

# Static checks + the serving smoke test.
check: vet fmt-check doc-check smoke-serve

test:
	$(GO) test ./...

# Race-detector pass over the concurrent paths (the trial engine, every
# harness built on it, and the root-package benchmarks' shared pools).
test-race:
	$(GO) test -race ./...

# Resilience-layer tests under the race detector: the fail-soft engine
# (panic recovery, deadlines, deterministic retries), the solver fallback
# chains, and the fault-injected DES.
test-failsoft:
	$(GO) test -race -run 'Partial|FailSoft|Fallback|Fault|Exhaustion|Budget' \
		./internal/engine/ ./internal/core/ ./internal/des/

# Short fuzzing pass over the fallback chain (the pinned seed corpus in
# internal/core/testdata/fuzz always runs as part of plain `go test`).
fuzz:
	$(GO) test -run FuzzFallbackChain -fuzz FuzzFallbackChain -fuzztime 15s ./internal/core/

# Full test log, as referenced by EXPERIMENTS.md.
test-log:
	$(GO) test ./... 2>&1 | tee test_output.txt

# Benchmark run + parsed artifact. BENCH_LABEL names the output JSON
# (BENCH_<label>.json); compare two runs with
#   go run ./cmd/benchdiff -diff BENCH_old.json BENCH_new.json
# The guard fails fast when GOMAXPROCS < 2 (the pool-contention benchmark
# measures nothing single-threaded); `make bench-short` skips both.
BENCH_LABEL ?= local
bench:
	@$(GO) run ./cmd/benchdiff -guard
	$(GO) test -bench=. -benchmem -count=3 ./... 2>&1 | tee bench_output.txt
	$(GO) run ./cmd/benchdiff -parse bench_output.txt -label $(BENCH_LABEL) -out BENCH_$(BENCH_LABEL).json

# Single-proc-tolerant variant: contention benchmarks skip themselves.
bench-short:
	$(GO) test -short -bench=. -benchmem -count=3 ./... 2>&1 | tee bench_output.txt
	$(GO) run ./cmd/benchdiff -parse bench_output.txt -label $(BENCH_LABEL) -out BENCH_$(BENCH_LABEL).json

# Serving-throughput snapshot: the augmentd selftest prints a benchmark-style
# line that benchdiff parses into BENCH_<label>.json (e.g. BENCH_pr5.json).
bench-serve:
	$(GO) run ./cmd/augmentd -selftest -requests 256 -selftest-workers 1,8 -residual 1.0 -log-level warn | tee serve_bench.txt
	$(GO) run ./cmd/benchdiff -parse serve_bench.txt -label $(BENCH_LABEL) -out BENCH_$(BENCH_LABEL).json

# Reproduce every figure and ablation at the paper's trial count (slow).
experiments:
	$(GO) run ./cmd/experiments -fig all -trials 1000 -csvdir results

# Faster pass with tables, CSVs and SVG charts.
figures:
	$(GO) run ./cmd/experiments -fig all -trials 100 -csvdir results -svgdir results/svg

clean:
	rm -rf results test_output.txt bench_output.txt serve_bench.txt
