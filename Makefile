# Convenience targets for the SFC reliability-augmentation reproduction.

GO ?= go

.PHONY: all build vet fmt-check check test test-race test-failsoft fuzz bench experiments figures clean

all: build check test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail if any file needs gofmt (prints the offending paths).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Static checks: vet + formatting.
check: vet fmt-check

test:
	$(GO) test ./...

# Race-detector pass over the concurrent paths (the trial engine and every
# harness built on it).
test-race:
	$(GO) test -race ./internal/...

# Resilience-layer tests under the race detector: the fail-soft engine
# (panic recovery, deadlines, deterministic retries), the solver fallback
# chains, and the fault-injected DES.
test-failsoft:
	$(GO) test -race -run 'Partial|FailSoft|Fallback|Fault|Exhaustion|Budget' \
		./internal/engine/ ./internal/core/ ./internal/des/

# Short fuzzing pass over the fallback chain (the pinned seed corpus in
# internal/core/testdata/fuzz always runs as part of plain `go test`).
fuzz:
	$(GO) test -run FuzzFallbackChain -fuzz FuzzFallbackChain -fuzztime 15s ./internal/core/

# Full test log, as referenced by EXPERIMENTS.md.
test-log:
	$(GO) test ./... 2>&1 | tee test_output.txt

bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Reproduce every figure and ablation at the paper's trial count (slow).
experiments:
	$(GO) run ./cmd/experiments -fig all -trials 1000 -csvdir results

# Faster pass with tables, CSVs and SVG charts.
figures:
	$(GO) run ./cmd/experiments -fig all -trials 100 -csvdir results -svgdir results/svg

clean:
	rm -rf results test_output.txt bench_output.txt
