// Command batchrun admits and augments a stream of requests against one MEC
// network, comparing ordering policies and solvers — the operator-facing
// batch mode built on internal/batch. The solver is any name registered in
// internal/core's solver registry (ILP, Randomized, Heuristic, Greedy, plus
// extensions); policy comparisons run in parallel on the deterministic trial
// engine, so -workers changes wall-clock only, never the table.
//
//	go run ./cmd/batchrun -n 40 -rho 0.995 -policy all -solver heuristic
//	go run ./cmd/batchrun -policy all -fail-soft   # a failing policy run becomes a failed row
//
// -seed fixes the sampled network and request stream, -residual its initial
// residual-capacity fraction, and -l the secondary placement hop bound.
// Shared observability flags: -obs-addr serves /metrics and pprof,
// -log-level sets the structured log level, -run-manifest writes a JSON run
// manifest, and -bnb-workers sets the parallel branch-and-bound workers per
// ILP solve (bit-identical for any value).
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mec"
	"repro/internal/obs"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 40, "number of requests in the batch")
	rho := flag.Float64("rho", 0.995, "reliability expectation per request")
	seed := flag.Int64("seed", 1, "RNG seed")
	residual := flag.Float64("residual", 0.5, "initial residual capacity fraction")
	l := flag.Int("l", 1, "hop bound for secondary placement")
	solver := flag.String("solver", "heuristic", "registered solver name: "+strings.Join(core.Names(), ", "))
	policy := flag.String("policy", "all", "arrival, neediest, shortest, all")
	workers := flag.Int("workers", 0, "parallel policy-run workers (<=0: GOMAXPROCS)")
	failSoft := flag.Bool("fail-soft", false, "report a failed policy run as a failed row instead of aborting the comparison")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/vars, /debug/pprof/ on this address (e.g. :9090 or :0; empty: off)")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	manifestPath := flag.String("run-manifest", "", "write a JSON run manifest to this path")
	bnbWorkers := flag.Int("bnb-workers", 1, "parallel branch-and-bound component workers per ILP solve (results are bit-identical for any value)")
	flag.Parse()
	core.SetDefaultBnBWorkers(*bnbWorkers)

	srv, err := obs.Boot(*logLevel, *obsAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if srv != nil {
		defer srv.Close()
	}

	sv, ok := core.Get(*solver)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown -solver %q (registered: %s)\n", *solver, strings.Join(core.Names(), ", "))
		os.Exit(2)
	}
	policies := map[string]batch.Policy{
		"arrival":  batch.Arrival,
		"neediest": batch.NeediestFirst,
		"shortest": batch.ShortestFirst,
	}
	var runPolicies []string
	if strings.ToLower(*policy) == "all" {
		runPolicies = []string{"arrival", "neediest", "shortest"}
	} else {
		if _, ok := policies[strings.ToLower(*policy)]; !ok {
			fmt.Fprintf(os.Stderr, "unknown -policy %q\n", *policy)
			os.Exit(2)
		}
		runPolicies = []string{strings.ToLower(*policy)}
	}

	// Every policy sees an identical fresh world (same seed), so the rows
	// compare apples to apples; the runs are independent, so they fan out on
	// the engine.
	tag := fmt.Sprintf("seed=%d solver=%s policies=%s", *seed, sv.Name(), strings.Join(runPolicies, ","))
	seeder := func(int) int64 { return *seed }
	policyRun := func(i int, rng *rand.Rand) (*batch.Summary, error) {
		cfg := workload.NewDefaultConfig()
		cfg.ResidualFraction = *residual
		cfg.Expectation = *rho
		net := cfg.Network(rng)
		var reqs []*mec.Request
		for j := 0; j < *n; j++ {
			reqs = append(reqs, cfg.Request(rng, j, net.Catalog().Size()))
		}
		return batch.Run(net, reqs, rng, batch.Options{
			Solver: sv, Policy: policies[runPolicies[i]], L: *l, RandomPrimaries: true,
		})
	}
	var (
		sums     []*batch.Summary
		failures []engine.TrialError
	)
	if *failSoft {
		sums, failures, err = engine.RunPartial(context.Background(), len(runPolicies), *workers,
			seeder, policyRun, engine.FailSoftOptions{Tag: tag})
	} else {
		sums, err = engine.RunTagged(context.Background(), tag, len(runPolicies), *workers, seeder, policyRun)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "batchrun: %v\n", err)
		os.Exit(1)
	}
	failed := make(map[int]engine.TrialError, len(failures))
	for _, f := range failures {
		failed[f.Trial] = f
	}

	var manifest *obs.Manifest
	if *manifestPath != "" {
		manifest = obs.NewManifest("batchrun")
		manifest.Seed = *seed
		manifest.Workers = *workers
		manifest.Solvers = []string{sv.Name()}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "policy\tadmitted\tmet ρ\tmet rate\tmean reliability\tresidual left (MHz)")
	for i, pname := range runPolicies {
		sum := sums[i]
		if f, ok := failed[i]; ok || sum == nil {
			fmt.Fprintf(w, "%s\tfailed\t-\t-\t-\t-\n", pname)
			manifest.Add(obs.RunRecord{
				Name: "batch", Policy: pname, Solver: sv.Name(), Seed: *seed,
				Trials: *n, Outcome: "failed", Detail: f.Error(),
			})
			continue
		}
		metRate := 0.0
		if sum.Admitted > 0 {
			metRate = float64(sum.Met) / float64(sum.Admitted)
		}
		fmt.Fprintf(w, "%s\t%d/%d\t%d\t%.2f\t%.4f\t%.0f\n",
			pname, sum.Admitted, *n, sum.Met, metRate, sum.MeanReliability, sum.ResidualLeft)
		manifest.Add(obs.RunRecord{
			Name: "batch", Policy: pname, Solver: sv.Name(), Seed: *seed,
			Trials: *n, Outcome: "ok",
			Detail: fmt.Sprintf("admitted=%d met=%d mean_reliability=%.4f", sum.Admitted, sum.Met, sum.MeanReliability),
		})
	}
	w.Flush()
	if manifest != nil {
		if err := manifest.WriteFile(*manifestPath, obs.Default()); err != nil {
			fmt.Fprintf(os.Stderr, "run-manifest: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *manifestPath)
	}
}
