// Command batchrun admits and augments a stream of requests against one MEC
// network, comparing ordering policies and solvers — the operator-facing
// batch mode built on internal/batch.
//
//	go run ./cmd/batchrun -n 40 -rho 0.995 -policy all -solver heuristic
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/batch"
	"repro/internal/mec"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 40, "number of requests in the batch")
	rho := flag.Float64("rho", 0.995, "reliability expectation per request")
	seed := flag.Int64("seed", 1, "RNG seed")
	residual := flag.Float64("residual", 0.5, "initial residual capacity fraction")
	l := flag.Int("l", 1, "hop bound for secondary placement")
	solver := flag.String("solver", "heuristic", "heuristic, ilp, greedy")
	policy := flag.String("policy", "all", "arrival, neediest, shortest, all")
	flag.Parse()

	solvers := map[string]batch.Solver{"heuristic": batch.Heuristic, "ilp": batch.ILP, "greedy": batch.Greedy}
	sv, ok := solvers[strings.ToLower(*solver)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown -solver %q\n", *solver)
		os.Exit(2)
	}
	policies := map[string]batch.Policy{
		"arrival":  batch.Arrival,
		"neediest": batch.NeediestFirst,
		"shortest": batch.ShortestFirst,
	}
	var runPolicies []string
	if strings.ToLower(*policy) == "all" {
		runPolicies = []string{"arrival", "neediest", "shortest"}
	} else {
		if _, ok := policies[strings.ToLower(*policy)]; !ok {
			fmt.Fprintf(os.Stderr, "unknown -policy %q\n", *policy)
			os.Exit(2)
		}
		runPolicies = []string{strings.ToLower(*policy)}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "policy\tadmitted\tmet ρ\tmet rate\tmean reliability\tresidual left (MHz)")
	for _, pname := range runPolicies {
		// Fresh world per policy so comparisons are apples-to-apples.
		rng := rand.New(rand.NewSource(*seed))
		cfg := workload.NewDefaultConfig()
		cfg.ResidualFraction = *residual
		cfg.Expectation = *rho
		net := cfg.Network(rng)
		var reqs []*mec.Request
		for i := 0; i < *n; i++ {
			reqs = append(reqs, cfg.Request(rng, i, net.Catalog().Size()))
		}
		sum, err := batch.Run(net, reqs, rng, batch.Options{
			Solver: sv, Policy: policies[pname], L: *l, RandomPrimaries: true,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", pname, err)
			os.Exit(1)
		}
		metRate := 0.0
		if sum.Admitted > 0 {
			metRate = float64(sum.Met) / float64(sum.Admitted)
		}
		fmt.Fprintf(w, "%s\t%d/%d\t%d\t%.2f\t%.4f\t%.0f\n",
			pname, sum.Admitted, *n, sum.Met, metRate, sum.MeanReliability, sum.ResidualLeft)
	}
	w.Flush()
}
