// Command dessim runs the dynamic-arrival discrete-event simulation: Poisson
// request arrivals, exponential holding times, admission + reliability
// augmentation + capacity commitment per session, release on departure.
//
//	go run ./cmd/dessim -rate 1.0 -hold 20 -horizon 500 -sweep
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	"repro/internal/des"
	"repro/internal/obs"
	"repro/internal/workload"
)

func main() {
	rate := flag.Float64("rate", 0.5, "arrival rate λ (requests per time unit)")
	hold := flag.Float64("hold", 10, "mean session duration 1/μ")
	horizon := flag.Float64("horizon", 500, "simulated time span")
	warmup := flag.Float64("warmup", 50, "warmup period excluded from metrics")
	rho := flag.Float64("rho", 0.99, "reliability expectation per request")
	seed := flag.Int64("seed", 1, "RNG seed")
	ilp := flag.Bool("ilp", false, "use the exact ILP instead of the heuristic")
	sweep := flag.Bool("sweep", false, "sweep the arrival rate ×{0.25,0.5,1,2,4}")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/vars, /debug/pprof/ on this address (e.g. :9090 or :0; empty: off)")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	manifestPath := flag.String("run-manifest", "", "write a JSON run manifest to this path")
	flag.Parse()

	srv, err := obs.Boot(*logLevel, *obsAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if srv != nil {
		defer srv.Close()
	}

	var manifest *obs.Manifest
	if *manifestPath != "" {
		manifest = obs.NewManifest("dessim")
		manifest.Seed = *seed
	}

	wl := workload.NewDefaultConfig()
	wl.Expectation = *rho

	rates := []float64{*rate}
	if *sweep {
		rates = []float64{*rate * 0.25, *rate * 0.5, *rate, *rate * 2, *rate * 4}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "rate\tarrivals\tblocked\tblocking\tmet rate\tmean reliability\tutilization\tmean active")
	for _, r := range rates {
		cfg := des.Config{
			ArrivalRate: r,
			MeanHold:    *hold,
			Horizon:     *horizon,
			Warmup:      *warmup,
			Workload:    wl,
			UseILP:      *ilp,
		}
		m, err := des.Run(cfg, rand.New(rand.NewSource(*seed)))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "%.2f\t%d\t%d\t%.3f\t%.3f\t%.4f\t%.3f\t%.1f\n",
			r, m.Arrivals, m.Blocked, m.BlockingProbability, m.MetRate,
			m.MeanReliability, m.MeanUtilization, m.MeanActive)
		solverName := "Heuristic"
		if *ilp {
			solverName = "ILP"
		}
		manifest.Add(obs.RunRecord{
			Name: "dessim", Label: fmt.Sprintf("rate=%.2f", r), X: r,
			Solver: solverName, Seed: *seed, Trials: m.Arrivals, Outcome: "ok",
			Detail: fmt.Sprintf("blocking=%.3f met_rate=%.3f utilization=%.3f",
				m.BlockingProbability, m.MetRate, m.MeanUtilization),
		})
	}
	w.Flush()
	if manifest != nil {
		if err := manifest.WriteFile(*manifestPath, obs.Default()); err != nil {
			fmt.Fprintln(os.Stderr, "run-manifest:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *manifestPath)
	}
}
