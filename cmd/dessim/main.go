// Command dessim runs the dynamic-arrival discrete-event simulation: Poisson
// request arrivals, exponential holding times, admission + reliability
// augmentation + capacity commitment per session, release on departure.
//
//	go run ./cmd/dessim -rate 1.0 -hold 20 -horizon 500 -sweep
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	"repro/internal/des"
	"repro/internal/workload"
)

func main() {
	rate := flag.Float64("rate", 0.5, "arrival rate λ (requests per time unit)")
	hold := flag.Float64("hold", 10, "mean session duration 1/μ")
	horizon := flag.Float64("horizon", 500, "simulated time span")
	warmup := flag.Float64("warmup", 50, "warmup period excluded from metrics")
	rho := flag.Float64("rho", 0.99, "reliability expectation per request")
	seed := flag.Int64("seed", 1, "RNG seed")
	ilp := flag.Bool("ilp", false, "use the exact ILP instead of the heuristic")
	sweep := flag.Bool("sweep", false, "sweep the arrival rate ×{0.25,0.5,1,2,4}")
	flag.Parse()

	wl := workload.NewDefaultConfig()
	wl.Expectation = *rho

	rates := []float64{*rate}
	if *sweep {
		rates = []float64{*rate * 0.25, *rate * 0.5, *rate, *rate * 2, *rate * 4}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "rate\tarrivals\tblocked\tblocking\tmet rate\tmean reliability\tutilization\tmean active")
	for _, r := range rates {
		cfg := des.Config{
			ArrivalRate: r,
			MeanHold:    *hold,
			Horizon:     *horizon,
			Warmup:      *warmup,
			Workload:    wl,
			UseILP:      *ilp,
		}
		m, err := des.Run(cfg, rand.New(rand.NewSource(*seed)))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "%.2f\t%d\t%d\t%.3f\t%.3f\t%.4f\t%.3f\t%.1f\n",
			r, m.Arrivals, m.Blocked, m.BlockingProbability, m.MetRate,
			m.MeanReliability, m.MeanUtilization, m.MeanActive)
	}
	w.Flush()
}
