// Command dessim runs the dynamic-arrival discrete-event simulation: Poisson
// request arrivals, exponential holding times, admission + reliability
// augmentation + capacity commitment per session, release on departure.
// Every solve goes through a fallback chain ([ILP →] Heuristic → Greedy);
// -faults adds seeded cloudlet crash/repair injection with re-augmentation
// of the affected sessions.
//
//	go run ./cmd/dessim -rate 1.0 -hold 20 -horizon 500 -sweep
//	go run ./cmd/dessim -faults -mean-up 100 -mean-down 10
//	go run ./cmd/dessim -ilp -ilp-budget 50ms -faults
//	go run ./cmd/dessim -overload
//
// -rho sets the per-request reliability expectation, -seed the RNG seed,
// and -warmup the initial span excluded from metrics.
//
// -overload runs the multi-tenant admission-economics drill instead of the
// DES: the same 10x-overload request stream (-overload-requests, default
// 640) is replayed through fifo, fair, and knapsack admission on an
// in-process serving stack — a flooding quota-limited low-weight tenant
// against a minority high-weight one — and the run prints per-policy
// admissions, denials, sheds, and per-tenant p99 latency, then exits
// non-zero unless knapsack >= fair >= fifo holds on tenant-weighted
// log-gain (see `make smoke-tenants`).
//
// Shared observability flags: -obs-addr serves /metrics and pprof,
// -log-level sets the structured log level, -run-manifest writes a JSON run
// manifest, and -bnb-workers sets the parallel branch-and-bound workers per
// ILP solve (bit-identical for any value).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/obs"
	"repro/internal/workload"
)

func main() {
	rate := flag.Float64("rate", 0.5, "arrival rate λ (requests per time unit)")
	hold := flag.Float64("hold", 10, "mean session duration 1/μ")
	horizon := flag.Float64("horizon", 500, "simulated time span")
	warmup := flag.Float64("warmup", 50, "warmup period excluded from metrics")
	rho := flag.Float64("rho", 0.99, "reliability expectation per request")
	seed := flag.Int64("seed", 1, "RNG seed")
	ilp := flag.Bool("ilp", false, "put the exact ILP at the head of the fallback chain (then heuristic, then greedy)")
	ilpBudget := flag.Duration("ilp-budget", 0, "wall-clock budget per ILP solve (0: unbounded); past it the solve degrades down the chain")
	faults := flag.Bool("faults", false, "inject seeded cloudlet crash/repair events")
	meanUp := flag.Float64("mean-up", 100, "mean time between a cloudlet's repair and its next crash (MTBF, -faults)")
	meanDown := flag.Float64("mean-down", 10, "mean cloudlet repair duration (MTTR, -faults)")
	sweep := flag.Bool("sweep", false, "sweep the arrival rate ×{0.25,0.5,1,2,4}")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/vars, /debug/pprof/ on this address (e.g. :9090 or :0; empty: off)")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	manifestPath := flag.String("run-manifest", "", "write a JSON run manifest to this path")
	bnbWorkers := flag.Int("bnb-workers", 1, "parallel branch-and-bound component workers per ILP solve (results are bit-identical for any value)")
	overload := flag.Bool("overload", false, "run the multi-tenant overload scenario instead of the DES: the same 10x request stream through fifo, fair, and knapsack admission, compared on tenant-weighted log-gain")
	overloadRequests := flag.Int("overload-requests", 0, "overload scenario request count (0: default 640)")
	flag.Parse()
	core.SetDefaultBnBWorkers(*bnbWorkers)

	srv, err := obs.Boot(*logLevel, *obsAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if srv != nil {
		defer srv.Close()
	}

	if *overload {
		code := runOverload(*seed, *overloadRequests)
		if srv != nil {
			srv.Close()
		}
		os.Exit(code)
	}

	var manifest *obs.Manifest
	if *manifestPath != "" {
		manifest = obs.NewManifest("dessim")
		manifest.Seed = *seed
	}

	wl := workload.NewDefaultConfig()
	wl.Expectation = *rho

	rates := []float64{*rate}
	if *sweep {
		rates = []float64{*rate * 0.25, *rate * 0.5, *rate, *rate * 2, *rate * 4}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header := "rate\tarrivals\tblocked\tblocking\tmet rate\tmean reliability\tutilization\tmean active"
	if *faults {
		header += "\tcrashes\treaug ok/fail\tdropped\tSLO-viol time"
	}
	fmt.Fprintln(w, header)
	solverName := "Heuristic+Greedy"
	if *ilp {
		solverName = "ILP+Heuristic+Greedy"
	}
	for _, r := range rates {
		cfg := des.Config{
			ArrivalRate: r,
			MeanHold:    *hold,
			Horizon:     *horizon,
			Warmup:      *warmup,
			Workload:    wl,
			UseILP:      *ilp,
			ILPBudget:   *ilpBudget,
			Faults:      des.FaultConfig{Enabled: *faults, MeanUp: *meanUp, MeanDown: *meanDown},
		}
		m, err := des.Run(cfg, rand.New(rand.NewSource(*seed)))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		row := fmt.Sprintf("%.2f\t%d\t%d\t%.3f\t%.3f\t%.4f\t%.3f\t%.1f",
			r, m.Arrivals, m.Blocked, m.BlockingProbability, m.MetRate,
			m.MeanReliability, m.MeanUtilization, m.MeanActive)
		if *faults {
			row += fmt.Sprintf("\t%d\t%d/%d\t%d\t%.1f",
				m.Crashes, m.Reaugmented, m.ReaugFailed, m.DroppedSessions, m.SLOViolationTime)
		}
		fmt.Fprintln(w, row)
		detail := fmt.Sprintf("blocking=%.3f met_rate=%.3f utilization=%.3f",
			m.BlockingProbability, m.MetRate, m.MeanUtilization)
		if *faults {
			detail += fmt.Sprintf(" crashes=%d reaug=%d dropped=%d slo_viol=%.1f",
				m.Crashes, m.Reaugmented, m.DroppedSessions, m.SLOViolationTime)
		}
		manifest.Add(obs.RunRecord{
			Name: "dessim", Label: fmt.Sprintf("rate=%.2f", r), X: r,
			Solver: solverName, Seed: *seed, Trials: m.Arrivals, Outcome: "ok",
			Detail: detail,
		})
		if len(m.ServedByStage) > 1 {
			fmt.Fprintf(os.Stderr, "rate %.2f served by stage: %v\n", r, m.ServedByStage)
		}
	}
	w.Flush()
	if manifest != nil {
		if err := manifest.WriteFile(*manifestPath, obs.Default()); err != nil {
			fmt.Fprintln(os.Stderr, "run-manifest:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *manifestPath)
	}
}
