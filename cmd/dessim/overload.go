package main

import (
	"fmt"
	"math"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/admission"
	"repro/internal/graph"
	"repro/internal/mec"
	"repro/internal/serve"
	"repro/internal/serve/loadgen"
)

// overloadTenants is the two-class economy the overload scenario stresses: a
// flooding low-weight "free" tenant throttled by a token bucket, and a
// minority high-weight "gold" tenant that the fair and knapsack disciplines
// are supposed to protect. Weights feed both DRR quanta and knapsack values.
var overloadTenants = []admission.Tenant{
	{Name: "gold", Weight: 8},
	{Name: "free", Weight: 1, Rate: 0.5, Burst: 8},
}

// overloadNetwork is a small 6-cloudlet mesh sized so the generated stream
// saturates it quickly: total capacity is an order of magnitude below what
// the offered load demands, which is the point of the drill.
func overloadNetwork() *mec.Network {
	g := graph.New(6)
	for i := 0; i < 6; i++ {
		g.AddEdge(i, (i+1)%6)
	}
	g.AddEdge(0, 3)
	g.AddEdge(1, 4)
	g.AddEdge(2, 5)
	cat := mec.NewCatalog([]mec.FunctionType{
		{Name: "fw", Demand: 10, Reliability: 0.96},
		{Name: "nat", Demand: 15, Reliability: 0.92},
		{Name: "ids", Demand: 20, Reliability: 0.90},
	})
	return mec.NewNetwork(g, []float64{150, 150, 150, 150, 150, 150}, cat)
}

// overloadRun is one policy's measured outcome in the overload comparison.
type overloadRun struct {
	policy   string
	res      *loadgen.Result
	stats    serve.TenantsResponse
	gain     float64 // Σ tenant weight × log-gain (the admission objective)
	byTenant map[string]tenantOutcome
}

// tenantOutcome aggregates one tenant's view of a run.
type tenantOutcome struct {
	admitted int64
	denied   int64 // quota + queue-full + shed
	p99      time.Duration
}

// runOverload replays the same 10x-overload request stream through three
// fresh services — one per admission discipline — and compares the economics.
// It returns a non-zero exit code when the expected dominance order
// knapsack ≥ fair ≥ fifo on tenant-weighted log-gain does not hold.
func runOverload(seed int64, requests int) int {
	if requests <= 0 {
		requests = 640
	}
	cfg := loadgen.Config{
		Seed:         seed,
		Requests:     requests,
		WaveSize:     64, // 4× the queue bound: every wave overflows admission
		ChainLenMin:  1,
		ChainLenMax:  3,
		Expectation:  0.95,
		ReleaseEvery: 6,
		TenantMix: []loadgen.TenantShare{
			{Name: "free", Share: 0.85},
			{Name: "gold", Share: 0.15},
		},
	}

	runs := make([]overloadRun, 0, 3)
	for _, policy := range []string{serve.AdmissionFIFO, serve.AdmissionFair, serve.AdmissionKnapsack} {
		svc, err := serve.New(overloadNetwork(), serve.Options{
			Workers:           2,
			Seed:              seed,
			QueueDepth:        16,
			BatchSize:         8,
			BatchWait:         time.Millisecond,
			Tenants:           overloadTenants,
			Admission:         policy,
			ScarcityWatermark: 0.5,
			// Session reliability alerting is the watchdog's concern, not this
			// drill's; park the thresholds so a deliberately starved network
			// does not flood the log with CRIT lines.
			AlertWarnFactor: 1e-9,
			AlertCritFactor: 1e-9,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "overload: %s: %v\n", policy, err)
			return 2
		}
		res, err := loadgen.Run(svc, cfg)
		stats := svc.TenantStats()
		svc.Drain()
		if err != nil {
			fmt.Fprintf(os.Stderr, "overload: %s: %v\n", policy, err)
			return 2
		}
		runs = append(runs, summarizeOverload(policy, res, stats))
	}

	printOverload(runs)

	// The dominance check: each richer discipline must do at least as well on
	// the weighted objective as the one it subsumes. A tiny relative epsilon
	// absorbs float summation noise, nothing more.
	ok := true
	for i := 1; i < len(runs); i++ {
		eps := 1e-9 * math.Abs(runs[i-1].gain)
		if runs[i].gain < runs[i-1].gain-eps {
			fmt.Fprintf(os.Stderr, "overload: FAIL %s weighted log-gain %.4f < %s %.4f\n",
				runs[i].policy, runs[i].gain, runs[i-1].policy, runs[i-1].gain)
			ok = false
		}
	}
	if !ok {
		return 1
	}
	fmt.Printf("overload: OK knapsack(%.4f) >= fair(%.4f) >= fifo(%.4f) on tenant-weighted log-gain\n",
		runs[2].gain, runs[1].gain, runs[0].gain)
	return 0
}

// summarizeOverload folds a run's records and tenant stats into table rows.
func summarizeOverload(policy string, res *loadgen.Result, stats serve.TenantsResponse) overloadRun {
	run := overloadRun{policy: policy, res: res, stats: stats, byTenant: map[string]tenantOutcome{}}
	lat := map[string][]time.Duration{}
	for _, rec := range res.Records {
		if rec.Latency > 0 && rec.Status == 200 {
			lat[rec.Tenant] = append(lat[rec.Tenant], rec.Latency)
		}
	}
	for _, row := range stats.Tenants {
		run.gain += row.WeightedLogGain
		run.byTenant[row.Name] = tenantOutcome{
			admitted: row.Admitted,
			denied:   row.RejectedQuota + row.RejectedQueue + row.Shed,
			p99:      quantile99(lat[row.Name]),
		}
	}
	return run
}

// quantile99 is the exact p99 of the sample (zero for an empty one).
func quantile99(d []time.Duration) time.Duration {
	if len(d) == 0 {
		return 0
	}
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	idx := int(math.Ceil(0.99*float64(len(d)))) - 1
	if idx < 0 {
		idx = 0
	}
	return d[idx]
}

// printOverload renders the comparison table.
func printOverload(runs []overloadRun) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "policy\tadmitted\tquota\tqueue\tshed\tw-log-gain\tgold-adm\tgold-p99\tfree-adm\tfree-p99")
	for _, r := range runs {
		gold, free := r.byTenant["gold"], r.byTenant["free"]
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.4f\t%d\t%s\t%d\t%s\n",
			r.policy, r.res.Admitted, r.res.Quota, r.res.Rejected-r.res.Quota, r.res.Shed,
			r.gain, gold.admitted, gold.p99.Round(time.Microsecond),
			free.admitted, free.p99.Round(time.Microsecond))
	}
	w.Flush()
}
