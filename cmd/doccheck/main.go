// Command doccheck reports exported identifiers that lack doc comments.
//
//	go run ./cmd/doccheck ./internal/core ./internal/engine
//
// Each argument is a package directory; non-test .go files are parsed with
// go/parser (no type checking, no external tooling) and every exported
// top-level declaration — funcs, methods on exported receivers, types, and
// exported const/var specs — must carry a doc comment on the declaration or
// the spec. Findings print as file:line: name, and the exit status is 1 when
// anything is missing, so `make doc-check` can gate on it.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir> [<package-dir> ...]")
		os.Exit(2)
	}
	var findings []string
	for _, dir := range os.Args[1:] {
		f, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, f...)
	}
	sort.Strings(findings)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifiers without doc comments\n", len(findings))
		os.Exit(1)
	}
}

// checkDir parses every non-test .go file in dir and returns one finding per
// undocumented exported identifier.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []string
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: %s", filepath.ToSlash(p.Filename), p.Line, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				checkDecl(decl, report)
			}
		}
	}
	return findings, nil
}

// checkDecl reports the undocumented exported names a top-level declaration
// introduces.
func checkDecl(decl ast.Decl, report func(token.Pos, string)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return
		}
		name := d.Name.Name
		if recv := receiverType(d); recv != "" {
			if !ast.IsExported(recv) {
				return // method on an unexported type: not in godoc
			}
			name = recv + "." + name
		}
		report(d.Pos(), name)
	case *ast.GenDecl:
		// A doc comment on the grouped decl covers single-spec groups; specs
		// inside a multi-spec block each need their own (or the block's).
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if sp.Name.IsExported() && sp.Doc == nil && d.Doc == nil {
					report(sp.Pos(), sp.Name.Name)
				}
			case *ast.ValueSpec:
				covered := sp.Doc != nil || sp.Comment != nil ||
					(d.Doc != nil && len(d.Specs) == 1) ||
					(d.Doc != nil && d.Lparen.IsValid())
				if covered {
					continue
				}
				for _, n := range sp.Names {
					if n.IsExported() {
						report(n.Pos(), n.Name)
					}
				}
			}
		}
	}
}

// receiverType returns the bare receiver type name of a method, or "".
func receiverType(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
