// Command doccheck reports exported identifiers that lack doc comments and
// command packages whose documentation does not cover their flags.
//
//	go run ./cmd/doccheck ./internal/core ./internal/engine ./cmd/augmentd
//
// Each argument is a package directory; non-test .go files are parsed with
// go/parser (no type checking, no external tooling) and every exported
// top-level declaration — funcs, methods on exported receivers, types, and
// exported const/var specs — must carry a doc comment on the declaration or
// the spec. Packages named main are additionally held to the command
// contract: the package must carry a doc comment, and every flag the package
// registers through the flag package (flag.String, flag.Bool, flag.Int,
// flag.Int64, flag.Float64, flag.Duration) must be mentioned in that comment
// as -name, so `go doc ./cmd/<tool>` is a complete usage reference. Findings
// print as file:line: name, and the exit status is 1 when anything is
// missing, so `make doc-check` can gate on it. doccheck takes no flags of
// its own.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir> [<package-dir> ...]")
		os.Exit(2)
	}
	var findings []string
	for _, dir := range os.Args[1:] {
		f, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, f...)
	}
	sort.Strings(findings)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d documentation findings\n", len(findings))
		os.Exit(1)
	}
}

// checkDir parses every non-test .go file in dir and returns one finding per
// undocumented exported identifier.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []string
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: %s", filepath.ToSlash(p.Filename), p.Line, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				checkDecl(decl, report)
			}
		}
		if pkg.Name == "main" {
			checkCommandDoc(pkg, report)
		}
	}
	return findings, nil
}

// flagConstructors are the flag-package registration funcs whose first
// argument is the flag name.
var flagConstructors = map[string]bool{
	"String": true, "Bool": true, "Int": true, "Int64": true,
	"Float64": true, "Duration": true,
}

// checkCommandDoc enforces the command contract on a main package: a package
// doc comment must exist and mention every registered flag as -name.
func checkCommandDoc(pkg *ast.Package, report func(token.Pos, string)) {
	names := make([]string, 0, len(pkg.Files))
	for name := range pkg.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	var doc strings.Builder
	for _, name := range names {
		if d := pkg.Files[name].Doc; d != nil {
			doc.WriteString(d.Text())
		}
	}
	if doc.Len() == 0 {
		report(pkg.Files[names[0]].Package, "package "+pkg.Name+" (no package doc comment on a command)")
		return
	}
	text := doc.String()
	for _, name := range names {
		ast.Inspect(pkg.Files[name], func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !flagConstructors[sel.Sel.Name] {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "flag" {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			flagName, err := strconv.Unquote(lit.Value)
			if err != nil || flagName == "" {
				return true
			}
			if !mentionsFlag(text, flagName) {
				report(lit.Pos(), "-"+flagName+" (flag not mentioned in the package doc comment)")
			}
			return true
		})
	}
}

// mentionsFlag reports whether doc contains -name as a standalone token
// (so -requests is not satisfied by a mention of -overload-requests).
func mentionsFlag(doc, name string) bool {
	needle := "-" + name
	for i := 0; ; {
		j := strings.Index(doc[i:], needle)
		if j < 0 {
			return false
		}
		j += i
		before := byte(' ')
		if j > 0 {
			before = doc[j-1]
		}
		after := byte(' ')
		if k := j + len(needle); k < len(doc) {
			after = doc[k]
		}
		if !isFlagWordByte(before) && !isFlagWordByte(after) && after != '-' && before != '-' {
			return true
		}
		i = j + 1
	}
}

// isFlagWordByte reports whether b could extend a flag name.
func isFlagWordByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}

// checkDecl reports the undocumented exported names a top-level declaration
// introduces.
func checkDecl(decl ast.Decl, report func(token.Pos, string)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return
		}
		name := d.Name.Name
		if recv := receiverType(d); recv != "" {
			if !ast.IsExported(recv) {
				return // method on an unexported type: not in godoc
			}
			name = recv + "." + name
		}
		report(d.Pos(), name)
	case *ast.GenDecl:
		// A doc comment on the grouped decl covers single-spec groups; specs
		// inside a multi-spec block each need their own (or the block's).
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if sp.Name.IsExported() && sp.Doc == nil && d.Doc == nil {
					report(sp.Pos(), sp.Name.Name)
				}
			case *ast.ValueSpec:
				covered := sp.Doc != nil || sp.Comment != nil ||
					(d.Doc != nil && len(d.Specs) == 1) ||
					(d.Doc != nil && d.Lparen.IsValid())
				if covered {
					continue
				}
				for _, n := range sp.Names {
					if n.IsExported() {
						report(n.Pos(), n.Name)
					}
				}
			}
		}
	}
}

// receiverType returns the bare receiver type name of a method, or "".
func receiverType(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
