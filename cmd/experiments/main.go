// Command experiments reproduces the evaluation of the paper (Section 7):
//
//	go run ./cmd/experiments -fig 1            # Figure 1 (SFC length sweep)
//	go run ./cmd/experiments -fig 2            # Figure 2 (function reliability)
//	go run ./cmd/experiments -fig 3            # Figure 3 (residual capacity)
//	go run ./cmd/experiments -fig hops         # ablation: hop bound l
//	go run ./cmd/experiments -fig objective    # ablation: ILP objective
//	go run ./cmd/experiments -fig all          # everything
//
// Each figure prints its three sub-plot tables (reliability, capacity usage,
// running time) and optionally writes a CSV per figure with -csvdir.
// The paper averages 1,000 trials per point; -trials controls the trade-off
// between fidelity and runtime (means are stable well before 1,000). Trials
// fan out across -workers goroutines (default: GOMAXPROCS); every table is
// bit-identical regardless of worker count. -solvers picks algorithms by
// registered name (see internal/core's solver registry), e.g.
// -solvers heuristic,greedy.
//
// -seed fixes the base RNG seed and -svgdir writes per-sub-plot SVG charts.
// -fail-soft drops failing, panicking, or timed-out trials (bounded by
// -trial-timeout) from the aggregates instead of aborting the sweep; -q
// suppresses progress lines. Shared observability flags: -obs-addr serves
// /metrics and pprof, -log-level sets the structured log level,
// -run-manifest writes a JSON run manifest, and -bnb-workers sets the
// parallel branch-and-bound workers per ILP solve (bit-identical for any
// value).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", "which experiment to run: 1, 2, 3, hops, objective, theorem, all")
	trials := flag.Int("trials", 100, "trials per data point (paper: 1000)")
	seed := flag.Int64("seed", 42, "base RNG seed")
	workers := flag.Int("workers", 0, "parallel trial workers (<=0: GOMAXPROCS; results identical for any value)")
	solvers := flag.String("solvers", "ILP,Randomized,Heuristic", "comma-separated registered solver names, or \"all\"")
	csvdir := flag.String("csvdir", "", "directory for per-figure CSV output (optional)")
	svgdir := flag.String("svgdir", "", "directory for per-sub-plot SVG charts (optional)")
	quiet := flag.Bool("q", false, "suppress progress lines")
	failSoft := flag.Bool("fail-soft", false, "drop failing/panicking/timed-out trials from the aggregates instead of aborting the sweep")
	trialTimeout := flag.Duration("trial-timeout", 0, "per-trial wall-clock deadline in fail-soft mode (0: unbounded)")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/vars, /debug/pprof/ on this address (e.g. :9090 or :0; empty: off)")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	manifestPath := flag.String("run-manifest", "", "write a JSON run manifest (command, seeds, per-point records, metrics snapshot) to this path")
	bnbWorkers := flag.Int("bnb-workers", 1, "parallel branch-and-bound component workers per ILP solve (results are bit-identical for any value)")
	flag.Parse()
	core.SetDefaultBnBWorkers(*bnbWorkers)

	srv, err := obs.Boot(*logLevel, *obsAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if srv != nil {
		defer srv.Close()
	}

	selected, err := core.ResolveSolvers(*solvers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-solvers: %v\n", err)
		os.Exit(2)
	}
	if *trialTimeout < 0 || (*trialTimeout > 0 && !*failSoft) {
		fmt.Fprintln(os.Stderr, "-trial-timeout requires -fail-soft and a non-negative duration")
		os.Exit(2)
	}
	opt := experiments.Options{
		Trials:       *trials,
		Seed:         *seed,
		Workers:      *workers,
		Quiet:        *quiet,
		Solvers:      selected,
		FailSoft:     *failSoft,
		TrialTimeout: *trialTimeout,
	}

	var manifest *obs.Manifest
	if *manifestPath != "" {
		manifest = obs.NewManifest("experiments")
		manifest.Seed = *seed
		manifest.Trials = *trials
		manifest.Workers = *workers
		for _, s := range selected {
			manifest.Solvers = append(manifest.Solvers, s.Name())
		}
	}

	runners := map[string]func(experiments.Options) (*experiments.Sweep, error){
		"1":         experiments.Fig1,
		"2":         experiments.Fig2,
		"3":         experiments.Fig3,
		"hops":      experiments.AblationHops,
		"objective": experiments.AblationObjective,
	}
	var order []string
	switch strings.ToLower(*fig) {
	case "all":
		order = []string{"1", "2", "3", "hops", "objective", "theorem"}
	default:
		if _, ok := runners[*fig]; !ok && *fig != "theorem" {
			fmt.Fprintf(os.Stderr, "unknown -fig %q (want 1, 2, 3, hops, objective, theorem, all)\n", *fig)
			os.Exit(2)
		}
		order = []string{*fig}
	}

	for _, name := range order {
		if name == "theorem" {
			ts, err := experiments.TheoremCheck(opt)
			if err != nil {
				fmt.Fprintf(os.Stderr, "theorem: %v\n", err)
				os.Exit(1)
			}
			for _, p := range ts.Points {
				manifest.Add(obs.RunRecord{
					Name: "theorem", Label: p.Label, Seed: ts.Seed,
					Trials: ts.Trials, Outcome: "ok",
				})
			}
			fmt.Println()
			if err := ts.RenderTables(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "render: %v\n", err)
				os.Exit(1)
			}
			fmt.Println()
			continue
		}
		sweep, err := runners[name](opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig %s: %v\n", name, err)
			os.Exit(1)
		}
		sweep.AppendManifest(manifest)
		fmt.Println()
		if err := sweep.RenderTables(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "render: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		if *csvdir != "" {
			if err := os.MkdirAll(*csvdir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "csvdir: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvdir, sweep.Name+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "csv: %v\n", err)
				os.Exit(1)
			}
			if err := sweep.RenderCSV(f); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "csv: %v\n", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("wrote %s\n", path)
		}
		if *svgdir != "" {
			if err := os.MkdirAll(*svgdir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "svgdir: %v\n", err)
				os.Exit(1)
			}
			for i, chart := range sweep.Charts() {
				path := filepath.Join(*svgdir, fmt.Sprintf("%s_%c.svg", sweep.Name, 'a'+i))
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintf(os.Stderr, "svg: %v\n", err)
					os.Exit(1)
				}
				if err := chart.Render(f); err != nil {
					f.Close()
					fmt.Fprintf(os.Stderr, "svg: %v\n", err)
					os.Exit(1)
				}
				f.Close()
				fmt.Printf("wrote %s\n", path)
			}
		}
	}
	if manifest != nil {
		if err := manifest.WriteFile(*manifestPath, obs.Default()); err != nil {
			fmt.Fprintf(os.Stderr, "run-manifest: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *manifestPath)
	}
}
