// Command sfcaugment solves one service reliability augmentation instance
// end-to-end and prints the placement plan: it samples (or loads) an MEC
// network, admits one request with an SFC, places its primaries, and runs the
// selected algorithm(s).
//
//	go run ./cmd/sfcaugment -sfc 4 -rho 0.995 -alg all -seed 7
//	go run ./cmd/sfcaugment -fallback "ILP@50ms,Heuristic,Greedy"
//
// -l bounds secondary placement hops and -residual sets the sampled
// network's residual-capacity fraction; -admit picks the primary placement
// policy (random or maxrel). -load reads the scenario (network + request)
// from a JSON file instead of sampling, -save writes the sampled scenario
// out, and -dump prints it to stdout. Shared observability flags: -obs-addr
// serves /metrics and pprof, -log-level sets the structured log level,
// -run-manifest writes a JSON run manifest, and -bnb-workers sets the
// parallel branch-and-bound workers per ILP solve.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/mec"
	"repro/internal/netio"
	"repro/internal/obs"
	"repro/internal/workload"
)

func main() {
	sfcLen := flag.Int("sfc", 5, "SFC length of the request")
	rho := flag.Float64("rho", 1.0, "reliability expectation ρ (1.0 = augment as much as possible)")
	seed := flag.Int64("seed", 1, "RNG seed")
	l := flag.Int("l", 1, "hop bound for secondary placement")
	residual := flag.Float64("residual", 0.25, "residual capacity fraction")
	alg := flag.String("alg", "all", "comma-separated registered solver names ("+strings.Join(core.Names(), ", ")+"), or \"all\"")
	fallback := flag.String("fallback", "", "solve through a fallback chain instead of -alg, e.g. \"ILP@50ms,Heuristic,Greedy\" (stage@budget, first feasible stage serves)")
	admit := flag.String("admit", "random", "primary placement: random (paper §7) or maxrel (layered DAG)")
	load := flag.String("load", "", "load the scenario (network + request) from a JSON file instead of sampling")
	save := flag.String("save", "", "write the sampled scenario to a JSON file before solving")
	dump := flag.String("dump", "", "write the solved placements to a JSON file")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/vars, /debug/pprof/ on this address (e.g. :9090 or :0; empty: off)")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	manifestPath := flag.String("run-manifest", "", "write a JSON run manifest to this path")
	bnbWorkers := flag.Int("bnb-workers", 1, "parallel branch-and-bound component workers per ILP solve (results are bit-identical for any value)")
	flag.Parse()
	core.SetDefaultBnBWorkers(*bnbWorkers)

	srv, err := obs.Boot(*logLevel, *obsAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if srv != nil {
		defer srv.Close()
	}

	rng := rand.New(rand.NewSource(*seed))

	var net *mec.Network
	var req *mec.Request
	if *load != "" {
		scen, err := netio.ReadFile(*load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "load: %v\n", err)
			os.Exit(1)
		}
		var reqs []*mec.Request
		net, reqs, err = scen.Build()
		if err != nil {
			fmt.Fprintf(os.Stderr, "load: %v\n", err)
			os.Exit(1)
		}
		if len(reqs) == 0 {
			fmt.Fprintln(os.Stderr, "load: scenario has no requests")
			os.Exit(1)
		}
		req = reqs[0]
	} else {
		cfg := workload.NewDefaultConfig()
		cfg.ResidualFraction = *residual
		cfg.HopBound = *l
		cfg.Expectation = *rho
		net = cfg.Network(rng)
		req = cfg.RequestWithLength(rng, 0, *sfcLen, net.Catalog().Size())
	}
	if len(req.Primaries) == 0 {
		switch *admit {
		case "random":
			workload.PlacePrimariesRandom(net, req, rng)
		case "maxrel":
			if err := admission.PlaceMaxReliability(net, req); err != nil {
				fmt.Fprintf(os.Stderr, "admission failed: %v\n", err)
				os.Exit(1)
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown -admit %q\n", *admit)
			os.Exit(2)
		}
	}
	if *save != "" {
		if err := netio.WriteFile(*save, netio.Export(net, []*mec.Request{req})); err != nil {
			fmt.Fprintf(os.Stderr, "save: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("scenario written to %s\n", *save)
	}

	inst := core.NewInstance(net, req, core.Params{L: *l})
	fmt.Printf("network: %d APs, %d cloudlets; request: SFC length %d, ρ=%.4f\n",
		net.G.N(), len(net.Cloudlets()), req.Len(), req.Expectation)
	fmt.Printf("primaries: %v\n", req.Primaries)
	fmt.Printf("initial reliability (primaries only): %.4f\n", inst.InitialReliability)
	fmt.Printf("candidate secondary items: %d\n\n", inst.TotalItems())

	var solvers []core.Solver
	if *fallback != "" {
		chain, err := core.ParseFallback("cli", *fallback)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-fallback: %v\n", err)
			os.Exit(2)
		}
		solvers = []core.Solver{chain}
	} else {
		solvers, err = core.ResolveSolvers(*alg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-alg: %v\n", err)
			os.Exit(2)
		}
	}

	var manifest *obs.Manifest
	if *manifestPath != "" {
		manifest = obs.NewManifest("sfcaugment")
		manifest.Seed = *seed
		for _, sv := range solvers {
			manifest.Solvers = append(manifest.Solvers, sv.Name())
		}
	}

	var dumps []netio.PlacementDump
	for _, sv := range solvers {
		res, err := sv.Solve(inst, rng)
		if err != nil {
			manifest.Add(obs.RunRecord{
				Name: "sfcaugment", Solver: sv.Name(), Seed: *seed,
				Outcome: "error", Detail: err.Error(),
			})
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", sv.Name(), err)
			os.Exit(1)
		}
		manifest.Add(obs.RunRecord{
			Name: "sfcaugment", Solver: sv.Name(), Seed: *seed, Trials: 1,
			Outcome: "ok",
			Detail:  fmt.Sprintf("reliability=%.6f met=%v", res.Reliability, res.MetExpectation),
			MeanMS:  float64(res.Runtime.Microseconds()) / 1000,
		})
		dumps = append(dumps, netio.PlacementDump{
			RequestID:   req.ID,
			Algorithm:   res.Algorithm,
			Reliability: res.Reliability,
			MetRho:      res.MetExpectation,
			Secondaries: res.Secondaries(),
		})
		fmt.Printf("== %s ==\n", res.Algorithm)
		if res.ServedBy != "" {
			fmt.Printf("  served by fallback stage: %s\n", res.ServedBy)
		}
		fmt.Printf("  reliability: %.6f (met ρ: %v)\n", res.Reliability, res.MetExpectation)
		fmt.Printf("  backups per position: %v\n", res.Counts)
		fmt.Printf("  placements: %v\n", res.Secondaries())
		fmt.Printf("  capacity usage avg/min/max: %.2f/%.2f/%.2f (violated: %v)\n",
			res.Usage.Avg, res.Usage.Min, res.Usage.Max, res.Violated)
		fmt.Printf("  runtime: %v\n\n", res.Runtime)
	}
	if *dump != "" {
		if err := writePlacements(*dump, dumps); err != nil {
			fmt.Fprintf(os.Stderr, "dump: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("placements written to %s\n", *dump)
	}
	if manifest != nil {
		if err := manifest.WriteFile(*manifestPath, obs.Default()); err != nil {
			fmt.Fprintf(os.Stderr, "run-manifest: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *manifestPath)
	}
}

// writePlacements dumps solved placements as indented JSON, closing the file
// on every path and surfacing Close errors (which is where a full disk bites).
func writePlacements(path string, dumps []netio.PlacementDump) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(dumps)
}
