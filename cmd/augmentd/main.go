// Command augmentd is the online augmentation service: a long-running
// HTTP/JSON server that admits requests with SFC reliability expectations
// against a live MEC network, places their secondaries through the solver
// registry, and releases them on demand. See API.md for the wire protocol.
//
//	go run ./cmd/augmentd -addr :8080 -obs-addr :9090
//	go run ./cmd/augmentd -selftest -requests 128 -selftest-workers 1,8 -selftest-batchers 1,4
//	go run ./cmd/augmentd -wal-dir /var/lib/augmentd -restore
//	curl -s localhost:8080/v1/healthz
//
// In server mode SIGINT/SIGTERM drain gracefully: the admission queue stops
// accepting (503), every queued request is still solved and answered, then
// the listener shuts down. With -wal-dir every committed epoch is durable and
// -restore boots from the log's exact pre-crash state. In -selftest mode no
// socket is opened: the deterministic in-process load generator runs the same
// request stream at every (workers, batchers) combination from
// -selftest-workers × -selftest-batchers and the process exits non-zero
// unless the placement logs are bit-identical, nothing was dropped below the
// queue bound, and (when -wal-dir is set) replaying each run's WAL reproduces
// its exact final state hash and placement count. The selftest prints
// `go test -bench`-style result lines per combination, so `cmd/benchdiff
// -parse` can record throughput snapshots (BENCH_pr6.json), plus the batcher
// scaling ratio. -kill runs one selftest pass, prints the durable state
// line, and SIGKILLs the process mid-flight tooling can then verify with
// -restore-only (see `make smoke-recover`). -chaos turns the selftest into a
// failure drill: deterministic node outages (seeded MTBF/MTTR renewal
// schedule, -chaos-*) are injected between waves, each followed by a watchdog
// audit + re-augmentation round, and the run additionally pins a bit-identical
// chaos log across combinations plus zero silent SLO violations at the end
// (see `make smoke-chaos`).
//
// Flag reference, grouped by concern:
//
// Network and admission model. -seed samples the network: -aps access
// points, -cloudlets cloudlet fraction, -residual residual-capacity
// fraction, -capacity-scale capacity multiplier; -scenario serves a netio
// JSON scenario instead. -l bounds secondary placement hops and -admit
// picks the primary placement policy (random or maxrel).
//
// Serving pipeline. -queue bounds the admission queue (full answers 429),
// -batch and -batch-wait shape micro-batches, -workers sets solver workers
// per batch and -batchers the concurrent micro-batchers; -solver (or an
// ad-hoc -fallback chain) serves the augmentations, -deadline is the
// default per-request solve deadline, and -cache sizes the solver-result
// LRU.
//
// Multi-tenant admission economics. -tenants declares tenants as
// "name[:weight=W,rate=R,burst=B];..." — weight feeds the fair-queueing
// quanta and knapsack values; rate/burst arm a token-bucket quota refilled
// on the virtual batch clock, so quota decisions replay bit-identically.
// -admission picks the queue discipline: fifo (one arrival-order queue),
// fair (deficit-round-robin over per-tenant sub-queues), or knapsack (fair
// queueing plus value-ordered shedding under scarcity). -scarcity-watermark
// is the residual-capacity fraction below which knapsack shedding engages
// and -knapsack-window the queued window it packs over. GET /v1/tenants
// reports per-tenant accounting; quota denials answer 429 + Retry-After.
//
// Durability. -wal-dir, -wal-sync, and -snapshot-every configure the
// write-ahead log (tenant quota state is journaled per epoch); -restore
// boots from it and -restore-only verifies it and exits.
//
// Observability. -obs-addr, -log-level, -trace-slow, -flight.
//
// Failure handling. -degraded-factor, -reaug-budget, -alert-warn,
// -alert-crit, -probe-every tune the watchdog, alerting, and
// re-augmentation loop.
//
// Selftest and replay. -requests, -wave, -dup-every, -release-every, -rho,
// -chain-min, -chain-max, and -tenant-mix shape the generated stream;
// -selftest-workers and -selftest-batchers the verified combinations.
// -record writes a replayable trace, -replay verifies one (-replay-speed
// paces it), -kill runs the durability drill. -chaos arms the failure
// drill: -chaos-seed, -chaos-mtbf, -chaos-mttr, -chaos-degraded schedule
// the outages. -bnb-workers sets parallel branch-and-bound workers per ILP
// solve (bit-identical for any value).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/mec"
	"repro/internal/netio"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/loadgen"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address for the augmentation API")
	seed := flag.Int64("seed", 1, "seed for the sampled network and per-request RNG derivations")
	residual := flag.Float64("residual", 0.25, "residual capacity fraction of the sampled network")
	hopBound := flag.Int("l", 1, "hop bound for secondary placement")
	aps := flag.Int("aps", 0, "sampled network size in APs (0: workload default)")
	cloudlets := flag.Float64("cloudlets", 0, "cloudlet fraction of sampled APs (0: workload default)")
	capacityScale := flag.Float64("capacity-scale", 1, "multiplier on sampled cloudlet capacities (sustained-admission load-test regimes)")
	scenario := flag.String("scenario", "", "serve a netio JSON scenario instead of sampling a network")
	queueDepth := flag.Int("queue", 64, "admission queue depth (full queue answers 429)")
	batchSize := flag.Int("batch", 8, "micro-batch size B")
	batchWait := flag.Duration("batch-wait", 2*time.Millisecond, "micro-batch wait bound T")
	workers := flag.Int("workers", 0, "solver workers per batch (0 = GOMAXPROCS)")
	batchers := flag.Int("batchers", 1, "concurrent micro-batchers (batches execute speculatively and commit in admission order)")
	solver := flag.String("solver", "Failsafe", "registered solver serving augmentations ("+strings.Join(core.Names(), ", ")+")")
	fallbackSpec := flag.String("fallback", "", "serve through an ad-hoc fallback chain instead of -solver, e.g. \"ILP@50ms,Heuristic,Greedy\"")
	admit := flag.String("admit", serve.AdmitRandom, "primary placement policy: random or maxrel")
	deadline := flag.Duration("deadline", 0, "default per-request solve deadline (0 = unbounded)")
	cacheSize := flag.Int("cache", 256, "solver-result LRU entries (0 disables caching)")
	walDir := flag.String("wal-dir", "", "write-ahead-log directory for durable epochs (empty: durability off)")
	walSync := flag.String("wal-sync", "always", "WAL fsync policy: always or none")
	snapshotEvery := flag.Int("snapshot-every", 256, "WAL checkpoint cadence in entries")
	restore := flag.Bool("restore", false, "replay -wal-dir before serving (boot with the pre-crash state)")
	restoreOnly := flag.Bool("restore-only", false, "replay -wal-dir, print the restored state line, and exit")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/vars, /debug/pprof/ on this address (e.g. :9090; empty: off)")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	selftest := flag.Bool("selftest", false, "run the in-process load-generator selftest instead of serving")
	requests := flag.Int("requests", 128, "selftest: requests per run")
	selftestWorkers := flag.String("selftest-workers", "1,8", "selftest: comma-separated worker counts that must agree")
	selftestBatchers := flag.String("selftest-batchers", "1,4", "selftest: comma-separated batcher counts that must agree")
	wave := flag.Int("wave", 0, "selftest: submissions per wave (0 = queue depth)")
	dupEvery := flag.Int("dup-every", 4, "selftest: duplicate every k-th request (cache exercise, 0 off)")
	releaseEvery := flag.Int("release-every", 16, "selftest: release every k-th placement (0 off)")
	rho := flag.Float64("rho", 0.95, "selftest: reliability expectation of generated requests")
	chainMin := flag.Int("chain-min", 0, "selftest: minimum generated SFC length (0: loadgen default)")
	chainMax := flag.Int("chain-max", 0, "selftest: maximum generated SFC length (0: loadgen default)")
	kill := flag.Bool("kill", false, "selftest: run the first combination only, print the durable state line, then SIGKILL the process (requires -wal-dir)")
	record := flag.String("record", "", "append every admitted request and release to this replayable trace file (in -selftest mode, the first combination is recorded)")
	replay := flag.String("replay", "", "replay a recorded trace file through fresh services at every -selftest-workers × -selftest-batchers combination and verify bit-identity against its EOF trailer")
	replaySpeed := flag.Float64("replay-speed", 0, "replay pacing: 0 replays on the virtual clock (as fast as possible), 1 on the recorded timeline, 2 twice as fast")
	traceSlow := flag.Duration("trace-slow", 0, "dump the span timeline of any request slower than this to the log (0: off)")
	flight := flag.Int("flight", 256, "flight-recorder depth: completed request traces kept for /debug/traces (negative disables tracing)")
	degradedFactor := flag.Float64("degraded-factor", 0.5, "fraction of free capacity a degraded cloudlet still offers")
	reaugBudget := flag.Int("reaug-budget", 3, "re-augmentation attempts per failed session before it is declared lost")
	alertWarn := flag.Float64("alert-warn", 0, "session WARN threshold factor: u < rho*factor warns (0: serve default 1.05)")
	alertCrit := flag.Float64("alert-crit", 0, "session CRIT threshold factor: u < rho*factor is critical (0: serve default 1.0)")
	probeEvery := flag.Duration("probe-every", 0, "server mode: watchdog audit + re-augmentation cadence (0: event-driven only)")
	chaos := flag.Bool("chaos", false, "selftest: inject deterministic node failures between waves (the chaos drill)")
	chaosSeed := flag.Int64("chaos-seed", 1, "selftest: chaos schedule seed (independent of -seed)")
	chaosMTBF := flag.Float64("chaos-mtbf", 8, "selftest: mean waves between cloudlet failures (exponential)")
	chaosMTTR := flag.Float64("chaos-mttr", 2, "selftest: mean cloudlet outage length in waves (exponential)")
	chaosDegraded := flag.Float64("chaos-degraded", 0, "selftest: probability a failure arrives as degraded instead of down")
	bnbWorkers := flag.Int("bnb-workers", 1, "parallel branch-and-bound component workers per ILP solve (results are bit-identical for any value)")
	tenantSpec := flag.String("tenants", "", "tenant declarations \"name[:weight=W,rate=R,burst=B];...\" (empty: single default tenant)")
	admissionMode := flag.String("admission", serve.AdmissionFIFO, "admission queue discipline: fifo, fair, or knapsack")
	scarcityWatermark := flag.Float64("scarcity-watermark", 0, "residual fraction below which knapsack admission engages (0: serve default 0.25)")
	knapsackWindow := flag.Int("knapsack-window", 0, "batch window under -admission=knapsack (0: 4x -batch)")
	tenantMixSpec := flag.String("tenant-mix", "", "selftest: tenant shares for generated requests, e.g. \"gold:0.2,free:0.8\"")
	flag.Parse()
	core.SetDefaultBnBWorkers(*bnbWorkers)

	tenants, err := admission.ParseTenants(*tenantSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "augmentd: -tenants: %v\n", err)
		os.Exit(2)
	}
	tenantMix, err := loadgen.ParseTenantMix(*tenantMixSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "augmentd: -tenant-mix: %v\n", err)
		os.Exit(2)
	}

	obsSrv, err := obs.Boot(*logLevel, *obsAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if obsSrv != nil {
		defer obsSrv.Close()
	}

	buildNetwork := func() *mec.Network {
		if *scenario != "" {
			scen, err := netio.ReadFile(*scenario)
			if err != nil {
				fmt.Fprintf(os.Stderr, "augmentd: %v\n", err)
				os.Exit(1)
			}
			net, _, err := scen.Build()
			if err != nil {
				fmt.Fprintf(os.Stderr, "augmentd: %v\n", err)
				os.Exit(1)
			}
			return net
		}
		cfg := workload.NewDefaultConfig()
		cfg.ResidualFraction = *residual
		cfg.HopBound = *hopBound
		if *aps > 0 {
			cfg.NumAPs = *aps
		}
		if *cloudlets > 0 {
			cfg.CloudletFraction = *cloudlets
		}
		if *capacityScale != 1 {
			cfg.CapacityMin *= *capacityScale
			cfg.CapacityMax *= *capacityScale
		}
		return cfg.Network(rand.New(rand.NewSource(*seed)))
	}

	resolveSolver := func() core.Solver {
		if *fallbackSpec != "" {
			chain, err := core.ParseFallback("augmentd", *fallbackSpec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "augmentd: -fallback: %v\n", err)
				os.Exit(2)
			}
			return chain
		}
		sv, ok := core.Get(*solver)
		if !ok {
			fmt.Fprintf(os.Stderr, "augmentd: unknown solver %q (registered: %s)\n", *solver, strings.Join(core.Names(), ", "))
			os.Exit(2)
		}
		return sv
	}

	if *restoreOnly {
		if *walDir == "" {
			fmt.Fprintln(os.Stderr, "augmentd: -restore-only requires -wal-dir")
			os.Exit(2)
		}
		st, err := serve.NewStateFromWAL(buildNetwork(), *walDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "augmentd: restore: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("restored state: hash=%016x placed=%d epoch=%d\n", st.Hash(), st.PlacedCount(), st.Epoch())
		return
	}

	traceDepth := *flight
	if traceDepth <= 0 {
		traceDepth = -1 // CLI semantics: any non-positive depth disables tracing
	}
	// The probe loop is wall-clock-driven and only belongs in server mode:
	// selftest and replay runs drive audits deterministically between waves.
	probe := *probeEvery
	if *selftest || *replay != "" {
		probe = 0
	}
	newService := func(w, b int, dir string, restoreState bool, recordPath string) *serve.Service {
		svc, err := serve.New(buildNetwork(), serve.Options{
			QueueDepth:        *queueDepth,
			BatchSize:         *batchSize,
			BatchWait:         *batchWait,
			Workers:           w,
			Batchers:          b,
			Solver:            resolveSolver(),
			HopBound:          *hopBound,
			AdmitPolicy:       *admit,
			DefaultDeadline:   *deadline,
			CacheSize:         *cacheSize,
			Seed:              *seed,
			WALDir:            dir,
			WALSync:           *walSync,
			SnapshotEvery:     *snapshotEvery,
			Restore:           restoreState,
			TraceDepth:        traceDepth,
			TraceSlow:         *traceSlow,
			RecordPath:        recordPath,
			DegradedFactor:    *degradedFactor,
			ReaugBudget:       *reaugBudget,
			AlertWarnFactor:   *alertWarn,
			AlertCritFactor:   *alertCrit,
			ProbeEvery:        probe,
			Tenants:           tenants,
			Admission:         *admissionMode,
			ScarcityWatermark: *scarcityWatermark,
			KnapsackWindow:    *knapsackWindow,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "augmentd: %v\n", err)
			os.Exit(2)
		}
		return svc
	}

	if *replay != "" {
		os.Exit(runReplay(replayConfig{
			newService:  newService,
			path:        *replay,
			speed:       *replaySpeed,
			workerSpec:  *selftestWorkers,
			batcherSpec: *selftestBatchers,
			wave:        *wave,
			queueDepth:  *queueDepth,
			seed:        *seed,
			solverName:  resolveSolver().Name(),
			hopBound:    *hopBound,
			admitPolicy: *admit,
			admission:   *admissionMode,
			tenants:     serve.NormalizedTenants(tenants),
		}))
	}

	if *selftest {
		os.Exit(runSelftest(selftestConfig{
			newService:   newService,
			buildNetwork: buildNetwork,
			requests:     *requests,
			workerSpec:   *selftestWorkers,
			batcherSpec:  *selftestBatchers,
			wave:         *wave,
			queueDepth:   *queueDepth,
			dupEvery:     *dupEvery,
			releaseEvery: *releaseEvery,
			rho:          *rho,
			chainMin:     *chainMin,
			chainMax:     *chainMax,
			seed:         *seed,
			walDir:       *walDir,
			kill:         *kill,
			recordPath:   *record,
			tenantMix:    tenantMix,
			multiTenant:  len(tenants) > 0,
			admission:    *admissionMode,
			chaos: loadgen.ChaosConfig{
				Enabled:       *chaos,
				Seed:          *chaosSeed,
				MeanUpWaves:   *chaosMTBF,
				MeanDownWaves: *chaosMTTR,
				DegradedRatio: *chaosDegraded,
			},
		}))
	}

	svc := newService(*workers, *batchers, *walDir, *restore, *record)
	if *restore {
		st := svc.State()
		fmt.Printf("restored state: hash=%016x placed=%d epoch=%d\n", st.Hash(), st.PlacedCount(), st.Epoch())
	}
	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	slog.Info("augmentd serving", "addr", *addr, "solver", svc.SolverName(),
		"queue", *queueDepth, "batch", *batchSize, "batch_wait", *batchWait,
		"batchers", *batchers, "wal_dir", *walDir)
	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "augmentd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	slog.Info("augmentd draining: refusing new admissions, flushing queue")
	if err := svc.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "augmentd: close: %v\n", err)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "augmentd: shutdown: %v\n", err)
		os.Exit(1)
	}
	slog.Info("augmentd drained cleanly")
}

// selftestConfig gathers everything runSelftest needs from the flag set.
type selftestConfig struct {
	newService   func(workers, batchers int, walDir string, restore bool, recordPath string) *serve.Service
	buildNetwork func() *mec.Network
	requests     int
	workerSpec   string
	batcherSpec  string
	wave         int
	queueDepth   int
	dupEvery     int
	releaseEvery int
	rho          float64
	chainMin     int
	chainMax     int
	seed         int64
	walDir       string
	kill         bool
	recordPath   string // record the first combination's run to this trace file
	tenantMix    []loadgen.TenantShare
	multiTenant  bool   // -tenants was set: print per-tenant accounting
	admission    string // queue discipline; fifo carries the strict zero-drop bound
	chaos        loadgen.ChaosConfig
}

// comboRun is one (workers, batchers) selftest execution.
type comboRun struct {
	workers  int
	batchers int
	result   *loadgen.Result
}

// runSelftest runs the deterministic load generator at every (workers,
// batchers) combination against identically seeded fresh services and pins
// that the placement logs agree, nothing was rejected below the queue bound,
// and — when a WAL directory is set — that replaying each run's log rebuilds
// its exact final state. With chaos enabled it additionally pins bit-identical
// chaos logs, replayed down sets, and zero silent SLO violations. Returns the
// process exit code.
func runSelftest(cfg selftestConfig) int {
	workerCounts, err := parseCounts(cfg.workerSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "augmentd: bad -selftest-workers %q\n", cfg.workerSpec)
		return 2
	}
	batcherCounts, err := parseCounts(cfg.batcherSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "augmentd: bad -selftest-batchers %q\n", cfg.batcherSpec)
		return 2
	}
	if cfg.kill && cfg.walDir == "" {
		fmt.Fprintln(os.Stderr, "augmentd: -kill requires -wal-dir")
		return 2
	}
	wave := cfg.wave
	if wave <= 0 {
		wave = cfg.queueDepth
	}
	if wave > cfg.queueDepth {
		fmt.Fprintf(os.Stderr, "augmentd: -wave %d exceeds -queue %d; the zero-drop guarantee needs wave <= queue\n", wave, cfg.queueDepth)
		return 2
	}
	lcfg := loadgen.Config{
		Seed:           cfg.seed,
		Requests:       cfg.requests,
		WaveSize:       wave,
		ChainLenMin:    cfg.chainMin,
		ChainLenMax:    cfg.chainMax,
		Expectation:    cfg.rho,
		DuplicateEvery: cfg.dupEvery,
		ReleaseEvery:   cfg.releaseEvery,
		Chaos:          cfg.chaos,
		TenantMix:      cfg.tenantMix,
	}

	var refLog, refChaos string
	var runs []comboRun
	ok := true
	for _, w := range workerCounts {
		for _, b := range batcherCounts {
			dir := ""
			if cfg.walDir != "" {
				if cfg.kill {
					dir = cfg.walDir // single run writes the root log the restore check reads
				} else {
					dir = filepath.Join(cfg.walDir, fmt.Sprintf("run-w%d-b%d", w, b))
				}
			}
			recordPath := ""
			if cfg.recordPath != "" && len(runs) == 0 {
				recordPath = cfg.recordPath
			}
			svc := cfg.newService(w, b, dir, false, recordPath)
			res, err := loadgen.Run(svc, lcfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "augmentd: selftest workers=%d batchers=%d: %v\n", w, b, err)
				return 1
			}
			svc.Drain()
			p50, p99, p999 := latencyQuantiles(res.Records)
			fmt.Printf("selftest workers=%d batchers=%d: %d requests in %v (%.0f req/s), admitted=%d infeasible=%d rejected=%d (quota=%d) shed=%d deadline=%d released=%d cache_hits=%d p50=%v p99=%v p999=%v\n",
				w, b, len(res.Records), res.Elapsed.Round(time.Millisecond), res.Throughput,
				res.Admitted, res.Infeasible, res.Rejected, res.Quota, res.Shed, res.Deadline, res.Released, res.CacheHits,
				p50.Round(time.Microsecond), p99.Round(time.Microsecond), p999.Round(time.Microsecond))
			// Quota denials are intentional admission economics, not queue
			// overflow, and under fair or knapsack admission a wave may
			// overflow one tenant's fair-share sub-queue while the global
			// queue still has room — those rejections are the discipline
			// working, and the placement-log comparison still pins them
			// bit-identical across combinations. The strict zero-drop bound
			// is a fifo-admission invariant.
			if cfg.admission == serve.AdmissionFIFO && res.Rejected-res.Quota != 0 {
				fmt.Fprintf(os.Stderr, "augmentd: selftest workers=%d batchers=%d: %d requests rejected below the queue bound\n", w, b, res.Rejected-res.Quota)
				ok = false
			}
			if cfg.multiTenant {
				for _, row := range svc.TenantStats().Tenants {
					fmt.Printf("tenant %s workers=%d batchers=%d: weight=%g admitted=%d rejected_quota=%d rejected_queue=%d shed=%d infeasible=%d weighted_log_gain=%.6f\n",
						row.Name, w, b, row.Weight, row.Admitted, row.RejectedQuota,
						row.RejectedQueue, row.Shed, row.Infeasible, row.WeightedLogGain)
				}
			}
			if cfg.chaos.Enabled {
				fmt.Printf("chaos workers=%d batchers=%d: events=%d destroyed=%d reaug attempted=%d restored=%d degraded=%d lost=%d pending=%d\n",
					w, b, res.NodeEvents, res.InstancesDestroyed, res.ReaugAttempted,
					res.ReaugRestored, res.ReaugDegraded, res.ReaugLost, svc.ReaugPending())
				// The self-healing contract: every placement still below its
				// expectation must carry an active alert — no silent violations.
				if silent := svc.SilentViolations(); len(silent) > 0 {
					fmt.Fprintf(os.Stderr, "augmentd: selftest workers=%d batchers=%d: %d SILENT SLO violations (sessions %v)\n", w, b, len(silent), silent)
					ok = false
				}
			}
			hash, placed := svc.State().Hash(), svc.State().PlacedCount()
			downLive := fmt.Sprint(svc.State().DownNodes())
			if dir != "" {
				// Kill/restore contract, in-process: replaying the run's WAL
				// against a same-seed network reproduces the exact state —
				// including which cloudlets were down at the cut.
				st, err := serve.NewStateFromWAL(cfg.buildNetwork(), dir)
				switch {
				case err != nil:
					fmt.Fprintf(os.Stderr, "augmentd: selftest workers=%d batchers=%d: WAL replay: %v\n", w, b, err)
					ok = false
				case st.Hash() != hash || st.PlacedCount() != placed:
					fmt.Fprintf(os.Stderr, "augmentd: selftest workers=%d batchers=%d: WAL replay state hash=%016x placed=%d, live hash=%016x placed=%d\n",
						w, b, st.Hash(), st.PlacedCount(), hash, placed)
					ok = false
				case fmt.Sprint(st.DownNodes()) != downLive:
					fmt.Fprintf(os.Stderr, "augmentd: selftest workers=%d batchers=%d: WAL replay down set %v, live %s\n",
						w, b, st.DownNodes(), downLive)
					ok = false
				}
			}
			log := res.PlacementLog()
			if len(runs) == 0 {
				refLog = log
				refChaos = res.ChaosLog()
			} else if log != refLog {
				fmt.Fprintf(os.Stderr, "augmentd: selftest DETERMINISM FAILURE: workers=%d batchers=%d placement log differs from workers=%d batchers=%d\n%s",
					w, b, runs[0].workers, runs[0].batchers, firstDiff(refLog, log))
				ok = false
			} else if cl := res.ChaosLog(); cl != refChaos {
				fmt.Fprintf(os.Stderr, "augmentd: selftest DETERMINISM FAILURE: workers=%d batchers=%d chaos log differs from workers=%d batchers=%d\n%s",
					w, b, runs[0].workers, runs[0].batchers, firstDiff(refChaos, cl))
				ok = false
			}
			runs = append(runs, comboRun{workers: w, batchers: b, result: res})
			if err := svc.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "augmentd: selftest close: %v\n", err)
				ok = false
			}
			if cfg.kill {
				if !ok {
					fmt.Println("selftest FAILED")
					return 1
				}
				fmt.Printf("selftest state: hash=%016x placed=%d\n", hash, placed)
				os.Stdout.Sync()
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
	}
	if !ok {
		fmt.Println("selftest FAILED")
		return 1
	}
	// `go test -bench`-style lines so cmd/benchdiff -parse can record the
	// selftest throughput per combination (make bench-serve → BENCH_pr6.json).
	for _, r := range runs {
		nsPerOp := float64(r.result.Elapsed.Nanoseconds()) / float64(cfg.requests)
		fmt.Printf("BenchmarkAugmentdSelftest/workers=%d/batchers=%d\t%d\t%.0f ns/op\n",
			r.workers, r.batchers, cfg.requests, nsPerOp)
	}
	printScaling(runs)
	if cfg.chaos.Enabled {
		r := runs[0].result
		fmt.Printf("chaos drill OK: %d node events, reaug attempted=%d restored=%d degraded=%d lost=%d, zero silent violations\n",
			r.NodeEvents, r.ReaugAttempted, r.ReaugRestored, r.ReaugDegraded, r.ReaugLost)
	}
	fmt.Printf("selftest OK: %d combinations agree on %d placements\n", len(runs), runs[0].result.Admitted)
	return 0
}

// latencyQuantiles computes the exact p50/p99/p999 of the answered requests'
// end-to-end latencies through an armed obs histogram reservoir (capacity
// 1<<15 retains every sample a selftest run produces, so the printed
// quantiles are exact order statistics rather than bucket interpolations).
func latencyQuantiles(records []loadgen.Record) (p50, p99, p999 time.Duration) {
	h := obs.NewRegistry().Histogram("selftest_latency_seconds", obs.DurationBuckets)
	h.Sample(1 << 15)
	n := 0
	for _, r := range records {
		if r.Latency > 0 {
			h.Observe(r.Latency.Seconds())
			n++
		}
	}
	if n == 0 {
		return 0, 0, 0
	}
	toDur := func(p float64) time.Duration { return time.Duration(h.Quantile(p) * float64(time.Second)) }
	return toDur(0.5), toDur(0.99), toDur(0.999)
}

// replayConfig gathers everything runReplay needs from the flag set.
type replayConfig struct {
	newService  func(workers, batchers int, walDir string, restore bool, recordPath string) *serve.Service
	path        string
	speed       float64
	workerSpec  string
	batcherSpec string
	wave        int
	queueDepth  int
	seed        int64
	solverName  string
	hopBound    int
	admitPolicy string
	admission   string
	tenants     string // canonical tenant-spec string (serve.NormalizedTenants)
}

// runReplay drives a recorded request trace through fresh services at every
// (workers, batchers) combination and pins bit-identity: each combination
// must reproduce the trace's EOF state hash and placement count, and all
// combinations must agree on the full placement log. Returns the process
// exit code.
func runReplay(cfg replayConfig) int {
	meta, ops, eof, err := serve.ReadTrace(cfg.path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "augmentd: -replay: %v\n", err)
		return 1
	}
	// The trace header pins the recording run's determinism inputs; replaying
	// under different ones cannot reproduce it, so fail fast instead of
	// reporting a confusing divergence.
	switch {
	case meta.Seed != cfg.seed:
		fmt.Fprintf(os.Stderr, "augmentd: -replay: trace was recorded with -seed %d, not %d\n", meta.Seed, cfg.seed)
		return 2
	case meta.Solver != cfg.solverName:
		fmt.Fprintf(os.Stderr, "augmentd: -replay: trace was recorded with solver %q, not %q\n", meta.Solver, cfg.solverName)
		return 2
	case meta.HopBound != cfg.hopBound:
		fmt.Fprintf(os.Stderr, "augmentd: -replay: trace was recorded with -l %d, not %d\n", meta.HopBound, cfg.hopBound)
		return 2
	case meta.AdmitPolicy != cfg.admitPolicy:
		fmt.Fprintf(os.Stderr, "augmentd: -replay: trace was recorded with -admit %s, not %s\n", meta.AdmitPolicy, cfg.admitPolicy)
		return 2
	// Quota and fair-queueing decisions are part of the admission sequence a
	// replay must reproduce, so the discipline and tenant set are pinned too.
	// Pre-tenant traces omit both fields; they replay under any setting.
	case meta.Admission != "" && meta.Admission != cfg.admission:
		fmt.Fprintf(os.Stderr, "augmentd: -replay: trace was recorded with -admission %s, not %s\n", meta.Admission, cfg.admission)
		return 2
	case meta.Tenants != "" && meta.Tenants != cfg.tenants:
		fmt.Fprintf(os.Stderr, "augmentd: -replay: trace was recorded with tenants %q, not %q\n", meta.Tenants, cfg.tenants)
		return 2
	}
	workerCounts, err := parseCounts(cfg.workerSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "augmentd: bad -selftest-workers %q\n", cfg.workerSpec)
		return 2
	}
	batcherCounts, err := parseCounts(cfg.batcherSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "augmentd: bad -selftest-batchers %q\n", cfg.batcherSpec)
		return 2
	}
	wave := cfg.wave
	if wave <= 0 {
		wave = cfg.queueDepth
	}
	augments := 0
	for _, op := range ops {
		if op.Op == serve.OpAugment {
			augments++
		}
	}
	fmt.Printf("replaying %s: %d ops (%d augments), recorded", cfg.path, len(ops), augments)
	if eof != nil {
		fmt.Printf(" hash=%s placed=%d", eof.Hash, eof.Placed)
	} else {
		fmt.Print(" without EOF trailer (recording was cut short; state check skipped)")
	}
	fmt.Println()

	var refLog string
	var runs []comboRun
	ok := true
	for _, w := range workerCounts {
		for _, b := range batcherCounts {
			svc := cfg.newService(w, b, "", false, "")
			var clock loadgen.Clock
			if cfg.speed > 0 {
				clock = loadgen.NewWallClock(cfg.speed)
			}
			res, err := loadgen.Replay(svc, ops, loadgen.ReplayConfig{WaveSize: wave, Clock: clock})
			if err != nil {
				fmt.Fprintf(os.Stderr, "augmentd: replay workers=%d batchers=%d: %v\n", w, b, err)
				return 1
			}
			svc.Drain()
			hash, placed := svc.State().Hash(), svc.State().PlacedCount()
			p50, p99, p999 := latencyQuantiles(res.Records)
			fmt.Printf("replay workers=%d batchers=%d: %d ops in %v (%.0f req/s), admitted=%d infeasible=%d rejected=%d released=%d hash=%016x placed=%d p50=%v p99=%v p999=%v\n",
				w, b, len(ops), res.Elapsed.Round(time.Millisecond), res.Throughput,
				res.Admitted, res.Infeasible, res.Rejected, res.Released, hash, placed,
				p50.Round(time.Microsecond), p99.Round(time.Microsecond), p999.Round(time.Microsecond))
			if eof != nil {
				if got := fmt.Sprintf("%016x", hash); got != eof.Hash || placed != eof.Placed {
					fmt.Fprintf(os.Stderr, "augmentd: replay DIVERGENCE workers=%d batchers=%d: hash=%s placed=%d, recorded hash=%s placed=%d\n",
						w, b, got, placed, eof.Hash, eof.Placed)
					ok = false
				}
			}
			log := res.PlacementLog()
			if len(runs) == 0 {
				refLog = log
			} else if log != refLog {
				fmt.Fprintf(os.Stderr, "augmentd: replay DETERMINISM FAILURE: workers=%d batchers=%d placement log differs from workers=%d batchers=%d\n%s",
					w, b, runs[0].workers, runs[0].batchers, firstDiff(refLog, log))
				ok = false
			}
			runs = append(runs, comboRun{workers: w, batchers: b, result: res})
			if err := svc.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "augmentd: replay close: %v\n", err)
				ok = false
			}
		}
	}
	if !ok {
		fmt.Println("replay FAILED")
		return 1
	}
	for _, r := range runs {
		nsPerOp := float64(r.result.Elapsed.Nanoseconds()) / float64(max(augments, 1))
		fmt.Printf("BenchmarkAugmentdReplay/workers=%d/batchers=%d\t%d\t%.0f ns/op\n",
			r.workers, r.batchers, augments, nsPerOp)
	}
	fmt.Printf("replay OK: %d combinations reproduced %d placements bit-identically\n", len(runs), runs[0].result.Admitted)
	return 0
}

// printScaling reports batch-throughput scaling per worker count: the
// highest batcher count's throughput relative to one batcher's.
func printScaling(runs []comboRun) {
	base := make(map[int]*comboRun)
	best := make(map[int]*comboRun)
	for i := range runs {
		r := &runs[i]
		if r.batchers == 1 {
			base[r.workers] = r
		}
		if b, ok := best[r.workers]; !ok || r.batchers > b.batchers {
			best[r.workers] = r
		}
	}
	for _, r := range runs {
		if r.batchers != 1 {
			continue
		}
		b, ok := best[r.workers]
		if !ok || b.batchers == 1 || r.result.Throughput == 0 {
			continue
		}
		fmt.Printf("batcher scaling workers=%d: %d batchers = %.2fx vs 1 (%.0f vs %.0f req/s)\n",
			r.workers, b.batchers, b.result.Throughput/r.result.Throughput,
			b.result.Throughput, r.result.Throughput)
	}
}

// parseCounts parses a comma-separated list of positive ints.
func parseCounts(spec string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad count %q", tok)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty count list")
	}
	return out, nil
}

// firstDiff renders the first differing line of two placement logs.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("  line %d:\n  - %s\n  + %s\n", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("  log lengths differ: %d vs %d lines\n", len(al), len(bl))
}
