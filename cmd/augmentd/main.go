// Command augmentd is the online augmentation service: a long-running
// HTTP/JSON server that admits requests with SFC reliability expectations
// against a live MEC network, places their secondaries through the solver
// registry, and releases them on demand. See API.md for the wire protocol.
//
//	go run ./cmd/augmentd -addr :8080 -obs-addr :9090
//	go run ./cmd/augmentd -selftest -requests 128 -selftest-workers 1,8
//	curl -s localhost:8080/v1/healthz
//
// In server mode SIGINT/SIGTERM drain gracefully: the admission queue stops
// accepting (503), every queued request is still solved and answered, then
// the listener shuts down. In -selftest mode no socket is opened: the
// deterministic in-process load generator runs the same request stream at
// each worker count in -selftest-workers and the process exits non-zero
// unless the placement logs are bit-identical and nothing was dropped below
// the queue bound. The selftest prints a `go test -bench`-style result line,
// so `cmd/benchdiff -parse` can record throughput snapshots (BENCH_pr5.json).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/mec"
	"repro/internal/netio"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/loadgen"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address for the augmentation API")
	seed := flag.Int64("seed", 1, "seed for the sampled network and per-request RNG derivations")
	residual := flag.Float64("residual", 0.25, "residual capacity fraction of the sampled network")
	hopBound := flag.Int("l", 1, "hop bound for secondary placement")
	scenario := flag.String("scenario", "", "serve a netio JSON scenario instead of sampling a network")
	queueDepth := flag.Int("queue", 64, "admission queue depth (full queue answers 429)")
	batchSize := flag.Int("batch", 8, "micro-batch size B")
	batchWait := flag.Duration("batch-wait", 2*time.Millisecond, "micro-batch wait bound T")
	workers := flag.Int("workers", 0, "solver workers per batch (0 = GOMAXPROCS)")
	solver := flag.String("solver", "Failsafe", "registered solver serving augmentations ("+strings.Join(core.Names(), ", ")+")")
	fallbackSpec := flag.String("fallback", "", "serve through an ad-hoc fallback chain instead of -solver, e.g. \"ILP@50ms,Heuristic,Greedy\"")
	admit := flag.String("admit", serve.AdmitRandom, "primary placement policy: random or maxrel")
	deadline := flag.Duration("deadline", 0, "default per-request solve deadline (0 = unbounded)")
	cacheSize := flag.Int("cache", 256, "solver-result LRU entries (0 disables caching)")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/vars, /debug/pprof/ on this address (e.g. :9090; empty: off)")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	selftest := flag.Bool("selftest", false, "run the in-process load-generator selftest instead of serving")
	requests := flag.Int("requests", 128, "selftest: requests per run")
	selftestWorkers := flag.String("selftest-workers", "1,8", "selftest: comma-separated worker counts that must agree")
	wave := flag.Int("wave", 0, "selftest: submissions per wave (0 = queue depth)")
	dupEvery := flag.Int("dup-every", 4, "selftest: duplicate every k-th request (cache exercise, 0 off)")
	releaseEvery := flag.Int("release-every", 16, "selftest: release every k-th placement (0 off)")
	rho := flag.Float64("rho", 0.95, "selftest: reliability expectation of generated requests")
	flag.Parse()

	obsSrv, err := obs.Boot(*logLevel, *obsAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if obsSrv != nil {
		defer obsSrv.Close()
	}

	buildNetwork := func() *mec.Network {
		if *scenario != "" {
			scen, err := netio.ReadFile(*scenario)
			if err != nil {
				fmt.Fprintf(os.Stderr, "augmentd: %v\n", err)
				os.Exit(1)
			}
			net, _, err := scen.Build()
			if err != nil {
				fmt.Fprintf(os.Stderr, "augmentd: %v\n", err)
				os.Exit(1)
			}
			return net
		}
		cfg := workload.NewDefaultConfig()
		cfg.ResidualFraction = *residual
		cfg.HopBound = *hopBound
		return cfg.Network(rand.New(rand.NewSource(*seed)))
	}

	resolveSolver := func() core.Solver {
		if *fallbackSpec != "" {
			chain, err := core.ParseFallback("augmentd", *fallbackSpec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "augmentd: -fallback: %v\n", err)
				os.Exit(2)
			}
			return chain
		}
		sv, ok := core.Get(*solver)
		if !ok {
			fmt.Fprintf(os.Stderr, "augmentd: unknown solver %q (registered: %s)\n", *solver, strings.Join(core.Names(), ", "))
			os.Exit(2)
		}
		return sv
	}

	newService := func(w int) *serve.Service {
		svc, err := serve.New(buildNetwork(), serve.Options{
			QueueDepth:      *queueDepth,
			BatchSize:       *batchSize,
			BatchWait:       *batchWait,
			Workers:         w,
			Solver:          resolveSolver(),
			HopBound:        *hopBound,
			AdmitPolicy:     *admit,
			DefaultDeadline: *deadline,
			CacheSize:       *cacheSize,
			Seed:            *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "augmentd: %v\n", err)
			os.Exit(2)
		}
		return svc
	}

	if *selftest {
		os.Exit(runSelftest(newService, *requests, *selftestWorkers, *wave, *queueDepth, *dupEvery, *releaseEvery, *rho, *seed))
	}

	svc := newService(*workers)
	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	slog.Info("augmentd serving", "addr", *addr, "solver", svc.SolverName(),
		"queue", *queueDepth, "batch", *batchSize, "batch_wait", *batchWait)
	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "augmentd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	slog.Info("augmentd draining: refusing new admissions, flushing queue")
	svc.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "augmentd: shutdown: %v\n", err)
		os.Exit(1)
	}
	slog.Info("augmentd drained cleanly")
}

// runSelftest runs the deterministic load generator at every worker count in
// spec against identically seeded fresh services and pins that the placement
// logs agree and nothing was rejected below the queue bound. Returns the
// process exit code.
func runSelftest(newService func(workers int) *serve.Service, requests int, spec string, wave, queueDepth, dupEvery, releaseEvery int, rho float64, seed int64) int {
	var workerCounts []int
	for _, tok := range strings.Split(spec, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || w < 1 {
			fmt.Fprintf(os.Stderr, "augmentd: bad -selftest-workers %q\n", spec)
			return 2
		}
		workerCounts = append(workerCounts, w)
	}
	if len(workerCounts) == 0 {
		fmt.Fprintf(os.Stderr, "augmentd: empty -selftest-workers\n")
		return 2
	}
	if wave <= 0 {
		wave = queueDepth
	}
	if wave > queueDepth {
		fmt.Fprintf(os.Stderr, "augmentd: -wave %d exceeds -queue %d; the zero-drop guarantee needs wave <= queue\n", wave, queueDepth)
		return 2
	}
	cfg := loadgen.Config{
		Seed:           seed,
		Requests:       requests,
		WaveSize:       wave,
		Expectation:    rho,
		DuplicateEvery: dupEvery,
		ReleaseEvery:   releaseEvery,
	}

	var refLog string
	var refResult *loadgen.Result
	ok := true
	for i, w := range workerCounts {
		svc := newService(w)
		res, err := loadgen.Run(svc, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "augmentd: selftest workers=%d: %v\n", w, err)
			return 1
		}
		svc.Drain()
		fmt.Printf("selftest workers=%d: %d requests in %v (%.0f req/s), admitted=%d infeasible=%d rejected=%d deadline=%d released=%d cache_hits=%d\n",
			w, len(res.Records), res.Elapsed.Round(time.Millisecond), res.Throughput,
			res.Admitted, res.Infeasible, res.Rejected, res.Deadline, res.Released, res.CacheHits)
		if res.Rejected != 0 {
			fmt.Fprintf(os.Stderr, "augmentd: selftest workers=%d: %d requests rejected below the queue bound\n", w, res.Rejected)
			ok = false
		}
		log := res.PlacementLog()
		if i == 0 {
			refLog, refResult = log, res
			continue
		}
		if log != refLog {
			fmt.Fprintf(os.Stderr, "augmentd: selftest DETERMINISM FAILURE: workers=%d placement log differs from workers=%d\n%s",
				w, workerCounts[0], firstDiff(refLog, log))
			ok = false
		}
	}
	if !ok {
		fmt.Println("selftest FAILED")
		return 1
	}
	// A `go test -bench`-style line so cmd/benchdiff -parse can record the
	// selftest throughput (make bench-serve → BENCH_pr5.json).
	nsPerOp := float64(refResult.Elapsed.Nanoseconds()) / float64(requests)
	fmt.Printf("BenchmarkAugmentdSelftest\t%d\t%.0f ns/op\n", requests, nsPerOp)
	fmt.Printf("selftest OK: %d worker counts agree on %d placements\n", len(workerCounts), refResult.Admitted)
	return 0
}

// firstDiff renders the first differing line of two placement logs.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("  line %d:\n  - %s\n  + %s\n", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("  log lengths differ: %d vs %d lines\n", len(al), len(bl))
}
