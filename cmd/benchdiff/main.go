// Command benchdiff is the repo's stdlib-only benchmark bookkeeping tool,
// used by `make bench` and by hand. Three modes:
//
//	benchdiff -guard [-short]
//	    Exit nonzero when GOMAXPROCS < 2 unless -short is given. Guards the
//	    pool-contention benchmark, which silently measures nothing without
//	    real parallelism.
//
//	benchdiff -parse bench_output.txt -label pr4 -out BENCH_pr4.json
//	    Parse raw `go test -bench` output into the JSON form of
//	    internal/benchfmt.
//
//	benchdiff -diff old.json new.json [-out merged.json] [-max-regress 1.75]
//	    Print an old-vs-new delta table (min ns/op and min allocs/op per
//	    benchmark, the noise-robust statistics for -count runs) followed by
//	    a geomean-speedup line per benchmark family (the name segment before
//	    the first '/'), and optionally write a combined {"before","after"}
//	    file — the format of the committed BENCH_<label>.json acceptance
//	    artifacts. With -max-regress F the diff exits nonzero when any
//	    benchmark present in both files got slower than old×F, which turns
//	    `make bench` into a regression guard instead of an eyeball check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"text/tabwriter"

	"repro/internal/benchfmt"
)

type merged struct {
	Before benchfmt.File `json:"before"`
	After  benchfmt.File `json:"after"`
}

func main() {
	var (
		guard      = flag.Bool("guard", false, "fail when GOMAXPROCS < 2 (unless -short)")
		short      = flag.Bool("short", false, "with -guard: allow single-proc runs")
		parse      = flag.String("parse", "", "parse raw `go test -bench` output from this file")
		label      = flag.String("label", "local", "label stored in the JSON written by -parse")
		diff       = flag.Bool("diff", false, "diff two JSON files: benchdiff -diff old.json new.json")
		out        = flag.String("out", "", "output path for -parse JSON or -diff merged JSON")
		maxRegress = flag.Float64("max-regress", 0, "with -diff: exit nonzero when any benchmark's new min ns/op exceeds old×this factor (0: report only)")
	)
	flag.Parse()
	switch {
	case *guard:
		if p := runtime.GOMAXPROCS(0); p < 2 && !*short {
			fatalf("GOMAXPROCS=%d: the pool-contention benchmark needs >=2 procs; re-run with GOMAXPROCS>=2 or use the -short bench target", p)
		}
	case *parse != "":
		if err := runParse(*parse, *label, *out); err != nil {
			fatalf("%v", err)
		}
	case *diff:
		if flag.NArg() != 2 {
			fatalf("usage: benchdiff -diff old.json new.json [-out merged.json]")
		}
		if err := runDiff(flag.Arg(0), flag.Arg(1), *out, *maxRegress); err != nil {
			fatalf("%v", err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}

func runParse(path, label, out string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	samples, err := benchfmt.Parse(f)
	if err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("no benchmark results in %s", path)
	}
	file := benchfmt.File{Label: label, Samples: samples}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d samples, label %q)\n", out, len(samples), label)
	return nil
}

// loadFile reads either a plain benchfmt.File or, for convenience, a merged
// {"before","after"} artifact (in which case "after" is used).
func loadFile(path string) (benchfmt.File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return benchfmt.File{}, err
	}
	var m merged
	if err := json.Unmarshal(data, &m); err == nil && len(m.After.Samples) > 0 {
		return m.After, nil
	}
	var f benchfmt.File
	if err := json.Unmarshal(data, &f); err != nil {
		return benchfmt.File{}, fmt.Errorf("%s: %v", path, err)
	}
	return f, nil
}

func runDiff(oldPath, newPath, out string, maxRegress float64) error {
	oldF, err := loadFile(oldPath)
	if err != nil {
		return err
	}
	newF, err := loadFile(newPath)
	if err != nil {
		return err
	}
	oldG := benchfmt.GroupByName(oldF.Samples)
	newG := benchfmt.GroupByName(newF.Samples)
	newByName := make(map[string]benchfmt.Group, len(newG))
	for _, g := range newG {
		newByName[g.Name] = g
	}

	type famStat struct {
		logSum float64
		n      int
	}
	families := make(map[string]*famStat)
	var regressions []string

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "benchmark\told ns/op\tnew ns/op\tspeedup\told allocs\tnew allocs\tdelta\n")
	for _, og := range oldG {
		ng, ok := newByName[og.Name]
		if !ok {
			fmt.Fprintf(w, "%s\t%.0f\t-\t-\t%s\t-\t-\n", og.Name, og.MinNs(), allocStr(og.MinAllocs()))
			continue
		}
		speed := og.MinNs() / ng.MinNs()
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.2fx\t%s\t%s\t%s\n",
			og.Name, og.MinNs(), ng.MinNs(), speed,
			allocStr(og.MinAllocs()), allocStr(ng.MinAllocs()),
			allocDelta(og.MinAllocs(), ng.MinAllocs()))
		fs := families[familyOf(og.Name)]
		if fs == nil {
			fs = &famStat{}
			families[familyOf(og.Name)] = fs
		}
		fs.logSum += math.Log(speed)
		fs.n++
		if maxRegress > 0 && ng.MinNs() > og.MinNs()*maxRegress {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f ns/op (%.2fx slower, limit %.2fx)",
					og.Name, og.MinNs(), ng.MinNs(), ng.MinNs()/og.MinNs(), maxRegress))
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}

	// Per-family geomean: one robust speedup number per benchmark family
	// (the name segment before the first '/'), so a wash across a family's
	// sub-cases is visible even when individual lines are noisy.
	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println()
	for _, name := range names {
		fs := families[name]
		fmt.Printf("geomean %s: %.2fx (%d benchmarks)\n", name, math.Exp(fs.logSum/float64(fs.n)), fs.n)
	}

	if len(regressions) > 0 {
		fmt.Println()
		for _, r := range regressions {
			fmt.Printf("REGRESSION %s\n", r)
		}
		return fmt.Errorf("%d benchmark(s) regressed past the -max-regress %.2fx limit", len(regressions), maxRegress)
	}

	if out != "" {
		data, err := json.MarshalIndent(merged{Before: oldF, After: newF}, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}

// familyOf maps a benchmark name to its family: the segment before the
// first '/' (sub-benchmark separator), or the whole name without one.
func familyOf(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '/' {
			return name[:i]
		}
	}
	return name
}

func allocStr(a int64) string {
	if a < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", a)
}

func allocDelta(oldA, newA int64) string {
	if oldA <= 0 || newA < 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", 100*float64(newA-oldA)/float64(oldA))
}
