// Command topogen generates MEC network topologies (Waxman / transit-stub /
// Erdős–Rényi / grid) and dumps them as JSON or Graphviz DOT.
//
//	go run ./cmd/topogen -model waxman -n 100 -format dot > net.dot
//
// -seed fixes the generator RNG and -p sets the edge probability of the er
// model.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/topology"
)

type dump struct {
	Model  string       `json:"model"`
	N      int          `json:"n"`
	M      int          `json:"m"`
	Edges  [][2]int     `json:"edges"`
	Coords [][2]float64 `json:"coords"`
}

func main() {
	model := flag.String("model", "waxman", "waxman, transitstub, er, grid, ring, star")
	n := flag.Int("n", 100, "approximate node count")
	seed := flag.Int64("seed", 1, "RNG seed")
	format := flag.String("format", "json", "json or dot")
	p := flag.Float64("p", 0.05, "edge probability (er model)")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var top *topology.Topology
	switch *model {
	case "waxman":
		top = topology.Waxman(topology.DefaultWaxman(*n), rng)
	case "transitstub":
		top = topology.TransitStub(topology.DefaultTransitStub(*n), rng)
	case "er":
		top = topology.ErdosRenyi(*n, *p, rng)
	case "grid":
		side := 1
		for side*side < *n {
			side++
		}
		top = topology.Grid(side, side)
	case "ring":
		top = topology.Ring(*n)
	case "star":
		top = topology.Star(*n)
	default:
		fmt.Fprintf(os.Stderr, "unknown -model %q\n", *model)
		os.Exit(2)
	}

	switch *format {
	case "json":
		d := dump{Model: *model, N: top.G.N(), M: top.G.M(), Edges: top.G.Edges()}
		for _, c := range top.Coords {
			d.Coords = append(d.Coords, [2]float64{c.X, c.Y})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "dot":
		fmt.Println("graph mec {")
		for i, c := range top.Coords {
			fmt.Printf("  n%d [pos=\"%.3f,%.3f!\"];\n", i, c.X*10, c.Y*10)
		}
		for _, e := range top.G.Edges() {
			fmt.Printf("  n%d -- n%d;\n", e[0], e[1])
		}
		fmt.Println("}")
	default:
		fmt.Fprintf(os.Stderr, "unknown -format %q\n", *format)
		os.Exit(2)
	}
}
