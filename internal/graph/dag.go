package graph

import (
	"fmt"
	"math"
)

// DAG is a directed acyclic graph with float64 arc weights, used by the
// admission framework to model layered placement graphs. Nodes are dense IDs
// in [0, N). Arcs may be added in any order; acyclicity is verified by
// TopoOrder / ShortestPathDAG, which fail on cyclic inputs.
type DAG struct {
	n    int
	arcs [][]Arc
	m    int
}

// Arc is a directed weighted edge to a destination node.
type Arc struct {
	To int
	W  float64
}

// NewDAG returns an empty DAG with n nodes.
func NewDAG(n int) *DAG {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &DAG{n: n, arcs: make([][]Arc, n)}
}

// N returns the number of nodes.
func (d *DAG) N() int { return d.n }

// M returns the number of arcs.
func (d *DAG) M() int { return d.m }

// AddArc inserts the directed arc u→v with weight w.
func (d *DAG) AddArc(u, v int, w float64) {
	d.checkNode(u)
	d.checkNode(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-arc at node %d", u))
	}
	d.arcs[u] = append(d.arcs[u], Arc{To: v, W: w})
	d.m++
}

// Arcs returns the outgoing arcs of u; the slice is owned by the DAG.
func (d *DAG) Arcs(u int) []Arc {
	d.checkNode(u)
	return d.arcs[u]
}

// TopoOrder returns a topological ordering of the nodes, or an error if the
// graph contains a cycle.
func (d *DAG) TopoOrder() ([]int, error) {
	indeg := make([]int, d.n)
	for u := 0; u < d.n; u++ {
		for _, a := range d.arcs[u] {
			indeg[a.To]++
		}
	}
	queue := make([]int, 0, d.n)
	for u := 0; u < d.n; u++ {
		if indeg[u] == 0 {
			queue = append(queue, u)
		}
	}
	order := make([]int, 0, d.n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, a := range d.arcs[u] {
			indeg[a.To]--
			if indeg[a.To] == 0 {
				queue = append(queue, a.To)
			}
		}
	}
	if len(order) != d.n {
		return nil, fmt.Errorf("graph: DAG contains a cycle (%d of %d nodes ordered)", len(order), d.n)
	}
	return order, nil
}

// ShortestPathDAG computes the minimum-weight src→dst path by relaxing arcs
// in topological order (weights may be negative). It returns the path as a
// node sequence and its total weight. An error is reported for cyclic graphs
// or when dst is unreachable.
func (d *DAG) ShortestPathDAG(src, dst int) ([]int, float64, error) {
	d.checkNode(src)
	d.checkNode(dst)
	order, err := d.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	dist := make([]float64, d.n)
	prev := make([]int, d.n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	for _, u := range order {
		if math.IsInf(dist[u], 1) {
			continue
		}
		for _, a := range d.arcs[u] {
			if nd := dist[u] + a.W; nd < dist[a.To] {
				dist[a.To] = nd
				prev[a.To] = u
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil, 0, fmt.Errorf("graph: node %d unreachable from %d in DAG", dst, src)
	}
	path := PathTo(prev, src, dst)
	return path, dist[dst], nil
}

func (d *DAG) checkNode(u int) {
	if u < 0 || u >= d.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, d.n))
	}
}
