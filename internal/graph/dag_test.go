package graph

import "testing"

func TestDAGTopoOrder(t *testing.T) {
	d := NewDAG(4)
	d.AddArc(0, 1, 1)
	d.AddArc(0, 2, 1)
	d.AddArc(1, 3, 1)
	d.AddArc(2, 3, 1)
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, u := range order {
		pos[u] = i
	}
	for u := 0; u < 4; u++ {
		for _, a := range d.Arcs(u) {
			if pos[u] >= pos[a.To] {
				t.Fatalf("topo order violated: %d before %d in %v", a.To, u, order)
			}
		}
	}
}

func TestDAGCycleDetected(t *testing.T) {
	d := NewDAG(3)
	d.AddArc(0, 1, 1)
	d.AddArc(1, 2, 1)
	d.AddArc(2, 0, 1)
	if _, err := d.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
	if _, _, err := d.ShortestPathDAG(0, 2); err == nil {
		t.Fatal("ShortestPathDAG accepted cyclic graph")
	}
}

func TestDAGShortestPath(t *testing.T) {
	// diamond: 0→1 (1), 0→2 (5), 1→3 (1), 2→3 (1)
	d := NewDAG(4)
	d.AddArc(0, 1, 1)
	d.AddArc(0, 2, 5)
	d.AddArc(1, 3, 1)
	d.AddArc(2, 3, 1)
	path, w, err := d.ShortestPathDAG(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 {
		t.Fatalf("weight=%v, want 2", w)
	}
	want := []int{0, 1, 3}
	if len(path) != len(want) {
		t.Fatalf("path=%v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path=%v, want %v", path, want)
		}
	}
}

func TestDAGShortestPathNegativeWeights(t *testing.T) {
	d := NewDAG(3)
	d.AddArc(0, 1, 5)
	d.AddArc(1, 2, -3)
	d.AddArc(0, 2, 4)
	_, w, err := d.ShortestPathDAG(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 {
		t.Fatalf("weight=%v, want 2 (via negative arc)", w)
	}
}

func TestDAGUnreachable(t *testing.T) {
	d := NewDAG(3)
	d.AddArc(0, 1, 1)
	if _, _, err := d.ShortestPathDAG(0, 2); err == nil {
		t.Fatal("unreachable dst not reported")
	}
}

func TestDAGSelfArcPanics(t *testing.T) {
	d := NewDAG(2)
	mustPanic(t, func() { d.AddArc(0, 0, 1) })
}

func TestDAGSameSourceDest(t *testing.T) {
	d := NewDAG(2)
	d.AddArc(0, 1, 3)
	path, w, err := d.ShortestPathDAG(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w != 0 || len(path) != 1 || path[0] != 0 {
		t.Fatalf("trivial path=%v w=%v", path, w)
	}
}
