package graph

import (
	"container/heap"
	"math"
)

// WeightFunc gives the nonnegative weight of the undirected edge (u,v).
type WeightFunc func(u, v int) float64

// Dijkstra computes single-source shortest path distances under w, returning
// the distance slice (math.Inf(1) for unreachable) and the predecessor slice
// (-1 for src and unreachable nodes). Weights must be nonnegative.
func (g *Graph) Dijkstra(src int, w WeightFunc) (dist []float64, prev []int) {
	g.check(src)
	dist = make([]float64, g.n)
	prev = make([]int, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	pq := &floatHeap{{node: src, pri: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		u := it.node
		if it.pri > dist[u] {
			continue
		}
		for _, v := range g.adj[u] {
			nd := dist[u] + w(u, v)
			if nd < dist[v] {
				dist[v] = nd
				prev[v] = u
				heap.Push(pq, heapItem{node: v, pri: nd})
			}
		}
	}
	return dist, prev
}

// PathTo reconstructs the path src→dst from a predecessor slice produced by
// Dijkstra from src. It returns nil when dst is unreachable.
func PathTo(prev []int, src, dst int) []int {
	if dst < 0 || dst >= len(prev) {
		return nil
	}
	if src == dst {
		return []int{src}
	}
	if prev[dst] < 0 {
		return nil
	}
	var rev []int
	for v := dst; v != -1; v = prev[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return nil
	}
	path := make([]int, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path
}

type heapItem struct {
	node int
	pri  float64
}

type floatHeap []heapItem

func (h floatHeap) Len() int            { return len(h) }
func (h floatHeap) Less(i, j int) bool  { return h[i].pri < h[j].pri }
func (h floatHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *floatHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *floatHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
