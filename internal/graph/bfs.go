package graph

// HopDistances returns the hop distance from src to every node, with -1 for
// unreachable nodes, computed by breadth-first search.
func (g *Graph) HopDistances(src int) []int {
	g.check(src)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// NeighborsWithin returns N_l(v): every node u != v whose hop distance from v
// is at most l, in ascending order. l < 1 yields an empty set.
func (g *Graph) NeighborsWithin(v, l int) []int {
	g.check(v)
	if l < 1 {
		return nil
	}
	dist := g.boundedBFS(v, l)
	out := make([]int, 0)
	for u, d := range dist {
		if u != v && d >= 0 {
			out = append(out, u)
		}
	}
	return out
}

// NeighborsWithinPlus returns N_l^+(v) = N_l(v) ∪ {v}, in ascending order.
func (g *Graph) NeighborsWithinPlus(v, l int) []int {
	g.check(v)
	if l < 1 {
		return []int{v}
	}
	dist := g.boundedBFS(v, l)
	out := make([]int, 0)
	for u, d := range dist {
		if d >= 0 {
			out = append(out, u)
		}
	}
	return out
}

// boundedBFS returns hop distances from src truncated at maxHops; nodes
// farther than maxHops have distance -1.
func (g *Graph) boundedBFS(src, maxHops int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if dist[u] >= maxHops {
			continue
		}
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected. The empty graph and the
// single-node graph are connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	dist := g.HopDistances(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Components returns the connected components as slices of node IDs, each
// sorted ascending, ordered by their smallest node.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		comp := []int{s}
		seen[s] = true
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					comp = append(comp, v)
					queue = append(queue, v)
				}
			}
		}
		comps = append(comps, comp)
	}
	for _, c := range comps {
		sortInts(c)
	}
	return comps
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
