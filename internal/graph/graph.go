// Package graph provides the undirected-graph and DAG primitives used by the
// MEC network model: adjacency storage, l-hop neighborhoods, shortest paths,
// and connectivity queries.
//
// Nodes are dense integer IDs in [0, N). The graph is simple (no self-loops,
// no parallel edges); AddEdge is idempotent.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph over nodes 0..N-1.
type Graph struct {
	n   int
	adj [][]int
	set []map[int]bool // edge-existence index, one map per node
	m   int
}

// New returns an empty undirected graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	g := &Graph{
		n:   n,
		adj: make([][]int, n),
		set: make([]map[int]bool, n),
	}
	for i := range g.set {
		g.set[i] = make(map[int]bool)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// AddEdge inserts the undirected edge (u,v). Self-loops are rejected;
// duplicate insertions are ignored. It reports whether a new edge was added.
func (g *Graph) AddEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	if g.set[u][v] {
		return false
	}
	g.set[u][v] = true
	g.set[v][u] = true
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.m++
	return true
}

// HasEdge reports whether the undirected edge (u,v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	return g.set[u][v]
}

// Neighbors returns the adjacency list of u. The returned slice is owned by
// the graph and must not be mutated.
func (g *Graph) Neighbors(u int) []int {
	g.check(u)
	return g.adj[u]
}

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int) int {
	g.check(u)
	return len(g.adj[u])
}

// Edges returns all undirected edges with u < v, sorted lexicographically.
func (g *Graph) Edges() [][2]int {
	es := make([][2]int, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				es = append(es, [2]int{u, v})
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	return es
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				c.AddEdge(u, v)
			}
		}
	}
	return c
}

func (g *Graph) check(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, g.n))
	}
}
