package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	f()
}

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("got N=%d M=%d, want 5,0", g.N(), g.M())
	}
	for u := 0; u < 5; u++ {
		if g.Degree(u) != 0 {
			t.Fatalf("node %d degree %d, want 0", u, g.Degree(u))
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	mustPanic(t, func() { New(-1) })
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	if !g.AddEdge(0, 1) {
		t.Fatal("first AddEdge returned false")
	}
	if g.AddEdge(1, 0) {
		t.Fatal("duplicate (reversed) AddEdge returned true")
	}
	if g.M() != 1 {
		t.Fatalf("M=%d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge should be symmetric")
	}
	if g.HasEdge(2, 3) {
		t.Fatal("HasEdge reports nonexistent edge")
	}
}

func TestAddEdgeSelfLoopPanics(t *testing.T) {
	g := New(3)
	mustPanic(t, func() { g.AddEdge(1, 1) })
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	g := New(3)
	mustPanic(t, func() { g.AddEdge(0, 3) })
	mustPanic(t, func() { g.AddEdge(-1, 0) })
}

func TestEdgesSorted(t *testing.T) {
	g := New(4)
	g.AddEdge(2, 3)
	g.AddEdge(0, 2)
	g.AddEdge(0, 1)
	es := g.Edges()
	want := [][2]int{{0, 1}, {0, 2}, {2, 3}}
	if len(es) != len(want) {
		t.Fatalf("got %v", es)
	}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, es[i], want[i])
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("mutating clone changed original")
	}
	if !c.HasEdge(0, 1) {
		t.Fatal("clone lost edge")
	}
}

func pathGraph(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestHopDistancesPath(t *testing.T) {
	g := pathGraph(5)
	d := g.HopDistances(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Fatalf("dist[%d]=%d, want %d", i, d[i], want)
		}
	}
}

func TestHopDistancesUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	d := g.HopDistances(0)
	if d[2] != -1 {
		t.Fatalf("dist[2]=%d, want -1", d[2])
	}
}

func TestNeighborsWithin(t *testing.T) {
	g := pathGraph(6)
	got := g.NeighborsWithin(2, 2)
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("N_2(2) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("N_2(2) = %v, want %v", got, want)
		}
	}
	if len(g.NeighborsWithin(2, 0)) != 0 {
		t.Fatal("l=0 should give empty N_l")
	}
}

func TestNeighborsWithinPlusIncludesSelf(t *testing.T) {
	g := pathGraph(4)
	got := g.NeighborsWithinPlus(1, 1)
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("N_1^+(1) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("N_1^+(1) = %v, want %v", got, want)
		}
	}
	got0 := g.NeighborsWithinPlus(1, 0)
	if len(got0) != 1 || got0[0] != 1 {
		t.Fatalf("N_0^+(1) = %v, want [1]", got0)
	}
}

func TestNeighborsWithinLargeL(t *testing.T) {
	g := pathGraph(5)
	got := g.NeighborsWithin(0, 100)
	if len(got) != 4 {
		t.Fatalf("N_100(0) = %v, want all other nodes", got)
	}
}

func TestConnected(t *testing.T) {
	g := pathGraph(4)
	if !g.Connected() {
		t.Fatal("path graph should be connected")
	}
	h := New(4)
	h.AddEdge(0, 1)
	if h.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !New(0).Connected() || !New(1).Connected() {
		t.Fatal("trivial graphs should be connected")
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3: %v", len(comps), comps)
	}
	if len(comps[0]) != 2 || comps[0][0] != 0 {
		t.Fatalf("component 0 = %v", comps[0])
	}
	if len(comps[1]) != 3 || comps[1][0] != 2 {
		t.Fatalf("component 1 = %v", comps[1])
	}
	if len(comps[2]) != 1 || comps[2][0] != 5 {
		t.Fatalf("component 2 = %v", comps[2])
	}
}

func TestDijkstraMatchesBFSOnUnitWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		dist, _ := g.Dijkstra(0, func(u, v int) float64 { return 1 })
		hops := g.HopDistances(0)
		for i := 0; i < n; i++ {
			if hops[i] < 0 {
				if !math.IsInf(dist[i], 1) {
					t.Fatalf("node %d: BFS unreachable but Dijkstra %v", i, dist[i])
				}
				continue
			}
			if dist[i] != float64(hops[i]) {
				t.Fatalf("node %d: Dijkstra %v vs BFS %d", i, dist[i], hops[i])
			}
		}
	}
}

func TestDijkstraWeighted(t *testing.T) {
	// 0-1 cheap, 1-2 cheap, 0-2 expensive: path through 1 wins.
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	w := func(u, v int) float64 {
		if (u == 0 && v == 2) || (u == 2 && v == 0) {
			return 10
		}
		return 1
	}
	dist, prev := g.Dijkstra(0, w)
	if dist[2] != 2 {
		t.Fatalf("dist[2]=%v, want 2", dist[2])
	}
	path := PathTo(prev, 0, 2)
	if len(path) != 3 || path[0] != 0 || path[1] != 1 || path[2] != 2 {
		t.Fatalf("path=%v, want [0 1 2]", path)
	}
}

func TestPathToEdgeCases(t *testing.T) {
	if p := PathTo([]int{-1, -1}, 0, 0); len(p) != 1 || p[0] != 0 {
		t.Fatalf("src==dst path = %v", p)
	}
	if p := PathTo([]int{-1, -1}, 0, 1); p != nil {
		t.Fatalf("unreachable path = %v, want nil", p)
	}
	if p := PathTo([]int{-1}, 0, 5); p != nil {
		t.Fatalf("out-of-range dst path = %v, want nil", p)
	}
}

// Property: N_l(v) is monotone nondecreasing in l, and N_{n-1}(v) covers the
// whole component of v.
func TestNeighborhoodMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := New(n)
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		v := rng.Intn(n)
		prevSize := 0
		for l := 1; l < n; l++ {
			cur := len(g.NeighborsWithin(v, l))
			if cur < prevSize {
				return false
			}
			prevSize = cur
		}
		comp := 0
		for _, d := range g.HopDistances(v) {
			if d > 0 {
				comp++
			}
		}
		return prevSize == comp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
