// Package batch runs the per-request augmentation machinery of the paper
// over a stream of requests sharing one MEC network — the operating mode an
// operator actually faces. The paper solves each admitted request in
// isolation; batch adds the surrounding loop: admission (primary placement),
// augmentation with a chosen solver, capacity commitment, and an ordering
// policy that decides which request gets first pick of the remaining
// capacity.
package batch

import (
	"fmt"
	"log/slog"
	"math/rand"
	"sort"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/mec"
	"repro/internal/obs"
)

// Policy orders the batch before sequential augmentation.
type Policy int

const (
	// Arrival keeps the input order (first come, first augmented).
	Arrival Policy = iota
	// NeediestFirst augments the request with the largest reliability
	// deficit (ρ − Π r_i) first, spending contended capacity where it is
	// most needed.
	NeediestFirst
	// ShortestFirst augments short chains first; they need the fewest
	// backups to meet an expectation, maximizing the count of satisfied
	// requests under scarcity.
	ShortestFirst
)

// String names the ordering policy for flags and logs.
func (p Policy) String() string {
	switch p {
	case Arrival:
		return "arrival"
	case NeediestFirst:
		return "neediest-first"
	case ShortestFirst:
		return "shortest-first"
	}
	return "unknown"
}

// Options configures a batch run.
type Options struct {
	// Solver is the augmentation algorithm, any core.Solver (typically
	// resolved from the registry via core.Get). nil uses the registered
	// Heuristic — Algorithm 2: fast and it never violates capacity.
	// Registry solvers whose solutions may violate capacity (Randomized)
	// work too; violating solutions fail Commit and are recorded as
	// per-request errors rather than consuming the ledger.
	Solver core.Solver
	Policy Policy
	// L is the hop bound for secondary placement (default 1).
	L int
	// RandomPrimaries uses the evaluation section's uniform primary
	// placement instead of the layered-DAG admission framework.
	RandomPrimaries bool
}

// RequestOutcome records what happened to one request.
type RequestOutcome struct {
	Request  *mec.Request
	Admitted bool
	// Result is nil when the request was not admitted.
	Result *core.Result
	Err    error
}

// Summary aggregates a batch run.
type Summary struct {
	Outcomes []RequestOutcome
	Admitted int
	// Met counts admitted requests whose final reliability reached ρ.
	Met int
	// MeanReliability averages final reliability over admitted requests.
	MeanReliability float64
	// ResidualLeft is the total residual capacity remaining (MHz).
	ResidualLeft float64
}

// Run admits and augments the requests against net, committing capacity as
// it goes. net is mutated (admission and commits consume the ledger);
// requests that cannot be admitted are recorded and skipped.
//
// Every request's lifecycle (admission, solve, commit, outcome) is counted
// into the default obs registry under batch_* metrics and logged at debug
// level; the run summary is logged at info level. All recording happens
// after the per-request machinery returns, so it cannot perturb results.
func Run(net *mec.Network, requests []*mec.Request, rng *rand.Rand, opt Options) (*Summary, error) {
	if opt.L <= 0 {
		opt.L = 1
	}
	solver := opt.Solver
	if solver == nil {
		var ok bool
		if solver, ok = core.Get("Heuristic"); !ok {
			return nil, fmt.Errorf("batch: default Heuristic solver not registered")
		}
	}
	order := make([]*mec.Request, len(requests))
	copy(order, requests)
	switch opt.Policy {
	case Arrival:
	case NeediestFirst:
		sort.SliceStable(order, func(a, b int) bool {
			return deficit(net, order[a]) > deficit(net, order[b])
		})
	case ShortestFirst:
		sort.SliceStable(order, func(a, b int) bool {
			return order[a].Len() < order[b].Len()
		})
	default:
		return nil, fmt.Errorf("batch: unknown policy %d", opt.Policy)
	}

	sum := &Summary{}
	relSum := 0.0
	for _, req := range order {
		oc := RequestOutcome{Request: req}
		var err error
		if opt.RandomPrimaries {
			err = admission.PlaceRandom(net, req, rng)
		} else {
			err = admission.PlaceMaxReliability(net, req)
		}
		if err != nil {
			oc.Err = err
			sum.Outcomes = append(sum.Outcomes, oc)
			recordOutcome(opt.Policy, solver.Name(), oc)
			continue
		}
		oc.Admitted = true
		sum.Admitted++

		inst := core.NewInstance(net, req, core.Params{L: opt.L})
		res, err := solver.Solve(inst, rng)
		if err != nil {
			oc.Err = err
			sum.Outcomes = append(sum.Outcomes, oc)
			recordOutcome(opt.Policy, solver.Name(), oc)
			continue
		}
		if err := res.Commit(net); err != nil {
			oc.Err = err
			sum.Outcomes = append(sum.Outcomes, oc)
			recordOutcome(opt.Policy, solver.Name(), oc)
			continue
		}
		oc.Result = res
		if res.MetExpectation {
			sum.Met++
		}
		relSum += res.Reliability
		sum.Outcomes = append(sum.Outcomes, oc)
		recordOutcome(opt.Policy, solver.Name(), oc)
	}
	if sum.Admitted > 0 {
		sum.MeanReliability = relSum / float64(sum.Admitted)
	}
	for _, v := range net.Cloudlets() {
		sum.ResidualLeft += net.Residual(v)
	}
	slog.Info("batch: run complete",
		"policy", opt.Policy.String(), "solver", solver.Name(),
		"requests", len(order), "admitted", sum.Admitted, "met", sum.Met,
		"mean_reliability", sum.MeanReliability, "residual_left_mhz", sum.ResidualLeft)
	return sum, nil
}

// metrics are the batch layer's counters in the default registry, resolved
// once at init so the per-request cost is a handful of atomic adds.
var metrics = struct {
	requests *obs.Counter
	admitted *obs.Counter
	met      *obs.Counter
	errors   *obs.Counter
}{
	requests: obs.Default().Counter("batch_requests_total"),
	admitted: obs.Default().Counter("batch_admitted_total"),
	met:      obs.Default().Counter("batch_met_total"),
	errors:   obs.Default().Counter("batch_request_errors_total"),
}

// recordOutcome counts one request's fate and emits the per-request debug log.
func recordOutcome(policy Policy, solver string, oc RequestOutcome) {
	metrics.requests.Inc()
	if oc.Admitted {
		metrics.admitted.Inc()
	}
	if oc.Result != nil && oc.Result.MetExpectation {
		metrics.met.Inc()
	}
	if oc.Err != nil {
		metrics.errors.Inc()
	}
	attrs := []interface{}{
		"request", oc.Request.ID, "policy", policy.String(), "solver", solver,
		"admitted", oc.Admitted,
	}
	if oc.Result != nil {
		attrs = append(attrs, "reliability", oc.Result.Reliability, "met", oc.Result.MetExpectation)
	}
	if oc.Err != nil {
		attrs = append(attrs, "err", oc.Err)
	}
	slog.Debug("batch: request processed", attrs...)
}

// deficit is ρ − Π r_i, the reliability gap the request needs to close.
func deficit(net *mec.Network, req *mec.Request) float64 {
	u := 1.0
	for _, f := range req.SFC {
		u *= net.Catalog().Type(f).Reliability
	}
	return req.Expectation - u
}
