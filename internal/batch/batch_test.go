package batch

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/mec"
	"repro/internal/workload"
)

func sampleWorld(seed int64, n int, rho float64) (*mec.Network, []*mec.Request, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	cfg := workload.NewDefaultConfig()
	cfg.ResidualFraction = 1.0 // batch starts with a fresh network
	cfg.Expectation = rho
	net := cfg.Network(rng)
	var reqs []*mec.Request
	for i := 0; i < n; i++ {
		reqs = append(reqs, cfg.Request(rng, i, net.Catalog().Size()))
	}
	return net, reqs, rng
}

func TestRunBasic(t *testing.T) {
	net, reqs, rng := sampleWorld(1, 10, 0.99)
	sum, err := Run(net, reqs, rng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Admitted == 0 {
		t.Fatal("nothing admitted on a fresh network")
	}
	if len(sum.Outcomes) != 10 {
		t.Fatalf("outcomes %d, want 10", len(sum.Outcomes))
	}
	if sum.Met > sum.Admitted {
		t.Fatalf("met %d > admitted %d", sum.Met, sum.Admitted)
	}
	if sum.MeanReliability <= 0 || sum.MeanReliability > 1 {
		t.Fatalf("mean reliability %v", sum.MeanReliability)
	}
}

func TestCapacityMonotoneDrain(t *testing.T) {
	net, reqs, rng := sampleWorld(2, 8, 0.999)
	before := 0.0
	for _, v := range net.Cloudlets() {
		before += net.Residual(v)
	}
	sum, err := Run(net, reqs, rng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.ResidualLeft >= before {
		t.Fatalf("no capacity consumed: %v >= %v", sum.ResidualLeft, before)
	}
}

func TestPoliciesProduceSameAdmittedSetSizeOrBetter(t *testing.T) {
	// All policies must run cleanly; under scarcity, shortest-first should
	// satisfy at least as many requests as arrival order (weak check: both
	// runs complete and counts are sane).
	for _, pol := range []Policy{Arrival, NeediestFirst, ShortestFirst} {
		net, reqs, rng := sampleWorld(3, 20, 0.995)
		net.SetResidualFraction(0.15)
		sum, err := Run(net, reqs, rng, Options{Policy: pol, RandomPrimaries: true})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if sum.Met > sum.Admitted || sum.Admitted > 20 {
			t.Fatalf("%v: inconsistent summary %+v", pol, sum)
		}
	}
}

// TestSolversAllWork runs every registered solver through batch mode —
// including Randomized, which the old solver enum could not express.
func TestSolversAllWork(t *testing.T) {
	names := core.Names()
	if len(names) < 4 {
		t.Fatalf("registry has %d solvers, want at least the 4 built-ins", len(names))
	}
	for _, name := range names {
		sv, ok := core.Get(name)
		if !ok {
			t.Fatalf("registry lists %q but Get misses", name)
		}
		net, reqs, rng := sampleWorld(4, 5, 0.99)
		sum, err := Run(net, reqs, rng, Options{Solver: sv})
		if err != nil {
			t.Fatalf("%v: %v", name, err)
		}
		if sum.Admitted == 0 {
			t.Fatalf("%v: nothing admitted", name)
		}
	}
}

// TestRandomizedViolationsDoNotCommit checks the batch loop's handling of
// capacity-violating Randomized solutions: the outcome carries the Commit
// error instead of corrupting the ledger.
func TestRandomizedViolationsDoNotCommit(t *testing.T) {
	sv, _ := core.Get("Randomized")
	net, reqs, rng := sampleWorld(8, 12, 0.9999)
	net.SetResidualFraction(0.1) // scarcity provokes violations
	before := 0.0
	for _, v := range net.Cloudlets() {
		before += net.Residual(v)
	}
	sum, err := Run(net, reqs, rng, Options{Solver: sv, RandomPrimaries: true})
	if err != nil {
		t.Fatal(err)
	}
	if sum.ResidualLeft > before+1e-9 {
		t.Fatalf("ledger grew: %v -> %v", before, sum.ResidualLeft)
	}
	for _, oc := range sum.Outcomes {
		if oc.Result != nil && oc.Result.Violated {
			t.Fatalf("request %d: violating solution was committed", oc.Request.ID)
		}
	}
}

func TestILPAtLeastAsGoodAsGreedyPerRequest(t *testing.T) {
	// Same seed, same order: ILP's first-request reliability must be >=
	// greedy's (they see identical residual state for the first request).
	ilp, _ := core.Get("ILP")
	greedy, _ := core.Get("Greedy")
	netA, reqsA, rngA := sampleWorld(5, 1, 1.0)
	sumA, err := Run(netA, reqsA, rngA, Options{Solver: ilp, RandomPrimaries: true})
	if err != nil {
		t.Fatal(err)
	}
	netB, reqsB, rngB := sampleWorld(5, 1, 1.0)
	sumB, err := Run(netB, reqsB, rngB, Options{Solver: greedy, RandomPrimaries: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sumA.Outcomes[0].Admitted || !sumB.Outcomes[0].Admitted {
		t.Skip("request not admitted under this seed")
	}
	if sumA.Outcomes[0].Result.Reliability < sumB.Outcomes[0].Result.Reliability-1e-9 {
		t.Fatalf("ILP %v worse than greedy %v", sumA.Outcomes[0].Result.Reliability, sumB.Outcomes[0].Result.Reliability)
	}
}

func TestRejectionRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := workload.NewDefaultConfig()
	cfg.Expectation = 0.99
	net := cfg.Network(rng)
	net.SetResidualFraction(0.0) // no capacity at all
	req := cfg.Request(rng, 0, net.Catalog().Size())
	sum, err := Run(net, []*mec.Request{req}, rng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Admitted != 0 {
		t.Fatal("admission should fail with zero residual capacity")
	}
	if sum.Outcomes[0].Err == nil {
		t.Fatal("rejection must carry an error")
	}
}

func TestStringers(t *testing.T) {
	if Arrival.String() != "arrival" || NeediestFirst.String() != "neediest-first" || ShortestFirst.String() != "shortest-first" {
		t.Fatal("policy stringer")
	}
	if Policy(99).String() != "unknown" {
		t.Fatal("unknown policy stringer")
	}
}

func TestUnknownPolicyError(t *testing.T) {
	net, reqs, rng := sampleWorld(7, 1, 0.99)
	if _, err := Run(net, reqs, rng, Options{Policy: Policy(42)}); err == nil {
		t.Fatal("unknown policy must error")
	}
}

func TestNilSolverDefaultsToHeuristic(t *testing.T) {
	netA, reqsA, rngA := sampleWorld(9, 4, 0.99)
	sumA, err := Run(netA, reqsA, rngA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	heur, _ := core.Get("Heuristic")
	netB, reqsB, rngB := sampleWorld(9, 4, 0.99)
	sumB, err := Run(netB, reqsB, rngB, Options{Solver: heur})
	if err != nil {
		t.Fatal(err)
	}
	if sumA.MeanReliability != sumB.MeanReliability || sumA.Admitted != sumB.Admitted {
		t.Fatalf("nil solver (%v, %d) differs from explicit Heuristic (%v, %d)",
			sumA.MeanReliability, sumA.Admitted, sumB.MeanReliability, sumB.Admitted)
	}
}
