// Package topology generates random MEC network topologies in the style of
// the GT-ITM tool the paper cites for its experiment setup: Waxman flat
// random graphs, GT-ITM-like transit-stub hierarchies, plus Erdős–Rényi and
// regular structures for testing. All generators are deterministic for a
// given *rand.Rand and always return connected graphs (disconnected samples
// are repaired by bridging components with locality-aware edges).
package topology

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Point is a node position on the unit square, used by geometric generators.
type Point struct {
	X, Y float64
}

// Euclid returns the Euclidean distance between two points.
func Euclid(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Topology is a generated network: the graph plus node coordinates (which
// geometric generators populate; others synthesize random coordinates so
// downstream locality heuristics always have positions to work with).
type Topology struct {
	G      *graph.Graph
	Coords []Point
}

// WaxmanParams configures the Waxman random-graph model used by GT-ITM's
// "flat random" method: nodes are scattered uniformly on the unit square and
// each pair (u,v) is connected with probability
//
//	P(u,v) = Alpha * exp(-d(u,v) / (Beta * L))
//
// where d is Euclidean distance and L = sqrt(2) is the maximum distance.
type WaxmanParams struct {
	N     int     // number of nodes
	Alpha float64 // maximum edge probability, in (0,1]
	Beta  float64 // distance decay, in (0,1]
}

// DefaultWaxman returns the parameters the experiments use for n-node MEC
// topologies: alpha/beta chosen to give a mean degree of roughly 4-6 at
// n=100, comparable to GT-ITM's default flat graphs.
func DefaultWaxman(n int) WaxmanParams {
	return WaxmanParams{N: n, Alpha: 0.4, Beta: 0.15}
}

// Waxman samples a connected Waxman random graph.
func Waxman(p WaxmanParams, rng *rand.Rand) *Topology {
	if p.N <= 0 {
		panic(fmt.Sprintf("topology: Waxman N=%d must be positive", p.N))
	}
	if p.Alpha <= 0 || p.Alpha > 1 || p.Beta <= 0 || p.Beta > 1 {
		panic(fmt.Sprintf("topology: Waxman alpha=%v beta=%v out of (0,1]", p.Alpha, p.Beta))
	}
	coords := make([]Point, p.N)
	for i := range coords {
		coords[i] = Point{X: rng.Float64(), Y: rng.Float64()}
	}
	g := graph.New(p.N)
	maxD := math.Sqrt2
	for u := 0; u < p.N; u++ {
		for v := u + 1; v < p.N; v++ {
			prob := p.Alpha * math.Exp(-Euclid(coords[u], coords[v])/(p.Beta*maxD))
			if rng.Float64() < prob {
				g.AddEdge(u, v)
			}
		}
	}
	t := &Topology{G: g, Coords: coords}
	t.ensureConnected(rng)
	return t
}

// ErdosRenyi samples a connected G(n,p) random graph with synthetic uniform
// coordinates.
func ErdosRenyi(n int, prob float64, rng *rand.Rand) *Topology {
	if n <= 0 {
		panic(fmt.Sprintf("topology: ErdosRenyi n=%d must be positive", n))
	}
	if prob < 0 || prob > 1 {
		panic(fmt.Sprintf("topology: ErdosRenyi p=%v out of [0,1]", prob))
	}
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < prob {
				g.AddEdge(u, v)
			}
		}
	}
	t := &Topology{G: g, Coords: randomCoords(n, rng)}
	t.ensureConnected(rng)
	return t
}

// Grid returns a rows×cols 4-neighbor lattice with coordinates spread over
// the unit square. Deterministic; useful in tests where exact hop
// neighborhoods matter.
func Grid(rows, cols int) *Topology {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("topology: Grid %dx%d must be positive", rows, cols))
	}
	n := rows * cols
	g := graph.New(n)
	coords := make([]Point, n)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			coords[id(r, c)] = Point{
				X: safeDiv(float64(c), float64(cols-1)),
				Y: safeDiv(float64(r), float64(rows-1)),
			}
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return &Topology{G: g, Coords: coords}
}

// Ring returns an n-cycle (n>=3), or a path for n<3.
func Ring(n int) *Topology {
	if n <= 0 {
		panic(fmt.Sprintf("topology: Ring n=%d must be positive", n))
	}
	g := graph.New(n)
	coords := make([]Point, n)
	for i := 0; i < n; i++ {
		ang := 2 * math.Pi * float64(i) / float64(n)
		coords[i] = Point{X: 0.5 + 0.5*math.Cos(ang), Y: 0.5 + 0.5*math.Sin(ang)}
		if i+1 < n {
			g.AddEdge(i, i+1)
		}
	}
	if n >= 3 {
		g.AddEdge(n-1, 0)
	}
	return &Topology{G: g, Coords: coords}
}

// Star returns a star with node 0 at the center.
func Star(n int) *Topology {
	if n <= 0 {
		panic(fmt.Sprintf("topology: Star n=%d must be positive", n))
	}
	g := graph.New(n)
	coords := make([]Point, n)
	coords[0] = Point{X: 0.5, Y: 0.5}
	for i := 1; i < n; i++ {
		ang := 2 * math.Pi * float64(i) / float64(n-1)
		coords[i] = Point{X: 0.5 + 0.4*math.Cos(ang), Y: 0.5 + 0.4*math.Sin(ang)}
		g.AddEdge(0, i)
	}
	return &Topology{G: g, Coords: coords}
}

// ensureConnected bridges components by linking, for each non-primary
// component, its node closest (in Euclidean terms) to some node of the
// primary component — preserving geometric locality rather than adding
// arbitrary long-range shortcuts.
func (t *Topology) ensureConnected(rng *rand.Rand) {
	comps := t.G.Components()
	if len(comps) <= 1 {
		return
	}
	main := comps[0]
	for _, comp := range comps[1:] {
		bu, bv, best := -1, -1, math.Inf(1)
		for _, u := range comp {
			for _, v := range main {
				if d := Euclid(t.Coords[u], t.Coords[v]); d < best {
					best, bu, bv = d, u, v
				}
			}
		}
		t.G.AddEdge(bu, bv)
		main = append(main, comp...)
	}
}

func randomCoords(n int, rng *rand.Rand) []Point {
	coords := make([]Point, n)
	for i := range coords {
		coords[i] = Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return coords
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0.5
	}
	return a / b
}

// BarabasiAlbert samples a preferential-attachment graph: nodes arrive one
// at a time and attach m edges to existing nodes with probability
// proportional to degree, yielding the heavy-tailed degree distributions
// observed in real access networks. Coordinates are synthetic.
func BarabasiAlbert(n, m int, rng *rand.Rand) *Topology {
	if n <= 0 || m <= 0 {
		panic(fmt.Sprintf("topology: BarabasiAlbert n=%d m=%d must be positive", n, m))
	}
	if m >= n {
		m = n - 1
	}
	g := graph.New(n)
	// Seed clique of m+1 nodes keeps early attachment well-defined.
	seed := m + 1
	if seed > n {
		seed = n
	}
	var targets []int // degree-weighted attachment pool (node repeated per degree)
	for u := 0; u < seed; u++ {
		for v := u + 1; v < seed; v++ {
			g.AddEdge(u, v)
			targets = append(targets, u, v)
		}
	}
	for u := seed; u < n; u++ {
		chosen := make(map[int]bool)
		for len(chosen) < m {
			var v int
			if len(targets) == 0 {
				v = rng.Intn(u)
			} else {
				v = targets[rng.Intn(len(targets))]
			}
			if v != u {
				chosen[v] = true
			}
		}
		for v := range chosen {
			if g.AddEdge(u, v) {
				targets = append(targets, u, v)
			}
		}
	}
	t := &Topology{G: g, Coords: randomCoords(n, rng)}
	t.ensureConnected(rng)
	return t
}
