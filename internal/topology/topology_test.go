package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWaxmanConnectedAndSized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		top := Waxman(DefaultWaxman(100), rng)
		if top.G.N() != 100 {
			t.Fatalf("N=%d, want 100", top.G.N())
		}
		if !top.G.Connected() {
			t.Fatal("Waxman graph not connected after repair")
		}
		if len(top.Coords) != 100 {
			t.Fatalf("coords len %d", len(top.Coords))
		}
	}
}

func TestWaxmanMeanDegreeReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	top := Waxman(DefaultWaxman(100), rng)
	mean := 2 * float64(top.G.M()) / float64(top.G.N())
	if mean < 2 || mean > 20 {
		t.Fatalf("mean degree %.2f implausible for GT-ITM-like flat graph", mean)
	}
}

func TestWaxmanDeterministicForSeed(t *testing.T) {
	a := Waxman(DefaultWaxman(50), rand.New(rand.NewSource(42)))
	b := Waxman(DefaultWaxman(50), rand.New(rand.NewSource(42)))
	ea, eb := a.G.Edges(), b.G.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestWaxmanInvalidParamsPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range []WaxmanParams{
		{N: 0, Alpha: 0.5, Beta: 0.5},
		{N: 10, Alpha: 0, Beta: 0.5},
		{N: 10, Alpha: 0.5, Beta: 1.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("params %+v should panic", p)
				}
			}()
			Waxman(p, rng)
		}()
	}
}

func TestErdosRenyiConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	top := ErdosRenyi(60, 0.02, rng) // sparse: repair must kick in sometimes
	if !top.G.Connected() {
		t.Fatal("ER graph not connected after repair")
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	empty := ErdosRenyi(10, 0, rng)
	if !empty.G.Connected() {
		t.Fatal("p=0 graph should be repaired to connected")
	}
	if empty.G.M() != 9 {
		t.Fatalf("p=0 repair should add exactly n-1 bridges, got %d", empty.G.M())
	}
	full := ErdosRenyi(10, 1, rng)
	if full.G.M() != 45 {
		t.Fatalf("p=1 should be complete: M=%d, want 45", full.G.M())
	}
}

func TestGridStructure(t *testing.T) {
	top := Grid(3, 4)
	g := top.G
	if g.N() != 12 {
		t.Fatalf("N=%d", g.N())
	}
	// 3*(4-1) horizontal + 4*(3-1) vertical = 9+8 = 17
	if g.M() != 17 {
		t.Fatalf("M=%d, want 17", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 4) || g.HasEdge(0, 5) {
		t.Fatal("grid adjacency wrong")
	}
	if !g.Connected() {
		t.Fatal("grid should be connected")
	}
}

func TestRingStructure(t *testing.T) {
	top := Ring(5)
	if top.G.M() != 5 {
		t.Fatalf("M=%d, want 5", top.G.M())
	}
	for u := 0; u < 5; u++ {
		if top.G.Degree(u) != 2 {
			t.Fatalf("node %d degree %d, want 2", u, top.G.Degree(u))
		}
	}
	if Ring(2).G.M() != 1 {
		t.Fatal("Ring(2) should degrade to a single edge")
	}
	if Ring(1).G.M() != 0 {
		t.Fatal("Ring(1) should have no edges")
	}
}

func TestStarStructure(t *testing.T) {
	top := Star(6)
	if top.G.Degree(0) != 5 {
		t.Fatalf("center degree %d, want 5", top.G.Degree(0))
	}
	for u := 1; u < 6; u++ {
		if top.G.Degree(u) != 1 {
			t.Fatalf("leaf %d degree %d", u, top.G.Degree(u))
		}
	}
}

func TestTransitStubConnectedAndSized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := DefaultTransitStub(100)
	top := TransitStub(p, rng)
	want := p.TransitNodes + p.TransitNodes*p.StubsPerNode*p.StubSize
	if top.G.N() != want {
		t.Fatalf("N=%d, want %d", top.G.N(), want)
	}
	if !top.G.Connected() {
		t.Fatal("transit-stub graph not connected")
	}
}

func TestTransitStubInvalidParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TransitStub(TransitStubParams{TransitNodes: 0, StubsPerNode: 1, StubSize: 1}, rand.New(rand.NewSource(1)))
}

// Property: every generator output is connected and coordinates lie in the
// unit square.
func TestGeneratorsConnectedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(80)
		tops := []*Topology{
			Waxman(DefaultWaxman(n), rng),
			ErdosRenyi(n, 0.05, rng),
			TransitStub(DefaultTransitStub(n), rng),
		}
		for _, top := range tops {
			if !top.G.Connected() {
				return false
			}
			for _, c := range top.Coords {
				if c.X < 0 || c.X > 1 || c.Y < 0 || c.Y > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBarabasiAlbertBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	top := BarabasiAlbert(100, 2, rng)
	if top.G.N() != 100 {
		t.Fatalf("N=%d", top.G.N())
	}
	if !top.G.Connected() {
		t.Fatal("BA graph not connected")
	}
	// Preferential attachment produces hubs: max degree far above the mean.
	maxDeg, sumDeg := 0, 0
	for u := 0; u < top.G.N(); u++ {
		d := top.G.Degree(u)
		sumDeg += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(sumDeg) / float64(top.G.N())
	if float64(maxDeg) < 2.5*mean {
		t.Fatalf("no hub structure: max degree %d vs mean %.1f", maxDeg, mean)
	}
}

func TestBarabasiAlbertSmallAndInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	top := BarabasiAlbert(3, 5, rng) // m clamped to n-1
	if !top.G.Connected() {
		t.Fatal("tiny BA graph not connected")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("n=0 should panic")
		}
	}()
	BarabasiAlbert(0, 1, rng)
}
