package topology

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// TransitStubParams configures a GT-ITM style two-level transit-stub
// hierarchy: a small Waxman transit core; each transit node anchors several
// stub domains, themselves small Waxman graphs attached to their anchor.
type TransitStubParams struct {
	TransitNodes  int // nodes in the transit core (>=1)
	StubsPerNode  int // stub domains hanging off each transit node (>=1)
	StubSize      int // nodes per stub domain (>=1)
	TransitAlpha  float64
	TransitBeta   float64
	StubAlpha     float64
	StubBeta      float64
	ExtraStubLink float64 // probability of one extra stub→transit shortcut per stub
}

// DefaultTransitStub returns a hierarchy totalling approximately n nodes.
func DefaultTransitStub(n int) TransitStubParams {
	transit := n / 20
	if transit < 2 {
		transit = 2
	}
	stubSize := 4
	stubs := (n - transit) / (transit * stubSize)
	if stubs < 1 {
		stubs = 1
	}
	return TransitStubParams{
		TransitNodes:  transit,
		StubsPerNode:  stubs,
		StubSize:      stubSize,
		TransitAlpha:  0.8,
		TransitBeta:   0.4,
		StubAlpha:     0.6,
		StubBeta:      0.3,
		ExtraStubLink: 0.2,
	}
}

// TransitStub samples a connected transit-stub topology. Node IDs 0..T-1 are
// the transit core; stub nodes follow in domain order.
func TransitStub(p TransitStubParams, rng *rand.Rand) *Topology {
	if p.TransitNodes < 1 || p.StubsPerNode < 1 || p.StubSize < 1 {
		panic(fmt.Sprintf("topology: invalid transit-stub params %+v", p))
	}
	total := p.TransitNodes + p.TransitNodes*p.StubsPerNode*p.StubSize
	g := graph.New(total)
	coords := make([]Point, total)

	// Transit core: Waxman over the full unit square.
	core := Waxman(WaxmanParams{N: p.TransitNodes, Alpha: p.TransitAlpha, Beta: p.TransitBeta}, rng)
	for _, e := range core.G.Edges() {
		g.AddEdge(e[0], e[1])
	}
	copy(coords, core.Coords)

	next := p.TransitNodes
	for tn := 0; tn < p.TransitNodes; tn++ {
		for s := 0; s < p.StubsPerNode; s++ {
			stub := Waxman(WaxmanParams{N: p.StubSize, Alpha: p.StubAlpha, Beta: p.StubBeta}, rng)
			base := next
			anchor := coords[tn]
			for i := 0; i < p.StubSize; i++ {
				// Shrink the stub around its transit anchor.
				coords[base+i] = Point{
					X: clamp01(anchor.X + 0.1*(stub.Coords[i].X-0.5)),
					Y: clamp01(anchor.Y + 0.1*(stub.Coords[i].Y-0.5)),
				}
			}
			for _, e := range stub.G.Edges() {
				g.AddEdge(base+e[0], base+e[1])
			}
			// Attach the stub to its transit anchor via a random gateway.
			gateway := base + rng.Intn(p.StubSize)
			g.AddEdge(gateway, tn)
			// Occasional extra shortcut to a second transit node.
			if p.TransitNodes > 1 && rng.Float64() < p.ExtraStubLink {
				other := rng.Intn(p.TransitNodes)
				if other != tn {
					g.AddEdge(base+rng.Intn(p.StubSize), other)
				}
			}
			next += p.StubSize
		}
	}
	t := &Topology{G: g, Coords: coords}
	t.ensureConnected(rng)
	return t
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
