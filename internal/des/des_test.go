package des

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/workload"
)

func baseConfig() Config {
	wl := workload.NewDefaultConfig()
	wl.Expectation = 0.99
	wl.SFCLenMin, wl.SFCLenMax = 3, 6
	return Config{
		ArrivalRate: 0.5,
		MeanHold:    10,
		Horizon:     200,
		Warmup:      20,
		Workload:    wl,
	}
}

func TestRunBasics(t *testing.T) {
	m, err := Run(baseConfig(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if m.Arrivals == 0 {
		t.Fatal("no arrivals simulated")
	}
	if m.Accepted+m.Blocked != m.Arrivals {
		t.Fatalf("accepted %d + blocked %d != arrivals %d", m.Accepted, m.Blocked, m.Arrivals)
	}
	if m.Met > m.Accepted {
		t.Fatal("met exceeds accepted")
	}
	if m.MeanUtilization < 0 || m.MeanUtilization > 1 {
		t.Fatalf("utilization %v out of [0,1]", m.MeanUtilization)
	}
	if m.MeanReliability <= 0 || m.MeanReliability > 1 {
		t.Fatalf("mean reliability %v", m.MeanReliability)
	}
}

func TestLedgerConservation(t *testing.T) {
	m, err := Run(baseConfig(), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if !m.EndResidualIntact {
		t.Fatal("capacity leaked: ledger did not return to its initial state after draining")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(baseConfig(), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseConfig(), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Arrivals != b.Arrivals || a.Accepted != b.Accepted || a.MeanUtilization != b.MeanUtilization {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
}

func TestBlockingGrowsWithLoad(t *testing.T) {
	low := baseConfig()
	low.ArrivalRate = 0.2
	high := baseConfig()
	high.ArrivalRate = 5
	ml, err := Run(low, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	mh, err := Run(high, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if mh.BlockingProbability < ml.BlockingProbability {
		t.Fatalf("blocking should grow with load: %v vs %v", ml.BlockingProbability, mh.BlockingProbability)
	}
	if mh.MeanUtilization < ml.MeanUtilization {
		t.Fatalf("utilization should grow with load: %v vs %v", ml.MeanUtilization, mh.MeanUtilization)
	}
}

func TestLittlesLawLowLoad(t *testing.T) {
	// Under negligible blocking, mean concurrent sessions ≈ λ·E[hold].
	cfg := baseConfig()
	cfg.ArrivalRate = 0.1
	cfg.MeanHold = 5
	cfg.Horizon = 3000
	cfg.Warmup = 100
	m, err := Run(cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if m.BlockingProbability > 0.05 {
		t.Skipf("load not low enough for Little's law check (blocking %v)", m.BlockingProbability)
	}
	want := cfg.ArrivalRate * cfg.MeanHold // 0.5
	if math.Abs(m.MeanActive-want) > 0.25*want+0.15 {
		t.Fatalf("Little's law: mean active %v, want ≈ %v", m.MeanActive, want)
	}
}

func TestWarmupExcludesTransient(t *testing.T) {
	cfg := baseConfig()
	cfg.Warmup = 150 // most of the horizon
	m, err := Run(cfg, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	full := baseConfig()
	full.Warmup = 0
	mf, err := Run(full, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if m.Arrivals >= mf.Arrivals {
		t.Fatalf("warmup should reduce counted arrivals: %d vs %d", m.Arrivals, mf.Arrivals)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := baseConfig()
	bad.ArrivalRate = 0
	if _, err := Run(bad, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("zero arrival rate accepted")
	}
	bad = baseConfig()
	bad.Warmup = bad.Horizon
	if _, err := Run(bad, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("warmup >= horizon accepted")
	}
}

func TestILPVariant(t *testing.T) {
	cfg := baseConfig()
	cfg.Horizon = 60
	cfg.Warmup = 5
	cfg.UseILP = true
	m, err := Run(cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if !m.EndResidualIntact {
		t.Fatal("ILP variant leaked capacity")
	}
}
