// Package des is a discrete-event simulator for dynamic request arrivals in
// an MEC network. The paper solves the augmentation problem for a single
// admitted request; real networks see a churn of requests arriving (Poisson)
// and departing (exponential holding times), with capacity committed at
// admission and released at departure. The simulator drives the paper's
// machinery through that regime and reports blocking probability,
// expectation-satisfaction rate, and time-averaged capacity utilization —
// the metrics the dynamic-arrival literature the paper cites ([12], [13])
// evaluates.
package des

import (
	"container/heap"
	"fmt"
	"log/slog"
	"math"
	"math/rand"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/mec"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Config parameterizes a simulation run.
type Config struct {
	// ArrivalRate λ: mean request arrivals per unit time (> 0).
	ArrivalRate float64
	// MeanHold 1/μ: mean session duration (> 0).
	MeanHold float64
	// Horizon is the simulated time span (> 0).
	Horizon float64
	// Warmup discards metrics before this time (transient removal).
	Warmup float64
	// Workload generates the network and per-request shapes.
	Workload workload.Config
	// UseILP selects the exact solver instead of the heuristic.
	UseILP bool
	// L is the hop bound (default 1).
	L int
}

func (c Config) validate() error {
	if c.ArrivalRate <= 0 || c.MeanHold <= 0 || c.Horizon <= 0 {
		return fmt.Errorf("des: rate %v, hold %v, horizon %v must be positive", c.ArrivalRate, c.MeanHold, c.Horizon)
	}
	if c.Warmup < 0 || c.Warmup >= c.Horizon {
		return fmt.Errorf("des: warmup %v out of [0,%v)", c.Warmup, c.Horizon)
	}
	return nil
}

// Metrics aggregates a run (post-warmup unless stated).
type Metrics struct {
	Arrivals int
	Accepted int
	Blocked  int // admission failed: no capacity for primaries
	Met      int // accepted and reached ρ
	// BlockingProbability = Blocked / Arrivals.
	BlockingProbability float64
	// MetRate = Met / Accepted.
	MetRate float64
	// MeanReliability over accepted requests.
	MeanReliability float64
	// MeanUtilization is the time-averaged fraction of total cloudlet
	// capacity in use across the full horizon (including warmup, since it is
	// a state average, reported from warmup onwards).
	MeanUtilization float64
	// PeakActive is the maximum number of concurrent sessions observed.
	PeakActive int
	// MeanActive is the time-averaged number of concurrent sessions.
	MeanActive float64
	// EndResidualIntact reports whether, after draining all sessions at the
	// end of the run, the ledger returned to its initial state (a
	// conservation check the tests rely on).
	EndResidualIntact bool
}

// event is an arrival or departure.
type event struct {
	t      float64
	isDep  bool
	id     int
	req    *mec.Request
	relAmt []release // departure: capacity to give back
}

type release struct {
	node int
	amt  float64
}

type eventHeap []*event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].t < h[j].t }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	e := old[len(old)-1]
	*h = old[:len(old)-1]
	return e
}

// Run executes the simulation. The network is sampled from cfg.Workload with
// full residual capacity (the residual-fraction knob does not apply to the
// dynamic regime; churn itself produces partial occupancy).
func Run(cfg Config, rng *rand.Rand) (*Metrics, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.L <= 0 {
		cfg.L = 1
	}
	// Resolve the solver once through the registry-style adapters so every
	// solve flows through the instrumented core.Solver wrapper (durations,
	// pivots, node counts) without touching the event loop's rng stream.
	solver := core.NewHeuristicSolver(core.HeuristicOptions{})
	if cfg.UseILP {
		solver = core.NewILPSolver(core.ILPOptions{})
	}
	slog.Info("des: starting run",
		"rate", cfg.ArrivalRate, "mean_hold", cfg.MeanHold,
		"horizon", cfg.Horizon, "warmup_cutoff", cfg.Warmup, "solver", solver.Name())
	wl := cfg.Workload
	wl.ResidualFraction = 1.0
	net := wl.Network(rng)

	totalCap := 0.0
	for _, v := range net.Cloudlets() {
		totalCap += net.Capacity[v]
	}
	initialResidual := net.ResidualSnapshot()

	var q eventHeap
	// Pre-generate the arrival process.
	id := 0
	for t := expDraw(rng, 1/cfg.ArrivalRate); t < cfg.Horizon; t += expDraw(rng, 1/cfg.ArrivalRate) {
		req := wl.Request(rng, id, net.Catalog().Size())
		heap.Push(&q, &event{t: t, req: req, id: id})
		id++
	}

	m := &Metrics{}
	var (
		utilInt   float64 // ∫ utilization dt after warmup
		activeInt float64 // ∫ active dt after warmup
		lastT     = cfg.Warmup
		active    int
		relSum    float64
	)
	used := func() float64 {
		u := 0.0
		for _, v := range net.Cloudlets() {
			u += net.Capacity[v] - net.Residual(v)
		}
		return u
	}
	tick := func(now float64) {
		if now <= cfg.Warmup {
			return
		}
		from := math.Max(lastT, cfg.Warmup)
		if now > from {
			utilInt += used() / totalCap * (now - from)
			activeInt += float64(active) * (now - from)
			lastT = now
		}
	}

	for q.Len() > 0 {
		ev := heap.Pop(&q).(*event)
		if ev.t >= cfg.Horizon {
			heap.Push(&q, ev) // hand it to the drain loop (may hold capacity)
			break
		}
		tick(ev.t)
		if ev.isDep {
			for _, r := range ev.relAmt {
				net.Release(r.node, r.amt)
			}
			active--
			continue
		}

		if ev.t >= cfg.Warmup {
			m.Arrivals++
		}
		// Admission: primaries (random placement, the paper's §7.1 default).
		snap := net.ResidualSnapshot()
		if err := admission.PlaceRandom(net, ev.req, rng); err != nil {
			if ev.t >= cfg.Warmup {
				m.Blocked++
			}
			continue
		}
		inst := core.NewInstance(net, ev.req, core.Params{L: cfg.L})
		res, err := solver.Solve(inst, rng)
		if err != nil {
			return nil, fmt.Errorf("des: solver failed at t=%v: %w", ev.t, err)
		}
		if err := res.Commit(net); err != nil {
			return nil, fmt.Errorf("des: commit failed at t=%v: %w", ev.t, err)
		}

		// Record the exact capacity this session holds, for departure.
		var rels []release
		after := net.ResidualSnapshot()
		for v := range snap {
			if d := snap[v] - after[v]; d > 1e-12 {
				rels = append(rels, release{node: v, amt: d})
			}
		}
		active++
		if active > m.PeakActive {
			m.PeakActive = active
		}
		if ev.t >= cfg.Warmup {
			m.Accepted++
			relSum += res.Reliability
			if res.MetExpectation {
				m.Met++
			}
		}
		dep := &event{t: ev.t + expDraw(rng, cfg.MeanHold), isDep: true, relAmt: rels}
		heap.Push(&q, dep)
	}
	tick(cfg.Horizon)

	// Drain remaining sessions to verify ledger conservation.
	for q.Len() > 0 {
		ev := heap.Pop(&q).(*event)
		if ev.isDep {
			for _, r := range ev.relAmt {
				net.Release(r.node, r.amt)
			}
		}
	}
	m.EndResidualIntact = true
	end := net.ResidualSnapshot()
	for v := range end {
		if math.Abs(end[v]-initialResidual[v]) > 1e-6 {
			m.EndResidualIntact = false
			break
		}
	}

	if m.Arrivals > 0 {
		m.BlockingProbability = float64(m.Blocked) / float64(m.Arrivals)
	}
	if m.Accepted > 0 {
		m.MetRate = float64(m.Met) / float64(m.Accepted)
		m.MeanReliability = relSum / float64(m.Accepted)
	}
	span := cfg.Horizon - cfg.Warmup
	if span > 0 {
		m.MeanUtilization = utilInt / span
		m.MeanActive = activeInt / span
	}
	m.record(solver.Name())
	return m, nil
}

// record publishes the warmup-excluded aggregates into the default registry
// and logs the run summary. It runs once per Run, after the event loop and
// conservation check, so it cannot perturb the seeded simulation.
func (m *Metrics) record(solver string) {
	r := obs.Default()
	r.Counter("des_arrivals_total", "solver", solver).Add(int64(m.Arrivals))
	r.Counter("des_blocked_total", "solver", solver).Add(int64(m.Blocked))
	r.Counter("des_accepted_total", "solver", solver).Add(int64(m.Accepted))
	r.Counter("des_met_total", "solver", solver).Add(int64(m.Met))
	r.Gauge("des_mean_utilization_ratio", "solver", solver).Set(m.MeanUtilization)
	r.Gauge("des_blocking_probability", "solver", solver).Set(m.BlockingProbability)
	r.Histogram("des_mean_reliability", obs.RatioBuckets, "solver", solver).Observe(m.MeanReliability)
	slog.Info("des: run complete",
		"solver", solver, "arrivals", m.Arrivals, "accepted", m.Accepted,
		"blocked", m.Blocked, "met", m.Met,
		"blocking_probability", m.BlockingProbability, "met_rate", m.MetRate,
		"mean_utilization", m.MeanUtilization, "mean_active", m.MeanActive,
		"ledger_intact", m.EndResidualIntact)
}

// expDraw samples an exponential with the given mean.
func expDraw(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}
