// Package des is a discrete-event simulator for dynamic request arrivals in
// an MEC network. The paper solves the augmentation problem for a single
// admitted request; real networks see a churn of requests arriving (Poisson)
// and departing (exponential holding times), with capacity committed at
// admission and released at departure. The simulator drives the paper's
// machinery through that regime and reports blocking probability,
// expectation-satisfaction rate, and time-averaged capacity utilization —
// the metrics the dynamic-arrival literature the paper cites ([12], [13])
// evaluates.
//
// Two resilience mechanisms extend the basic churn model:
//
//   - Every solve goes through a core.Fallback chain (by default
//     [ILP →] Heuristic → Greedy), so a request whose preferred solver
//     fails or exceeds its wall-clock budget degrades to a cheaper
//     algorithm, and a request no stage can serve is recorded as Blocked
//     with a reason instead of aborting the run.
//   - Optional seeded cloudlet crash/repair injection (FaultConfig): a
//     crash destroys the VNF instances hosted on the cloudlet and takes its
//     capacity offline; affected sessions are re-augmented through the
//     chain or dropped; a repair returns the capacity. The run reports
//     SLO-violation time, re-augmentation successes/failures, and the blast
//     radius of each crash — a dynamic cross-check of internal/failsim's
//     static availability numbers.
package des

import (
	"container/heap"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/mec"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Config parameterizes a simulation run.
type Config struct {
	// ArrivalRate λ: mean request arrivals per unit time (> 0).
	ArrivalRate float64
	// MeanHold 1/μ: mean session duration (> 0).
	MeanHold float64
	// Horizon is the simulated time span (> 0).
	Horizon float64
	// Warmup discards metrics before this time (transient removal).
	Warmup float64
	// Workload generates the network and per-request shapes.
	Workload workload.Config
	// UseILP puts the exact solver at the head of the fallback chain.
	UseILP bool
	// ILPBudget bounds the ILP stage's wall clock per solve when UseILP is
	// set: the ILP returns its best incumbent at the deadline and is
	// abandoned (falling through to the heuristic) shortly after. Zero
	// keeps the deterministic node-budget-only ILP.
	ILPBudget time.Duration
	// Chain overrides the solver fallback chain entirely (advanced). nil
	// builds [ILP@ILPBudget →] Heuristic → Greedy from the fields above.
	Chain []core.FallbackStage
	// Faults configures seeded cloudlet crash/repair injection.
	Faults FaultConfig
	// L is the hop bound (default 1).
	L int
}

func (c Config) validate() error {
	if c.ArrivalRate <= 0 || c.MeanHold <= 0 || c.Horizon <= 0 {
		return fmt.Errorf("des: rate %v, hold %v, horizon %v must be positive", c.ArrivalRate, c.MeanHold, c.Horizon)
	}
	if c.Warmup < 0 || c.Warmup >= c.Horizon {
		return fmt.Errorf("des: warmup %v out of [0,%v)", c.Warmup, c.Horizon)
	}
	return c.Faults.validate()
}

// buildSolver assembles the run's fallback chain (see Config.Chain).
func (c Config) buildSolver() core.Solver {
	stages := c.Chain
	if len(stages) == 0 {
		if c.UseILP {
			if c.ILPBudget > 0 {
				// Internal incumbent deadline plus external slack — the
				// same policy as core.ParseFallback's budgeted ILP stage.
				stages = append(stages, core.Stage(
					core.NewILPSolver(core.ILPOptions{Timeout: c.ILPBudget}),
					c.ILPBudget+c.ILPBudget/4+10*time.Millisecond))
			} else {
				stages = append(stages, core.Stage(core.NewILPSolver(core.ILPOptions{Timeout: core.NoTimeout}), 0))
			}
		}
		stages = append(stages,
			core.Stage(core.NewHeuristicSolver(core.HeuristicOptions{}), 0),
			core.Stage(core.NewGreedySolver(), 0))
	}
	names := make([]string, len(stages))
	for i, st := range stages {
		names[i] = st.Solver.Name()
	}
	return core.Fallback(strings.Join(names, "+"), stages...)
}

// Metrics aggregates a run (post-warmup unless stated).
type Metrics struct {
	Arrivals int
	Accepted int
	Blocked  int // admission or augmentation failed (see the reason split)
	Met      int // accepted and reached ρ at admission
	// Blocked splits by reason (post-warmup, like Blocked):
	BlockedNoCapacity int // no cloudlet could host a primary
	BlockedSolver     int // the fallback chain exhausted every stage
	BlockedCommit     int // the solution no longer fit the live ledger
	// ServedByStage counts successful solves (admission and
	// re-augmentation, full horizon) per fallback stage that served them.
	ServedByStage map[string]int
	// BlockingProbability = Blocked / Arrivals.
	BlockingProbability float64
	// MetRate = Met / Accepted.
	MetRate float64
	// MeanReliability over accepted requests.
	MeanReliability float64
	// MeanUtilization is the time-averaged fraction of total cloudlet
	// capacity in use across the full horizon (including warmup, since it is
	// a state average, reported from warmup onwards). Capacity taken offline
	// by a crash counts as in use — from the operator's view it is equally
	// unavailable.
	MeanUtilization float64
	// PeakActive is the maximum number of concurrent sessions observed.
	PeakActive int
	// MeanActive is the time-averaged number of concurrent sessions.
	MeanActive float64
	// EndResidualIntact reports whether, after draining all sessions (and
	// repairing still-dark cloudlets) at the end of the run, the ledger
	// returned to its initial state (a conservation check the tests rely
	// on).
	EndResidualIntact bool

	// Fault-injection metrics (full horizon; zero when faults are off):
	Crashes          int
	Repairs          int
	AffectedSessions int // session-crash incidences, Σ BlastRadii
	Reaugmented      int // crash-affected sessions restored through the chain
	ReaugFailed      int // crash-affected sessions the chain could not restore
	DroppedSessions  int // sessions terminated early (== ReaugFailed)
	// BlastRadii records, per crash event in time order, how many active
	// sessions lost at least one VNF instance.
	BlastRadii []int
	// SLOViolationTime integrates, over [Warmup, Horizon], the session-time
	// during which an accepted session's placement did not meet its
	// reliability expectation ρ — from admission shortfall, from a crash
	// until re-augmentation restores ρ, or (for dropped sessions) until the
	// session's intended departure.
	SLOViolationTime float64
}

type eventKind int

const (
	evArrival eventKind = iota
	evDeparture
	evCrash
	evRepair
)

// session is one admitted request's live state: the capacity it holds per
// node, its scheduled departure, and its SLO bookkeeping.
type session struct {
	id       int
	req      *mec.Request
	holdings map[int]float64 // node → MHz held (primaries + secondaries)
	depTime  float64
	counted  bool // arrived after warmup: contributes to rate metrics
	met      bool // current placement meets ρ
	violFrom float64
	dropped  bool
}

// event is an arrival, departure, cloudlet crash, or cloudlet repair.
type event struct {
	t    float64
	kind eventKind
	id   int          // arrival: request id
	req  *mec.Request // arrival
	sess *session     // departure
	node int          // crash/repair: the cloudlet
}

type eventHeap []*event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].t < h[j].t }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	e := old[len(old)-1]
	*h = old[:len(old)-1]
	return e
}

// Run executes the simulation. The network is sampled from cfg.Workload with
// full residual capacity (the residual-fraction knob does not apply to the
// dynamic regime; churn itself produces partial occupancy).
//
// Determinism: a run is a pure function of (cfg, the rng stream). The event
// loop is single-threaded, affected sessions are visited in ascending id
// order, and the fallback chain consumes a fixed number of rng draws per
// solve, so two runs with the same seed produce bit-identical metrics and
// crash/repair trajectories — unless a stage carries a wall-clock budget
// (ILPBudget), which deliberately trades reproducibility for latency, the
// same trade ILPOptions.Timeout documents.
func Run(cfg Config, rng *rand.Rand) (*Metrics, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.L <= 0 {
		cfg.L = 1
	}
	solver := cfg.buildSolver()
	slog.Info("des: starting run",
		"rate", cfg.ArrivalRate, "mean_hold", cfg.MeanHold,
		"horizon", cfg.Horizon, "warmup_cutoff", cfg.Warmup, "solver", solver.Name(),
		"faults", cfg.Faults.Enabled)
	wl := cfg.Workload
	wl.ResidualFraction = 1.0
	net := wl.Network(rng)

	totalCap := 0.0
	for _, v := range net.Cloudlets() {
		totalCap += net.Capacity[v]
	}
	initialResidual := net.ResidualSnapshot()

	var q eventHeap
	// Pre-generate the fault process (its rng is split off the main stream
	// with a single draw so enabling faults shifts, never interleaves, the
	// arrival stream).
	if cfg.Faults.Enabled {
		faultRng := rand.New(rand.NewSource(rng.Int63()))
		for _, ev := range faultTimeline(net.Cloudlets(), cfg.Faults, cfg.Horizon, faultRng) {
			heap.Push(&q, ev)
		}
	}
	// Pre-generate the arrival process.
	id := 0
	for t := expDraw(rng, 1/cfg.ArrivalRate); t < cfg.Horizon; t += expDraw(rng, 1/cfg.ArrivalRate) {
		req := wl.Request(rng, id, net.Catalog().Size())
		heap.Push(&q, &event{t: t, kind: evArrival, req: req, id: id})
		id++
	}

	m := &Metrics{ServedByStage: make(map[string]int)}
	var (
		utilInt   float64 // ∫ utilization dt after warmup
		activeInt float64 // ∫ active dt after warmup
		lastT     = cfg.Warmup
		active    int
		relSum    float64
	)
	sessions := make(map[int]*session)
	down := make(map[int]bool) // cloudlet → currently crashed
	used := func() float64 {
		u := 0.0
		for _, v := range net.Cloudlets() {
			u += net.Capacity[v] - net.Residual(v)
		}
		return u
	}
	tick := func(now float64) {
		if now <= cfg.Warmup {
			return
		}
		from := math.Max(lastT, cfg.Warmup)
		if now > from {
			utilInt += used() / totalCap * (now - from)
			activeInt += float64(active) * (now - from)
			lastT = now
		}
	}
	// violSpan clamps an SLO-violation interval to the measured window.
	violSpan := func(from, to float64) float64 {
		lo := math.Max(from, cfg.Warmup)
		hi := math.Min(to, cfg.Horizon)
		if hi > lo {
			return hi - lo
		}
		return 0
	}
	// setMet transitions a session's SLO state at time now, integrating the
	// violation interval that just ended.
	setMet := func(s *session, met bool, now float64) {
		if s.met == met {
			return
		}
		if met {
			m.SLOViolationTime += violSpan(s.violFrom, now)
		} else {
			s.violFrom = now
		}
		s.met = met
	}
	// drop terminates a crash-affected session the chain could not restore.
	// Its holdings have already been released by the re-augmentation
	// attempt; the rest of its intended lifetime counts as violated.
	drop := func(s *session, now float64) {
		m.ReaugFailed++
		m.DroppedSessions++
		if !s.met {
			m.SLOViolationTime += violSpan(s.violFrom, now)
		}
		m.SLOViolationTime += violSpan(now, s.depTime)
		s.dropped = true
		delete(sessions, s.id)
		active--
	}
	// solveAndCommit runs admission + augmentation + commitment for req
	// against the live ledger, returning the per-node capacity diff. On any
	// failure the ledger is rolled back and a blocked reason is returned.
	solveAndCommit := func(req *mec.Request) (map[int]float64, *core.Result, string) {
		snap := net.ResidualSnapshot()
		if err := admission.PlaceRandom(net, req, rng); err != nil {
			return nil, nil, "no_capacity"
		}
		inst := core.NewInstance(net, req, core.Params{L: cfg.L})
		res, err := solver.Solve(inst, rng)
		if err != nil {
			net.RestoreResiduals(snap)
			return nil, nil, "solver_exhausted"
		}
		if err := res.Commit(net); err != nil {
			net.RestoreResiduals(snap)
			return nil, nil, "commit_failed"
		}
		holdings := make(map[int]float64)
		after := net.ResidualSnapshot()
		for v := range snap {
			if d := snap[v] - after[v]; d > 1e-12 {
				holdings[v] = d
			}
		}
		m.ServedByStage[res.ServedBy]++
		return holdings, res, ""
	}

	for q.Len() > 0 {
		ev := heap.Pop(&q).(*event)
		if ev.t >= cfg.Horizon {
			heap.Push(&q, ev) // hand it to the drain loop (may hold capacity)
			break
		}
		tick(ev.t)
		switch ev.kind {
		case evDeparture:
			s := ev.sess
			if s.dropped {
				continue
			}
			for u, amt := range s.holdings {
				net.Release(u, amt)
			}
			if !s.met {
				m.SLOViolationTime += violSpan(s.violFrom, ev.t)
			}
			delete(sessions, s.id)
			active--

		case evArrival:
			counted := ev.t >= cfg.Warmup
			if counted {
				m.Arrivals++
			}
			holdings, res, reason := solveAndCommit(ev.req)
			if reason != "" {
				if counted {
					m.Blocked++
					switch reason {
					case "no_capacity":
						m.BlockedNoCapacity++
					case "solver_exhausted":
						m.BlockedSolver++
					case "commit_failed":
						m.BlockedCommit++
					}
				}
				continue
			}
			s := &session{
				id: ev.id, req: ev.req, holdings: holdings,
				depTime: ev.t + expDraw(rng, cfg.MeanHold),
				counted: counted, met: res.MetExpectation, violFrom: ev.t,
			}
			sessions[s.id] = s
			heap.Push(&q, &event{t: s.depTime, kind: evDeparture, sess: s})
			active++
			if active > m.PeakActive {
				m.PeakActive = active
			}
			if counted {
				m.Accepted++
				relSum += res.Reliability
				if res.MetExpectation {
					m.Met++
				}
			}

		case evCrash:
			v := ev.node
			m.Crashes++
			down[v] = true
			// Affected sessions, in ascending id order so the re-augmentation
			// sequence (and its rng draws) is deterministic.
			var affected []*session
			for _, s := range sessions {
				if s.holdings[v] > 0 {
					affected = append(affected, s)
				}
			}
			sort.Slice(affected, func(i, j int) bool { return affected[i].id < affected[j].id })
			m.BlastRadii = append(m.BlastRadii, len(affected))
			m.AffectedSessions += len(affected)
			// The crash destroys every hosted instance: the capacity those
			// instances held on v vanishes with the node.
			for _, s := range affected {
				delete(s.holdings, v)
			}
			// Take the remaining capacity offline so no placement lands on a
			// dark cloudlet (zero residual excludes it from every bin set).
			if r := net.Residual(v); r > 0 {
				net.Consume(v, r)
			}
			// Re-augment each affected session through the chain: surviving
			// instances are migrated (their capacity released, the request
			// re-admitted and re-solved against the degraded network).
			for _, s := range affected {
				for u, amt := range s.holdings {
					net.Release(u, amt)
				}
				s.holdings = make(map[int]float64)
				s.req.Primaries = nil
				holdings, res, reason := solveAndCommit(s.req)
				if reason != "" {
					drop(s, ev.t)
					continue
				}
				s.holdings = holdings
				m.Reaugmented++
				setMet(s, res.MetExpectation, ev.t)
			}

		case evRepair:
			v := ev.node
			m.Repairs++
			down[v] = false
			// Nothing holds capacity on a dark cloudlet (the crash destroyed
			// its instances and zero residual kept new ones away), so the
			// repaired node returns at full capacity; Release caps there.
			net.Release(v, net.Capacity[v])
		}
	}
	tick(cfg.Horizon)

	// Drain remaining sessions (and repair still-dark cloudlets) to verify
	// ledger conservation.
	for q.Len() > 0 {
		ev := heap.Pop(&q).(*event)
		if ev.kind != evDeparture || ev.sess.dropped {
			continue
		}
		for u, amt := range ev.sess.holdings {
			net.Release(u, amt)
		}
		if !ev.sess.met {
			m.SLOViolationTime += violSpan(ev.sess.violFrom, ev.t)
		}
	}
	for v, isDown := range down {
		if isDown {
			net.Release(v, net.Capacity[v])
		}
	}
	m.EndResidualIntact = true
	end := net.ResidualSnapshot()
	for v := range end {
		if math.Abs(end[v]-initialResidual[v]) > 1e-6 {
			m.EndResidualIntact = false
			break
		}
	}

	if m.Arrivals > 0 {
		m.BlockingProbability = float64(m.Blocked) / float64(m.Arrivals)
	}
	if m.Accepted > 0 {
		m.MetRate = float64(m.Met) / float64(m.Accepted)
		m.MeanReliability = relSum / float64(m.Accepted)
	}
	span := cfg.Horizon - cfg.Warmup
	if span > 0 {
		m.MeanUtilization = utilInt / span
		m.MeanActive = activeInt / span
	}
	m.record(solver.Name())
	return m, nil
}

// record publishes the warmup-excluded aggregates into the default registry
// and logs the run summary. It runs once per Run, after the event loop and
// conservation check, so it cannot perturb the seeded simulation.
func (m *Metrics) record(solver string) {
	r := obs.Default()
	r.Counter("des_arrivals_total", "solver", solver).Add(int64(m.Arrivals))
	r.Counter("des_blocked_total", "solver", solver).Add(int64(m.Blocked))
	r.Counter("des_blocked_reason_total", "solver", solver, "reason", "no_capacity").Add(int64(m.BlockedNoCapacity))
	r.Counter("des_blocked_reason_total", "solver", solver, "reason", "solver_exhausted").Add(int64(m.BlockedSolver))
	r.Counter("des_blocked_reason_total", "solver", solver, "reason", "commit_failed").Add(int64(m.BlockedCommit))
	r.Counter("des_accepted_total", "solver", solver).Add(int64(m.Accepted))
	r.Counter("des_met_total", "solver", solver).Add(int64(m.Met))
	r.Gauge("des_mean_utilization_ratio", "solver", solver).Set(m.MeanUtilization)
	r.Gauge("des_blocking_probability", "solver", solver).Set(m.BlockingProbability)
	r.Histogram("des_mean_reliability", obs.RatioBuckets, "solver", solver).Observe(m.MeanReliability)
	r.Counter("des_crashes_total", "solver", solver).Add(int64(m.Crashes))
	r.Counter("des_repairs_total", "solver", solver).Add(int64(m.Repairs))
	r.Counter("des_reaug_success_total", "solver", solver).Add(int64(m.Reaugmented))
	r.Counter("des_reaug_failed_total", "solver", solver).Add(int64(m.ReaugFailed))
	r.Counter("des_sessions_dropped_total", "solver", solver).Add(int64(m.DroppedSessions))
	r.Gauge("des_slo_violation_time", "solver", solver).Set(m.SLOViolationTime)
	for _, blast := range m.BlastRadii {
		r.Histogram("des_crash_blast_radius", obs.CountBuckets, "solver", solver).Observe(float64(blast))
	}
	for stage, n := range m.ServedByStage {
		r.Counter("des_served_total", "solver", solver, "stage", stage).Add(int64(n))
	}
	slog.Info("des: run complete",
		"solver", solver, "arrivals", m.Arrivals, "accepted", m.Accepted,
		"blocked", m.Blocked, "met", m.Met,
		"blocking_probability", m.BlockingProbability, "met_rate", m.MetRate,
		"mean_utilization", m.MeanUtilization, "mean_active", m.MeanActive,
		"crashes", m.Crashes, "reaugmented", m.Reaugmented, "dropped", m.DroppedSessions,
		"slo_violation_time", m.SLOViolationTime,
		"ledger_intact", m.EndResidualIntact)
}

// expDraw samples an exponential with the given mean.
func expDraw(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}
