package des

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
)

func faultConfig() Config {
	cfg := baseConfig()
	cfg.Faults = FaultConfig{Enabled: true, MeanUp: 60, MeanDown: 10}
	return cfg
}

func TestFaultInjectionBasics(t *testing.T) {
	m, err := Run(faultConfig(), rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	if m.Crashes == 0 {
		t.Fatal("no crashes injected over a 200-unit horizon with MTBF 60")
	}
	if m.Repairs > m.Crashes {
		t.Fatalf("repairs %d exceed crashes %d", m.Repairs, m.Crashes)
	}
	if len(m.BlastRadii) != m.Crashes {
		t.Fatalf("one blast radius per crash: %d radii, %d crashes", len(m.BlastRadii), m.Crashes)
	}
	sum := 0
	for _, b := range m.BlastRadii {
		if b < 0 {
			t.Fatalf("negative blast radius %d", b)
		}
		sum += b
	}
	if sum != m.AffectedSessions {
		t.Fatalf("Σ blast radii %d != affected sessions %d", sum, m.AffectedSessions)
	}
	if m.Reaugmented+m.ReaugFailed != m.AffectedSessions {
		t.Fatalf("reaugmented %d + failed %d != affected %d", m.Reaugmented, m.ReaugFailed, m.AffectedSessions)
	}
	if m.DroppedSessions != m.ReaugFailed {
		t.Fatalf("dropped %d != re-augmentation failures %d", m.DroppedSessions, m.ReaugFailed)
	}
	if m.SLOViolationTime < 0 {
		t.Fatalf("negative SLO-violation time %v", m.SLOViolationTime)
	}
	if len(m.ServedByStage) == 0 {
		t.Fatal("no solves attributed to a fallback stage")
	}
}

func TestFaultLedgerConservation(t *testing.T) {
	// Crashes destroy holdings and zero residuals mid-run; repairs and the
	// end-of-run drain must still return the ledger to its initial state.
	for seed := int64(30); seed < 34; seed++ {
		m, err := Run(faultConfig(), rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if !m.EndResidualIntact {
			t.Fatalf("seed %d: ledger did not return to its initial state under faults", seed)
		}
	}
}

func TestFaultDeterminism(t *testing.T) {
	// The full metrics struct — blast radii trajectory and per-stage serve
	// counts included — must be a pure function of the seed.
	a, err := Run(faultConfig(), rand.New(rand.NewSource(40)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(faultConfig(), rand.New(rand.NewSource(40)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault-injected runs with one seed diverged:\n%+v\nvs\n%+v", a, b)
	}
}

func TestSolverExhaustionBlocksNotAborts(t *testing.T) {
	// A chain whose every stage fails must degrade each arrival to Blocked
	// (reason: solver_exhausted) instead of aborting the whole run — the
	// fail-soft contract this PR introduces.
	cfg := baseConfig()
	cfg.Horizon = 60
	cfg.Warmup = 0
	broken := core.NewSolverFunc("AlwaysBroken", func(*core.Instance, *rand.Rand) (*core.Result, error) {
		return nil, fmt.Errorf("induced solver failure")
	})
	cfg.Chain = []core.FallbackStage{core.Stage(broken, 0)}
	m, err := Run(cfg, rand.New(rand.NewSource(50)))
	if err != nil {
		t.Fatalf("run aborted on solver failure: %v", err)
	}
	if m.Arrivals == 0 {
		t.Fatal("no arrivals")
	}
	if m.Blocked != m.Arrivals || m.Accepted != 0 {
		t.Fatalf("every arrival should block: arrivals %d, blocked %d, accepted %d", m.Arrivals, m.Blocked, m.Accepted)
	}
	if m.BlockedSolver != m.Blocked {
		t.Fatalf("blocked reason split wrong: solver %d of %d (no_capacity %d, commit %d)",
			m.BlockedSolver, m.Blocked, m.BlockedNoCapacity, m.BlockedCommit)
	}
	if !m.EndResidualIntact {
		t.Fatal("blocking path leaked capacity")
	}
}

func TestILPBudgetDegradation(t *testing.T) {
	// The acceptance scenario: crash events on, the ILP on a tight wall-clock
	// budget, and the run must complete with every solve attributed to some
	// stage of the chain.
	cfg := faultConfig()
	cfg.Horizon = 60
	cfg.Warmup = 5
	cfg.UseILP = true
	cfg.ILPBudget = 50 * time.Millisecond
	m, err := Run(cfg, rand.New(rand.NewSource(60)))
	if err != nil {
		t.Fatal(err)
	}
	if m.Accepted == 0 {
		t.Fatal("budgeted chain accepted nothing")
	}
	served := 0
	for stage, n := range m.ServedByStage {
		if stage == "" {
			t.Fatal("solve attributed to an unnamed stage")
		}
		served += n
	}
	if served == 0 {
		t.Fatal("no solves attributed to any stage")
	}
	if !m.EndResidualIntact {
		t.Fatal("budgeted fault run leaked capacity")
	}
}

func TestFaultsOffMatchesBaseline(t *testing.T) {
	// With injection disabled the simulator must reproduce the fault-free
	// trajectory exactly: zero fault metrics and identical core aggregates.
	plain, err := Run(baseConfig(), rand.New(rand.NewSource(70)))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Crashes != 0 || plain.Repairs != 0 || len(plain.BlastRadii) != 0 || plain.DroppedSessions != 0 {
		t.Fatalf("fault metrics nonzero without injection: %+v", plain)
	}
}

func TestFaultConfigValidation(t *testing.T) {
	cfg := faultConfig()
	cfg.Faults.MeanUp = 0
	if _, err := Run(cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("zero MeanUp accepted")
	}
	cfg = faultConfig()
	cfg.Faults.MeanDown = -1
	if _, err := Run(cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("negative MeanDown accepted")
	}
	disabled := baseConfig()
	disabled.Faults = FaultConfig{Enabled: false, MeanUp: -1, MeanDown: -1}
	if _, err := Run(disabled, rand.New(rand.NewSource(1))); err != nil {
		t.Fatalf("disabled fault config must not be validated: %v", err)
	}
}

func TestFaultTimelineAlternates(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	events := faultTimeline([]int{0, 1, 2}, FaultConfig{Enabled: true, MeanUp: 5, MeanDown: 2}, 100, rng)
	last := map[int]eventKind{}
	for _, ev := range events {
		if ev.t < 0 || ev.t >= 100 {
			t.Fatalf("event at t=%v outside [0,100)", ev.t)
		}
		prev, seen := last[ev.node]
		if !seen && ev.kind != evCrash {
			t.Fatalf("node %d starts with %v, want crash", ev.node, ev.kind)
		}
		if seen && prev == ev.kind {
			t.Fatalf("node %d has consecutive %v events", ev.node, ev.kind)
		}
		last[ev.node] = ev.kind
	}
	if len(last) != 3 {
		t.Fatalf("timeline covered %d nodes, want 3 over a 100-unit horizon with MTBF 5", len(last))
	}
}
