package des

import (
	"fmt"
	"math/rand"
)

// FaultConfig parameterizes seeded cloudlet crash/repair injection: each
// cloudlet alternates exponentially distributed up and down periods,
// independent of the others. A crash destroys every VNF instance hosted on
// the cloudlet and takes its remaining capacity offline; a repair returns
// the full capacity to the ledger. Affected requests are re-augmented
// through the solver fallback chain at crash time.
//
// This is the dynamic counterpart of internal/failsim's static snapshot
// model: failsim samples instance up/down states per trial, while the DES
// replays an actual crash/repair process against live sessions — the regime
// the online-backup literature (Wang et al., failure-aware edge backup)
// studies.
type FaultConfig struct {
	// Enabled turns fault injection on.
	Enabled bool
	// MeanUp is a cloudlet's mean time between repair and next crash
	// (exponential; > 0). This is the MTBF knob.
	MeanUp float64
	// MeanDown is a cloudlet's mean repair duration (exponential; > 0).
	// This is the MTTR knob.
	MeanDown float64
}

func (f FaultConfig) validate() error {
	if !f.Enabled {
		return nil
	}
	if f.MeanUp <= 0 || f.MeanDown <= 0 {
		return fmt.Errorf("des: fault injection needs MeanUp %v and MeanDown %v positive", f.MeanUp, f.MeanDown)
	}
	return nil
}

// faultTimeline pre-generates the crash/repair events of every cloudlet over
// [0, horizon): per cloudlet an alternating-renewal process of exponential
// up then down periods, drawn from rng in ascending cloudlet order so the
// timeline is a pure function of the rng stream. A down period that crosses
// the horizon gets no repair event; Run releases still-dark cloudlets during
// the drain so the conservation check stays meaningful.
func faultTimeline(cloudlets []int, fc FaultConfig, horizon float64, rng *rand.Rand) []*event {
	var events []*event
	for _, v := range cloudlets {
		t := expDraw(rng, fc.MeanUp)
		for t < horizon {
			events = append(events, &event{t: t, kind: evCrash, node: v})
			d := expDraw(rng, fc.MeanDown)
			if t+d >= horizon {
				break
			}
			events = append(events, &event{t: t + d, kind: evRepair, node: v})
			t += d + expDraw(rng, fc.MeanUp)
		}
	}
	return events
}
