package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// RenderTables writes the three sub-plot tables of a sweep — (a) achieved
// SFC reliability, (b) capacity usage of the randomized algorithm, (c)
// running times — as aligned text, mirroring the paper's figure structure.
func (s *Sweep) RenderTables(w io.Writer) error {
	var b strings.Builder
	b.WriteString(s.header())
	b.WriteString("\n\n")

	algs := s.sortedAlgs()

	// (a) reliability
	b.WriteString(fmt.Sprintf("(a) achieved SFC reliability vs %s\n", s.XLabel))
	writeTable(&b, s, algs, func(ap AlgPoint) string {
		return fmt.Sprintf("%.4f", ap.Reliability.Mean)
	})
	b.WriteString("\n")

	// (a') relative to ILP, when present
	if contains(algs, "ILP") && len(algs) > 1 {
		b.WriteString("(a') reliability relative to ILP (1.0000 = parity)\n")
		writeTable(&b, s, algs, func(ap AlgPoint) string {
			if ap.RelVsILP == 0 {
				return "-"
			}
			return fmt.Sprintf("%.4f", ap.RelVsILP)
		})
		b.WriteString("\n")
	}

	// (b) capacity usage (Randomized, as in the paper; others for context)
	b.WriteString("(b) capacity usage ratio (avg / min / max across cloudlets; >1 = violation)\n")
	writeTable(&b, s, algs, func(ap AlgPoint) string {
		return fmt.Sprintf("%.2f/%.2f/%.2f", ap.UsageAvg.Mean, ap.UsageMin.Mean, ap.UsageMax.Mean)
	})
	b.WriteString("\n")
	if contains(algs, "Randomized") {
		b.WriteString("    capacity violation rate (fraction of trials)\n")
		writeTable(&b, s, algs, func(ap AlgPoint) string {
			return fmt.Sprintf("%.3f", ap.ViolationRate)
		})
		b.WriteString("\n")
	}

	// (c) running time
	b.WriteString("(c) running time, milliseconds (mean per request)\n")
	writeTable(&b, s, algs, func(ap AlgPoint) string {
		return fmt.Sprintf("%.3f", ap.RuntimeMS.Mean)
	})

	_, err := io.WriteString(w, b.String())
	return err
}

// writeTable renders one metric as rows = x-axis points, columns = algorithms.
func writeTable(b *strings.Builder, s *Sweep, algs []string, cell func(AlgPoint) string) {
	colw := 16
	b.WriteString(fmt.Sprintf("  %-14s", s.XLabel))
	for _, a := range algs {
		b.WriteString(fmt.Sprintf("%*s", colw, a))
	}
	b.WriteString("\n")
	for _, p := range s.Points {
		b.WriteString(fmt.Sprintf("  %-14s", p.Label))
		for _, a := range algs {
			ap, ok := p.Algs[a]
			if !ok {
				b.WriteString(fmt.Sprintf("%*s", colw, "-"))
				continue
			}
			b.WriteString(fmt.Sprintf("%*s", colw, cell(ap)))
		}
		b.WriteString("\n")
	}
}

// RenderCSV writes the sweep as one flat CSV: a row per (point, algorithm).
func (s *Sweep) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"sweep", "x_label", "x", "point", "algorithm",
		"reliability_mean", "reliability_ci95", "reliability_min", "reliability_max",
		"runtime_ms_mean", "usage_avg", "usage_min", "usage_max",
		"violation_rate", "rel_vs_ilp", "trials",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range s.Points {
		for _, a := range s.sortedAlgs() {
			ap, ok := p.Algs[a]
			if !ok {
				continue
			}
			row := []string{
				s.Name, s.XLabel,
				fmt.Sprintf("%g", p.X), p.Label, a,
				fmt.Sprintf("%.6f", ap.Reliability.Mean),
				fmt.Sprintf("%.6f", ap.Reliability.CI95()),
				fmt.Sprintf("%.6f", ap.Reliability.Min),
				fmt.Sprintf("%.6f", ap.Reliability.Max),
				fmt.Sprintf("%.4f", ap.RuntimeMS.Mean),
				fmt.Sprintf("%.4f", ap.UsageAvg.Mean),
				fmt.Sprintf("%.4f", ap.UsageMin.Mean),
				fmt.Sprintf("%.4f", ap.UsageMax.Mean),
				fmt.Sprintf("%.4f", ap.ViolationRate),
				fmt.Sprintf("%.4f", ap.RelVsILP),
				fmt.Sprintf("%d", s.Trials),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
