package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/workload"
)

// objectiveVariants are the two ILP formulations of the ablation, wrapped as
// pseudo-solvers so they flow through the same engine-backed harness as the
// registered algorithms.
func objectiveVariants() []core.Solver {
	return []core.Solver{
		core.NewSolverFunc("ILP(gain)", func(inst *core.Instance, _ *rand.Rand) (*core.Result, error) {
			return core.SolveILP(inst, core.ILPOptions{Objective: core.ObjectiveLogGain, Timeout: core.NoTimeout})
		}),
		core.NewSolverFunc("ILP(paper-cost)", func(inst *core.Instance, _ *rand.Rand) (*core.Result, error) {
			return core.SolveILP(inst, core.ILPOptions{Objective: core.ObjectivePaperCost, Timeout: core.NoTimeout})
		}),
	}
}

// runObjectivePoint runs the objective ablation at one SFC length: the same
// instances solved with both ILP objectives, reported as pseudo-algorithms
// "ILP(gain)" and "ILP(paper-cost)".
func runObjectivePoint(cfg workload.Config, length int, opt Options) (map[string][]trial, error) {
	variants := objectiveVariants()
	tag := fmt.Sprintf("seed=%d objective-len=%d solvers=%s", opt.Seed, length, solverNames(variants))
	return runSolvers(cfg, length, opt, variants, tag, func(t int) int64 {
		return opt.Seed*1_000_003 + int64(length)*20_011 + int64(t)
	})
}
