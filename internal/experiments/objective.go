package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// runObjectivePoint runs the objective ablation at one SFC length: the same
// instances solved with both ILP objectives, reported as pseudo-algorithms
// "ILP(gain)" and "ILP(paper-cost)".
func runObjectivePoint(cfg workload.Config, length int, opt Options) map[string][]trial {
	out := make(map[string][]trial)
	for t := 0; t < opt.Trials; t++ {
		rng := rand.New(rand.NewSource(opt.Seed*1_000_003 + int64(length)*20_011 + int64(t)))
		net := cfg.Network(rng)
		req := cfg.RequestWithLength(rng, t, length, net.Catalog().Size())
		workload.PlacePrimariesRandom(net, req, rng)
		inst := core.NewInstance(net, req, core.Params{L: cfg.HopBound})

		for _, variant := range []struct {
			name string
			obj  core.Objective
		}{
			{"ILP(gain)", core.ObjectiveLogGain},
			{"ILP(paper-cost)", core.ObjectivePaperCost},
		} {
			res, err := core.SolveILP(inst, core.ILPOptions{Objective: variant.obj})
			if err != nil {
				panic(fmt.Sprintf("experiments: %s failed: %v", variant.name, err))
			}
			out[variant.name] = append(out[variant.name], trial{
				rel:      res.Reliability,
				ms:       float64(res.Runtime) / float64(time.Millisecond),
				uAvg:     res.Usage.Avg,
				uMin:     res.Usage.Min,
				uMax:     res.Usage.Max,
				violated: res.Violated,
			})
		}
	}
	return out
}
