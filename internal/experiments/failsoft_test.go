package experiments

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// flakySolver fails deterministically on a subset of trials (first rng draw
// below the threshold) so fail-soft runs drop a predictable set of trials.
func flakySolver(threshold float64) core.Solver {
	return core.NewSolverFunc("Flaky", func(inst *core.Instance, rng *rand.Rand) (*core.Result, error) {
		if rng.Float64() < threshold {
			return nil, fmt.Errorf("flaky: induced trial failure")
		}
		return core.SolveGreedy(inst)
	})
}

func TestFailSoftSweepCompletesPastTrialFailures(t *testing.T) {
	opt := miniOpt()
	opt.Trials = 12
	opt.Solvers = []core.Solver{flakySolver(0.5)}
	opt.FailSoft = true
	s, err := Fig1(opt)
	if err != nil {
		t.Fatalf("fail-soft sweep aborted: %v", err)
	}
	total, dropped := 0, 0
	for _, p := range s.Points {
		ap, ok := p.Algs["Flaky"]
		if !ok {
			t.Fatalf("point %s lost its algorithm entirely", p.Label)
		}
		total += ap.Reliability.N
		dropped += opt.Trials - ap.Reliability.N
	}
	if dropped == 0 {
		t.Fatal("flaky solver at 50% failure rate dropped no trials — fail-soft path not exercised")
	}
	if total == 0 {
		t.Fatal("every trial dropped")
	}

	// The same sweep without fail-soft must abort.
	hard := opt
	hard.FailSoft = false
	if _, err := Fig1(hard); err == nil {
		t.Fatal("hard-fail sweep should abort on the flaky solver")
	}
}

func TestFailSoftAggregatesMatchAcrossWorkers(t *testing.T) {
	run := func(workers int) *Sweep {
		opt := miniOpt()
		opt.Trials = 8
		opt.Workers = workers
		opt.Solvers = []core.Solver{flakySolver(0.4)}
		opt.FailSoft = true
		s, err := Fig1(opt)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(1), run(4)
	for i := range a.Points {
		pa, pb := a.Points[i].Algs["Flaky"], b.Points[i].Algs["Flaky"]
		if pa.Reliability.N != pb.Reliability.N || pa.Reliability.Mean != pb.Reliability.Mean {
			t.Fatalf("point %d: serial (n=%d mean=%v) vs parallel (n=%d mean=%v)",
				i, pa.Reliability.N, pa.Reliability.Mean, pb.Reliability.N, pb.Reliability.Mean)
		}
	}
}
