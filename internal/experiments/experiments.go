// Package experiments reproduces the evaluation of Section 7: the three
// figures (reliability, capacity usage, running time — each swept over SFC
// length, function reliability, and residual capacity) plus two ablations.
// Each experiment runs many independent trials (the paper uses 1,000 per
// point), aggregates with internal/stats, and renders aligned text tables
// and CSV.
package experiments

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mec"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/workload"
)

// AllSolvers returns the paper's three algorithms plus the greedy baseline,
// resolved from the core solver registry.
func AllSolvers() []core.Solver { return mustSolvers("ILP", "Randomized", "Heuristic", "Greedy") }

// PaperSolvers returns exactly the paper's three algorithms.
func PaperSolvers() []core.Solver { return mustSolvers("ILP", "Randomized", "Heuristic") }

func mustSolvers(names ...string) []core.Solver {
	out := make([]core.Solver, len(names))
	for i, n := range names {
		s, ok := core.Get(n)
		if !ok {
			panic(fmt.Sprintf("experiments: built-in solver %q not registered", n))
		}
		out[i] = s
	}
	return out
}

// Options configures a sweep run.
type Options struct {
	Trials int   // trials per data point (paper: 1000)
	Seed   int64 // base RNG seed; trials use Seed*1e6 + trial
	// Solvers are the algorithms every point runs, in order (the order
	// matters for reproducibility: solvers share one per-trial rng stream).
	// nil means AllSolvers().
	Solvers []core.Solver
	// Workers bounds the trial executor's parallelism (<=0: GOMAXPROCS).
	// Results are bit-identical for any worker count.
	Workers int
	// Quiet suppresses per-point progress lines on stderr.
	Quiet bool
	// Progress, when non-nil, receives one line per completed point.
	Progress func(string)
	// FailSoft switches the trial executor to engine.RunPartial: a trial
	// that errors, panics, or exceeds TrialTimeout is dropped from the
	// point's aggregates (with a structured warning) instead of aborting the
	// whole sweep. Aggregates are then over the completed trials only.
	FailSoft bool
	// TrialTimeout bounds one trial's wall clock in fail-soft mode (zero:
	// unbounded). Ignored unless FailSoft is set.
	TrialTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Trials <= 0 {
		o.Trials = 100
	}
	if len(o.Solvers) == 0 {
		o.Solvers = AllSolvers()
	}
	return o
}

// AlgPoint aggregates one algorithm's trials at one sweep point.
type AlgPoint struct {
	Reliability stats.Summary
	RuntimeMS   stats.Summary
	UsageAvg    stats.Summary // mean per-trial average usage ratio
	UsageMin    stats.Summary
	UsageMax    stats.Summary
	// ViolationRate is the fraction of trials with a capacity violation.
	ViolationRate float64
	// RelVsILP is mean(reliability)/mean(ILP reliability) when ILP ran.
	RelVsILP float64
}

// Point is one x-axis position of a sweep.
type Point struct {
	Label string
	X     float64
	Algs  map[string]AlgPoint
}

// Sweep is a completed experiment: the reproduction of one paper figure.
type Sweep struct {
	Name   string // e.g. "fig1"
	Title  string
	XLabel string
	Points []Point
	Trials int
	Seed   int64
}

// trial is the per-trial raw record.
type trial struct {
	rel, ms, uAvg, uMin, uMax float64
	violated                  bool
}

// record converts a solver result into the per-trial raw record.
func record(res *core.Result) trial {
	return trial{
		rel:      res.Reliability,
		ms:       float64(res.Runtime) / float64(time.Millisecond),
		uAvg:     res.Usage.Avg,
		uMin:     res.Usage.Min,
		uMax:     res.Usage.Max,
		violated: res.Violated,
	}
}

// solverNames joins the canonical names for tags and structured logs.
func solverNames(solvers []core.Solver) string {
	names := make([]string, len(solvers))
	for i, s := range solvers {
		names[i] = s.Name()
	}
	return strings.Join(names, ",")
}

// runSolvers executes opt.Trials trials of the given solvers on the engine's
// worker pool and groups the records by solver name. Each trial samples its
// own world from a seed derived purely from the trial index, so the output
// is bit-identical for any worker count. All solvers of a trial share the
// trial's rng stream in slice order, matching the historical serial harness.
//
// tag carries the sweep-point context (seed, point, solver set) into engine
// error wrapping and failure logs. Instrumentation — the point span, the
// structured completion log — runs outside the seeded trial closure, so the
// recorded trials stay bit-identical to an uninstrumented run.
func runSolvers(cfg workload.Config, fixedLen int, opt Options, solvers []core.Solver, tag string, seed engine.Seeder) (map[string][]trial, error) {
	sp := obs.Default().StartSpan("experiments_point")
	trialFn := func(t int, rng *rand.Rand) ([]trial, error) {
		net := cfg.Network(rng)
		req := pickRequest(cfg, rng, t, fixedLen, net.Catalog().Size())
		workload.PlacePrimariesRandom(net, req, rng)
		inst := core.NewInstance(net, req, core.Params{L: cfg.HopBound})
		recs := make([]trial, len(solvers))
		for i, s := range solvers {
			res, err := s.Solve(inst, rng)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", s.Name(), err)
			}
			recs[i] = record(res)
		}
		return recs, nil
	}
	var (
		perTrial [][]trial
		failures []engine.TrialError
		err      error
	)
	if opt.FailSoft {
		perTrial, failures, err = engine.RunPartial(context.Background(), opt.Trials, opt.Workers, seed, trialFn,
			engine.FailSoftOptions{Tag: tag, TrialTimeout: opt.TrialTimeout})
	} else {
		perTrial, err = engine.RunTagged(context.Background(), tag, opt.Trials, opt.Workers, seed, trialFn)
	}
	elapsed := sp.End()
	if err != nil {
		slog.Error("experiments: point failed", "tag", tag, "err", err)
		return nil, err
	}
	for _, f := range failures {
		slog.Warn("experiments: trial dropped", "tag", tag, "trial", f.Trial, "kind", f.Kind, "err", f.Err)
	}
	slog.Debug("experiments: point complete",
		"tag", tag, "trials", opt.Trials, "dropped", len(failures), "solvers", solverNames(solvers),
		"workers", opt.Workers, "ms", float64(elapsed)/float64(time.Millisecond), "outcome", "ok")
	out := make(map[string][]trial, len(solvers))
	for _, recs := range perTrial {
		if recs == nil {
			continue // fail-soft: this trial was dropped
		}
		for i, s := range solvers {
			out[s.Name()] = append(out[s.Name()], recs[i])
		}
	}
	return out, nil
}

// runPoint executes trials for one configuration. fixedLen > 0 pins the SFC
// length (Figure 1); otherwise lengths are sampled from the config.
func runPoint(cfg workload.Config, fixedLen int, opt Options, pointIdx int) (map[string][]trial, error) {
	tag := fmt.Sprintf("seed=%d point=%d solvers=%s", opt.Seed, pointIdx, solverNames(opt.Solvers))
	return runSolvers(cfg, fixedLen, opt, opt.Solvers, tag, func(t int) int64 {
		return opt.Seed*1_000_003 + int64(pointIdx)*10_007 + int64(t)
	})
}

func pickRequest(cfg workload.Config, rng *rand.Rand, id, fixedLen, catalogSize int) *mec.Request {
	if fixedLen > 0 {
		return cfg.RequestWithLength(rng, id, fixedLen, catalogSize)
	}
	return cfg.Request(rng, id, catalogSize)
}

// summarize converts raw trials into a Point.
func summarize(label string, x float64, raw map[string][]trial) Point {
	p := Point{Label: label, X: x, Algs: make(map[string]AlgPoint)}
	var ilpMean float64
	if ts, ok := raw["ILP"]; ok && len(ts) > 0 {
		ilpMean = stats.Summarize(column(ts, func(t trial) float64 { return t.rel })).Mean
	}
	for name, ts := range raw {
		if len(ts) == 0 {
			continue
		}
		ap := AlgPoint{
			Reliability: stats.Summarize(column(ts, func(t trial) float64 { return t.rel })),
			RuntimeMS:   stats.Summarize(column(ts, func(t trial) float64 { return t.ms })),
			UsageAvg:    stats.Summarize(column(ts, func(t trial) float64 { return t.uAvg })),
			UsageMin:    stats.Summarize(column(ts, func(t trial) float64 { return t.uMin })),
			UsageMax:    stats.Summarize(column(ts, func(t trial) float64 { return t.uMax })),
		}
		nViol := 0
		for _, t := range ts {
			if t.violated {
				nViol++
			}
		}
		ap.ViolationRate = float64(nViol) / float64(len(ts))
		if ilpMean > 0 {
			ap.RelVsILP = ap.Reliability.Mean / ilpMean
		}
		p.Algs[name] = ap
	}
	return p
}

func column(ts []trial, f func(trial) float64) []float64 {
	xs := make([]float64, len(ts))
	for i, t := range ts {
		xs[i] = f(t)
	}
	return xs
}

// algOrder renders algorithms in the paper's order.
var algOrder = []string{"ILP", "Randomized", "Heuristic", "Greedy"}

// sortedAlgs returns the algorithms present in a sweep, paper order first.
func (s *Sweep) sortedAlgs() []string {
	present := make(map[string]bool)
	for _, p := range s.Points {
		for a := range p.Algs {
			present[a] = true
		}
	}
	var out []string
	for _, a := range algOrder {
		if present[a] {
			out = append(out, a)
			delete(present, a)
		}
	}
	var rest []string
	for a := range present {
		rest = append(rest, a)
	}
	sort.Strings(rest)
	return append(out, rest...)
}

func progress(opt Options, format string, args ...interface{}) {
	if opt.Progress != nil {
		opt.Progress(fmt.Sprintf(format, args...))
	} else if !opt.Quiet {
		fmt.Printf(format+"\n", args...)
	}
}

// header renders the sweep identity line used by all tables.
func (s *Sweep) header() string {
	return fmt.Sprintf("%s — %s (trials=%d, seed=%d)", strings.ToUpper(s.Name), s.Title, s.Trials, s.Seed)
}

// AppendManifest records the completed sweep into a run manifest: one record
// per (point, algorithm) with the trial count and mean per-trial wall clock.
// Nil manifests are ignored so callers can thread the flag value through
// unconditionally.
func (s *Sweep) AppendManifest(m *obs.Manifest) {
	if m == nil {
		return
	}
	for _, p := range s.Points {
		for _, alg := range s.sortedAlgs() {
			ap, ok := p.Algs[alg]
			if !ok {
				continue
			}
			m.Add(obs.RunRecord{
				Name:    s.Name,
				Label:   p.Label,
				X:       p.X,
				Solver:  alg,
				Seed:    s.Seed,
				Trials:  s.Trials,
				Outcome: "ok",
				MeanMS:  ap.RuntimeMS.Mean,
			})
		}
	}
}
