// Package experiments reproduces the evaluation of Section 7: the three
// figures (reliability, capacity usage, running time — each swept over SFC
// length, function reliability, and residual capacity) plus two ablations.
// Each experiment runs many independent trials (the paper uses 1,000 per
// point), aggregates with internal/stats, and renders aligned text tables
// and CSV.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/mec"
	"repro/internal/stats"
	"repro/internal/workload"
)

// AlgSet selects which algorithms a sweep runs.
type AlgSet struct {
	ILP, Randomized, Heuristic, Greedy bool
}

// AllAlgs enables the paper's three algorithms plus the greedy baseline.
func AllAlgs() AlgSet { return AlgSet{ILP: true, Randomized: true, Heuristic: true, Greedy: true} }

// PaperAlgs enables exactly the paper's three algorithms.
func PaperAlgs() AlgSet { return AlgSet{ILP: true, Randomized: true, Heuristic: true} }

// Options configures a sweep run.
type Options struct {
	Trials int   // trials per data point (paper: 1000)
	Seed   int64 // base RNG seed; trials use Seed*1e6 + trial
	Algs   AlgSet
	// Quiet suppresses per-point progress lines on stderr.
	Quiet bool
	// Progress, when non-nil, receives one line per completed point.
	Progress func(string)
}

func (o Options) withDefaults() Options {
	if o.Trials <= 0 {
		o.Trials = 100
	}
	if o.Algs == (AlgSet{}) {
		o.Algs = AllAlgs()
	}
	return o
}

// AlgPoint aggregates one algorithm's trials at one sweep point.
type AlgPoint struct {
	Reliability stats.Summary
	RuntimeMS   stats.Summary
	UsageAvg    stats.Summary // mean per-trial average usage ratio
	UsageMin    stats.Summary
	UsageMax    stats.Summary
	// ViolationRate is the fraction of trials with a capacity violation.
	ViolationRate float64
	// RelVsILP is mean(reliability)/mean(ILP reliability) when ILP ran.
	RelVsILP float64
}

// Point is one x-axis position of a sweep.
type Point struct {
	Label string
	X     float64
	Algs  map[string]AlgPoint
}

// Sweep is a completed experiment: the reproduction of one paper figure.
type Sweep struct {
	Name   string // e.g. "fig1"
	Title  string
	XLabel string
	Points []Point
	Trials int
	Seed   int64
}

// trial is the per-trial raw record.
type trial struct {
	rel, ms, uAvg, uMin, uMax float64
	violated                  bool
}

// runPoint executes trials for one configuration. fixedLen > 0 pins the SFC
// length (Figure 1); otherwise lengths are sampled from the config.
func runPoint(cfg workload.Config, fixedLen int, opt Options, pointIdx int) map[string][]trial {
	out := make(map[string][]trial)
	for t := 0; t < opt.Trials; t++ {
		rng := rand.New(rand.NewSource(opt.Seed*1_000_003 + int64(pointIdx)*10_007 + int64(t)))
		net := cfg.Network(rng)
		var req = pickRequest(cfg, rng, t, fixedLen, net.Catalog().Size())
		workload.PlacePrimariesRandom(net, req, rng)
		inst := core.NewInstance(net, req, core.Params{L: cfg.HopBound})

		record := func(name string, res *core.Result, err error) {
			if err != nil {
				panic(fmt.Sprintf("experiments: %s failed: %v", name, err))
			}
			out[name] = append(out[name], trial{
				rel:      res.Reliability,
				ms:       float64(res.Runtime) / float64(time.Millisecond),
				uAvg:     res.Usage.Avg,
				uMin:     res.Usage.Min,
				uMax:     res.Usage.Max,
				violated: res.Violated,
			})
		}
		if opt.Algs.ILP {
			res, err := core.SolveILP(inst, core.ILPOptions{})
			record("ILP", res, err)
		}
		if opt.Algs.Randomized {
			res, err := core.SolveRandomized(inst, rng, core.RandomizedOptions{})
			record("Randomized", res, err)
		}
		if opt.Algs.Heuristic {
			res, err := core.SolveHeuristic(inst, core.HeuristicOptions{})
			record("Heuristic", res, err)
		}
		if opt.Algs.Greedy {
			res, err := core.SolveGreedy(inst)
			record("Greedy", res, err)
		}
	}
	return out
}

func pickRequest(cfg workload.Config, rng *rand.Rand, id, fixedLen, catalogSize int) *mec.Request {
	if fixedLen > 0 {
		return cfg.RequestWithLength(rng, id, fixedLen, catalogSize)
	}
	return cfg.Request(rng, id, catalogSize)
}

// summarize converts raw trials into a Point.
func summarize(label string, x float64, raw map[string][]trial) Point {
	p := Point{Label: label, X: x, Algs: make(map[string]AlgPoint)}
	var ilpMean float64
	if ts, ok := raw["ILP"]; ok && len(ts) > 0 {
		ilpMean = stats.Summarize(column(ts, func(t trial) float64 { return t.rel })).Mean
	}
	for name, ts := range raw {
		if len(ts) == 0 {
			continue
		}
		ap := AlgPoint{
			Reliability: stats.Summarize(column(ts, func(t trial) float64 { return t.rel })),
			RuntimeMS:   stats.Summarize(column(ts, func(t trial) float64 { return t.ms })),
			UsageAvg:    stats.Summarize(column(ts, func(t trial) float64 { return t.uAvg })),
			UsageMin:    stats.Summarize(column(ts, func(t trial) float64 { return t.uMin })),
			UsageMax:    stats.Summarize(column(ts, func(t trial) float64 { return t.uMax })),
		}
		nViol := 0
		for _, t := range ts {
			if t.violated {
				nViol++
			}
		}
		ap.ViolationRate = float64(nViol) / float64(len(ts))
		if ilpMean > 0 {
			ap.RelVsILP = ap.Reliability.Mean / ilpMean
		}
		p.Algs[name] = ap
	}
	return p
}

func column(ts []trial, f func(trial) float64) []float64 {
	xs := make([]float64, len(ts))
	for i, t := range ts {
		xs[i] = f(t)
	}
	return xs
}

// algOrder renders algorithms in the paper's order.
var algOrder = []string{"ILP", "Randomized", "Heuristic", "Greedy"}

// sortedAlgs returns the algorithms present in a sweep, paper order first.
func (s *Sweep) sortedAlgs() []string {
	present := make(map[string]bool)
	for _, p := range s.Points {
		for a := range p.Algs {
			present[a] = true
		}
	}
	var out []string
	for _, a := range algOrder {
		if present[a] {
			out = append(out, a)
			delete(present, a)
		}
	}
	var rest []string
	for a := range present {
		rest = append(rest, a)
	}
	sort.Strings(rest)
	return append(out, rest...)
}

func progress(opt Options, format string, args ...interface{}) {
	if opt.Progress != nil {
		opt.Progress(fmt.Sprintf(format, args...))
	} else if !opt.Quiet {
		fmt.Printf(format+"\n", args...)
	}
}

// header renders the sweep identity line used by all tables.
func (s *Sweep) header() string {
	return fmt.Sprintf("%s — %s (trials=%d, seed=%d)", strings.ToUpper(s.Name), s.Title, s.Trials, s.Seed)
}
