package experiments

import (
	"fmt"

	"repro/internal/plot"
)

// Charts converts the sweep into the paper's three sub-plot charts:
// (a) achieved reliability, (b) capacity usage of the randomized algorithm
// (avg/min/max), and (c) running time (log scale).
func (s *Sweep) Charts() []*plot.Chart {
	algs := s.sortedAlgs()

	rel := &plot.Chart{
		Title:  fmt.Sprintf("%s(a) — SFC reliability", s.Name),
		XLabel: s.XLabel,
		YLabel: "achieved SFC reliability",
	}
	for _, a := range algs {
		srs := plot.Series{Name: a}
		for _, p := range s.Points {
			ap, ok := p.Algs[a]
			if !ok {
				continue
			}
			srs.X = append(srs.X, p.X)
			srs.Y = append(srs.Y, ap.Reliability.Mean)
		}
		rel.Series = append(rel.Series, srs)
	}

	usage := &plot.Chart{
		Title:  fmt.Sprintf("%s(b) — capacity usage (Randomized)", s.Name),
		XLabel: s.XLabel,
		YLabel: "usage ratio of residual capacity",
	}
	usageAlg := "Randomized"
	if !contains(algs, usageAlg) {
		usageAlg = algs[0]
		usage.Title = fmt.Sprintf("%s(b) — capacity usage (%s)", s.Name, usageAlg)
	}
	for _, stat := range []struct {
		name   string
		pick   func(AlgPoint) float64
		dashed bool
	}{
		{"avg", func(a AlgPoint) float64 { return a.UsageAvg.Mean }, false},
		{"min", func(a AlgPoint) float64 { return a.UsageMin.Mean }, true},
		{"max", func(a AlgPoint) float64 { return a.UsageMax.Mean }, true},
	} {
		srs := plot.Series{Name: stat.name, Dashed: stat.dashed}
		for _, p := range s.Points {
			ap, ok := p.Algs[usageAlg]
			if !ok {
				continue
			}
			srs.X = append(srs.X, p.X)
			srs.Y = append(srs.Y, stat.pick(ap))
		}
		usage.Series = append(usage.Series, srs)
	}

	rt := &plot.Chart{
		Title:  fmt.Sprintf("%s(c) — running time", s.Name),
		XLabel: s.XLabel,
		YLabel: "running time (ms, log scale)",
		LogY:   true,
	}
	for _, a := range algs {
		srs := plot.Series{Name: a}
		for _, p := range s.Points {
			ap, ok := p.Algs[a]
			if !ok {
				continue
			}
			srs.X = append(srs.X, p.X)
			srs.Y = append(srs.Y, ap.RuntimeMS.Mean)
		}
		rt.Series = append(rt.Series, srs)
	}
	return []*plot.Chart{rel, usage, rt}
}
