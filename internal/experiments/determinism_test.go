package experiments

import (
	"testing"

	"repro/internal/workload"
)

// compareSweeps asserts two sweeps agree on every reported number except the
// runtime columns (wall-clock is the one thing parallelism is allowed to
// change).
func compareSweeps(t *testing.T, label string, a, b *Sweep) {
	t.Helper()
	if len(a.Points) != len(b.Points) {
		t.Fatalf("%s: %d vs %d points", label, len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		pa, pb := a.Points[i], b.Points[i]
		if pa.Label != pb.Label || pa.X != pb.X {
			t.Fatalf("%s: point %d identity differs: (%s,%v) vs (%s,%v)", label, i, pa.Label, pa.X, pb.Label, pb.X)
		}
		if len(pa.Algs) != len(pb.Algs) {
			t.Fatalf("%s: point %s has %d vs %d algorithms", label, pa.Label, len(pa.Algs), len(pb.Algs))
		}
		for name, aa := range pa.Algs {
			bb, ok := pb.Algs[name]
			if !ok {
				t.Fatalf("%s: point %s missing %s in second run", label, pa.Label, name)
			}
			// Bit-identical equality on everything except RuntimeMS.
			if aa.Reliability != bb.Reliability {
				t.Errorf("%s: point %s %s reliability %+v vs %+v", label, pa.Label, name, aa.Reliability, bb.Reliability)
			}
			if aa.UsageAvg != bb.UsageAvg || aa.UsageMin != bb.UsageMin || aa.UsageMax != bb.UsageMax {
				t.Errorf("%s: point %s %s usage differs", label, pa.Label, name)
			}
			if aa.ViolationRate != bb.ViolationRate {
				t.Errorf("%s: point %s %s violation rate %v vs %v", label, pa.Label, name, aa.ViolationRate, bb.ViolationRate)
			}
			if aa.RelVsILP != bb.RelVsILP {
				t.Errorf("%s: point %s %s rel-vs-ILP %v vs %v", label, pa.Label, name, aa.RelVsILP, bb.RelVsILP)
			}
		}
	}
}

// TestRunPointWorkerCountDeterminism is the sharpest check: the raw per-trial
// records (not just their aggregates) must be bit-identical between a serial
// run and a wide pool. Randomized is the critical solver here — it draws from
// the per-trial rng after the workload sampling draws.
func TestRunPointWorkerCountDeterminism(t *testing.T) {
	cfg := workload.NewDefaultConfig()
	base := Options{Trials: 8, Seed: 99, Quiet: true, Solvers: PaperSolvers()}

	serial := base
	serial.Workers = 1
	wide := base
	wide.Workers = 8

	a, err := runPoint(cfg, 6, serial, 17)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runPoint(cfg, 6, wide, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("algorithm sets differ: %d vs %d", len(a), len(b))
	}
	for name, ta := range a {
		tb, ok := b[name]
		if !ok {
			t.Fatalf("missing %s in wide run", name)
		}
		if len(ta) != len(tb) {
			t.Fatalf("%s: %d vs %d trials", name, len(ta), len(tb))
		}
		for i := range ta {
			x, y := ta[i], tb[i]
			y.ms = x.ms // runtime excluded
			if x != y {
				t.Fatalf("%s trial %d differs between workers=1 and workers=8: %+v vs %+v", name, i, x, y)
			}
		}
	}
}

// TestSweepWorkerCountDeterminism covers the acceptance criterion end to end:
// a figure sweep with workers=1 and workers=8 produces identical Sweep points
// (reliability, usage, violation rate; runtime excluded), and two same-seed
// runs are identical too.
func TestSweepWorkerCountDeterminism(t *testing.T) {
	base := Options{Trials: 3, Seed: 5, Quiet: true, Solvers: PaperSolvers(), Progress: func(string) {}}

	serial := base
	serial.Workers = 1
	wide := base
	wide.Workers = 8

	a, err := Fig3(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig3(wide)
	if err != nil {
		t.Fatal(err)
	}
	compareSweeps(t, "workers 1 vs 8", a, b)

	c, err := Fig3(wide)
	if err != nil {
		t.Fatal(err)
	}
	compareSweeps(t, "same-seed repeat", b, c)
}
