package experiments

import (
	"fmt"

	"repro/internal/workload"
)

// Fig1 reproduces Figure 1: performance while varying the SFC length of a
// request from 2 to 20 (step 2), with residual capacity fixed at 25% and
// function reliabilities drawn from [0.8, 0.9].
func Fig1(opt Options) (*Sweep, error) {
	opt = opt.withDefaults()
	s := &Sweep{
		Name:   "fig1",
		Title:  "varying the SFC length of a request from 2 to 20",
		XLabel: "SFC length",
		Trials: opt.Trials,
		Seed:   opt.Seed,
	}
	cfg := workload.NewDefaultConfig()
	for length := 2; length <= 20; length += 2 {
		raw, err := runPoint(cfg, length, opt, length)
		if err != nil {
			return nil, fmt.Errorf("fig1: SFC length %d: %w", length, err)
		}
		s.Points = append(s.Points, summarize(fmt.Sprintf("%d", length), float64(length), raw))
		progress(opt, "fig1: SFC length %d done", length)
	}
	return s, nil
}

// Fig2 reproduces Figure 2: performance while varying the network function
// reliability across the paper's four intervals [0.55,0.65), [0.65,0.75),
// [0.75,0.85), [0.85,0.95].
func Fig2(opt Options) (*Sweep, error) {
	opt = opt.withDefaults()
	s := &Sweep{
		Name:   "fig2",
		Title:  "varying the network function reliability from 0.6 to 0.9",
		XLabel: "function reliability interval midpoint",
		Trials: opt.Trials,
		Seed:   opt.Seed,
	}
	intervals := []struct{ lo, hi float64 }{
		{0.55, 0.65},
		{0.65, 0.75},
		{0.75, 0.85},
		{0.85, 0.95},
	}
	for idx, iv := range intervals {
		cfg := workload.NewDefaultConfig()
		cfg.ReliabilityMin = iv.lo
		cfg.ReliabilityMax = iv.hi
		mid := (iv.lo + iv.hi) / 2
		raw, err := runPoint(cfg, 0, opt, 100+idx)
		if err != nil {
			return nil, fmt.Errorf("fig2: reliability interval [%.2f,%.2f): %w", iv.lo, iv.hi, err)
		}
		s.Points = append(s.Points, summarize(fmt.Sprintf("[%.2f,%.2f)", iv.lo, iv.hi), mid, raw))
		progress(opt, "fig2: reliability interval [%.2f,%.2f) done", iv.lo, iv.hi)
	}
	return s, nil
}

// Fig3 reproduces Figure 3: performance while varying the ratio of residual
// computing capacity per cloudlet across 1/16, 1/8, 1/4, 1/2, 1.
func Fig3(opt Options) (*Sweep, error) {
	opt = opt.withDefaults()
	s := &Sweep{
		Name:   "fig3",
		Title:  "varying the residual computing capacity of each cloudlet from 1/16 to 1",
		XLabel: "residual capacity fraction",
		Trials: opt.Trials,
		Seed:   opt.Seed,
	}
	fracs := []float64{1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2, 1}
	labels := []string{"1/16", "1/8", "1/4", "1/2", "1"}
	for idx, f := range fracs {
		cfg := workload.NewDefaultConfig()
		cfg.ResidualFraction = f
		raw, err := runPoint(cfg, 0, opt, 200+idx)
		if err != nil {
			return nil, fmt.Errorf("fig3: residual fraction %s: %w", labels[idx], err)
		}
		s.Points = append(s.Points, summarize(labels[idx], f, raw))
		progress(opt, "fig3: residual fraction %s done", labels[idx])
	}
	return s, nil
}

// AblationHops sweeps the hop bound l (the paper fixes l=1; Theorems 4/6
// claim the machinery works for any fixed l, which this ablation exercises).
func AblationHops(opt Options) (*Sweep, error) {
	opt = opt.withDefaults()
	s := &Sweep{
		Name:   "hops",
		Title:  "ablation: varying the secondary-placement hop bound l",
		XLabel: "hop bound l",
		Trials: opt.Trials,
		Seed:   opt.Seed,
	}
	for l := 1; l <= 4; l++ {
		cfg := workload.NewDefaultConfig()
		cfg.HopBound = l
		raw, err := runPoint(cfg, 0, opt, 300+l)
		if err != nil {
			return nil, fmt.Errorf("hops: l=%d: %w", l, err)
		}
		s.Points = append(s.Points, summarize(fmt.Sprintf("%d", l), float64(l), raw))
		progress(opt, "hops: l=%d done", l)
	}
	return s, nil
}

// AblationObjective compares the exact log-gain ILP objective against the
// paper's literal BMCGAP cost objective (DESIGN.md §2): same instances, both
// formulations, reliability and runtime side by side.
func AblationObjective(opt Options) (*Sweep, error) {
	opt = opt.withDefaults()
	s := &Sweep{
		Name:   "objective",
		Title:  "ablation: log-gain vs paper-cost ILP objective",
		XLabel: "SFC length",
		Trials: opt.Trials,
		Seed:   opt.Seed,
	}
	cfg := workload.NewDefaultConfig()
	for _, length := range []int{4, 8, 12} {
		raw, err := runObjectivePoint(cfg, length, opt)
		if err != nil {
			return nil, fmt.Errorf("objective: SFC length %d: %w", length, err)
		}
		s.Points = append(s.Points, summarize(fmt.Sprintf("%d", length), float64(length), raw))
		progress(opt, "objective: SFC length %d done", length)
	}
	return s, nil
}
