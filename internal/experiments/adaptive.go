package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ConvergeOptions controls adaptive trial counts.
type ConvergeOptions struct {
	// TargetCI is the desired 95% confidence half-width on the mean
	// reliability (e.g. 0.002 resolves the third decimal the figures show).
	TargetCI float64
	// Batch is how many trials are added per refinement step (default 25).
	Batch int
	// MaxTrials caps the effort (default 1000, the paper's count).
	MaxTrials int
	// Seed feeds the trial RNGs.
	Seed int64
	// Solvers selects which algorithms run (default PaperSolvers());
	// convergence is judged on the slowest-converging one.
	Solvers []core.Solver
	// Workers bounds per-batch parallelism (<=0: GOMAXPROCS).
	Workers int
}

// ConvergeResult reports an adaptively sampled point.
type ConvergeResult struct {
	Point     Point
	Trials    int
	Converged bool
	// WorstCI is the largest reliability CI95 across algorithms at the end.
	WorstCI float64
}

// ConvergePoint runs one experiment configuration with adaptive trials:
// batches are added until every algorithm's mean-reliability confidence
// interval shrinks below TargetCI, or MaxTrials is reached. This answers the
// natural reviewer question "are 100 trials enough?" empirically instead of
// by assertion.
func ConvergePoint(cfg workload.Config, fixedLen int, opt ConvergeOptions) (*ConvergeResult, error) {
	if opt.TargetCI <= 0 {
		opt.TargetCI = 0.002
	}
	if opt.Batch <= 0 {
		opt.Batch = 25
	}
	if opt.MaxTrials <= 0 {
		opt.MaxTrials = 1000
	}
	if len(opt.Solvers) == 0 {
		opt.Solvers = PaperSolvers()
	}

	accumulated := make(map[string][]trial)
	trials := 0
	converged := false
	worst := 0.0
	for trials < opt.MaxTrials {
		batchOpt := Options{
			Trials:  opt.Batch,
			Seed:    opt.Seed + int64(trials), // continue the stream
			Solvers: opt.Solvers,
			Workers: opt.Workers,
			Quiet:   true,
		}
		raw, err := runPoint(cfg, fixedLen, batchOpt, 900)
		if err != nil {
			return nil, err
		}
		for name, ts := range raw {
			accumulated[name] = append(accumulated[name], ts...)
		}
		trials += opt.Batch

		worst = 0
		for _, ts := range accumulated {
			ci := stats.Summarize(column(ts, func(t trial) float64 { return t.rel })).CI95()
			if ci > worst {
				worst = ci
			}
		}
		if worst <= opt.TargetCI {
			converged = true
			break
		}
	}
	return &ConvergeResult{
		Point:     summarize(fmt.Sprintf("adaptive(n=%d)", trials), 0, accumulated),
		Trials:    trials,
		Converged: converged,
		WorstCI:   worst,
	}, nil
}
