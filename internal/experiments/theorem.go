package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TheoremPoint is one row of the Theorem 5.2 validation table.
type TheoremPoint struct {
	Label string
	// ObjRatio is the randomized algorithm's objective (Σ -log R_i, the
	// paper's optimization objective (5)) divided by the ILP optimum —
	// Theorem 5.2 bounds its expectation by 1+β ≤ 2.
	ObjRatio stats.Summary
	// RelRatio is achieved reliability relative to the ILP optimum.
	RelRatio stats.Summary
	// ViolationFactor is, per trial, the worst cloudlet's load divided by
	// its residual capacity — Theorem 5.2 bounds it by 2 w.h.p.
	ViolationFactor stats.Summary
	// ViolationRate is the fraction of trials with any violation.
	ViolationRate float64
	// Beyond2Rate is the fraction of trials where some cloudlet exceeded
	// twice its capacity (the theorem's low-probability event).
	Beyond2Rate float64
}

// TheoremSweep is the result of TheoremCheck.
type TheoremSweep struct {
	Points []TheoremPoint
	Trials int
	Seed   int64
}

// theoremTrial is one trial's raw observations for the Theorem 5.2 check.
type theoremTrial struct {
	objRatio, relRatio, violFactor float64
	hasObj, hasRel                 bool
	violated, beyond2              bool
}

// TheoremCheck empirically validates Theorem 5.2's two claims about the
// randomized algorithm — the constant-factor objective approximation and the
// ≤2× computing-capacity violation — across SFC lengths.
func TheoremCheck(opt Options) (*TheoremSweep, error) {
	opt = opt.withDefaults()
	out := &TheoremSweep{Trials: opt.Trials, Seed: opt.Seed}
	cfg := workload.NewDefaultConfig()
	ilpSolver := core.NewILPSolver(core.ILPOptions{Timeout: core.NoTimeout})
	rndSolver := core.NewRandomizedSolver(core.RandomizedOptions{})
	for _, length := range []int{4, 8, 12, 16} {
		length := length
		trials, err := engine.RunTagged(context.Background(),
			fmt.Sprintf("seed=%d theorem-len=%d", opt.Seed, length),
			opt.Trials, opt.Workers,
			func(t int) int64 { return opt.Seed*1_000_003 + int64(length)*40_009 + int64(t) },
			func(t int, rng *rand.Rand) (theoremTrial, error) {
				net := cfg.Network(rng)
				req := cfg.RequestWithLength(rng, t, length, net.Catalog().Size())
				workload.PlacePrimariesRandom(net, req, rng)
				inst := core.NewInstance(net, req, core.Params{L: cfg.HopBound})

				ilpRes, err := ilpSolver.Solve(inst, rng)
				if err != nil {
					return theoremTrial{}, fmt.Errorf("ILP: %w", err)
				}
				rndRes, err := rndSolver.Solve(inst, rng)
				if err != nil {
					return theoremTrial{}, fmt.Errorf("Randomized: %w", err)
				}

				// Objective (5) is Σ -log R_i = -log(chain reliability).
				objILP := -math.Log(ilpRes.Reliability)
				objRnd := -math.Log(rndRes.Reliability)
				rec := theoremTrial{
					violFactor: math.Max(1, rndRes.Usage.Max),
					violated:   rndRes.Violated,
					beyond2:    rndRes.Usage.Max > 2,
				}
				if objILP > 1e-12 {
					rec.objRatio, rec.hasObj = objRnd/objILP, true
				}
				if ilpRes.Reliability > 0 {
					rec.relRatio, rec.hasRel = rndRes.Reliability/ilpRes.Reliability, true
				}
				return rec, nil
			})
		if err != nil {
			return nil, fmt.Errorf("theorem: SFC length %d: %w", length, err)
		}

		var objRatios, relRatios, violFactors []float64
		nViol, nBeyond2 := 0, 0
		for _, rec := range trials {
			if rec.hasObj {
				objRatios = append(objRatios, rec.objRatio)
			}
			if rec.hasRel {
				relRatios = append(relRatios, rec.relRatio)
			}
			violFactors = append(violFactors, rec.violFactor)
			if rec.violated {
				nViol++
			}
			if rec.beyond2 {
				nBeyond2++
			}
		}
		p := TheoremPoint{
			Label:           fmt.Sprintf("%d", length),
			ViolationRate:   float64(nViol) / float64(opt.Trials),
			Beyond2Rate:     float64(nBeyond2) / float64(opt.Trials),
			RelRatio:        stats.Summarize(relRatios),
			ViolationFactor: stats.Summarize(violFactors),
		}
		if len(objRatios) > 0 {
			p.ObjRatio = stats.Summarize(objRatios)
		}
		out.Points = append(out.Points, p)
		progress(opt, "theorem: SFC length %d done", length)
	}
	return out, nil
}

// RenderTables writes the validation table.
func (s *TheoremSweep) RenderTables(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "THEOREM 5.2 — empirical validation of the randomized algorithm (trials=%d, seed=%d)\n\n", s.Trials, s.Seed)
	fmt.Fprintf(&b, "  %-10s %-24s %-22s %-24s %-10s %-10s\n",
		"SFC len", "objective ratio (≲2)", "reliability vs ILP", "worst violation (≤2)", "viol rate", ">2x rate")
	for _, p := range s.Points {
		fmt.Fprintf(&b, "  %-10s %-24s %-22s %-24s %-10.3f %-10.3f\n",
			p.Label,
			fmt.Sprintf("%.3f max %.3f", p.ObjRatio.Mean, p.ObjRatio.Max),
			fmt.Sprintf("%.4f", p.RelRatio.Mean),
			fmt.Sprintf("%.3f max %.3f", p.ViolationFactor.Mean, p.ViolationFactor.Max),
			p.ViolationRate, p.Beyond2Rate)
	}
	b.WriteString("\nTheorem 5.2 claims: expected objective approximation ratio ≤ 2 and per-cloudlet\nload ≤ 2× capacity, each with high probability; the >2x rate column counts the\nlow-probability exceptions.\n")
	_, err := io.WriteString(w, b.String())
	return err
}
