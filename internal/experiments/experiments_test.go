package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/workload"
)

// miniOpt keeps harness tests fast: few trials, quiet.
func miniOpt() Options {
	return Options{Trials: 2, Seed: 7, Quiet: true, Solvers: AllSolvers(), Progress: func(string) {}}
}

// heuristicOnly resolves the single cheap solver for fast tests.
func heuristicOnly() Options {
	opt := miniOpt()
	opt.Solvers = mustSolvers("Heuristic")
	return opt
}

func TestFig3SweepStructure(t *testing.T) {
	s, err := Fig3(miniOpt())
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "fig3" || len(s.Points) != 5 {
		t.Fatalf("sweep %q with %d points", s.Name, len(s.Points))
	}
	for _, p := range s.Points {
		for _, alg := range []string{"ILP", "Randomized", "Heuristic", "Greedy"} {
			ap, ok := p.Algs[alg]
			if !ok {
				t.Fatalf("point %s missing %s", p.Label, alg)
			}
			if ap.Reliability.Mean <= 0 || ap.Reliability.Mean > 1 {
				t.Fatalf("point %s %s reliability %v out of (0,1]", p.Label, alg, ap.Reliability.Mean)
			}
			if ap.Reliability.N != 2 {
				t.Fatalf("point %s %s has %d trials, want 2", p.Label, alg, ap.Reliability.N)
			}
		}
		// Feasible algorithms may never beat the exact ILP.
		ilp := p.Algs["ILP"].Reliability.Mean
		for _, alg := range []string{"Heuristic", "Greedy"} {
			if p.Algs[alg].Reliability.Mean > ilp+1e-6 {
				t.Fatalf("point %s: %s (%v) beats ILP (%v)", p.Label, alg, p.Algs[alg].Reliability.Mean, ilp)
			}
		}
	}
	// Reliability should not increase when residual capacity decreases.
	first := s.Points[0].Algs["ILP"].Reliability.Mean              // 1/16
	last := s.Points[len(s.Points)-1].Algs["ILP"].Reliability.Mean // full capacity
	if first > last+1e-9 {
		t.Fatalf("reliability at 1/16 capacity (%v) exceeds full capacity (%v)", first, last)
	}
}

func TestFig1SweepLengthAxis(t *testing.T) {
	s, err := Fig1(heuristicOnly())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 10 {
		t.Fatalf("fig1 has %d points, want 10 (lengths 2..20)", len(s.Points))
	}
	if s.Points[0].X != 2 || s.Points[9].X != 20 {
		t.Fatalf("x-axis %v..%v", s.Points[0].X, s.Points[9].X)
	}
	// Longer chains are harder: reliability of the longest chain should not
	// exceed that of the shortest.
	if s.Points[9].Algs["Heuristic"].Reliability.Mean > s.Points[0].Algs["Heuristic"].Reliability.Mean+1e-9 {
		t.Fatal("reliability should not grow with SFC length")
	}
}

func TestFig2SweepReliabilityAxis(t *testing.T) {
	opt := miniOpt()
	opt.Solvers = mustSolvers("Heuristic", "Randomized")
	s, err := Fig2(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 4 {
		t.Fatalf("fig2 has %d points", len(s.Points))
	}
	lo := s.Points[0].Algs["Heuristic"].Reliability.Mean
	hi := s.Points[3].Algs["Heuristic"].Reliability.Mean
	if lo > hi {
		t.Fatalf("chain reliability should grow with function reliability: %v vs %v", lo, hi)
	}
}

func TestAblationHops(t *testing.T) {
	s, err := AblationHops(heuristicOnly())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 4 {
		t.Fatalf("hops ablation has %d points", len(s.Points))
	}
	// Looser hop bounds can only help (weak check on means).
	l1 := s.Points[0].Algs["Heuristic"].Reliability.Mean
	l4 := s.Points[3].Algs["Heuristic"].Reliability.Mean
	if l4 < l1-1e-9 {
		t.Fatalf("l=4 reliability %v below l=1 %v", l4, l1)
	}
}

func TestAblationObjective(t *testing.T) {
	s, err := AblationObjective(miniOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("objective ablation has %d points", len(s.Points))
	}
	for _, p := range s.Points {
		if _, ok := p.Algs["ILP(gain)"]; !ok {
			t.Fatalf("point %s missing ILP(gain)", p.Label)
		}
		if _, ok := p.Algs["ILP(paper-cost)"]; !ok {
			t.Fatalf("point %s missing ILP(paper-cost)", p.Label)
		}
	}
}

func TestRenderTables(t *testing.T) {
	s, err := Fig3(miniOpt())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.RenderTables(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"FIG3", "achieved SFC reliability", "capacity usage ratio",
		"running time", "ILP", "Randomized", "Heuristic", "1/16",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("tables missing %q:\n%s", want, out)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	s, err := Fig3(miniOpt())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// header + 5 points × 4 algorithms
	if len(records) != 1+5*4 {
		t.Fatalf("CSV has %d rows, want %d", len(records), 1+5*4)
	}
	if records[0][0] != "sweep" || records[1][0] != "fig3" {
		t.Fatalf("CSV header/rows malformed: %v %v", records[0], records[1])
	}
	for _, rec := range records {
		if len(rec) != len(records[0]) {
			t.Fatalf("ragged CSV row: %v", rec)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Trials != 100 {
		t.Fatalf("default trials %d", o.Trials)
	}
	if len(o.Solvers) != 4 {
		t.Fatalf("default solvers: got %d, want the 4 built-ins", len(o.Solvers))
	}
	for i, want := range []string{"ILP", "Randomized", "Heuristic", "Greedy"} {
		if o.Solvers[i].Name() != want {
			t.Fatalf("default solver %d is %q, want %q", i, o.Solvers[i].Name(), want)
		}
	}
}

func TestDeterministicSweeps(t *testing.T) {
	opt := heuristicOnly()
	a, err := Fig2(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig2(opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		ra := a.Points[i].Algs["Heuristic"].Reliability.Mean
		rb := b.Points[i].Algs["Heuristic"].Reliability.Mean
		if ra != rb {
			t.Fatalf("sweep not deterministic at point %d: %v vs %v", i, ra, rb)
		}
	}
}

func TestTheoremCheck(t *testing.T) {
	s, err := TheoremCheck(miniOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 4 {
		t.Fatalf("theorem sweep has %d points", len(s.Points))
	}
	for _, p := range s.Points {
		if p.RelRatio.Mean <= 0 {
			t.Fatalf("point %s: nonpositive reliability ratio", p.Label)
		}
		if p.ViolationFactor.Min < 1 {
			t.Fatalf("point %s: violation factor below 1: %v", p.Label, p.ViolationFactor.Min)
		}
		if p.Beyond2Rate > p.ViolationRate+1e-9 {
			t.Fatalf("point %s: >2x rate exceeds violation rate", p.Label)
		}
	}
	var buf bytes.Buffer
	if err := s.RenderTables(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "THEOREM 5.2") {
		t.Fatal("theorem table missing banner")
	}
}

func TestCharts(t *testing.T) {
	s, err := Fig3(miniOpt())
	if err != nil {
		t.Fatal(err)
	}
	charts := s.Charts()
	if len(charts) != 3 {
		t.Fatalf("%d charts, want 3", len(charts))
	}
	for _, c := range charts {
		var buf bytes.Buffer
		if err := c.Render(&buf); err != nil {
			t.Fatalf("chart %q: %v", c.Title, err)
		}
		if !strings.Contains(buf.String(), "polyline") {
			t.Fatalf("chart %q has no lines", c.Title)
		}
	}
	if !charts[2].LogY {
		t.Fatal("running-time chart should be log scale")
	}
}

func TestConvergePoint(t *testing.T) {
	cfg := workload.NewDefaultConfig()
	res, err := ConvergePoint(cfg, 4, ConvergeOptions{
		TargetCI:  0.05, // loose: converges within a couple of batches
		Batch:     5,
		MaxTrials: 40,
		Seed:      11,
		Solvers:   mustSolvers("Heuristic"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials == 0 || res.Trials > 40 {
		t.Fatalf("trials %d", res.Trials)
	}
	if res.Converged && res.WorstCI > 0.05 {
		t.Fatalf("claimed convergence with CI %v", res.WorstCI)
	}
	ap, ok := res.Point.Algs["Heuristic"]
	if !ok {
		t.Fatal("missing heuristic stats")
	}
	if ap.Reliability.N != res.Trials {
		t.Fatalf("stats over %d trials, reported %d", ap.Reliability.N, res.Trials)
	}
}

func TestConvergePointHitsCap(t *testing.T) {
	cfg := workload.NewDefaultConfig()
	res, err := ConvergePoint(cfg, 8, ConvergeOptions{
		TargetCI:  1e-9, // unreachable: must stop at the cap
		Batch:     5,
		MaxTrials: 10,
		Seed:      12,
		Solvers:   mustSolvers("Heuristic"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("cannot converge to 1e-9 in 10 trials")
	}
	if res.Trials != 10 {
		t.Fatalf("trials %d, want 10", res.Trials)
	}
}
