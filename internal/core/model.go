package core

import (
	"fmt"

	"repro/internal/lp"
)

// Objective selects the ILP/LP objective formulation (see DESIGN.md §2).
type Objective int

const (
	// ObjectiveLogGain maximizes Σ w(i,k)·z — exactly equivalent to
	// maximizing the achieved chain reliability (gains telescope to
	// log Π R_i). This is the default; the paper's figures report achieved
	// reliability, and under this objective "ILP" is its true optimum.
	ObjectiveLogGain Objective = iota
	// ObjectivePaperCost implements the paper's Eq. (5)–(13) BMCGAP
	// semantics literally: lexicographically maximize the number of packed
	// items, then minimize Σ c(f_i,k)·z, via a dominating per-item reward.
	ObjectivePaperCost
)

// String names the objective for flags and logs.
func (o Objective) String() string {
	switch o {
	case ObjectiveLogGain:
		return "log-gain"
	case ObjectivePaperCost:
		return "paper-cost"
	}
	return "unknown"
}

// builtModel carries the LP/ILP encoding of an instance plus the variable
// maps needed to decode solutions.
type builtModel struct {
	m *lp.Model
	// y[i][b] is the count variable for position i, bin index b.
	y [][]int
	// z[i][k-1] is the k-th item indicator for position i.
	z [][]int
	// intVars lists every y variable (the only ones that must be integral).
	intVars []int
}

// buildModel encodes the instance as a linear program:
//
//	max  Σ_i Σ_k w(i,k)·z_{i,k}            (or the paper-cost reward)
//	s.t. Σ_k z_{i,k} = Σ_b y_{i,b}          ∀i   (link: items ↔ placements)
//	     Σ_b y_{i,b} ≤ K_i                  ∀i   (item-schedule length)
//	     Σ_i c_i · y_{i,b(u)} ≤ C'_u        ∀u   (cloudlet capacity, Eq. 9)
//	     0 ≤ z_{i,k} ≤ 1,  0 ≤ y_{i,b} ≤ slots_{i,b}
//
// The per-item/per-bin binary x_{i,k,u} of the paper's formulation is
// aggregated into counts: items of one function are interchangeable (equal
// size, costs depending on k only), so Lemma 4.2's prefix structure lets the
// z-chain price exactly what the x variables would, at a fraction of the
// size. The l-hop constraint (Eq. 12) and capacity-infeasibility constraints
// (Eq. 11/13) are enforced structurally: variables simply do not exist for
// forbidden (position, cloudlet) pairs.
func buildModel(inst *Instance, obj Objective) *builtModel {
	m := lp.NewModel(lp.Maximize)
	bm := &builtModel{m: m}

	// Dominating per-item reward for the paper-cost lexicographic objective.
	var w float64
	if obj == ObjectivePaperCost {
		w = 1
		for _, p := range inst.Positions {
			for _, c := range p.Costs {
				w += c
			}
		}
	}

	bm.y = make([][]int, len(inst.Positions))
	bm.z = make([][]int, len(inst.Positions))
	for i, p := range inst.Positions {
		bm.y[i] = make([]int, len(p.Bins))
		bm.z[i] = make([]int, p.K)
		var linkTerms []lp.Term
		for b := range p.Bins {
			ub := p.Slots[b]
			if ub > p.K {
				ub = p.K
			}
			v := m.AddVar(0, float64(ub), 0, fmt.Sprintf("y_%d_%d", i, p.Bins[b]))
			bm.y[i][b] = v
			bm.intVars = append(bm.intVars, v)
			linkTerms = append(linkTerms, lp.Term{Var: v, Coeff: -1})
		}
		for k := 1; k <= p.K; k++ {
			reward := p.Gains[k-1]
			if obj == ObjectivePaperCost {
				reward = w - p.Costs[k-1]
			}
			v := m.AddVar(0, 1, reward, fmt.Sprintf("z_%d_%d", i, k))
			bm.z[i][k-1] = v
			linkTerms = append(linkTerms, lp.Term{Var: v, Coeff: 1})
		}
		// The link row both ties placements to priced items and enforces
		// Σ_b y ≤ K_i (there are only K_i unit-capped z variables).
		if len(linkTerms) > 0 {
			m.AddConstr(linkTerms, lp.EQ, 0, fmt.Sprintf("link_%d", i))
		}
	}

	// Cloudlet capacity rows over the union bin set.
	for _, u := range inst.BinSet {
		var terms []lp.Term
		for i, p := range inst.Positions {
			for b, bu := range p.Bins {
				if bu == u {
					terms = append(terms, lp.Term{Var: bm.y[i][b], Coeff: p.Func.Demand})
				}
			}
		}
		if len(terms) > 0 {
			m.AddConstr(terms, lp.LE, inst.Residual[u], fmt.Sprintf("cap_%d", u))
		}
	}
	return bm
}

// decodeCounts reads per-position per-bin placement counts from a solution
// vector, rounding the (integral up to tolerance) y values.
func (bm *builtModel) decodeCounts(inst *Instance, x []float64) []map[int]int {
	perBin := make([]map[int]int, len(inst.Positions))
	for i, p := range inst.Positions {
		perBin[i] = make(map[int]int)
		for b, u := range p.Bins {
			c := int(x[bm.y[i][b]] + 0.5)
			if c > 0 {
				perBin[i][u] = c
			}
		}
	}
	return perBin
}
