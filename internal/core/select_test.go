package core

import (
	"reflect"
	"testing"
)

func TestSelectAdmissionAllFit(t *testing.T) {
	residual := []float64{0, 100, 100}
	bins := []int{1, 2}
	cands := []AdmissionCandidate{
		{Value: 1, Demands: []float64{10, 10}},
		{Value: 2, Demands: []float64{20}},
		{Value: 0, Demands: []float64{5}}, // non-positive value: never selected
	}
	got := SelectAdmission(residual, bins, cands, 0)
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("got %v, want [0 1]", got)
	}
}

// TestSelectAdmissionBeatsGreedy pins that the bounded exact search improves
// on the greedy descent: one high-value candidate blocks two medium ones
// whose combined value is higher.
func TestSelectAdmissionBeatsGreedy(t *testing.T) {
	residual := []float64{0, 10}
	bins := []int{1}
	cands := []AdmissionCandidate{
		{Value: 5, Demands: []float64{6}},
		{Value: 3, Demands: []float64{5}},
		{Value: 3, Demands: []float64{5}},
	}
	got := SelectAdmission(residual, bins, cands, 0)
	if !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("got %v, want [1 2] (total value 6 > greedy's 5)", got)
	}
}

func TestSelectAdmissionAllInfeasible(t *testing.T) {
	residual := []float64{0, 10, 10}
	bins := []int{1, 2}
	cands := []AdmissionCandidate{
		{Value: 4, Demands: []float64{50}},
		{Value: 2, Demands: []float64{11, 11}},
	}
	if got := SelectAdmission(residual, bins, cands, 0); len(got) != 0 {
		t.Fatalf("got %v, want empty selection", got)
	}
	if got := SelectAdmission(residual, nil, cands, 0); got != nil {
		t.Fatalf("no bins: got %v", got)
	}
	if got := SelectAdmission(residual, bins, nil, 0); got != nil {
		t.Fatalf("no candidates: got %v", got)
	}
}

func TestSelectAdmissionDeterministic(t *testing.T) {
	residual := []float64{0, 30, 20, 0, 25}
	bins := []int{1, 2, 4}
	cands := []AdmissionCandidate{
		{Value: 2.5, Demands: []float64{10, 10}},
		{Value: 2.5, Demands: []float64{10, 10}},
		{Value: 1.0, Demands: []float64{15}},
		{Value: 4.0, Demands: []float64{20, 20}},
		{Value: 0.5, Demands: []float64{5}},
	}
	a := SelectAdmission(residual, bins, cands, 0)
	b := SelectAdmission(residual, bins, cands, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("expected a non-empty selection")
	}
	// The winning subset's demands must actually pack.
	total := 0.0
	for _, i := range a {
		for _, d := range cands[i].Demands {
			total += d
		}
	}
	if total > 75 {
		t.Fatalf("selected demand %v exceeds total residual 75", total)
	}
}
