package core

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/obs"
)

// ErrFallbackExhausted is wrapped by a Fallback solver's error when every
// stage of the chain failed (error, timeout, or capacity-violating result).
// Callers that degrade gracefully — the DES records such a request as
// blocked instead of aborting — match it with errors.Is.
var ErrFallbackExhausted = errors.New("core: fallback chain exhausted")

// FallbackStage pairs a solver with a wall-clock budget inside a chain.
type FallbackStage struct {
	Solver Solver
	// Budget bounds the stage's wall clock (<= 0: unbounded). On expiry the
	// stage is abandoned — its goroutine finishes in the background with a
	// private rng, its result is discarded — and the chain moves on.
	Budget time.Duration
}

// Stage is shorthand for constructing a FallbackStage.
func Stage(s Solver, budget time.Duration) FallbackStage {
	return FallbackStage{Solver: s, Budget: budget}
}

// fallbackInstruments caches the per-(chain, stage) obs handles.
type fallbackInstruments struct {
	activations *obs.Counter // stage attempts
	served      *obs.Counter // stage produced the chain's result
	timeouts    *obs.Counter // stage budget expiries
	errors      *obs.Counter // stage errors (incl. infeasible results)
}

func fallbackInstrumentsFor(chain, stage string) *fallbackInstruments {
	r := obs.Default()
	return &fallbackInstruments{
		activations: r.Counter("fallback_activations_total", "chain", chain, "stage", stage),
		served:      r.Counter("fallback_served_total", "chain", chain, "stage", stage),
		timeouts:    r.Counter("fallback_stage_timeouts_total", "chain", chain, "stage", stage),
		errors:      r.Counter("fallback_stage_errors_total", "chain", chain, "stage", stage),
	}
}

// Fallback builds a registry-compatible Solver that tries each stage in
// order under its own wall-clock budget and returns the first feasible
// result (err == nil and no capacity violation), tagged in Result.ServedBy
// with the stage that produced it. A typical chain is
//
//	core.Fallback("des", core.Stage(ilp, 50*time.Millisecond),
//	    core.Stage(heuristic, 0), core.Stage(greedy, 0))
//
// so a pathological instance degrades to a cheaper algorithm instead of
// stalling the caller. Per-stage activations, serves, timeouts, and errors
// are exposed as fallback_*_total{chain,stage} counters.
//
// Determinism: the chain draws one seed per stage from the caller's rng up
// front — regardless of how many stages actually run — so the caller's rng
// stream advances by exactly len(stages) draws per Solve and an abandoned
// stage never shares its rng with a later one. Chains whose stages are
// deterministic and unbudgeted (e.g. Heuristic → Greedy) are themselves
// deterministic; a wall-clock budget trades that for a latency guarantee,
// exactly like ILPOptions.Timeout.
func Fallback(name string, stages ...FallbackStage) Solver {
	if name == "" {
		panic("core: Fallback requires a non-empty chain name")
	}
	if len(stages) == 0 {
		panic("core: Fallback requires at least one stage")
	}
	ins := make([]*fallbackInstruments, len(stages))
	for i, st := range stages {
		if st.Solver == nil {
			panic(fmt.Sprintf("core: Fallback %q stage %d has a nil solver", name, i))
		}
		ins[i] = fallbackInstrumentsFor(name, st.Solver.Name())
	}
	return NewSolverFunc(name, func(inst *Instance, rng *rand.Rand) (*Result, error) {
		// One seed per stage, drawn before any stage runs (see doc comment).
		seeds := make([]int64, len(stages))
		if rng != nil {
			for i := range seeds {
				seeds[i] = rng.Int63()
			}
		}
		var fails []string
		for i, st := range stages {
			ins[i].activations.Inc()
			var stageRng *rand.Rand
			if rng != nil {
				stageRng = rand.New(CheapSource(seeds[i]))
			}
			res, err, timedOut := runStage(st, inst, stageRng)
			switch {
			case timedOut:
				ins[i].timeouts.Inc()
				fails = append(fails, fmt.Sprintf("%s: budget %v exceeded", st.Solver.Name(), st.Budget))
			case err != nil:
				ins[i].errors.Inc()
				fails = append(fails, fmt.Sprintf("%s: %v", st.Solver.Name(), err))
			case res == nil:
				ins[i].errors.Inc()
				fails = append(fails, st.Solver.Name()+": nil result")
			case res.Violated:
				// A capacity-violating solution (possible for Randomized)
				// cannot be committed, so for a serving chain it is a
				// failure: fall through to the next stage.
				ins[i].errors.Inc()
				fails = append(fails, st.Solver.Name()+": capacity-violating result")
			default:
				ins[i].served.Inc()
				res.ServedBy = st.Solver.Name()
				return res, nil
			}
		}
		return nil, fmt.Errorf("%w: %s: %s", ErrFallbackExhausted, name, strings.Join(fails, "; "))
	})
}

// runStage executes one stage, enforcing its wall-clock budget by running
// the solver in a goroutine and abandoning it on expiry. The abandoned
// goroutine only ever touches its private rng and the read-only instance,
// and delivers into a buffered channel, so nothing races.
func runStage(st FallbackStage, inst *Instance, rng *rand.Rand) (*Result, error, bool) {
	if st.Budget <= 0 {
		res, err := st.Solver.Solve(inst, rng)
		return res, err, false
	}
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := st.Solver.Solve(inst, rng)
		ch <- outcome{res, err}
	}()
	timer := time.NewTimer(st.Budget)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out.res, out.err, false
	case <-timer.C:
		return nil, nil, true
	}
}

// ParseFallback builds a Fallback chain from a spec like
// "ILP@50ms,Heuristic,Greedy": comma-separated registered solver names,
// each with an optional @duration wall-clock budget. An ILP stage with a
// budget is rebuilt with that duration as its internal ILPOptions.Timeout
// (returning its best incumbent at the deadline) and given a small external
// slack on top, so the budget degrades the answer before it abandons the
// search.
func ParseFallback(name, spec string) (Solver, error) {
	var stages []FallbackStage
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		solverName := tok
		var budget time.Duration
		if at := strings.IndexByte(tok, '@'); at >= 0 {
			solverName = strings.TrimSpace(tok[:at])
			d, err := time.ParseDuration(strings.TrimSpace(tok[at+1:]))
			if err != nil {
				return nil, fmt.Errorf("core: fallback stage %q: bad budget: %w", tok, err)
			}
			if d <= 0 {
				return nil, fmt.Errorf("core: fallback stage %q: budget must be positive", tok)
			}
			budget = d
		}
		stages = append(stages, buildStage(solverName, budget))
		if stages[len(stages)-1].Solver == nil {
			known := Names()
			return nil, fmt.Errorf("core: fallback stage %q: unknown solver (registered: %s)",
				tok, strings.Join(known, ", "))
		}
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("core: empty fallback spec %q", spec)
	}
	return Fallback(name, stages...), nil
}

// buildStage resolves one fallback stage. A budgeted ILP stage gets the
// budget as its internal deterministic-incumbent deadline plus 25%+10ms of
// external slack; every other solver is bounded externally only.
func buildStage(solverName string, budget time.Duration) FallbackStage {
	if budget > 0 && strings.EqualFold(solverName, "ILP") {
		return Stage(NewILPSolver(ILPOptions{Timeout: budget}), budget+budget/4+10*time.Millisecond)
	}
	s, ok := Get(solverName)
	if !ok {
		return FallbackStage{}
	}
	return Stage(s, budget)
}
