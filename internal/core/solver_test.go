package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/workload"
)

func solverTestInstance(t testing.TB, seed int64, length int) *Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := workload.NewDefaultConfig()
	net := cfg.Network(rng)
	req := cfg.RequestWithLength(rng, 0, length, net.Catalog().Size())
	workload.PlacePrimariesRandom(net, req, rng)
	return NewInstance(net, req, Params{L: cfg.HopBound})
}

func TestRegistryHasBuiltins(t *testing.T) {
	want := []string{"ILP", "Randomized", "Heuristic", "Greedy"}
	names := Names()
	for i, w := range want {
		if i >= len(names) || names[i] != w {
			t.Fatalf("Names() = %v, want prefix %v (paper order)", names, want)
		}
	}
	for _, w := range want {
		s, ok := Get(w)
		if !ok {
			t.Fatalf("Get(%q) missing", w)
		}
		if s.Name() != w {
			t.Fatalf("Get(%q).Name() = %q", w, s.Name())
		}
	}
}

func TestGetCaseInsensitive(t *testing.T) {
	for _, name := range []string{"ilp", "ILP", "Ilp", "randomized", "HEURISTIC", "greedy"} {
		if _, ok := Get(name); !ok {
			t.Fatalf("Get(%q) should resolve case-insensitively", name)
		}
	}
	if _, ok := Get("no-such-solver"); ok {
		t.Fatal("Get should miss on unknown names")
	}
}

func TestRegisteredSolversMatchFreeFunctions(t *testing.T) {
	inst := solverTestInstance(t, 11, 6)
	checks := []struct {
		name string
		free func() (*Result, error)
	}{
		{"ILP", func() (*Result, error) { return SolveILP(inst, ILPOptions{}) }},
		{"Heuristic", func() (*Result, error) { return SolveHeuristic(inst, HeuristicOptions{}) }},
		{"Greedy", func() (*Result, error) { return SolveGreedy(inst) }},
	}
	for _, c := range checks {
		s, _ := Get(c.name)
		got, err := s.Solve(inst, nil)
		if err != nil {
			t.Fatalf("%s via registry: %v", c.name, err)
		}
		want, err := c.free()
		if err != nil {
			t.Fatalf("%s free function: %v", c.name, err)
		}
		if got.Reliability != want.Reliability {
			t.Fatalf("%s: registry reliability %v != free-function %v", c.name, got.Reliability, want.Reliability)
		}
	}
	// Randomized draws from the rng: same seed must give the same result.
	s, _ := Get("Randomized")
	got, err := s.Solve(inst, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	want, err := SolveRandomized(inst, rand.New(rand.NewSource(3)), RandomizedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Reliability != want.Reliability {
		t.Fatalf("Randomized: registry %v != free-function %v", got.Reliability, want.Reliability)
	}
}

func TestRandomizedSolverNilRNG(t *testing.T) {
	inst := solverTestInstance(t, 12, 5)
	s, _ := Get("Randomized")
	if _, err := s.Solve(inst, nil); err == nil {
		t.Fatal("Randomized.Solve(inst, nil) must error, not panic downstream")
	}
}

func TestResolveSolvers(t *testing.T) {
	got, err := ResolveSolvers("heuristic, ILP")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name() != "Heuristic" || got[1].Name() != "ILP" {
		t.Fatalf("ResolveSolvers order/canonicalization wrong: %v, %v", got[0].Name(), got[1].Name())
	}

	all, err := ResolveSolvers("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 4 {
		t.Fatalf("ResolveSolvers(all) returned %d solvers", len(all))
	}

	// Duplicates collapse.
	dup, err := ResolveSolvers("greedy,GREEDY")
	if err != nil {
		t.Fatal(err)
	}
	if len(dup) != 1 {
		t.Fatalf("duplicate names should collapse: got %d", len(dup))
	}

	if _, err := ResolveSolvers("ilp,bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown name must error and quote it: %v", err)
	}
	if _, err := ResolveSolvers(" , "); err == nil {
		t.Fatal("empty spec must error")
	}
}

func TestRegisterReplacementKeepsOrder(t *testing.T) {
	before := Names()
	// Rebind ILP (position 0) to tuned options; position and listing must
	// not change, and lookups must see the replacement.
	Register(NewILPSolver(ILPOptions{MaxNodes: 10}))
	defer Register(NewILPSolver(ILPOptions{}))
	after := Names()
	if len(after) != len(before) {
		t.Fatalf("replacement grew the registry: %v -> %v", before, after)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("replacement reordered the registry: %v -> %v", before, after)
		}
	}
}

func TestNewSolverFunc(t *testing.T) {
	inst := solverTestInstance(t, 13, 4)
	s := NewSolverFunc("Custom", func(inst *Instance, _ *rand.Rand) (*Result, error) {
		return SolveGreedy(inst)
	})
	if s.Name() != "Custom" {
		t.Fatalf("name %q", s.Name())
	}
	res, err := s.Solve(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reliability <= 0 {
		t.Fatalf("reliability %v", res.Reliability)
	}
}
