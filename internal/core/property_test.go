package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

// quickCfg pins the property tests' input corpus to a fixed seed. The
// default time-seeded quick.Config makes the suite flaky: the checked
// properties are probabilistic at the margins (e.g. Theorem 5.2's violation
// bound holds w.h.p., not always), so rare draws — such as seed
// 6076796058287736652 in TestRandomizedViolationBoundedProperty, which
// reaches Usage.Max ≈ 3.25 — fail on unlucky runs.
func quickCfg(maxCount int) *quick.Config {
	return &quick.Config{MaxCount: maxCount, Rand: rand.New(rand.NewSource(7))}
}

// randomPaperInstance samples a paper-scale instance with randomized knobs.
func randomPaperInstance(rng *rand.Rand) *Instance {
	cfg := workload.NewDefaultConfig()
	cfg.ResidualFraction = []float64{1.0 / 16, 0.25, 0.5, 1}[rng.Intn(4)]
	cfg.ReliabilityMin = 0.55 + 0.3*rng.Float64()
	cfg.ReliabilityMax = cfg.ReliabilityMin + 0.05
	if rng.Intn(3) == 0 {
		cfg.Expectation = 0.9 + 0.099*rng.Float64()
	}
	l := 1 + rng.Intn(2)
	net := cfg.Network(rng)
	req := cfg.RequestWithLength(rng, 0, 2+rng.Intn(8), net.Catalog().Size())
	workload.PlacePrimariesRandom(net, req, rng)
	return NewInstance(net, req, Params{L: l})
}

// Property: every solver returns a placement that validates against the
// network and the hop bound, never lowers reliability below the primaries,
// and (except Randomized) never violates capacity.
func TestSolverInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomPaperInstance(rng)
		type sr struct {
			res       *Result
			mayiolate bool
		}
		var all []sr
		ilpRes, err := SolveILP(inst, ILPOptions{})
		if err != nil {
			return false
		}
		all = append(all, sr{ilpRes, false})
		heuRes, err := SolveHeuristic(inst, HeuristicOptions{})
		if err != nil {
			return false
		}
		all = append(all, sr{heuRes, false})
		greRes, err := SolveGreedy(inst)
		if err != nil {
			return false
		}
		all = append(all, sr{greRes, false})
		rndRes, err := SolveRandomized(inst, rng, RandomizedOptions{})
		if err != nil {
			return false
		}
		all = append(all, sr{rndRes, true})

		for _, s := range all {
			if s.res.Reliability < inst.InitialReliability-1e-12 {
				return false
			}
			if err := s.res.Placement().Validate(inst.Net, inst.Params.L); err != nil {
				return false
			}
			if !s.mayiolate && s.res.Violated {
				return false
			}
			// Counts and PerBin must be consistent.
			for i, m := range s.res.PerBin {
				total := 0
				for _, c := range m {
					total += c
				}
				if total != s.res.Counts[i] {
					return false
				}
			}
		}
		// Feasible solutions never beat a proven ILP optimum. Only valid
		// with ρ = 1: under a finite expectation every solver trims back to
		// a ρ-minimal placement, and trimmed results are incomparable.
		if ilpRes.Proven && inst.Req.Expectation == 1 {
			for _, s := range all[1:] {
				if !s.res.Violated && s.res.Reliability > ilpRes.Reliability+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(25)); err != nil {
		t.Fatal(err)
	}
}

// Property: achieved reliability equals the closed-form chain reliability of
// the reported counts.
func TestReliabilityConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomPaperInstance(rng)
		res, err := SolveHeuristic(inst, HeuristicOptions{})
		if err != nil {
			return false
		}
		want := 1.0
		for i, p := range inst.Positions {
			want *= 1 - math.Pow(1-p.Func.Reliability, float64(res.Counts[i]+1))
		}
		return math.Abs(res.Reliability-want) < 1e-9
	}
	if err := quick.Check(f, quickCfg(30)); err != nil {
		t.Fatal(err)
	}
}

// Property: with a finite expectation, met solutions are trim-minimal — no
// single backup can be removed without dropping below ρ.
func TestTrimMinimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.NewDefaultConfig()
		cfg.Expectation = 0.95 + 0.04*rng.Float64()
		net := cfg.Network(rng)
		req := cfg.RequestWithLength(rng, 0, 2+rng.Intn(5), net.Catalog().Size())
		workload.PlacePrimariesRandom(net, req, rng)
		inst := NewInstance(net, req, Params{L: 1})
		res, err := SolveILP(inst, ILPOptions{})
		if err != nil {
			return false
		}
		if !res.MetExpectation {
			return true // nothing to check when ρ unreachable
		}
		counts := append([]int(nil), res.Counts...)
		for i := range counts {
			if counts[i] == 0 {
				continue
			}
			counts[i]--
			if inst.achieved(counts) >= req.Expectation {
				return false // not minimal
			}
			counts[i]++
		}
		return true
	}
	if err := quick.Check(f, quickCfg(25)); err != nil {
		t.Fatal(err)
	}
}

// Property: a larger hop bound never yields a worse proven-ILP optimum.
func TestHopBoundMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.NewDefaultConfig()
		net := cfg.Network(rng)
		req := cfg.RequestWithLength(rng, 0, 2+rng.Intn(4), net.Catalog().Size())
		workload.PlacePrimariesRandom(net, req, rng)
		inst1 := NewInstance(net, req, Params{L: 1})
		inst2 := NewInstance(net, req, Params{L: 2})
		r1, err := SolveILP(inst1, ILPOptions{})
		if err != nil {
			return false
		}
		r2, err := SolveILP(inst2, ILPOptions{})
		if err != nil {
			return false
		}
		if !r1.Proven || !r2.Proven {
			return true
		}
		return r2.Reliability >= r1.Reliability-1e-9
	}
	if err := quick.Check(f, quickCfg(15)); err != nil {
		t.Fatal(err)
	}
}

// Property: the randomized algorithm's violations stay within the 2x bound
// of Theorem 5.2 in the overwhelming majority of trials (we assert the
// bound as a hard cap at 3x to leave room for the theorem's low-probability
// exceptions without flaking).
func TestRandomizedViolationBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomPaperInstance(rng)
		res, err := SolveRandomized(inst, rng, RandomizedOptions{})
		if err != nil {
			return false
		}
		return res.Usage.Max <= 3.0
	}
	if err := quick.Check(f, quickCfg(40)); err != nil {
		t.Fatal(err)
	}
}
