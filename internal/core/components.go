package core

import "sort"

// splitComponents partitions the chain positions into independent groups:
// two positions interact only if their allowed bin sets intersect (they
// compete for the same cloudlet capacity). The augmentation objective is
// separable across groups, so each can be solved exactly on its own — this
// is the decomposition that keeps the exact ILP search tractable at the
// paper's scale (a position's bins cluster around its primary, so groups
// stay small even for long chains).
func splitComponents(inst *Instance) [][]int {
	n := len(inst.Positions)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	binOwner := make(map[int]int) // first position seen using each bin
	for i, p := range inst.Positions {
		for _, u := range p.Bins {
			if o, ok := binOwner[u]; ok {
				union(i, o)
			} else {
				binOwner[u] = i
			}
		}
	}

	groups := make(map[int][]int)
	for i := range inst.Positions {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	var roots []int
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(groups))
	for _, r := range roots {
		sort.Ints(groups[r])
		out = append(out, groups[r])
	}
	return out
}

// solveSinglePosition solves a one-position component exactly in closed
// form: item rewards are positive and decreasing, and all items of the
// position have equal size, so the optimum simply packs as many items as
// capacity (and the K cap) allows, in any bin order. Returns the per-bin
// placement and its log-gain objective value.
func solveSinglePosition(inst *Instance, i int) ([]map[int]int, float64) {
	p := &inst.Positions[i]
	perBin := map[int]int{}
	placed := 0
	for b, u := range p.Bins {
		if placed >= p.K {
			break
		}
		take := p.Slots[b]
		if placed+take > p.K {
			take = p.K - placed
		}
		if take > 0 {
			perBin[u] += take
			placed += take
		}
	}
	obj := 0.0
	for k := 1; k <= placed; k++ {
		obj += p.Gains[k-1]
	}
	return []map[int]int{perBin}, obj
}

// subInstance builds the component instance for the given position indices.
// Residuals are shared by reference semantics via copy (each component's bins
// are disjoint from every other component's, so a plain snapshot copy is
// safe).
func subInstance(inst *Instance, positions []int) *Instance {
	sub := &Instance{
		Net:      inst.Net,
		Req:      inst.Req,
		Params:   inst.Params,
		Residual: inst.Residual,
		Budget:   inst.Budget,
	}
	// Components are solved to their capacity-bound maximum regardless of ρ
	// (trimming back to ρ happens globally afterwards), so the sub-request
	// carries an unreachable expectation.
	reqCopy := *inst.Req
	reqCopy.Expectation = 1.0
	sub.Req = &reqCopy

	binSeen := make(map[int]bool)
	initial := 1.0
	for _, i := range positions {
		p := inst.Positions[i]
		p.Index = len(sub.Positions)
		sub.Positions = append(sub.Positions, p)
		for _, u := range p.Bins {
			binSeen[u] = true
		}
		initial *= p.Func.Reliability
	}
	sub.InitialReliability = initial
	for _, u := range inst.BinSet {
		if binSeen[u] {
			sub.BinSet = append(sub.BinSet, u)
		}
	}
	return sub
}
