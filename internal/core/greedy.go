package core

import (
	"time"

	"repro/internal/reliability"
)

// SolveGreedy is a marginal-gain baseline (not from the paper; used for
// ablation): repeatedly place the secondary instance with the largest
// log-reliability gain per MHz of demand among all positions with a feasible
// bin, until the expectation is met or nothing fits. It is the natural
// "no matching, no LP" strawman Algorithm 2 should beat or match.
func SolveGreedy(inst *Instance) (*Result, error) {
	start := time.Now()
	res := &Result{Algorithm: "Greedy", PerBin: emptyPerBin(inst)}
	if inst.ExpectationMet() || inst.TotalItems() == 0 {
		res.finalize(inst)
		res.Runtime = time.Since(start)
		return res, nil
	}

	residual := append([]float64(nil), inst.Residual...)
	counts := make([]int, len(inst.Positions))
	rho := inst.Req.Expectation

	for {
		if reliability.MeetsExpectation(inst.achieved(counts), rho) {
			break
		}
		bestPos, bestBin := -1, -1
		bestScore := 0.0
		for i := range inst.Positions {
			p := &inst.Positions[i]
			if counts[i] >= p.K {
				continue
			}
			gain := p.Gains[counts[i]] // gain of the next backup
			score := gain / p.Func.Demand
			if score <= bestScore && bestPos >= 0 {
				continue
			}
			// Cheapest feasible bin: any with residual >= demand (all bins
			// cost the same for a given item; pick the emptiest to balance).
			bin := -1
			var binRes float64
			for _, u := range p.Bins {
				if residual[u] >= p.Func.Demand && residual[u] > binRes {
					bin = u
					binRes = residual[u]
				}
			}
			if bin < 0 {
				continue
			}
			bestPos, bestBin, bestScore = i, bin, score
		}
		if bestPos < 0 {
			break
		}
		residual[bestBin] -= inst.Positions[bestPos].Func.Demand
		res.PerBin[bestPos][bestBin]++
		counts[bestPos]++
	}

	res.trimToExpectation(inst)
	res.finalize(inst)
	res.Runtime = time.Since(start)
	return res, nil
}
