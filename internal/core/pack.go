package core

import "sort"

// packBudget bounds the packing oracle's search nodes per call.
const packBudget = 60000

// packIncumbentBudget is the cheaper budget used for opportunistic incumbent
// attempts at fractional nodes (a miss there costs nothing but a weaker warm
// start).
const packIncumbentBudget = 8000

// packCounts decides whether counts (n_i secondary instances of each chain
// position) can be packed integrally into the instance's bins without
// exceeding the residual snapshot, and returns one such packing.
//
// Returns:
//
//	perBin != nil              — packable; perBin is a witness.
//	perBin == nil, conclusive  — provably unpackable.
//	perBin == nil, !conclusive — search budget exhausted (caller must fall
//	                             back to an exact method).
//
// The search is depth-first over positions in decreasing demand order with
// two prunes: per-position slot counting (a position whose remaining items
// outnumber its bins' remaining slots fails immediately) and same-position
// symmetry breaking (items of one position are placed in non-decreasing bin
// order). A best-fit greedy pass runs first and usually succeeds without
// any search.
func packCounts(inst *Instance, counts []int, budget int) (perBin []map[int]int, conclusive bool) {
	// Fast path: greedy best-fit.
	if pb := greedyPack(inst, counts); pb != nil {
		return pb, true
	}

	order := make([]int, 0, len(inst.Positions))
	for i := range inst.Positions {
		if counts[i] > 0 {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		return inst.Positions[order[a]].Func.Demand > inst.Positions[order[b]].Func.Demand
	})

	residual := append([]float64(nil), inst.Residual...)
	assign := make([]map[int]int, len(inst.Positions))
	for i := range assign {
		assign[i] = make(map[int]int)
	}

	nodes := 0
	exhausted := false
	// failed caches residual states (at position boundaries) from which no
	// completion exists, collapsing the exponential re-exploration that
	// different same-total allocations of earlier positions would cause.
	failed := make(map[string]bool)
	stateKey := func(oi int) string {
		b := make([]byte, 0, 4+8*len(inst.BinSet))
		b = append(b, byte(oi), byte(oi>>8))
		for _, u := range inst.BinSet {
			q := int64(residual[u]*64 + 0.5) // 1/64-MHz resolution
			for s := 0; s < 48; s += 8 {
				b = append(b, byte(q>>s))
			}
		}
		return string(b)
	}
	var placePos func(oi int) bool
	placePos = func(oi int) bool {
		if oi == len(order) {
			return true
		}
		key := stateKey(oi)
		if failed[key] {
			return false
		}
		i := order[oi]
		p := &inst.Positions[i]
		need := counts[i]
		// Slot prune across all later positions.
		for _, j := range order[oi:] {
			pj := &inst.Positions[j]
			slots := 0
			for _, u := range pj.Bins {
				slots += int(residual[u] / pj.Func.Demand)
			}
			if slots < counts[j] {
				failed[key] = true
				return false
			}
		}
		var placeItem func(itemIdx, minBin int) bool
		placeItem = func(itemIdx, minBin int) bool {
			nodes++
			if nodes > budget {
				exhausted = true
				return false
			}
			if itemIdx == need {
				return placePos(oi + 1)
			}
			for b := minBin; b < len(p.Bins); b++ {
				u := p.Bins[b]
				if residual[u] < p.Func.Demand {
					continue
				}
				residual[u] -= p.Func.Demand
				assign[i][u]++
				if placeItem(itemIdx+1, b) {
					return true
				}
				if exhausted {
					// Unwind without exploring alternatives.
					residual[u] += p.Func.Demand
					decOrDelete(assign[i], u)
					return false
				}
				residual[u] += p.Func.Demand
				decOrDelete(assign[i], u)
			}
			return false
		}
		ok := placeItem(0, 0)
		if !ok && !exhausted {
			failed[key] = true
		}
		return ok
	}
	if placePos(0) {
		return assign, true
	}
	if exhausted {
		return nil, false
	}
	return nil, true
}

// greedyPack attempts a best-fit packing: positions by decreasing demand,
// each item into the allowed bin with the most residual capacity.
func greedyPack(inst *Instance, counts []int) []map[int]int {
	order := make([]int, 0, len(inst.Positions))
	for i := range inst.Positions {
		if counts[i] > 0 {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		return inst.Positions[order[a]].Func.Demand > inst.Positions[order[b]].Func.Demand
	})
	residual := append([]float64(nil), inst.Residual...)
	assign := make([]map[int]int, len(inst.Positions))
	for i := range assign {
		assign[i] = make(map[int]int)
	}
	for _, i := range order {
		p := &inst.Positions[i]
		for item := 0; item < counts[i]; item++ {
			best := -1
			var bestRes float64
			for _, u := range p.Bins {
				if residual[u] >= p.Func.Demand && residual[u] > bestRes {
					best, bestRes = u, residual[u]
				}
			}
			if best < 0 {
				return nil
			}
			residual[best] -= p.Func.Demand
			assign[i][best]++
		}
	}
	return assign
}

func decOrDelete(m map[int]int, u int) {
	if m[u] <= 1 {
		delete(m, u)
	} else {
		m[u]--
	}
}
