package core

import "sort"

// packBudget bounds the packing oracle's search nodes per call.
const packBudget = 60000

// packIncumbentBudget is the cheaper budget used for opportunistic incumbent
// attempts at fractional nodes (a miss there costs nothing but a weaker warm
// start).
const packIncumbentBudget = 8000

// packCounts decides whether counts (n_i secondary instances of each chain
// position) can be packed integrally into the instance's bins without
// exceeding the residual snapshot, and returns one such packing.
//
// Returns:
//
//	perBin != nil              — packable; perBin is a witness.
//	perBin == nil, conclusive  — provably unpackable.
//	perBin == nil, !conclusive — search budget exhausted (caller must fall
//	                             back to an exact method).
//
// The search is depth-first over positions in decreasing demand order with
// two prunes: per-position slot counting (a position whose remaining items
// outnumber its bins' remaining slots fails immediately) and same-position
// symmetry breaking (items of one position are placed in non-decreasing bin
// order). A best-fit greedy pass runs first and usually succeeds without
// any search.
//
// This is the hottest loop of the exact solver, so the inner state is flat:
// placement counts live in per-position slices indexed by bin slot
// (converted to the map witness only on success), the failure cache is an
// open-addressing table keyed by (position, quantized residual vector)
// without any per-probe allocation, and the quantized residuals are
// maintained incrementally as items are placed and removed.
func packCounts(inst *Instance, counts []int, budget int) (perBin []map[int]int, conclusive bool) {
	return packCountsIn(inst, counts, budget, newFailTable(1+len(inst.BinSet)))
}

// packCountsIn is packCounts with a caller-owned failure table, so a
// branch-and-bound issuing thousands of packing queries reuses one table's
// probe array and key arena instead of reallocating them per query (the
// table is generation-reset, not cleared). Membership semantics — and hence
// every search decision — are identical to a fresh table.
func packCountsIn(inst *Instance, counts []int, budget int, failed *failTable) (perBin []map[int]int, conclusive bool) {
	order := make([]int, 0, len(inst.Positions))
	for i := range inst.Positions {
		if counts[i] > 0 {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		return inst.Positions[order[a]].Func.Demand > inst.Positions[order[b]].Func.Demand
	})

	residual := append([]float64(nil), inst.Residual...)
	// bins[i] is position i's candidate bin list reordered tightest-first
	// (ascending initial residual, ties in original order): the DFS refutes
	// doomed assignments sooner and spends loose bins last, which is what
	// lets hard queries conclude within budget. cnt[i][b] counts items of
	// position i placed into bins[i][b].
	bins := make([][]int, len(inst.Positions))
	cnt := make([][]int, len(inst.Positions))
	for _, i := range order {
		pb := inst.Positions[i].Bins
		sorted := append([]int(nil), pb...)
		for a := 1; a < len(sorted); a++ { // stable insertion sort: small, allocation-free
			for b := a; b > 0 && residual[sorted[b]] < residual[sorted[b-1]]; b-- {
				sorted[b], sorted[b-1] = sorted[b-1], sorted[b]
			}
		}
		bins[i] = sorted
		cnt[i] = make([]int, len(pb))
	}

	// Fast path: greedy best-fit.
	if greedyPack(inst, counts, order, bins, residual, cnt) {
		return countsToPerBin(inst, bins, cnt), true
	}
	copy(residual, inst.Residual)
	for _, i := range order {
		clearInts(cnt[i])
	}

	nodes := 0
	exhausted := false
	// failed caches residual states (at position boundaries) from which no
	// completion exists, collapsing the exponential re-exploration that
	// different same-total allocations of earlier positions would cause.
	// A state is the position index plus every bin's residual quantized at
	// 1/64-MHz resolution; quant mirrors residual incrementally so probing
	// never rebuilds the vector.
	nBins := len(inst.BinSet)
	failed.reset(1 + nBins)
	quant := make([]int64, 1+nBins)
	binPos := make([]int, len(residual)) // bin node id -> index in quant
	rh := uint64(0)                      // rolling XOR of mixSlot over quant[1:]
	for k, u := range inst.BinSet {
		binPos[u] = 1 + k
		quant[1+k] = quantize(residual[u])
		rh ^= mixSlot(1+k, quant[1+k])
	}
	var placePos func(oi int) bool
	placePos = func(oi int) bool {
		if oi == len(order) {
			return true
		}
		quant[0] = int64(oi)
		h := rh ^ mixSlot(0, quant[0])
		if failed.has(h, quant) {
			return false
		}
		i := order[oi]
		p := &inst.Positions[i]
		need := counts[i]
		// Slot prune across all later positions. Only the slots < counts[j]
		// outcome matters, so counting stops the moment a position is covered,
		// and bins too tight to hold even one item skip the division.
		for _, j := range order[oi:] {
			pj := &inst.Positions[j]
			slots, need := 0, counts[j]
			for _, u := range pj.Bins {
				if residual[u] < pj.Func.Demand {
					continue
				}
				slots += int(residual[u] / pj.Func.Demand)
				if slots >= need {
					break
				}
			}
			if slots < need {
				failed.insert(h, quant)
				return false
			}
		}
		var placeItem func(itemIdx, minBin int) bool
		placeItem = func(itemIdx, minBin int) bool {
			nodes++
			if nodes > budget {
				exhausted = true
				return false
			}
			if itemIdx == need {
				return placePos(oi + 1)
			}
			pBins := bins[i]
			for b := minBin; b < len(pBins); b++ {
				u := pBins[b]
				if residual[u] < p.Func.Demand {
					continue
				}
				residual[u] -= p.Func.Demand
				q := binPos[u]
				rh ^= mixSlot(q, quant[q])
				quant[q] = quantize(residual[u])
				rh ^= mixSlot(q, quant[q])
				cnt[i][b]++
				if placeItem(itemIdx+1, b) {
					return true
				}
				residual[u] += p.Func.Demand
				rh ^= mixSlot(q, quant[q])
				quant[q] = quantize(residual[u])
				rh ^= mixSlot(q, quant[q])
				cnt[i][b]--
				if exhausted {
					// Unwind without exploring alternatives.
					return false
				}
			}
			return false
		}
		ok := placeItem(0, 0)
		if !ok && !exhausted {
			// placeItem restored residual (and quant) to the entry state on
			// every failing path, so the entry key is still current — but
			// quant[0] was clobbered by deeper placePos calls.
			quant[0] = int64(oi)
			failed.insert(h, quant)
		}
		return ok
	}
	if placePos(0) {
		return countsToPerBin(inst, bins, cnt), true
	}
	if exhausted {
		return nil, false
	}
	return nil, true
}

// quantize maps a residual capacity to the cache's 1/64-MHz grid.
func quantize(r float64) int64 { return int64(r*64 + 0.5) }

// countsToPerBin converts flat slot counters (indexed by the tightest-first
// bin order in bins) into the per-position bin→count map witness packCounts
// promises its callers.
func countsToPerBin(inst *Instance, bins [][]int, cnt [][]int) []map[int]int {
	perBin := make([]map[int]int, len(inst.Positions))
	for i := range perBin {
		perBin[i] = make(map[int]int)
		for b, c := range cnt[i] {
			if c > 0 {
				perBin[i][bins[i][b]] += c
			}
		}
	}
	return perBin
}

// greedyPack attempts a best-fit packing: positions by decreasing demand
// (the caller-provided order), each item into the allowed bin with the most
// residual capacity (ties broken by the tightest-first enumeration in bins).
// On success the placements are left in cnt and residual reflects them; on
// failure it reports false and the caller resets both.
func greedyPack(inst *Instance, counts []int, order []int, bins [][]int, residual []float64, cnt [][]int) bool {
	for _, i := range order {
		p := &inst.Positions[i]
		for item := 0; item < counts[i]; item++ {
			best := -1
			var bestRes float64
			for b, u := range bins[i] {
				if residual[u] >= p.Func.Demand && residual[u] > bestRes {
					best, bestRes = b, residual[u]
				}
			}
			if best < 0 {
				return false
			}
			residual[bins[i][best]] -= p.Func.Demand
			cnt[i][best]++
		}
	}
	return true
}

func clearInts(s []int) {
	for i := range s {
		s[i] = 0
	}
}

// mixSlot hashes one (slot, value) pair of a failure-cache key. Keys hash to
// the XOR of their slots' mixes, which placeItem maintains incrementally as
// residuals change instead of rehashing the whole vector at each position
// boundary. Collisions are harmless (the table compares full keys); the hash
// only spreads probes.
func mixSlot(k int, v int64) uint64 {
	x := uint64(k)*0x9E3779B97F4A7C15 + uint64(v)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// failChunkShift sizes the arena chunks: 1<<failChunkShift keys per chunk.
const failChunkShift = 11

// failProbe is one open-addressing slot: the cached key hash, the 1-based
// key index (0 = empty), and the generation that wrote it (a stale
// generation also reads as empty — see failTable.reset).
type failProbe struct {
	h   uint64
	idx int32
	gen int32
}

// failTable is an allocation-light set of fixed-length int64 keys: open
// addressing with linear probing, keys appended to fixed-size arena chunks
// so growth never copies existing keys. It replaces a map[string]bool whose
// per-insert string materialization and byte-wise rehashing dominated the
// pack oracle's profile.
type failTable struct {
	keyLen int
	chunks [][]int64
	probes []failProbe
	mask   uint64
	n      int
	gen    int32
}

func newFailTable(keyLen int) *failTable {
	const initSlots = 128
	return &failTable{
		keyLen: keyLen,
		probes: make([]failProbe, initSlots),
		mask:   initSlots - 1,
		gen:    1,
	}
}

// reset empties the table in O(#chunks) by bumping the generation: probes
// written by earlier generations read as empty slots, and the key arena is
// truncated in place. Slot claiming always takes the first stale-or-empty
// slot, so live entries keep unbroken probe chains.
func (t *failTable) reset(keyLen int) {
	if keyLen != t.keyLen {
		t.keyLen = keyLen
		t.chunks = nil
	}
	for i := range t.chunks {
		t.chunks[i] = t.chunks[i][:0]
	}
	t.n = 0
	t.gen++
}

func (t *failTable) keyAt(idx int32) []int64 {
	i := int(idx - 1)
	off := (i & (1<<failChunkShift - 1)) * t.keyLen
	return t.chunks[i>>failChunkShift][off : off+t.keyLen]
}

func (t *failTable) has(h uint64, key []int64) bool {
	for p := h & t.mask; ; p = (p + 1) & t.mask {
		pr := t.probes[p]
		if pr.idx == 0 || pr.gen != t.gen {
			return false
		}
		if pr.h != h {
			continue
		}
		stored := t.keyAt(pr.idx)
		match := true
		for k, q := range stored {
			if key[k] != q {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
}

func (t *failTable) insert(h uint64, key []int64) {
	if uint64(t.n+1)*4 > uint64(len(t.probes))*3 {
		t.grow()
	}
	c := t.n >> failChunkShift
	if c == len(t.chunks) {
		// Logical chunk capacity is fixed (keyAt indexes by shift). The
		// first chunk starts small and doubles via append so the frequent
		// sparse searches don't pay for a full chunk up front; a search
		// dense enough to need a second chunk allocates full chunks.
		capKeys := 1 << failChunkShift
		if c == 0 {
			capKeys = 64
		}
		t.chunks = append(t.chunks, make([]int64, 0, t.keyLen*capKeys))
	}
	t.chunks[c] = append(t.chunks[c], key...)
	t.n++
	idx := int32(t.n)
	for p := h & t.mask; ; p = (p + 1) & t.mask {
		if pr := t.probes[p]; pr.idx == 0 || pr.gen != t.gen {
			t.probes[p] = failProbe{h: h, idx: idx, gen: t.gen}
			return
		}
	}
}

func (t *failTable) grow() {
	old := t.probes
	size := len(old) * 2
	t.probes = make([]failProbe, size)
	t.mask = uint64(size - 1)
	for _, pr := range old {
		if pr.idx == 0 || pr.gen != t.gen {
			continue
		}
		for q := pr.h & t.mask; ; q = (q + 1) & t.mask {
			if t.probes[q].idx == 0 {
				t.probes[q] = pr
				break
			}
		}
	}
}
