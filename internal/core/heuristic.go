package core

import (
	"time"

	"repro/internal/matching"
	"repro/internal/reliability"
)

// HeuristicOptions tunes Algorithm 2.
type HeuristicOptions struct {
	// MaxRounds caps the number of matching rounds as a safety net
	// (<=0: no cap beyond the natural termination conditions).
	MaxRounds int
	// LiteralItems builds each round's bipartite graph over every remaining
	// item, exactly as Algorithm 2 states. The default instead includes only
	// the next |bins| items per position — lossless, because a round matches
	// each bin at most once, so at most |bins| items of one position can be
	// chosen, and the matching always prefers the cheaper lower-k items
	// (Lemma 6.1) — but literal mode exists to *test* that claim
	// (TestHeuristicWindowLossless) and for readers following the paper
	// line by line.
	LiteralItems bool
}

// SolveHeuristic implements Algorithm 2: repeatedly build the bipartite
// graph G_l between cloudlets with residual capacity and the remaining
// candidate secondary items, find a minimum-cost maximum matching with the
// Hungarian algorithm, commit it, and continue until the reliability
// expectation is reached or no feasible edge remains. Each round a cloudlet
// hosts at most one new instance (the matching's degree constraint), which
// is exactly what drives the paper's iteration count analysis.
//
// Termination note (deviation documented in DESIGN.md): the paper's loop
// guard compares the accumulated item cost Σc against the budget C = -log ρ.
// Taken literally that guard stops after the first item for any realistic ρ
// (a single item's cost already exceeds -log 0.99); the evident intent —
// "augment until the expectation is reached" — is implemented instead by
// stopping once the achieved chain reliability reaches ρ, then trimming
// overshoot from the final round.
func SolveHeuristic(inst *Instance, opt HeuristicOptions) (*Result, error) {
	start := time.Now()
	res := &Result{Algorithm: "Heuristic", PerBin: emptyPerBin(inst)}
	if inst.ExpectationMet() || inst.TotalItems() == 0 {
		res.finalize(inst)
		res.Runtime = time.Since(start)
		return res, nil
	}

	residual := append([]float64(nil), inst.Residual...)
	placed := make([]int, len(inst.Positions)) // next item index per position
	rho := inst.Req.Expectation

	achieved := inst.InitialReliability
	round := 0
	for {
		round++
		if opt.MaxRounds > 0 && round > opt.MaxRounds {
			break
		}
		if reliability.MeetsExpectation(achieved, rho) {
			break
		}

		// Build G_l: left = bins (cloudlets with any residual), right =
		// candidate items. Per position only the next |bins| items can
		// possibly match this round (each bin takes at most one), so later
		// items are left out of the graph without changing the matching.
		type item struct {
			pos int
			k   int // 1-based item index
		}
		var items []item
		var edges []matching.Edge
		binIndex := make(map[int]int)
		var bins []int
		for _, u := range inst.BinSet {
			if residual[u] > 0 {
				binIndex[u] = len(bins)
				bins = append(bins, u)
			}
		}
		for i := range inst.Positions {
			p := &inst.Positions[i]
			window := len(p.Bins)
			if opt.LiteralItems {
				window = p.K
			}
			for k := placed[i] + 1; k <= p.K && k <= placed[i]+window; k++ {
				itemID := len(items)
				items = append(items, item{pos: i, k: k})
				for _, u := range p.Bins {
					bi, ok := binIndex[u]
					if !ok || residual[u] < p.Func.Demand {
						continue
					}
					edges = append(edges, matching.Edge{
						L:    bi,
						R:    itemID,
						Cost: p.Costs[k-1],
					})
				}
			}
		}
		if len(edges) == 0 {
			break
		}

		m := matching.MinCostMax(len(bins), len(items), edges)
		if m.Cardinality == 0 {
			break
		}
		for bi, it := range m.MatchL {
			if it < 0 {
				continue
			}
			u := bins[bi]
			p := &inst.Positions[items[it].pos]
			residual[u] -= p.Func.Demand
			res.PerBin[items[it].pos][u]++
			placed[items[it].pos]++
		}
		achieved = inst.achieved(placed)
	}

	res.Rounds = round
	res.trimToExpectation(inst)
	res.finalize(inst)
	res.Runtime = time.Since(start)
	return res, nil
}
