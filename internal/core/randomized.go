package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/lp"
	"repro/internal/obs"
)

// RandomizedOptions tunes Algorithm 1.
type RandomizedOptions struct {
	// Objective selects the LP formulation to relax (default ObjectiveLogGain).
	Objective Objective
	// Repair removes items from violated cloudlets (largest item index — the
	// smallest reliability increments — first) until the solution is
	// feasible. The paper's Algorithm 1 does not repair; experiments keep
	// this off and report violations instead.
	Repair bool
	// Rounds retries the rounding step and keeps the best feasible-or-not
	// outcome by achieved reliability; <=0 means 1 (the paper's single-shot
	// rounding).
	Rounds int
}

// SolveRandomized implements Algorithm 1: relax the ILP to an LP, solve it
// with the simplex method, and round the fractional solution randomly — for
// each item (i,k), at most one cloudlet is chosen, with probabilities given
// by the fractional assignment (Constraint (8) is respected by construction;
// capacities may be violated, which the Result reports).
//
// The aggregated LP yields per-bin fractional counts ỹ(i,u) and per-item
// fractional usage z̃(i,k); the paper's per-item-per-bin probabilities are
// recovered as x̃(i,k,u) = z̃(i,k)·ỹ(i,u)/Σ_u ỹ(i,u), which preserves both
// the item marginals (Σ_u x̃ = z̃ ≤ 1) and the bin load marginals
// (Σ_k x̃ = ỹ).
func SolveRandomized(inst *Instance, rng *rand.Rand, opt RandomizedOptions) (*Result, error) {
	start := time.Now()
	res := &Result{Algorithm: "Randomized", PerBin: emptyPerBin(inst)}
	if inst.ExpectationMet() || inst.TotalItems() == 0 {
		res.finalize(inst)
		res.Runtime = time.Since(start)
		return res, nil
	}
	if opt.Rounds <= 0 {
		opt.Rounds = 1
	}

	bm := buildModel(inst, opt.Objective)
	sol := bm.m.Solve()
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("core: LP relaxation returned %v on an always-feasible instance", sol.Status)
	}
	obs.Default().Counter("lp_eta_refreshes").Add(int64(sol.EtaRefreshes))

	var best *Result
	for round := 0; round < opt.Rounds; round++ {
		cand := &Result{Algorithm: "Randomized", PerBin: roundOnce(inst, bm, sol.X, rng)}
		if opt.Repair {
			repairViolations(inst, cand.PerBin)
		}
		cand.trimToExpectation(inst)
		cand.finalize(inst)
		if best == nil || cand.Reliability > best.Reliability {
			best = cand
		}
	}
	best.Objective = sol.Objective
	best.LPIterations = sol.Iterations
	best.Runtime = time.Since(start)
	return best, nil
}

// roundOnce performs one randomized-rounding pass (Algorithm 1 line 5).
func roundOnce(inst *Instance, bm *builtModel, x []float64, rng *rand.Rand) []map[int]int {
	perBin := emptyPerBin(inst)
	for i, p := range inst.Positions {
		if p.K == 0 || len(p.Bins) == 0 {
			continue
		}
		// Fractional totals.
		total := 0.0
		yFrac := make([]float64, len(p.Bins))
		for b := range p.Bins {
			yFrac[b] = clampNonNeg(x[bm.y[i][b]])
			total += yFrac[b]
		}
		if total <= 1e-12 {
			continue
		}
		for k := 1; k <= p.K; k++ {
			// Canonical prefix z̃: position k covers [k-1, k] of the total.
			zk := total - float64(k-1)
			if zk <= 0 {
				break
			}
			if zk > 1 {
				zk = 1
			}
			// Choose a bin with probability x̃(i,k,u) = zk·ỹ(u)/total, or
			// no placement with probability 1 - zk.
			roll := rng.Float64()
			if roll >= zk {
				continue
			}
			pick := roll / zk * total // uniform over the ỹ mass
			acc := 0.0
			for b, u := range p.Bins {
				acc += yFrac[b]
				if pick < acc {
					perBin[i][u]++
					break
				}
			}
		}
	}
	return perBin
}

// repairViolations drops instances from overloaded cloudlets until feasible,
// removing the smallest-increment backups (largest counts) first.
func repairViolations(inst *Instance, perBin []map[int]int) {
	load := inst.load(perBin)
	for _, u := range inst.BinSet {
		for load[u] > inst.Residual[u]*(1+1e-9) {
			// Among positions using u, drop from the one with the most
			// backups overall (its marginal instance has the least gain).
			best, bestCount := -1, -1
			counts := make([]int, len(perBin))
			for i, m := range perBin {
				for _, c := range m {
					counts[i] += c
				}
			}
			for i, m := range perBin {
				if m[u] > 0 && counts[i] > bestCount { // first index wins ties: deterministic
					best, bestCount = i, counts[i]
				}
			}
			if best < 0 {
				break // nothing left to drop (shouldn't happen)
			}
			if perBin[best][u] == 1 {
				delete(perBin[best], u)
			} else {
				perBin[best][u]--
			}
			load[u] -= inst.Positions[best].Func.Demand
		}
	}
}

func clampNonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}
