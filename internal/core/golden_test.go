package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"os"
	"sort"
	"testing"

	"repro/internal/workload"
)

// The solver-output golden pins every registered algorithm's result on a
// fixed instance set, bit for bit: reliability and objective as raw float64
// bits, the placement as an order-independent fingerprint, and the search
// shape (nodes, LP pivots). The perf work on the pack oracle, the count
// branch-and-bound, and the simplex must not move any of these. Regenerate
// (only on an intentional semantic change) with:
//
//	go test ./internal/core -run TestSolverGolden -update-core-golden
var updateCoreGolden = flag.Bool("update-core-golden", false, "rewrite testdata/solver_golden.json from the current solvers")

type solverGoldenRecord struct {
	Instance     string  `json:"instance"`
	Solver       string  `json:"solver"`
	RelBits      uint64  `json:"rel_bits"`
	ObjBits      uint64  `json:"obj_bits"`
	PerBinHash   uint64  `json:"per_bin_hash"`
	Nodes        int     `json:"nodes"`
	LPIterations int     `json:"lp_iterations"`
	Proven       bool    `json:"proven"`
	Reliability  float64 `json:"reliability"` // readable mirror
}

// perBinFingerprint hashes a placement independent of map iteration order.
func perBinFingerprint(perBin []map[int]int) uint64 {
	h := fnv.New64a()
	for i, m := range perBin {
		keys := make([]int, 0, len(m))
		for u := range m {
			keys = append(keys, u)
		}
		sort.Ints(keys)
		fmt.Fprintf(h, "|%d:", i)
		for _, u := range keys {
			fmt.Fprintf(h, "%d=%d,", u, m[u])
		}
	}
	return h.Sum64()
}

// goldenInstances samples exactly like the benchmark pool (same seeds, same
// lengths), so the pinned outputs cover the hard pack-oracle search paths the
// figure benchmarks exercise, not just easy instances.
func goldenInstances() (names []string, insts []*Instance) {
	for _, length := range []int{2, 8, 14} {
		for i := 0; i < 16; i++ {
			cfg := workload.NewDefaultConfig()
			rng := rand.New(rand.NewSource(1000 + int64(length) + int64(i)))
			net := cfg.Network(rng)
			// The benchmark pool draws a variable-length request before the
			// fixed-length one; the extra draw advances the rng, so it is
			// load-bearing for reproducing the exact same instances.
			_ = cfg.Request(rng, i, net.Catalog().Size())
			req := cfg.RequestWithLength(rng, i, length, net.Catalog().Size())
			workload.PlacePrimariesRandom(net, req, rng)
			names = append(names, fmt.Sprintf("len%d-seed%d", length, i))
			insts = append(insts, NewInstance(net, req, Params{L: cfg.HopBound}))
		}
	}
	return names, insts
}

const solverGoldenPath = "testdata/solver_golden.json"

func TestSolverGolden(t *testing.T) {
	names, insts := goldenInstances()
	var got []solverGoldenRecord
	for k, inst := range insts {
		for _, name := range []string{"ILP", "Randomized", "Heuristic", "Greedy"} {
			sv, ok := Get(name)
			if !ok {
				t.Fatalf("solver %q not registered", name)
			}
			rng := rand.New(rand.NewSource(9000 + int64(k)))
			res, err := sv.Solve(inst, rng)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, names[k], err)
			}
			got = append(got, solverGoldenRecord{
				Instance:     names[k],
				Solver:       name,
				RelBits:      math.Float64bits(res.Reliability),
				ObjBits:      math.Float64bits(res.Objective),
				PerBinHash:   perBinFingerprint(res.PerBin),
				Nodes:        res.Nodes,
				LPIterations: res.LPIterations,
				Proven:       res.Proven,
				Reliability:  res.Reliability,
			})
		}
	}

	if *updateCoreGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(solverGoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d records to %s", len(got), solverGoldenPath)
		return
	}

	data, err := os.ReadFile(solverGoldenPath)
	if err != nil {
		t.Fatalf("golden missing (run with -update-core-golden to create): %v", err)
	}
	var want []solverGoldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden has %d records, run produced %d", len(want), len(got))
	}
	for i, w := range want {
		g := got[i]
		if g != w {
			t.Errorf("%s/%s drifted:\n got %+v\nwant %+v", g.Instance, g.Solver, g, w)
		}
	}
}
