package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ilp"
	"repro/internal/lp"
	"repro/internal/workload"
)

// TestCountBBMatchesGenericILP cross-checks the specialized count-space
// branch-and-bound against the generic 0/1 solver on the same aggregated
// model: both must find the same optimal objective on instances small enough
// for the generic search to finish (the generic solver drowns in bin
// symmetry on larger ones — the reason countBB exists).
func TestCountBBMatchesGenericILP(t *testing.T) {
	cfg := workload.NewDefaultConfig()
	cfg.ResidualFraction = 1.0 / 8 // keep item counts small
	checked := 0
	for seed := int64(0); seed < 40 && checked < 12; seed++ {
		rng := rand.New(rand.NewSource(500 + seed))
		net := cfg.Network(rng)
		req := cfg.RequestWithLength(rng, 0, 3, net.Catalog().Size())
		workload.PlacePrimariesRandom(net, req, rng)
		inst := NewInstance(net, req, Params{L: 1})
		if inst.TotalItems() == 0 || inst.TotalItems() > 14 {
			continue
		}
		checked++

		perBin, objective, nodes, proven := solveCountBB(inst, ObjectiveLogGain, 0, 0)
		if perBin == nil || !proven {
			t.Fatalf("seed %d: countBB failed or unproven on a tiny instance", seed)
		}
		if nodes <= 0 {
			t.Fatalf("seed %d: countBB reported %d explored nodes", seed, nodes)
		}

		bm := buildModel(inst, ObjectiveLogGain)
		r, err := ilp.Solve(bm.m, bm.intVars, ilp.Options{MaxNodes: 100000})
		if err != nil {
			t.Fatalf("seed %d: generic ILP: %v", seed, err)
		}
		if r.Status != lp.Optimal || !r.Proven {
			t.Fatalf("seed %d: generic ILP status %v proven %v", seed, r.Status, r.Proven)
		}
		if math.Abs(objective-r.Objective) > 1e-6 {
			t.Fatalf("seed %d: countBB %v vs generic %v", seed, objective, r.Objective)
		}
	}
	if checked < 5 {
		t.Fatalf("only %d instances were small enough; loosen the sampler", checked)
	}
}
