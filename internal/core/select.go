package core

import (
	"sort"

	"repro/internal/mec"
)

// selectMaxCands bounds the exact branch-and-bound over admission
// candidates; above it only the greedy pass runs (the window sizes the
// serving layer uses stay well below this).
const selectMaxCands = 24

// selectMaxPackCalls bounds the number of packing-oracle queries one
// SelectAdmission call may issue, keeping scarcity-mode admission latency
// predictable. Exhaustion degrades to the greedy incumbent, never to an
// error.
const selectMaxPackCalls = 512

// AdmissionCandidate describes one queued request competing for admission
// under scarcity: its objective value (tenant weight × estimated
// reliability log-gain) and the capacity demands of its primary VNF
// instances.
type AdmissionCandidate struct {
	// Value is the knapsack objective contribution of admitting this
	// candidate. Non-positive values are never selected.
	Value float64
	// Demands lists the capacity demand of each VNF instance the candidate
	// would place (one entry per chain position).
	Demands []float64
}

// SelectAdmission solves the scarcity-mode admission knapsack: pick the
// subset of candidates maximizing total Value such that all selected
// candidates' demands pack integrally into the residual capacities of the
// given bins. It reuses the BMCGAP packing oracle (packCounts and its
// shared failure table) as the feasibility test, so no new solver is
// involved.
//
// residual is indexed by node id and bins lists the usable bin node ids
// (the cloudlet set). packBudget bounds the oracle's search nodes per
// feasibility query (<=0 selects the incumbent budget); a query that
// exhausts its budget is treated as infeasible, which keeps the result
// deterministic and conservative.
//
// The search is a greedy descent in value order followed by a bounded exact
// branch-and-bound (value-ordered include/exclude with an optimistic
// remaining-value bound) when the candidate count is small. Returns the
// selected candidate indices in ascending order. The result is a pure
// function of the arguments.
func SelectAdmission(residual []float64, bins []int, cands []AdmissionCandidate, packBudget int) []int {
	if len(cands) == 0 || len(bins) == 0 {
		return nil
	}
	if packBudget <= 0 {
		packBudget = packIncumbentBudget
	}
	order := make([]int, 0, len(cands))
	for i, c := range cands {
		if c.Value > 0 {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		va, vb := cands[order[a]].Value, cands[order[b]].Value
		if va != vb {
			return va > vb
		}
		return order[a] < order[b]
	})
	if len(order) == 0 {
		return nil
	}

	ft := newFailTable(1 + len(bins))
	calls := 0
	// feasible reports whether the demands of sel plus (optionally) extra
	// pack into the residual bins. Budget exhaustion — of the per-query
	// node budget or the per-call query budget — counts as infeasible.
	feasible := func(sel []int, extra int) bool {
		if calls >= selectMaxPackCalls {
			return false
		}
		calls++
		var all []float64
		for _, i := range sel {
			all = append(all, cands[i].Demands...)
		}
		if extra >= 0 {
			all = append(all, cands[extra].Demands...)
		}
		if len(all) == 0 {
			return true
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(all)))
		inst := &Instance{Residual: residual, BinSet: bins}
		var counts []int
		for _, d := range all {
			if n := len(inst.Positions); n > 0 && inst.Positions[n-1].Func.Demand == d {
				counts[n-1]++
				continue
			}
			inst.Positions = append(inst.Positions, Position{
				Index: len(inst.Positions),
				Func:  mec.FunctionType{Demand: d},
				Bins:  bins,
			})
			counts = append(counts, 1)
		}
		perBin, _ := packCountsIn(inst, counts, packBudget, ft)
		return perBin != nil
	}

	// Greedy incumbent: admit in value order whenever still packable.
	var best []int
	bestVal := 0.0
	for _, i := range order {
		if feasible(best, i) {
			best = append(best, i)
			bestVal += cands[i].Value
		}
	}

	if len(order) <= selectMaxCands {
		remTotal := 0.0
		for _, i := range order {
			remTotal += cands[i].Value
		}
		const eps = 1e-9
		cur := make([]int, 0, len(order))
		var dfs func(k int, curVal, remVal float64)
		dfs = func(k int, curVal, remVal float64) {
			if curVal > bestVal+eps {
				bestVal = curVal
				best = append(best[:0:0], cur...)
			}
			if k == len(order) || curVal+remVal <= bestVal+eps {
				return
			}
			i := order[k]
			v := cands[i].Value
			if feasible(cur, i) {
				cur = append(cur, i)
				dfs(k+1, curVal+v, remVal-v)
				cur = cur[:len(cur)-1]
			}
			dfs(k+1, curVal, remVal-v)
		}
		dfs(0, 0, remTotal)
	}

	sort.Ints(best)
	return best
}
