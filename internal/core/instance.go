// Package core implements the paper's contribution: the service reliability
// augmentation problem for an admitted request (Section 3.2) and its three
// solvers — the exact ILP (Section 4), the randomized LP-rounding algorithm
// (Section 5, Algorithm 1), and the matching-based heuristic (Section 6,
// Algorithm 2) — plus a greedy baseline and a small-case exact reference used
// by the tests.
//
// An Instance snapshots everything the solvers need: for each chain position
// the primary's cloudlet, the allowed bins N_l^+(primary) restricted to
// cloudlets, per-bin slot counts, and the item cost/gain schedules. Solvers
// never mutate the network; committing a solution to the residual ledger is
// the caller's choice (see Result.Commit).
package core

import (
	"fmt"
	"math"

	"repro/internal/mec"
	"repro/internal/reliability"
)

// gainFloor is the smallest log-gain an item may contribute before the item
// schedule is truncated: beyond it, additional backups cannot change any
// reported reliability within float64 resolution, so carrying the items only
// inflates solver work. Fidelity note: the paper's K_i is purely
// capacity-bounded; truncation at gainFloor never changes an achieved
// reliability, only skips provably pointless placements. Set Uncapped in
// Params to recover the paper's literal K_i.
const gainFloor = 1e-12

// hardKCap bounds the item schedule per function even when Uncapped
// reasoning would allow more (64 backups of one function is already far past
// float64 saturation for any r >= 1e-3).
const hardKCap = 64

// Params configures instance construction.
type Params struct {
	// L is the hop bound l: secondaries must sit within L hops of their
	// primary's cloudlet (1 <= L <= |V|-1).
	L int
	// Uncapped keeps the paper's literal capacity-bounded K_i instead of
	// truncating items whose gain is below float64 resolution.
	Uncapped bool
}

// Position is one chain position of the instance: function f_i, its primary
// cloudlet, and the placement structure around it.
type Position struct {
	Index    int              // chain position i (0-based)
	Func     mec.FunctionType // the function type f_i
	Primary  int              // cloudlet v hosting the primary instance
	Bins     []int            // allowed cloudlets: N_l^+(v) ∩ cloudlets with >= one slot
	Slots    []int            // Slots[b]: how many instances of f_i fit in Bins[b]
	K        int              // number of candidate secondary items (k = 1..K)
	Gains    []float64        // Gains[k-1] = w(r_i, k), strictly decreasing
	Costs    []float64        // Costs[k-1] = c(f_i, k) (paper Eq. 3), increasing
	PrimCost float64          // c(f_i, 0) = -log r_i (paper Eq. 4)
}

// Instance is a fully materialized augmentation problem for one request.
type Instance struct {
	Net       *mec.Network
	Req       *mec.Request
	Params    Params
	Positions []Position
	// Residual[u] is the residual capacity snapshot the instance was built
	// against (solvers budget against this, not the live ledger).
	Residual []float64
	// BinSet is the union of all positions' bins, ascending.
	BinSet []int
	// InitialReliability is Π r_i with primaries only.
	InitialReliability float64
	// Budget is C = -log ρ_j (0 when ρ = 1).
	Budget float64
}

// NewInstance builds the augmentation instance for an admitted request whose
// primaries are already placed. It panics if the request has no primaries or
// the hop bound is out of range.
func NewInstance(net *mec.Network, req *mec.Request, p Params) *Instance {
	if len(req.Primaries) != req.Len() {
		panic(fmt.Sprintf("core: request %d has %d primaries for SFC length %d", req.ID, len(req.Primaries), req.Len()))
	}
	if p.L < 1 || p.L > net.G.N()-1 {
		panic(fmt.Sprintf("core: hop bound %d out of [1,%d]", p.L, net.G.N()-1))
	}
	inst := &Instance{
		Net:      net,
		Req:      req,
		Params:   p,
		Residual: net.ResidualSnapshot(),
		Budget:   reliability.Budget(req.Expectation),
	}
	binSeen := make(map[int]bool)
	initial := 1.0
	for i, ftID := range req.SFC {
		ft := net.Catalog().Type(ftID)
		initial *= ft.Reliability
		v := req.Primaries[i]
		pos := Position{
			Index:    i,
			Func:     ft,
			Primary:  v,
			PrimCost: -math.Log(ft.Reliability),
		}
		// Memoized on the network: repeated NewInstance calls on one network
		// (every trial, every solver) reuse the same bounded-BFS result.
		for _, u := range net.NeighborsWithinPlus(v, p.L) {
			if net.Capacity[u] <= 0 {
				continue
			}
			slots := int(math.Floor(inst.Residual[u] / ft.Demand))
			if slots <= 0 {
				continue
			}
			pos.Bins = append(pos.Bins, u)
			pos.Slots = append(pos.Slots, slots)
			binSeen[u] = true
		}
		totalSlots := 0
		for _, s := range pos.Slots {
			totalSlots += s
		}
		pos.K = totalSlots
		if cap := kCap(ft.Reliability, p.Uncapped); pos.K > cap {
			pos.K = cap
		}
		pos.Gains = make([]float64, pos.K)
		pos.Costs = make([]float64, pos.K)
		for k := 1; k <= pos.K; k++ {
			pos.Gains[k-1] = reliability.LogGain(ft.Reliability, k)
			pos.Costs[k-1] = reliability.ItemCost(ft.Reliability, k)
		}
		inst.Positions = append(inst.Positions, pos)
	}
	inst.InitialReliability = initial
	for u := 0; u < net.G.N(); u++ {
		if binSeen[u] {
			inst.BinSet = append(inst.BinSet, u)
		}
	}
	return inst
}

// kCap returns the item-schedule truncation point for a function with
// instance reliability r (see gainFloor).
func kCap(r float64, uncapped bool) int {
	if r >= 1 {
		return 0 // a perfectly reliable function gains nothing from backups
	}
	if uncapped {
		return math.MaxInt32
	}
	k := reliability.BackupsToReach(r, 1-gainFloor)
	if k < 0 || k > hardKCap {
		return hardKCap
	}
	return k
}

// TotalItems returns N = Σ_i K_i, the item count of the BMCGAP reduction.
func (inst *Instance) TotalItems() int {
	n := 0
	for _, p := range inst.Positions {
		n += p.K
	}
	return n
}

// ExpectationMet reports whether the primaries alone already reach ρ
// (Algorithm 1/2 line 2: exit immediately in that case).
func (inst *Instance) ExpectationMet() bool {
	return reliability.MeetsExpectation(inst.InitialReliability, inst.Req.Expectation)
}

// achieved computes the chain reliability for per-position backup counts.
func (inst *Instance) achieved(counts []int) float64 {
	u := 1.0
	for i, p := range inst.Positions {
		u *= reliability.Accumulated(p.Func.Reliability, counts[i])
	}
	return u
}

// load sums the per-cloudlet MHz consumed by a per-position, per-bin
// placement (used for capacity-usage stats and violation checks).
func (inst *Instance) load(perBin []map[int]int) map[int]float64 {
	load := make(map[int]float64)
	for i, m := range perBin {
		demand := inst.Positions[i].Func.Demand
		for u, cnt := range m {
			load[u] += demand * float64(cnt)
		}
	}
	return load
}
