package core

import (
	"math"
	"time"
)

// countBB is a branch-and-bound specialized to the augmentation ILP's
// structure. The generic 0/1 branch-and-bound in internal/ilp stalls on this
// problem: the objective depends only on the per-function backup *counts*
// n_i = Σ_u y_{i,u}, so LP bounds are flat across branches that merely move
// instances between bins, and best-bound search degenerates into enumerating
// an exponentially large optimal face.
//
// countBB instead branches on the aggregate counts, where bounds genuinely
// move (forcing a count down surrenders that item's gain; forcing it up
// consumes capacity other functions needed):
//
//   - Each node is a box [lo_i, hi_i] over counts, bounded by an LP with the
//     box rows added.
//   - When the LP's counts are fractional, branch floor/ceil on the most
//     fractional count.
//   - When they are integral (value ñ), the node's LP bound equals the true
//     objective of ñ; an exact bin-packing oracle decides whether ñ is
//     integrally packable. Packable: the node is solved exactly (ñ is its
//     best integral point). Unpackable: integral points ≥ ñ are not even
//     fractionally packable (all item rewards are positive, so the LP would
//     have preferred them), hence the children {hi_i = ñ_i − 1} cover every
//     remaining candidate.
//   - If the packing oracle exceeds its search budget (rare, needs
//     adversarial demand patterns), the vector is excluded as if unpackable —
//     still sound for every other candidate — and the result is reported as
//     not proven optimal.
//
// Node relaxations are solved combinatorially by flowRelax (a polymatroid
// greedy over a tiny bipartite flow network) rather than by the simplex,
// which makes a node cost microseconds; TestFlowRelaxMatchesSimplexLP pins
// the equivalence of the two relaxations.
type countBB struct {
	inst      *Instance
	obj       Objective
	fr        *flowRelax // node-relaxation solver (see flowrelax.go)
	tol       float64    // absolute bound tolerance in objective (log) space
	nodes     int
	max       int
	deadline  time.Time // zero means no wall-clock budget
	timedOut  bool
	nFallback int
	nPackFail int

	// packMemo caches every packing-oracle outcome by count vector (the
	// cover-children recursion and the fractional-node incumbent probes
	// revisit count vectors; witnesses and exhaustive refutations are
	// budget-independent, so both replay for free).
	packMemo map[string]packOutcome
	// packFail is the packing oracle's failure table, reused (via
	// generation reset) across every packCounts query this search issues.
	packFail *failTable

	incumbent    []map[int]int
	incumbentVal float64
	haveInc      bool
	proven       bool
}

// countTol is the base bound-pruning tolerance: 1e-9 in log-reliability
// space is a relative reliability error below 1e-9, far under the figures'
// precision.
const countTol = 1e-9

// tolSchedule relaxes the pruning tolerance as the tree grows, bounding the
// worst-case cost of pathological components: a prune at tolerance τ means
// the returned reliability is within a factor e^τ of the optimum (τ = 1e-3
// is a 0.1% relative error, far below the evaluation's resolution). Result
// proven-ness is downgraded the moment a relaxed prune actually fires.
var tolSchedule = []struct {
	nodes int
	tol   float64
}{
	{0, countTol},
	{2000, 1e-6},
	{8000, 1e-4},
	{20000, 1e-3},
}

func (bb *countBB) tolNow() float64 {
	tol := countTol
	for _, s := range tolSchedule {
		if bb.nodes >= s.nodes {
			tol = s.tol
		}
	}
	return tol
}

type countBox struct {
	lo, hi []int
	bound  float64
}

// solveCountBB runs the search and returns the best packing found, its
// objective value, the number of explored nodes, and whether optimality was
// proven. A wall-clock budget (timeout == 0 selects the 10s default;
// negative disables it, leaving the deterministic node budget as the only
// bound) caps pathological components; on expiry the best incumbent is
// returned with proven=false.
func solveCountBB(inst *Instance, obj Objective, maxNodes int, timeout time.Duration) (perBin []map[int]int, objective float64, nodes int, proven bool) {
	if maxNodes <= 0 {
		maxNodes = 100000
	}
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	var deadline time.Time // zero (timeout < 0): node budget only, deterministic
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	bb := &countBB{
		inst:     inst,
		obj:      obj,
		fr:       newFlowRelax(inst, obj),
		tol:      countTol,
		max:      maxNodes,
		deadline: deadline,
		packMemo: make(map[string]packOutcome),
		packFail: newFailTable(1 + len(inst.BinSet)),
	}
	L := len(inst.Positions)
	root := countBox{lo: make([]int, L), hi: make([]int, L)}
	for i, p := range inst.Positions {
		root.hi[i] = p.K
	}
	root.bound = math.Inf(1)
	bb.proven = true
	bb.seedIncumbent()
	bb.explore(root)
	return bb.incumbent, bb.incumbentVal, bb.nodes, bb.proven
}

// seedIncumbent warm-starts the search with the heuristic solution, whose
// value is a valid lower bound (it is always feasible).
func (bb *countBB) seedIncumbent() {
	res, err := SolveHeuristic(bb.inst, HeuristicOptions{})
	if err != nil {
		return
	}
	counts := make([]int, len(bb.inst.Positions))
	for i, m := range res.PerBin {
		for _, c := range m {
			counts[i] += c
		}
	}
	bb.consider(res.PerBin, bb.valueOf(counts))
}

func (bb *countBB) consider(perBin []map[int]int, val float64) {
	if !bb.haveInc || val > bb.incumbentVal {
		cp := make([]map[int]int, len(perBin))
		for i, m := range perBin {
			cp[i] = make(map[int]int, len(m))
			for k, v := range m {
				cp[i][k] = v
			}
		}
		bb.incumbent = cp
		bb.incumbentVal = val
		bb.haveInc = true
	}
}

// valueOf evaluates the node objective of a count vector.
func (bb *countBB) valueOf(counts []int) float64 {
	v := 0.0
	for i, p := range bb.inst.Positions {
		n := counts[i]
		for k := 1; k <= n && k <= p.K; k++ {
			if bb.obj == ObjectivePaperCost {
				v += bb.paperReward(i, k)
			} else {
				v += p.Gains[k-1]
			}
		}
	}
	return v
}

// packOutcome is one cached packing-oracle answer. Witnesses and exhaustive
// refutations (conclusive == true) hold at any budget; a budget exhaustion is
// only reusable for queries allowed at most the budget that already failed.
type packOutcome struct {
	perBin     []map[int]int // shared witness; consider() copies before storing
	conclusive bool
	budget     int
}

// packMemoized wraps packCounts with a cache of every prior outcome for the
// search (the cover-children recursion and the per-fractional-node incumbent
// probes revisit count vectors).
func (bb *countBB) packMemoized(n []int, budget int) (perBin []map[int]int, conclusive bool) {
	key := countsKey(n)
	if o, ok := bb.packMemo[key]; ok && (o.conclusive || o.budget >= budget) {
		return o.perBin, o.conclusive
	}
	perBin, conclusive = packCountsIn(bb.inst, n, budget, bb.packFail)
	bb.packMemo[key] = packOutcome{perBin: perBin, conclusive: conclusive, budget: budget}
	return perBin, conclusive
}

func countsKey(n []int) string {
	b := make([]byte, 0, len(n)*3)
	for _, v := range n {
		b = append(b, byte(v), byte(v>>8), ',')
	}
	return string(b)
}

func (bb *countBB) paperReward(i, k int) float64 {
	// Must match buildModel's dominating reward construction.
	w := 1.0
	for _, p := range bb.inst.Positions {
		for _, c := range p.Costs {
			w += c
		}
	}
	return w - bb.inst.Positions[i].Costs[k-1]
}

// explore processes one box depth-first (the tree is small; DFS keeps the
// clone-and-solve footprint flat).
func (bb *countBB) explore(box countBox) {
	if bb.nodes >= bb.max || bb.timedOut {
		bb.proven = false
		return
	}
	if bb.nodes%64 == 0 && !bb.deadline.IsZero() && time.Now().After(bb.deadline) {
		bb.timedOut = true
		bb.proven = false
		return
	}
	bb.nodes++

	bound, counts, _, feasible := bb.fr.solve(box.lo, box.hi)
	if !feasible {
		return
	}
	if bb.haveInc {
		tol := bb.tolNow()
		if bound <= bb.incumbentVal+tol {
			if bound > bb.incumbentVal+countTol {
				// The prune relied on a relaxed tolerance: the incumbent is
				// only guaranteed within tol of this subtree's optimum.
				bb.proven = false
			}
			return
		}
	}

	L := len(bb.inst.Positions)
	frac, fi := 0.0, -1
	for i, t := range counts {
		f := t - math.Floor(t)
		d := math.Min(f, 1-f)
		if d > 1e-7 && d > frac {
			frac, fi = d, i
		}
	}

	if fi >= 0 {
		// Fractional count: floor/ceil branch. Also try the floored counts
		// as a quick incumbent before descending.
		fl := make([]int, L)
		for i, t := range counts {
			fl[i] = int(math.Floor(t + 1e-9))
			if fl[i] < box.lo[i] {
				fl[i] = box.lo[i]
			}
		}
		if pb, _ := bb.packMemoized(fl, packIncumbentBudget); pb != nil {
			bb.consider(pb, bb.valueOf(fl))
		}
		down := countBox{lo: append([]int(nil), box.lo...), hi: append([]int(nil), box.hi...), bound: bound}
		down.hi[fi] = int(math.Floor(counts[fi]))
		up := countBox{lo: append([]int(nil), box.lo...), hi: append([]int(nil), box.hi...), bound: bound}
		up.lo[fi] = int(math.Ceil(counts[fi]))
		// Explore the ceil side first: more items is usually better under
		// positive rewards, giving stronger incumbents sooner.
		bb.explore(up)
		bb.explore(down)
		return
	}

	// Integral counts ñ.
	n := make([]int, L)
	for i, t := range counts {
		n[i] = int(math.Round(t))
	}
	pb, conclusive := bb.packMemoized(n, packBudget)
	switch {
	case pb != nil:
		bb.consider(pb, bound)
		// ñ is this box's best integral point; the node is closed.
	default:
		if !conclusive {
			// The packing oracle ran out of budget. Excluding ñ anyway keeps
			// the search sound for every other point but may skip ñ itself,
			// so optimality can no longer be certified.
			bb.nFallback++
			bb.proven = false
		} else {
			bb.nPackFail++
		}
		// Provably unpackable (or assumed so, see above): cover children
		// exclude exactly the points ≥ ñ (none of which is fractionally
		// packable).
		for i := 0; i < L; i++ {
			if n[i]-1 < box.lo[i] {
				continue
			}
			child := countBox{lo: append([]int(nil), box.lo...), hi: append([]int(nil), box.hi...), bound: bound}
			child.hi[i] = n[i] - 1
			bb.explore(child)
		}
	}
}
