package core

import (
	"fmt"
	"math"
)

// solveExactBrute exhaustively enumerates all feasible secondary placements
// and returns the maximum achievable chain reliability (ignoring ρ — the
// uncapped optimum). It is exponential and exists purely as a test oracle
// for small instances; it panics if the search space exceeds maxStates.
func solveExactBrute(inst *Instance, maxStates int) float64 {
	states := 0
	best := math.Inf(-1)

	residual := append([]float64(nil), inst.Residual...)
	counts := make([]int, len(inst.Positions))

	var rec func(pos int)
	rec = func(pos int) {
		states++
		if states > maxStates {
			panic(fmt.Sprintf("core: brute-force oracle exceeded %d states", maxStates))
		}
		if pos == len(inst.Positions) {
			if u := inst.achieved(counts); u > best {
				best = u
			}
			return
		}
		p := &inst.Positions[pos]
		// Enumerate per-bin allocations for this position recursively.
		var alloc func(b int, total int)
		alloc = func(b int, total int) {
			if b == len(p.Bins) || total == p.K {
				counts[pos] = total
				rec(pos + 1)
				return
			}
			u := p.Bins[b]
			maxHere := int(math.Floor(residual[u] / p.Func.Demand))
			if rem := p.K - total; maxHere > rem {
				maxHere = rem
			}
			for c := 0; c <= maxHere; c++ {
				residual[u] -= float64(c) * p.Func.Demand
				alloc(b+1, total+c)
				residual[u] += float64(c) * p.Func.Demand
			}
		}
		alloc(0, 0)
		counts[pos] = 0
	}
	rec(0)
	return best
}
