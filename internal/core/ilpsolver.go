package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// defaultBnBWorkers backs ILPOptions.BnBWorkers == 0: CLIs set it once at
// startup from -bnb-workers so every ILP solve in the process — registry
// solvers, fallback chains, the DES — picks it up without plumbing a value
// through each construction site. Results are bit-identical at any count.
var defaultBnBWorkers atomic.Int64

// SetDefaultBnBWorkers sets the process-wide default for
// ILPOptions.BnBWorkers (values < 1 reset to serial).
func SetDefaultBnBWorkers(n int) {
	if n < 1 {
		n = 1
	}
	defaultBnBWorkers.Store(int64(n))
}

func (o ILPOptions) workers() int {
	if o.BnBWorkers > 0 {
		return o.BnBWorkers
	}
	if d := int(defaultBnBWorkers.Load()); d > 0 {
		return d
	}
	return 1
}

// compResult is one independent component's solution, merged into the
// request Result in component order.
type compResult struct {
	perBin    []map[int]int
	objective float64
	nodes     int
	proven    bool
}

// NoTimeout disables the ILP's wall-clock budget: the search is bounded by
// MaxNodes alone, which makes the result a pure function of the instance —
// independent of machine speed and CPU contention. The deterministic trial
// engine requires this mode (a wall-clock deadline can fire at different
// search depths on different runs, changing the returned incumbent).
const NoTimeout time.Duration = -1

// ILPOptions tunes the exact solver.
type ILPOptions struct {
	// Objective selects the formulation (default ObjectiveLogGain).
	Objective Objective
	// MaxNodes bounds the branch-and-bound tree per component (<=0: library
	// default of 100000). This budget is deterministic: same instance, same
	// node count, same incumbent.
	MaxNodes int
	// Timeout bounds the wall-clock search per component (0: 10s default;
	// NoTimeout / any negative value: no wall-clock budget). On expiry the
	// best incumbent is returned with Proven=false. A wall-clock budget
	// trades reproducibility for a latency guarantee — results may differ
	// across runs under load.
	Timeout time.Duration
	// BnBWorkers is the number of goroutines solving independent position
	// components concurrently (<=0 means the process-wide default set by
	// SetDefaultBnBWorkers, initially 1 = serial). Every component keeps
	// its own MaxNodes budget exactly as in the serial schedule, components
	// are claimed in index order, and the merge (objective sum, node total,
	// per-bin assignment) happens in component order — so the Result is
	// bit-identical at any worker count. Wall-clock Timeouts remain as
	// nondeterministic under contention as they are serially; use NoTimeout
	// for reproducible runs.
	BnBWorkers int
}

// SolveILP solves the service reliability augmentation problem exactly via
// the integer linear program of Section 4 (in the aggregated encoding of
// buildModel). The search is the count-space branch-and-bound of countbb.go,
// which exploits the problem's bin-symmetry; see that file for why the
// generic 0/1 branch-and-bound is not used directly. The solution is trimmed
// back to the reliability expectation ρ so no capacity is wasted on
// overshoot.
func SolveILP(inst *Instance, opt ILPOptions) (*Result, error) {
	start := time.Now()
	res := &Result{Algorithm: "ILP", PerBin: emptyPerBin(inst)}
	if inst.ExpectationMet() || inst.TotalItems() == 0 {
		// Algorithm line 2-3: the admission already meets ρ, or there is
		// nothing to place.
		res.finalize(inst)
		res.Proven = true
		res.Runtime = time.Since(start)
		return res, nil
	}

	// Solve each independent position group on its own (see splitComponents)
	// and merge: the objective is separable, so the merged solution is the
	// global optimum iff every component was solved to optimality. Components
	// share nothing (each search builds its own sub-instance, relaxation,
	// memo, and failure tables and only reads the parent instance), so with
	// BnBWorkers > 1 they are evaluated concurrently — claimed in index
	// order — while the merge below always runs in component order, keeping
	// the objective sum and node accounting bit-identical to the serial
	// schedule.
	res.Proven = true
	groups := splitComponents(inst)
	comps := make([]compResult, len(groups))
	solveComp := func(ci int) {
		group := groups[ci]
		c := &comps[ci]
		c.proven = true
		if len(group) == 1 {
			// Closed form (no search): counts as zero explored nodes.
			c.perBin, c.objective = solveSinglePosition(inst, group[0])
			return
		}
		sub := subInstance(inst, group)
		c.perBin, c.objective, c.nodes, c.proven = solveCountBB(sub, opt.Objective, opt.MaxNodes, opt.Timeout)
	}
	if workers := min(opt.workers(), len(groups)); workers > 1 {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					ci := int(cursor.Add(1)) - 1
					if ci >= len(groups) {
						return
					}
					solveComp(ci)
				}
			}()
		}
		wg.Wait()
	} else {
		for ci := range groups {
			solveComp(ci)
		}
	}
	for ci, group := range groups {
		c := &comps[ci]
		if c.perBin == nil {
			return nil, fmt.Errorf("core: ILP search found no solution on an always-feasible component")
		}
		for gi, i := range group {
			if len(group) == 1 {
				res.PerBin[i] = c.perBin[0]
			} else {
				res.PerBin[i] = c.perBin[gi]
			}
		}
		res.Objective += c.objective
		res.Nodes += c.nodes
		res.Proven = res.Proven && c.proven
	}
	// Every count-B&B node is claimed exactly once by the deterministic
	// component driver, so the production claim counter advances in lockstep
	// with the node total (the generic internal/ilp engine adds its own
	// speculative claims on top when used directly).
	obs.Default().Counter("ilp_bnb_nodes_claimed").Add(int64(res.Nodes))
	res.trimToExpectation(inst)
	res.finalize(inst)
	res.Runtime = time.Since(start)
	return res, nil
}

func emptyPerBin(inst *Instance) []map[int]int {
	pb := make([]map[int]int, len(inst.Positions))
	for i := range pb {
		pb[i] = make(map[int]int)
	}
	return pb
}
