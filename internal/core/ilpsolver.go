package core

import (
	"fmt"
	"time"
)

// NoTimeout disables the ILP's wall-clock budget: the search is bounded by
// MaxNodes alone, which makes the result a pure function of the instance —
// independent of machine speed and CPU contention. The deterministic trial
// engine requires this mode (a wall-clock deadline can fire at different
// search depths on different runs, changing the returned incumbent).
const NoTimeout time.Duration = -1

// ILPOptions tunes the exact solver.
type ILPOptions struct {
	// Objective selects the formulation (default ObjectiveLogGain).
	Objective Objective
	// MaxNodes bounds the branch-and-bound tree per component (<=0: library
	// default of 100000). This budget is deterministic: same instance, same
	// node count, same incumbent.
	MaxNodes int
	// Timeout bounds the wall-clock search per component (0: 10s default;
	// NoTimeout / any negative value: no wall-clock budget). On expiry the
	// best incumbent is returned with Proven=false. A wall-clock budget
	// trades reproducibility for a latency guarantee — results may differ
	// across runs under load.
	Timeout time.Duration
}

// SolveILP solves the service reliability augmentation problem exactly via
// the integer linear program of Section 4 (in the aggregated encoding of
// buildModel). The search is the count-space branch-and-bound of countbb.go,
// which exploits the problem's bin-symmetry; see that file for why the
// generic 0/1 branch-and-bound is not used directly. The solution is trimmed
// back to the reliability expectation ρ so no capacity is wasted on
// overshoot.
func SolveILP(inst *Instance, opt ILPOptions) (*Result, error) {
	start := time.Now()
	res := &Result{Algorithm: "ILP", PerBin: emptyPerBin(inst)}
	if inst.ExpectationMet() || inst.TotalItems() == 0 {
		// Algorithm line 2-3: the admission already meets ρ, or there is
		// nothing to place.
		res.finalize(inst)
		res.Proven = true
		res.Runtime = time.Since(start)
		return res, nil
	}

	// Solve each independent position group on its own (see splitComponents)
	// and merge: the objective is separable, so the merged solution is the
	// global optimum iff every component was solved to optimality.
	res.Proven = true
	for _, group := range splitComponents(inst) {
		var perBin []map[int]int
		var objective float64
		var nodes int
		proven := true
		if len(group) == 1 {
			// Closed form (no search): counts as zero explored nodes.
			perBin, objective = solveSinglePosition(inst, group[0])
		} else {
			sub := subInstance(inst, group)
			perBin, objective, nodes, proven = solveCountBB(sub, opt.Objective, opt.MaxNodes, opt.Timeout)
			if perBin == nil {
				return nil, fmt.Errorf("core: ILP search found no solution on an always-feasible component")
			}
		}
		for gi, i := range group {
			if len(group) == 1 {
				res.PerBin[i] = perBin[0]
			} else {
				res.PerBin[i] = perBin[gi]
			}
		}
		res.Objective += objective
		res.Nodes += nodes
		res.Proven = res.Proven && proven
	}
	res.trimToExpectation(inst)
	res.finalize(inst)
	res.Runtime = time.Since(start)
	return res, nil
}

func emptyPerBin(inst *Instance) []map[int]int {
	pb := make([]map[int]int, len(inst.Positions))
	for i := range pb {
		pb[i] = make(map[int]int)
	}
	return pb
}
