package core_test

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mec"
)

// buildExampleWorld constructs the small deterministic network the examples
// share: a 4-AP line with cloudlets on APs 0 and 2.
func buildExampleWorld() (*mec.Network, *mec.Request) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	catalog := mec.NewCatalog([]mec.FunctionType{
		{Name: "fw", Demand: 300, Reliability: 0.8},
		{Name: "nat", Demand: 200, Reliability: 0.9},
	})
	net := mec.NewNetwork(g, []float64{1500, 0, 1500, 0}, catalog)
	req := mec.NewRequest(1, []int{0, 1}, 0.99, 0, 3)
	req.Primaries = []int{0, 2}
	net.Consume(0, 300)
	net.Consume(2, 200)
	return net, req
}

func ExampleSolveHeuristic() {
	net, req := buildExampleWorld()
	inst := core.NewInstance(net, req, core.Params{L: 2})
	res, err := core.SolveHeuristic(inst, core.HeuristicOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("initial %.3f augmented %.3f met %v\n",
		inst.InitialReliability, res.Reliability, res.MetExpectation)
	// Output: initial 0.720 augmented 0.991 met true
}

func ExampleSolveILP() {
	net, req := buildExampleWorld()
	inst := core.NewInstance(net, req, core.Params{L: 2})
	res, err := core.SolveILP(inst, core.ILPOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("met %v proven %v violated %v\n", res.MetExpectation, res.Proven, res.Violated)
	// Output: met true proven true violated false
}

func ExampleSolveRandomized() {
	net, req := buildExampleWorld()
	inst := core.NewInstance(net, req, core.Params{L: 2})
	rng := rand.New(rand.NewSource(4))
	res, err := core.SolveRandomized(inst, rng, core.RandomizedOptions{Repair: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("violated after repair: %v\n", res.Violated)
	// Output: violated after repair: false
}

func ExampleResult_Commit() {
	net, req := buildExampleWorld()
	inst := core.NewInstance(net, req, core.Params{L: 2})
	res, err := core.SolveHeuristic(inst, core.HeuristicOptions{})
	if err != nil {
		panic(err)
	}
	before := net.Residual(0) + net.Residual(2)
	if err := res.Commit(net); err != nil {
		panic(err)
	}
	after := net.Residual(0) + net.Residual(2)
	fmt.Printf("consumed %.0f MHz for %d backups\n", before-after, totalBackups(res))
	// Output: consumed 1000 MHz for 4 backups
}

func totalBackups(r *core.Result) int {
	n := 0
	for _, c := range r.Counts {
		n += c
	}
	return n
}
