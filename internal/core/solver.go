package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Solver is the uniform interface over the augmentation algorithms. A Solver
// is a named, option-bound strategy: Solve runs it on one instance. The rng
// feeds any internal randomness (only the randomized rounding uses it;
// deterministic solvers ignore it) — callers that want reproducible runs pass
// a per-trial seeded rng and solvers must not retain it across calls.
//
// Solver implementations must be safe for concurrent Solve calls on distinct
// instances: the trial engine (internal/engine) fans one Solver out across
// GOMAXPROCS workers.
type Solver interface {
	Name() string
	Solve(inst *Instance, rng *rand.Rand) (*Result, error)
}

// solverFunc adapts a plain function to the Solver interface.
type solverFunc struct {
	name string
	fn   func(*Instance, *rand.Rand) (*Result, error)
}

func (s solverFunc) Name() string { return s.name }

// Solve runs the wrapped function and records per-solver observability
// metrics (duration, LP pivots, branch-and-bound nodes, objective, outcome)
// into the default obs registry. The recording never touches rng or the
// instance, so instrumented runs stay bit-identical to uninstrumented ones.
func (s solverFunc) Solve(inst *Instance, rng *rand.Rand) (*Result, error) {
	ins := instrumentsFor(s.name)
	start := time.Now()
	res, err := s.fn(inst, rng)
	ins.duration.ObserveSince(start)
	ins.total.Inc()
	if err != nil {
		ins.errors.Inc()
		return res, err
	}
	if res.LPIterations > 0 {
		ins.pivots.Observe(float64(res.LPIterations))
	}
	if res.Nodes > 0 {
		ins.nodes.Observe(float64(res.Nodes))
	}
	if res.Proven {
		ins.proven.Inc()
	}
	ins.objective.Set(res.Objective)
	return res, err
}

// solveInstruments caches the obs metric handles for one solver name so the
// per-solve cost is a handful of atomic operations, not registry lookups.
type solveInstruments struct {
	total, errors, proven *obs.Counter
	duration              *obs.Histogram
	pivots                *obs.Histogram
	nodes                 *obs.Histogram
	objective             *obs.Gauge
}

var instrumentCache sync.Map // solver name → *solveInstruments

func instrumentsFor(name string) *solveInstruments {
	if v, ok := instrumentCache.Load(name); ok {
		return v.(*solveInstruments)
	}
	r := obs.Default()
	ins := &solveInstruments{
		total:     r.Counter("solver_solve_total", "solver", name),
		errors:    r.Counter("solver_solve_errors_total", "solver", name),
		proven:    r.Counter("solver_proven_total", "solver", name),
		duration:  r.Histogram("solver_duration_seconds", obs.DurationBuckets, "solver", name),
		pivots:    r.Histogram("solver_lp_pivots", obs.CountBuckets, "solver", name),
		nodes:     r.Histogram("solver_ilp_nodes", obs.CountBuckets, "solver", name),
		objective: r.Gauge("solver_last_objective", "solver", name),
	}
	actual, _ := instrumentCache.LoadOrStore(name, ins)
	return actual.(*solveInstruments)
}

// NewSolverFunc wraps fn as a Solver with the given name. Use it for ad-hoc
// variants (e.g. an ILP with a non-default objective) that should flow
// through the same harness as the registered algorithms.
func NewSolverFunc(name string, fn func(*Instance, *rand.Rand) (*Result, error)) Solver {
	if name == "" {
		panic("core: solver name must be non-empty")
	}
	if fn == nil {
		panic("core: solver fn must be non-nil")
	}
	return solverFunc{name: name, fn: fn}
}

// NewILPSolver returns the exact solver (Section 4) bound to opt.
func NewILPSolver(opt ILPOptions) Solver {
	return solverFunc{name: "ILP", fn: func(inst *Instance, _ *rand.Rand) (*Result, error) {
		return SolveILP(inst, opt)
	}}
}

// NewRandomizedSolver returns Algorithm 1 (LP relaxation + randomized
// rounding) bound to opt. Its Solve requires a non-nil rng.
func NewRandomizedSolver(opt RandomizedOptions) Solver {
	return solverFunc{name: "Randomized", fn: func(inst *Instance, rng *rand.Rand) (*Result, error) {
		if rng == nil {
			return nil, fmt.Errorf("core: the Randomized solver requires a non-nil rng")
		}
		return SolveRandomized(inst, rng, opt)
	}}
}

// NewHeuristicSolver returns Algorithm 2 (iterated min-cost matching) bound
// to opt.
func NewHeuristicSolver(opt HeuristicOptions) Solver {
	return solverFunc{name: "Heuristic", fn: func(inst *Instance, _ *rand.Rand) (*Result, error) {
		return SolveHeuristic(inst, opt)
	}}
}

// NewGreedySolver returns the marginal-gain baseline.
func NewGreedySolver() Solver {
	return solverFunc{name: "Greedy", fn: func(inst *Instance, _ *rand.Rand) (*Result, error) {
		return SolveGreedy(inst)
	}}
}

// registry holds the named solvers. Lookup is case-insensitive; Names
// preserves registration order so listings read in the paper's order
// (ILP, Randomized, Heuristic, then extensions).
var registry = struct {
	sync.RWMutex
	byName map[string]Solver // key: lower-cased name
	order  []string          // canonical names, registration order
}{byName: make(map[string]Solver)}

// Register adds s to the solver registry under its name. Registering a name
// again replaces the previous entry (last registration wins, keeping its
// position), which lets callers rebind a default algorithm to tuned options.
func Register(s Solver) {
	if s == nil || s.Name() == "" {
		panic("core: Register requires a solver with a non-empty name")
	}
	key := strings.ToLower(s.Name())
	registry.Lock()
	defer registry.Unlock()
	if _, exists := registry.byName[key]; !exists {
		registry.order = append(registry.order, s.Name())
	}
	registry.byName[key] = s
}

// Get returns the registered solver with the given name (case-insensitive).
func Get(name string) (Solver, bool) {
	registry.RLock()
	defer registry.RUnlock()
	s, ok := registry.byName[strings.ToLower(name)]
	return s, ok
}

// Names returns the canonical names of all registered solvers in
// registration order (the built-ins come first, in the paper's order).
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	return append([]string(nil), registry.order...)
}

// ResolveSolvers resolves a comma-separated list of solver names against the
// registry. The single token "all" selects every registered solver. Unknown
// names error with a listing of the registered ones.
func ResolveSolvers(spec string) ([]Solver, error) {
	if strings.EqualFold(strings.TrimSpace(spec), "all") {
		var out []Solver
		for _, name := range Names() {
			s, _ := Get(name)
			out = append(out, s)
		}
		return out, nil
	}
	var out []Solver
	seen := make(map[string]bool)
	for _, tok := range strings.Split(spec, ",") {
		name := strings.TrimSpace(tok)
		if name == "" {
			continue
		}
		s, ok := Get(name)
		if !ok {
			known := Names()
			sort.Strings(known)
			return nil, fmt.Errorf("core: unknown solver %q (registered: %s)", name, strings.Join(known, ", "))
		}
		if seen[strings.ToLower(s.Name())] {
			continue
		}
		seen[strings.ToLower(s.Name())] = true
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: empty solver list %q", spec)
	}
	return out, nil
}

func init() {
	// The registered ILP runs without a wall-clock budget (node budget
	// only): every consumer of the registry — the experiment harness, batch
	// mode, the CLIs — then computes results that are pure functions of the
	// instance, which is what makes parallel sweeps bit-identical to serial
	// ones. Callers that need a latency guarantee instead of reproducibility
	// construct their own NewILPSolver with a positive Timeout.
	Register(NewILPSolver(ILPOptions{Timeout: NoTimeout}))
	Register(NewRandomizedSolver(RandomizedOptions{}))
	Register(NewHeuristicSolver(HeuristicOptions{}))
	Register(NewGreedySolver())
	// Failsafe is the deterministic graceful-degradation chain: the
	// heuristic serves unless it fails, in which case the greedy baseline
	// does. No stage carries a wall-clock budget, so the registry's
	// purity/reproducibility contract above still holds for it.
	Register(Fallback("Failsafe",
		Stage(NewHeuristicSolver(HeuristicOptions{}), 0),
		Stage(NewGreedySolver(), 0)))
}
