package core

import "sort"

// flowRelax solves the node relaxation of the count branch-and-bound exactly
// and combinatorially, replacing a general simplex call with a polymatroid
// greedy that runs in microseconds at this problem's sizes.
//
// The relaxation is: maximize Σ_i G_i(T_i) over fractional counts T, where
// G_i is the concave piecewise-linear prefix-sum of position i's (strictly
// decreasing, positive) item rewards, subject to lo ≤ T ≤ hi and T being
// fractionally packable into the bins. In scaled units x_{i,u} = c_i·y_{i,u}
// the packable region is an independent-flow polytope over the tiny
// positions×bins bipartite network, whose projection onto T is a polymatroid
// (max-flow/min-cut submodularity); box-intersections and lower-bound
// contractions of polymatroids are again polymatroids, so the classic result
// of Federgruen & Groenevelt applies: processing items in decreasing
// gain-per-MHz order and raising each coordinate to its maximal feasible
// extent (an augmenting-path computation) yields the exact optimum.
//
// Returns the optimal objective, the fractional counts, the per-(position,
// bin) flows in instances (flow/c_i), and whether the box is feasible at all
// (lower bounds can make it infeasible).
type flowRelax struct {
	inst *Instance
	obj  Objective

	// static, built once per countBB:
	order []flowItem // all items, decreasing density
	w     float64    // paper-cost dominating reward (0 for log-gain)
	// arcCap[i][b] is the MHz capacity of the arc position i → its b-th bin:
	// slots_{i,b}·c_i, the integral-slot upper bound the paper's ILP puts on
	// y_{i,u}. Without it the relaxation would be weaker than the LP.
	arcCap [][]float64
	binIdx []int // bin node id -> index into BinSet (static per instance)

	// per-solve scratch, reused across the thousands of relaxation calls a
	// count branch-and-bound makes (callers never retain the returned
	// counts/flows past the next solve):
	flow    [][]float64
	binCap  []float64
	binUsed []float64
	counts  []float64
	visited []bool
	log     []flowHop
	path    []int
}

// flowHop is one BFS step of an augmenting-path search.
type flowHop struct {
	node int
	prev int // index into the visit log
}

type flowItem struct {
	pos     int
	k       int // 1-based item index
	reward  float64
	density float64
}

// newFlowRelax precomputes the density order.
func newFlowRelax(inst *Instance, obj Objective) *flowRelax {
	fr := &flowRelax{inst: inst, obj: obj}
	if obj == ObjectivePaperCost {
		fr.w = 1
		for _, p := range inst.Positions {
			for _, c := range p.Costs {
				fr.w += c
			}
		}
	}
	for i := range inst.Positions {
		p := &inst.Positions[i]
		for k := 1; k <= p.K; k++ {
			reward := p.Gains[k-1]
			if obj == ObjectivePaperCost {
				reward = fr.w - p.Costs[k-1]
			}
			fr.order = append(fr.order, flowItem{
				pos:     i,
				k:       k,
				reward:  reward,
				density: reward / p.Func.Demand,
			})
		}
	}
	sort.SliceStable(fr.order, func(a, b int) bool {
		return fr.order[a].density > fr.order[b].density
	})
	fr.arcCap = make([][]float64, len(inst.Positions))
	fr.flow = make([][]float64, len(inst.Positions))
	for i := range inst.Positions {
		p := &inst.Positions[i]
		fr.arcCap[i] = make([]float64, len(p.Bins))
		fr.flow[i] = make([]float64, len(p.Bins))
		for b := range p.Bins {
			slots := p.Slots[b]
			if slots > p.K {
				slots = p.K
			}
			fr.arcCap[i][b] = float64(slots) * p.Func.Demand
		}
	}
	fr.binIdx = make([]int, len(inst.Residual))
	fr.binCap = make([]float64, len(inst.BinSet))
	fr.binUsed = make([]float64, len(inst.BinSet))
	fr.counts = make([]float64, len(inst.Positions))
	fr.visited = make([]bool, len(inst.Positions)+len(inst.BinSet))
	for bi, u := range inst.BinSet {
		fr.binIdx[u] = bi
	}
	return fr
}

const flowEps = 1e-9

// solve evaluates one box. flows[i] is indexed like Positions[i].Bins.
func (fr *flowRelax) solve(lo, hi []int) (obj float64, counts []float64, flows [][]float64, feasible bool) {
	inst := fr.inst
	nPos := len(inst.Positions)

	// Bin residual capacities (MHz), indexed by bin slot; flow[i][b] is the
	// MHz routed from position i to its b-th bin. All reused scratch.
	binIdx := fr.binIdx
	binCap := fr.binCap
	for bi, u := range inst.BinSet {
		binCap[bi] = inst.Residual[u]
	}
	flow := fr.flow
	for i := range flow {
		row := flow[i]
		for b := range row {
			row[b] = 0
		}
	}
	binUsed := fr.binUsed
	for bi := range binUsed {
		binUsed[bi] = 0
	}
	counts = fr.counts
	for i := range counts {
		counts[i] = 0
	}

	// push routes up to amount MHz from position i into its bins, using
	// augmenting paths through the bipartite residual network (positions may
	// reroute each other's flow). Returns the amount actually routed.
	push := func(i int, amount float64) float64 {
		routed := 0.0
		for amount-routed > flowEps {
			delta := fr.augment(i, amount-routed, flow, binUsed, binCap, binIdx)
			if delta <= flowEps {
				break
			}
			routed += delta
		}
		return routed
	}

	// Phase 1: satisfy lower bounds.
	for i := 0; i < nPos; i++ {
		if lo[i] <= 0 {
			continue
		}
		need := float64(lo[i]) * inst.Positions[i].Func.Demand
		got := push(i, need)
		if need-got > 1e-6 {
			return 0, nil, nil, false
		}
		counts[i] = float64(lo[i])
		if fr.obj == ObjectivePaperCost {
			for k := 1; k <= lo[i]; k++ {
				obj += fr.w - inst.Positions[i].Costs[k-1]
			}
		} else {
			for k := 1; k <= lo[i]; k++ {
				obj += inst.Positions[i].Gains[k-1]
			}
		}
	}

	// Phase 2: greedy by density over the remaining items.
	for _, it := range fr.order {
		if it.k <= lo[it.pos] || it.k > hi[it.pos] {
			continue
		}
		demand := inst.Positions[it.pos].Func.Demand
		got := push(it.pos, demand)
		if got <= flowEps {
			continue
		}
		frac := got / demand
		obj += it.reward * frac
		counts[it.pos] += frac
	}
	return obj, counts, flow, true
}

// augment finds one augmenting path from position src to any bin with spare
// capacity in the residual network and pushes up to want MHz along it.
// Residual arcs: position→its bins (always available), bin→position (if that
// position currently routes flow into the bin, it can be rerouted).
func (fr *flowRelax) augment(src int, want float64, flow [][]float64, binUsed, binCap []float64, binIdx []int) float64 {
	inst := fr.inst
	nPos := len(inst.Positions)

	// BFS over nodes: positions [0,nPos), bins [nPos, nPos+nBin).
	visited := fr.visited
	for n := range visited {
		visited[n] = false
	}
	log := append(fr.log[:0], flowHop{node: src, prev: -1})
	visited[src] = true
	goal := -1
	for qi := 0; qi < len(log) && goal < 0; qi++ {
		n := log[qi].node
		if n < nPos {
			// position → bins it may use, through unsaturated arcs only
			p := &inst.Positions[n]
			for b, u := range p.Bins {
				if fr.arcCap[n][b]-flow[n][b] <= flowEps {
					continue
				}
				bi := binIdx[u] + nPos
				if !visited[bi] {
					visited[bi] = true
					log = append(log, flowHop{node: bi, prev: qi})
					if binCap[binIdx[u]]-binUsed[binIdx[u]] > flowEps {
						goal = len(log) - 1
						break
					}
				}
			}
		} else {
			// bin → positions that can withdraw flow from it
			bi := n - nPos
			u := inst.BinSet[bi]
			for j := 0; j < nPos; j++ {
				if visited[j] {
					continue
				}
				for b, bu := range inst.Positions[j].Bins {
					if bu == u && flow[j][b] > flowEps {
						visited[j] = true
						log = append(log, flowHop{node: j, prev: qi})
						break
					}
				}
			}
		}
	}
	fr.log = log // keep the grown buffer for the next call
	if goal < 0 {
		return 0
	}

	// Reconstruct path (node sequence src → ... → free bin).
	path := fr.path[:0]
	for idx := goal; idx >= 0; idx = log[idx].prev {
		path = append(path, log[idx].node)
	}
	fr.path = path
	// reverse
	for a, b := 0, len(path)-1; a < b; a, b = a+1, b-1 {
		path[a], path[b] = path[b], path[a]
	}

	// Bottleneck: min over residual capacities along the path — terminal bin
	// spare, backward-arc flows, and forward-arc slot capacities.
	bottleneck := want
	lastBin := path[len(path)-1] - nPos
	if spare := binCap[lastBin] - binUsed[lastBin]; spare < bottleneck {
		bottleneck = spare
	}
	for s := 0; s+1 < len(path); s++ {
		a, b := path[s], path[s+1]
		if a < nPos { // forward arc position a → bin b
			u := inst.BinSet[b-nPos]
			for bb, bu := range inst.Positions[a].Bins {
				if bu == u {
					if spare := fr.arcCap[a][bb] - flow[a][bb]; spare < bottleneck {
						bottleneck = spare
					}
					break
				}
			}
		} else { // backward arc bin a → position b
			u := inst.BinSet[a-nPos]
			for bb, bu := range inst.Positions[b].Bins {
				if bu == u {
					if flow[b][bb] < bottleneck {
						bottleneck = flow[b][bb]
					}
					break
				}
			}
		}
	}
	if bottleneck <= flowEps {
		return 0
	}

	// Apply: forward arcs position→bin add flow; backward bin→position
	// remove it. Bin usage changes only at the terminal bin.
	for s := 0; s+1 < len(path); s++ {
		a, b := path[s], path[s+1]
		if a < nPos { // position → bin: add
			u := inst.BinSet[b-nPos]
			for bb, bu := range inst.Positions[a].Bins {
				if bu == u {
					flow[a][bb] += bottleneck
					break
				}
			}
		} else { // bin → position: remove
			u := inst.BinSet[a-nPos]
			for bb, bu := range inst.Positions[b].Bins {
				if bu == u {
					flow[b][bb] -= bottleneck
					break
				}
			}
		}
	}
	binUsed[lastBin] += bottleneck
	return bottleneck
}
