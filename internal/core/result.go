package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/mec"
	"repro/internal/reliability"
)

// UsageStats summarizes per-cloudlet computing-capacity usage by the
// secondaries of one solution, as a ratio of the residual capacity the
// instance started with (Figures 1(b), 2(b), 3(b) of the paper). Ratios above
// 1.0 are capacity violations (possible for the randomized algorithm only).
type UsageStats struct {
	Avg, Min, Max float64
	PerCloudlet   map[int]float64
}

// Result is the outcome of one solver run on one instance.
type Result struct {
	Algorithm string
	Instance  *Instance
	// PerBin[i] maps cloudlet → number of secondary instances of chain
	// position i placed there.
	PerBin []map[int]int
	// Counts[i] = n_i, total secondaries for chain position i.
	Counts []int
	// Reliability is the achieved chain reliability Π R_i.
	Reliability float64
	// MetExpectation reports Reliability >= ρ (within float tolerance).
	MetExpectation bool
	// Violated reports whether any cloudlet's residual capacity is exceeded.
	Violated bool
	// Usage summarizes capacity usage over the instance's bin set.
	Usage UsageStats
	// Runtime is the wall-clock solver time.
	Runtime time.Duration
	// Proven is set by the ILP solver when optimality was proven.
	Proven bool
	// Rounds is the number of matching rounds the heuristic ran (Theorem
	// 6.2 analyses this count; zero for other algorithms).
	Rounds int
	// Objective is the solver's internal objective value (diagnostics).
	Objective float64
	// LPIterations is the total simplex pivots spent on LP relaxations
	// (the Randomized solver's one relaxation solve; zero for solvers that
	// never call the simplex).
	LPIterations int
	// Nodes is the number of branch-and-bound nodes the ILP explored,
	// summed over components (zero for the other algorithms).
	Nodes int
	// ServedBy names the fallback-chain stage that produced this result
	// (set by core.Fallback only; empty for direct solver calls).
	ServedBy string
}

// finalize fills the derived fields of a result from PerBin.
func (r *Result) finalize(inst *Instance) {
	r.Instance = inst
	r.Counts = make([]int, len(inst.Positions))
	for i, m := range r.PerBin {
		for _, c := range m {
			r.Counts[i] += c
		}
	}
	r.Reliability = inst.achieved(r.Counts)
	r.MetExpectation = reliability.MeetsExpectation(r.Reliability, inst.Req.Expectation)

	load := inst.load(r.PerBin)
	r.Usage = UsageStats{Min: 1e308, PerCloudlet: make(map[int]float64)}
	r.Violated = false
	if len(inst.BinSet) == 0 {
		r.Usage.Min = 0
		return
	}
	sum := 0.0
	for _, u := range inst.BinSet {
		res := inst.Residual[u]
		ratio := 0.0
		if res > 0 {
			ratio = load[u] / res
		} else if load[u] > 0 {
			ratio = 2 // loaded a zero-residual cloudlet: maximal violation
		}
		r.Usage.PerCloudlet[u] = ratio
		sum += ratio
		if ratio < r.Usage.Min {
			r.Usage.Min = ratio
		}
		if ratio > r.Usage.Max {
			r.Usage.Max = ratio
		}
		if load[u] > res*(1+1e-9) {
			r.Violated = true
		}
	}
	r.Usage.Avg = sum / float64(len(inst.BinSet))
}

// Secondaries expands PerBin into explicit per-position cloudlet lists
// (repeats meaning multiple instances on one cloudlet), sorted for
// determinism.
func (r *Result) Secondaries() [][]int {
	out := make([][]int, len(r.PerBin))
	for i, m := range r.PerBin {
		var list []int
		for u, c := range m {
			for j := 0; j < c; j++ {
				list = append(list, u)
			}
		}
		sort.Ints(list)
		out[i] = list
	}
	return out
}

// Placement converts the result into a validated mec.Placement.
func (r *Result) Placement() *mec.Placement {
	return &mec.Placement{Request: r.Instance.Req, Secondaries: r.Secondaries()}
}

// Commit consumes the solution's capacity from the live network ledger.
// It fails (without partial effects) if the solution violates capacity —
// randomized solutions with violations cannot be committed.
func (r *Result) Commit(net *mec.Network) error {
	if r.Violated {
		return fmt.Errorf("core: refusing to commit a capacity-violating %s solution", r.Algorithm)
	}
	snap := net.ResidualSnapshot()
	for i, m := range r.PerBin {
		demand := r.Instance.Positions[i].Func.Demand
		for u, c := range m {
			need := demand * float64(c)
			if net.Residual(u) < need-1e-9 {
				net.RestoreResiduals(snap)
				return fmt.Errorf("core: ledger changed since instance snapshot: cloudlet %d has %v, need %v", u, net.Residual(u), need)
			}
			net.Consume(u, min64(need, net.Residual(u)))
		}
	}
	return nil
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// trimToExpectation removes surplus placements while keeping the achieved
// reliability at or above ρ: repeatedly drop the placement whose removal
// costs the least log-reliability, as long as the expectation stays met.
// This realizes the paper's "augment until the expectation is reached"
// semantics without wasting cloudlet capacity on overshoot. No-op when the
// expectation is not met (every placement is then useful).
func (r *Result) trimToExpectation(inst *Instance) {
	rho := inst.Req.Expectation
	if !reliability.MeetsExpectation(r.reliabilityOf(inst), rho) {
		return
	}
	for {
		// Find the position whose last backup has the smallest gain.
		best := -1
		bestGain := 0.0
		counts := r.countsOf()
		for i, p := range inst.Positions {
			n := counts[i]
			if n == 0 {
				continue
			}
			g := reliability.LogGain(p.Func.Reliability, n)
			if best < 0 || g < bestGain {
				best = i
				bestGain = g
			}
		}
		if best < 0 {
			return
		}
		counts[best]--
		if !reliability.MeetsExpectation(inst.achieved(counts), rho) {
			return // removing it would break the expectation; stop
		}
		// Physically remove one instance of position best from some bin
		// (the most loaded one, to free contention first; ties break on the
		// lowest cloudlet ID so results are deterministic).
		m := r.PerBin[best]
		worstU, worstC := -1, 0
		for u, c := range m {
			if c > worstC || (c == worstC && worstU >= 0 && u < worstU) {
				worstU, worstC = u, c
			}
		}
		if worstU < 0 {
			return
		}
		if m[worstU] == 1 {
			delete(m, worstU)
		} else {
			m[worstU]--
		}
	}
}

func (r *Result) countsOf() []int {
	counts := make([]int, len(r.PerBin))
	for i, m := range r.PerBin {
		for _, c := range m {
			counts[i] += c
		}
	}
	return counts
}

func (r *Result) reliabilityOf(inst *Instance) float64 {
	return inst.achieved(r.countsOf())
}
