package core

import "math/rand"

// splitmix64 is a deterministic rand.Source64 with O(1) seeding (Steele,
// Lea & Flood's finalizer). The stdlib rngSource burns ~10µs warming its
// 607-word lagged-Fibonacci table on every construction, which dominates
// callers that build a source per request or per stage and then draw only
// a handful of values.
type splitmix64 struct{ s uint64 }

// Uint64 advances the splitmix64 stream.
func (r *splitmix64) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 satisfies rand.Source.
func (r *splitmix64) Int63() int64 { return int64(r.Uint64() >> 1) }

// Seed satisfies rand.Source.
func (r *splitmix64) Seed(seed int64) { r.s = uint64(seed) }

// CheapSource returns a deterministic rand.Source64 seeded in O(1): the
// per-request source of the serving and fallback paths. Streams are a pure
// function of the seed, so placements derived from them stay bit-identical
// across worker and batcher counts — but they differ from streams the
// stdlib source would produce, so seeded results are only comparable across
// runs built on the same source.
func CheapSource(seed int64) rand.Source { return &splitmix64{s: uint64(seed)} }
