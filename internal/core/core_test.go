package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/mec"
	"repro/internal/reliability"
)

// buildNet constructs a line network 0-1-2-...-(n-1) with the given per-node
// capacities and catalog.
func buildNet(caps []float64, types []mec.FunctionType) *mec.Network {
	g := graph.New(len(caps))
	for i := 0; i+1 < len(caps); i++ {
		g.AddEdge(i, i+1)
	}
	return mec.NewNetwork(g, caps, mec.NewCatalog(types))
}

// smallInstance: 3 APs in a line, cloudlets at 0 and 1 (adjacent), one
// 2-function chain with primaries on 0 and 1.
func smallInstance(rho float64) *Instance {
	net := buildNet(
		[]float64{1000, 1000, 0},
		[]mec.FunctionType{
			{Name: "a", Demand: 300, Reliability: 0.8},
			{Name: "b", Demand: 400, Reliability: 0.9},
		})
	req := mec.NewRequest(1, []int{0, 1}, rho, 0, 2)
	req.Primaries = []int{0, 1}
	// Admission consumed: a(300) on 0, b(400) on 1.
	net.Consume(0, 300)
	net.Consume(1, 400)
	return NewInstance(net, req, Params{L: 1})
}

func TestInstanceConstruction(t *testing.T) {
	inst := smallInstance(0.999)
	if len(inst.Positions) != 2 {
		t.Fatalf("positions %d", len(inst.Positions))
	}
	p0 := inst.Positions[0]
	// residuals: node0 = 700, node1 = 600. f a demand 300:
	// bins of position 0 (primary at 0, l=1): {0:2 slots, 1:2 slots}
	if len(p0.Bins) != 2 || p0.Bins[0] != 0 || p0.Bins[1] != 1 {
		t.Fatalf("p0 bins %v", p0.Bins)
	}
	if p0.Slots[0] != 2 || p0.Slots[1] != 2 {
		t.Fatalf("p0 slots %v", p0.Slots)
	}
	if p0.K != 4 {
		t.Fatalf("p0.K=%d, want 4", p0.K)
	}
	p1 := inst.Positions[1]
	// f b demand 400: node0 floor(700/400)=1, node1 floor(600/400)=1
	if p1.K != 2 {
		t.Fatalf("p1.K=%d, want 2", p1.K)
	}
	if math.Abs(inst.InitialReliability-0.72) > 1e-12 {
		t.Fatalf("initial %v, want 0.72", inst.InitialReliability)
	}
	if len(inst.BinSet) != 2 {
		t.Fatalf("bin set %v", inst.BinSet)
	}
}

func TestInstanceRequiresPrimaries(t *testing.T) {
	net := buildNet([]float64{1000}, []mec.FunctionType{{Demand: 100, Reliability: 0.9}})
	req := mec.NewRequest(1, []int{0}, 0.99, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without primaries")
		}
	}()
	NewInstance(net, req, Params{L: 1})
}

func TestInstanceHopBoundValidation(t *testing.T) {
	net := buildNet([]float64{1000, 0}, []mec.FunctionType{{Demand: 100, Reliability: 0.9}})
	req := mec.NewRequest(1, []int{0}, 0.99, 0, 0)
	req.Primaries = []int{0}
	for _, l := range []int{0, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("L=%d should panic", l)
				}
			}()
			NewInstance(net, req, Params{L: l})
		}()
	}
}

func TestILPOptimalOnSmallInstance(t *testing.T) {
	inst := smallInstance(1.0) // rho=1: augment as much as possible
	res, err := SolveILP(inst, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := solveExactBrute(inst, 1_000_000)
	if math.Abs(res.Reliability-want) > 1e-9 {
		t.Fatalf("ILP %v vs brute %v", res.Reliability, want)
	}
	if !res.Proven {
		t.Fatal("small instance should be proven optimal")
	}
	if res.Violated {
		t.Fatal("ILP must not violate capacity")
	}
}

func TestILPRespectsCapacityAndHops(t *testing.T) {
	inst := smallInstance(1.0)
	res, err := SolveILP(inst, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Placement().Validate(inst.Net, 1); err != nil {
		t.Fatalf("invalid placement: %v", err)
	}
	load := inst.load(res.PerBin)
	for _, u := range inst.BinSet {
		if load[u] > inst.Residual[u]+1e-9 {
			t.Fatalf("cloudlet %d overloaded: %v > %v", u, load[u], inst.Residual[u])
		}
	}
}

func TestExpectationAlreadyMet(t *testing.T) {
	inst := smallInstance(0.5) // initial 0.72 >= 0.5
	if !inst.ExpectationMet() {
		t.Fatal("expectation should be met by primaries")
	}
	for name, run := range solverRunners() {
		res, err := run(inst)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := totalPlacements(res); got != 0 {
			t.Fatalf("%s placed %d secondaries despite met expectation", name, got)
		}
		if !res.MetExpectation {
			t.Fatalf("%s result does not report met expectation", name)
		}
	}
}

func TestTrimToExpectation(t *testing.T) {
	// rho reachable with one backup of function a: R_a(1)*r_b =
	// 0.96*0.9 = 0.864. Ask for 0.85: solvers should place few backups,
	// not fill all capacity.
	inst := smallInstance(0.85)
	for name, run := range solverRunners() {
		res, err := run(inst)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.MetExpectation {
			t.Fatalf("%s failed to meet reachable expectation: %v", name, res.Reliability)
		}
		// Removing any single backup must break the expectation (minimality
		// modulo the trim's greedy order).
		counts := append([]int(nil), res.Counts...)
		for i := range counts {
			if counts[i] == 0 {
				continue
			}
			counts[i]--
			if reliability.MeetsExpectation(inst.achieved(counts), 0.85) {
				t.Fatalf("%s solution not trimmed: still meets rho after removing a backup (counts %v)", name, res.Counts)
			}
			counts[i]++
		}
	}
}

func TestHeuristicFeasibleAndReasonable(t *testing.T) {
	inst := smallInstance(1.0)
	res, err := SolveHeuristic(inst, HeuristicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violated {
		t.Fatal("heuristic must never violate capacity")
	}
	if err := res.Placement().Validate(inst.Net, 1); err != nil {
		t.Fatalf("invalid placement: %v", err)
	}
	ilpRes, err := SolveILP(inst, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reliability > ilpRes.Reliability+1e-9 {
		t.Fatalf("heuristic %v beats proven ILP optimum %v", res.Reliability, ilpRes.Reliability)
	}
	if res.Reliability < inst.InitialReliability {
		t.Fatal("heuristic made things worse")
	}
}

func TestRandomizedBasic(t *testing.T) {
	inst := smallInstance(1.0)
	rng := rand.New(rand.NewSource(7))
	res, err := SolveRandomized(inst, rng, RandomizedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reliability < inst.InitialReliability-1e-12 {
		t.Fatal("randomized made things worse")
	}
	// The l-hop structure is respected by construction.
	if err := res.Placement().Validate(inst.Net, 1); err != nil {
		t.Fatalf("invalid placement: %v", err)
	}
}

func TestRandomizedRepair(t *testing.T) {
	inst := smallInstance(1.0)
	rng := rand.New(rand.NewSource(7))
	res, err := SolveRandomized(inst, rng, RandomizedOptions{Repair: true, Rounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violated {
		t.Fatal("repaired solution still violates capacity")
	}
}

func TestGreedyFeasible(t *testing.T) {
	inst := smallInstance(1.0)
	res, err := SolveGreedy(inst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violated {
		t.Fatal("greedy must never violate capacity")
	}
	if err := res.Placement().Validate(inst.Net, 1); err != nil {
		t.Fatalf("invalid placement: %v", err)
	}
}

func TestNoBinsNoBackups(t *testing.T) {
	// Cloudlet 0 isolated (no edges), full with primary, zero residual.
	g := graph.New(2)
	g.AddEdge(0, 1)
	net := mec.NewNetwork(g, []float64{300, 0},
		mec.NewCatalog([]mec.FunctionType{{Demand: 300, Reliability: 0.8}}))
	req := mec.NewRequest(1, []int{0}, 1.0, 0, 1)
	req.Primaries = []int{0}
	net.Consume(0, 300)
	inst := NewInstance(net, req, Params{L: 1})
	if inst.TotalItems() != 0 {
		t.Fatalf("items %d, want 0", inst.TotalItems())
	}
	for name, run := range solverRunners() {
		res, err := run(inst)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(res.Reliability-0.8) > 1e-12 {
			t.Fatalf("%s reliability %v, want 0.8 (primaries only)", name, res.Reliability)
		}
	}
}

func TestPerfectlyReliableFunction(t *testing.T) {
	net := buildNet([]float64{1000, 1000},
		[]mec.FunctionType{{Demand: 100, Reliability: 1.0}})
	req := mec.NewRequest(1, []int{0}, 1.0, 0, 1)
	req.Primaries = []int{0}
	net.Consume(0, 100)
	inst := NewInstance(net, req, Params{L: 1})
	if inst.Positions[0].K != 0 {
		t.Fatalf("r=1 function should have no items, got K=%d", inst.Positions[0].K)
	}
	res, err := SolveILP(inst, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reliability != 1 {
		t.Fatalf("reliability %v, want 1", res.Reliability)
	}
	if !res.MetExpectation {
		t.Fatal("rho=1 is met by a perfectly reliable chain")
	}
}

// randomTinyInstance builds a random instance small enough for the brute
// oracle.
func randomTinyInstance(rng *rand.Rand) *Instance {
	nAPs := 3 + rng.Intn(3)
	caps := make([]float64, nAPs)
	for i := range caps {
		if rng.Float64() < 0.7 {
			caps[i] = 400 + rng.Float64()*800
		}
	}
	if maxFloat(caps) == 0 {
		caps[0] = 800
	}
	nTypes := 1 + rng.Intn(3)
	types := make([]mec.FunctionType, nTypes)
	for i := range types {
		types[i] = mec.FunctionType{
			Demand:      200 + rng.Float64()*200,
			Reliability: 0.55 + rng.Float64()*0.4,
		}
	}
	net := buildNet(caps, types)

	L := 1 + rng.Intn(2)
	chainLen := 1 + rng.Intn(2)
	sfc := make([]int, chainLen)
	for i := range sfc {
		sfc[i] = rng.Intn(nTypes)
	}
	req := mec.NewRequest(1, sfc, 1.0, 0, nAPs-1)
	// Place primaries on random cloudlets with capacity (not consuming — a
	// tight-residual scenario is fine for the oracle as long as consistent).
	primaries := make([]int, chainLen)
	cls := net.Cloudlets()
	for i := range primaries {
		primaries[i] = cls[rng.Intn(len(cls))]
	}
	req.Primaries = primaries
	return NewInstance(net, req, Params{L: L})
}

func maxFloat(a []float64) float64 {
	m := 0.0
	for _, v := range a {
		if v > m {
			m = v
		}
	}
	return m
}

func TestILPMatchesBruteForceOnRandomTinyInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		inst := randomTinyInstance(rng)
		if inst.TotalItems() > 8 {
			continue // keep the oracle cheap
		}
		res, err := SolveILP(inst, ILPOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := solveExactBrute(inst, 5_000_000)
		if math.Abs(res.Reliability-want) > 1e-9 {
			t.Fatalf("trial %d: ILP %v vs brute %v", trial, res.Reliability, want)
		}
	}
}

func TestSolverOrderingOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 25; trial++ {
		inst := randomTinyInstance(rng)
		ilpRes, err := SolveILP(inst, ILPOptions{})
		if err != nil {
			t.Fatalf("trial %d ILP: %v", trial, err)
		}
		heuRes, err := SolveHeuristic(inst, HeuristicOptions{})
		if err != nil {
			t.Fatalf("trial %d heuristic: %v", trial, err)
		}
		greRes, err := SolveGreedy(inst)
		if err != nil {
			t.Fatalf("trial %d greedy: %v", trial, err)
		}
		if !ilpRes.Proven {
			continue
		}
		for _, r := range []*Result{heuRes, greRes} {
			if r.Reliability > ilpRes.Reliability+1e-9 {
				t.Fatalf("trial %d: %s %v beats ILP optimum %v", trial, r.Algorithm, r.Reliability, ilpRes.Reliability)
			}
			if r.Violated {
				t.Fatalf("trial %d: %s violated capacity", trial, r.Algorithm)
			}
		}
		rnd, err := SolveRandomized(inst, rng, RandomizedOptions{})
		if err != nil {
			t.Fatalf("trial %d randomized: %v", trial, err)
		}
		if !rnd.Violated && rnd.Reliability > ilpRes.Reliability+1e-9 {
			t.Fatalf("trial %d: feasible randomized %v beats ILP optimum %v", trial, rnd.Reliability, ilpRes.Reliability)
		}
	}
}

func TestPaperCostObjectivePacksMaxItems(t *testing.T) {
	inst := smallInstance(1.0)
	resGain, err := SolveILP(inst, ILPOptions{Objective: ObjectiveLogGain})
	if err != nil {
		t.Fatal(err)
	}
	resCost, err := SolveILP(inst, ILPOptions{Objective: ObjectivePaperCost})
	if err != nil {
		t.Fatal(err)
	}
	// Both should reach the same achieved reliability here (capacity binds
	// before gains saturate on this small instance).
	if math.Abs(resGain.Reliability-resCost.Reliability) > 1e-9 {
		t.Fatalf("objectives disagree: gain %v vs paper-cost %v", resGain.Reliability, resCost.Reliability)
	}
}

func TestUsageStats(t *testing.T) {
	inst := smallInstance(1.0)
	res, err := SolveILP(inst, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Usage.Max > 1+1e-9 {
		t.Fatalf("ILP usage max %v exceeds 1", res.Usage.Max)
	}
	if res.Usage.Min < 0 || res.Usage.Avg < res.Usage.Min-1e-12 || res.Usage.Avg > res.Usage.Max+1e-12 {
		t.Fatalf("usage stats inconsistent: %+v", res.Usage)
	}
	if len(res.Usage.PerCloudlet) != len(inst.BinSet) {
		t.Fatalf("per-cloudlet usage missing entries: %v", res.Usage.PerCloudlet)
	}
}

func TestCommit(t *testing.T) {
	inst := smallInstance(1.0)
	res, err := SolveILP(inst, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before0, before1 := inst.Net.Residual(0), inst.Net.Residual(1)
	if err := res.Commit(inst.Net); err != nil {
		t.Fatal(err)
	}
	load := inst.load(res.PerBin)
	if math.Abs((before0-inst.Net.Residual(0))-load[0]) > 1e-9 {
		t.Fatalf("commit consumed %v at node 0, want %v", before0-inst.Net.Residual(0), load[0])
	}
	if math.Abs((before1-inst.Net.Residual(1))-load[1]) > 1e-9 {
		t.Fatalf("commit consumed %v at node 1, want %v", before1-inst.Net.Residual(1), load[1])
	}
}

func TestCommitRefusesViolation(t *testing.T) {
	inst := smallInstance(1.0)
	res := &Result{Algorithm: "fake", PerBin: emptyPerBin(inst)}
	res.PerBin[0][0] = 100 // way over capacity
	res.finalize(inst)
	if !res.Violated {
		t.Fatal("fake overload not detected")
	}
	if err := res.Commit(inst.Net); err == nil {
		t.Fatal("commit of violating solution must fail")
	}
}

func totalPlacements(r *Result) int {
	n := 0
	for _, c := range r.Counts {
		n += c
	}
	return n
}

func solverRunners() map[string]func(*Instance) (*Result, error) {
	return map[string]func(*Instance) (*Result, error){
		"ILP":       func(i *Instance) (*Result, error) { return SolveILP(i, ILPOptions{}) },
		"Heuristic": func(i *Instance) (*Result, error) { return SolveHeuristic(i, HeuristicOptions{}) },
		"Greedy":    func(i *Instance) (*Result, error) { return SolveGreedy(i) },
		"Randomized": func(i *Instance) (*Result, error) {
			return SolveRandomized(i, rand.New(rand.NewSource(42)), RandomizedOptions{})
		},
	}
}

// Theorem 6.2 analyses the heuristic's iteration count: each round matches
// every bin that still has capacity, so the number of rounds is bounded by
// the maximum per-bin slot count (far below the theorem's loose logarithmic
// bound). Sanity-check the rounds counter against total placements.
func TestHeuristicRoundsBounded(t *testing.T) {
	inst := smallInstance(1.0)
	res, err := SolveHeuristic(inst, HeuristicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= 0 {
		t.Fatal("rounds not recorded")
	}
	placed := totalPlacements(res)
	if placed > 0 && res.Rounds > placed+1 {
		t.Fatalf("rounds %d exceed placements %d + 1", res.Rounds, placed)
	}
}

func TestHeuristicMaxRoundsHonored(t *testing.T) {
	inst := smallInstance(1.0)
	res, err := SolveHeuristic(inst, HeuristicOptions{MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One round places at most one instance per bin.
	if totalPlacements(res) > len(inst.BinSet) {
		t.Fatalf("one round placed %d > %d bins", totalPlacements(res), len(inst.BinSet))
	}
	full, err := SolveHeuristic(inst, HeuristicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Reliability < res.Reliability-1e-12 {
		t.Fatal("unbounded rounds should do at least as well")
	}
}

// TestHeuristicWindowLossless verifies the per-round item-window optimization
// against the literal Algorithm 2 graph (every remaining item as a node):
// both must produce identical backup counts on random instances.
func TestHeuristicWindowLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 20; trial++ {
		inst := randomTinyInstance(rng)
		fast, err := SolveHeuristic(inst, HeuristicOptions{})
		if err != nil {
			t.Fatal(err)
		}
		literal, err := SolveHeuristic(inst, HeuristicOptions{LiteralItems: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := range fast.Counts {
			if fast.Counts[i] != literal.Counts[i] {
				t.Fatalf("trial %d: windowed %v vs literal %v", trial, fast.Counts, literal.Counts)
			}
		}
		if math.Abs(fast.Reliability-literal.Reliability) > 1e-12 {
			t.Fatalf("trial %d: reliability %v vs %v", trial, fast.Reliability, literal.Reliability)
		}
	}
}

// Uncapped mode keeps the paper's literal capacity-bounded K_i: the item
// schedule extends past float64 gain saturation, reliability is unchanged,
// and more capacity is consumed ("pack as many items as possible").
func TestUncappedModeMatchesPaperSemantics(t *testing.T) {
	build := func(uncapped bool) *Instance {
		net := buildNet(
			[]float64{4000, 4000, 0},
			[]mec.FunctionType{{Name: "a", Demand: 200, Reliability: 0.9}})
		req := mec.NewRequest(1, []int{0}, 1.0, 0, 2)
		req.Primaries = []int{0}
		net.Consume(0, 200)
		return NewInstance(net, req, Params{L: 1, Uncapped: uncapped})
	}
	capped := build(false)
	uncapped := build(true)
	if uncapped.TotalItems() <= capped.TotalItems() {
		t.Fatalf("uncapped items %d should exceed capped %d", uncapped.TotalItems(), capped.TotalItems())
	}
	// slots: (4000-200)/200=19 at node 0 + 20 at node 1 = 39 items literal.
	if uncapped.Positions[0].K != 39 {
		t.Fatalf("literal K=%d, want 39", uncapped.Positions[0].K)
	}
	rc, err := SolveILP(capped, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ru, err := SolveILP(uncapped, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rc.Reliability-ru.Reliability) > 1e-12 {
		t.Fatalf("capped %v vs uncapped %v reliability", rc.Reliability, ru.Reliability)
	}
}
