package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/workload"
)

// failingSolver always errors — the pathological first stage of a chain.
func failingSolver(name string) Solver {
	return NewSolverFunc(name, func(*Instance, *rand.Rand) (*Result, error) {
		return nil, fmt.Errorf("%s: induced failure", name)
	})
}

// stallingSolver blocks for d before answering — the stage a budget is for.
func stallingSolver(name string, d time.Duration) Solver {
	return NewSolverFunc(name, func(inst *Instance, _ *rand.Rand) (*Result, error) {
		time.Sleep(d)
		return SolveGreedy(inst)
	})
}

func TestFallbackFirstStageServes(t *testing.T) {
	inst := solverTestInstance(t, 11, 4)
	chain := Fallback("t-first", Stage(NewHeuristicSolver(HeuristicOptions{}), 0), Stage(NewGreedySolver(), 0))
	res, err := chain.Solve(inst, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != "Heuristic" {
		t.Fatalf("ServedBy = %q, want Heuristic", res.ServedBy)
	}
	direct, err := SolveHeuristic(inst, HeuristicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reliability != direct.Reliability {
		t.Fatalf("chain result diverges from the direct solve: %v vs %v", res.Reliability, direct.Reliability)
	}
}

func TestFallbackFallsThroughOnError(t *testing.T) {
	inst := solverTestInstance(t, 12, 4)
	chain := Fallback("t-error",
		Stage(failingSolver("Broken"), 0),
		Stage(NewHeuristicSolver(HeuristicOptions{}), 0))
	res, err := chain.Solve(inst, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != "Heuristic" {
		t.Fatalf("ServedBy = %q, want the second stage", res.ServedBy)
	}
}

func TestFallbackBudgetTimeout(t *testing.T) {
	inst := solverTestInstance(t, 13, 4)
	chain := Fallback("t-budget",
		Stage(stallingSolver("Stall", 5*time.Second), 20*time.Millisecond),
		Stage(NewGreedySolver(), 0))
	start := time.Now()
	res, err := chain.Solve(inst, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("budget did not cut the stalling stage off (took %v)", elapsed)
	}
	if res.ServedBy != "Greedy" {
		t.Fatalf("ServedBy = %q, want Greedy after the timeout", res.ServedBy)
	}
}

func TestFallbackExhausted(t *testing.T) {
	inst := solverTestInstance(t, 14, 4)
	chain := Fallback("t-exhausted", Stage(failingSolver("A"), 0), Stage(failingSolver("B"), 0))
	res, err := chain.Solve(inst, rand.New(rand.NewSource(1)))
	if res != nil || err == nil {
		t.Fatalf("want exhaustion error, got (%v, %v)", res, err)
	}
	if !errors.Is(err, ErrFallbackExhausted) {
		t.Fatalf("error should wrap ErrFallbackExhausted: %v", err)
	}
}

func TestFallbackViolatedResultFallsThrough(t *testing.T) {
	inst := solverTestInstance(t, 15, 4)
	violating := NewSolverFunc("Violating", func(inst *Instance, _ *rand.Rand) (*Result, error) {
		res, err := SolveGreedy(inst)
		if err != nil {
			return nil, err
		}
		res.Violated = true
		return res, nil
	})
	chain := Fallback("t-violated", Stage(violating, 0), Stage(NewHeuristicSolver(HeuristicOptions{}), 0))
	res, err := chain.Solve(inst, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != "Heuristic" {
		t.Fatalf("ServedBy = %q; a violating result must not serve", res.ServedBy)
	}
}

// TestFallbackRngStreamFixedWidth pins the determinism contract: a Solve
// consumes exactly len(stages) draws from the caller's rng no matter which
// stage serves, so downstream draws stay aligned across degradation paths.
func TestFallbackRngStreamFixedWidth(t *testing.T) {
	inst := solverTestInstance(t, 16, 3)
	serveFirst := Fallback("t-width-a", Stage(NewHeuristicSolver(HeuristicOptions{}), 0), Stage(NewGreedySolver(), 0))
	serveSecond := Fallback("t-width-b", Stage(failingSolver("Broken"), 0), Stage(NewGreedySolver(), 0))
	next := func(chain Solver) int64 {
		rng := rand.New(rand.NewSource(77))
		if _, err := chain.Solve(inst, rng); err != nil {
			t.Fatal(err)
		}
		return rng.Int63()
	}
	if a, b := next(serveFirst), next(serveSecond); a != b {
		t.Fatalf("caller rng stream diverged across chain paths: %d vs %d", a, b)
	}
}

func TestFallbackRegistryFailsafe(t *testing.T) {
	s, ok := Get("failsafe")
	if !ok {
		t.Fatal("Failsafe chain not registered")
	}
	inst := solverTestInstance(t, 17, 4)
	res, err := s.Solve(inst, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy == "" {
		t.Fatal("registry Failsafe result not stage-tagged")
	}
}

func TestParseFallback(t *testing.T) {
	chain, err := ParseFallback("t-parse", "ILP@50ms, Heuristic ,Greedy")
	if err != nil {
		t.Fatal(err)
	}
	inst := solverTestInstance(t, 18, 3)
	res, err := chain.Solve(inst, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy == "" {
		t.Fatal("parsed chain result not stage-tagged")
	}
	for _, bad := range []string{"", "NoSuchSolver", "ILP@banana", "Heuristic@-3s"} {
		if _, err := ParseFallback("t-parse-bad", bad); err == nil {
			t.Fatalf("spec %q should not parse", bad)
		}
	}
}

// FuzzFallbackChain drives a chain over fuzz-chosen workloads and shapes,
// asserting the chain's contract: it either errors (wrapping
// ErrFallbackExhausted when every stage failed) or returns a feasible,
// stage-tagged result whose reliability is a valid probability. The seed
// corpus is pinned under testdata/fuzz/FuzzFallbackChain.
func FuzzFallbackChain(f *testing.F) {
	f.Add(int64(1), int64(3), int64(990), false)
	f.Add(int64(42), int64(6), int64(999), true)
	f.Add(int64(7), int64(1), int64(500), true)
	f.Add(int64(1234), int64(8), int64(1000), false)
	f.Fuzz(func(t *testing.T, seed, sfcLen, rhoMilli int64, failFirst bool) {
		if sfcLen < 1 {
			sfcLen = 1
		}
		if sfcLen > 10 {
			sfcLen = sfcLen%10 + 1
		}
		rho := float64((rhoMilli%1000+1000)%1000+1) / 1000.0
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.NewDefaultConfig()
		cfg.Expectation = rho
		net := cfg.Network(rng)
		req := cfg.RequestWithLength(rng, 0, int(sfcLen), net.Catalog().Size())
		workload.PlacePrimariesRandom(net, req, rng)
		inst := NewInstance(net, req, Params{L: cfg.HopBound})

		stages := []FallbackStage{
			Stage(NewHeuristicSolver(HeuristicOptions{}), 0),
			Stage(NewGreedySolver(), 0),
		}
		if failFirst {
			stages = append([]FallbackStage{Stage(failingSolver("Broken"), 0)}, stages...)
		}
		chain := Fallback("fuzz", stages...)
		res, err := chain.Solve(inst, rng)
		if err != nil {
			if !errors.Is(err, ErrFallbackExhausted) {
				t.Fatalf("chain error does not wrap ErrFallbackExhausted: %v", err)
			}
			return
		}
		if res == nil {
			t.Fatal("nil result without error")
		}
		if res.ServedBy == "" {
			t.Fatal("result not stage-tagged")
		}
		if res.Violated {
			t.Fatal("chain served a capacity-violating result")
		}
		if res.Reliability < 0 || res.Reliability > 1+1e-9 {
			t.Fatalf("reliability %v out of [0,1]", res.Reliability)
		}
	})
}
