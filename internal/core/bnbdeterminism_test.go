package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ilp"
	"repro/internal/workload"
)

// fig1Len14Instance reproduces instance i of the BenchmarkFig1/SFCLen14 pool
// (same config, same seeding discipline as bench_test.go's instancePool).
func fig1Len14Instance(i int) *Instance {
	cfg := workload.NewDefaultConfig()
	rng := rand.New(rand.NewSource(1014 + int64(i)))
	net := cfg.Network(rng)
	_ = cfg.Request(rng, i, net.Catalog().Size())
	req := cfg.RequestWithLength(rng, i, 14, net.Catalog().Size())
	workload.PlacePrimariesRandom(net, req, rng)
	return NewInstance(net, req, Params{L: cfg.HopBound})
}

// TestSolveILPBitIdenticalAcrossWorkers pins the deterministic parallel
// component driver: SolveILP on hard Fig1/SFCLen14 instances must return
// bit-identical results (placements, objective bits, node accounting,
// proven-ness) at every BnBWorkers count. Run under -race (make test-race)
// this also proves the component workers share no mutable state.
func TestSolveILPBitIdenticalAcrossWorkers(t *testing.T) {
	for i := 0; i < 3; i++ {
		inst := fig1Len14Instance(i)
		base, err := SolveILP(inst, ILPOptions{Timeout: NoTimeout, BnBWorkers: 1})
		if err != nil {
			t.Fatalf("instance %d workers=1: %v", i, err)
		}
		if inst.TotalItems() == 0 {
			continue
		}
		for _, w := range []int{2, 8} {
			got, err := SolveILP(inst, ILPOptions{Timeout: NoTimeout, BnBWorkers: w})
			if err != nil {
				t.Fatalf("instance %d workers=%d: %v", i, w, err)
			}
			if math.Float64bits(got.Objective) != math.Float64bits(base.Objective) {
				t.Errorf("instance %d workers=%d: objective %x != %x", i, w,
					math.Float64bits(got.Objective), math.Float64bits(base.Objective))
			}
			if math.Float64bits(got.Reliability) != math.Float64bits(base.Reliability) {
				t.Errorf("instance %d workers=%d: reliability bits differ", i, w)
			}
			if got.Nodes != base.Nodes || got.Proven != base.Proven {
				t.Errorf("instance %d workers=%d: nodes/proven %d/%v != %d/%v", i, w,
					got.Nodes, got.Proven, base.Nodes, base.Proven)
			}
			if !reflect.DeepEqual(got.PerBin, base.PerBin) {
				t.Errorf("instance %d workers=%d: placements differ", i, w)
			}
			if !reflect.DeepEqual(got.Counts, base.Counts) {
				t.Errorf("instance %d workers=%d: counts differ", i, w)
			}
		}
	}
}

// incumbentStep is one improvement of the generic B&B incumbent: the
// committed node sequence number and the new objective's bits.
type incumbentStep struct {
	node int
	bits uint64
}

// TestGenericBnBBitIdenticalAcrossWorkers pins the speculative round-based
// driver in internal/ilp: the explored tree, every statistic, the returned
// point, and the full incumbent trajectory must be identical at workers
// 1, 2, and 8. Instances are aggregated augmentation models small enough for
// the generic 0/1 search (see crosscheck_test.go for why big ones are not).
func TestGenericBnBBitIdenticalAcrossWorkers(t *testing.T) {
	cfg := workload.NewDefaultConfig()
	cfg.ResidualFraction = 1.0 / 8
	checked := 0
	for seed := int64(0); seed < 40 && checked < 8; seed++ {
		rng := rand.New(rand.NewSource(500 + seed))
		net := cfg.Network(rng)
		req := cfg.RequestWithLength(rng, 0, 3, net.Catalog().Size())
		workload.PlacePrimariesRandom(net, req, rng)
		inst := NewInstance(net, req, Params{L: 1})
		if inst.TotalItems() == 0 || inst.TotalItems() > 14 {
			continue
		}
		checked++

		bm := buildModel(inst, ObjectiveLogGain)
		run := func(workers int) (*ilp.Result, []incumbentStep) {
			var trail []incumbentStep
			r, err := ilp.Solve(bm.m, bm.intVars, ilp.Options{
				MaxNodes: 20000,
				Workers:  workers,
				TraceIncumbent: func(node int, obj float64) {
					trail = append(trail, incumbentStep{node: node, bits: math.Float64bits(obj)})
				},
			})
			if err != nil {
				t.Fatalf("seed %d workers=%d: %v", seed, workers, err)
			}
			return r, trail
		}

		base, baseTrail := run(1)
		for _, w := range []int{2, 8} {
			got, gotTrail := run(w)
			if got.Status != base.Status || got.Proven != base.Proven {
				t.Errorf("seed %d workers=%d: status %v/%v != %v/%v", seed, w,
					got.Status, got.Proven, base.Status, base.Proven)
			}
			if math.Float64bits(got.Objective) != math.Float64bits(base.Objective) {
				t.Errorf("seed %d workers=%d: objective bits differ", seed, w)
			}
			if got.Nodes != base.Nodes || got.Depth != base.Depth ||
				got.Pivots != base.Pivots || got.Claimed != base.Claimed ||
				got.WarmHits != base.WarmHits || got.ColdRuns != base.ColdRuns ||
				got.EtaRefreshes != base.EtaRefreshes {
				t.Errorf("seed %d workers=%d: accounting differs: %+v vs %+v", seed, w, got, base)
			}
			if len(got.X) != len(base.X) {
				t.Fatalf("seed %d workers=%d: X length differs", seed, w)
			}
			for j := range got.X {
				if math.Float64bits(got.X[j]) != math.Float64bits(base.X[j]) {
					t.Errorf("seed %d workers=%d: X[%d] bits differ", seed, w, j)
					break
				}
			}
			if !reflect.DeepEqual(gotTrail, baseTrail) {
				t.Errorf("seed %d workers=%d: incumbent trajectory %v != %v", seed, w, gotTrail, baseTrail)
			}
		}
	}
	if checked < 5 {
		t.Fatalf("only %d instances were small enough; loosen the sampler", checked)
	}
}
