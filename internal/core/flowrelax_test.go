package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
	"repro/internal/workload"
)

// TestFlowRelaxMatchesSimplexLP is the load-bearing correctness check for
// the polymatroid-greedy node relaxation: on random instances (unrestricted
// box) its optimum must equal the simplex solution of the aggregated LP
// model to tight tolerance.
func TestFlowRelaxMatchesSimplexLP(t *testing.T) {
	cfg := workload.NewDefaultConfig()
	cfg.SFCLenMin, cfg.SFCLenMax = 3, 12
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		net := cfg.Network(rng)
		req := cfg.Request(rng, 0, net.Catalog().Size())
		workload.PlacePrimariesRandom(net, req, rng)
		inst := NewInstance(net, req, Params{L: 1})

		for _, obj := range []Objective{ObjectiveLogGain, ObjectivePaperCost} {
			fr := newFlowRelax(inst, obj)
			lo := make([]int, len(inst.Positions))
			hi := make([]int, len(inst.Positions))
			for i, p := range inst.Positions {
				hi[i] = p.K
			}
			got, counts, _, feasible := fr.solve(lo, hi)
			if !feasible {
				t.Fatalf("seed %d: unrestricted box infeasible", seed)
			}
			bm := buildModel(inst, obj)
			sol := bm.m.Solve()
			if sol.Status != lp.Optimal {
				t.Fatalf("seed %d: simplex status %v", seed, sol.Status)
			}
			scale := math.Max(1, math.Abs(sol.Objective))
			if math.Abs(got-sol.Objective) > 1e-6*scale {
				t.Fatalf("seed %d obj %v: flow %v vs simplex %v (counts %v)",
					seed, obj, got, sol.Objective, counts)
			}
		}
	}
}

// TestFlowRelaxRespectsBox checks lower/upper bound handling.
func TestFlowRelaxRespectsBox(t *testing.T) {
	inst := smallInstance(1.0)
	fr := newFlowRelax(inst, ObjectiveLogGain)
	lo := []int{2, 0}
	hi := []int{3, 1}
	_, counts, _, feasible := fr.solve(lo, hi)
	if !feasible {
		t.Fatal("box should be feasible")
	}
	if counts[0] < 2-1e-9 || counts[0] > 3+1e-9 {
		t.Fatalf("count 0 = %v outside [2,3]", counts[0])
	}
	if counts[1] > 1+1e-9 {
		t.Fatalf("count 1 = %v above 1", counts[1])
	}
}

// TestFlowRelaxBoxMatchesSimplex compares the boxed relaxation against the
// simplex LP with explicit box rows on random instances.
func TestFlowRelaxBoxMatchesSimplex(t *testing.T) {
	cfg := workload.NewDefaultConfig()
	cfg.SFCLenMin, cfg.SFCLenMax = 3, 8
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		net := cfg.Network(rng)
		req := cfg.Request(rng, 0, net.Catalog().Size())
		workload.PlacePrimariesRandom(net, req, rng)
		inst := NewInstance(net, req, Params{L: 1})
		fr := newFlowRelax(inst, ObjectiveLogGain)

		lo := make([]int, len(inst.Positions))
		hi := make([]int, len(inst.Positions))
		for i, p := range inst.Positions {
			hi[i] = p.K
			if p.K > 0 && rng.Intn(2) == 0 {
				hi[i] = rng.Intn(p.K + 1)
			}
			if hi[i] > 0 && rng.Intn(3) == 0 {
				lo[i] = rng.Intn(hi[i])
			}
		}

		got, _, _, feasible := fr.solve(lo, hi)
		bm := buildModel(inst, ObjectiveLogGain)
		for i, p := range inst.Positions {
			var terms []lp.Term
			for b := range p.Bins {
				terms = append(terms, lp.Term{Var: bm.y[i][b], Coeff: 1})
			}
			if len(terms) == 0 {
				continue
			}
			if lo[i] > 0 {
				bm.m.AddConstr(terms, lp.GE, float64(lo[i]), "lo")
			}
			if hi[i] < p.K {
				bm.m.AddConstr(terms, lp.LE, float64(hi[i]), "hi")
			}
		}
		sol := bm.m.Solve()
		switch sol.Status {
		case lp.Infeasible:
			if feasible {
				t.Fatalf("seed %d: flow feasible but simplex infeasible", seed)
			}
		case lp.Optimal:
			if !feasible {
				t.Fatalf("seed %d: flow infeasible but simplex optimal", seed)
			}
			scale := math.Max(1, math.Abs(sol.Objective))
			if math.Abs(got-sol.Objective) > 1e-6*scale {
				t.Fatalf("seed %d: flow %v vs simplex %v", seed, got, sol.Objective)
			}
		default:
			t.Fatalf("seed %d: simplex status %v", seed, sol.Status)
		}
	}
}

func TestPackCountsBasics(t *testing.T) {
	inst := smallInstance(1.0)
	// residuals: node0=700, node1=600; demands: a=300, b=400.
	// counts (2 a's, 1 b): a+a in node0 (600<=700), b in node1 (400<=600). OK.
	pb, conclusive := packCounts(inst, []int{2, 1}, packBudget)
	if pb == nil || !conclusive {
		t.Fatalf("feasible counts not packed: %v %v", pb, conclusive)
	}
	// counts (4, 0): K=4 but capacity 700+600 fits 2+2=4 a's? node0: 2*300,
	// node1: 2*300=600<=600. Packable.
	if pb, _ := packCounts(inst, []int{4, 0}, packBudget); pb == nil {
		t.Fatal("4 a-instances should pack")
	}
	// counts (3, 2): 3*300+2*400 = 1700 > 1300 total. Unpackable.
	pb, conclusive = packCounts(inst, []int{3, 2}, packBudget)
	if pb != nil || !conclusive {
		t.Fatalf("infeasible counts packed or inconclusive: %v %v", pb, conclusive)
	}
}

func TestPackCountsWitnessIsValid(t *testing.T) {
	cfg := workload.NewDefaultConfig()
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		net := cfg.Network(rng)
		req := cfg.Request(rng, 0, net.Catalog().Size())
		workload.PlacePrimariesRandom(net, req, rng)
		inst := NewInstance(net, req, Params{L: 1})
		// Pack the heuristic's counts (known feasible).
		res, err := SolveHeuristic(inst, HeuristicOptions{})
		if err != nil {
			t.Fatal(err)
		}
		pb, conclusive := packCounts(inst, res.Counts, packBudget)
		if pb == nil {
			if !conclusive {
				continue // budget blown; nothing to verify
			}
			t.Fatalf("seed %d: known-feasible counts declared unpackable", seed)
		}
		// Witness must respect bins and capacities.
		load := make(map[int]float64)
		for i, m := range pb {
			total := 0
			allowed := make(map[int]bool)
			for _, u := range inst.Positions[i].Bins {
				allowed[u] = true
			}
			for u, c := range m {
				if !allowed[u] {
					t.Fatalf("seed %d: witness uses forbidden bin %d", seed, u)
				}
				total += c
				load[u] += float64(c) * inst.Positions[i].Func.Demand
			}
			if total != res.Counts[i] {
				t.Fatalf("seed %d: witness count %d != %d", seed, total, res.Counts[i])
			}
		}
		for u, l := range load {
			if l > inst.Residual[u]+1e-6 {
				t.Fatalf("seed %d: witness overloads bin %d: %v > %v", seed, u, l, inst.Residual[u])
			}
		}
	}
}

func TestSplitComponentsDisjointAndComplete(t *testing.T) {
	cfg := workload.NewDefaultConfig()
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		net := cfg.Network(rng)
		req := cfg.RequestWithLength(rng, 0, 12, net.Catalog().Size())
		workload.PlacePrimariesRandom(net, req, rng)
		inst := NewInstance(net, req, Params{L: 1})
		groups := splitComponents(inst)
		seen := make(map[int]bool)
		binOwner := make(map[int]int)
		for gi, g := range groups {
			for _, i := range g {
				if seen[i] {
					t.Fatalf("position %d in two groups", i)
				}
				seen[i] = true
				for _, u := range inst.Positions[i].Bins {
					if owner, ok := binOwner[u]; ok && owner != gi {
						t.Fatalf("bin %d shared across groups %d and %d", u, owner, gi)
					}
					binOwner[u] = gi
				}
			}
		}
		if len(seen) != len(inst.Positions) {
			t.Fatalf("groups cover %d of %d positions", len(seen), len(inst.Positions))
		}
	}
}
