package reliability

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumulatedBase(t *testing.T) {
	if got := Accumulated(0.8, 0); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("R(0.8,0)=%v, want 0.8", got)
	}
	// one backup: 1 - 0.2^2 = 0.96
	if got := Accumulated(0.8, 1); math.Abs(got-0.96) > 1e-12 {
		t.Fatalf("R(0.8,1)=%v, want 0.96", got)
	}
	// r=1: always 1
	if got := Accumulated(1, 5); got != 1 {
		t.Fatalf("R(1,5)=%v, want 1", got)
	}
}

func TestAccumulatedMonotoneInK(t *testing.T) {
	for _, r := range []float64{0.1, 0.5, 0.9, 0.99} {
		prev := 0.0
		for k := 0; k < 20; k++ {
			cur := Accumulated(r, k)
			if cur == 1 && prev == 1 {
				break // saturated to 1.0 in float64; monotonicity holds trivially
			}
			if cur <= prev {
				t.Fatalf("R(%v,%d)=%v not increasing (prev %v)", r, k, cur, prev)
			}
			if cur > 1 {
				t.Fatalf("R(%v,%d)=%v exceeds 1", r, k, cur)
			}
			prev = cur
		}
	}
}

func TestIncrementSumsToAccumulated(t *testing.T) {
	for _, r := range []float64{0.3, 0.8, 0.95} {
		sum := 0.0
		for k := 0; k <= 10; k++ {
			sum += Increment(r, k)
		}
		if math.Abs(sum-Accumulated(r, 10)) > 1e-12 {
			t.Fatalf("Σ ΔR != R for r=%v: %v vs %v", r, sum, Accumulated(r, 10))
		}
	}
}

// Lemma 4.1: item costs are positive and strictly increasing in k.
func TestItemCostLemma41(t *testing.T) {
	for _, r := range []float64{0.55, 0.7, 0.85, 0.9} {
		prev := math.Inf(-1)
		for k := 0; k <= 15; k++ {
			c := ItemCost(r, k)
			if c <= 0 && k > 0 {
				t.Fatalf("cost(%v,%d)=%v not positive", r, k, c)
			}
			if c <= prev {
				t.Fatalf("cost(%v,%d)=%v not increasing (prev %v)", r, k, c, prev)
			}
			prev = c
		}
	}
}

// Eq. (16): cost(k) - cost(k-1) = log(1/(1-r)) exactly, for k >= 2.
func TestItemCostDifferenceConstant(t *testing.T) {
	r := 0.8
	want := math.Log(1 / (1 - r))
	for k := 2; k <= 10; k++ {
		diff := ItemCost(r, k) - ItemCost(r, k-1)
		if math.Abs(diff-want) > 1e-9 {
			t.Fatalf("cost diff at k=%d: %v, want %v", k, diff, want)
		}
	}
}

func TestLogGainDecreasing(t *testing.T) {
	for _, r := range []float64{0.55, 0.8, 0.95} {
		prev := math.Inf(1)
		for k := 1; k <= 20; k++ {
			g := LogGain(r, k)
			if g == 0 && Accumulated(r, k-1) == 1 {
				break // saturated: R already indistinguishable from 1 in float64
			}
			if g <= 0 {
				t.Fatalf("gain(%v,%d)=%v not positive", r, k, g)
			}
			if g >= prev {
				t.Fatalf("gain(%v,%d)=%v not decreasing (prev %v)", r, k, g, prev)
			}
			prev = g
		}
	}
}

func TestLogGainTelescopes(t *testing.T) {
	r := 0.7
	sum := math.Log(Accumulated(r, 0))
	for k := 1; k <= 8; k++ {
		sum += LogGain(r, k)
	}
	if math.Abs(sum-math.Log(Accumulated(r, 8))) > 1e-12 {
		t.Fatalf("telescoped %v vs direct %v", sum, math.Log(Accumulated(r, 8)))
	}
}

func TestChainReliability(t *testing.T) {
	rs := []float64{0.8, 0.9}
	ks := []int{1, 0}
	want := 0.96 * 0.9
	if got := ChainReliability(rs, ks); math.Abs(got-want) > 1e-12 {
		t.Fatalf("chain=%v, want %v", got, want)
	}
	if got := PrimaryChainReliability(rs); math.Abs(got-0.72) > 1e-12 {
		t.Fatalf("primary chain=%v, want 0.72", got)
	}
}

func TestChainReliabilityLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ChainReliability([]float64{0.8}, []int{0, 1})
}

func TestBudget(t *testing.T) {
	if Budget(1) != 0 {
		t.Fatalf("Budget(1)=%v, want 0", Budget(1))
	}
	if math.Abs(Budget(math.Exp(-2))-2) > 1e-12 {
		t.Fatalf("Budget(e^-2)=%v, want 2", Budget(math.Exp(-2)))
	}
	for _, bad := range []float64{0, -0.5, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Budget(%v) should panic", bad)
				}
			}()
			Budget(bad)
		}()
	}
}

func TestMeetsExpectation(t *testing.T) {
	if !MeetsExpectation(0.95, 0.95) {
		t.Fatal("equal should meet")
	}
	if !MeetsExpectation(0.95-1e-15, 0.95) {
		t.Fatal("tiny float slack should meet")
	}
	if MeetsExpectation(0.90, 0.95) {
		t.Fatal("0.90 should not meet 0.95")
	}
}

func TestBackupsToReach(t *testing.T) {
	// r=0.8, target 0.96 → exactly 1 backup.
	if k := BackupsToReach(0.8, 0.96); k != 1 {
		t.Fatalf("k=%d, want 1", k)
	}
	// target below r → 0 backups.
	if k := BackupsToReach(0.8, 0.5); k != 0 {
		t.Fatalf("k=%d, want 0", k)
	}
	// unreachable
	if k := BackupsToReach(0.8, 1.0); k != -1 {
		t.Fatalf("k=%d, want -1", k)
	}
	if k := BackupsToReach(1.0, 0.999); k != 0 {
		t.Fatalf("r=1 needs no backups, got %d", k)
	}
	if k := BackupsToReach(0.5, 0); k != 0 {
		t.Fatalf("target 0 needs no backups, got %d", k)
	}
	if k := BackupsToReach(0.5, 2); k != -1 {
		t.Fatalf("target > 1 unreachable, got %d", k)
	}
}

func TestBackupsToReachIsMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		r := 0.05 + 0.9*rng.Float64()
		target := rng.Float64() * 0.9999
		k := BackupsToReach(r, target)
		if k < 0 {
			t.Fatalf("reachable target reported unreachable: r=%v target=%v", r, target)
		}
		if Accumulated(r, k) < target-1e-12 {
			t.Fatalf("k=%d insufficient: R=%v < %v", k, Accumulated(r, k), target)
		}
		if k > 0 && Accumulated(r, k-1) >= target {
			t.Fatalf("k=%d not minimal: R(k-1)=%v >= %v", k, Accumulated(r, k-1), target)
		}
	}
}

func TestInvalidReliabilityPanics(t *testing.T) {
	for _, bad := range []float64{0, -0.1, 1.0001, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Accumulated(%v,·) should panic", bad)
				}
			}()
			Accumulated(bad, 1)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative k should panic")
		}
	}()
	Accumulated(0.5, -1)
}

// Property: chain reliability never decreases when any backup count grows.
func TestChainMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		rs := make([]float64, n)
		ks := make([]int, n)
		for i := range rs {
			rs[i] = 0.1 + 0.89*rng.Float64()
			ks[i] = rng.Intn(4)
		}
		base := ChainReliability(rs, ks)
		i := rng.Intn(n)
		ks[i]++
		return ChainReliability(rs, ks) >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
