package reliability_test

import (
	"fmt"

	"repro/internal/reliability"
)

// One primary plus two backups of a 0.8-reliable VNF.
func ExampleAccumulated() {
	fmt.Printf("%.3f %.3f %.3f\n",
		reliability.Accumulated(0.8, 0),
		reliability.Accumulated(0.8, 1),
		reliability.Accumulated(0.8, 2))
	// Output: 0.800 0.960 0.992
}

// How many backups does a 0.85-reliable function need to reach 0.999?
func ExampleBackupsToReach() {
	fmt.Println(reliability.BackupsToReach(0.85, 0.999))
	// Output: 3
}

// The paper's budget transform C = -log ρ.
func ExampleBudget() {
	fmt.Printf("%.4f\n", reliability.Budget(0.99))
	// Output: 0.0101
}
