// Package reliability implements the reliability calculus of Section 3 of
// the paper: accumulated VNF reliability under redundant instance placement,
// the item cost function of Eq. (3)/(4), the log-gain weights the exact ILP
// objective uses, and the budget transform C = -log ρ.
//
// Throughout, logarithms are natural; the paper's analysis is base-agnostic
// (Eq. (2) holds for any base), and using one base consistently preserves
// every comparison.
package reliability

import (
	"fmt"
	"math"
)

// Accumulated returns R(r, k) = 1 - (1-r)^(k+1): the reliability of a
// function with one primary instance and k secondary instances, each of
// reliability r (the paper's identical-reliability assumption, Eq. (1)).
func Accumulated(r float64, k int) float64 {
	checkReliability(r)
	if k < 0 {
		panic(fmt.Sprintf("reliability: negative backup count %d", k))
	}
	return 1 - math.Pow(1-r, float64(k+1))
}

// Increment returns ΔR(r,k) = R(r,k) - R(r,k-1) = r·(1-r)^k, the reliability
// added by the k-th secondary instance (k >= 1) or by the primary itself
// (k = 0, ΔR = r).
func Increment(r float64, k int) float64 {
	checkReliability(r)
	if k < 0 {
		panic(fmt.Sprintf("reliability: negative backup count %d", k))
	}
	return r * math.Pow(1-r, float64(k))
}

// ItemCost is the paper's cost function (Eq. 3/4):
//
//	c(f, k, ·) = -log(R(f,k) - R(f,k-1)) = -log(r·(1-r)^k)
//
// for k >= 1, and c(f, 0, ·) = -log R(f,0) = -log r for the primary item.
// Lemma 4.1: costs are positive (for r < 1/e·… strictly, see note) and
// strictly increasing in k. For r close to 1 the k=0 cost approaches 0 and
// increments approach +Inf; callers must treat r == 1 as "no backups useful".
func ItemCost(r float64, k int) float64 {
	checkReliability(r)
	if k < 0 {
		panic(fmt.Sprintf("reliability: negative item index %d", k))
	}
	if k == 0 {
		return -math.Log(r)
	}
	return -math.Log(Increment(r, k))
}

// LogGain returns w(r,k) = log R(r,k) - log R(r,k-1) > 0 for k >= 1: the
// improvement of the k-th secondary instance in log-reliability space. Gains
// are strictly decreasing in k (diminishing returns), which makes prefix
// placements optimal — the exact-objective analogue of Lemma 4.1/4.2.
func LogGain(r float64, k int) float64 {
	checkReliability(r)
	if k < 1 {
		panic(fmt.Sprintf("reliability: LogGain needs k >= 1, got %d", k))
	}
	// log(R_k) - log(R_{k-1}) computed stably via log1p where possible.
	q := math.Pow(1-r, float64(k))
	// R_k = 1 - q(1-r), R_{k-1} = 1 - q
	rk := 1 - q*(1-r)
	rk1 := 1 - q
	if rk1 <= 0 {
		panic("reliability: zero accumulated reliability")
	}
	return math.Log(rk) - math.Log(rk1)
}

// ChainReliability returns Π_i R(r_i, k_i) for a service function chain with
// per-function reliabilities rs and backup counts ks (len(ks) == len(rs)).
func ChainReliability(rs []float64, ks []int) float64 {
	if len(rs) != len(ks) {
		panic(fmt.Sprintf("reliability: %d reliabilities but %d backup counts", len(rs), len(ks)))
	}
	u := 1.0
	for i, r := range rs {
		u *= Accumulated(r, ks[i])
	}
	return u
}

// PrimaryChainReliability returns Π_i r_i, the reliability of the chain with
// primaries only.
func PrimaryChainReliability(rs []float64) float64 {
	u := 1.0
	for _, r := range rs {
		checkReliability(r)
		u *= r
	}
	return u
}

// SurvivorReliability returns the attained reliability of one chain position
// with s surviving instances (primary and secondaries counted together):
// 1 - (1-r)^s. Unlike Accumulated, s counts total live instances — s = 0
// (every replica destroyed) yields reliability 0, the partial-failure regime
// a live node crash produces.
func SurvivorReliability(r float64, s int) float64 {
	checkReliability(r)
	if s < 0 {
		panic(fmt.Sprintf("reliability: negative survivor count %d", s))
	}
	if s == 0 {
		return 0
	}
	return 1 - math.Pow(1-r, float64(s))
}

// ChainSurvivorReliability returns u_j = Π_i (1 - (1-r_i)^s_i) for a chain
// whose position i retains s_i live instances after failures. Any position
// with zero survivors zeroes the chain (the function cannot run at all).
func ChainSurvivorReliability(rs []float64, survivors []int) float64 {
	if len(rs) != len(survivors) {
		panic(fmt.Sprintf("reliability: %d reliabilities but %d survivor counts", len(rs), len(survivors)))
	}
	u := 1.0
	for i, r := range rs {
		s := SurvivorReliability(r, survivors[i])
		if s == 0 {
			return 0
		}
		u *= s
	}
	return u
}

// Budget converts a reliability expectation ρ into the paper's cost budget
// C = -log ρ. ρ = 1 gives C = 0 (expectation only met by perfect
// reliability); ρ must lie in (0, 1].
func Budget(rho float64) float64 {
	if rho <= 0 || rho > 1 || math.IsNaN(rho) {
		panic(fmt.Sprintf("reliability: expectation %v out of (0,1]", rho))
	}
	return -math.Log(rho)
}

// MeetsExpectation reports whether achieved reliability u satisfies the
// expectation ρ up to a relative tolerance that absorbs float rounding.
func MeetsExpectation(u, rho float64) bool {
	return u >= rho*(1-1e-12)
}

// BackupsToReach returns the minimum k such that R(r,k) >= target, or -1 if
// the target is unreachable for this r (target >= 1 with r < 1 needs k = ∞).
// Used by capacity-planning examples.
func BackupsToReach(r, target float64) int {
	checkReliability(r)
	if target <= 0 {
		return 0
	}
	if target > 1 {
		return -1
	}
	if r >= 1 {
		return 0
	}
	if target >= 1 {
		return -1
	}
	// 1 - (1-r)^(k+1) >= target  ⇔  (k+1)·log(1-r) <= log(1-target)
	k := math.Ceil(math.Log(1-target)/math.Log(1-r)) - 1
	if k < 0 {
		k = 0
	}
	return int(k)
}

func checkReliability(r float64) {
	if r <= 0 || r > 1 || math.IsNaN(r) {
		panic(fmt.Sprintf("reliability: value %v out of (0,1]", r))
	}
}
