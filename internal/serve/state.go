// Package serve is the online augmentation service: a long-running HTTP/JSON
// front door over the solver stack. Its network state is multi-versioned
// (MVCC): the residual-capacity ledger lives in immutable copy-on-write
// epochs behind one atomic pointer, so micro-batchers pin an epoch and solve
// with no lock held, and commits install a successor epoch under a total
// order with optimistic conflict detection. Placement records live in
// sharded maps beside the ledger, an LRU cache keyed by epoch hash reuses
// solver results, and an optional write-ahead log (internal/serve/wal) makes
// every installed epoch durable. The HTTP surface is
//
//	POST /v1/augment   admit a request and place its secondaries
//	POST /v1/release   tear a placed request down, restoring capacity
//	POST /v1/node      apply a node health transition (down/up/degraded)
//	GET  /v1/alerts    active alerts + recent transitions (watchdog view)
//	GET  /v1/tenants   per-tenant quota, queue, and admission statistics
//	GET  /v1/state     residual ledger, epoch, placement count, WAL status
//	GET  /v1/healthz   liveness + drain status
//
// Request/response schemas, error codes, and backpressure semantics are
// documented in API.md. Determinism: identical request streams produce
// identical placements at any worker count and any batcher count (see the
// determinism notes on Options and the selftest in cmd/augmentd).
package serve

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/mec"
	"repro/internal/serve/wal"
)

// numShards is the placement-record shard count. Records are spread by
// request ID so concurrent /v1/release and /v1/state lookups contend on a
// shard, not on one map lock; the residual ledger itself is lock-free to
// read (immutable epochs behind an atomic pointer).
const numShards = 16

// placed is the per-request record kept for the lifetime of a placement.
// A node failure rewrites the record in place: destroyed primaries become -1,
// destroyed secondaries leave their host lists, the node's perNode share is
// dropped (the capacity is gone, not releasable), and Reliability/Met are
// recomputed from the surviving replicas.
type placed struct {
	ID          int
	SFC         []int
	Expectation float64
	Source      int
	Destination int
	Primaries   []int
	Secondaries [][]int
	Reliability float64
	Met         bool
	Algorithm   string
	ServedBy    string
	// Tenant is the admission-economics principal the request was accounted
	// against (the resolved name — unknown IDs map to the default tenant).
	Tenant string
	// perNode is the exact MHz consumed per cloudlet (primaries +
	// secondaries), measured off the ledger at commit time; releasing the
	// request returns exactly these amounts.
	perNode map[int]float64
}

// placementShard is one bucket of the sharded placement map.
type placementShard struct {
	mu sync.RWMutex
	m  map[int]*placed
}

// epochLedger is one immutable MVCC version of the residual ledger. Once
// installed it is never mutated: committers build a successor vector and
// swap the State's pointer, so any number of readers and solvers can use a
// pinned epoch without synchronization.
type epochLedger struct {
	seq  uint64    // install counter; 0 is the boot epoch
	res  []float64 // residual MHz per AP, frozen
	hash uint64    // canonical FNV-1a hash of res
}

// State is the service's view of the network: the epoch-versioned residual
// ledger plus every live placement. Epoch installs (batch commits, releases,
// restores) are serialized by commitMu; everything else reads lock-free.
type State struct {
	base     *mec.Network // immutable topology, capacities, catalog
	cur      atomic.Pointer[epochLedger]
	commitMu sync.Mutex

	// walMu orders WAL file writes (group commit): installLocked acquires it
	// while still holding commitMu — so append order always matches epoch
	// order — and flushWAL releases it after the fsync. Committers drop
	// commitMu before fsyncing, which lets the next batch execute and install
	// while this one's durability I/O is in flight. Lock order is strictly
	// commitMu → walMu.
	walMu sync.Mutex

	shards [numShards]placementShard

	// wal, when non-nil, makes installs durable. sinceSnapshot counts
	// entries since the last checkpoint; at snapshotEvery the install path
	// captures a snapshot and truncates the log.
	wal           *wal.Log
	snapshotEvery uint64
	sinceSnapshot uint64

	// healthMu guards the node health sets. Writers hold commitMu too —
	// health transitions are epoch mutations — so readers see sets consistent
	// with some installed epoch.
	healthMu sync.RWMutex
	down     map[int]bool
	degraded map[int]bool

	// tenantSnap, when set by the owning Service, contributes the per-tenant
	// token-bucket state journaled with every WAL entry and snapshot, so a
	// restart resumes quota enforcement. tenantQuota holds the last journaled
	// state recovered by NewStateFromWAL.
	tenantSnap  func() []wal.TenantQuota
	tenantQuota []wal.TenantQuota
}

// walTicket is one install's pending durability work: the WAL entry to
// append and, at checkpoint cadence, the snapshot to write. The issuing
// installLocked call acquires walMu; flushWAL performs the file I/O and
// releases it. Between the two, the epoch is visible but not yet durable —
// callers must not answer clients until flushWAL returns.
type walTicket struct {
	entry wal.Entry
	snap  *wal.Snapshot
}

// NewState wraps a network as serving state. The network's residual ledger
// at this moment becomes epoch 0; the service never mutates the network
// itself afterwards (epochs are copy-on-write forks).
func NewState(net *mec.Network) *State {
	s := &State{base: net, down: make(map[int]bool), degraded: make(map[int]bool)}
	for i := range s.shards {
		s.shards[i].m = make(map[int]*placed)
	}
	res := net.ResidualSnapshot()
	s.cur.Store(&epochLedger{seq: 0, res: res, hash: hashResiduals(res)})
	return s
}

// attachWAL arms the durability path: every installed epoch is appended to l
// and a snapshot checkpoint is written every snapshotEvery entries.
func (s *State) attachWAL(l *wal.Log, snapshotEvery uint64) {
	if snapshotEvery == 0 {
		snapshotEvery = 256
	}
	s.wal = l
	s.snapshotEvery = snapshotEvery
}

func (s *State) shard(id int) *placementShard {
	if id < 0 {
		id = -id
	}
	return &s.shards[id%numShards]
}

// pin returns the current epoch. The returned ledger is immutable; batchers
// hold it across an entire lock-free solve phase.
func (s *State) pin() *epochLedger { return s.cur.Load() }

// forkNet returns a private mutable network view seeded with e's residuals,
// sharing the immutable topology/catalog/neighborhood-memo with the base.
func (s *State) forkNet(e *epochLedger) *mec.Network { return s.base.Fork(e.res) }

// hashResiduals returns the canonical FNV-1a hash of a residual vector. Two
// ledgers with bit-identical residuals hash equally, which is what makes
// cached solver results transferable between epochs and lets committers
// detect cross-batch conflicts by comparing one word.
func hashResiduals(res []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range res {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Epoch returns the current epoch sequence number (bumped once per installed
// transition: a batch commit with admissions, a release, or a restore).
// Exposed on /v1/state so operators can correlate cache invalidations and
// WAL entries with ledger changes.
func (s *State) Epoch() uint64 { return s.pin().seq }

// Hash returns the canonical hash of the current epoch's residual ledger.
func (s *State) Hash() uint64 { return s.pin().hash }

// installOp describes one epoch install beyond its ledger transition: the
// placements it admits or releases, and — for node health transitions — the
// triggering event plus the placement records the failure rewrote. Everything
// here is journaled, so WAL replay and the live process agree on
// failed-instance accounting.
type installOp struct {
	admits   []*placed
	releases []int
	updates  []*placed // records rewritten in place by a health transition
	health   *wal.HealthRecord
}

// installLocked publishes a successor epoch — stores the new ledger pointer
// and records admitted placements — and returns the install's durability
// ticket (nil without a WAL). Callers must hold commitMu, may then release
// it, and must pass the ticket to flushWAL before answering clients: the
// epoch becomes visible to new pins immediately (so the next batch can
// execute against it while this one's fsync is in flight — group commit),
// but responses wait for durability.
func (s *State) installLocked(res []float64, hash uint64, op installOp) *walTicket {
	prev := s.pin()
	next := &epochLedger{seq: prev.seq + 1, res: res, hash: hash}
	s.cur.Store(next)
	for _, p := range op.admits {
		sh := s.shard(p.ID)
		sh.mu.Lock()
		sh.m[p.ID] = p
		sh.mu.Unlock()
	}
	metrics.epochSeq.Set(float64(next.seq))
	metrics.epochAdvances.Inc()
	if s.wal == nil {
		return nil
	}
	t := &walTicket{entry: wal.Entry{
		Epoch:    next.seq,
		Hash:     fmt.Sprintf("%016x", hash),
		Residual: res,
		Releases: op.releases,
		Health:   op.health,
	}}
	if s.tenantSnap != nil {
		t.entry.Tenants = s.tenantSnap()
	}
	for _, p := range op.admits {
		t.entry.Admits = append(t.entry.Admits, toWALRecord(p))
	}
	if op.health != nil {
		// Health entries carry the rewritten records and the full
		// post-transition health sets; callers hold commitMu, so the sets
		// read here are exactly the ones this install published.
		for _, p := range op.updates {
			t.entry.Updates = append(t.entry.Updates, toWALRecord(p))
		}
		t.entry.Down = s.DownNodes()
		t.entry.Degraded = s.DegradedNodes()
	}
	s.sinceSnapshot++
	if s.sinceSnapshot >= s.snapshotEvery {
		t.snap = s.captureSnapshotLocked(next)
		s.sinceSnapshot = 0
	}
	// Taken under commitMu so WAL write order matches epoch order; released
	// by flushWAL after the file I/O.
	s.walMu.Lock()
	return t
}

// flushWAL performs a ticket's durability I/O: the ordered append (and, at
// checkpoint cadence, the snapshot write) happen under walMu, then the lock
// drops and the entry is fsynced via the WAL's group-commit Sync — so
// concurrent committers coalesce onto a shared fsync while the next commit's
// append (and solve) proceed. Append or snapshot failures are surfaced as
// metrics and do not fail the commit: the service degrades to non-durable
// rather than refusing traffic. Safe to call with a nil ticket (no WAL
// attached, or an identity transition).
func (s *State) flushWAL(t *walTicket) {
	if t == nil {
		return
	}
	token, err := s.wal.Append(t.entry)
	if err != nil {
		metrics.walErrors.Inc()
		s.walMu.Unlock()
		return
	}
	metrics.walAppends.Inc()
	if t.snap != nil {
		if err := s.wal.WriteSnapshot(*t.snap); err != nil {
			metrics.walErrors.Inc()
		} else {
			metrics.walSnapshots.Inc()
		}
	}
	s.walMu.Unlock()
	if d, err := s.wal.Sync(token); err != nil {
		metrics.walErrors.Inc()
	} else if d > 0 {
		// d == 0 means another committer's fsync already covered this
		// append (group commit) — only performed fsyncs are recorded, so
		// the histogram count is the true disk-flush count.
		metrics.walFsync.Observe(d.Seconds())
	}
}

// captureSnapshotLocked collects the full-state snapshot for epoch e.
// Callers must hold commitMu, which keeps the placement map consistent with
// the epoch being checkpointed (no install can interleave).
func (s *State) captureSnapshotLocked(e *epochLedger) *wal.Snapshot {
	snap := &wal.Snapshot{
		Epoch:    e.seq,
		Hash:     fmt.Sprintf("%016x", e.hash),
		Residual: e.res,
		Down:     s.DownNodes(),
		Degraded: s.DegradedNodes(),
	}
	if s.tenantSnap != nil {
		snap.Tenants = s.tenantSnap()
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, p := range sh.m {
			snap.Placed = append(snap.Placed, toWALRecord(p))
		}
		sh.mu.RUnlock()
	}
	sort.Slice(snap.Placed, func(i, j int) bool { return snap.Placed[i].ID < snap.Placed[j].ID })
	return snap
}

// Release tears down a placed request: its record is removed and every MHz
// it consumed (primaries and secondaries) returns to the ledger via a fresh
// epoch. The freed total is returned; releasing an unknown ID is an error
// and leaves the ledger untouched.
func (s *State) Release(id int) (float64, error) {
	sh := s.shard(id)
	sh.mu.Lock()
	p, ok := sh.m[id]
	if ok {
		delete(sh.m, id)
	}
	sh.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("serve: unknown request id %d", id)
	}
	s.commitMu.Lock()
	cur := s.pin()
	res := append([]float64(nil), cur.res...)
	freed := 0.0
	for _, v := range sortedNodes(p.perNode) {
		if s.NodeDown(v) {
			// A failed node's share was already dropped when its instances
			// were destroyed; any residue here (e.g. a record admitted before
			// this process learned of the failure) must not resurrect
			// capacity on a dark node — WAL replay applies the same rule.
			continue
		}
		mhz := p.perNode[v]
		res[v] += mhz
		if cap := s.base.Capacity[v]; res[v] > cap {
			res[v] = cap
		}
		freed += mhz
	}
	t := s.installLocked(res, hashResiduals(res), installOp{releases: []int{id}})
	s.commitMu.Unlock()
	s.flushWAL(t)
	return freed, nil
}

// NodeDown reports whether cloudlet v is currently marked down.
func (s *State) NodeDown(v int) bool {
	s.healthMu.RLock()
	defer s.healthMu.RUnlock()
	return s.down[v]
}

// NodeDegraded reports whether cloudlet v is currently marked degraded.
func (s *State) NodeDegraded(v int) bool {
	s.healthMu.RLock()
	defer s.healthMu.RUnlock()
	return s.degraded[v]
}

// DownNodes returns the cloudlets currently marked down, ascending.
func (s *State) DownNodes() []int {
	s.healthMu.RLock()
	defer s.healthMu.RUnlock()
	return sortedSet(s.down)
}

// DegradedNodes returns the cloudlets currently marked degraded, ascending.
func (s *State) DegradedNodes() []int {
	s.healthMu.RLock()
	defer s.healthMu.RUnlock()
	return sortedSet(s.degraded)
}

// setHealthLocked moves node v into the given health state in the tracking
// sets. Callers hold commitMu (the accompanying ledger change is an epoch
// install); the healthMu write lock is taken here.
func (s *State) setHealthLocked(v int, to string) {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	delete(s.down, v)
	delete(s.degraded, v)
	switch to {
	case "down":
		s.down[v] = true
	case "degraded":
		s.degraded[v] = true
	}
}

// sortedSet returns a bool set's true keys ascending.
func sortedSet(m map[int]bool) []int {
	var out []int
	for v, ok := range m {
		if ok {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// PlacementIDs returns every live placement ID, ascending — the
// deterministic iteration order the watchdog uses for audits and
// re-augmentation.
func (s *State) PlacementIDs() []int {
	var out []int
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id := range sh.m {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Ints(out)
	return out
}

// sortedNodes returns a per-node map's keys ascending, so ledger arithmetic
// is applied in a deterministic order regardless of map iteration.
func sortedNodes(m map[int]float64) []int {
	nodes := make([]int, 0, len(m))
	for v := range m {
		nodes = append(nodes, v)
	}
	sort.Ints(nodes)
	return nodes
}

// consumePrimaries charges a fork's ledger for a request's pre-set
// primaries. On failure the fork is unchanged.
func consumePrimaries(work *mec.Network, req *mec.Request) error {
	snap := work.ResidualSnapshot()
	for i, v := range req.Primaries {
		demand := work.Catalog().Type(req.SFC[i]).Demand
		if work.Residual(v) < demand {
			work.RestoreResiduals(snap)
			return fmt.Errorf("serve: cloudlet %d lacks %v MHz for primary of position %d", v, demand, i)
		}
		work.Consume(v, demand)
	}
	return nil
}

// commitSecondaries charges a fork's ledger for a solved placement's
// secondaries. It fails without partial effects when the ledger no longer
// covers the placement (a commit conflict: some earlier commit consumed the
// headroom the solver budgeted against). On success it returns the exact
// MHz consumed per cloudlet, measured off the ledger — recording the
// measured amount (not the nominal demand×count) is what keeps repeated
// admit/release cycles from inflating the ledger when a commit lands within
// the 1e-9 tolerance of a node's remaining headroom.
func commitSecondaries(work *mec.Network, sfc []int, perBin []map[int]int) (map[int]float64, error) {
	snap := work.ResidualSnapshot()
	consumed := make(map[int]float64)
	for i, m := range perBin {
		demand := work.Catalog().Type(sfc[i]).Demand
		for _, u := range sortedBins(m) {
			need := demand * float64(m[u])
			if work.Residual(u) < need-1e-9 {
				work.RestoreResiduals(snap)
				return nil, fmt.Errorf("serve: commit conflict: cloudlet %d has %v MHz, placement needs %v", u, work.Residual(u), need)
			}
			before := work.Residual(u)
			work.Consume(u, need) // clamps at 0 within the tolerance
			consumed[u] += before - work.Residual(u)
		}
	}
	return consumed, nil
}

// sortedBins returns a per-bin count map's keys ascending.
func sortedBins(m map[int]int) []int {
	bins := make([]int, 0, len(m))
	for u := range m {
		bins = append(bins, u)
	}
	sort.Ints(bins)
	return bins
}

// rollback returns previously consumed per-node MHz to a fork's ledger, in
// deterministic node order.
func rollback(work *mec.Network, perNode map[int]float64) {
	for _, v := range sortedNodes(perNode) {
		work.Release(v, perNode[v])
	}
}

// Placement is the read-only public view of one live placement record. After
// a node failure, destroyed primaries read -1 and destroyed secondaries are
// absent from their host lists; Reliability is the attained u_j of the
// surviving replicas.
type Placement struct {
	ID          int
	SFC         []int
	Expectation float64
	Source      int
	Destination int
	Primaries   []int
	Secondaries [][]int
	Reliability float64
	Met         bool
	Algorithm   string
	ServedBy    string
	// ConsumedMHz is the total ledger consumption the placement holds; a
	// release returns exactly this much across its cloudlets.
	ConsumedMHz float64
}

// Placement returns a read-only copy of the live placement record for id.
func (s *State) Placement(id int) (Placement, bool) {
	sh := s.shard(id)
	sh.mu.RLock()
	p, ok := sh.m[id]
	sh.mu.RUnlock()
	if !ok {
		return Placement{}, false
	}
	view := Placement{
		ID:          p.ID,
		SFC:         append([]int(nil), p.SFC...),
		Expectation: p.Expectation,
		Source:      p.Source,
		Destination: p.Destination,
		Primaries:   append([]int(nil), p.Primaries...),
		Secondaries: make([][]int, len(p.Secondaries)),
		Reliability: p.Reliability,
		Met:         p.Met,
		Algorithm:   p.Algorithm,
		ServedBy:    p.ServedBy,
	}
	for i, sec := range p.Secondaries {
		view.Secondaries[i] = append([]int(nil), sec...)
	}
	for _, mhz := range p.perNode {
		view.ConsumedMHz += mhz
	}
	return view, true
}

// PlacedCount returns the number of live placements.
func (s *State) PlacedCount() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		n += len(s.shards[i].m)
		s.shards[i].mu.RUnlock()
	}
	return n
}

// CloudletState is one row of the /v1/state residual table.
type CloudletState struct {
	ID       int     `json:"id"`
	Capacity float64 `json:"capacity_mhz"`
	Residual float64 `json:"residual_mhz"`
}

// Snapshot captures the current epoch for /v1/state: every cloudlet's
// capacity and residual, the epoch sequence number, and the canonical state
// hash. Lock-free: it reads one immutable epoch.
func (s *State) Snapshot() (cloudlets []CloudletState, epoch, hash uint64) {
	e := s.pin()
	for _, v := range s.base.Cloudlets() {
		cloudlets = append(cloudlets, CloudletState{
			ID: v, Capacity: s.base.Capacity[v], Residual: e.res[v],
		})
	}
	return cloudlets, e.seq, e.hash
}

// toWALRecord converts a live placement record to its durable form.
func toWALRecord(p *placed) wal.PlacedRecord {
	return wal.PlacedRecord{
		ID:          p.ID,
		SFC:         p.SFC,
		Expectation: p.Expectation,
		Source:      p.Source,
		Destination: p.Destination,
		Primaries:   p.Primaries,
		Secondaries: p.Secondaries,
		Reliability: p.Reliability,
		Met:         p.Met,
		Algorithm:   p.Algorithm,
		ServedBy:    p.ServedBy,
		Tenant:      p.Tenant,
		PerNode:     p.perNode,
	}
}

// fromWALRecord converts a durable placement record back to the live form.
func fromWALRecord(r wal.PlacedRecord) *placed {
	return &placed{
		ID:          r.ID,
		SFC:         r.SFC,
		Expectation: r.Expectation,
		Source:      r.Source,
		Destination: r.Destination,
		Primaries:   r.Primaries,
		Secondaries: r.Secondaries,
		Reliability: r.Reliability,
		Met:         r.Met,
		Algorithm:   r.Algorithm,
		ServedBy:    r.ServedBy,
		Tenant:      r.Tenant,
		perNode:     r.PerNode,
	}
}

// NewStateFromWAL rebuilds serving state from the durable log in dir: the
// latest snapshot plus every intact entry after it. The network must be the
// same topology the log was written against (same seed/scenario); the
// restored epoch, residual ledger, and placement map are bit-identical to
// the pre-crash state, verified against the last recorded canonical hash.
func NewStateFromWAL(net *mec.Network, dir string) (*State, error) {
	snap, entries, err := wal.Replay(dir)
	if err != nil {
		return nil, err
	}
	s := NewState(net)
	res := net.ResidualSnapshot()
	seq := uint64(0)
	wantHash := ""
	records := make(map[int]*placed)
	var down, degraded []int
	if snap != nil {
		if len(snap.Residual) != len(res) {
			return nil, fmt.Errorf("serve: WAL snapshot covers %d nodes, network has %d", len(snap.Residual), len(res))
		}
		res = snap.Residual
		seq = snap.Epoch
		wantHash = snap.Hash
		down, degraded = snap.Down, snap.Degraded
		s.tenantQuota = snap.Tenants
		for _, r := range snap.Placed {
			records[r.ID] = fromWALRecord(r)
		}
	}
	for _, e := range entries {
		if len(e.Residual) != len(res) {
			return nil, fmt.Errorf("serve: WAL entry %d covers %d nodes, network has %d", e.Epoch, len(e.Residual), len(res))
		}
		res = e.Residual
		seq = e.Epoch
		wantHash = e.Hash
		for _, r := range e.Admits {
			records[r.ID] = fromWALRecord(r)
		}
		// Health entries rewrite live records in place (destroyed instances,
		// recomputed reliability) and republish the full down/degraded sets.
		for _, r := range e.Updates {
			if _, live := records[r.ID]; live {
				records[r.ID] = fromWALRecord(r)
			}
		}
		if e.Health != nil {
			down, degraded = e.Down, e.Degraded
		}
		if e.Tenants != nil {
			s.tenantQuota = e.Tenants
		}
		for _, id := range e.Releases {
			delete(records, id)
		}
	}
	hash := hashResiduals(res)
	if wantHash != "" && fmt.Sprintf("%016x", hash) != wantHash {
		return nil, fmt.Errorf("serve: restored ledger hash %016x != recorded %s (wrong network or damaged log?)", hash, wantHash)
	}
	s.cur.Store(&epochLedger{seq: seq, res: res, hash: hash})
	for id, p := range records {
		s.shard(id).m[id] = p
	}
	for _, v := range down {
		s.down[v] = true
	}
	for _, v := range degraded {
		s.degraded[v] = true
	}
	metrics.epochSeq.Set(float64(seq))
	return s, nil
}

// TenantQuotas returns the per-tenant token-bucket state recovered from the
// WAL (nil on a fresh state or when the log never journaled tenants). The
// owning Service seeds its buckets from it on restore.
func (s *State) TenantQuotas() []wal.TenantQuota { return s.tenantQuota }

// MaxPlacedID returns the highest live placement ID (0 when none): after a
// restore the service resumes its admission sequence above it so new
// requests never collide with replayed placements.
func (s *State) MaxPlacedID() int {
	max := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id := range sh.m {
			if id > max {
				max = id
			}
		}
		sh.mu.RUnlock()
	}
	return max
}
