// Package serve is the online augmentation service: a long-running HTTP/JSON
// front door over the solver stack. It owns a mutable network state (cloudlet
// residual capacities plus every placed request) behind a sharded lock,
// funnels admissions through a bounded queue with micro-batching on the
// deterministic trial engine, reuses solver results through an LRU cache
// keyed by a canonical hash of the residual ledger, and exposes
//
//	POST /v1/augment   admit a request and place its secondaries
//	POST /v1/release   tear a placed request down, restoring capacity
//	GET  /v1/state     residual ledger, placement count, queue/cache stats
//	GET  /v1/healthz   liveness + drain status
//
// Request/response schemas, error codes, and backpressure semantics are
// documented in API.md. Determinism: identical request streams produce
// identical placements at any worker count (see the determinism notes on
// Options and the selftest in cmd/augmentd).
package serve

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"repro/internal/mec"
)

// numShards is the placement-record shard count. Records are spread by
// request ID so concurrent /v1/release and /v1/state lookups contend on a
// shard, not on one map lock; the residual ledger itself sits behind a
// single RWMutex because every admission mutates overlapping cloudlets.
const numShards = 16

// placed is the per-request record kept for the lifetime of a placement.
type placed struct {
	ID          int
	SFC         []int
	Expectation float64
	Primaries   []int
	Secondaries [][]int
	Reliability float64
	Met         bool
	Algorithm   string
	ServedBy    string
	// perNode is the MHz consumed per cloudlet (primaries + secondaries);
	// releasing the request returns exactly these amounts to the ledger.
	perNode map[int]float64
}

// placementShard is one bucket of the sharded placement map.
type placementShard struct {
	mu sync.RWMutex
	m  map[int]*placed
}

// State is the service's mutable view of the network: the residual-capacity
// ledger plus every live placement. The ledger (and its mutation epoch) is
// guarded by mu; placement records live in numShards independently locked
// shards.
type State struct {
	mu    sync.RWMutex
	net   *mec.Network
	epoch uint64 // incremented on every ledger mutation

	shards [numShards]placementShard
}

// NewState wraps a network as serving state. The service takes ownership of
// the network's residual ledger; callers must not mutate it concurrently.
func NewState(net *mec.Network) *State {
	s := &State{net: net}
	for i := range s.shards {
		s.shards[i].m = make(map[int]*placed)
	}
	return s
}

func (s *State) shard(id int) *placementShard {
	if id < 0 {
		id = -id
	}
	return &s.shards[id%numShards]
}

// hashLocked returns the canonical FNV-1a hash of the residual ledger.
// Callers must hold mu in either mode. Two states with bit-identical
// residual vectors hash equally, which is what makes cached solver results
// transferable between them.
func (s *State) hashLocked() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for v := 0; v < s.net.G.N(); v++ {
		bits := math.Float64bits(s.net.Residual(v))
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Epoch returns the ledger mutation epoch (bumped on every admission,
// commit, and release). Exposed on /v1/state so operators can correlate
// cache invalidations with mutations.
func (s *State) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// consumePrimariesLocked charges the ledger for a request's pre-set
// primaries. On failure the ledger is unchanged. Callers must hold mu.
func (s *State) consumePrimariesLocked(req *mec.Request) error {
	snap := s.net.ResidualSnapshot()
	for i, v := range req.Primaries {
		demand := s.net.Catalog().Type(req.SFC[i]).Demand
		if s.net.Residual(v) < demand {
			s.net.RestoreResiduals(snap)
			return fmt.Errorf("serve: cloudlet %d lacks %v MHz for primary of position %d", v, demand, i)
		}
		s.net.Consume(v, demand)
	}
	s.epoch++
	return nil
}

// commitSecondariesLocked charges the ledger for a solved placement's
// secondaries. It fails without partial effects when the ledger no longer
// covers the placement (a commit conflict: some earlier commit in the batch
// or a concurrent admission consumed the headroom the solver budgeted
// against). Callers must hold mu.
func (s *State) commitSecondariesLocked(sfc []int, perBin []map[int]int) error {
	snap := s.net.ResidualSnapshot()
	for i, m := range perBin {
		demand := s.net.Catalog().Type(sfc[i]).Demand
		for u, c := range m {
			need := demand * float64(c)
			if s.net.Residual(u) < need-1e-9 {
				s.net.RestoreResiduals(snap)
				return fmt.Errorf("serve: commit conflict: cloudlet %d has %v MHz, placement needs %v", u, s.net.Residual(u), need)
			}
			s.net.Consume(u, math.Min(need, s.net.Residual(u)))
		}
	}
	s.epoch++
	return nil
}

// rollbackLocked returns previously consumed per-node MHz to the ledger.
// Callers must hold mu.
func (s *State) rollbackLocked(perNode map[int]float64) {
	for v, mhz := range perNode {
		s.net.Release(v, mhz)
	}
	s.epoch++
}

// record stores the placement record for a committed request.
func (s *State) record(p *placed) {
	sh := s.shard(p.ID)
	sh.mu.Lock()
	sh.m[p.ID] = p
	sh.mu.Unlock()
}

// Release tears down a placed request: its record is removed and every MHz
// it consumed (primaries and secondaries) returns to the ledger. The freed
// total is returned; releasing an unknown ID is an error and leaves the
// ledger untouched.
func (s *State) Release(id int) (float64, error) {
	sh := s.shard(id)
	sh.mu.Lock()
	p, ok := sh.m[id]
	if ok {
		delete(sh.m, id)
	}
	sh.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("serve: unknown request id %d", id)
	}
	freed := 0.0
	s.mu.Lock()
	for v, mhz := range p.perNode {
		s.net.Release(v, mhz)
		freed += mhz
	}
	s.epoch++
	s.mu.Unlock()
	return freed, nil
}

// Placed returns the live placement record for id, if any.
func (s *State) Placed(id int) (*placed, bool) {
	sh := s.shard(id)
	sh.mu.RLock()
	p, ok := sh.m[id]
	sh.mu.RUnlock()
	return p, ok
}

// PlacedCount returns the number of live placements.
func (s *State) PlacedCount() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		n += len(s.shards[i].m)
		s.shards[i].mu.RUnlock()
	}
	return n
}

// CloudletState is one row of the /v1/state residual table.
type CloudletState struct {
	ID       int     `json:"id"`
	Capacity float64 `json:"capacity_mhz"`
	Residual float64 `json:"residual_mhz"`
}

// Snapshot captures the ledger for /v1/state: every cloudlet's capacity and
// residual, the mutation epoch, and the canonical state hash.
func (s *State) Snapshot() (cloudlets []CloudletState, epoch, hash uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, v := range s.net.Cloudlets() {
		cloudlets = append(cloudlets, CloudletState{
			ID: v, Capacity: s.net.Capacity[v], Residual: s.net.Residual(v),
		})
	}
	return cloudlets, s.epoch, s.hashLocked()
}
