package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/mec"
	"repro/internal/reliability"
	"repro/internal/serve/wal"
	"repro/internal/serve/watchdog"
)

// Node health states accepted by POST /v1/node.
const (
	// HealthDown marks a cloudlet failed: its residual capacity is withdrawn
	// from the ledger, every VNF instance it hosted is destroyed, and each
	// affected session's attained reliability is recomputed from the
	// surviving replicas.
	HealthDown = "down"
	// HealthUp marks a cloudlet recovered: its residual returns to capacity
	// minus what surviving instances still consume. Instances destroyed while
	// it was down do not come back — re-augmentation rebuilds them.
	HealthUp = "up"
	// HealthDegraded marks a cloudlet impaired but alive: hosted instances
	// survive, and the free capacity offered to new placements is scaled by
	// Options.DegradedFactor.
	HealthDegraded = "degraded"
)

// NodeEvent is the JSON body of POST /v1/node: a health transition for one
// cloudlet, reported by an external monitor or the chaos load generator.
type NodeEvent struct {
	Node   int    `json:"node"`
	Health string `json:"health"`
	// Note is carried into the alert raised for the transition.
	Note string `json:"note,omitempty"`
}

// NodeResponse is the JSON body answered by POST /v1/node.
type NodeResponse struct {
	Node   int    `json:"node"`
	Health string `json:"health"`
	// Epoch is the ledger epoch the transition installed (unchanged when the
	// event was a no-op re-application of the current state).
	Epoch uint64 `json:"epoch"`
	// InstancesDestroyed counts VNF instances lost to this transition.
	InstancesDestroyed int `json:"instances_destroyed"`
	// SessionsAffected counts placements whose records this transition
	// rewrote.
	SessionsAffected int `json:"sessions_affected"`
	// ReaugQueued counts sessions queued for proactive re-augmentation
	// because the transition dropped their attained reliability below ρ.
	ReaugQueued int `json:"reaug_queued"`
}

// Alerter exposes the service's stateful alert engine (the /v1/alerts data).
func (s *Service) Alerter() *watchdog.Alerter { return s.alerter }

// currentHealth returns node v's health string under the state's view.
func (s *Service) currentHealth(v int) string {
	switch {
	case s.state.NodeDown(v):
		return HealthDown
	case s.state.NodeDegraded(v):
		return HealthDegraded
	default:
		return HealthUp
	}
}

// ApplyHealth applies one node health transition as a first-class epoch
// mutation, serialized with batch commits under the install lock:
//
//   - down: the node's residual is withdrawn (0), every instance it hosted is
//     destroyed (primaries become -1, secondaries leave their host lists, the
//     node's consumption share is dropped — the capacity is gone, not
//     releasable), and each affected session's reliability is recomputed from
//     the surviving replicas.
//   - degraded: instances survive; the node's free capacity is scaled by
//     Options.DegradedFactor.
//   - up: the residual returns to capacity minus what surviving instances
//     consume (full capacity after a down, since its instances were
//     destroyed).
//
// The transition is journaled to the WAL (event, rewritten records, full
// post-transition health sets), the result cache is invalidated, cloudlet and
// session alerts are evaluated, and sessions whose attained reliability fell
// below ρ are queued for re-augmentation (driven by ReaugmentOnce).
// Re-applying the current state is an idempotent no-op.
func (s *Service) ApplyHealth(node int, health, note string) (NodeResponse, error) {
	switch health {
	case HealthDown, HealthUp, HealthDegraded:
	default:
		return NodeResponse{}, fmt.Errorf("serve: unknown health state %q (want %s, %s, or %s)", health, HealthDown, HealthUp, HealthDegraded)
	}
	if node < 0 || node >= len(s.state.base.Capacity) || s.state.base.Capacity[node] <= 0 {
		return NodeResponse{}, fmt.Errorf("serve: node %d is not a cloudlet", node)
	}

	s.state.commitMu.Lock()
	if s.currentHealth(node) == health {
		epoch := s.state.Epoch()
		s.state.commitMu.Unlock()
		return NodeResponse{Node: node, Health: health, Epoch: epoch}, nil
	}

	var updates []*placed
	destroyed := 0
	if health == HealthDown {
		updates, destroyed = s.destroyInstancesLocked(node)
	}
	s.state.setHealthLocked(node, health)

	cur := s.state.pin()
	res := append([]float64(nil), cur.res...)
	switch health {
	case HealthDown:
		res[node] = 0
	case HealthDegraded:
		res[node] = (s.state.base.Capacity[node] - s.consumedOn(node)) * s.opt.DegradedFactor
	case HealthUp:
		res[node] = s.state.base.Capacity[node] - s.consumedOn(node)
	}
	if res[node] < 0 {
		res[node] = 0
	}
	ticket := s.state.installLocked(res, hashResiduals(res), installOp{
		updates: updates,
		health:  &wal.HealthRecord{Node: node, To: health},
	})
	epoch := s.state.Epoch()
	s.state.commitMu.Unlock()
	s.state.flushWAL(ticket)
	s.cache.Invalidate()

	switch health {
	case HealthDown:
		metrics.nodeDown.Inc()
	case HealthUp:
		metrics.nodeUp.Inc()
	case HealthDegraded:
		metrics.nodeDegraded.Inc()
	}
	metrics.instancesDestroyed.Add(int64(destroyed))
	s.alerter.EvalCloudlet(node, health, note)

	queued := 0
	for _, p := range updates {
		s.alerter.EvalSession(p.ID, p.Reliability, p.Expectation, fmt.Sprintf("node %d down", node))
		if !p.Met {
			if s.reaug.add(p) {
				queued++
			}
		}
	}
	if s.recorder != nil {
		s.recorder.Record(TraceOp{Op: OpNode, ID: node, Health: health})
	}
	return NodeResponse{
		Node: node, Health: health, Epoch: epoch,
		InstancesDestroyed: destroyed, SessionsAffected: len(updates), ReaugQueued: queued,
	}, nil
}

// destroyInstancesLocked rewrites every placement hosting instances on node:
// the shard record is replaced with a copy that has the node's instances
// removed and reliability recomputed from the survivors (copy-on-write, so a
// concurrent reader of the old record sees a consistent pre-failure view).
// Returns the rewritten records in ascending ID order and the instance count
// destroyed. Callers hold commitMu.
func (s *Service) destroyInstancesLocked(node int) ([]*placed, int) {
	var updates []*placed
	destroyed := 0
	for i := range s.state.shards {
		sh := &s.state.shards[i]
		sh.mu.Lock()
		for id, p := range sh.m {
			if _, hosts := p.perNode[node]; !hosts {
				continue
			}
			np, lost := rewriteWithoutNode(p, node, s.state.base.Catalog())
			destroyed += lost
			sh.m[id] = np
			updates = append(updates, np)
		}
		sh.mu.Unlock()
	}
	sort.Slice(updates, func(i, j int) bool { return updates[i].ID < updates[j].ID })
	return updates, destroyed
}

// rewriteWithoutNode returns a copy of p with every instance hosted on node
// destroyed and Reliability/Met recomputed from the survivors, plus the
// number of instances lost. The node's consumption share is dropped: that
// capacity is gone with the node, not releasable.
func rewriteWithoutNode(p *placed, node int, cat *mec.Catalog) (*placed, int) {
	np := &placed{
		ID:          p.ID,
		SFC:         p.SFC,
		Expectation: p.Expectation,
		Source:      p.Source,
		Destination: p.Destination,
		Primaries:   append([]int(nil), p.Primaries...),
		Secondaries: make([][]int, len(p.Secondaries)),
		Algorithm:   p.Algorithm,
		ServedBy:    p.ServedBy,
		perNode:     make(map[int]float64, len(p.perNode)),
	}
	for v, mhz := range p.perNode {
		if v != node {
			np.perNode[v] = mhz
		}
	}
	lost := 0
	for i, v := range np.Primaries {
		if v == node {
			np.Primaries[i] = -1
			lost++
		}
	}
	rs := make([]float64, len(p.SFC))
	survivors := make([]int, len(p.SFC))
	for i, sec := range p.Secondaries {
		var keep []int
		for _, u := range sec {
			if u == node {
				lost++
				continue
			}
			keep = append(keep, u)
		}
		np.Secondaries[i] = keep
		rs[i] = cat.Type(p.SFC[i]).Reliability
		survivors[i] = len(keep)
		if np.Primaries[i] >= 0 {
			survivors[i]++
		}
	}
	np.Reliability = reliability.ChainSurvivorReliability(rs, survivors)
	np.Met = reliability.MeetsExpectation(np.Reliability, np.Expectation)
	return np, lost
}

// consumedOn sums the MHz every live placement holds on node v.
func (s *Service) consumedOn(v int) float64 {
	total := 0.0
	for i := range s.state.shards {
		sh := &s.state.shards[i]
		sh.mu.RLock()
		for _, p := range sh.m {
			total += p.perNode[v]
		}
		sh.mu.RUnlock()
	}
	return total
}

// reaugEntry is one session awaiting proactive re-augmentation.
type reaugEntry struct {
	// id is the session's last-known placement ID — the alert key and, until
	// released, the live record to tear down before re-admitting.
	id  int
	req AugmentRequest
	// released reports the original placement was already torn down (a prior
	// attempt failed after its release); retries then skip straight to
	// re-admission.
	released bool
	attempts int
	// nextTick is the earliest re-augmentation round that may retry this
	// entry (exponential backoff in rounds: tick + 1<<attempts).
	nextTick int
}

// reaugQueue holds the sessions the watchdog has queued for proactive
// re-augmentation, keyed by original placement ID.
type reaugQueue struct {
	mu      sync.Mutex
	entries map[int]*reaugEntry
	tick    int
}

// add queues a failed session, building its re-admission request from the
// rewritten record. Primaries are preserved exactly when every primary
// survived (the session keeps its anchors and only rebuilds backups);
// otherwise the server re-places them. Reports whether the entry was new.
func (q *reaugQueue) add(p *placed) bool {
	req := AugmentRequest{
		SFC:         append([]int(nil), p.SFC...),
		Expectation: p.Expectation,
		Source:      p.Source,
		Destination: p.Destination,
		Tenant:      p.Tenant,
	}
	intact := true
	for _, v := range p.Primaries {
		if v < 0 {
			intact = false
			break
		}
	}
	if intact {
		req.Primaries = append([]int(nil), p.Primaries...)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.entries == nil {
		q.entries = make(map[int]*reaugEntry)
	}
	if _, dup := q.entries[p.ID]; dup {
		return false
	}
	q.entries[p.ID] = &reaugEntry{id: p.ID, req: req, nextTick: q.tick + 1}
	return true
}

// remove drops a session from the queue (released by the client, or settled).
func (q *reaugQueue) remove(id int) {
	q.mu.Lock()
	delete(q.entries, id)
	q.mu.Unlock()
}

// pending returns the queued session count.
func (q *reaugQueue) pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.entries)
}

// due advances the round counter and returns the entries eligible this round,
// in ascending original-ID order (deterministic).
func (q *reaugQueue) due() []*reaugEntry {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.tick++
	var out []*reaugEntry
	for _, e := range q.entries {
		if e.nextTick <= q.tick {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// backoff reschedules a failed entry exponentially (in rounds) and reports
// whether the retry budget still covers it. The entry is re-inserted: the
// attempt's release already dropped it from the map.
func (q *reaugQueue) backoff(e *reaugEntry, budget int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	e.attempts++
	if e.attempts >= budget {
		delete(q.entries, e.id)
		return false
	}
	e.nextTick = q.tick + 1<<e.attempts
	if q.entries == nil {
		q.entries = make(map[int]*reaugEntry)
	}
	q.entries[e.id] = e
	return true
}

// ReaugReport summarizes one re-augmentation round.
type ReaugReport struct {
	// Attempted counts sessions this round tried to re-augment.
	Attempted int `json:"attempted"`
	// Restored counts sessions whose re-augmentation met ρ again.
	Restored int `json:"restored"`
	// Degraded counts sessions re-served below ρ (degraded mode, alerted).
	Degraded int `json:"degraded"`
	// Retrying counts sessions left queued with backoff after a failed
	// attempt.
	Retrying int `json:"retrying"`
	// Lost counts sessions abandoned after the retry budget (sticky CRIT
	// alert remains).
	Lost int `json:"lost"`
	// Remapped maps each re-served session's old placement ID to its new one.
	Remapped map[int]int `json:"remapped,omitempty"`
}

// ReaugmentOnce runs one proactive re-augmentation round: every due session
// is released (once) and re-admitted through the normal admission pipeline —
// same micro-batching, same solver fallback chain, same seeding discipline —
// so re-augmentation inherits the service's determinism. Outcomes:
//
//   - re-admitted with u >= ρ: restored; the session's alert resolves.
//   - re-admitted with u < ρ: served degraded — the achieved reliability is
//     real and the alert moves to the new placement ID, so the shortfall is
//     never silent.
//   - admission failed: retried with exponential backoff until
//     Options.ReaugBudget attempts, then declared lost (sticky CRIT alert).
//
// Callers drive rounds from one goroutine (the probe loop, or the chaos load
// generator between waves); the returned report maps old to new session IDs.
func (s *Service) ReaugmentOnce() ReaugReport {
	rep := ReaugReport{}
	for _, e := range s.reaug.due() {
		key := watchdog.Key{Kind: watchdog.KindSession, ID: e.id}
		if !e.released {
			p, live := s.state.Placement(e.id)
			if !live {
				// Released by the client while queued: nothing to restore.
				s.reaug.remove(e.id)
				s.alerter.Resolve(key, "released while queued")
				continue
			}
			if p.Met {
				// Recovered without our help (e.g. a later event superseded
				// the failure).
				s.reaug.remove(e.id)
				s.alerter.Resolve(key, "recovered")
				continue
			}
		}
		rep.Attempted++
		metrics.reaugAttempts.Inc()
		if !e.released {
			if _, err := s.Release(e.id); err != nil {
				s.reaug.remove(e.id)
				continue
			}
			e.released = true
			// Release cleared the session's alert; keep the failure visible
			// until the re-augmentation outcome is known.
			s.alerter.EvalSession(e.id, 0, e.req.Expectation, "re-augmenting")
		}
		// Sync-enqueue: the trace must mark that this producer waits for the
		// answer before its next submission, so a replay reproduces the
		// one-request-per-batch pattern re-augmentation has here.
		t, err := s.enqueue(e.req, true)
		if err != nil {
			if s.reaug.backoff(e, s.opt.ReaugBudget) {
				rep.Retrying++
			} else {
				rep.Lost++
				metrics.reaugLost.Inc()
				s.alerter.EvalSession(e.id, 0, e.req.Expectation, "lost: re-augmentation budget exhausted")
			}
			continue
		}
		out := t.Wait()
		if out.Status != http.StatusOK {
			if s.reaug.backoff(e, s.opt.ReaugBudget) {
				rep.Retrying++
			} else {
				rep.Lost++
				metrics.reaugLost.Inc()
				s.alerter.EvalSession(e.id, 0, e.req.Expectation, "lost: re-augmentation budget exhausted")
			}
			continue
		}
		s.reaug.remove(e.id)
		if rep.Remapped == nil {
			rep.Remapped = make(map[int]int)
		}
		rep.Remapped[e.id] = out.Response.ID
		if out.Response.MetExpectation {
			rep.Restored++
			metrics.reaugRestored.Inc()
			s.alerter.Resolve(key, fmt.Sprintf("restored as session %d", out.Response.ID))
		} else {
			rep.Degraded++
			metrics.reaugDegradedTotal.Inc()
			s.alerter.Resolve(key, fmt.Sprintf("re-served degraded as session %d", out.Response.ID))
			// deliverOutcomes already raised the new session's alert; keep the
			// re-augmentation provenance on it.
			s.alerter.EvalSession(out.Response.ID, out.Response.Reliability, e.req.Expectation,
				fmt.Sprintf("degraded re-augmentation of session %d", e.id))
		}
	}
	return rep
}

// ReaugPending returns the number of sessions queued for re-augmentation.
func (s *Service) ReaugPending() int { return s.reaug.pending() }

// SilentViolations audits the live placement set: every session whose
// attained reliability misses ρ must carry an active alert. It returns the
// IDs (ascending) of unalerted violations — the chaos selftest asserts this
// is empty ("zero silent SLO violations").
func (s *Service) SilentViolations() []int {
	var out []int
	for _, id := range s.state.PlacementIDs() {
		p, ok := s.state.Placement(id)
		if !ok || p.Met {
			continue
		}
		if s.alerter.Level(watchdog.Key{Kind: watchdog.KindSession, ID: id}) == watchdog.OK {
			out = append(out, id)
		}
	}
	return out
}

// AuditOnce refreshes session alerts from the live placement set and runs one
// re-augmentation round — the probe loop's body, also callable directly by
// drivers that own the cadence (the chaos load generator).
func (s *Service) AuditOnce() ReaugReport {
	for _, id := range s.state.PlacementIDs() {
		if p, ok := s.state.Placement(id); ok && !p.Met {
			s.alerter.EvalSession(id, p.Reliability, p.Expectation, "audit")
		}
	}
	return s.ReaugmentOnce()
}

// StartProbe launches the watchdog probe loop: every interval, session alerts
// are refreshed and one re-augmentation round runs. The loop owns the
// re-augmentation cadence in server mode (chaos/loadgen drivers instead call
// AuditOnce between waves); StopProbe (or Close) terminates it.
func (s *Service) StartProbe(every time.Duration) {
	if every <= 0 {
		return
	}
	s.probeMu.Lock()
	defer s.probeMu.Unlock()
	if s.probeStop != nil {
		return // already running
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.probeStop, s.probeDone = stop, done
	go func() {
		defer close(done)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				s.AuditOnce()
			case <-stop:
				return
			}
		}
	}()
}

// StopProbe terminates the probe loop and waits for it to exit. Safe to call
// when no probe is running.
func (s *Service) StopProbe() {
	s.probeMu.Lock()
	stop, done := s.probeStop, s.probeDone
	s.probeStop, s.probeDone = nil, nil
	s.probeMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// seedFromRestore rebuilds watchdog state after a WAL restore: cloudlet
// alerts for every node marked down or degraded in the journal, session
// alerts plus re-augmentation entries for every replayed placement whose
// recorded reliability misses its expectation. Restart therefore resumes the
// self-healing loop exactly where the crashed process left it.
func (s *Service) seedFromRestore() {
	for _, v := range s.state.DownNodes() {
		s.alerter.EvalCloudlet(v, HealthDown, "restored from WAL")
	}
	for _, v := range s.state.DegradedNodes() {
		s.alerter.EvalCloudlet(v, HealthDegraded, "restored from WAL")
	}
	for _, id := range s.state.PlacementIDs() {
		sh := s.state.shard(id)
		sh.mu.RLock()
		p := sh.m[id]
		sh.mu.RUnlock()
		if p == nil || p.Met {
			continue
		}
		s.alerter.EvalSession(p.ID, p.Reliability, p.Expectation, "restored from WAL")
		s.reaug.add(p)
	}
}

func (s *Service) handleNode(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var ev NodeEvent
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ev); err != nil {
		writeError(w, http.StatusBadRequest, "bad node event: %v", err)
		return
	}
	resp, err := s.ApplyHealth(ev.Node, ev.Health, ev.Note)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.alerter.Snapshot())
}
