package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mec"
)

// Submission errors surfaced by the admission queue. The HTTP layer maps
// ErrQueueFull to 429 + Retry-After and ErrDraining to 503.
var (
	ErrQueueFull = errors.New("serve: admission queue full")
	ErrDraining  = errors.New("serve: draining, not accepting requests")
)

// pending is one request waiting in the admission queue.
type pending struct {
	seq         int
	sfc         []int
	expectation float64
	source      int
	destination int
	primaries   []int // optional pre-set primaries
	deadline    time.Duration
	enqueued    time.Time
	done        chan outcome // buffered; the batcher never blocks on it
}

// outcome is the batcher's answer to one pending request.
type outcome struct {
	status    int // HTTP status code
	errText   string
	placed    *placed
	cached    bool
	initial   float64
	queueWait time.Duration
	solveTime time.Duration
}

// queue is the bounded admission queue plus its micro-batching consumer.
type queue struct {
	svc      *Service
	ch       chan *pending
	draining atomic.Bool
	stopCh   chan struct{}
	doneCh   chan struct{}
}

func newQueue(svc *Service, depth int) *queue {
	q := &queue{
		svc:    svc,
		ch:     make(chan *pending, depth),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
	go q.run()
	return q
}

// Submit enqueues p without blocking. A full queue rejects with ErrQueueFull
// (the caller answers 429 with Retry-After); a draining queue rejects with
// ErrDraining (503).
func (q *queue) Submit(p *pending) error {
	if q.draining.Load() {
		return ErrDraining
	}
	select {
	case q.ch <- p:
		metrics.queueDepth.Set(float64(len(q.ch)))
		metrics.inflight.Add(1)
		return nil
	default:
		return ErrQueueFull
	}
}

// Drain stops accepting new requests, flushes every request already queued
// through the normal batch path, and returns when the batcher has exited.
// Safe to call more than once.
func (q *queue) Drain() {
	if q.draining.CompareAndSwap(false, true) {
		close(q.stopCh)
	}
	<-q.doneCh
}

// run is the micro-batching consumer: collect up to BatchSize requests or
// wait at most BatchWait after the first, then solve the batch. On drain it
// flushes the queue in full batches without waiting on the timer.
func (q *queue) run() {
	defer close(q.doneCh)
	for {
		var first *pending
		select {
		case first = <-q.ch:
		case <-q.stopCh:
			// Drain: every request that made it into the channel before the
			// drain flag flipped still gets served.
			for {
				select {
				case p := <-q.ch:
					q.processFrom(p, true)
				default:
					return
				}
			}
		}
		q.processFrom(first, false)
	}
}

// processFrom collects a batch starting at first and hands it to the
// service. When draining, only immediately available requests join (no
// timer wait).
func (q *queue) processFrom(first *pending, draining bool) {
	batch := []*pending{first}
	maxB := q.svc.opt.BatchSize
	if !draining && maxB > 1 {
		timer := time.NewTimer(q.svc.opt.BatchWait)
	collect:
		for len(batch) < maxB {
			select {
			case p := <-q.ch:
				batch = append(batch, p)
			case <-timer.C:
				break collect
			case <-q.stopCh:
				break collect
			}
		}
		timer.Stop()
	}
	for len(batch) < maxB {
		select {
		case p := <-q.ch:
			batch = append(batch, p)
		default:
			goto full
		}
	}
full:
	metrics.queueDepth.Set(float64(len(q.ch)))
	q.svc.processBatch(batch)
}

// admitSeedStep and solveSeedStep decorrelate the per-request admission and
// solver RNG streams; both are pure functions of the admission sequence
// number, which is what keeps placements bit-identical across worker counts.
const (
	admitSeedStep = 1_000_003
	solveSeedStep = 10_007
)

func (s *Service) admitSeed(seq int) int64 { return s.opt.Seed + int64(seq)*admitSeedStep }
func (s *Service) solveSeed(seq int) int64 { return s.opt.Seed + int64(seq)*solveSeedStep + 1 }

// batchItem carries one request through the three batch phases.
type batchItem struct {
	p         *pending
	req       *mec.Request
	inst      *core.Instance
	key       cacheKey
	hit       *cacheEntry
	sharedHit bool            // result shared from an identical item in this batch
	primNode  map[int]float64 // MHz consumed for primaries, for rollback/release
	initial   float64
	failErr   error // phase-1 admission failure
	res       *core.Result
	trialErr  *engine.TrialError
}

// processBatch runs one micro-batch through three phases:
//
//  1. Under the ledger write lock: place (or charge) primaries in sequence
//     order, hash the post-primaries ledger once, build read-only instances,
//     and look each up in the result cache.
//  2. Without the lock: solve every cache miss in parallel on the
//     deterministic trial engine, fail-soft, with the batch's minimum
//     per-request deadline as the trial timeout.
//  3. Under the lock again: commit in sequence order. A commit conflict
//     (an earlier commit consumed the headroom this solution budgeted
//     against) triggers one serial re-solve against the live ledger.
//
// Determinism: phases 1 and 3 iterate in admission-sequence order, and every
// RNG seed is a pure function of the sequence number, so identical request
// streams yield identical placements at any Workers count.
func (s *Service) processBatch(batch []*pending) {
	sort.Slice(batch, func(i, j int) bool { return batch[i].seq < batch[j].seq })
	metrics.batches.Inc()
	metrics.batchSize.Observe(float64(len(batch)))
	pickup := time.Now()
	items := make([]*batchItem, len(batch))

	// Phase 1: primaries + instances + cache lookups, under the ledger lock.
	s.state.mu.Lock()
	for i, p := range batch {
		metrics.queueWait.Observe(pickup.Sub(p.enqueued).Seconds())
		it := &batchItem{p: p}
		items[i] = it
		req := mec.NewRequest(p.seq, p.sfc, p.expectation, p.source, p.destination)
		it.req = req
		if len(p.primaries) > 0 {
			req.Primaries = append([]int(nil), p.primaries...)
			it.failErr = s.state.consumePrimariesLocked(req)
		} else {
			it.failErr = s.placePrimariesLocked(req)
		}
		if it.failErr == nil {
			it.primNode = make(map[int]float64, len(req.Primaries))
			for pos, v := range req.Primaries {
				it.primNode[v] += s.state.net.Catalog().Type(req.SFC[pos]).Demand
			}
		}
	}
	ledgerHash := s.state.hashLocked()
	for _, it := range items {
		if it.failErr != nil {
			continue
		}
		it.inst = core.NewInstance(s.state.net, it.req, core.Params{L: s.opt.HopBound})
		it.initial = it.inst.InitialReliability
		it.key = cacheKey{state: ledgerHash, sig: signatureHash(
			it.req.SFC, it.req.Expectation, it.req.Primaries, s.opt.HopBound, s.opt.Solver.Name())}
		if s.cacheable {
			if e, ok := s.cache.Get(it.key); ok {
				it.hit = &e
			}
		}
	}
	s.state.mu.Unlock()

	// Phase 2: parallel fail-soft solve of the cache misses. For cacheable
	// (deterministic) solvers, identical instances in the same batch — same
	// post-primaries ledger, same signature — solve once: the lowest-seq item
	// is the representative, followers share its result. A deterministic
	// solver would return the identical result for each anyway, so sharing
	// changes nothing but the work done.
	var toSolve []*batchItem
	followers := make(map[*batchItem]*batchItem)
	byKey := make(map[cacheKey]*batchItem)
	for _, it := range items {
		if it.failErr != nil || it.hit != nil {
			continue
		}
		if s.cacheable {
			if rep, ok := byKey[it.key]; ok {
				followers[it] = rep
				continue
			}
			byKey[it.key] = it
		}
		toSolve = append(toSolve, it)
	}
	solveStart := time.Now()
	if len(toSolve) > 0 {
		seeder := func(t int) int64 { return s.solveSeed(toSolve[t].seq()) }
		results, fails, _ := engine.RunPartial(context.Background(),
			len(toSolve), s.opt.Workers, seeder,
			func(t int, rng *rand.Rand) (*core.Result, error) {
				return s.opt.Solver.Solve(toSolve[t].inst, rng)
			},
			engine.FailSoftOptions{
				Tag:          "serve",
				TrialTimeout: batchDeadline(batch, s.opt.DefaultDeadline),
			})
		for t, res := range results {
			toSolve[t].res = res
		}
		for i := range fails {
			toSolve[fails[i].Trial].trialErr = &fails[i]
		}
	}
	for it, rep := range followers {
		it.res, it.trialErr, it.sharedHit = rep.res, rep.trialErr, true
		metrics.cacheHits.Inc()
	}
	solveTime := time.Since(solveStart)

	// Phase 3: commit in sequence order, respond.
	s.state.mu.Lock()
	for _, it := range items {
		s.finishItem(it, solveTime)
	}
	s.state.mu.Unlock()
}

func (it *batchItem) seq() int { return it.p.seq }

// placePrimariesLocked places a request's primaries with the configured
// admission policy, consuming capacity. Callers hold the ledger lock.
func (s *Service) placePrimariesLocked(req *mec.Request) error {
	var err error
	if s.opt.AdmitPolicy == AdmitMaxReliability {
		err = admission.PlaceMaxReliability(s.state.net, req)
	} else {
		rng := rand.New(rand.NewSource(s.admitSeed(req.ID)))
		err = admission.PlaceRandom(s.state.net, req, rng)
	}
	if err == nil {
		s.state.epoch++
	}
	return err
}

// batchDeadline returns the batch's trial timeout: the smallest positive
// per-request deadline (falling back to def for requests that set none).
// Zero means unbounded.
func batchDeadline(batch []*pending, def time.Duration) time.Duration {
	min := time.Duration(0)
	for _, p := range batch {
		d := p.deadline
		if d <= 0 {
			d = def
		}
		if d > 0 && (min == 0 || d < min) {
			min = d
		}
	}
	return min
}

// finishItem commits one item and answers its pending request. Callers hold
// the ledger write lock.
func (s *Service) finishItem(it *batchItem, solveTime time.Duration) {
	defer metrics.inflight.Add(-1)
	wait := time.Since(it.p.enqueued)

	fail := func(status int, cached bool, err error) {
		if it.primNode != nil {
			s.state.rollbackLocked(it.primNode)
		}
		if status == http.StatusGatewayTimeout {
			metrics.deadlineHits.Inc()
		} else {
			metrics.infeasible.Inc()
		}
		it.p.done <- outcome{status: status, errText: err.Error(), cached: cached, queueWait: wait, solveTime: solveTime}
	}

	if it.failErr != nil {
		fail(http.StatusUnprocessableEntity, false, fmt.Errorf("admission: %w", it.failErr))
		return
	}
	if it.hit != nil && it.hit.infeasible {
		// Negative hit: the solver already failed on this exact instance.
		fail(http.StatusUnprocessableEntity, true, errors.New(it.hit.errText))
		return
	}
	if it.trialErr != nil {
		if it.trialErr.Kind == engine.KindDeadline {
			fail(http.StatusGatewayTimeout, false, it.trialErr.Err)
			return
		}
		// A solver error (not a panic, not a timeout) is a pure function of
		// the instance for cacheable solvers, so remember it: the failed
		// request rolled its primaries back, leaving the state hash intact
		// for the next identical attempt to hit.
		if s.cacheable && !it.sharedHit && it.trialErr.Kind == engine.KindError {
			s.cache.Put(it.key, cacheEntry{infeasible: true, errText: it.trialErr.Err.Error()})
		}
		fail(http.StatusUnprocessableEntity, it.sharedHit, it.trialErr.Err)
		return
	}

	entry, cached := s.entryFor(it)
	if entry == nil {
		fail(http.StatusUnprocessableEntity, false, fmt.Errorf("serve: solver %s produced no usable result", s.opt.Solver.Name()))
		return
	}
	if err := s.state.commitSecondariesLocked(it.req.SFC, entry.perBin); err != nil {
		// Commit conflict: an earlier commit in this batch (or a concurrent
		// release) consumed the headroom. Re-solve once against the live
		// ledger, serially, with a deterministically re-derived seed.
		metrics.conflicts.Inc()
		entry = s.resolveConflictLocked(it)
		if entry == nil {
			fail(http.StatusUnprocessableEntity, false, fmt.Errorf("serve: re-solve after commit conflict failed"))
			return
		}
		cached = false
		if err := s.state.commitSecondariesLocked(it.req.SFC, entry.perBin); err != nil {
			fail(http.StatusUnprocessableEntity, false, err)
			return
		}
	} else if !cached && s.cacheable {
		s.cache.Put(it.key, *entry)
	}

	perNode := it.primNode
	for pos, m := range entry.perBin {
		demand := s.state.net.Catalog().Type(it.req.SFC[pos]).Demand
		for u, c := range m {
			perNode[u] += demand * float64(c)
		}
	}
	rec := &placed{
		ID:          it.req.ID,
		SFC:         it.req.SFC,
		Expectation: it.req.Expectation,
		Primaries:   it.req.Primaries,
		Secondaries: secondariesOf(entry.perBin),
		Reliability: entry.reliability,
		Met:         entry.met,
		Algorithm:   entry.algorithm,
		ServedBy:    entry.servedBy,
		perNode:     perNode,
	}
	s.state.record(rec)
	metrics.admitted.Inc()
	it.p.done <- outcome{
		status: http.StatusOK, placed: rec, cached: cached,
		initial: it.initial, queueWait: wait, solveTime: solveTime,
	}
}

// entryFor converts an item's cache hit or solver result into a commit-ready
// entry. A capacity-violating result (possible for the Randomized solver) is
// not servable and yields nil. The bool reports whether solver work was
// avoided (LRU hit or within-batch share).
func (s *Service) entryFor(it *batchItem) (*cacheEntry, bool) {
	if it.hit != nil {
		return it.hit, true
	}
	res := it.res
	if res == nil || res.Violated {
		return nil, false
	}
	e := entryFromResult(res)
	return &e, it.sharedHit
}

// resolveConflictLocked rebuilds the instance against the live ledger and
// solves it serially (attempt seed RetrySeed(solveSeed, 1), mirroring the
// fail-soft engine's retry derivation). Callers hold the ledger write lock;
// the solvers never touch the ledger, so solving under it is safe.
func (s *Service) resolveConflictLocked(it *batchItem) *cacheEntry {
	inst := core.NewInstance(s.state.net, it.req, core.Params{L: s.opt.HopBound})
	rng := rand.New(rand.NewSource(engine.RetrySeed(s.solveSeed(it.seq()), 1)))
	res, err := s.opt.Solver.Solve(inst, rng)
	if err != nil || res == nil || res.Violated {
		return nil
	}
	e := entryFromResult(res)
	if s.cacheable {
		s.cache.Put(cacheKey{state: s.state.hashLocked(), sig: it.key.sig}, e)
	}
	return &e
}

// entryFromResult deep-copies a solver result into cache-entry form.
func entryFromResult(res *core.Result) cacheEntry {
	perBin := make([]map[int]int, len(res.PerBin))
	for i, m := range res.PerBin {
		nm := make(map[int]int, len(m))
		for k, v := range m {
			nm[k] = v
		}
		perBin[i] = nm
	}
	return cacheEntry{
		perBin:      perBin,
		reliability: res.Reliability,
		met:         res.MetExpectation,
		algorithm:   res.Algorithm,
		servedBy:    res.ServedBy,
		objective:   res.Objective,
	}
}

// secondariesOf expands per-bin counts into sorted per-position host lists.
func secondariesOf(perBin []map[int]int) [][]int {
	out := make([][]int, len(perBin))
	for i, m := range perBin {
		var list []int
		for u, c := range m {
			for j := 0; j < c; j++ {
				list = append(list, u)
			}
		}
		sort.Ints(list)
		out[i] = list
	}
	return out
}
