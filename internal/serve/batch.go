package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mec"
	"repro/internal/obs/trace"
)

// Submission errors surfaced by the admission queue. The HTTP layer maps
// ErrQueueFull to 429 + Retry-After and ErrDraining to 503.
var (
	ErrQueueFull = errors.New("serve: admission queue full")
	ErrDraining  = errors.New("serve: draining, not accepting requests")
)

// pending is one request waiting in the admission queue.
type pending struct {
	seq         int
	tenant      string // resolved tenant name (never empty)
	sfc         []int
	expectation float64
	source      int
	destination int
	primaries   []int // optional pre-set primaries
	deadline    time.Duration
	enqueued    time.Time
	done        chan outcome // buffered; the batcher never blocks on it

	// tr is the request's lifecycle trace (nil with tracing disabled). It
	// travels with the pending through the queue channel — single-owner
	// everywhere — and is completed before the done send publishes it.
	tr        *trace.Trace
	queueSpan int
}

// outcome is the batcher's answer to one pending request.
type outcome struct {
	status    int // HTTP status code
	errText   string
	placed    *placed
	cached    bool
	initial   float64
	queueWait time.Duration
	solveTime time.Duration
	// solveNote/commitNote annotate the request's trace spans ("cache_hit",
	// "conflict_resolve", ...); trace is the completed snapshot delivered to
	// the waiter.
	solveNote  string
	commitNote string
	trace      *trace.Snapshot
}

// queue is the bounded admission queue plus its micro-batching machinery: a
// single dispatcher that forms batches (preserving PR 5's size/latency
// bounds) and stamps them with a dense batch sequence number, and N batcher
// goroutines that execute batches concurrently against pinned epochs. The
// commit gate reimposes the batch sequence at install time, so batch k+1's
// effects land after batch k's no matter which batcher was faster.
//
// The queue itself is a tenant-aware admission.FairQueue behind one mutex:
// FIFO discipline preserves global arrival order exactly; fair/knapsack run
// deficit round-robin over per-tenant sub-queues. Tenant token buckets are
// checked at Submit on the virtual batch clock (admission sequence ÷ batch
// size), so quota decisions are pure functions of the admission order and
// replay bit-identically. notEmpty is a one-slot wakeup signal: every push
// sends non-blocking, and the dispatcher re-polls after consuming one, so
// wakeups are never lost.
type queue struct {
	svc      *Service
	mu       sync.Mutex
	fq       *admission.FairQueue[*pending]
	notEmpty chan struct{}
	jobs     chan *batchJob
	// slots holds one token per idle batcher: the dispatcher takes a token
	// before forming a batch and the batcher returns it after committing.
	// This keeps the queue's backpressure bound exactly at QueueDepth —
	// requests never sit hidden in a dispatch pipeline — and makes a
	// single-batcher service behave precisely like the pre-MVCC design.
	slots chan struct{}
	gate  commitGate
	// speculate steers adaptive speculation: true after an identity commit
	// (the next batch's lock-free execution would be valid), false after an
	// install (it would be stale, so batchers execute inside the gate and
	// save the wasted solve). Purely a performance hint — committed results
	// are identical either way.
	speculate atomic.Bool
	draining  atomic.Bool
	stopCh    chan struct{}
	doneCh    chan struct{}
	wg        sync.WaitGroup
	batchSeq  uint64 // dispatcher-private; dense from 1
}

func newQueue(svc *Service, depth, batchers int) *queue {
	q := &queue{
		svc:      svc,
		fq:       admission.NewFairQueue[*pending](svc.tenantSpecs(), depth, svc.opt.Admission != AdmissionFIFO),
		notEmpty: make(chan struct{}, 1),
		jobs:     make(chan *batchJob),
		slots:    make(chan struct{}, batchers),
		stopCh:   make(chan struct{}),
		doneCh:   make(chan struct{}),
	}
	q.gate.init()
	q.speculate.Store(true)
	q.wg.Add(batchers)
	for i := 0; i < batchers; i++ {
		q.slots <- struct{}{}
		go func() {
			defer q.wg.Done()
			for job := range q.jobs {
				svc.processJob(job)
				q.slots <- struct{}{}
			}
		}()
	}
	go q.run()
	return q
}

// Submit enqueues p without blocking. A full queue (global bound, or the
// tenant's fair-share bound) rejects with ErrQueueFull and an empty tenant
// token bucket with ErrQuotaExceeded — the caller answers 429 with
// Retry-After for both; a draining queue rejects with ErrDraining (503).
//
// The tenant's bucket is refilled on the virtual batch clock — the admission
// sequence number divided by the batch size — before the take. Sequence
// numbers are assigned even to rejected submissions and replay reproduces
// the gaps (AdvanceSeq), so the refill schedule, and therefore every quota
// decision, is bit-identical between a recorded run and its replay.
func (q *queue) Submit(p *pending) error {
	if q.draining.Load() {
		return ErrDraining
	}
	ts := q.svc.tenants[p.tenant]
	q.mu.Lock()
	if ts.bucket != nil {
		ts.bucket.Refill(int64(p.seq) / int64(q.svc.opt.BatchSize))
		if ts.bucket.Tokens() < 1 {
			q.mu.Unlock()
			ts.mu.Lock()
			ts.rejectedQuota++
			ts.mu.Unlock()
			ts.ins.rejectedQuota.Inc()
			metrics.quotaDenials.Inc()
			return fmt.Errorf("%w: tenant %q", ErrQuotaExceeded, p.tenant)
		}
	}
	if err := q.fq.Push(p.tenant, p); err != nil {
		q.mu.Unlock()
		ts.mu.Lock()
		ts.rejectedQueue++
		ts.mu.Unlock()
		ts.ins.rejectedQueue.Inc()
		if errors.Is(err, admission.ErrTenantSaturated) {
			return fmt.Errorf("%w: tenant %q fair-share sub-queue full", ErrQueueFull, p.tenant)
		}
		return ErrQueueFull
	}
	if ts.bucket != nil {
		ts.bucket.TryTake()
	}
	depth, tdepth := q.fq.Len(), q.fq.TenantLen(p.tenant)
	q.mu.Unlock()
	metrics.queueDepth.Set(float64(depth))
	ts.ins.depth.Set(float64(tdepth))
	metrics.inflight.Add(1)
	select {
	case q.notEmpty <- struct{}{}:
	default:
	}
	return nil
}

// tryPop dequeues the next request under the configured discipline, updating
// the per-tenant depth gauge.
func (q *queue) tryPop() (*pending, bool) {
	q.mu.Lock()
	p, tenant, ok := q.fq.Pop()
	var tdepth int
	if ok {
		tdepth = q.fq.TenantLen(tenant)
	}
	q.mu.Unlock()
	if ok {
		q.svc.tenants[tenant].ins.depth.Set(float64(tdepth))
	}
	return p, ok
}

// Len returns the number of requests currently queued across all tenants.
func (q *queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.fq.Len()
}

// popWait blocks until a request is available or the queue is stopping.
func (q *queue) popWait() (*pending, bool) {
	for {
		if p, ok := q.tryPop(); ok {
			return p, true
		}
		select {
		case <-q.notEmpty:
		case <-q.stopCh:
			return nil, false
		}
	}
}

// Drain stops accepting new requests, flushes every request already queued
// through the normal batch path, and returns when every batcher has exited.
// Safe to call more than once.
func (q *queue) Drain() {
	if q.draining.CompareAndSwap(false, true) {
		close(q.stopCh)
	}
	<-q.doneCh
}

// run is the dispatcher: collect up to BatchSize requests or wait at most
// BatchWait after the first, then hand the batch to the batcher pool. On
// drain it flushes the queue in full batches without waiting on the timer,
// then closes the pool and waits for in-flight batches to commit.
func (q *queue) run() {
	defer close(q.doneCh)
	for {
		<-q.slots // wait for an idle batcher before forming a batch
		first, ok := q.popWait()
		if !ok {
			q.slots <- struct{}{}
			q.flush()
			return
		}
		q.dispatchFrom(first, false)
	}
}

// flush serves every request that made it into the queue before the drain
// flag flipped, then shuts the batcher pool down and waits for the last
// batch to commit.
func (q *queue) flush() {
	for {
		p, ok := q.tryPop()
		if !ok {
			close(q.jobs)
			q.wg.Wait()
			return
		}
		<-q.slots
		q.dispatchFrom(p, true)
	}
}

// dispatchFrom collects a batch starting at first and sends it to the
// batcher pool (blocking when all batchers are busy — the dispatcher is the
// pool's backpressure). When draining, only immediately available requests
// join (no timer wait). Under the knapsack discipline the dispatcher collects
// a wider window (Options.KnapsackWindow) so the scarcity-mode knapsack has a
// meaningful candidate set to choose from; the solve still covers only the
// admitted subset.
func (q *queue) dispatchFrom(first *pending, draining bool) {
	batch := []*pending{first}
	maxB := q.svc.opt.BatchSize
	if q.svc.opt.Admission == AdmissionKnapsack {
		maxB = q.svc.opt.KnapsackWindow
	}
	if !draining && maxB > 1 {
		timer := time.NewTimer(q.svc.opt.BatchWait)
	collect:
		for len(batch) < maxB {
			if p, ok := q.tryPop(); ok {
				batch = append(batch, p)
				continue
			}
			select {
			case <-q.notEmpty:
			case <-timer.C:
				break collect
			case <-q.stopCh:
				break collect
			}
		}
		timer.Stop()
	}
	for len(batch) < maxB {
		p, ok := q.tryPop()
		if !ok {
			break
		}
		batch = append(batch, p)
	}
	q.mu.Lock()
	depth := q.fq.Len()
	q.mu.Unlock()
	metrics.queueDepth.Set(float64(depth))
	sort.Slice(batch, func(i, j int) bool { return batch[i].seq < batch[j].seq })
	q.batchSeq++
	q.jobs <- &batchJob{
		seq:    q.batchSeq,
		batch:  batch,
		pickup: time.Now(),
	}
}

// commitGate serializes batch installs in batch-sequence order: a batcher
// that finished executing batch k+1 parks in enter until batch k has left.
// This is what makes the installed epoch sequence — and therefore every
// placement — independent of which batcher ran faster. Waiters park on a
// per-sequence channel, so leave wakes exactly the successor instead of
// broadcasting to the whole pool — on one core the spurious wakeups of a
// broadcast are whole context switches.
type commitGate struct {
	mu      sync.Mutex
	next    uint64
	waiters map[uint64]chan struct{}
}

func (g *commitGate) init() {
	g.next = 1
	g.waiters = make(map[uint64]chan struct{})
}

// enter blocks until it is seq's turn to commit.
func (g *commitGate) enter(seq uint64) {
	g.mu.Lock()
	if g.next == seq {
		g.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	g.waiters[seq] = ch
	g.mu.Unlock()
	<-ch
}

// leave passes the turn to the next batch sequence number, waking its
// batcher if it is already parked.
func (g *commitGate) leave() {
	g.mu.Lock()
	g.next++
	if ch, ok := g.waiters[g.next]; ok {
		delete(g.waiters, g.next)
		close(ch)
	}
	g.mu.Unlock()
}

// batchJob is one dispatched micro-batch: its commit-order slot, its
// requests in admission-sequence order, and the solve memo that carries
// results across a speculative execution and a post-conflict re-execution.
// The memo map is allocated on first write — most jobs commit on their
// first execution and never populate it past the initial solves.
type batchJob struct {
	seq    uint64
	batch  []*pending
	pickup time.Time
	memo   map[memoKey]memoVal

	// Stage boundaries stamped by processJob for the batch's trace spans:
	// the commit-gate wait and (when a WAL flush happened) the fsync wait.
	gateStart, gateEnd   time.Time
	fsyncStart, fsyncEnd time.Time
	fsynced              bool
}

// memoPut records a solver outcome, allocating the memo lazily.
func (j *batchJob) memoPut(k memoKey, v memoVal) {
	if j.memo == nil {
		j.memo = make(map[memoKey]memoVal)
	}
	j.memo[k] = v
}

// memoKey identifies one solver invocation within a job: the request's
// admission sequence, the attempt number (0 = first solve, 1 = the
// conflict re-solve), and the instance signature it ran against. Keying on
// the signature makes reuse sound: an identical key proves the solver would
// see a bit-identical instance with an identical seed, and solver outcomes
// are pure functions of (instance, seed).
type memoKey struct {
	seq     int
	attempt int
	inst    uint64
}

// memoVal is a memoized solver outcome (exactly one field is set, matching
// the fail-soft engine's result/error split; both nil records a conflict
// re-solve that errored).
type memoVal struct {
	res      *core.Result
	trialErr *engine.TrialError
}

// admitSeedStep and solveSeedStep decorrelate the per-request admission and
// solver RNG streams; both are pure functions of the admission sequence
// number, which is what keeps placements bit-identical across worker counts.
const (
	admitSeedStep = 1_000_003
	solveSeedStep = 10_007
)

func (s *Service) admitSeed(seq int) int64 { return s.opt.Seed + int64(seq)*admitSeedStep }
func (s *Service) solveSeed(seq int) int64 { return s.opt.Seed + int64(seq)*solveSeedStep + 1 }

// seededRand returns a *rand.Rand over core.CheapSource: bit-identical for
// a given seed everywhere, and cheap enough to build per request per batch
// execution (profiling showed the stdlib source's ~10µs table warmup
// dominated admission, re-paid serially under commitMu on every stale
// re-execution).
func seededRand(seed int64) *rand.Rand { return rand.New(core.CheapSource(seed)) }

// batchItem carries one request through the three phases of one batch
// execution. Items are rebuilt from scratch on re-execution (only the memo
// survives): every field below is a function of the epoch the execution ran
// against.
type batchItem struct {
	p         *pending
	shed      bool // dropped by knapsack admission under scarcity (phase 0)
	req       *mec.Request
	inst      *core.Instance
	key       cacheKey
	hit       *cacheEntry
	sharedHit bool            // result shared from an identical item in this batch
	primNode  map[int]float64 // MHz consumed for primaries, for rollback/release
	initial   float64
	failErr   error // phase-1 admission failure
	res       *core.Result
	trialErr  *engine.TrialError

	memoHit         bool // solver call skipped via the per-job memo
	conflictResolve bool // commit conflict forced a serial re-solve
}

func (it *batchItem) seq() int { return it.p.seq }

// batchExec is the outcome of executing one batch against one epoch: the
// would-be successor residual vector and hash, the placements to record, and
// one outcome per request (parallel to job.batch). Pure data — nothing is
// published until installBatchLocked.
type batchExec struct {
	outcomes  []outcome
	admits    []*placed
	res       []float64
	hash      uint64
	conflicts int64
	solveTime time.Duration

	// Phase boundaries of this execution (start → solveStart → solveEnd →
	// end) plus the execution kind (execSpeculative/execGated/execReexec) —
	// the trace spans' raw material, stamped once per batch.
	start      time.Time
	solveStart time.Time
	solveEnd   time.Time
	end        time.Time
	kind       string
}

// Batch execution kinds, annotated on every request's exec span.
const (
	execSpeculative = "speculative" // lock-free run against a pinned epoch
	execGated       = "gated"       // in-gate run (speculation predicted stale)
	execReexec      = "re-exec"     // in-gate rerun after a stale speculation
)

// processJob runs one batch speculatively and commits it in batch-sequence
// order — the MVCC core:
//
//  1. Pin the current epoch and execute the batch against it with no lock
//     held (admissions, solves, within-batch commits all happen on a private
//     copy-on-write fork). When the previous batch installed a new epoch the
//     speculation would be doomed, so the batcher skips it and executes
//     inside the gate instead (adaptive speculation — a pure performance
//     heuristic, invisible in the committed results).
//  2. Enter the commit gate (total order by batch sequence) and take the
//     install lock. If the live epoch still hashes like the pinned one, the
//     speculative execution is valid verbatim — batch execution is a pure
//     function of the residual vector. Otherwise some earlier batch or a
//     release moved the ledger: re-execute against the live epoch (the
//     cross-batch generalization of the one-serial-re-solve rule), reusing
//     memoized solver results for every item whose instance is unchanged.
//  3. Install the successor epoch (visible immediately), leave the gate so
//     the next batch can execute and commit, then perform this batch's WAL
//     fsync and answer its requests. Group commit: the next batch's solve
//     overlaps this batch's durability I/O, but no client sees a response
//     before its epoch is on disk.
//
// Determinism: the installed transition for batch k is always
// f(epoch_{k-1}, batch_k) with f deterministic, so the epoch sequence — and
// every placement — is bit-identical at any worker and batcher count.
func (s *Service) processJob(job *batchJob) {
	metrics.batches.Inc()
	metrics.batchSize.Observe(float64(len(job.batch)))
	var exec *batchExec
	var baseHash uint64
	if s.queue.speculate.Load() {
		base := s.state.pin()
		exec = s.executeBatch(base, job, execSpeculative)
		baseHash = base.hash
	} else {
		metrics.specSkipped.Inc()
	}

	job.gateStart = time.Now()
	s.queue.gate.enter(job.seq)
	s.state.commitMu.Lock()
	job.gateEnd = time.Now()
	metrics.stageGate.Observe(job.gateEnd.Sub(job.gateStart))
	live := s.state.pin()
	if exec == nil || live.hash != baseHash {
		kind := execGated
		if exec != nil {
			metrics.specStale.Inc()
			kind = execReexec
		}
		exec = s.executeBatch(live, job, kind)
	} else {
		metrics.specValid.Inc()
	}
	ticket := s.installBatchLocked(live, job, exec)
	s.state.commitMu.Unlock()
	s.queue.gate.leave()
	job.fsyncStart = time.Now()
	s.state.flushWAL(ticket)
	if job.fsynced = ticket != nil; job.fsynced {
		job.fsyncEnd = time.Now()
		metrics.stageFsync.Observe(job.fsyncEnd.Sub(job.fsyncStart))
	}
	s.deliverOutcomes(job, exec)
}

// installBatchLocked publishes a batch execution: advances the epoch (unless
// the batch admitted nothing and left the ledger bit-identical — the common
// all-infeasible case, which deliberately skips the epoch bump so trailing
// speculations stay valid) and returns the install's durability ticket (nil
// for identity transitions or without a WAL). It also steers adaptive
// speculation: after an identity commit the next batch's speculation would
// be valid, after an install it would be stale. Callers hold commitMu and
// the commit gate, and must flushWAL the ticket before delivering outcomes.
func (s *Service) installBatchLocked(live *epochLedger, job *batchJob, exec *batchExec) *walTicket {
	var ticket *walTicket
	identity := len(exec.admits) == 0 && exec.hash == live.hash
	if !identity {
		ticket = s.state.installLocked(exec.res, exec.hash, installOp{admits: exec.admits})
	}
	s.queue.speculate.Store(identity)
	metrics.conflicts.Add(exec.conflicts)
	return ticket
}

// deliverOutcomes answers every request of a committed batch. Runs after the
// batch's WAL flush (clients never observe a non-durable admission) and
// outside the gate, so the next batch commits while these channel sends wake
// their waiters. Each request's trace is completed, snapshotted into the
// flight recorder, and (above the slow threshold) dumped — all before the
// done send, whose channel synchronization publishes the trace to the waiter.
func (s *Service) deliverOutcomes(job *batchJob, exec *batchExec) {
	end := time.Now()
	for i := range exec.outcomes {
		p := job.batch[i]
		out := exec.outcomes[i]
		out.queueWait = end.Sub(p.enqueued)
		metrics.queueWait.Observe(job.pickup.Sub(p.enqueued).Seconds())
		switch out.status {
		case http.StatusOK:
			metrics.admitted.Inc()
			if rec := out.placed; !rec.Met {
				// Degraded answer: the request is served with its achieved
				// reliability, never silently — the watchdog tracks every
				// live placement running below its expectation.
				metrics.degradedAnswers.Inc()
				s.alerter.EvalSession(rec.ID, rec.Reliability, rec.Expectation, "admitted below expectation")
			}
		case http.StatusGatewayTimeout:
			metrics.deadlineHits.Inc()
		case http.StatusTooManyRequests:
			// Knapsack shed — counted per tenant (and in serve_shed_total) by
			// accountOutcome, not as an infeasibility.
		default:
			metrics.infeasible.Inc()
		}
		s.accountOutcome(p, &out)
		metrics.inflight.Add(-1)
		if p.tr != nil {
			snap := s.completeTrace(p, job, exec, &out, end)
			out.trace = &snap
			s.flight.Record(snap)
			if s.opt.TraceSlow > 0 && end.Sub(p.enqueued) > s.opt.TraceSlow {
				slog.Warn("serve: slow request",
					"trace_id", snap.TraceID, "seq", p.seq, "status", out.status,
					"timeline", snap.Timeline())
			}
		}
		p.done <- out
	}
}

// completeTrace stamps the request's stage spans from the batch's measured
// phase boundaries (one clock read per batch, not per request), ends the root
// at end, and returns the snapshot.
func (s *Service) completeTrace(p *pending, job *batchJob, exec *batchExec, out *outcome, end time.Time) trace.Snapshot {
	tr := p.tr
	tr.EndSpanAt(p.queueSpan, job.pickup)
	ex := tr.StartSpanAt("exec", trace.Root, exec.start)
	tr.Annotate(ex, exec.kind)
	admit := tr.StartSpanAt("admit", ex, exec.start)
	tr.EndSpanAt(admit, exec.solveStart)
	solve := tr.StartSpanAt("solve", ex, exec.solveStart)
	if out.solveNote != "" {
		tr.Annotate(solve, out.solveNote)
	}
	tr.EndSpanAt(solve, exec.solveEnd)
	commit := tr.StartSpanAt("commit", ex, exec.solveEnd)
	if out.commitNote != "" {
		tr.Annotate(commit, out.commitNote)
	}
	tr.EndSpanAt(commit, exec.end)
	tr.EndSpanAt(ex, exec.end)
	gate := tr.StartSpanAt("gate_wait", trace.Root, job.gateStart)
	tr.EndSpanAt(gate, job.gateEnd)
	if job.fsynced {
		fs := tr.StartSpanAt("wal_fsync", trace.Root, job.fsyncStart)
		tr.EndSpanAt(fs, job.fsyncEnd)
	}
	tr.Annotate(trace.Root, fmt.Sprintf("status=%d", out.status))
	tr.EndSpanAt(trace.Root, end)
	return tr.Snapshot()
}

// executeBatch runs one micro-batch against the epoch e, entirely on a
// private fork of the ledger, through three phases:
//
//  1. Place (or charge) primaries in sequence order on the fork, hash the
//     post-primaries ledger once, build read-only instances, and look each
//     up in the result cache.
//  2. Solve every cache miss in parallel on the deterministic trial engine,
//     fail-soft, with the batch's minimum per-request deadline as the trial
//     timeout. Solves hit the job memo first, so a re-execution after a
//     cross-batch conflict only re-solves items whose instances changed.
//  3. Commit in sequence order onto the fork. A within-batch commit conflict
//     (an earlier commit consumed the headroom this solution budgeted
//     against) triggers one serial re-solve, exactly as in the
//     single-batcher design.
//
// The returned execution is pure data against e; callers decide whether it
// installs.
func (s *Service) executeBatch(e *epochLedger, job *batchJob, kind string) *batchExec {
	fork := s.state.forkNet(e)
	items := make([]*batchItem, len(job.batch))
	exec := &batchExec{outcomes: make([]outcome, len(job.batch)), kind: kind, start: time.Now()}

	// Phase 0: knapsack admission under scarcity. The shed mask is a pure
	// function of (epoch, batch), and executeBatch is re-executed in commit
	// order when its pinned epoch went stale — so shed decisions inherit the
	// same bit-identity guarantee as placements.
	shed := s.knapsackShed(e, job.batch)

	// Phase 1: primaries + instances + cache lookups.
	for i, p := range job.batch {
		it := &batchItem{p: p}
		items[i] = it
		if shed != nil && shed[i] {
			it.shed = true
			continue
		}
		req := mec.NewRequest(p.seq, p.sfc, p.expectation, p.source, p.destination)
		it.req = req
		before := fork.ResidualSnapshot()
		if len(p.primaries) > 0 {
			req.Primaries = append([]int(nil), p.primaries...)
			it.failErr = consumePrimaries(fork, req)
		} else {
			it.failErr = s.placePrimaries(fork, req)
		}
		if it.failErr == nil {
			// Record the measured consumption, not the nominal demand: what a
			// release returns must be exactly what the ledger lost.
			it.primNode = make(map[int]float64, len(req.Primaries))
			for _, v := range req.Primaries {
				it.primNode[v] = before[v] - fork.Residual(v)
			}
		}
	}
	ledgerHash := hashResiduals(fork.ResidualSnapshot())
	for _, it := range items {
		if it.shed || it.failErr != nil {
			continue
		}
		it.inst = core.NewInstance(fork, it.req, core.Params{L: s.opt.HopBound})
		it.initial = it.inst.InitialReliability
		it.key = cacheKey{state: ledgerHash, sig: signatureHash(
			it.req.SFC, it.req.Expectation, it.req.Primaries, s.opt.HopBound, s.opt.Solver.Name())}
		if s.cacheable {
			if e, ok := s.cache.Get(it.key); ok {
				it.hit = &e
			}
		}
	}

	// Phase 2: parallel fail-soft solve of the cache misses. For cacheable
	// (deterministic) solvers, identical instances in the same batch — same
	// post-primaries ledger, same signature — solve once: the lowest-seq item
	// is the representative, followers share its result. A deterministic
	// solver would return the identical result for each anyway, so sharing
	// changes nothing but the work done.
	var toSolve []*batchItem
	followers := make(map[*batchItem]*batchItem)
	byKey := make(map[cacheKey]*batchItem)
	for _, it := range items {
		if it.shed || it.failErr != nil || it.hit != nil {
			continue
		}
		if s.cacheable {
			if rep, ok := byKey[it.key]; ok {
				followers[it] = rep
				continue
			}
			byKey[it.key] = it
		}
		toSolve = append(toSolve, it)
	}
	solveStart := time.Now()
	exec.solveStart = solveStart
	metrics.stageAdmit.Observe(solveStart.Sub(exec.start))
	var misses []*batchItem
	missKeys := make(map[*batchItem]memoKey)
	for _, it := range toSolve {
		k := memoKey{seq: it.seq(), attempt: 0, inst: instanceSig(it.inst)}
		if v, ok := job.memo[k]; ok {
			it.res, it.trialErr = v.res, v.trialErr
			it.memoHit = true
			metrics.memoHits.Inc()
			continue
		}
		missKeys[it] = k
		misses = append(misses, it)
	}
	if len(misses) > 0 {
		seeder := func(t int) int64 { return s.solveSeed(misses[t].seq()) }
		results, fails, _ := engine.RunPartial(context.Background(),
			len(misses), s.opt.Workers, seeder,
			func(t int, rng *rand.Rand) (*core.Result, error) {
				return s.opt.Solver.Solve(misses[t].inst, rng)
			},
			engine.FailSoftOptions{
				Tag:          "serve",
				TrialTimeout: batchDeadline(job.batch, s.opt.DefaultDeadline),
				// The cheap-seed source keeps sub-100µs solves from being
				// dominated by rng construction; still a pure function of the
				// seed, so placements stay bit-identical across worker and
				// batcher counts.
				Source: core.CheapSource,
			})
		for t, res := range results {
			misses[t].res = res
		}
		for i := range fails {
			misses[fails[i].Trial].trialErr = &fails[i]
		}
		for _, it := range misses {
			job.memoPut(missKeys[it], memoVal{res: it.res, trialErr: it.trialErr})
		}
	}
	for it, rep := range followers {
		it.res, it.trialErr, it.sharedHit = rep.res, rep.trialErr, true
		metrics.cacheHits.Inc()
	}
	exec.solveEnd = time.Now()
	exec.solveTime = exec.solveEnd.Sub(solveStart)
	metrics.stageSolve.Observe(exec.solveTime)

	// Phase 3: commit in sequence order onto the fork.
	for i, it := range items {
		out := s.finishItem(fork, job, it, exec)
		out.solveNote = solveNoteOf(it)
		if it.conflictResolve {
			out.commitNote = "conflict_resolve"
		}
		exec.outcomes[i] = out
	}
	exec.res = fork.ResidualSnapshot()
	exec.hash = hashResiduals(exec.res)
	exec.end = time.Now()
	metrics.stageCommit.Observe(exec.end.Sub(exec.solveEnd))
	metrics.stageExec.Observe(exec.end.Sub(exec.start))
	return exec
}

// solveNoteOf classifies how an item's solve phase was satisfied, for its
// trace span annotation.
func solveNoteOf(it *batchItem) string {
	switch {
	case it.shed:
		return "shed"
	case it.failErr != nil:
		return "admit_failed"
	case it.hit != nil:
		return "cache_hit"
	case it.sharedHit:
		return "shared"
	case it.memoHit:
		return "memoized"
	case it.trialErr != nil:
		return "failed"
	default:
		return "solved"
	}
}

// instanceSig hashes everything a solver (and its seed derivation) can
// observe about an instance: the hop bound, the request signature, the
// materialized bins and slots per position, and the raw residual bits at
// every bin the instance exposes. Equal signatures mean the solver sees a
// bit-identical problem, making memoized results transferable across batch
// re-executions.
func instanceSig(inst *core.Instance) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(int64(inst.Params.L)))
	put(math.Float64bits(inst.Req.Expectation))
	put(uint64(len(inst.Req.SFC)))
	for i, f := range inst.Req.SFC {
		put(uint64(int64(f)))
		put(uint64(int64(inst.Req.Primaries[i])))
	}
	for _, pos := range inst.Positions {
		put(uint64(len(pos.Bins)))
		for bi, b := range pos.Bins {
			put(uint64(int64(b)))
			put(uint64(int64(pos.Slots[bi])))
		}
	}
	put(uint64(len(inst.BinSet)))
	for _, u := range inst.BinSet {
		put(uint64(int64(u)))
		put(math.Float64bits(inst.Residual[u]))
	}
	return h.Sum64()
}

// placePrimaries places a request's primaries on the fork with the
// configured admission policy, consuming capacity there.
func (s *Service) placePrimaries(work *mec.Network, req *mec.Request) error {
	if s.opt.AdmitPolicy == AdmitMaxReliability {
		return admission.PlaceMaxReliability(work, req)
	}
	return admission.PlaceRandom(work, req, seededRand(s.admitSeed(req.ID)))
}

// batchDeadline returns the batch's trial timeout: the smallest positive
// per-request deadline (falling back to def for requests that set none).
// Zero means unbounded.
func batchDeadline(batch []*pending, def time.Duration) time.Duration {
	min := time.Duration(0)
	for _, p := range batch {
		d := p.deadline
		if d <= 0 {
			d = def
		}
		if d > 0 && (min == 0 || d < min) {
			min = d
		}
	}
	return min
}

// finishItem commits one item onto the fork and produces its outcome (not
// yet delivered — installBatchLocked answers the request once the batch's
// turn to commit arrives).
func (s *Service) finishItem(work *mec.Network, job *batchJob, it *batchItem, exec *batchExec) outcome {
	fail := func(status int, cached bool, err error) outcome {
		if it.primNode != nil {
			rollback(work, it.primNode)
		}
		return outcome{status: status, errText: err.Error(), cached: cached, solveTime: exec.solveTime}
	}

	if it.shed {
		// Phase 0 dropped the request before any primaries were placed —
		// nothing to roll back; the fork never saw it.
		return outcome{
			status:    http.StatusTooManyRequests,
			errText:   "serve: shed by knapsack admission under scarcity",
			solveTime: exec.solveTime,
		}
	}
	if it.failErr != nil {
		return fail(http.StatusUnprocessableEntity, false, fmt.Errorf("admission: %w", it.failErr))
	}
	if it.hit != nil && it.hit.infeasible {
		// Negative hit: the solver already failed on this exact instance.
		return fail(http.StatusUnprocessableEntity, true, errors.New(it.hit.errText))
	}
	if it.trialErr != nil {
		if it.trialErr.Kind == engine.KindDeadline {
			return fail(http.StatusGatewayTimeout, false, it.trialErr.Err)
		}
		// A solver error (not a panic, not a timeout) is a pure function of
		// the instance for cacheable solvers, so remember it: the failed
		// request rolled its primaries back, leaving the state hash intact
		// for the next identical attempt to hit.
		if s.cacheable && !it.sharedHit && it.trialErr.Kind == engine.KindError {
			s.cache.Put(it.key, cacheEntry{infeasible: true, errText: it.trialErr.Err.Error()})
		}
		return fail(http.StatusUnprocessableEntity, it.sharedHit, it.trialErr.Err)
	}

	entry, cached := s.entryFor(it)
	if entry == nil {
		return fail(http.StatusUnprocessableEntity, false, fmt.Errorf("serve: solver %s produced no usable result", s.opt.Solver.Name()))
	}
	consumed, err := commitSecondaries(work, it.req.SFC, entry.perBin)
	if err != nil {
		// Within-batch commit conflict: an earlier commit in this batch
		// consumed the headroom. Re-solve once against the fork's live view,
		// serially, with a deterministically re-derived seed.
		exec.conflicts++
		it.conflictResolve = true
		entry = s.resolveConflict(work, job, it)
		if entry == nil {
			return fail(http.StatusUnprocessableEntity, false, fmt.Errorf("serve: re-solve after commit conflict failed"))
		}
		cached = false
		if consumed, err = commitSecondaries(work, it.req.SFC, entry.perBin); err != nil {
			return fail(http.StatusUnprocessableEntity, false, err)
		}
	} else if !cached && s.cacheable {
		s.cache.Put(it.key, *entry)
	}

	perNode := it.primNode
	for u, mhz := range consumed {
		perNode[u] += mhz
	}
	rec := &placed{
		ID:          it.req.ID,
		Tenant:      it.p.tenant,
		SFC:         it.req.SFC,
		Expectation: it.req.Expectation,
		Source:      it.req.Source,
		Destination: it.req.Destination,
		Primaries:   it.req.Primaries,
		Secondaries: secondariesOf(entry.perBin),
		Reliability: entry.reliability,
		Met:         entry.met,
		Algorithm:   entry.algorithm,
		ServedBy:    entry.servedBy,
		perNode:     perNode,
	}
	exec.admits = append(exec.admits, rec)
	return outcome{
		status: http.StatusOK, placed: rec, cached: cached,
		initial: it.initial, solveTime: exec.solveTime,
	}
}

// entryFor converts an item's cache hit or solver result into a commit-ready
// entry. A capacity-violating result (possible for the Randomized solver) is
// not servable and yields nil. The bool reports whether solver work was
// avoided (LRU hit or within-batch share).
func (s *Service) entryFor(it *batchItem) (*cacheEntry, bool) {
	if it.hit != nil {
		return it.hit, true
	}
	res := it.res
	if res == nil || res.Violated {
		return nil, false
	}
	e := entryFromResult(res)
	return &e, it.sharedHit
}

// resolveConflict rebuilds the instance against the fork's current view and
// solves it serially (attempt seed RetrySeed(solveSeed, 1), mirroring the
// fail-soft engine's retry derivation), memoized under attempt 1 so a batch
// re-execution reuses the result when the conflicted instance is unchanged.
func (s *Service) resolveConflict(work *mec.Network, job *batchJob, it *batchItem) *cacheEntry {
	inst := core.NewInstance(work, it.req, core.Params{L: s.opt.HopBound})
	key := memoKey{seq: it.seq(), attempt: 1, inst: instanceSig(inst)}
	var res *core.Result
	if v, ok := job.memo[key]; ok {
		metrics.memoHits.Inc()
		if v.trialErr != nil || v.res == nil {
			return nil
		}
		res = v.res
	} else {
		rng := seededRand(engine.RetrySeed(s.solveSeed(it.seq()), 1))
		r, err := s.opt.Solver.Solve(inst, rng)
		if err != nil {
			job.memoPut(key, memoVal{})
			return nil
		}
		job.memoPut(key, memoVal{res: r})
		res = r
	}
	if res == nil || res.Violated {
		return nil
	}
	e := entryFromResult(res)
	if s.cacheable {
		s.cache.Put(cacheKey{state: hashResiduals(work.ResidualSnapshot()), sig: it.key.sig}, e)
	}
	return &e
}

// entryFromResult deep-copies a solver result into cache-entry form.
func entryFromResult(res *core.Result) cacheEntry {
	perBin := make([]map[int]int, len(res.PerBin))
	for i, m := range res.PerBin {
		nm := make(map[int]int, len(m))
		for k, v := range m {
			nm[k] = v
		}
		perBin[i] = nm
	}
	return cacheEntry{
		perBin:      perBin,
		reliability: res.Reliability,
		met:         res.MetExpectation,
		algorithm:   res.Algorithm,
		servedBy:    res.ServedBy,
		objective:   res.Objective,
	}
}

// secondariesOf expands per-bin counts into sorted per-position host lists.
func secondariesOf(perBin []map[int]int) [][]int {
	out := make([][]int, len(perBin))
	for i, m := range perBin {
		var list []int
		for u, c := range m {
			for j := 0; j < c; j++ {
				list = append(list, u)
			}
		}
		sort.Ints(list)
		out[i] = list
	}
	return out
}
