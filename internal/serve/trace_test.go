package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// traceService builds a generously provisioned service with tracing on.
func traceService(t *testing.T, opt Options) *Service {
	t.Helper()
	if opt.Workers == 0 {
		opt.Workers = 1
	}
	if opt.BatchWait == 0 {
		opt.BatchWait = time.Millisecond
	}
	svc, err := New(testNetwork(1000), opt)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func postAugment(t *testing.T, h http.Handler, path string, ar AugmentRequest) *httptest.ResponseRecorder {
	t.Helper()
	body, _ := json.Marshal(ar)
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestTraceHeaderAndEcho(t *testing.T) {
	svc := traceService(t, Options{})
	defer svc.Drain()
	h := svc.Handler()

	// Plain request: X-Trace-Id set, no trace body.
	w := postAugment(t, h, "/v1/augment", testRequest(0))
	id := w.Header().Get("X-Trace-Id")
	if len(id) != 16 {
		t.Fatalf("X-Trace-Id = %q, want 16 hex digits", id)
	}
	var resp AugmentResponse
	if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace != nil {
		t.Fatal("trace echoed without ?trace=1")
	}

	// ?trace=1 echoes the span timeline.
	w = postAugment(t, h, "/v1/augment?trace=1", testRequest(1))
	if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil {
		t.Fatal("?trace=1 did not echo the trace")
	}
	if resp.Trace.TraceID != w.Header().Get("X-Trace-Id") {
		t.Fatalf("echoed trace ID %s != header %s", resp.Trace.TraceID, w.Header().Get("X-Trace-Id"))
	}
	names := make(map[string]bool)
	for _, sp := range resp.Trace.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"request", "queue", "exec", "admit", "solve", "commit", "gate_wait"} {
		if !names[want] {
			t.Fatalf("trace missing %q span: %+v", want, resp.Trace.Spans)
		}
	}

	// The flight recorder holds both completed traces, served at /debug/traces.
	req := httptest.NewRequest(http.MethodGet, "/debug/traces", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/traces = %d", rec.Code)
	}
	if got := svc.FlightRecorder().Total(); got != 2 {
		t.Fatalf("flight recorder holds %d traces, want 2", got)
	}
}

func TestTraceDisabled(t *testing.T) {
	svc := traceService(t, Options{TraceDepth: -1})
	defer svc.Drain()
	h := svc.Handler()
	w := postAugment(t, h, "/v1/augment?trace=1", testRequest(0))
	if got := w.Header().Get("X-Trace-Id"); got != "" {
		t.Fatalf("X-Trace-Id = %q with tracing disabled", got)
	}
	if svc.FlightRecorder() != nil {
		t.Fatal("flight recorder allocated with tracing disabled")
	}
	req := httptest.NewRequest(http.MethodGet, "/debug/traces", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET /debug/traces = %d with tracing disabled, want 404", rec.Code)
	}
}

func TestTraceIDStableAcrossServices(t *testing.T) {
	a := traceService(t, Options{Seed: 42})
	b := traceService(t, Options{Seed: 42})
	defer a.Drain()
	defer b.Drain()
	if a.traceID(7) != b.traceID(7) {
		t.Fatal("trace IDs must be pure functions of (seed, seq)")
	}
	if a.traceID(7) == a.traceID(8) {
		t.Fatal("adjacent sequences collided")
	}
	c := traceService(t, Options{Seed: 43})
	defer c.Drain()
	if a.traceID(7) == c.traceID(7) {
		t.Fatal("different seeds must yield different trace IDs")
	}
}

func TestTraceWriterRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "req.trace")
	tw, err := OpenTraceWriter(path, TraceOp{Seed: 9, Solver: "Failsafe", HopBound: 1, AdmitPolicy: AdmitRandom})
	if err != nil {
		t.Fatal(err)
	}
	tw.Record(TraceOp{Op: OpAugment, Seq: 1, SFC: []int{0, 1}, Expectation: 0.9, Source: 0, Destination: 2})
	tw.Record(TraceOp{Op: OpRelease, ID: 1})
	if err := tw.CloseWith(TraceOp{Hash: "00000000deadbeef", Placed: 1, Epoch: 3}); err != nil {
		t.Fatal(err)
	}

	meta, ops, eof, err := ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Seed != 9 || meta.Solver != "Failsafe" || meta.HopBound != 1 || meta.AdmitPolicy != AdmitRandom {
		t.Fatalf("meta = %+v", meta)
	}
	if len(ops) != 2 || ops[0].Op != OpAugment || ops[0].Seq != 1 || ops[1].Op != OpRelease || ops[1].ID != 1 {
		t.Fatalf("ops = %+v", ops)
	}
	if eof == nil || eof.Hash != "00000000deadbeef" || eof.Placed != 1 || eof.Ops != 2 {
		t.Fatalf("eof = %+v", eof)
	}
	if ops[1].AtUS < ops[0].AtUS {
		t.Fatalf("op offsets must be monotone: %d then %d", ops[0].AtUS, ops[1].AtUS)
	}
}

func TestReadTraceTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "req.trace")
	tw, err := OpenTraceWriter(path, TraceOp{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tw.Record(TraceOp{Op: OpAugment, Seq: 1, SFC: []int{0}, Expectation: 0.9})
	if err := tw.CloseWith(TraceOp{Hash: "aa"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Torn final frame (crash mid-append): tolerated, trailer lost.
	torn := raw[:len(raw)-4]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	_, ops, eof, err := ReadTrace(path)
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if len(ops) != 1 || eof != nil {
		t.Fatalf("torn tail: ops=%d eof=%v", len(ops), eof)
	}

	// Corrupt frame before an intact one: data loss, must error.
	lines := strings.SplitAfter(string(raw), "\n")
	lines[1] = "deadbeef {corrupt}\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadTrace(path); err == nil {
		t.Fatal("mid-file corruption must be an error")
	}
}

func TestAdvanceSeq(t *testing.T) {
	svc := traceService(t, Options{})
	defer svc.Drain()
	svc.AdvanceSeq(10)
	tk, err := svc.Enqueue(testRequest(0))
	if err != nil {
		t.Fatal(err)
	}
	if tk.p.seq != 11 {
		t.Fatalf("seq after AdvanceSeq(10) = %d, want 11", tk.p.seq)
	}
	tk.Wait()
	svc.AdvanceSeq(5) // never moves backwards
	tk2, err := svc.Enqueue(testRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if tk2.p.seq != 12 {
		t.Fatalf("seq after backwards AdvanceSeq = %d, want 12", tk2.p.seq)
	}
	tk2.Wait()
}
