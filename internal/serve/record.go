package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/serve/wal"
)

// Request-trace operation kinds. A trace file is a header (OpMeta), a body of
// OpAugment/OpRelease/OpNode operations in admission order, and an optional
// OpEOF trailer carrying the run's final state for replay verification.
const (
	// OpMeta is the trace header: the recording service's determinism-relevant
	// configuration (seed, solver, hop bound, admission policy).
	OpMeta = "meta"
	// OpAugment is one admitted augmentation request, with its assigned
	// admission sequence number.
	OpAugment = "augment"
	// OpRelease is one successful placement release.
	OpRelease = "release"
	// OpNode is one applied node health transition (down/up/degraded).
	OpNode = "node"
	// OpEOF is the trailer: final state hash, placement count, and epoch of
	// the recorded run — the ground truth a replay must reproduce.
	OpEOF = "eof"
)

// TraceOp is one line of a recorded request trace. One struct covers all
// four operation kinds; unused fields are omitted from the JSON.
type TraceOp struct {
	// Op is the operation kind (OpMeta, OpAugment, OpRelease, OpEOF).
	Op string `json:"op"`
	// AtUS is the operation's offset from the recording's start in
	// microseconds — what the replay clock advances to.
	AtUS int64 `json:"at_us"`

	// Meta fields (OpMeta). Admission and Tenants record the queue
	// discipline and tenant specification of the recording run — quota and
	// fair-queueing decisions are part of the admission sequence a replay
	// must reproduce, so replays verify them alongside seed and solver.
	Seed        int64  `json:"seed,omitempty"`
	Solver      string `json:"solver,omitempty"`
	HopBound    int    `json:"l,omitempty"`
	AdmitPolicy string `json:"admit,omitempty"`
	Admission   string `json:"admission,omitempty"`
	Tenants     string `json:"tenants,omitempty"`

	// Augment fields (OpAugment): Seq is the admission sequence the recording
	// run assigned — replay reproduces it exactly (including gaps from
	// rejected submissions) so every per-request RNG seed matches.
	Seq         int     `json:"seq,omitempty"`
	SFC         []int   `json:"sfc,omitempty"`
	Expectation float64 `json:"rho,omitempty"`
	Source      int     `json:"src"` // AP 0 is valid — never omitted
	Destination int     `json:"dst"`
	Primaries   []int   `json:"primaries,omitempty"`
	DeadlineMS  int     `json:"deadline_ms,omitempty"`
	// Tenant is the resolved admission-economics principal of an OpAugment
	// (empty means the default tenant).
	Tenant string `json:"tenant,omitempty"`
	// Sync marks an augment the producer waited on before submitting anything
	// else (re-augmentation enqueues). Micro-batch composition is an input to
	// every solve — phase 1 charges the whole batch's primaries before any
	// secondaries are placed — so the replay driver must flush its in-flight
	// window at sync points to reproduce the recorded batching.
	Sync bool `json:"sync,omitempty"`

	// Release field (OpRelease) — the placement ID torn down. For OpNode, the
	// cloudlet the health transition applies to.
	ID int `json:"id,omitempty"`
	// Node field (OpNode) — the health state entered.
	Health string `json:"health,omitempty"`

	// EOF fields (OpEOF).
	Hash   string `json:"hash,omitempty"`
	Placed int    `json:"placed,omitempty"`
	Epoch  uint64 `json:"epoch,omitempty"`
	// Ops counts the body operations recorded before the trailer.
	Ops uint64 `json:"ops,omitempty"`
}

// TraceWriter is the append-only request-trace recorder: every admitted
// augmentation and successful release is framed with the WAL's CRC framing
// and appended to one file, so `augmentd -replay` can re-drive the workload
// bit-identically. Recording degrades on I/O error — a broken disk must not
// take the serving path down — and the first error is logged once.
type TraceWriter struct {
	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	start time.Time
	ops   uint64
	err   error
}

// OpenTraceWriter creates (truncating) the trace file at path and writes the
// meta header.
func OpenTraceWriter(path string, meta TraceOp) (*TraceWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: create trace file: %w", err)
	}
	t := &TraceWriter{f: f, w: bufio.NewWriter(f), start: time.Now()}
	meta.Op = OpMeta
	t.append(meta)
	return t, nil
}

// Record appends one body operation, stamping its time offset. Never fails:
// on I/O error the writer degrades to a no-op (logged once).
func (t *TraceWriter) Record(op TraceOp) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	op.AtUS = time.Since(t.start).Microseconds()
	t.append(op)
	t.ops++
}

// append marshals and frames op under t.mu. Sets t.err on failure.
func (t *TraceWriter) append(op TraceOp) {
	payload, err := json.Marshal(op)
	if err == nil {
		_, err = t.w.Write(wal.EncodeFrame(payload))
	}
	if err != nil && t.err == nil {
		t.err = err
		slog.Error("serve: trace recording degraded", "err", err)
	}
}

// CloseWith appends the EOF trailer (stamped with the body-operation count)
// and closes the file. Returns the first recording error, if any.
func (t *TraceWriter) CloseWith(eof TraceOp) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil {
		eof.Op = OpEOF
		eof.AtUS = time.Since(t.start).Microseconds()
		eof.Ops = t.ops
		t.append(eof)
	}
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	if err := t.f.Close(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// ReadTrace parses a recorded request trace: the meta header, the body
// operations in recorded order, and the EOF trailer (nil when the recording
// was cut short — a torn final frame is tolerated, exactly like the WAL's
// crash tail; a corrupt frame before an intact one is an error).
func ReadTrace(path string) (meta TraceOp, ops []TraceOp, eof *TraceOp, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return meta, nil, nil, fmt.Errorf("serve: read trace: %w", err)
	}
	lines := strings.Split(string(raw), "\n")
	var decoded []TraceOp
	for i, line := range lines {
		if line == "" {
			continue
		}
		payload, ok := wal.DecodeFrame(line)
		var op TraceOp
		if ok {
			ok = json.Unmarshal(payload, &op) == nil
		}
		if !ok {
			for _, rest := range lines[i+1:] {
				if rest != "" {
					return meta, nil, nil, fmt.Errorf("serve: corrupt trace frame at line %d of %s with intact frames after it", i+1, path)
				}
			}
			break
		}
		decoded = append(decoded, op)
	}
	if len(decoded) == 0 || decoded[0].Op != OpMeta {
		return meta, nil, nil, fmt.Errorf("serve: trace %s has no meta header", path)
	}
	meta = decoded[0]
	decoded = decoded[1:]
	if n := len(decoded); n > 0 && decoded[n-1].Op == OpEOF {
		eof = &decoded[n-1]
		decoded = decoded[:n-1]
	}
	for _, op := range decoded {
		if op.Op != OpAugment && op.Op != OpRelease && op.Op != OpNode {
			return meta, nil, nil, fmt.Errorf("serve: unexpected trace op %q in %s", op.Op, path)
		}
	}
	return meta, decoded, eof, nil
}
