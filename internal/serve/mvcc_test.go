package serve

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// runStream drives svc with a deterministic request stream from a single
// goroutine (the Enqueue determinism contract), in waves, optionally
// releasing every releaseEvery-th admitted placement between waves. It
// returns a timing-independent placement log plus the final state hash.
func runStream(t *testing.T, svc *Service, n int, seed int64, releaseEvery int) (string, uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var log strings.Builder
	var admitted []int
	const wave = 16
	for submitted := 0; submitted < n; {
		k := wave
		if left := n - submitted; k > left {
			k = left
		}
		tickets := make([]*Ticket, 0, k)
		for i := 0; i < k; i++ {
			sfc := make([]int, 2+rng.Intn(2))
			for j := range sfc {
				sfc[j] = rng.Intn(2)
			}
			tk, err := svc.Enqueue(AugmentRequest{
				SFC: sfc, Expectation: 0.9,
				Source: rng.Intn(5), Destination: rng.Intn(5),
			})
			if err != nil {
				t.Fatalf("enqueue %d: %v", submitted, err)
			}
			tickets = append(tickets, tk)
			submitted++
		}
		for _, tk := range tickets {
			out := tk.Wait()
			if out.Status != http.StatusOK {
				fmt.Fprintf(&log, "status=%d\n", out.Status)
				continue
			}
			r := out.Response
			fmt.Fprintf(&log, "id=%d rel=%.12f met=%v counts=%v sec=%v\n",
				r.ID, r.Reliability, r.MetExpectation, r.BackupCounts, r.Secondaries)
			admitted = append(admitted, r.ID)
		}
		if releaseEvery > 0 {
			for len(admitted) >= releaseEvery {
				id := admitted[releaseEvery-1]
				admitted = admitted[releaseEvery:]
				if _, err := svc.State().Release(id); err != nil {
					t.Fatalf("release %d: %v", id, err)
				}
			}
		}
	}
	return log.String(), svc.State().Hash()
}

// TestBatcherCountDeterminism pins the tentpole guarantee: placements and the
// final ledger are bit-identical whether batches execute on one batcher or
// speculatively on four.
func TestBatcherCountDeterminism(t *testing.T) {
	run := func(batchers int) (string, uint64) {
		svc, err := New(testNetwork(1000), Options{
			Workers: 2, Batchers: batchers, Seed: 7,
			BatchSize: 4, BatchWait: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Drain()
		return runStream(t, svc, 64, 11, 5)
	}
	log1, hash1 := run(1)
	log4, hash4 := run(4)
	if log1 != log4 {
		t.Fatalf("placement logs differ between 1 and 4 batchers:\n--- 1 ---\n%s--- 4 ---\n%s", log1, log4)
	}
	if hash1 != hash4 {
		t.Fatalf("final state hash differs: %016x vs %016x", hash1, hash4)
	}
}

// TestLedgerConservationOverAdmitReleaseCycles pins the residual-clamping
// fix: what a release returns is exactly what the commit consumed, so
// repeated admit/release cycles leave the ledger bit-identical (the old
// math.Min clamp could consume less than it later released, slowly inflating
// residual capacity).
func TestLedgerConservationOverAdmitReleaseCycles(t *testing.T) {
	svc, err := New(testNetwork(1000), Options{Workers: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	h0 := svc.State().Hash()
	cloudlets0, _, _ := svc.State().Snapshot()

	for cycle := 0; cycle < 20; cycle++ {
		tk, err := svc.Enqueue(testRequest(cycle))
		if err != nil {
			t.Fatal(err)
		}
		out := tk.Wait()
		if out.Status != http.StatusOK {
			t.Fatalf("cycle %d: status %d (%s)", cycle, out.Status, out.Err)
		}
		p, ok := svc.State().Placement(out.Response.ID)
		if !ok {
			t.Fatalf("cycle %d: placement %d not recorded", cycle, out.Response.ID)
		}
		freed, err := svc.State().Release(out.Response.ID)
		if err != nil {
			t.Fatal(err)
		}
		if freed != p.ConsumedMHz {
			t.Fatalf("cycle %d: released %v MHz, placement recorded %v", cycle, freed, p.ConsumedMHz)
		}
		if h := svc.State().Hash(); h != h0 {
			cloudlets, _, _ := svc.State().Snapshot()
			for i := range cloudlets {
				if cloudlets[i].Residual != cloudlets0[i].Residual {
					t.Fatalf("cycle %d: node %d residual drifted %v -> %v",
						cycle, cloudlets[i].ID, cloudlets0[i].Residual, cloudlets[i].Residual)
				}
			}
			t.Fatalf("cycle %d: ledger hash drifted %016x -> %016x", cycle, h0, h)
		}
	}
}

// TestConcurrentReleaseRacingBatchCommit races /v1/release against batch
// commits on four batchers (run it under -race): the ledger must conserve
// capacity exactly, and replaying the WAL — the serial record of the same
// event order — must rebuild the identical state hash and placement map.
func TestConcurrentReleaseRacingBatchCommit(t *testing.T) {
	dir := t.TempDir()
	svc, err := New(testNetwork(1000), Options{
		Workers: 2, Batchers: 4, Seed: 9,
		BatchSize: 4, BatchWait: 50 * time.Millisecond,
		WALDir: dir, WALSync: "none", SnapshotEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}

	releaseCh := make(chan int, 256)
	var wg sync.WaitGroup
	wg.Add(1)
	released := 0
	go func() {
		defer wg.Done()
		for id := range releaseCh {
			if _, err := svc.State().Release(id); err == nil {
				released++
			}
		}
	}()

	rng := rand.New(rand.NewSource(5))
	admitted := 0
	for wave := 0; wave < 8; wave++ {
		tickets := make([]*Ticket, 0, 16)
		for i := 0; i < 16; i++ {
			sfc := make([]int, 2+rng.Intn(2))
			for j := range sfc {
				sfc[j] = rng.Intn(2)
			}
			tk, err := svc.Enqueue(AugmentRequest{
				SFC: sfc, Expectation: 0.9,
				Source: rng.Intn(5), Destination: rng.Intn(5),
			})
			if err != nil {
				t.Fatal(err)
			}
			tickets = append(tickets, tk)
		}
		for i, tk := range tickets {
			out := tk.Wait()
			if out.Status == http.StatusOK {
				admitted++
				if i%3 == 0 {
					// Hand the ID to the releaser while later waves commit.
					releaseCh <- out.Response.ID
				}
			}
		}
	}
	close(releaseCh)
	wg.Wait()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if admitted == 0 {
		t.Fatal("workload admitted nothing; the race exercised no commits")
	}

	// Conservation: every consumed MHz is attributed to a live placement.
	cloudlets, _, liveHash := svc.State().Snapshot()
	totalResidual, totalCapacity := 0.0, 0.0
	for _, c := range cloudlets {
		totalResidual += c.Residual
		totalCapacity += c.Capacity
	}
	totalHeld := 0.0
	for id := 1; id <= 1024; id++ {
		if p, ok := svc.State().Placement(id); ok {
			totalHeld += p.ConsumedMHz
		}
	}
	if totalResidual+totalHeld != totalCapacity {
		t.Fatalf("ledger does not conserve: residual %v + held %v != capacity %v",
			totalResidual, totalHeld, totalCapacity)
	}

	// Serial replay of the same event order (the WAL) rebuilds the state.
	restored, err := NewStateFromWAL(testNetwork(1000), dir)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Hash() != liveHash {
		t.Fatalf("replayed hash %016x != live %016x", restored.Hash(), liveHash)
	}
	if restored.PlacedCount() != svc.State().PlacedCount() {
		t.Fatalf("replayed %d placements, live has %d", restored.PlacedCount(), svc.State().PlacedCount())
	}
	if restored.Epoch() != svc.State().Epoch() {
		t.Fatalf("replayed epoch %d != live %d", restored.Epoch(), svc.State().Epoch())
	}
}

// TestRestoreBootsIdenticalService runs a WAL-backed workload, then boots a
// second service with Options.Restore and checks it serves the exact
// pre-shutdown state — and keeps appending to the same log.
func TestRestoreBootsIdenticalService(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Workers: 1, Seed: 5,
		WALDir: dir, WALSync: "none", SnapshotEvery: 4,
	}
	svc, err := New(testNetwork(1000), opts)
	if err != nil {
		t.Fatal(err)
	}
	_, hash := runStream(t, svc, 24, 13, 4)
	placed := svc.State().PlacedCount()
	epoch := svc.State().Epoch()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if placed == 0 {
		t.Fatal("workload left nothing placed; restore would be vacuous")
	}

	opts.Restore = true
	svc2, err := New(testNetwork(1000), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if got := svc2.State().Hash(); got != hash {
		t.Fatalf("restored hash %016x != pre-shutdown %016x", got, hash)
	}
	if got := svc2.State().PlacedCount(); got != placed {
		t.Fatalf("restored %d placements, want %d", got, placed)
	}
	if got := svc2.State().Epoch(); got != epoch {
		t.Fatalf("restored epoch %d, want %d", got, epoch)
	}
	// The restored service keeps serving: a release of a replayed placement
	// and a fresh admission both work against the restored ledger.
	var anyID int
	for id := 1; id <= 1024; id++ {
		if _, ok := svc2.State().Placement(id); ok {
			anyID = id
			break
		}
	}
	if _, err := svc2.State().Release(anyID); err != nil {
		t.Fatalf("release of replayed placement %d: %v", anyID, err)
	}
	tk, err := svc2.Enqueue(testRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if out := tk.Wait(); out.Status != http.StatusOK {
		t.Fatalf("fresh admission after restore answered %d (%s)", out.Status, out.Err)
	}
}

// refHashResiduals is the pre-refactor hand-rolled byte loop, kept as the
// reference the binary.LittleEndian implementation must match bit for bit.
func refHashResiduals(res []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range res {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// TestStateHashMatchesReference pins that the PutUint64 rewrite of the state
// hash is equivalent to the hand-rolled loop it replaced (cache keys and WAL
// hashes recorded by older builds stay comparable).
func TestStateHashMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		res := make([]float64, 1+rng.Intn(256))
		for i := range res {
			res[i] = rng.Float64() * 8000
		}
		res[rng.Intn(len(res))] = 0
		if got, want := hashResiduals(res), refHashResiduals(res); got != want {
			t.Fatalf("trial %d: hashResiduals %016x != reference %016x", trial, got, want)
		}
	}
}

// BenchmarkStateHash guards the state-hash hot path: it runs once per batch
// execution and once per install, over the full residual vector.
func BenchmarkStateHash(b *testing.B) {
	res := make([]float64, 1024)
	rng := rand.New(rand.NewSource(1))
	for i := range res {
		res[i] = rng.Float64() * 8000
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = hashResiduals(res)
	}
	_ = sink
}
