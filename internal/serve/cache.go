package serve

import (
	"container/list"
	"hash/fnv"
	"math"
	"sync"
)

// cacheKey identifies a solver result: the canonical hash of the residual
// ledger the instance was built against plus the request-signature hash
// (SFC, ρ, primaries, hop bound, solver name). Keying on the exact state
// hash is what makes serving a cached entry always correct: a hit proves the
// solver would see a bit-identical instance, and every registered serving
// solver is a pure function of its instance (see Options.Solver for the
// Randomized caveat).
type cacheKey struct {
	state uint64
	sig   uint64
}

// cacheEntry is a stored solver outcome, deep-copied on insert and on hit so
// neither the cache nor its consumers can alias each other's maps.
type cacheEntry struct {
	perBin      []map[int]int
	reliability float64
	met         bool
	algorithm   string
	servedBy    string
	objective   float64
	// infeasible marks a negative entry: the solver deterministically failed
	// on this exact instance, and errText carries the failure. Negative
	// entries are the cache's bread and butter — a successful solve mutates
	// the ledger (so its key can never match a later state), but a failed one
	// rolls back, leaving the state hash intact for the next identical retry.
	infeasible bool
	errText    string
}

// resultCache is a mutex-guarded LRU over solver outcomes. Capacity
// mutations invalidate implicitly — the state hash in the key changes — and
// explicitly via Invalidate, which the service calls on /v1/release (a
// release can resurrect an earlier ledger state, but the pinned behaviour is
// that mutations outside the admission path flush the cache).
type resultCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recent; values are *cacheItem
	items map[cacheKey]*list.Element
}

type cacheItem struct {
	key   cacheKey
	entry cacheEntry
}

// newResultCache returns an LRU bounded to max entries; max <= 0 disables
// caching entirely (every Get misses, every Put is dropped).
func newResultCache(max int) *resultCache {
	return &resultCache{max: max, order: list.New(), items: make(map[cacheKey]*list.Element)}
}

// Get returns a deep copy of the entry for key, marking it most recent.
func (c *resultCache) Get(key cacheKey) (cacheEntry, bool) {
	if c.max <= 0 {
		metrics.cacheMisses.Inc()
		return cacheEntry{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		metrics.cacheMisses.Inc()
		return cacheEntry{}, false
	}
	c.order.MoveToFront(el)
	metrics.cacheHits.Inc()
	return el.Value.(*cacheItem).entry.copy(), true
}

// Put stores a deep copy of entry under key, evicting the least recently
// used entry when the cache is full.
func (c *resultCache) Put(key cacheKey, entry cacheEntry) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheItem).entry = entry.copy()
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheItem).key)
		metrics.cacheEvicted.Inc()
	}
	c.items[key] = c.order.PushFront(&cacheItem{key: key, entry: entry.copy()})
	metrics.cacheSize.Set(float64(c.order.Len()))
}

// Invalidate drops every entry.
func (c *resultCache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.items = make(map[cacheKey]*list.Element)
	metrics.cacheSize.Set(0)
}

// Len returns the current entry count.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// copy deep-copies the entry's per-bin maps.
func (e cacheEntry) copy() cacheEntry {
	out := e
	out.perBin = make([]map[int]int, len(e.perBin))
	for i, m := range e.perBin {
		nm := make(map[int]int, len(m))
		for k, v := range m {
			nm[k] = v
		}
		out.perBin[i] = nm
	}
	return out
}

// signatureHash hashes everything besides the ledger that determines a
// solver's output: the SFC, the expectation, the primaries, the hop bound,
// and the solver name.
func signatureHash(sfc []int, expectation float64, primaries []int, hopBound int, solver string) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(len(sfc)))
	for _, f := range sfc {
		put(uint64(int64(f)))
	}
	put(math.Float64bits(expectation))
	put(uint64(len(primaries)))
	for _, v := range primaries {
		put(uint64(int64(v)))
	}
	put(uint64(int64(hopBound)))
	h.Write([]byte(solver))
	return h.Sum64()
}
