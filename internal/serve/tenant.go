package serve

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/serve/wal"
)

// Admission queue disciplines (Options.Admission).
const (
	// AdmissionFIFO serves requests in global arrival order — the
	// single-tenant pre-economics behavior (default).
	AdmissionFIFO = "fifo"
	// AdmissionFair runs deficit round-robin over per-tenant sub-queues with
	// quantum proportional to tenant weight, and bounds each sub-queue to its
	// fair share of the queue depth.
	AdmissionFair = "fair"
	// AdmissionKnapsack is AdmissionFair plus scarcity-mode batch admission:
	// when the pinned epoch's residual fraction falls below the watermark,
	// the micro-batcher collects a wider window and admits the subset
	// maximizing Σ tenant-weight × log-gain, subject to packing feasibility
	// (core.SelectAdmission over the BMCGAP oracle). Unselected requests are
	// shed with 429.
	AdmissionKnapsack = "knapsack"
)

// ErrQuotaExceeded is returned by Enqueue when the tenant's token bucket is
// empty. The HTTP layer answers 429 with Retry-After, like a full queue, but
// the error text and metrics distinguish the two.
var ErrQuotaExceeded = errors.New("serve: tenant quota exceeded")

// knapsackGainFloor is the minimum per-request log-gain credited during
// knapsack admission, so requests whose initial reliability already meets ρ
// (log-gain 0) still carry weight-proportional value instead of vanishing
// from the objective.
const knapsackGainFloor = 1e-6

// tenantState is one tenant's runtime state: its spec, its token bucket
// (nil when the tenant has no quota; guarded by the queue mutex), and its
// served-traffic accounting (guarded by mu).
type tenantState struct {
	spec   admission.Tenant
	bucket *admission.Bucket

	mu            sync.Mutex
	admitted      int64
	rejectedQuota int64
	rejectedQueue int64
	shed          int64
	infeasible    int64
	logGain       float64 // Σ weight × log(u/u0) over admitted requests

	ins tenantInstruments
}

// normalizeTenants copies the declared tenant set, appends the implicit
// default tenant when absent, and sorts by name — the canonical tenant order
// every tenant-indexed structure uses.
func normalizeTenants(ts []admission.Tenant) []admission.Tenant {
	specs := append([]admission.Tenant(nil), ts...)
	hasDefault := false
	for _, t := range specs {
		if t.Name == admission.DefaultTenant {
			hasDefault = true
		}
	}
	if !hasDefault {
		specs = append(specs, admission.Tenant{Name: admission.DefaultTenant, Weight: 1})
	}
	return admission.SortTenants(specs)
}

// NormalizedTenants renders the canonical tenant-spec string New records in a
// trace header for the given declarations — the replay driver's comparison
// key for verifying a trace is replayed under the recording's tenant set.
func NormalizedTenants(ts []admission.Tenant) string {
	return FormatTenants(normalizeTenants(ts))
}

// buildTenants normalizes the configured tenant set (sorted by name, with
// the implicit default tenant appended when absent) and materializes runtime
// state and instruments for each. Called once from New.
func (s *Service) buildTenants() {
	specs := normalizeTenants(s.opt.Tenants)
	s.tenants = make(map[string]*tenantState, len(specs))
	for _, t := range specs {
		ts := &tenantState{spec: t, ins: tenantInstrumentsFor(t.Name)}
		if t.Rate > 0 {
			ts.bucket = admission.NewBucket(t.Rate, t.Burst)
		}
		s.tenants[t.Name] = ts
		s.tenantOrder = append(s.tenantOrder, ts)
	}
	for _, v := range s.state.base.Cloudlets() {
		s.totalCap += s.state.base.Capacity[v]
	}
}

// tenantSpecs returns the normalized tenant specs in round-robin order.
func (s *Service) tenantSpecs() []admission.Tenant {
	specs := make([]admission.Tenant, len(s.tenantOrder))
	for i, ts := range s.tenantOrder {
		specs[i] = ts.spec
	}
	return specs
}

// resolveTenant maps a request's tenant ID to a configured tenant name;
// empty or unknown IDs resolve to the default tenant, so accounting and
// placement records always name a real principal.
func (s *Service) resolveTenant(name string) string {
	if _, ok := s.tenants[name]; ok {
		return name
	}
	return admission.DefaultTenant
}

// FormatTenants renders tenant specs back into the CLI/trace-header form
// accepted by admission.ParseTenants (the inverse, modulo defaults).
func FormatTenants(ts []admission.Tenant) string {
	out := ""
	for i, t := range ts {
		if i > 0 {
			out += ";"
		}
		out += fmt.Sprintf("%s:weight=%g", t.Name, t.Weight)
		if t.Rate > 0 {
			out += fmt.Sprintf(",rate=%g,burst=%g", t.Rate, t.Burst)
		}
	}
	return out
}

// tenantQuotas snapshots every quota-carrying tenant's bucket state for WAL
// journaling, in tenant order. Takes the queue mutex (buckets are guarded by
// it); called from installLocked, so the lock order is commitMu → queue.mu.
func (s *Service) tenantQuotas() []wal.TenantQuota {
	s.queue.mu.Lock()
	defer s.queue.mu.Unlock()
	var out []wal.TenantQuota
	for _, ts := range s.tenantOrder {
		if ts.bucket == nil {
			continue
		}
		out = append(out, wal.TenantQuota{
			Name:   ts.spec.Name,
			Tokens: ts.bucket.Tokens(),
			Tick:   ts.bucket.Tick(),
		})
	}
	return out
}

// seedTenantQuotas restores journaled bucket state after a WAL replay.
// Called from New before the queue starts accepting submissions.
func (s *Service) seedTenantQuotas(quotas []wal.TenantQuota) {
	for _, q := range quotas {
		if ts, ok := s.tenants[q.Name]; ok && ts.bucket != nil {
			ts.bucket.Seed(q.Tokens, q.Tick)
		}
	}
}

// knapsackShed is executeBatch's phase 0: under the knapsack discipline,
// measure the execution epoch's residual-capacity fraction and — below the
// scarcity watermark — solve the admission knapsack over the batch window.
// Returns nil when every request proceeds, else a per-index shed mask.
//
// The decision is a pure function of (epoch, batch): candidate values derive
// from catalog reliabilities and tenant weights, feasibility from the
// epoch's residual vector, and core.SelectAdmission is deterministic. Since
// executeBatch is re-executed in commit order whenever its pinned epoch went
// stale, shed decisions are bit-identical at any worker × batcher count,
// exactly like placements.
func (s *Service) knapsackShed(e *epochLedger, batch []*pending) []bool {
	if s.opt.Admission != AdmissionKnapsack || len(batch) == 0 || s.totalCap <= 0 {
		return nil
	}
	cloudlets := s.state.base.Cloudlets()
	free := 0.0
	for _, v := range cloudlets {
		free += e.res[v]
	}
	frac := free / s.totalCap
	metrics.scarcity.Set(frac)
	if frac >= s.opt.ScarcityWatermark {
		s.scarce.Store(false)
		metrics.scarceMode.Set(0)
		return nil
	}
	s.scarce.Store(true)
	metrics.scarceMode.Set(1)

	cat := s.state.base.Catalog()
	cands := make([]core.AdmissionCandidate, len(batch))
	for i, p := range batch {
		demands := make([]float64, len(p.sfc))
		u0 := 1.0
		for j, f := range p.sfc {
			ft := cat.Type(f)
			demands[j] = ft.Demand
			u0 *= ft.Reliability
		}
		gain := knapsackGainFloor
		if u0 > 0 && p.expectation > u0 {
			if g := math.Log(p.expectation / u0); g > gain {
				gain = g
			}
		}
		cands[i] = core.AdmissionCandidate{
			Value:   s.tenants[p.tenant].spec.Weight * gain,
			Demands: demands,
		}
	}
	picked := core.SelectAdmission(e.res, cloudlets, cands, 0)
	shed := make([]bool, len(batch))
	for i := range shed {
		shed[i] = true
	}
	for _, i := range picked {
		shed[i] = false
	}
	return shed
}

// accountOutcome updates one tenant's served-traffic statistics for a
// delivered outcome. Admissions credit the tenant-weighted reliability
// log-gain log(u/u₀) — the knapsack objective, measured on what was actually
// placed rather than estimated.
func (s *Service) accountOutcome(p *pending, out *outcome) {
	ts := s.tenants[p.tenant]
	ts.mu.Lock()
	defer ts.mu.Unlock()
	switch {
	case out.status == http.StatusOK:
		ts.admitted++
		ts.ins.admitted.Inc()
		if rec := out.placed; rec != nil && out.initial > 0 && rec.Reliability > out.initial {
			ts.logGain += ts.spec.Weight * math.Log(rec.Reliability/out.initial)
			ts.ins.logGain.Set(ts.logGain)
		}
	case out.status == http.StatusTooManyRequests:
		ts.shed++
		ts.ins.shed.Inc()
		metrics.shedTotal.Inc()
	default:
		ts.infeasible++
		ts.ins.infeasible.Inc()
	}
}

// TenantStatus is one tenant's row in GET /v1/tenants: its configuration,
// live quota and queue state, and served-traffic accounting.
type TenantStatus struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
	// Rate and Burst echo the quota configuration (absent without a quota);
	// Tokens is the bucket's live balance.
	Rate   float64  `json:"rate,omitempty"`
	Burst  float64  `json:"burst,omitempty"`
	Tokens *float64 `json:"tokens,omitempty"`
	// Queued and QueueCap are the tenant's sub-queue occupancy and bound.
	Queued   int `json:"queued"`
	QueueCap int `json:"queue_cap"`
	// Admitted counts committed placements; RejectedQuota and RejectedQueue
	// count 429s at submission (empty bucket vs full queue); Shed counts
	// knapsack-admission sheds; Infeasible counts 422/504 answers.
	Admitted      int64 `json:"admitted"`
	RejectedQuota int64 `json:"rejected_quota"`
	RejectedQueue int64 `json:"rejected_queue_full"`
	Shed          int64 `json:"shed"`
	Infeasible    int64 `json:"infeasible"`
	// WeightedLogGain is Σ weight × log(u/u₀) over admitted requests — the
	// admission-economics objective this tenant has accrued.
	WeightedLogGain float64 `json:"weighted_log_gain"`
}

// TenantsResponse is the JSON body of GET /v1/tenants.
type TenantsResponse struct {
	// Admission is the configured queue discipline (fifo, fair, knapsack).
	Admission string `json:"admission"`
	// ScarcityWatermark and Scarce report the knapsack trigger: the residual
	// fraction threshold and whether the last batch ran in scarcity mode.
	ScarcityWatermark float64 `json:"scarcity_watermark,omitempty"`
	Scarce            bool    `json:"scarce,omitempty"`
	// Tenants lists per-tenant state in name order.
	Tenants []TenantStatus `json:"tenants"`
}

// TenantStats returns the live per-tenant statistics served at /v1/tenants —
// the in-process view used by the selftest and the dessim overload scenario.
func (s *Service) TenantStats() TenantsResponse {
	resp := TenantsResponse{
		Admission:         s.opt.Admission,
		ScarcityWatermark: s.opt.ScarcityWatermark,
		Scarce:            s.scarce.Load(),
	}
	for _, ts := range s.tenantOrder {
		row := TenantStatus{
			Name:   ts.spec.Name,
			Weight: ts.spec.Weight,
			Rate:   ts.spec.Rate,
			Burst:  ts.spec.Burst,
		}
		s.queue.mu.Lock()
		if ts.bucket != nil {
			tok := ts.bucket.Tokens()
			row.Tokens = &tok
		}
		row.Queued = s.queue.fq.TenantLen(ts.spec.Name)
		row.QueueCap = s.queue.fq.TenantCap(ts.spec.Name)
		s.queue.mu.Unlock()
		ts.mu.Lock()
		row.Admitted = ts.admitted
		row.RejectedQuota = ts.rejectedQuota
		row.RejectedQueue = ts.rejectedQueue
		row.Shed = ts.shed
		row.Infeasible = ts.infeasible
		row.WeightedLogGain = ts.logGain
		ts.mu.Unlock()
		resp.Tenants = append(resp.Tenants, row)
	}
	return resp
}

func (s *Service) handleTenants(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.TenantStats())
}
