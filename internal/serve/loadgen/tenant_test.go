package loadgen

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/graph"
	"repro/internal/mec"
	"repro/internal/serve"
)

// tenantNetwork is a small 5-cloudlet network sized so a 60-request run under
// a 0.6 scarcity watermark actually crosses into knapsack admission.
func tenantNetwork() *mec.Network {
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	cat := mec.NewCatalog([]mec.FunctionType{
		{Name: "fw", Demand: 10, Reliability: 0.96},
		{Name: "nat", Demand: 15, Reliability: 0.92},
	})
	return mec.NewNetwork(g, []float64{120, 120, 120, 120, 120}, cat)
}

// TestTenantAdmissionDeterminism pins the admission-economics hard
// requirement: with tenants, quotas, and each queue discipline, the full
// placement log — admissions, quota denials, sheds, and every placement — is
// bit-identical at any worker × batcher combination.
func TestTenantAdmissionDeterminism(t *testing.T) {
	tenants := []admission.Tenant{
		{Name: "gold", Weight: 4},
		{Name: "free", Weight: 1, Rate: 2, Burst: 6},
	}
	cfg := Config{
		Seed: 11, Requests: 60, WaveSize: 8, ChainLenMin: 1, ChainLenMax: 2,
		Expectation: 0.95,
		TenantMix: []TenantShare{
			{Name: "free", Share: 0.7},
			{Name: "gold", Share: 0.3},
		},
	}
	combos := []struct{ workers, batchers int }{{1, 1}, {4, 2}, {8, 3}}
	for _, mode := range []string{serve.AdmissionFIFO, serve.AdmissionFair, serve.AdmissionKnapsack} {
		var want string
		for _, c := range combos {
			svc, err := serve.New(tenantNetwork(), serve.Options{
				Workers: c.workers, Batchers: c.batchers, Seed: 7,
				BatchSize: 4, BatchWait: time.Millisecond,
				Tenants: tenants, Admission: mode, ScarcityWatermark: 0.6,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(svc, cfg)
			svc.Drain()
			if err != nil {
				t.Fatal(err)
			}
			got := res.PlacementLog()
			label := fmt.Sprintf("%s w=%d b=%d", mode, c.workers, c.batchers)
			if !strings.Contains(got, "tenant=") {
				t.Fatalf("%s: placement log carries no tenant annotations:\n%s", label, got)
			}
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("%s: placement log diverged from the w=1 b=1 run:\nwant:\n%s\ngot:\n%s",
					label, want, got)
			}
		}
	}
}

// TestParseTenantMix covers the flag syntax used by cmd/augmentd -tenant-mix.
func TestParseTenantMix(t *testing.T) {
	mix, err := ParseTenantMix("gold:0.2, free:0.8")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0].Name != "gold" || mix[0].Share != 0.2 || mix[1].Name != "free" {
		t.Fatalf("parsed %+v", mix)
	}
	for _, bad := range []string{"gold", "gold:", "gold:-1", ":0.5", "gold:x"} {
		if _, err := ParseTenantMix(bad); err == nil {
			t.Errorf("mix %q accepted", bad)
		}
	}
	if mix, err := ParseTenantMix(""); err != nil || mix != nil {
		t.Errorf("empty mix: %v %v", mix, err)
	}
}
