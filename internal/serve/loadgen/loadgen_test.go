package loadgen

import (
	"math/rand"
	"testing"

	"repro/internal/serve"
	"repro/internal/workload"
)

func newService(t *testing.T, workers int, admit string) *serve.Service {
	t.Helper()
	cfg := workload.NewDefaultConfig()
	cfg.ResidualFraction = 1.0
	net := cfg.Network(rand.New(rand.NewSource(11)))
	svc, err := serve.New(net, serve.Options{
		Workers: workers, Seed: 11, QueueDepth: 64, AdmitPolicy: admit,
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestDeterministicAcrossWorkerCounts pins the service's central contract:
// an identical request stream yields bit-identical placements whether the
// batches are solved by 1 worker or 8, and nothing is dropped as long as the
// wave size stays at or below the queue depth.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := Config{Seed: 7, Requests: 96, WaveSize: 32, DuplicateEvery: 4, ReleaseEvery: 8}
	for _, admit := range []string{serve.AdmitRandom, serve.AdmitMaxReliability} {
		var ref string
		for _, workers := range []int{1, 8} {
			svc := newService(t, workers, admit)
			res, err := Run(svc, cfg)
			if err != nil {
				t.Fatal(err)
			}
			svc.Drain()
			if res.Rejected != 0 {
				t.Fatalf("admit=%s workers=%d: %d rejections below the queue bound", admit, workers, res.Rejected)
			}
			if len(res.Records) != cfg.Requests {
				t.Fatalf("admit=%s workers=%d: %d records for %d requests", admit, workers, len(res.Records), cfg.Requests)
			}
			log := res.PlacementLog()
			if ref == "" {
				ref = log
				if res.Admitted == 0 {
					t.Fatalf("admit=%s: nothing admitted; the test network is too tight to exercise placements", admit)
				}
				continue
			}
			if log != ref {
				t.Errorf("admit=%s: placement log differs between worker counts:\nworkers=1:\n%s\nworkers=8:\n%s", admit, ref, log)
			}
		}
	}
}

// TestRunIsReproducible pins that two runs with the same generator seed on
// identically seeded services produce the same records wholesale.
func TestRunIsReproducible(t *testing.T) {
	cfg := Config{Seed: 3, Requests: 40, WaveSize: 16, DuplicateEvery: 3}
	var ref string
	for run := 0; run < 2; run++ {
		svc := newService(t, 4, serve.AdmitRandom)
		res, err := Run(svc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		svc.Drain()
		if log := res.PlacementLog(); ref == "" {
			ref = log
		} else if log != ref {
			t.Fatal("identical seeds produced different placement logs")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	svc := newService(t, 1, serve.AdmitRandom)
	defer svc.Drain()
	if _, err := Run(svc, Config{}); err == nil {
		t.Fatal("zero Requests accepted")
	}
}

// TestChaosDeterministicRuns pins the chaos extension of the determinism
// contract: two identically configured chaos runs — and runs at different
// worker counts — produce bit-identical placement AND chaos logs (node
// events, destroyed-instance counts, re-augmentation outcomes), with zero
// silent SLO violations at the end.
func TestChaosDeterministicRuns(t *testing.T) {
	cfg := Config{
		Seed: 7, Requests: 96, WaveSize: 16, ReleaseEvery: 8,
		Chaos: ChaosConfig{Enabled: true, Seed: 3, MeanUpWaves: 3, MeanDownWaves: 2, DegradedRatio: 0.25},
	}
	var refPlace, refChaos string
	for i, workers := range []int{1, 1, 8} {
		svc := newService(t, workers, serve.AdmitRandom)
		res, err := Run(svc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if viol := svc.SilentViolations(); len(viol) != 0 {
			t.Fatalf("run %d: silent SLO violations %v", i, viol)
		}
		svc.Drain()
		if i == 0 {
			refPlace, refChaos = res.PlacementLog(), res.ChaosLog()
			if res.NodeEvents == 0 {
				t.Fatal("chaos schedule produced no node events; tighten MTBF")
			}
			if res.ReaugAttempted == 0 {
				t.Fatal("chaos run attempted no re-augmentation")
			}
			continue
		}
		if res.PlacementLog() != refPlace {
			t.Fatalf("run %d (workers=%d): placement log diverged", i, workers)
		}
		if res.ChaosLog() != refChaos {
			t.Fatalf("run %d (workers=%d): chaos log diverged:\n--- ref ---\n%s--- got ---\n%s", i, workers, refChaos, res.ChaosLog())
		}
	}
}
