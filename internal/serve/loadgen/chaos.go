package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/serve"
)

// ChaosConfig shapes the deterministic fault-injection schedule of a chaos
// run. It mirrors the DES fault model's alternating-renewal MTBF/MTTR knobs
// (internal/des.FaultConfig), with time measured in waves: every cloudlet
// alternates exponential up and down periods, and the resulting transitions
// are applied between waves through the service's /v1/node path — followed by
// one watchdog audit + re-augmentation round. The schedule is precomputed
// from Seed in ascending cloudlet order, so a fixed seed yields a
// bit-identical chaos run at any worker or batcher count.
type ChaosConfig struct {
	// Enabled turns fault injection on.
	Enabled bool
	// Seed drives the fault schedule (independent of the request stream's
	// Config.Seed). Default 1.
	Seed int64
	// MeanUpWaves is a cloudlet's mean number of waves between repair and
	// next failure (exponential; the MTBF knob). Default 8.
	MeanUpWaves float64
	// MeanDownWaves is a cloudlet's mean outage length in waves (exponential;
	// the MTTR knob). Default 2.
	MeanDownWaves float64
	// DegradedRatio is the probability a failure arrives as "degraded"
	// (capacity impaired, instances survive) instead of "down". Default 0.
	DegradedRatio float64
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MeanUpWaves <= 0 {
		c.MeanUpWaves = 8
	}
	if c.MeanDownWaves <= 0 {
		c.MeanDownWaves = 2
	}
	if c.DegradedRatio < 0 {
		c.DegradedRatio = 0
	}
	if c.DegradedRatio > 1 {
		c.DegradedRatio = 1
	}
	return c
}

// ChaosEvent is one scheduled node health transition.
type ChaosEvent struct {
	// Wave is the zero-based wave index after which the event applies.
	Wave   int
	Node   int
	Health string
}

// chaosSchedule is the precomputed event list, grouped by wave.
type chaosSchedule struct {
	byWave map[int][]ChaosEvent
}

// buildChaosSchedule pre-generates every cloudlet's failure/repair events
// over waves [0, horizon): an alternating-renewal process of exponential up
// then down periods, drawn in ascending cloudlet order so the schedule is a
// pure function of the config. Within a wave, events apply in (node,
// transition) generation order.
func buildChaosSchedule(cloudlets []int, cfg ChaosConfig, horizon int) *chaosSchedule {
	sort.Ints(cloudlets)
	rng := rand.New(rand.NewSource(cfg.Seed))
	expDraw := func(mean float64) float64 {
		return -mean * math.Log(1-rng.Float64())
	}
	sched := &chaosSchedule{byWave: make(map[int][]ChaosEvent)}
	for _, v := range cloudlets {
		t := expDraw(cfg.MeanUpWaves)
		for int(t) < horizon {
			health := serve.HealthDown
			if rng.Float64() < cfg.DegradedRatio {
				health = serve.HealthDegraded
			}
			failAt := int(t)
			sched.byWave[failAt] = append(sched.byWave[failAt], ChaosEvent{Wave: failAt, Node: v, Health: health})
			t += expDraw(cfg.MeanDownWaves)
			repairAt := int(t)
			if repairAt < horizon {
				sched.byWave[repairAt] = append(sched.byWave[repairAt], ChaosEvent{Wave: repairAt, Node: v, Health: serve.HealthUp})
			}
			t += expDraw(cfg.MeanUpWaves)
		}
	}
	return sched
}

// applyWave applies wave w's scheduled events through the service's node
// health path and runs one audit + re-augmentation round, appending the
// canonical chaos-log lines (timing-independent, so two identically seeded
// runs compare equal) and updating the result's chaos counters.
func (sched *chaosSchedule) applyWave(svc *serve.Service, res *Result, w int) {
	events := sched.byWave[w]
	for _, ev := range events {
		nr, err := svc.ApplyHealth(ev.Node, ev.Health, fmt.Sprintf("chaos wave %d", w))
		if err != nil {
			continue
		}
		res.NodeEvents++
		res.InstancesDestroyed += nr.InstancesDestroyed
		res.ChaosLines = append(res.ChaosLines, fmt.Sprintf(
			"wave=%d node=%d health=%s destroyed=%d affected=%d queued=%d",
			w, ev.Node, ev.Health, nr.InstancesDestroyed, nr.SessionsAffected, nr.ReaugQueued))
	}
	rep := svc.AuditOnce()
	recordReaug(res, w, rep)
}

// recordReaug folds one re-augmentation round into the result.
func recordReaug(res *Result, w int, rep serve.ReaugReport) {
	res.ReaugAttempted += rep.Attempted
	res.ReaugRestored += rep.Restored
	res.ReaugDegraded += rep.Degraded
	res.ReaugLost += rep.Lost
	if rep.Attempted == 0 {
		return
	}
	var olds []int
	for old := range rep.Remapped {
		olds = append(olds, old)
	}
	sort.Ints(olds)
	line := fmt.Sprintf("wave=%d reaug attempted=%d restored=%d degraded=%d retrying=%d lost=%d",
		w, rep.Attempted, rep.Restored, rep.Degraded, rep.Retrying, rep.Lost)
	for _, old := range olds {
		line += fmt.Sprintf(" %d->%d", old, rep.Remapped[old])
	}
	res.ChaosLines = append(res.ChaosLines, line)
}

// drain settles the re-augmentation queue after the last wave: backoff delays
// are measured in rounds, so a bounded number of extra rounds flushes every
// retry through to restored, degraded, or lost.
func (sched *chaosSchedule) drain(svc *serve.Service, res *Result, lastWave int) {
	for i := 1; svc.ReaugPending() > 0 && i <= chaosDrainRounds; i++ {
		recordReaug(res, lastWave+i, svc.AuditOnce())
	}
}

// chaosDrainRounds bounds the post-run settle loop; with the default retry
// budget of 3 the deepest backoff is 1+2+4 rounds, so 16 is generous.
const chaosDrainRounds = 16
