// Package loadgen is the deterministic in-process load generator for the
// augmentation service (internal/serve). It drives Service.Enqueue directly
// — no sockets, no HTTP client — from a single goroutine, so the admission
// sequence (and therefore every per-request RNG seed) is a pure function of
// the generator seed. Two runs with the same Config against identically
// seeded networks produce identical placement logs at any Service worker
// count; cmd/augmentd -selftest pins exactly that.
package loadgen

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/serve"
)

// Config shapes one generated request stream.
type Config struct {
	// Seed drives request generation (chains, endpoints, duplicates).
	Seed int64
	// Requests is the total number of augmentations to submit.
	Requests int
	// WaveSize requests are submitted per wave; the generator waits for the
	// whole wave before submitting the next. Keep it at or below the
	// service's queue depth for a zero-drop run. Default 8.
	WaveSize int
	// ChainLenMin/Max bound the sampled SFC lengths. Defaults 3 and 6.
	ChainLenMin, ChainLenMax int
	// Expectation is ρ for every generated request. Default 0.95.
	Expectation float64
	// DuplicateEvery makes every k-th request a repeat of its predecessor
	// (same SFC and endpoints) to exercise the result cache. 0 disables.
	DuplicateEvery int
	// ReleaseEvery releases every k-th admitted placement between waves,
	// exercising /v1/release capacity restoration. 0 disables.
	ReleaseEvery int
	// DeadlineMS is forwarded to each request (0: server default).
	DeadlineMS int
	// Chaos configures deterministic fault injection: scheduled node health
	// transitions applied between waves, each followed by a watchdog audit
	// and re-augmentation round. See ChaosConfig.
	Chaos ChaosConfig
	// TenantMix assigns each generated request a tenant, drawn from these
	// shares with the generator RNG. Empty leaves requests tenantless (they
	// resolve to the service's default tenant), which keeps pre-tenant
	// request streams bit-identical. Duplicated requests repeat their
	// predecessor's tenant along with its spec.
	TenantMix []TenantShare
}

// TenantShare is one tenant's probability mass in a generated mix.
type TenantShare struct {
	Name  string
	Share float64
}

// ParseTenantMix parses "name:share[,name:share...]" (e.g. "gold:0.2,free:0.8").
// Shares must be positive; they are normalized, so they need not sum to 1.
func ParseTenantMix(spec string) ([]TenantShare, error) {
	if spec == "" {
		return nil, nil
	}
	var mix []TenantShare
	for _, part := range strings.Split(spec, ",") {
		name, share, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("loadgen: tenant mix entry %q (want name:share)", part)
		}
		v, err := strconv.ParseFloat(share, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("loadgen: tenant mix share %q must be a positive number", share)
		}
		mix = append(mix, TenantShare{Name: name, Share: v})
	}
	return mix, nil
}

func (c Config) withDefaults() Config {
	if c.WaveSize <= 0 {
		c.WaveSize = 8
	}
	if c.ChainLenMin <= 0 {
		c.ChainLenMin = 3
	}
	if c.ChainLenMax < c.ChainLenMin {
		c.ChainLenMax = c.ChainLenMin + 3
	}
	if c.Expectation <= 0 || c.Expectation > 1 {
		c.Expectation = 0.95
	}
	return c
}

// Record is the outcome of one generated request, in submission order.
type Record struct {
	Seq         int
	Status      int
	ID          int
	Reliability float64
	Met         bool
	Counts      []int
	Secondaries [][]int
	ServedBy    string
	Cached      bool
	// Tenant is the tenant the request was billed to (empty without a mix);
	// Initial is the admitted placement's pre-augmentation reliability u₀.
	// Quota marks a 429 denied by the tenant's token bucket (vs queue bounds);
	// Shed marks a 429 shed by knapsack admission after being queued.
	Tenant  string
	Initial float64
	Quota   bool
	Shed    bool
	// Latency is enqueue → answer for this request (zero for submissions
	// rejected at the queue). Feeds the selftest's exact latency quantiles;
	// excluded from PlacementLog, which must stay timing-independent.
	Latency time.Duration
}

// Result aggregates one load-generator run.
type Result struct {
	Records    []Record
	Admitted   int
	Infeasible int
	Rejected   int // 429/503 backpressure rejections (quota, queue, draining)
	Quota      int // subset of Rejected denied by a tenant token bucket
	Shed       int // 429s shed by knapsack admission after being queued
	Deadline   int
	Released   int
	CacheHits  int
	Elapsed    time.Duration
	// Throughput is answered augment requests per second.
	Throughput float64

	// Chaos counters (populated only when Config.Chaos.Enabled).
	NodeEvents         int // node health transitions applied
	InstancesDestroyed int // VNF instances destroyed by failures
	ReaugAttempted     int // re-augmentation attempts across all rounds
	ReaugRestored      int // sessions restored to u >= ρ
	ReaugDegraded      int // sessions re-served below ρ (alerted)
	ReaugLost          int // sessions abandoned after the retry budget
	// ChaosLines is the canonical chaos log: one line per applied event and
	// per non-empty re-augmentation round, timing-independent — the chaos
	// determinism selftest compares it alongside PlacementLog.
	ChaosLines []string
}

// ChaosLog renders the canonical chaos event/re-augmentation log, compared
// across runs by the chaos determinism selftest (empty without chaos).
func (r *Result) ChaosLog() string {
	if len(r.ChaosLines) == 0 {
		return ""
	}
	return strings.Join(r.ChaosLines, "\n") + "\n"
}

// PlacementLog renders the canonical per-request placement log used by the
// determinism selftest: one line per submitted request, independent of
// timing, worker count, and cache hit pattern.
func (r *Result) PlacementLog() string {
	var b strings.Builder
	for _, rec := range r.Records {
		tenant := ""
		if rec.Tenant != "" {
			tenant = " tenant=" + rec.Tenant
		}
		if rec.Status != http.StatusOK {
			reason := ""
			switch {
			case rec.Quota:
				reason = " reason=quota"
			case rec.Shed:
				reason = " reason=shed"
			}
			fmt.Fprintf(&b, "seq=%d status=%d%s%s\n", rec.Seq, rec.Status, reason, tenant)
			continue
		}
		fmt.Fprintf(&b, "seq=%d id=%d rel=%.9f met=%v counts=%v sec=%v by=%s%s\n",
			rec.Seq, rec.ID, rec.Reliability, rec.Met, rec.Counts, rec.Secondaries, rec.ServedBy, tenant)
	}
	return b.String()
}

// Run submits cfg.Requests augmentations to svc in waves and returns the
// aggregated result. It must be the only producer touching svc while it
// runs; determinism of the resulting placements is inherited from the
// service's sequence-seeded batching.
func Run(svc *serve.Service, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("loadgen: Requests must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{}
	start := time.Now()

	var chaos *chaosSchedule
	totalWaves := (cfg.Requests + cfg.WaveSize - 1) / cfg.WaveSize
	if cfg.Chaos.Enabled {
		chaos = buildChaosSchedule(svc.Cloudlets(), cfg.Chaos.withDefaults(), totalWaves)
	}

	var prev *serve.AugmentRequest
	var admittedIDs []int
	submitted, waveIdx := 0, 0
	for submitted < cfg.Requests {
		wave := cfg.WaveSize
		if left := cfg.Requests - submitted; wave > left {
			wave = left
		}
		entries := make([]waveEntry, 0, wave)
		for i := 0; i < wave; i++ {
			ar := nextRequest(rng, svc, cfg, submitted, prev)
			prev = &ar
			entry := waveEntry{seqIdx: submitted, tenant: ar.Tenant, submitted: time.Now()}
			t, err := svc.Enqueue(ar)
			if err != nil {
				res.Rejected++
				entry.reject = http.StatusTooManyRequests
				switch {
				case errors.Is(err, serve.ErrQuotaExceeded):
					entry.quota = true
					res.Quota++
				case errors.Is(err, serve.ErrDraining):
					entry.reject = http.StatusServiceUnavailable
				}
			} else {
				entry.ticket = t
			}
			entries = append(entries, entry)
			submitted++
		}
		for _, e := range entries {
			if id := collectEntry(res, e); id > 0 {
				admittedIDs = append(admittedIDs, id)
			}
		}
		// Between waves, optionally release every k-th admitted placement —
		// a deterministic point in the stream, so capacity restoration does
		// not perturb the determinism contract.
		if cfg.ReleaseEvery > 0 {
			for len(admittedIDs) >= cfg.ReleaseEvery {
				id := admittedIDs[cfg.ReleaseEvery-1]
				admittedIDs = admittedIDs[cfg.ReleaseEvery:]
				if _, err := svc.Release(id); err == nil {
					res.Released++
				}
			}
		}
		// Chaos events and their audit/re-augmentation round run between
		// waves, from this single producer goroutine — the re-admissions they
		// enqueue take deterministic sequence numbers.
		if chaos != nil {
			chaos.applyWave(svc, res, waveIdx)
		}
		waveIdx++
	}
	if chaos != nil {
		chaos.drain(svc, res, waveIdx-1)
	}
	res.Elapsed = time.Since(start)
	if res.Elapsed > 0 {
		res.Throughput = float64(len(res.Records)) / res.Elapsed.Seconds()
	}
	return res, nil
}

// waveEntry is one in-flight submission of a wave: where its record goes,
// when it was submitted, and either its ticket or its rejection status.
type waveEntry struct {
	seqIdx    int
	tenant    string
	submitted time.Time
	ticket    *serve.Ticket
	reject    int  // non-zero: rejected at submit with this status
	quota     bool // the rejection came from the tenant's token bucket
}

// collectEntry waits for one wave entry's outcome, appends its record to res
// (updating the aggregate counters), and returns the admitted placement ID
// (0 when the request was rejected or not admitted). Shared by the generator
// and the replay driver so both produce comparable placement logs.
func collectEntry(res *Result, e waveEntry) int {
	rec := Record{Seq: e.seqIdx, Tenant: e.tenant}
	if e.ticket == nil {
		rec.Status = e.reject
		rec.Quota = e.quota
		res.Records = append(res.Records, rec)
		return 0
	}
	out := e.ticket.Wait()
	rec.Latency = time.Since(e.submitted)
	rec.Status = out.Status
	rec.Cached = out.Cached
	if rec.Cached {
		res.CacheHits++
	}
	id := 0
	switch {
	case out.Status == http.StatusOK:
		rec.ID = out.Response.ID
		rec.Reliability = out.Response.Reliability
		rec.Initial = out.Response.InitialReliability
		rec.Met = out.Response.MetExpectation
		rec.Counts = out.Response.BackupCounts
		rec.Secondaries = out.Response.Secondaries
		rec.ServedBy = out.Response.ServedBy
		res.Admitted++
		id = out.Response.ID
	case out.Status == http.StatusGatewayTimeout:
		res.Deadline++
	case out.Status == http.StatusTooManyRequests:
		// Shed by knapsack admission after being queued (submission-time
		// rejections never get a ticket).
		rec.Shed = true
		res.Shed++
	default:
		res.Infeasible++
	}
	res.Records = append(res.Records, rec)
	return id
}

// nextRequest samples one augment request; every DuplicateEvery-th submission
// repeats the previous spec to give the result cache identical signatures.
func nextRequest(rng *rand.Rand, svc *serve.Service, cfg Config, idx int, prev *serve.AugmentRequest) serve.AugmentRequest {
	if cfg.DuplicateEvery > 0 && prev != nil && idx%cfg.DuplicateEvery == cfg.DuplicateEvery-1 {
		dup := *prev
		dup.SFC = append([]int(nil), prev.SFC...)
		dup.Primaries = append([]int(nil), prev.Primaries...)
		return dup
	}
	chainLen := cfg.ChainLenMin + rng.Intn(cfg.ChainLenMax-cfg.ChainLenMin+1)
	sfc := make([]int, chainLen)
	for i := range sfc {
		sfc[i] = rng.Intn(svc.CatalogSize())
	}
	ar := serve.AugmentRequest{
		SFC:         sfc,
		Expectation: cfg.Expectation,
		Source:      rng.Intn(svc.NumAPs()),
		Destination: rng.Intn(svc.NumAPs()),
		DeadlineMS:  cfg.DeadlineMS,
	}
	// Tenant draw happens only with a configured mix, so tenantless configs
	// consume exactly the RNG stream they always did — existing recorded runs
	// stay bit-identical.
	if len(cfg.TenantMix) > 0 {
		total := 0.0
		for _, ts := range cfg.TenantMix {
			total += ts.Share
		}
		u := rng.Float64() * total
		for _, ts := range cfg.TenantMix {
			if u -= ts.Share; u < 0 {
				ar.Tenant = ts.Name
				break
			}
		}
		if ar.Tenant == "" { // float tail: land on the last share
			ar.Tenant = cfg.TenantMix[len(cfg.TenantMix)-1].Name
		}
	}
	return ar
}
