package loadgen

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/serve"
)

// Clock paces a replay against the recorded timeline. Advance is called with
// each operation's recorded offset from the run start before the operation is
// submitted.
type Clock interface {
	// Advance blocks until the replay clock reaches offset.
	Advance(offset time.Duration)
}

// VirtualClock replays as fast as the service can absorb: Advance returns
// immediately. This is the determinism-checking clock — placements are
// independent of timing, so a virtual-clock replay must reproduce the
// recorded run bit-identically.
type VirtualClock struct{}

// Advance is a no-op: virtual time jumps to every offset instantly.
func (VirtualClock) Advance(time.Duration) {}

// WallClock replays on the recorded wall-clock timeline, optionally scaled:
// speed 1 reproduces the recorded pacing, 2 replays twice as fast.
type WallClock struct {
	start time.Time
	speed float64
}

// NewWallClock returns a wall clock anchored at now; speed <= 0 is treated
// as 1.
func NewWallClock(speed float64) *WallClock {
	if speed <= 0 {
		speed = 1
	}
	return &WallClock{start: time.Now(), speed: speed}
}

// Advance sleeps until the scaled recorded offset has elapsed since the
// clock was created.
func (c *WallClock) Advance(offset time.Duration) {
	due := c.start.Add(time.Duration(float64(offset) / c.speed))
	if d := time.Until(due); d > 0 {
		time.Sleep(d)
	}
}

// ReplayConfig shapes one trace replay.
type ReplayConfig struct {
	// WaveSize bounds the in-flight submissions before the driver waits for
	// answers, mirroring the generator's wave pacing. Default 8.
	WaveSize int
	// Clock paces the replay; nil means VirtualClock (as fast as possible).
	Clock Clock
}

// Replay drives a recorded request trace through svc: every OpAugment is
// re-enqueued with its recorded admission sequence (gaps included, via
// Service.AdvanceSeq), and every OpRelease and OpNode health transition is
// re-applied at its recorded point in the stream. Like Run, Replay must be the only producer touching svc.
// With the service configured as the recording run's meta header says (same
// seed, solver, hop bound, admission policy, network), the replayed
// placements — and the final state hash — are bit-identical to the recorded
// run's at any worker×batcher combination.
func Replay(svc *serve.Service, ops []serve.TraceOp, cfg ReplayConfig) (*Result, error) {
	if cfg.WaveSize <= 0 {
		cfg.WaveSize = 8
	}
	clock := cfg.Clock
	if clock == nil {
		clock = VirtualClock{}
	}
	res := &Result{}
	start := time.Now()

	var inflight []waveEntry
	flush := func() {
		for _, e := range inflight {
			collectEntry(res, e)
		}
		inflight = inflight[:0]
	}
	for i, op := range ops {
		clock.Advance(time.Duration(op.AtUS) * time.Microsecond)
		switch op.Op {
		case serve.OpAugment:
			// A sync op was submitted by the recording's producer only after
			// draining everything before it; mirror that on both sides of the
			// submission (see the post-enqueue flush below).
			if op.Sync {
				flush()
			}
			// Reproduce the recorded sequence number exactly: submissions the
			// recording run rejected consumed a sequence without leaving an
			// op, and every per-request seed is a function of the sequence.
			svc.AdvanceSeq(op.Seq - 1)
			t, err := svc.Enqueue(serve.AugmentRequest{
				SFC:         op.SFC,
				Expectation: op.Expectation,
				Source:      op.Source,
				Destination: op.Destination,
				Primaries:   op.Primaries,
				DeadlineMS:  op.DeadlineMS,
				Tenant:      op.Tenant,
			})
			entry := waveEntry{seqIdx: op.Seq, tenant: op.Tenant, submitted: time.Now()}
			if err != nil {
				// The recorded run admitted this request; a replay rejection
				// (queue sized differently, draining) is a divergence the
				// caller sees as a non-200 record.
				res.Rejected++
				entry.reject = http.StatusTooManyRequests
				if err == serve.ErrDraining {
					entry.reject = http.StatusServiceUnavailable
				}
			} else {
				entry.ticket = t
			}
			inflight = append(inflight, entry)
			// Sync ops were enqueued alone and waited on by the recording's
			// producer (re-augmentation); batch composition is an input to the
			// solves, so the replay must reproduce that serialization.
			if op.Sync || len(inflight) >= cfg.WaveSize {
				flush()
			}
		case serve.OpRelease:
			// Releases were recorded between waves; drain the in-flight wave
			// so the release lands at the same point in the admission stream.
			flush()
			if _, err := svc.Release(op.ID); err == nil {
				res.Released++
			}
		case serve.OpNode:
			// Node health transitions apply at their recorded stream position.
			// The recording run's re-augmentations were themselves recorded as
			// OpRelease/OpAugment ops, so the replay only re-applies the
			// transition — it must NOT run an audit round of its own.
			flush()
			if nr, err := svc.ApplyHealth(op.ID, op.Health, "trace replay"); err == nil {
				res.NodeEvents++
				res.InstancesDestroyed += nr.InstancesDestroyed
			}
		default:
			return nil, fmt.Errorf("loadgen: unexpected trace op %q at index %d", op.Op, i)
		}
	}
	flush()
	res.Elapsed = time.Since(start)
	if res.Elapsed > 0 {
		res.Throughput = float64(len(res.Records)) / res.Elapsed.Seconds()
	}
	return res, nil
}
