package loadgen

import (
	"fmt"
	"math/rand"
	"net/http"
	"path/filepath"
	"testing"

	"repro/internal/serve"
	"repro/internal/workload"
)

// newServiceOpts builds a service over the canonical loadgen test network
// (default workload, full residuals, seed 11) with caller-supplied options —
// the record/replay tests need RecordPath and batcher counts the simpler
// newService helper does not expose.
func newServiceOpts(t *testing.T, opt serve.Options) *serve.Service {
	t.Helper()
	cfg := workload.NewDefaultConfig()
	cfg.ResidualFraction = 1.0
	net := cfg.Network(rand.New(rand.NewSource(11)))
	svc, err := serve.New(net, opt)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// placements renders the timing- and seq-independent placement view of a
// run: one line per admitted request, keyed by placement ID. The generator
// numbers records by submission index while the replay driver numbers them
// by recorded admission sequence, so the record/replay comparison goes
// through this view instead of PlacementLog.
func placements(r *Result) string {
	out := ""
	for _, rec := range r.Records {
		if rec.Status != http.StatusOK {
			continue
		}
		out += fmt.Sprintf("id=%d rel=%.9f met=%v counts=%v sec=%v by=%s\n",
			rec.ID, rec.Reliability, rec.Met, rec.Counts, rec.Secondaries, rec.ServedBy)
	}
	return out
}

// TestRecordReplayRoundTrip pins the trace record/replay contract: a run
// recorded through Options.RecordPath replays bit-identically — same
// placements, same final state hash — at worker and batcher counts different
// from the recording run's.
func TestRecordReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.trace")
	cfg := Config{Seed: 7, Requests: 96, WaveSize: 32, DuplicateEvery: 4, ReleaseEvery: 8}

	build := func(workers, batchers int, record string) *serve.Service {
		t.Helper()
		svc := newServiceOpts(t, serve.Options{
			Workers: workers, Batchers: batchers, Seed: 11, QueueDepth: 64, RecordPath: record,
		})
		return svc
	}

	rec := build(1, 1, path)
	orig, err := Run(rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec.Drain()
	origHash, origPlaced := rec.State().Hash(), rec.State().PlacedCount()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if orig.Admitted == 0 {
		t.Fatal("recording run admitted nothing; test network too tight")
	}

	meta, ops, eof, err := serve.ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Seed != 11 {
		t.Fatalf("meta seed = %d, want 11", meta.Seed)
	}
	if eof == nil {
		t.Fatal("trace has no EOF trailer after Close")
	}
	if eof.Hash != fmt.Sprintf("%016x", origHash) || eof.Placed != origPlaced {
		t.Fatalf("EOF trailer %+v does not match recorded run hash=%016x placed=%d", eof, origHash, origPlaced)
	}

	want := placements(orig)
	for _, combo := range []struct{ w, b int }{{1, 1}, {8, 1}, {1, 4}, {8, 4}} {
		svc := build(combo.w, combo.b, "")
		res, err := Replay(svc, ops, ReplayConfig{WaveSize: cfg.WaveSize})
		if err != nil {
			t.Fatal(err)
		}
		svc.Drain()
		if res.Rejected != 0 {
			t.Fatalf("workers=%d batchers=%d: %d replay submissions rejected", combo.w, combo.b, res.Rejected)
		}
		if got := placements(res); got != want {
			t.Errorf("workers=%d batchers=%d: replay placements diverge from recording:\nrecorded:\n%s\nreplayed:\n%s",
				combo.w, combo.b, want, got)
		}
		if h, p := svc.State().Hash(), svc.State().PlacedCount(); h != origHash || p != origPlaced {
			t.Errorf("workers=%d batchers=%d: replay state hash=%016x placed=%d, recorded hash=%016x placed=%d",
				combo.w, combo.b, h, p, origHash, origPlaced)
		}
	}
}

// TestReplayVirtualVsWallClock pins that the pacing clock cannot perturb
// placements: a virtual-clock replay and a fast wall-clock replay agree.
func TestReplayVirtualVsWallClock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.trace")
	cfg := Config{Seed: 3, Requests: 32, WaveSize: 16}
	rec := newServiceOpts(t, serve.Options{Workers: 1, Seed: 11, QueueDepth: 64, RecordPath: path})
	if _, err := Run(rec, cfg); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	_, ops, _, err := serve.ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}

	var logs []string
	for _, clock := range []Clock{VirtualClock{}, NewWallClock(1000)} {
		svc := newServiceOpts(t, serve.Options{Workers: 1, Seed: 11, QueueDepth: 64})
		res, err := Replay(svc, ops, ReplayConfig{WaveSize: 16, Clock: clock})
		if err != nil {
			t.Fatal(err)
		}
		svc.Drain()
		logs = append(logs, res.PlacementLog())
	}
	if logs[0] != logs[1] {
		t.Fatalf("virtual and wall clock replays diverge:\n%s\nvs\n%s", logs[0], logs[1])
	}
}

// TestRecordReplayChaosRoundTrip pins the trace contract under failures: a
// chaos run — node transitions, destroyed instances, re-augmentations — is
// recorded as OpNode/OpRelease/OpAugment ops (re-augmentation enqueues carry
// the Sync flag), and replaying the trace at other worker and batcher counts
// reproduces the final ledger bit-identically. Micro-batch composition is an
// input to every solve, so this test fails if the replay driver ever stops
// honoring sync points.
func TestRecordReplayChaosRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chaos.trace")
	cfg := Config{Seed: 7, Requests: 96, WaveSize: 16, ReleaseEvery: 8,
		Chaos: ChaosConfig{Enabled: true, Seed: 3, MeanUpWaves: 3, MeanDownWaves: 2, DegradedRatio: 0.25}}

	rec := newServiceOpts(t, serve.Options{Workers: 1, Batchers: 1, Seed: 11, QueueDepth: 64, RecordPath: path})
	orig, err := Run(rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec.Drain()
	origHash, origPlaced := rec.State().Hash(), rec.State().PlacedCount()
	origDown := fmt.Sprint(rec.State().DownNodes())
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if orig.NodeEvents == 0 || orig.ReaugAttempted == 0 {
		t.Fatalf("chaos recording injected nothing (events=%d reaug=%d); schedule too sparse",
			orig.NodeEvents, orig.ReaugAttempted)
	}

	_, ops, eof, err := serve.ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if eof == nil {
		t.Fatal("trace has no EOF trailer after Close")
	}
	nodes, syncs := 0, 0
	for _, op := range ops {
		if op.Op == serve.OpNode {
			nodes++
		}
		if op.Sync {
			syncs++
		}
	}
	if nodes == 0 || syncs == 0 {
		t.Fatalf("trace recorded %d node ops and %d sync augments; want both > 0", nodes, syncs)
	}

	for _, combo := range []struct{ w, b int }{{1, 1}, {8, 1}, {1, 4}, {8, 4}} {
		svc := newServiceOpts(t, serve.Options{Workers: combo.w, Batchers: combo.b, Seed: 11, QueueDepth: 64})
		res, err := Replay(svc, ops, ReplayConfig{WaveSize: cfg.WaveSize})
		if err != nil {
			t.Fatal(err)
		}
		svc.Drain()
		if res.NodeEvents != orig.NodeEvents {
			t.Errorf("workers=%d batchers=%d: replay applied %d node events, recording had %d",
				combo.w, combo.b, res.NodeEvents, orig.NodeEvents)
		}
		if h, p := svc.State().Hash(), svc.State().PlacedCount(); h != origHash || p != origPlaced {
			t.Errorf("workers=%d batchers=%d: replay state hash=%016x placed=%d, recorded hash=%016x placed=%d",
				combo.w, combo.b, h, p, origHash, origPlaced)
		}
		if got := fmt.Sprint(svc.State().DownNodes()); got != origDown {
			t.Errorf("workers=%d batchers=%d: replay down set %s, recorded %s", combo.w, combo.b, got, origDown)
		}
		if err := svc.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
