package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mec"
)

// testNetwork builds a 5-AP network (every AP a cloudlet with the given
// capacity) over a well-connected topology and a 2-function catalog.
func testNetwork(capacity float64) *mec.Network {
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	caps := []float64{capacity, capacity, capacity, capacity, capacity}
	cat := mec.NewCatalog([]mec.FunctionType{
		{Name: "fw", Demand: 10, Reliability: 0.96},
		{Name: "nat", Demand: 15, Reliability: 0.92},
	})
	return mec.NewNetwork(g, caps, cat)
}

func testRequest(src int) AugmentRequest {
	return AugmentRequest{SFC: []int{0, 1}, Expectation: 0.9, Source: src % 5, Destination: (src + 2) % 5}
}

// blockingSolver parks every Solve until release is closed, reporting each
// start on started. It lets tests hold a batch in-flight deliberately.
type blockingSolver struct {
	started chan struct{}
	release chan struct{}
}

func (b *blockingSolver) Name() string { return "blocking" }

func (b *blockingSolver) Solve(inst *core.Instance, rng *rand.Rand) (*core.Result, error) {
	b.started <- struct{}{}
	<-b.release
	return nil, errors.New("blocking solver declines")
}

// countingSolver fails every solve and counts invocations.
type countingSolver struct{ calls atomic.Int64 }

func (c *countingSolver) Name() string { return "counting" }

func (c *countingSolver) Solve(inst *core.Instance, rng *rand.Rand) (*core.Result, error) {
	c.calls.Add(1)
	return nil, errors.New("counting solver declines")
}

func newBlockingService(t *testing.T, bs *blockingSolver, queueDepth int) *Service {
	t.Helper()
	svc, err := New(testNetwork(1000), Options{
		QueueDepth: queueDepth, BatchSize: 1, BatchWait: time.Millisecond,
		Workers: 1, Solver: bs, CacheSize: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestQueueFullRejectsWith429(t *testing.T) {
	bs := &blockingSolver{started: make(chan struct{}, 16), release: make(chan struct{})}
	svc := newBlockingService(t, bs, 2)

	first, err := svc.Enqueue(testRequest(0))
	if err != nil {
		t.Fatalf("enqueue first: %v", err)
	}
	<-bs.started // first request is now in-flight, not in the queue

	var tickets []*Ticket
	for i := 1; ; i++ {
		tk, err := svc.Enqueue(testRequest(i))
		if errors.Is(err, ErrQueueFull) {
			break
		}
		if err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		tickets = append(tickets, tk)
		if len(tickets) > 2 {
			t.Fatalf("queue of depth 2 accepted %d queued requests", len(tickets))
		}
	}
	if len(tickets) != 2 {
		t.Fatalf("queue of depth 2 held %d requests before rejecting", len(tickets))
	}

	// The HTTP layer maps the same rejection to 429 + Retry-After.
	body, _ := json.Marshal(testRequest(9))
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/augment", bytes.NewReader(body)))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("full queue answered %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	close(bs.release)
	for _, tk := range append(tickets, first) {
		if out := tk.Wait(); out.Status != http.StatusUnprocessableEntity {
			t.Fatalf("blocked request resolved to %d, want 422", out.Status)
		}
	}
}

func TestDrainFlushesQueuedRequests(t *testing.T) {
	bs := &blockingSolver{started: make(chan struct{}, 16), release: make(chan struct{})}
	svc := newBlockingService(t, bs, 8)

	first, err := svc.Enqueue(testRequest(0))
	if err != nil {
		t.Fatal(err)
	}
	<-bs.started
	var queued []*Ticket
	for i := 1; i <= 3; i++ {
		tk, err := svc.Enqueue(testRequest(i))
		if err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		queued = append(queued, tk)
	}

	drained := make(chan struct{})
	go func() { svc.Drain(); close(drained) }()
	for !svc.Draining() {
		time.Sleep(time.Millisecond)
	}
	if _, err := svc.Enqueue(testRequest(7)); !errors.Is(err, ErrDraining) {
		t.Fatalf("enqueue while draining: err=%v, want ErrDraining", err)
	}
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining answered %d, want 503", rec.Code)
	}

	close(bs.release)
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain did not return after the solver was released")
	}
	// Every request admitted before the drain still got an answer.
	for _, tk := range append(queued, first) {
		select {
		case out := <-tk.p.done:
			if out.status != http.StatusUnprocessableEntity {
				t.Fatalf("drained request resolved to %d, want 422", out.status)
			}
		default:
			t.Fatal("Drain returned with an unanswered queued request")
		}
	}
}

func TestZeroCapacityNetworkAnswers422(t *testing.T) {
	svc, err := New(testNetwork(0), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	tk, err := svc.Enqueue(testRequest(0))
	if err != nil {
		t.Fatal(err)
	}
	out := tk.Wait()
	if out.Status != http.StatusUnprocessableEntity {
		t.Fatalf("zero-capacity network answered %d, want 422", out.Status)
	}
	if out.Err == "" {
		t.Fatal("422 without an error detail")
	}
}

func TestReleaseUnknownIDAnswers404(t *testing.T) {
	svc, err := New(testNetwork(100), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	body, _ := json.Marshal(ReleaseRequest{ID: 12345})
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/release", bytes.NewReader(body)))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("release of unknown id answered %d, want 404", rec.Code)
	}
}

func TestAugmentAndReleaseRestoreCapacity(t *testing.T) {
	net := testNetwork(1000)
	svc, err := New(net, Options{Workers: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	// MVCC: the network itself is never mutated; capacity lives in epochs.
	beforeCloudlets, _, beforeHash := svc.State().Snapshot()

	body, _ := json.Marshal(testRequest(1))
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/augment", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("augment answered %d: %s", rec.Code, rec.Body)
	}
	var ar AugmentResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ar); err != nil {
		t.Fatal(err)
	}
	if len(ar.Primaries) != 2 || len(ar.Secondaries) != 2 {
		t.Fatalf("placement shape: primaries=%v secondaries=%v", ar.Primaries, ar.Secondaries)
	}
	if ar.Reliability < ar.InitialReliability {
		t.Fatalf("augmentation lowered reliability: %v -> %v", ar.InitialReliability, ar.Reliability)
	}

	rb, _ := json.Marshal(ReleaseRequest{ID: ar.ID})
	rec = httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/release", bytes.NewReader(rb)))
	if rec.Code != http.StatusOK {
		t.Fatalf("release answered %d: %s", rec.Code, rec.Body)
	}
	afterCloudlets, _, afterHash := svc.State().Snapshot()
	for i := range beforeCloudlets {
		if beforeCloudlets[i].Residual != afterCloudlets[i].Residual {
			t.Fatalf("residual at node %d not restored: %v -> %v",
				beforeCloudlets[i].ID, beforeCloudlets[i].Residual, afterCloudlets[i].Residual)
		}
	}
	if beforeHash != afterHash {
		t.Fatalf("state hash not restored: %016x -> %016x", beforeHash, afterHash)
	}
	if net.ResidualSnapshot()[0] != 1000 {
		t.Fatal("service mutated the base network's residual ledger")
	}
	if svc.CacheLen() != 0 {
		t.Fatalf("release left %d cache entries, want 0", svc.CacheLen())
	}
	// Releasing the same id twice is a 404, not a double free.
	rec = httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/release", bytes.NewReader(rb)))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("double release answered %d, want 404", rec.Code)
	}
}

func TestNegativeCacheServesRepeatedInfeasible(t *testing.T) {
	cs := &countingSolver{}
	svc, err := New(testNetwork(1000), Options{Workers: 1, Solver: cs})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()

	// Primaries are pinned so both submissions carry an identical signature
	// (random admission would derive different primaries per sequence number).
	ar := testRequest(0)
	ar.Primaries = []int{0, 1}
	submit := func() Outcome {
		tk, err := svc.Enqueue(ar)
		if err != nil {
			t.Fatal(err)
		}
		return tk.Wait()
	}
	first := submit()
	if first.Status != http.StatusUnprocessableEntity || first.Cached {
		t.Fatalf("first attempt: status=%d cached=%v, want fresh 422", first.Status, first.Cached)
	}
	second := submit()
	if second.Status != http.StatusUnprocessableEntity || !second.Cached {
		t.Fatalf("second attempt: status=%d cached=%v, want cached 422", second.Status, second.Cached)
	}
	if got := cs.calls.Load(); got != 1 {
		t.Fatalf("solver ran %d times for identical infeasible requests, want 1", got)
	}
}

func TestBatchSharesIdenticalInstances(t *testing.T) {
	cs := &countingSolver{}
	svc, err := New(testNetwork(1000), Options{
		Workers: 1, Solver: cs, BatchSize: 4, BatchWait: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()

	// Two identical requests (pinned primaries, so identical signatures)
	// enqueued back-to-back land in one micro-batch; the second must ride
	// the first's solve.
	ar := testRequest(0)
	ar.Primaries = []int{0, 1}
	t1, err := svc.Enqueue(ar)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := svc.Enqueue(ar)
	if err != nil {
		t.Fatal(err)
	}
	o1, o2 := t1.Wait(), t2.Wait()
	if o1.Cached {
		t.Fatalf("representative marked cached")
	}
	if !o2.Cached {
		t.Fatalf("identical in-batch follower not shared: %+v", o2)
	}
	if got := cs.calls.Load(); got != 1 {
		t.Fatalf("solver ran %d times for an identical in-batch pair, want 1", got)
	}
}

func TestValidateRejectsBadRequests(t *testing.T) {
	svc, err := New(testNetwork(100), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	cases := []struct {
		name string
		ar   AugmentRequest
	}{
		{"empty sfc", AugmentRequest{Expectation: 0.9}},
		{"bad function", AugmentRequest{SFC: []int{99}, Expectation: 0.9}},
		{"bad rho", AugmentRequest{SFC: []int{0}, Expectation: 1.5}},
		{"bad endpoint", AugmentRequest{SFC: []int{0}, Expectation: 0.9, Source: -1}},
		{"primaries mismatch", AugmentRequest{SFC: []int{0, 1}, Expectation: 0.9, Primaries: []int{0}}},
		{"negative deadline", AugmentRequest{SFC: []int{0}, Expectation: 0.9, DeadlineMS: -5}},
	}
	for _, tc := range cases {
		if _, err := svc.Enqueue(tc.ar); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
		body, _ := json.Marshal(tc.ar)
		rec := httptest.NewRecorder()
		svc.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/augment", bytes.NewReader(body)))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: HTTP answered %d, want 400", tc.name, rec.Code)
		}
	}
}

func TestStateEndpointReportsLedger(t *testing.T) {
	svc, err := New(testNetwork(100), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/state", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("state answered %d", rec.Code)
	}
	var st StateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Cloudlets) != 5 || st.Placed != 0 || st.Draining {
		t.Fatalf("unexpected state: %+v", st)
	}
	for _, c := range st.Cloudlets {
		if c.Residual != 100 {
			t.Fatalf("cloudlet %d residual %v, want 100", c.ID, c.Residual)
		}
	}
	if st.StateHash == "" {
		t.Fatal("state without canonical hash")
	}
}

func TestStateHashChangesWithLedger(t *testing.T) {
	st := NewState(testNetwork(100))
	h1 := st.Hash()

	install := func(mutate func(res []float64)) {
		res := append([]float64(nil), st.pin().res...)
		mutate(res)
		st.commitMu.Lock()
		st.installLocked(res, hashResiduals(res), installOp{})
		st.commitMu.Unlock()
	}
	install(func(res []float64) { res[0] -= 10 })
	h2 := st.Hash()
	install(func(res []float64) { res[0] += 10 })
	h3 := st.Hash()

	if h1 == h2 {
		t.Fatal("hash unchanged after capacity mutation")
	}
	if h1 != h3 {
		t.Fatal("hash not restored after exact rollback")
	}
	if got := st.Epoch(); got != 2 {
		t.Fatalf("epoch %d after two installs, want 2", got)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(testNetwork(10), Options{QueueDepth: -1}); err == nil {
		t.Fatal("negative queue depth accepted")
	}
	if _, err := New(testNetwork(10), Options{AdmitPolicy: "bogus"}); err == nil {
		t.Fatal("unknown admit policy accepted")
	}
	if _, err := New(testNetwork(10), Options{HopBound: -2}); err == nil {
		t.Fatal("negative hop bound accepted")
	}
}

func ExampleService_Handler() {
	svc, _ := New(testNetwork(1000), Options{Workers: 1, Seed: 3})
	defer svc.Drain()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body, _ := json.Marshal(AugmentRequest{SFC: []int{0, 1}, Expectation: 0.9, Source: 0, Destination: 2})
	resp, _ := http.Post(srv.URL+"/v1/augment", "application/json", bytes.NewReader(body))
	fmt.Println(resp.StatusCode)
	resp.Body.Close()
	// Output: 200
}
