package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serve/watchdog"
)

// admitN drives n deterministic admissions from a single goroutine and
// returns the admitted placement IDs.
func admitN(t *testing.T, svc *Service, n int, seed int64) []int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var ids []int
	for i := 0; i < n; i++ {
		sfc := make([]int, 2+rng.Intn(2))
		for j := range sfc {
			sfc[j] = rng.Intn(2)
		}
		tk, err := svc.Enqueue(AugmentRequest{
			SFC: sfc, Expectation: 0.9,
			Source: rng.Intn(5), Destination: rng.Intn(5),
		})
		if err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		out := tk.Wait()
		if out.Status == http.StatusOK {
			ids = append(ids, out.Response.ID)
		}
	}
	return ids
}

// hostingNode returns a cloudlet hosting at least one instance of some live
// placement, preferring one that hosts a secondary (so a failure actually
// degrades reliability without necessarily zeroing it).
func hostingNode(t *testing.T, svc *Service, ids []int) int {
	t.Helper()
	for _, id := range ids {
		p, ok := svc.State().Placement(id)
		if !ok {
			continue
		}
		for _, sec := range p.Secondaries {
			for _, v := range sec {
				return v
			}
		}
	}
	for _, id := range ids {
		p, ok := svc.State().Placement(id)
		if ok && len(p.Primaries) > 0 {
			return p.Primaries[0]
		}
	}
	t.Fatal("no live placement hosts any instance")
	return -1
}

func residualOf(svc *Service, node int) float64 {
	cloudlets, _, _ := svc.State().Snapshot()
	for _, c := range cloudlets {
		if c.ID == node {
			return c.Residual
		}
	}
	return -1
}

func TestApplyHealthDownDestroysInstancesAndUpRestoresCapacity(t *testing.T) {
	svc, err := New(testNetwork(1000), Options{Workers: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	ids := admitN(t, svc, 12, 21)
	if len(ids) == 0 {
		t.Fatal("no admissions")
	}
	node := hostingNode(t, svc, ids)

	nr, err := svc.ApplyHealth(node, HealthDown, "test crash")
	if err != nil {
		t.Fatal(err)
	}
	if nr.InstancesDestroyed == 0 || nr.SessionsAffected == 0 {
		t.Fatalf("down on hosting node destroyed %d instances across %d sessions", nr.InstancesDestroyed, nr.SessionsAffected)
	}
	if got := residualOf(svc, node); got != 0 {
		t.Fatalf("down node residual %v, want 0", got)
	}
	if down := svc.State().DownNodes(); len(down) != 1 || down[0] != node {
		t.Fatalf("down set %v, want [%d]", down, node)
	}
	if lvl := svc.Alerter().Level(watchdog.Key{Kind: watchdog.KindCloudlet, ID: node}); lvl != watchdog.Crit {
		t.Fatalf("cloudlet alert %v after down, want CRIT", lvl)
	}
	for _, id := range ids {
		p, ok := svc.State().Placement(id)
		if !ok {
			continue
		}
		for i, sec := range p.Secondaries {
			for _, v := range sec {
				if v == node {
					t.Fatalf("placement %d position %d still lists destroyed secondary on node %d", id, i, node)
				}
			}
		}
		for i, v := range p.Primaries {
			if v == node {
				t.Fatalf("placement %d position %d still lists destroyed primary on node %d", id, i, v)
			}
		}
		if !p.Met {
			if lvl := svc.Alerter().Level(watchdog.Key{Kind: watchdog.KindSession, ID: id}); lvl == watchdog.OK {
				t.Fatalf("placement %d violates its SLO with no active alert", id)
			}
		}
	}
	if viol := svc.SilentViolations(); len(viol) != 0 {
		t.Fatalf("silent SLO violations after down: %v", viol)
	}

	// Idempotent re-application: no epoch bump.
	epoch := svc.State().Epoch()
	nr2, err := svc.ApplyHealth(node, HealthDown, "again")
	if err != nil {
		t.Fatal(err)
	}
	if nr2.Epoch != epoch || nr2.InstancesDestroyed != 0 {
		t.Fatalf("re-applied down installed epoch %d (was %d), destroyed %d", nr2.Epoch, epoch, nr2.InstancesDestroyed)
	}

	// Recovery: destroyed instances are gone, so the full capacity returns.
	if _, err := svc.ApplyHealth(node, HealthUp, "repaired"); err != nil {
		t.Fatal(err)
	}
	if got := residualOf(svc, node); got != 1000 {
		t.Fatalf("recovered node residual %v, want full capacity 1000", got)
	}
	if down := svc.State().DownNodes(); len(down) != 0 {
		t.Fatalf("down set %v after recovery, want empty", down)
	}
	if lvl := svc.Alerter().Level(watchdog.Key{Kind: watchdog.KindCloudlet, ID: node}); lvl != watchdog.OK {
		t.Fatalf("cloudlet alert %v after recovery, want OK", lvl)
	}
}

func TestApplyHealthDegradedScalesFreeCapacity(t *testing.T) {
	svc, err := New(testNetwork(1000), Options{Workers: 1, Seed: 5, DegradedFactor: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	if _, err := svc.ApplyHealth(2, HealthDegraded, "brownout"); err != nil {
		t.Fatal(err)
	}
	if got := residualOf(svc, 2); got != 250 {
		t.Fatalf("degraded empty node residual %v, want 250 (capacity 1000 x 0.25)", got)
	}
	if lvl := svc.Alerter().Level(watchdog.Key{Kind: watchdog.KindCloudlet, ID: 2}); lvl != watchdog.Warn {
		t.Fatalf("cloudlet alert %v after degraded, want WARN", lvl)
	}
	if _, err := svc.ApplyHealth(2, HealthUp, "restored"); err != nil {
		t.Fatal(err)
	}
	if got := residualOf(svc, 2); got != 1000 {
		t.Fatalf("recovered node residual %v, want 1000", got)
	}
}

func TestApplyHealthRejectsBadInput(t *testing.T) {
	svc, err := New(testNetwork(1000), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	if _, err := svc.ApplyHealth(0, "sideways", ""); err == nil {
		t.Fatal("unknown health state accepted")
	}
	if _, err := svc.ApplyHealth(99, HealthDown, ""); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

// TestReleaseAfterNodeDownConservesLedger pins the satellite bugfix: a
// release must not resurrect capacity on a dark node, and the live ledger
// must stay bit-identical to what WAL replay reconstructs from the same
// event order — kill a node mid-load, release survivors, restore, compare.
func TestReleaseAfterNodeDownConservesLedger(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Workers: 2, Seed: 13,
		BatchSize: 4, BatchWait: 20 * time.Millisecond,
		WALDir: dir, WALSync: "none", SnapshotEvery: 4,
	}
	svc, err := New(testNetwork(1000), opts)
	if err != nil {
		t.Fatal(err)
	}
	ids := admitN(t, svc, 16, 31)
	node := hostingNode(t, svc, ids)
	if _, err := svc.ApplyHealth(node, HealthDown, "mid-load crash"); err != nil {
		t.Fatal(err)
	}
	// Release half the survivors — including sessions that held instances on
	// the failed node; their dark-node share must not come back.
	for i, id := range ids {
		if i%2 == 0 {
			if _, err := svc.Release(id); err != nil {
				t.Fatalf("release %d: %v", id, err)
			}
		}
	}
	if got := residualOf(svc, node); got != 0 {
		t.Fatalf("releases resurrected %v MHz on the dark node", got)
	}
	admitN(t, svc, 8, 37) // keep writing after the failure
	liveHash := svc.State().Hash()
	liveEpoch := svc.State().Epoch()
	livePlaced := svc.State().PlacedCount()
	liveDown := svc.State().DownNodes()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := NewStateFromWAL(testNetwork(1000), dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hash() != liveHash {
		t.Fatalf("restored ledger hash %016x != live %016x", st.Hash(), liveHash)
	}
	if st.Epoch() != liveEpoch {
		t.Fatalf("restored epoch %d != live %d", st.Epoch(), liveEpoch)
	}
	if st.PlacedCount() != livePlaced {
		t.Fatalf("restored %d placements, live had %d", st.PlacedCount(), livePlaced)
	}
	if got := fmt.Sprint(st.DownNodes()); got != fmt.Sprint(liveDown) {
		t.Fatalf("restored down set %v != live %v", st.DownNodes(), liveDown)
	}
	// Replay applied the same skip-dark-node release rule: the failed node's
	// residual is still withdrawn.
	if e := st.pin(); e.res[node] != 0 {
		t.Fatalf("replayed ledger resurrected %v MHz on the dark node", e.res[node])
	}
}

// TestReaugmentationRestoresSessions drives the self-healing loop: a node
// failure drops sessions below ρ, re-augmentation rounds re-admit them
// through the normal pipeline, and every outcome is either restored (alert
// resolved) or still alerted — never silent.
func TestReaugmentationRestoresSessions(t *testing.T) {
	svc, err := New(testNetwork(1000), Options{Workers: 1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	ids := admitN(t, svc, 12, 41)
	node := hostingNode(t, svc, ids)
	nr, err := svc.ApplyHealth(node, HealthDown, "crash")
	if err != nil {
		t.Fatal(err)
	}
	if nr.ReaugQueued == 0 {
		t.Skip("failure did not push any session below its expectation")
	}
	restored := 0
	for round := 0; round < 16 && svc.ReaugPending() > 0; round++ {
		rep := svc.AuditOnce()
		restored += rep.Restored
		if viol := svc.SilentViolations(); len(viol) != 0 {
			t.Fatalf("round %d: silent SLO violations %v", round, viol)
		}
	}
	if svc.ReaugPending() != 0 {
		t.Fatalf("%d sessions still queued after 16 rounds", svc.ReaugPending())
	}
	if restored == 0 {
		t.Fatal("no session restored despite four surviving cloudlets")
	}
	// Restored sessions meet ρ again and carry no alert.
	for _, id := range svc.State().PlacementIDs() {
		p, _ := svc.State().Placement(id)
		if p.Met {
			if lvl := svc.Alerter().Level(watchdog.Key{Kind: watchdog.KindSession, ID: id}); lvl != watchdog.OK {
				t.Fatalf("restored session %d still alerted at %v", id, lvl)
			}
		}
	}
}

// TestRestoreRebuildsWatchdogState pins restart semantics: a process that
// crashes after a node failure rebuilds the down set, the cloudlet alert,
// and the re-augmentation queue from the journal alone.
func TestRestoreRebuildsWatchdogState(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Workers: 1, Seed: 19,
		WALDir: dir, WALSync: "none", SnapshotEvery: 4,
	}
	svc, err := New(testNetwork(1000), opts)
	if err != nil {
		t.Fatal(err)
	}
	ids := admitN(t, svc, 12, 43)
	node := hostingNode(t, svc, ids)
	nr, err := svc.ApplyHealth(node, HealthDown, "crash")
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	opts.Restore = true
	svc2, err := New(testNetwork(1000), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if down := svc2.State().DownNodes(); len(down) != 1 || down[0] != node {
		t.Fatalf("restored down set %v, want [%d]", down, node)
	}
	if lvl := svc2.Alerter().Level(watchdog.Key{Kind: watchdog.KindCloudlet, ID: node}); lvl != watchdog.Crit {
		t.Fatalf("restored cloudlet alert %v, want CRIT", lvl)
	}
	if nr.ReaugQueued > 0 && svc2.ReaugPending() == 0 {
		t.Fatalf("crashed process had %d sessions queued for re-augmentation, restore rebuilt none", nr.ReaugQueued)
	}
	if viol := svc2.SilentViolations(); len(viol) != 0 {
		t.Fatalf("silent SLO violations after restore: %v", viol)
	}
}

// chaosStream interleaves a deterministic request stream with scripted node
// failures, repairs, and re-augmentation rounds, all from one goroutine. The
// returned log covers placements, node events, and re-augmentation outcomes —
// everything the determinism contract must hold constant.
func chaosStream(t *testing.T, svc *Service, n int, seed int64) (string, uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var log strings.Builder
	const wave = 8
	waveIdx := 0
	for submitted := 0; submitted < n; {
		k := wave
		if left := n - submitted; k > left {
			k = left
		}
		tickets := make([]*Ticket, 0, k)
		for i := 0; i < k; i++ {
			sfc := make([]int, 2+rng.Intn(2))
			for j := range sfc {
				sfc[j] = rng.Intn(2)
			}
			tk, err := svc.Enqueue(AugmentRequest{
				SFC: sfc, Expectation: 0.9,
				Source: rng.Intn(5), Destination: rng.Intn(5),
			})
			if err != nil {
				t.Fatalf("enqueue: %v", err)
			}
			tickets = append(tickets, tk)
			submitted++
		}
		for _, tk := range tickets {
			out := tk.Wait()
			if out.Status != http.StatusOK {
				fmt.Fprintf(&log, "status=%d\n", out.Status)
				continue
			}
			r := out.Response
			fmt.Fprintf(&log, "id=%d rel=%.12f met=%v sec=%v\n", r.ID, r.Reliability, r.MetExpectation, r.Secondaries)
		}
		// Scripted chaos: wave 1 kills node 1, wave 3 repairs it, wave 4
		// degrades node 3, wave 6 repairs it. Every wave runs one audit +
		// re-augmentation round.
		switch waveIdx {
		case 1:
			nr, _ := svc.ApplyHealth(1, HealthDown, "scripted")
			fmt.Fprintf(&log, "down node=1 destroyed=%d affected=%d queued=%d\n", nr.InstancesDestroyed, nr.SessionsAffected, nr.ReaugQueued)
		case 3:
			nr, _ := svc.ApplyHealth(1, HealthUp, "scripted")
			fmt.Fprintf(&log, "up node=1 epoch-installed=%v\n", nr.Epoch > 0)
		case 4:
			svc.ApplyHealth(3, HealthDegraded, "scripted")
			fmt.Fprintf(&log, "degraded node=3\n")
		case 6:
			svc.ApplyHealth(3, HealthUp, "scripted")
			fmt.Fprintf(&log, "up node=3\n")
		}
		rep := svc.AuditOnce()
		fmt.Fprintf(&log, "reaug attempted=%d restored=%d degraded=%d lost=%d\n",
			rep.Attempted, rep.Restored, rep.Degraded, rep.Lost)
		if viol := svc.SilentViolations(); len(viol) != 0 {
			t.Fatalf("wave %d: silent SLO violations %v", waveIdx, viol)
		}
		waveIdx++
	}
	return log.String(), svc.State().Hash()
}

// TestChaosDeterminismAcrossBatchers extends the bit-identity contract to
// failure handling: the full chaos log — placements, node events, destroyed
// instance counts, re-augmentation outcomes — and the final ledger hash are
// identical on one batcher and on four.
func TestChaosDeterminismAcrossBatchers(t *testing.T) {
	run := func(batchers int) (string, uint64) {
		svc, err := New(testNetwork(1000), Options{
			Workers: 2, Batchers: batchers, Seed: 23,
			BatchSize: 4, BatchWait: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Drain()
		return chaosStream(t, svc, 64, 29)
	}
	log1, hash1 := run(1)
	log4, hash4 := run(4)
	if log1 != log4 {
		t.Fatalf("chaos logs differ between 1 and 4 batchers:\n--- 1 ---\n%s--- 4 ---\n%s", log1, log4)
	}
	if hash1 != hash4 {
		t.Fatalf("final state hash differs: %016x vs %016x", hash1, hash4)
	}
}

// TestNodeAndAlertsEndpoints exercises the HTTP surface: POST /v1/node
// applies a transition, GET /v1/alerts reflects it, GET /v1/state lists the
// down node.
func TestNodeAndAlertsEndpoints(t *testing.T) {
	svc, err := New(testNetwork(1000), Options{Workers: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	h := svc.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/node",
		strings.NewReader(`{"node": 2, "health": "down", "note": "ops"}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /v1/node: %d %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/alerts", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/alerts: %d", rec.Code)
	}
	var view watchdog.View
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	foundCloudlet := false
	for _, a := range view.Active {
		if a.Key.Kind == watchdog.KindCloudlet && a.Key.ID == 2 && a.Level == "CRIT" {
			foundCloudlet = true
		}
	}
	if !foundCloudlet {
		t.Fatalf("alerts view missing CRIT for cloudlet 2: %+v", view.Active)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/state", nil))
	var st StateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.DownNodes) != 1 || st.DownNodes[0] != 2 {
		t.Fatalf("/v1/state down_nodes %v, want [2]", st.DownNodes)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/node",
		strings.NewReader(`{"node": 2, "health": "sideways"}`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad health state answered %d, want 400", rec.Code)
	}
}
