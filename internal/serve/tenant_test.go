package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/graph"
	"repro/internal/mec"
)

func TestTenantQuotaRejectsWith429(t *testing.T) {
	svc, err := New(testNetwork(1000), Options{
		Workers: 1, Seed: 3,
		Tenants: []admission.Tenant{{Name: "metered", Weight: 1, Rate: 1, Burst: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()

	// The bucket starts full at Burst=2; the first virtual batch tick covers
	// the whole test (BatchSize 8, sequences 1..3), so no refill lands and
	// exactly two submissions pass.
	metered := func(i int) AugmentRequest {
		ar := testRequest(i)
		ar.Tenant = "metered"
		return ar
	}
	for i := 0; i < 2; i++ {
		tk, err := svc.Enqueue(metered(i))
		if err != nil {
			t.Fatalf("submission %d within burst rejected: %v", i, err)
		}
		tk.Wait()
	}
	_, err = svc.Enqueue(metered(2))
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("post-burst submission: err=%v, want ErrQuotaExceeded", err)
	}
	if errors.Is(err, ErrQueueFull) {
		t.Fatal("quota rejection must not alias ErrQueueFull")
	}

	// The HTTP layer answers the quota denial as 429 + Retry-After, same as a
	// full queue but with a distinguishable error text and metric reason.
	body, _ := json.Marshal(metered(3))
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/augment", bytes.NewReader(body)))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("quota denial answered %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("quota 429 without Retry-After header")
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte("quota")) {
		t.Fatalf("quota 429 body does not name the quota: %s", rec.Body)
	}

	// /v1/tenants reports the accounting: 2 admitted (or infeasible), 2 denied.
	rec = httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/tenants", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/tenants answered %d", rec.Code)
	}
	var tr TenantsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	var row *TenantStatus
	for i := range tr.Tenants {
		if tr.Tenants[i].Name == "metered" {
			row = &tr.Tenants[i]
		}
	}
	if row == nil {
		t.Fatalf("tenant metered missing from %+v", tr)
	}
	if row.RejectedQuota != 2 {
		t.Fatalf("rejected_quota=%d, want 2", row.RejectedQuota)
	}
	if row.Tokens == nil || *row.Tokens >= 1 {
		t.Fatalf("bucket tokens=%v after burst exhaustion, want < 1", row.Tokens)
	}
}

func TestUnknownTenantResolvesToDefault(t *testing.T) {
	svc, err := New(testNetwork(1000), Options{Workers: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	ar := testRequest(0)
	ar.Tenant = "nobody-configured-this"
	tk, err := svc.Enqueue(ar)
	if err != nil {
		t.Fatal(err)
	}
	tk.Wait()
	stats := svc.TenantStats()
	if len(stats.Tenants) != 1 || stats.Tenants[0].Name != admission.DefaultTenant {
		t.Fatalf("tenant set %+v, want just the default", stats.Tenants)
	}
	if got := stats.Tenants[0].Admitted + stats.Tenants[0].Infeasible; got != 1 {
		t.Fatalf("default tenant accounted %d outcomes, want 1", got)
	}
}

// tinyNetwork is a 3-cloudlet network small enough to saturate in a few
// requests: one function type of demand 10 against capacity 25 per node.
func tinyNetwork() *mec.Network {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	cat := mec.NewCatalog([]mec.FunctionType{{Name: "fw", Demand: 10, Reliability: 0.9}})
	return mec.NewNetwork(g, []float64{25, 25, 25}, cat)
}

func TestKnapsackShedsInfeasibleWindowWith429(t *testing.T) {
	svc, err := New(tinyNetwork(), Options{
		Workers: 1, Seed: 3, BatchSize: 1, BatchWait: time.Millisecond,
		Admission:         AdmissionKnapsack,
		ScarcityWatermark: 1.0, // scarce as soon as anything is placed
		KnapsackWindow:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()

	ar := AugmentRequest{SFC: []int{0}, Expectation: 0.95, Source: 0, Destination: 2}
	// Saturate: keep submitting until the pack oracle can no longer fit a
	// demand-10 candidate anywhere. Admissions and sheds are both fine along
	// the way; what is pinned is the endgame — an all-infeasible window under
	// scarcity is shed with 429, never answered 422.
	sheds, admitted := 0, 0
	for i := 0; i < 30; i++ {
		tk, err := svc.Enqueue(ar)
		if err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
		out := tk.Wait()
		switch out.Status {
		case http.StatusOK:
			admitted++
		case http.StatusTooManyRequests:
			sheds++
		default:
			t.Fatalf("submission %d answered %d (%s) in knapsack mode, want 200 or 429",
				i, out.Status, out.Err)
		}
	}
	if admitted == 0 {
		t.Fatal("knapsack admitted nothing on an empty network")
	}
	if sheds == 0 {
		t.Fatal("saturated network shed nothing under knapsack admission")
	}
	stats := svc.TenantStats()
	if !stats.Scarce {
		t.Fatal("scarcity mode not engaged after saturation")
	}
	if got := stats.Tenants[0].Shed; got != int64(sheds) {
		t.Fatalf("tenant shed count %d, want %d", got, sheds)
	}
}

func TestTenantQuotaSurvivesWALRestart(t *testing.T) {
	dir := t.TempDir()
	tenants := []admission.Tenant{{Name: "metered", Weight: 2, Rate: 0.5, Burst: 8}}
	opt := Options{
		Workers: 1, Seed: 3, WALDir: dir, WALSync: "none",
		Tenants: tenants,
	}
	svc, err := New(testNetwork(1000), opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ar := testRequest(i)
		ar.Tenant = "metered"
		tk, err := svc.Enqueue(ar)
		if err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
		tk.Wait()
	}
	before := svc.TenantStats()
	if before.Tenants[1].Tokens == nil {
		t.Fatalf("metered tenant has no bucket: %+v", before.Tenants)
	}
	wantTokens := *before.Tenants[1].Tokens
	if wantTokens >= 8 {
		t.Fatalf("bucket still full (%v) after 3 takes", wantTokens)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	opt.Restore = true
	svc2, err := New(testNetwork(1000), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	after := svc2.TenantStats()
	if after.Tenants[1].Tokens == nil {
		t.Fatal("restored metered tenant has no bucket")
	}
	if got := *after.Tenants[1].Tokens; got != wantTokens {
		t.Fatalf("restored bucket tokens=%v, want %v (journaled)", got, wantTokens)
	}
}
