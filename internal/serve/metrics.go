package serve

import "repro/internal/obs"

// metrics are the serving layer's obs instruments, resolved once at package
// init. All recording happens in the queue/batch machinery and the HTTP
// handlers — never inside the seeded solver calls — so instrumented servers
// keep the engine's worker-count bit-identity guarantee.
var metrics = struct {
	queueDepth    *obs.Gauge     // requests currently waiting in the admission queue
	queueWait     *obs.Histogram // enqueue → batch-pickup latency per request
	batchSize     *obs.Histogram // requests per solved micro-batch
	batches       *obs.Counter   // micro-batches solved
	inflight      *obs.Gauge     // requests admitted to the queue but not yet answered
	admitted      *obs.Counter   // requests placed and committed
	infeasible    *obs.Counter   // requests that no solver stage could serve
	deadlineHits  *obs.Counter   // requests dropped on the per-request deadline
	conflicts     *obs.Counter   // commit conflicts that forced a serial re-solve
	released      *obs.Counter   // placements torn down via /v1/release
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	cacheSize     *obs.Gauge
	cacheEvicted  *obs.Counter
	epochSeq      *obs.Gauge     // current MVCC epoch sequence number
	epochAdvances *obs.Counter   // epochs installed (batch commits, releases, restores)
	specValid     *obs.Counter   // batch speculations that committed verbatim
	specStale     *obs.Counter   // batch speculations invalidated by a cross-batch conflict
	specSkipped   *obs.Counter   // batches executed in-gate because speculation was predicted stale
	memoHits      *obs.Counter   // solver invocations skipped via the per-batch memo
	walAppends    *obs.Counter   // WAL entries appended
	walSnapshots  *obs.Counter   // WAL snapshots (checkpoints) written
	walErrors     *obs.Counter   // WAL append/snapshot failures (service degrades to non-durable)
	walFsync      *obs.Histogram // latency of each performed WAL fsync (coalesced group commits count once)

	// Live failure handling (watchdog + re-augmentation).
	nodeDown           *obs.Counter // cloudlet down transitions applied
	nodeUp             *obs.Counter // cloudlet up (recovery) transitions applied
	nodeDegraded       *obs.Counter // cloudlet degraded transitions applied
	instancesDestroyed *obs.Counter // VNF instances destroyed by node failures
	reaugAttempts      *obs.Counter // re-augmentation attempts submitted
	reaugRestored      *obs.Counter // sessions fully restored to u >= ρ by re-augmentation
	reaugDegradedTotal *obs.Counter // sessions re-served in degraded mode (u < ρ, alerted)
	reaugLost          *obs.Counter // sessions abandoned after the re-augmentation budget
	degradedAnswers    *obs.Counter // fresh admissions answered with u < ρ (Met=false)

	// Multi-tenant admission economics.
	scarcity     *obs.Gauge   // residual-capacity fraction observed at the last knapsack check
	scarceMode   *obs.Gauge   // 1 while knapsack admission is engaged, else 0
	shedTotal    *obs.Counter // requests shed by knapsack admission under scarcity
	quotaDenials *obs.Counter // submissions rejected by a tenant token bucket

	// Per-stage span handles for the batch pipeline, pre-resolved so the hot
	// path pays zero lookups/allocations per observation (see obs.SpanHandle).
	// Stage boundaries are stamped once per batch and observed here; the same
	// timestamps feed the per-request trace spans.
	stageAdmit  obs.SpanHandle // phase 1: primaries + instances + cache lookups
	stageSolve  obs.SpanHandle // phase 2: parallel fail-soft solving
	stageCommit obs.SpanHandle // phase 3: sequential fork commits
	stageExec   obs.SpanHandle // one whole batch execution (phases 1–3)
	stageGate   obs.SpanHandle // commit-gate wait (batch-order serialization)
	stageFsync  obs.SpanHandle // post-install WAL flush wait
}{
	queueDepth:         obs.Default().Gauge("serve_queue_depth"),
	queueWait:          obs.Default().Histogram("serve_queue_wait_seconds", obs.DurationBuckets),
	batchSize:          obs.Default().Histogram("serve_batch_size", obs.CountBuckets),
	batches:            obs.Default().Counter("serve_batches_total"),
	inflight:           obs.Default().Gauge("serve_inflight"),
	admitted:           obs.Default().Counter("serve_admitted_total"),
	infeasible:         obs.Default().Counter("serve_infeasible_total"),
	deadlineHits:       obs.Default().Counter("serve_deadline_hits_total"),
	conflicts:          obs.Default().Counter("serve_commit_conflicts_total"),
	released:           obs.Default().Counter("serve_released_total"),
	cacheHits:          obs.Default().Counter("serve_cache_hits_total"),
	cacheMisses:        obs.Default().Counter("serve_cache_misses_total"),
	cacheSize:          obs.Default().Gauge("serve_cache_size"),
	cacheEvicted:       obs.Default().Counter("serve_cache_evictions_total"),
	epochSeq:           obs.Default().Gauge("serve_epoch"),
	epochAdvances:      obs.Default().Counter("serve_epoch_advances_total"),
	specValid:          obs.Default().Counter("serve_speculation_valid_total"),
	specStale:          obs.Default().Counter("serve_speculation_stale_total"),
	specSkipped:        obs.Default().Counter("serve_speculation_skipped_total"),
	memoHits:           obs.Default().Counter("serve_solve_memo_hits_total"),
	walAppends:         obs.Default().Counter("serve_wal_appends_total"),
	walSnapshots:       obs.Default().Counter("serve_wal_snapshots_total"),
	walErrors:          obs.Default().Counter("serve_wal_errors_total"),
	walFsync:           obs.Default().Histogram("serve_wal_fsync_seconds", obs.DurationBuckets),
	nodeDown:           obs.Default().Counter("serve_node_transitions_total", "to", "down"),
	nodeUp:             obs.Default().Counter("serve_node_transitions_total", "to", "up"),
	nodeDegraded:       obs.Default().Counter("serve_node_transitions_total", "to", "degraded"),
	instancesDestroyed: obs.Default().Counter("serve_instances_destroyed_total"),
	reaugAttempts:      obs.Default().Counter("serve_reaug_attempts_total"),
	reaugRestored:      obs.Default().Counter("serve_reaug_restored_total"),
	reaugDegradedTotal: obs.Default().Counter("serve_reaug_degraded_total"),
	reaugLost:          obs.Default().Counter("serve_reaug_lost_total"),
	degradedAnswers:    obs.Default().Counter("serve_degraded_answers_total"),
	scarcity:           obs.Default().Gauge("serve_scarcity_fraction"),
	scarceMode:         obs.Default().Gauge("serve_scarce_mode"),
	shedTotal:          obs.Default().Counter("serve_shed_total"),
	quotaDenials:       obs.Default().Counter("serve_quota_denials_total"),
	stageAdmit:         obs.Default().SpanHandle("serve_admit"),
	stageSolve:         obs.Default().SpanHandle("serve_solve"),
	stageCommit:        obs.Default().SpanHandle("serve_commit"),
	stageExec:          obs.Default().SpanHandle("serve_exec"),
	stageGate:          obs.Default().SpanHandle("serve_gate_wait"),
	stageFsync:         obs.Default().SpanHandle("serve_wal_fsync"),
}

// endpointInstruments caches the per-endpoint request counter and latency
// histogram (serve_requests_total / serve_request_duration_seconds).
type endpointInstruments struct {
	total    *obs.Counter
	rejected map[string]*obs.Counter
	duration *obs.Histogram
}

func endpointInstrumentsFor(endpoint string) *endpointInstruments {
	r := obs.Default()
	return &endpointInstruments{
		total: r.Counter("serve_requests_total", "endpoint", endpoint),
		rejected: map[string]*obs.Counter{
			reasonFull:     r.Counter("serve_rejected_total", "endpoint", endpoint, "reason", reasonFull),
			reasonDraining: r.Counter("serve_rejected_total", "endpoint", endpoint, "reason", reasonDraining),
			reasonQuota:    r.Counter("serve_rejected_total", "endpoint", endpoint, "reason", reasonQuota),
		},
		duration: r.Histogram("serve_request_duration_seconds", obs.DurationBuckets, "endpoint", endpoint),
	}
}

// Rejection reasons for serve_rejected_total.
const (
	reasonFull     = "queue_full"
	reasonDraining = "draining"
	reasonQuota    = "quota"
)

// tenantInstruments caches one tenant's serve_tenant_* instruments, resolved
// once at service construction so the hot path pays no registry lookups.
type tenantInstruments struct {
	admitted      *obs.Counter // requests admitted and committed for this tenant
	rejectedQuota *obs.Counter // submissions denied by the tenant's token bucket
	rejectedQueue *obs.Counter // submissions denied on queue bounds (global or fair-share)
	shed          *obs.Counter // requests shed by knapsack admission under scarcity
	infeasible    *obs.Counter // requests answered 422/504 (no feasible augmentation)
	depth         *obs.Gauge   // requests currently queued for this tenant
	logGain       *obs.Gauge   // cumulative tenant-weighted reliability log-gain
}

func tenantInstrumentsFor(name string) tenantInstruments {
	r := obs.Default()
	return tenantInstruments{
		admitted:      r.Counter("serve_tenant_admitted_total", "tenant", name),
		rejectedQuota: r.Counter("serve_tenant_rejected_total", "tenant", name, "reason", reasonQuota),
		rejectedQueue: r.Counter("serve_tenant_rejected_total", "tenant", name, "reason", reasonFull),
		shed:          r.Counter("serve_tenant_shed_total", "tenant", name),
		infeasible:    r.Counter("serve_tenant_infeasible_total", "tenant", name),
		depth:         r.Gauge("serve_tenant_queue_depth", "tenant", name),
		logGain:       r.Gauge("serve_tenant_weighted_log_gain", "tenant", name),
	}
}
