// Package wal is the durability subsystem of the augmentation service: an
// append-only write-ahead log of epoch transitions plus periodic full-state
// snapshots, so a restarted augmentd rebuilds its residual ledger and
// placement map exactly (same canonical state hash, same placement count).
//
// Layout inside the WAL directory:
//
//	snapshot.json   full state at one epoch, written atomically (tmp+rename)
//	wal.log         one framed entry per epoch install since that snapshot
//
// Each wal.log line is "<crc32-hex> <json>\n"; the checksum covers the JSON
// payload. Replay verifies every frame and stops at the first torn or
// corrupt line — the expected tail state after a crash mid-append — so a
// SIGKILL'd process restores to its last durable epoch. Every entry carries
// the full post-install residual vector: Go's float64 JSON encoding
// round-trips exactly, which makes the restored ledger bit-identical without
// having to replay the in-batch arithmetic in its original operation order.
package wal

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy selects when Append calls fsync.
type SyncPolicy string

// Append fsync policies: SyncAlways survives machine crashes at one fsync
// per epoch install; SyncNone leaves flushing to the OS page cache, which
// still survives process kills (SIGKILL) but not power loss.
const (
	SyncAlways SyncPolicy = "always"
	SyncNone   SyncPolicy = "none"
)

// ParseSyncPolicy validates a policy string (e.g. a CLI flag value).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case SyncAlways, SyncNone:
		return SyncPolicy(s), nil
	case "":
		return SyncAlways, nil
	default:
		return "", fmt.Errorf("wal: unknown sync policy %q (want %q or %q)", s, SyncAlways, SyncNone)
	}
}

// PlacedRecord is the durable form of one live placement: everything the
// serving layer needs to rebuild its record after a restart, including the
// exact per-node MHz a future release must return to the ledger.
type PlacedRecord struct {
	ID          int             `json:"id"`
	SFC         []int           `json:"sfc"`
	Expectation float64         `json:"rho"`
	Source      int             `json:"src"`
	Destination int             `json:"dst"`
	Primaries   []int           `json:"primaries"`
	Secondaries [][]int         `json:"secondaries"`
	Reliability float64         `json:"reliability"`
	Met         bool            `json:"met"`
	Algorithm   string          `json:"algorithm"`
	ServedBy    string          `json:"served_by,omitempty"`
	Tenant      string          `json:"tenant,omitempty"`
	PerNode     map[int]float64 `json:"per_node"`
}

// TenantQuota journals one tenant's token-bucket state (balance and virtual
// batch-clock position) at install time, so a restarted service resumes
// quota enforcement where the crashed one stopped instead of granting every
// tenant a fresh burst.
type TenantQuota struct {
	Name   string  `json:"name"`
	Tokens float64 `json:"tokens"`
	Tick   int64   `json:"tick"`
}

// HealthRecord journals one node health transition: the cloudlet and the
// state it entered ("down", "up", or "degraded"). A restarted service replays
// these to rebuild its down/degraded sets — and therefore its alert state —
// exactly as they were at crash time.
type HealthRecord struct {
	Node int    `json:"node"`
	To   string `json:"to"`
}

// Entry is one logged epoch transition: the post-install residual vector and
// canonical hash, plus the placements admitted and released by the install.
// Health transitions additionally carry the triggering event, the placement
// records the failure rewrote (destroyed instances, recomputed reliability),
// and the full post-transition down/degraded sets, so replay agrees with the
// live process on failed-instance accounting.
type Entry struct {
	Epoch    uint64         `json:"epoch"`
	Hash     string         `json:"hash"` // %016x of the canonical ledger hash
	Residual []float64      `json:"residual"`
	Admits   []PlacedRecord `json:"admits,omitempty"`
	Releases []int          `json:"releases,omitempty"`
	Health   *HealthRecord  `json:"health,omitempty"`
	Updates  []PlacedRecord `json:"updates,omitempty"`
	Down     []int          `json:"down,omitempty"`
	Degraded []int          `json:"degraded,omitempty"`
	Tenants  []TenantQuota  `json:"tenants,omitempty"`
}

// Snapshot is a full serving-state checkpoint: writing one truncates the log,
// bounding replay work and WAL growth.
type Snapshot struct {
	Epoch    uint64         `json:"epoch"`
	Hash     string         `json:"hash"`
	Residual []float64      `json:"residual"`
	Placed   []PlacedRecord `json:"placed"`
	Down     []int          `json:"down,omitempty"`
	Degraded []int          `json:"degraded,omitempty"`
	Tenants  []TenantQuota  `json:"tenants,omitempty"`
}

// File names inside the WAL directory.
const (
	logName      = "wal.log"
	snapshotName = "snapshot.json"
)

// Log is an open write-ahead log. Append, Sync, and WriteSnapshot are safe
// for concurrent use; the serving layer orders appends itself and calls Sync
// concurrently from its committers, relying on the group-commit coalescing
// below for throughput.
type Log struct {
	mu        sync.Mutex
	dir       string
	policy    SyncPolicy
	f         *os.File
	entries   uint64
	snapshots uint64

	// Group-commit state, all under mu. Under SyncAlways, Append stages
	// frames in pending (pure memory — it never touches the file, so appends
	// cannot block on the kernel's inode lock while an fsync is in flight)
	// and writeSeq numbers them. One Sync caller at a time is the flush
	// leader (flushing == true): it swaps the buffer out, writes it in one
	// syscall, fsyncs, records the covered writeSeq in syncSeq, and
	// broadcasts by closing flushDone. Every other committer waits on that
	// channel — never on a mutex, so a finished group's members return the
	// moment they are covered instead of queueing behind the next leader —
	// re-checks coverage, and either returns or becomes the next leader.
	// One flush thus makes every previously staged entry durable: N
	// concurrent committers share ~1 fsync instead of paying N.
	pending   []byte
	writeSeq  uint64
	syncSeq   uint64
	flushing  bool
	flushDone chan struct{}

	// Gather window (SetGroupCommit): a flush leader with siblings waits up
	// to gatherDelay for other committers' appends to stage before flushing,
	// so one fsync commits the whole group instead of each commit paying its
	// own. appendCh (capacity 1) is Append's wakeup to a gathering leader.
	gatherDelay time.Duration
	gather      int
	appendCh    chan struct{}
}

// Open creates dir if needed and opens the log file for appending. Existing
// entries are preserved (restart continues the same log); use Replay first
// to rebuild state from them.
func Open(dir string, policy SyncPolicy) (*Log, error) {
	if policy == "" {
		policy = SyncAlways
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open log: %w", err)
	}
	return &Log{dir: dir, policy: policy, f: f, flushDone: make(chan struct{})}, nil
}

// beginFlush blocks until no flush is in flight, then claims flush
// leadership. Every file-mutating path (Sync's flush, WriteSnapshot, Close)
// runs between beginFlush and endFlush, so at most one of them touches the
// log file at a time without any of them holding a lock across disk I/O.
func (l *Log) beginFlush() {
	for {
		l.mu.Lock()
		if !l.flushing {
			l.flushing = true
			l.mu.Unlock()
			return
		}
		ch := l.flushDone
		l.mu.Unlock()
		<-ch
	}
}

// endFlush releases flush leadership and wakes every waiter (committers
// blocked in Sync and claimants queued in beginFlush) by closing the current
// generation's flushDone channel.
func (l *Log) endFlush() {
	l.mu.Lock()
	l.flushing = false
	close(l.flushDone)
	l.flushDone = make(chan struct{})
	l.mu.Unlock()
}

// Dir returns the WAL directory.
func (l *Log) Dir() string { return l.dir }

// SetGroupCommit configures the Sync leader's gather window. With gather
// sibling committers (> 0) and a positive delay, a leader about to flush
// first waits — up to delay — until more than gather appends are staged
// beyond the last durable one, then flushes the whole group with a single
// fsync. This is the commit-delay half of classic group commit: without it,
// a fast pipeline falls into lock-step where each fsync covers exactly one
// append (the next commit's append lands just after the leader swapped the
// buffer) and coalescing never materialises. Callers with a single
// committer must leave gather at 0 — a delay with no siblings to gather is
// pure added latency. Call before the first Sync; it is not synchronized
// with concurrent flushes.
func (l *Log) SetGroupCommit(delay time.Duration, gather int) {
	l.gatherDelay = delay
	l.gather = gather
	if l.appendCh == nil {
		l.appendCh = make(chan struct{}, 1)
	}
}

// Entries returns the number of entries appended through this Log handle.
func (l *Log) Entries() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.entries
}

// Snapshots returns the number of snapshots written through this Log handle.
func (l *Log) Snapshots() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapshots
}

// Append frames one entry and returns a token for Sync. Under SyncAlways
// the frame is staged in memory — it reaches the file (and the disk) only
// when a Sync or Close flushes it, so callers must not treat the write as
// committed until Sync(token) returns. Staging keeps Append free of file
// I/O entirely, which is what lets the commit pipeline keep executing while
// another committer's fsync is in flight. Under SyncNone the frame is
// written through to the OS immediately.
func (l *Log) Append(e Entry) (uint64, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return 0, fmt.Errorf("wal: marshal entry: %w", err)
	}
	frame := EncodeFrame(payload)

	l.mu.Lock()
	if l.policy == SyncAlways {
		l.pending = append(l.pending, frame...)
	} else if _, err := l.f.Write(frame); err != nil {
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: append entry %d: %w", e.Epoch, err)
	}
	l.entries++
	l.writeSeq++
	tok := l.writeSeq
	// Wake a gathering Sync leader only when this append completes its
	// group — intermediate wakeups would each cost a context switch just to
	// re-park the leader. Non-blocking, and a missed or stale signal is fine:
	// the leader re-checks the staged count on every wakeup and has a timer.
	signal := l.appendCh != nil && l.writeSeq-l.syncSeq > uint64(l.gather)
	l.mu.Unlock()
	if signal {
		select {
		case l.appendCh <- struct{}{}:
		default:
		}
	}
	return tok, nil
}

// Sync blocks until the append identified by token is durable and returns
// how long the disk flush took (zero under SyncNone, or when another
// committer's flush already covered the append). One committer at a time
// leads: it swaps out every frame staged so far, writes them in one
// syscall, and fsyncs once — so committers that arrive while a flush is
// running wait on a broadcast channel, re-check coverage when it completes,
// and usually return without ever touching the disk: the classic
// group-commit optimization. A write failure drops the staged frames (the
// log degrades to non-durable rather than wedging every later Sync).
func (l *Log) Sync(token uint64) (time.Duration, error) {
	if l.policy != SyncAlways {
		return 0, nil
	}
	for {
		l.mu.Lock()
		if l.syncSeq >= token {
			l.mu.Unlock()
			return 0, nil
		}
		if !l.flushing {
			l.flushing = true
			l.mu.Unlock()
			break
		}
		ch := l.flushDone
		l.mu.Unlock()
		<-ch
	}
	// Flush leader from here down.
	if l.gatherDelay > 0 && l.gather > 0 {
		// Commit delay: hold the flush until more than gather appends are
		// staged (one per sibling committer plus our own) or the window
		// expires. On a single core the wait donates the CPU to the commit
		// pipeline, which is exactly what produces the appends being waited
		// for.
		timer := time.NewTimer(l.gatherDelay)
	gatherLoop:
		for {
			l.mu.Lock()
			staged := l.writeSeq - l.syncSeq
			l.mu.Unlock()
			if staged > uint64(l.gather) {
				break
			}
			select {
			case <-l.appendCh:
			case <-timer.C:
				break gatherLoop
			}
		}
		timer.Stop()
	}
	start := time.Now()
	l.mu.Lock()
	buf := l.pending
	l.pending = nil
	cover := l.writeSeq
	l.mu.Unlock()
	if len(buf) > 0 {
		if _, err := l.f.Write(buf); err != nil {
			l.mu.Lock()
			l.syncSeq = cover
			l.mu.Unlock()
			l.endFlush()
			return 0, fmt.Errorf("wal: flush staged entries: %w", err)
		}
	}
	if err := l.f.Sync(); err != nil {
		// The frames are in the file but not durably; leave syncSeq so a
		// later leader retries the fsync over them.
		l.endFlush()
		return 0, fmt.Errorf("wal: fsync: %w", err)
	}
	l.mu.Lock()
	l.syncSeq = cover
	l.mu.Unlock()
	l.endFlush()
	return time.Since(start), nil
}

// WriteSnapshot checkpoints the full state atomically (tmp file, fsync,
// rename) and truncates the log: every entry the snapshot subsumes is
// dropped, so Replay work stays bounded. Callers must order appends against
// snapshots themselves (the serving layer holds its WAL-order lock across
// both): an entry for an epoch after the snapshot's must be appended after
// the snapshot is written, or the truncation would drop it. Prior appends
// are subsumed — their pending Sync calls return without an fsync, since the
// snapshot file itself is already durable.
func (l *Log) WriteSnapshot(s Snapshot) error {
	payload, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("wal: marshal snapshot: %w", err)
	}
	l.beginFlush()
	defer l.endFlush()
	l.mu.Lock()
	defer l.mu.Unlock()
	tmp := filepath.Join(l.dir, snapshotName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create snapshot: %w", err)
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: fsync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapshotName)); err != nil {
		return fmt.Errorf("wal: publish snapshot: %w", err)
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate log after snapshot: %w", err)
	}
	if _, err := l.f.Seek(0, 0); err != nil {
		return fmt.Errorf("wal: rewind log after snapshot: %w", err)
	}
	l.snapshots++
	// Frames still staged in memory describe epochs at or before the
	// snapshot's, so the durable snapshot subsumes them — drop them and
	// mark every outstanding token covered.
	l.pending = nil
	l.syncSeq = l.writeSeq
	return nil
}

// Close flushes any staged or unsynced appends (under SyncAlways) and
// releases the log file handle.
func (l *Log) Close() error {
	l.beginFlush()
	defer l.endFlush()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.policy == SyncAlways && (len(l.pending) > 0 || l.syncSeq < l.writeSeq) {
		if len(l.pending) > 0 {
			if _, err := l.f.Write(l.pending); err != nil {
				l.f.Close()
				return fmt.Errorf("wal: flush staged entries on close: %w", err)
			}
			l.pending = nil
		}
		if err := l.f.Sync(); err != nil {
			l.f.Close()
			return fmt.Errorf("wal: fsync on close: %w", err)
		}
		l.syncSeq = l.writeSeq
	}
	return l.f.Close()
}

// Replay reads the durable state in dir: the latest snapshot (nil if none
// was ever written) and every intact log entry after it, in append order.
// A torn or corrupt tail frame ends the replay silently — that is the
// expected crash artifact — but a corrupt frame *before* an intact one is an
// error, since it means silent data loss mid-log.
func Replay(dir string) (*Snapshot, []Entry, error) {
	var snap *Snapshot
	if payload, err := os.ReadFile(filepath.Join(dir, snapshotName)); err == nil {
		snap = &Snapshot{}
		if err := json.Unmarshal(payload, snap); err != nil {
			return nil, nil, fmt.Errorf("wal: corrupt snapshot in %s: %w", dir, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("wal: read snapshot: %w", err)
	}

	raw, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		if os.IsNotExist(err) {
			return snap, nil, nil
		}
		return nil, nil, fmt.Errorf("wal: read log: %w", err)
	}
	var entries []Entry
	lines := strings.Split(string(raw), "\n")
	for i, line := range lines {
		if line == "" {
			continue
		}
		e, ok := decodeFrame(line)
		if !ok {
			// Only the final frame may be torn; anything after it must be
			// empty, or the log lost data in the middle.
			for _, rest := range lines[i+1:] {
				if rest != "" {
					return nil, nil, fmt.Errorf("wal: corrupt frame at line %d of %s with intact entries after it", i+1, logName)
				}
			}
			break
		}
		if snap != nil && e.Epoch <= snap.Epoch {
			continue // subsumed by the snapshot
		}
		entries = append(entries, e)
	}
	return snap, entries, nil
}

// decodeFrame parses one "<crc32-hex> <json>" line, reporting whether the
// frame is intact.
func decodeFrame(line string) (Entry, bool) {
	var e Entry
	payload, ok := DecodeFrame(line)
	if !ok {
		return e, false
	}
	if err := json.Unmarshal(payload, &e); err != nil {
		return e, false
	}
	return e, true
}

// EncodeFrame wraps a payload in the WAL's line framing —
// "<crc32-hex> <payload>\n", checksum over the payload bytes. Exported so
// other append-only logs (the serving layer's request-trace recorder) share
// the WAL's torn-tail detection instead of inventing a second format.
func EncodeFrame(payload []byte) []byte {
	frame := make([]byte, 0, len(payload)+10)
	frame = append(frame, fmt.Sprintf("%08x ", crc32.ChecksumIEEE(payload))...)
	frame = append(frame, payload...)
	frame = append(frame, '\n')
	return frame
}

// DecodeFrame unwraps one framed line (without its trailing newline),
// returning the payload and whether the checksum verified.
func DecodeFrame(line string) ([]byte, bool) {
	crcHex, payload, found := strings.Cut(line, " ")
	if !found || len(crcHex) != 8 {
		return nil, false
	}
	want, err := strconv.ParseUint(crcHex, 16, 32)
	if err != nil {
		return nil, false
	}
	if crc32.ChecksumIEEE([]byte(payload)) != uint32(want) {
		return nil, false
	}
	return []byte(payload), true
}
