package wal

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func entry(epoch uint64, res []float64) Entry {
	return Entry{
		Epoch:    epoch,
		Hash:     "deadbeefdeadbeef",
		Residual: res,
		Admits: []PlacedRecord{{
			ID: int(epoch), SFC: []int{0, 1}, Expectation: 0.95,
			Primaries: []int{2, 3}, Secondaries: [][]int{{2}, {3, 3}},
			Reliability: 0.97, Met: true, Algorithm: "Heuristic",
			PerNode: map[int]float64{2: 400, 3: 900},
		}},
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	// Awkward floats must round-trip bit-exactly through the JSON frames.
	res := []float64{1000.0 / 3.0, math.Nextafter(4000, 0), 0, 123.456e-7}
	if _, err := l.Append(entry(1, res)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Entry{Epoch: 2, Hash: "0", Residual: res, Releases: []int{1}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	snap, entries, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Fatalf("unexpected snapshot: %+v", snap)
	}
	if len(entries) != 2 {
		t.Fatalf("replayed %d entries, want 2", len(entries))
	}
	for i, v := range entries[0].Residual {
		if math.Float64bits(v) != math.Float64bits(res[i]) {
			t.Fatalf("residual %d not bit-identical: %x vs %x", i, math.Float64bits(v), math.Float64bits(res[i]))
		}
	}
	a := entries[0].Admits[0]
	if a.ID != 1 || a.PerNode[3] != 900 || len(a.Secondaries[1]) != 2 {
		t.Fatalf("admit record mangled: %+v", a)
	}
	if entries[1].Releases[0] != 1 {
		t.Fatalf("release record mangled: %+v", entries[1])
	}
}

func TestTornTailIsTolerated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 3; e++ {
		if _, err := l.Append(entry(e, []float64{float64(e)})); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Tear the final frame mid-line, as a crash during append would.
	path := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	_, entries, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[1].Epoch != 2 {
		t.Fatalf("torn tail: replayed %d entries (last %v), want the 2 intact ones", len(entries), entries)
	}
}

func TestMidLogCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 2; e++ {
		if _, err := l.Append(entry(e, []float64{float64(e)})); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	path := filepath.Join(dir, "wal.log")
	raw, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(raw), "\n")
	corrupted := "00000000" + lines[0][8:] + lines[1]
	if err := os.WriteFile(path, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Replay(dir); err == nil {
		t.Fatal("mid-log corruption with intact entries after it replayed without error")
	}
}

func TestSnapshotTruncatesAndSubsumes(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for e := uint64(1); e <= 4; e++ {
		if _, err := l.Append(entry(e, []float64{float64(e)})); err != nil {
			t.Fatal(err)
		}
	}
	snap := Snapshot{Epoch: 4, Hash: "abc", Residual: []float64{4}, Placed: []PlacedRecord{{ID: 9, PerNode: map[int]float64{0: 1}}}}
	if err := l.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	tok, err := l.Append(entry(5, []float64{5}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Sync(tok); err != nil {
		t.Fatal(err)
	}
	if l.Entries() != 5 || l.Snapshots() != 1 {
		t.Fatalf("counters entries=%d snapshots=%d", l.Entries(), l.Snapshots())
	}

	got, entries, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Epoch != 4 || got.Placed[0].ID != 9 {
		t.Fatalf("snapshot not replayed: %+v", got)
	}
	if len(entries) != 1 || entries[0].Epoch != 5 {
		t.Fatalf("post-snapshot entries %v, want just epoch 5", entries)
	}
}

func TestReplayEmptyDir(t *testing.T) {
	snap, entries, err := Replay(t.TempDir())
	if err != nil || snap != nil || entries != nil {
		t.Fatalf("empty dir: snap=%v entries=%v err=%v", snap, entries, err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	if p, err := ParseSyncPolicy(""); err != nil || p != SyncAlways {
		t.Fatalf("empty policy: %v %v", p, err)
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}
