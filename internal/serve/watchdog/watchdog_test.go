package watchdog

import (
	"sync"
	"testing"
	"time"
)

// testClock is an injectable clock the dedup tests advance by hand.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// newTestAlerter returns an alerter with a hand-driven clock and a recorder
// handler capturing every fired transition.
func newTestAlerter(cfg Config) (*Alerter, *testClock, *[]Transition) {
	clock := &testClock{now: time.Unix(1000, 0)}
	var fired []Transition
	var mu sync.Mutex
	cfg.Now = clock.Now
	cfg.Handler = func(t Transition) {
		mu.Lock()
		fired = append(fired, t)
		mu.Unlock()
	}
	return New(cfg), clock, &fired
}

func TestSessionLevelTransitions(t *testing.T) {
	// WarnFactor 1.05, CritFactor 1.0, Hysteresis 0.02: with ρ = 0.9 the
	// bands are CRIT < 0.9, WARN < 0.945, OK above — but a recovering value
	// must additionally clear threshold·1.02 to downgrade.
	cases := []struct {
		name string
		us   []float64
		want []Level
	}{
		{"ok-warn-crit-ok", []float64{0.99, 0.93, 0.85, 0.99}, []Level{OK, Warn, Crit, OK}},
		{"straight-to-crit", []float64{0.5}, []Level{Crit}},
		{"warn-band", []float64{0.94}, []Level{Warn}},
		// 0.91 is above the CRIT threshold 0.9 but below 0.9·1.02 = 0.918:
		// hysteresis keeps the alert at CRIT until the value clears the margin.
		{"crit-hysteresis-holds", []float64{0.85, 0.91}, []Level{Crit, Crit}},
		{"crit-hysteresis-clears", []float64{0.85, 0.93}, []Level{Crit, Warn}},
		// WARN threshold 0.945, margin 0.945·1.02 = 0.9639.
		{"warn-hysteresis-holds", []float64{0.93, 0.95}, []Level{Warn, Warn}},
		{"warn-hysteresis-clears", []float64{0.93, 0.97}, []Level{Warn, OK}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, _, _ := newTestAlerter(Config{})
			for i, u := range tc.us {
				got := a.EvalSession(7, u, 0.9, "")
				if got != tc.want[i] {
					t.Fatalf("step %d: u=%v -> %v, want %v", i, u, got, tc.want[i])
				}
			}
		})
	}
}

func TestCloudletLevels(t *testing.T) {
	a, _, fired := newTestAlerter(Config{})
	if got := a.EvalCloudlet(3, "down", "crash"); got != Crit {
		t.Fatalf("down -> %v, want CRIT", got)
	}
	if got := a.EvalCloudlet(3, "degraded", "draining"); got != Warn {
		t.Fatalf("degraded -> %v, want WARN", got)
	}
	if got := a.EvalCloudlet(3, "up", "repaired"); got != OK {
		t.Fatalf("up -> %v, want OK", got)
	}
	if len(*fired) != 3 {
		t.Fatalf("fired %d transitions, want 3", len(*fired))
	}
	if len(a.Active()) != 0 {
		t.Fatalf("recovered cloudlet still active: %+v", a.Active())
	}
}

func TestDedupWindow(t *testing.T) {
	a, clock, fired := newTestAlerter(Config{DedupWindow: 10 * time.Second})
	flap := func() {
		a.EvalSession(1, 0.5, 0.9, "")  // CRIT
		a.EvalSession(1, 0.99, 0.9, "") // OK
	}
	flap() // both transitions fire
	clock.Advance(2 * time.Second)
	flap() // both deduplicated (same levels re-entered within the window)
	if got := len(*fired); got != 2 {
		t.Fatalf("fired %d transitions, want 2 (second flap deduped)", got)
	}
	clock.Advance(20 * time.Second)
	flap() // window expired: fires again
	if got := len(*fired); got != 4 {
		t.Fatalf("fired %d transitions, want 4 after window expiry", got)
	}
	// Dedup suppresses the handler, never the state machine.
	a.EvalSession(1, 0.5, 0.9, "")
	if got := a.Level(Key{Kind: KindSession, ID: 1}); got != Crit {
		t.Fatalf("level %v after deduped transition, want CRIT", got)
	}
}

func TestResolveDropsEntry(t *testing.T) {
	a, _, _ := newTestAlerter(Config{})
	a.EvalSession(5, 0.5, 0.9, "")
	if len(a.Active()) != 1 {
		t.Fatalf("want 1 active alert, got %d", len(a.Active()))
	}
	a.Resolve(Key{Kind: KindSession, ID: 5}, "released")
	if len(a.Active()) != 0 {
		t.Fatalf("resolved alert still active")
	}
	if got := a.Level(Key{Kind: KindSession, ID: 5}); got != OK {
		t.Fatalf("resolved level %v, want OK", got)
	}
}

func TestActiveSortedDeterministic(t *testing.T) {
	a, _, _ := newTestAlerter(Config{})
	a.EvalSession(9, 0.5, 0.9, "")
	a.EvalCloudlet(2, "down", "")
	a.EvalSession(3, 0.93, 0.9, "")
	a.EvalCloudlet(7, "degraded", "")
	got := a.Active()
	want := []Key{
		{KindCloudlet, 2}, {KindCloudlet, 7}, {KindSession, 3}, {KindSession, 9},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d active alerts, want %d", len(got), len(want))
	}
	for i, al := range got {
		if al.Key != want[i] {
			t.Fatalf("slot %d: %v, want %v", i, al.Key, want[i])
		}
	}
}

// TestConcurrentEvalAndRead drives concurrent event application against
// /v1/alerts-style reads; run under -race this pins the alerter's locking.
func TestConcurrentEvalAndRead(t *testing.T) {
	a := New(Config{Handler: func(Transition) {}})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				u := 0.5 + float64((g+i)%50)/100
				a.EvalSession(g*100+i%17, u, 0.9, "load")
				a.EvalCloudlet(i%5, []string{"down", "up", "degraded"}[i%3], "")
			}
		}(g)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				a.Snapshot()
				a.Active()
				a.Recent()
			}
		}()
	}
	wg.Wait()
}
