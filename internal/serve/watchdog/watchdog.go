// Package watchdog is the serving layer's live failure-handling toolkit: a
// kapacitor-style stateful alerter with OK/WARN/CRIT levels, hysteresis, and
// a dedup window, keyed per session and per cloudlet. The serving layer
// (internal/serve) feeds it node health transitions and attained-reliability
// recomputes; the alerter tracks level transitions, fires a handler hook on
// each (deduplicated) transition, and serves a JSON view for /v1/alerts.
//
// The alerter is deliberately free of serve dependencies — it consumes plain
// (attained, expected) reliability pairs and health strings — so its state
// machine is testable in isolation and reusable by offline tooling.
package watchdog

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Level is an alert severity. Levels are ordered: OK < Warn < Crit.
type Level int

// Alert severity levels, ordered ascending.
const (
	OK Level = iota
	Warn
	Crit
)

// String returns the canonical upper-case level name.
func (l Level) String() string {
	switch l {
	case OK:
		return "OK"
	case Warn:
		return "WARN"
	case Crit:
		return "CRIT"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Kind distinguishes alert subjects.
const (
	// KindSession keys an alert by session (placement) ID: attained
	// reliability u_j versus expectation ρ_j.
	KindSession = "session"
	// KindCloudlet keys an alert by cloudlet ID: node health transitions.
	KindCloudlet = "cloudlet"
)

// Key identifies one alert subject.
type Key struct {
	Kind string `json:"kind"`
	ID   int    `json:"id"`
}

// String renders the key as "kind/id".
func (k Key) String() string { return fmt.Sprintf("%s/%d", k.Kind, k.ID) }

// Transition is one alert level change, delivered to the handler hook and
// kept in the recent-transition ring.
type Transition struct {
	Key   Key     `json:"key"`
	From  Level   `json:"-"`
	To    Level   `json:"-"`
	Value float64 `json:"value"`     // attained u_j (sessions) or 0/1 health (cloudlets)
	Bound float64 `json:"threshold"` // expectation ρ_j (sessions); unused for cloudlets
	Note  string  `json:"note,omitempty"`
	// FromName/ToName are the JSON renderings of From/To.
	FromName string `json:"from"`
	ToName   string `json:"to"`
}

// Alert is the public view of one alert state, served on /v1/alerts.
type Alert struct {
	Key   Key     `json:"key"`
	Level string  `json:"level"`
	Value float64 `json:"value"`
	Bound float64 `json:"threshold,omitempty"`
	Note  string  `json:"note,omitempty"`
	// Count is how many times this key entered its current level.
	Count int `json:"count"`
}

// Config parameterizes the alerter's thresholds and state machine.
type Config struct {
	// WarnFactor raises WARN when u < ρ·WarnFactor: the session is meeting
	// its SLO but running close to it. Must be >= CritFactor. Default 1.05.
	WarnFactor float64
	// CritFactor raises CRIT when u < ρ·CritFactor — with the default 1.0,
	// CRIT means the SLO is violated outright.
	CritFactor float64
	// Hysteresis is the fractional margin a recovering value must clear
	// beyond a threshold before the level downgrades, preventing flapping at
	// the boundary. Default 0.02 (clear WARN only when u >= ρ·WarnFactor·1.02).
	Hysteresis float64
	// DedupWindow suppresses the handler hook (not the state change) when the
	// same key re-enters the same level within the window. Default 5s.
	DedupWindow time.Duration
	// Handler receives every non-deduplicated transition. nil installs the
	// default slog hook (WARN→slog.Warn, CRIT→slog.Error, OK→slog.Info).
	Handler func(Transition)
	// Now overrides the clock (tests). nil means time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.WarnFactor == 0 {
		c.WarnFactor = 1.05
	}
	if c.CritFactor == 0 {
		c.CritFactor = 1.0
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = 0.02
	}
	if c.DedupWindow == 0 {
		c.DedupWindow = 5 * time.Second
	}
	if c.Handler == nil {
		c.Handler = slogHandler
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// slogHandler is the default transition hook: structured log lines at a
// severity matching the level entered.
func slogHandler(t Transition) {
	args := []any{"key", t.Key.String(), "from", t.From.String(), "to", t.To.String(),
		"value", t.Value, "threshold", t.Bound, "note", t.Note}
	switch t.To {
	case Crit:
		slog.Error("watchdog: alert", args...)
	case Warn:
		slog.Warn("watchdog: alert", args...)
	default:
		slog.Info("watchdog: alert cleared", args...)
	}
}

// entry is one key's alert state.
type entry struct {
	level Level
	value float64
	bound float64
	note  string
	count int // times the key entered its current level
	// lastFired[level] is when the handler last fired for a transition into
	// level — the dedup window's memory.
	lastFired [Crit + 1]time.Time
}

// metrics are the alerter's obs instruments (package-level, shared by every
// Alerter in the process — the serving layer constructs exactly one).
var metrics = struct {
	transitions [Crit + 1]*obs.Counter
	active      [Crit + 1]*obs.Gauge
	deduped     *obs.Counter
}{
	transitions: [Crit + 1]*obs.Counter{
		obs.Default().Counter("serve_alert_transitions_total", "level", "ok"),
		obs.Default().Counter("serve_alert_transitions_total", "level", "warn"),
		obs.Default().Counter("serve_alert_transitions_total", "level", "crit"),
	},
	active: [Crit + 1]*obs.Gauge{
		obs.Default().Gauge("serve_alerts_active", "level", "ok"),
		obs.Default().Gauge("serve_alerts_active", "level", "warn"),
		obs.Default().Gauge("serve_alerts_active", "level", "crit"),
	},
	deduped: obs.Default().Counter("serve_alert_deduped_total"),
}

// Alerter is the stateful alert engine. All methods are safe for concurrent
// use: event application takes the write lock, /v1/alerts reads take the read
// lock.
type Alerter struct {
	cfg Config

	mu      sync.RWMutex
	entries map[Key]*entry
	recent  []Transition // bounded ring of the last recentCap transitions
}

// recentCap bounds the recent-transition ring served on /v1/alerts.
const recentCap = 64

// New builds an alerter; zero-value Config fields take their defaults.
func New(cfg Config) *Alerter {
	return &Alerter{cfg: cfg.withDefaults(), entries: make(map[Key]*entry)}
}

// sessionLevel classifies attained reliability u against expectation rho
// under the alerter's thresholds, given the current level (hysteresis: a
// recovering value must clear the threshold by the configured margin before
// the level drops).
func (a *Alerter) sessionLevel(cur Level, u, rho float64) Level {
	critAt := rho * a.cfg.CritFactor
	warnAt := rho * a.cfg.WarnFactor
	if warnAt < critAt {
		warnAt = critAt
	}
	switch {
	case u < critAt:
		return Crit
	case cur >= Crit && u < critAt*(1+a.cfg.Hysteresis):
		return Crit
	case u < warnAt:
		return Warn
	case cur >= Warn && u < warnAt*(1+a.cfg.Hysteresis):
		return Warn
	default:
		return OK
	}
}

// EvalSession applies a session reliability observation: the attained u_j
// against the expectation ρ_j. Returns the resulting level.
func (a *Alerter) EvalSession(id int, u, rho float64, note string) Level {
	a.mu.Lock()
	defer a.mu.Unlock()
	key := Key{Kind: KindSession, ID: id}
	e := a.entries[key]
	cur := OK
	if e != nil {
		cur = e.level
	}
	next := a.sessionLevel(cur, u, rho)
	a.applyLocked(key, next, u, rho, note)
	return next
}

// EvalCloudlet applies a cloudlet health observation: "down" is CRIT,
// "degraded" is WARN, "up" is OK. Returns the resulting level.
func (a *Alerter) EvalCloudlet(node int, health string, note string) Level {
	var next Level
	var value float64
	switch health {
	case "down":
		next, value = Crit, 0
	case "degraded":
		next, value = Warn, 0.5
	default:
		next, value = OK, 1
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.applyLocked(Key{Kind: KindCloudlet, ID: node}, next, value, 0, note)
	return next
}

// Resolve forces a key to OK (e.g. the session was released) and drops its
// entry once the transition is recorded.
func (a *Alerter) Resolve(key Key, note string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if e, ok := a.entries[key]; ok && e.level != OK {
		a.applyLocked(key, OK, e.value, e.bound, note)
	}
	if e, ok := a.entries[key]; ok {
		metrics.active[e.level].Add(-1)
		delete(a.entries, key)
	}
}

// applyLocked moves key to level, firing the handler unless the transition is
// a duplicate within the dedup window. Callers hold a.mu.
func (a *Alerter) applyLocked(key Key, level Level, value, bound float64, note string) {
	e := a.entries[key]
	if e == nil {
		if level == OK {
			return // never materialize an entry for a healthy subject
		}
		e = &entry{level: OK}
		a.entries[key] = e
		metrics.active[OK].Add(1)
	}
	prev := e.level
	e.value, e.bound = value, bound
	if note != "" {
		e.note = note
	}
	if level == prev {
		return
	}
	metrics.active[prev].Add(-1)
	metrics.active[level].Add(1)
	metrics.transitions[level].Inc()
	e.level = level
	e.count++
	now := a.cfg.Now()
	tr := Transition{
		Key: key, From: prev, To: level, Value: value, Bound: bound, Note: note,
		FromName: prev.String(), ToName: level.String(),
	}
	a.recent = append(a.recent, tr)
	if len(a.recent) > recentCap {
		a.recent = a.recent[len(a.recent)-recentCap:]
	}
	if now.Sub(e.lastFired[level]) < a.cfg.DedupWindow && !e.lastFired[level].IsZero() {
		metrics.deduped.Inc()
		return
	}
	e.lastFired[level] = now
	a.cfg.Handler(tr)
}

// Level returns the current level for key (OK when untracked).
func (a *Alerter) Level(key Key) Level {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if e, ok := a.entries[key]; ok {
		return e.level
	}
	return OK
}

// Active returns every non-OK alert, sorted by kind then ID — the
// deterministic view the chaos selftest compares across runs.
func (a *Alerter) Active() []Alert {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var out []Alert
	for key, e := range a.entries {
		if e.level == OK {
			continue
		}
		out = append(out, Alert{
			Key: key, Level: e.level.String(), Value: e.value,
			Bound: e.bound, Note: e.note, Count: e.count,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Kind != out[j].Key.Kind {
			return out[i].Key.Kind < out[j].Key.Kind
		}
		return out[i].Key.ID < out[j].Key.ID
	})
	return out
}

// Recent returns the last transitions (most recent last), bounded to the
// internal ring capacity.
func (a *Alerter) Recent() []Transition {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return append([]Transition(nil), a.recent...)
}

// View is the JSON body of GET /v1/alerts.
type View struct {
	Active []Alert      `json:"active"`
	Recent []Transition `json:"recent_transitions"`
}

// Snapshot collects the /v1/alerts view.
func (a *Alerter) Snapshot() View {
	return View{Active: a.Active(), Recent: a.Recent()}
}
