package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/mec"
	"repro/internal/obs/trace"
	"repro/internal/serve/wal"
	"repro/internal/serve/watchdog"
)

// Admission policies for requests that arrive without primaries.
const (
	// AdmitRandom places each primary on a uniformly random cloudlet with
	// residual headroom (the paper's §7.1 evaluation policy), seeded per
	// request sequence number.
	AdmitRandom = "random"
	// AdmitMaxReliability places primaries via the layered-DAG
	// maximum-reliability construction of Section 4.1. Deterministic, so
	// identical requests get identical primaries — the cache-friendly choice.
	AdmitMaxReliability = "maxrel"
)

// groupCommitDelay is how long a flushing batcher waits for sibling
// batchers' WAL appends before paying the fsync (only when Batchers > 1).
// It bounds the extra commit latency a request can see from group commit;
// the gather usually completes much sooner, as soon as every sibling's
// append has staged.
const groupCommitDelay = 500 * time.Microsecond

// Options configures a Service. The zero value is usable: every field has a
// serving-ready default (see New).
type Options struct {
	// QueueDepth bounds the admission queue; a full queue answers 429 with
	// Retry-After. Default 64.
	QueueDepth int
	// BatchSize is the micro-batch bound B: the batcher solves as soon as B
	// requests are waiting. Default 8.
	BatchSize int
	// BatchWait is the micro-batch latency bound T: a non-full batch is
	// solved at most this long after its first request. Default 2ms.
	BatchWait time.Duration
	// Workers is the trial-engine worker count used to solve a batch in
	// parallel. <= 0 means GOMAXPROCS. Placements are bit-identical for any
	// value (the engine's determinism guarantee).
	Workers int
	// Solver serves augmentations; nil selects the registered Failsafe chain
	// (Heuristic → Greedy). Results from solvers whose name contains
	// "random" are never cached: their output depends on the per-request
	// seed, so a cached result would not equal a fresh solve.
	Solver core.Solver
	// HopBound is the paper's l: secondaries sit within HopBound hops of
	// their primary. Default 1.
	HopBound int
	// AdmitPolicy places primaries for requests that omit them:
	// AdmitRandom (default) or AdmitMaxReliability.
	AdmitPolicy string
	// DefaultDeadline bounds each request's solve wall-clock via the
	// fail-soft engine's per-trial deadline (requests may lower it with
	// deadline_ms). Zero means unbounded — the deterministic default.
	DefaultDeadline time.Duration
	// CacheSize bounds the solver-result LRU (entries); 0 disables caching.
	// Default 256.
	CacheSize int
	// Seed is the base of every per-request RNG seed derivation. Default 1.
	Seed int64
	// Batchers is the number of concurrent micro-batchers: batches execute
	// speculatively in parallel against pinned epochs and commit in batch-
	// sequence order, so placements stay bit-identical for any value.
	// Default 1.
	Batchers int
	// WALDir, when set, arms the write-ahead log: every installed epoch is
	// appended (and periodically checkpointed) under this directory, so a
	// restarted service rebuilds ledger and placements exactly (see Restore).
	// Empty disables durability.
	WALDir string
	// WALSync selects the WAL fsync policy: "always" (default; survives
	// machine crashes) or "none" (page-cache durability only — survives
	// process kills).
	WALSync string
	// SnapshotEvery is the WAL checkpoint cadence in entries: a full-state
	// snapshot subsumes and truncates the log. Default 256.
	SnapshotEvery int
	// Restore replays WALDir before serving: the service boots with the
	// pre-crash epoch, residual ledger, and placement map instead of a fresh
	// network. Requires WALDir.
	Restore bool
	// TraceDepth sizes the flight recorder: the last TraceDepth completed
	// request traces are kept in memory and served at /debug/traces. 0 means
	// the default 256; negative disables request tracing entirely (no trace
	// allocation, no X-Trace-Id).
	TraceDepth int
	// TraceSlow, when positive, dumps the full span timeline of any request
	// whose end-to-end latency exceeds it to the structured log.
	TraceSlow time.Duration
	// RecordPath, when set, appends every admitted augmentation and release
	// to a CRC-framed request-trace file replayable with `augmentd -replay`.
	// The recorded order is faithful only under a single admission producer
	// (the loadgen path); concurrent HTTP admissions may interleave.
	RecordPath string
	// DegradedFactor scales the free capacity a degraded cloudlet offers to
	// new placements (existing instances survive). Default 0.5.
	DegradedFactor float64
	// ReaugBudget bounds re-augmentation attempts per failed session before
	// it is declared lost (sticky CRIT alert). Default 3.
	ReaugBudget int
	// AlertWarnFactor raises a session WARN when u < ρ·AlertWarnFactor (the
	// session is close to its SLO). Default 1.05.
	AlertWarnFactor float64
	// AlertCritFactor raises a session CRIT when u < ρ·AlertCritFactor — with
	// the default 1.0, CRIT means the SLO is violated outright.
	AlertCritFactor float64
	// AlertDedup suppresses duplicate alert firings (not state transitions)
	// within the window. Default 5s.
	AlertDedup time.Duration
	// ProbeEvery, when positive, runs the watchdog probe loop at this
	// interval: session alerts are refreshed and one re-augmentation round
	// runs per tick. Zero leaves the cadence to the caller (loadgen chaos
	// drives rounds synchronously; cmd/augmentd starts the loop in server
	// mode).
	ProbeEvery time.Duration

	// Tenants declares the multi-tenant admission principals (weight, and
	// optionally a token-bucket quota per tenant). The default tenant is
	// always present (weight 1 unless declared); requests with an empty or
	// unknown tenant resolve to it. Empty means single-tenant behavior.
	Tenants []admission.Tenant
	// Admission selects the queue discipline: AdmissionFIFO (default; global
	// arrival order), AdmissionFair (deficit round-robin over per-tenant
	// sub-queues, weight-proportional), or AdmissionKnapsack (fair queueing
	// plus scarcity-mode knapsack batch admission).
	Admission string
	// ScarcityWatermark is the residual-capacity fraction below which the
	// knapsack discipline switches from FIFO draining to knapsack admission.
	// Default 0.25. Only meaningful with AdmissionKnapsack.
	ScarcityWatermark float64
	// KnapsackWindow is the batch-window bound under AdmissionKnapsack: the
	// dispatcher collects up to this many requests per batch so the knapsack
	// has a candidate set to select from. Default 4×BatchSize.
	KnapsackWindow int
}

// withDefaults fills unset options.
func (o Options) withDefaults() (Options, error) {
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.QueueDepth < 0 {
		return o, fmt.Errorf("serve: queue depth %d must be positive", o.QueueDepth)
	}
	if o.BatchSize == 0 {
		o.BatchSize = 8
	}
	if o.BatchSize < 0 {
		return o, fmt.Errorf("serve: batch size %d must be positive", o.BatchSize)
	}
	if o.BatchWait == 0 {
		o.BatchWait = 2 * time.Millisecond
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Solver == nil {
		sv, ok := core.Get("Failsafe")
		if !ok {
			return o, fmt.Errorf("serve: no Failsafe solver registered and Options.Solver unset")
		}
		o.Solver = sv
	}
	if o.HopBound == 0 {
		o.HopBound = 1
	}
	if o.HopBound < 1 {
		return o, fmt.Errorf("serve: hop bound %d must be >= 1", o.HopBound)
	}
	switch o.AdmitPolicy {
	case "":
		o.AdmitPolicy = AdmitRandom
	case AdmitRandom, AdmitMaxReliability:
	default:
		return o, fmt.Errorf("serve: unknown admit policy %q (want %s or %s)", o.AdmitPolicy, AdmitRandom, AdmitMaxReliability)
	}
	if o.CacheSize == 0 {
		o.CacheSize = 256
	}
	if o.CacheSize < 0 {
		o.CacheSize = 0 // explicit disable
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Batchers == 0 {
		o.Batchers = 1
	}
	if o.Batchers < 0 {
		return o, fmt.Errorf("serve: batcher count %d must be positive", o.Batchers)
	}
	if _, err := wal.ParseSyncPolicy(o.WALSync); err != nil {
		return o, err
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 256
	}
	if o.SnapshotEvery < 0 {
		return o, fmt.Errorf("serve: snapshot cadence %d must be positive", o.SnapshotEvery)
	}
	if o.Restore && o.WALDir == "" {
		return o, fmt.Errorf("serve: Restore requires WALDir")
	}
	if o.TraceDepth == 0 {
		o.TraceDepth = 256
	}
	if o.TraceDepth < 0 {
		o.TraceDepth = 0 // explicit disable
	}
	if o.DegradedFactor == 0 {
		o.DegradedFactor = 0.5
	}
	if o.DegradedFactor < 0 || o.DegradedFactor > 1 {
		return o, fmt.Errorf("serve: degraded factor %v out of [0,1]", o.DegradedFactor)
	}
	if o.ReaugBudget == 0 {
		o.ReaugBudget = 3
	}
	if o.ReaugBudget < 0 {
		return o, fmt.Errorf("serve: re-augmentation budget %d must be positive", o.ReaugBudget)
	}
	switch o.Admission {
	case "":
		o.Admission = AdmissionFIFO
	case AdmissionFIFO, AdmissionFair, AdmissionKnapsack:
	default:
		return o, fmt.Errorf("serve: unknown admission discipline %q (want %s, %s, or %s)",
			o.Admission, AdmissionFIFO, AdmissionFair, AdmissionKnapsack)
	}
	if o.ScarcityWatermark == 0 {
		o.ScarcityWatermark = 0.25
	}
	if o.ScarcityWatermark < 0 || o.ScarcityWatermark > 1 {
		return o, fmt.Errorf("serve: scarcity watermark %v out of [0,1]", o.ScarcityWatermark)
	}
	if o.KnapsackWindow == 0 {
		o.KnapsackWindow = 4 * o.BatchSize
	}
	if o.KnapsackWindow < o.BatchSize {
		return o, fmt.Errorf("serve: knapsack window %d must be >= batch size %d", o.KnapsackWindow, o.BatchSize)
	}
	return o, nil
}

// Service is the online augmentation server: state + cache + queue + the
// HTTP handlers. Construct with New, mount Handler on an http.Server, and
// call Drain on shutdown.
type Service struct {
	opt       Options
	state     *State
	cache     *resultCache
	queue     *queue
	cacheable bool
	nextSeq   atomic.Int64

	// flight keeps the last TraceDepth completed request traces (nil when
	// tracing is disabled); recorder appends the request stream for replay
	// (nil when Options.RecordPath is empty).
	flight   *trace.Recorder
	recorder *TraceWriter

	// alerter is the stateful watchdog (always non-nil); reaug queues the
	// sessions node failures dropped below their expectation; the probe
	// fields manage the optional background audit/re-augmentation loop.
	alerter   *watchdog.Alerter
	reaug     reaugQueue
	probeMu   sync.Mutex
	probeStop chan struct{}
	probeDone chan struct{}

	augmentIns *endpointInstruments
	releaseIns *endpointInstruments
	stateIns   *endpointInstruments

	// Multi-tenant admission economics: per-tenant runtime state (name →
	// state, plus the same states in sorted name order), the network's total
	// cloudlet capacity (the scarcity denominator), and whether the last
	// knapsack check ran in scarcity mode.
	tenants     map[string]*tenantState
	tenantOrder []*tenantState
	totalCap    float64
	scarce      atomic.Bool
}

// New builds a Service over net. The service owns net's residual ledger from
// this point on: the ledger as of this call becomes epoch 0 (or, with
// Options.Restore, the WAL's last durable epoch), and every later version
// lives in immutable copy-on-write epochs — net itself is never mutated.
func New(net *mec.Network, opt Options) (*Service, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	state := NewState(net)
	if opt.Restore {
		if state, err = NewStateFromWAL(net, opt.WALDir); err != nil {
			return nil, err
		}
	}
	if opt.WALDir != "" {
		policy, _ := wal.ParseSyncPolicy(opt.WALSync) // validated in withDefaults
		l, err := wal.Open(opt.WALDir, policy)
		if err != nil {
			return nil, err
		}
		if opt.Batchers > 1 {
			// With concurrent committers, let a flushing batcher gather the
			// siblings' appends before paying the fsync — one disk flush then
			// commits the whole group. A lone batcher gets no window: there
			// is nobody to gather from, so a delay would only add latency.
			l.SetGroupCommit(groupCommitDelay, opt.Batchers-1)
		}
		state.attachWAL(l, uint64(opt.SnapshotEvery))
	}
	s := &Service{
		opt:        opt,
		state:      state,
		cache:      newResultCache(opt.CacheSize),
		cacheable:  opt.CacheSize > 0 && !strings.Contains(strings.ToLower(opt.Solver.Name()), "random"),
		augmentIns: endpointInstrumentsFor("augment"),
		releaseIns: endpointInstrumentsFor("release"),
		stateIns:   endpointInstrumentsFor("state"),
		alerter: watchdog.New(watchdog.Config{
			WarnFactor:  opt.AlertWarnFactor,
			CritFactor:  opt.AlertCritFactor,
			DedupWindow: opt.AlertDedup,
		}),
	}
	s.buildTenants()
	if opt.Restore {
		// Rebuild quota buckets from the journaled tenant state so a restarted
		// process continues refusing exactly where the crashed one would have.
		s.seedTenantQuotas(state.TenantQuotas())
	}
	if state.wal != nil {
		// Journal quota state with each install only when some tenant actually
		// carries a bucket — the common single-tenant WAL stays lean.
		for _, ts := range s.tenantOrder {
			if ts.bucket != nil {
				state.tenantSnap = s.tenantQuotas
				break
			}
		}
	}
	if opt.TraceDepth > 0 {
		s.flight = trace.NewRecorder(opt.TraceDepth)
	}
	if opt.RecordPath != "" {
		s.recorder, err = OpenTraceWriter(opt.RecordPath, TraceOp{
			Seed:        opt.Seed,
			Solver:      opt.Solver.Name(),
			HopBound:    opt.HopBound,
			AdmitPolicy: opt.AdmitPolicy,
			Admission:   opt.Admission,
			Tenants:     FormatTenants(s.tenantSpecs()),
		})
		if err != nil {
			return nil, err
		}
	}
	// Replayed placements keep their IDs; new admissions continue above them.
	s.nextSeq.Store(int64(state.MaxPlacedID()))
	s.queue = newQueue(s, opt.QueueDepth, opt.Batchers)
	if opt.Restore {
		// The journal carries health transitions and failure-rewritten
		// records, so a restarted process resumes alerting and re-augmentation
		// exactly where the crashed one stopped.
		s.seedFromRestore()
	}
	if opt.ProbeEvery > 0 {
		s.StartProbe(opt.ProbeEvery)
	}
	return s, nil
}

// traceID derives a request's trace ID from its admission sequence: a
// splitmix64 finalizer over the service seed and the sequence, so the same
// request gets the same X-Trace-Id on a recorded run and its replay.
func (s *Service) traceID(seq int) uint64 {
	z := uint64(s.opt.Seed)*0x9e3779b97f4a7c15 + uint64(seq)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// FlightRecorder exposes the service's flight recorder (nil when tracing is
// disabled) — test and tooling access to the /debug/traces data.
func (s *Service) FlightRecorder() *trace.Recorder { return s.flight }

// AdvanceSeq raises the admission sequence counter so the next Enqueue
// assigns at least n+1 — the replay driver's tool for reproducing sequence
// gaps (rejected submissions consumed a sequence number on the recorded run
// without leaving a trace op). A no-op when the counter is already past n.
func (s *Service) AdvanceSeq(n int) {
	for {
		cur := s.nextSeq.Load()
		if int64(n) <= cur || s.nextSeq.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// Close drains the admission path, finalizes the request-trace recording
// (EOF trailer with the final state hash), and releases the WAL file handle.
// Call it instead of Drain when the service was built with a WALDir or a
// RecordPath.
func (s *Service) Close() error {
	s.StopProbe()
	s.Drain()
	var firstErr error
	if s.recorder != nil {
		_, epoch, hash := s.state.Snapshot()
		firstErr = s.recorder.CloseWith(TraceOp{
			Hash:   fmt.Sprintf("%016x", hash),
			Placed: s.state.PlacedCount(),
			Epoch:  epoch,
		})
		s.recorder = nil
	}
	if s.state.wal != nil {
		if err := s.state.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// State exposes the service's live network state (read-mostly accessors).
func (s *Service) State() *State { return s.state }

// NumAPs returns the AP count of the served network (for request generators).
func (s *Service) NumAPs() int { return s.state.base.G.N() }

// Cloudlets returns the IDs of the served network's cloudlets (APs with
// compute capacity) — the chaos fault injector's target set.
func (s *Service) Cloudlets() []int { return s.state.base.Cloudlets() }

// CatalogSize returns |ℱ| of the served network's function catalog.
func (s *Service) CatalogSize() int { return s.state.base.Catalog().Size() }

// SolverName returns the name of the solver serving augmentations.
func (s *Service) SolverName() string { return s.opt.Solver.Name() }

// CacheLen returns the current result-cache entry count.
func (s *Service) CacheLen() int { return s.cache.Len() }

// Draining reports whether Drain has started.
func (s *Service) Draining() bool { return s.queue.draining.Load() }

// Drain gracefully shuts the admission path down: new submissions are
// refused with 503, every queued request is still solved and answered, and
// Drain returns once the queue is empty. The HTTP handlers stay mounted so
// in-flight responses and /v1/state keep working; tear the http.Server down
// after Drain returns.
func (s *Service) Drain() { s.queue.Drain() }

// AugmentRequest is the JSON body of POST /v1/augment.
type AugmentRequest struct {
	// SFC is the ordered service function chain, as catalog type IDs.
	SFC []int `json:"sfc"`
	// Expectation is the reliability expectation ρ in (0,1].
	Expectation float64 `json:"expectation"`
	// Source and Destination are the request's traffic endpoints (AP IDs).
	Source      int `json:"source"`
	Destination int `json:"destination"`
	// Primaries optionally pins the primary cloudlet per chain position;
	// omitted means the server places them per its admission policy.
	Primaries []int `json:"primaries,omitempty"`
	// DeadlineMS optionally bounds this request's solve wall-clock in
	// milliseconds (capped below the server's default deadline if one is
	// configured).
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// Tenant names the admission-economics principal this request bills to.
	// Empty or unknown tenants resolve to the default tenant.
	Tenant string `json:"tenant,omitempty"`
}

// AugmentResponse is the JSON body answered by POST /v1/augment on success.
type AugmentResponse struct {
	ID                 int     `json:"id"`
	Primaries          []int   `json:"primaries"`
	Secondaries        [][]int `json:"secondaries"`
	BackupCounts       []int   `json:"backup_counts"`
	InitialReliability float64 `json:"initial_reliability"`
	Reliability        float64 `json:"reliability"`
	MetExpectation     bool    `json:"met_expectation"`
	Algorithm          string  `json:"algorithm"`
	ServedBy           string  `json:"served_by,omitempty"`
	Cached             bool    `json:"cached"`
	QueueWaitMS        float64 `json:"queue_wait_ms"`
	SolveMS            float64 `json:"solve_ms"`
	// Trace is the request's span timeline, echoed when the client asked
	// with ?trace=1 (and tracing is enabled).
	Trace *trace.Snapshot `json:"trace,omitempty"`
}

// ReleaseRequest is the JSON body of POST /v1/release.
type ReleaseRequest struct {
	ID int `json:"id"`
}

// ReleaseResponse is the JSON body answered by POST /v1/release on success.
type ReleaseResponse struct {
	ID       int     `json:"id"`
	FreedMHz float64 `json:"freed_mhz"`
}

// StateResponse is the JSON body of GET /v1/state.
type StateResponse struct {
	Cloudlets  []CloudletState `json:"cloudlets"`
	Placed     int             `json:"placed_requests"`
	Epoch      uint64          `json:"epoch"`
	StateHash  string          `json:"state_hash"`
	QueueDepth int             `json:"queue_depth"`
	CacheLen   int             `json:"cache_entries"`
	Draining   bool            `json:"draining"`
	// Batchers is the configured concurrent micro-batcher count.
	Batchers int `json:"batchers"`
	// WALDir is the write-ahead-log directory; empty when durability is off.
	WALDir string `json:"wal_dir,omitempty"`
	// WALEntries and WALSnapshots count WAL appends and checkpoints written
	// by this process (absent when durability is off).
	WALEntries   uint64 `json:"wal_entries,omitempty"`
	WALSnapshots uint64 `json:"wal_snapshots,omitempty"`
	// DownNodes and DegradedNodes list cloudlets currently marked down or
	// degraded (absent when every node is healthy).
	DownNodes     []int `json:"down_nodes,omitempty"`
	DegradedNodes []int `json:"degraded_nodes,omitempty"`
	// ReaugPending counts sessions queued for proactive re-augmentation.
	ReaugPending int `json:"reaug_pending,omitempty"`
}

// errorResponse is the JSON body of every non-2xx answer. Cached marks a 422
// answered from a negative cache entry (the solver already failed on the
// identical instance).
type errorResponse struct {
	Error  string `json:"error"`
	Cached bool   `json:"cached,omitempty"`
}

// Handler returns the service mux:
//
//	POST /v1/augment
//	POST /v1/release
//	POST /v1/node
//	GET  /v1/alerts
//	GET  /v1/tenants
//	GET  /v1/state
//	GET  /v1/healthz
//	GET  /debug/traces   (when tracing is enabled)
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/augment", s.handleAugment)
	mux.HandleFunc("/v1/release", s.handleRelease)
	mux.HandleFunc("/v1/node", s.handleNode)
	mux.HandleFunc("/v1/alerts", s.handleAlerts)
	mux.HandleFunc("/v1/tenants", s.handleTenants)
	mux.HandleFunc("/v1/state", s.handleState)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	if s.flight != nil {
		mux.Handle("/debug/traces", s.flight.Handler())
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// validate checks an augment request against the network before any mec
// constructor can panic on it.
func (s *Service) validate(ar *AugmentRequest) error {
	if len(ar.SFC) == 0 {
		return fmt.Errorf("sfc must be non-empty")
	}
	catSize := s.state.base.Catalog().Size()
	for _, f := range ar.SFC {
		if f < 0 || f >= catSize {
			return fmt.Errorf("sfc function %d outside catalog [0,%d)", f, catSize)
		}
	}
	if ar.Expectation <= 0 || ar.Expectation > 1 {
		return fmt.Errorf("expectation %v out of (0,1]", ar.Expectation)
	}
	n := s.state.base.G.N()
	if ar.Source < 0 || ar.Source >= n || ar.Destination < 0 || ar.Destination >= n {
		return fmt.Errorf("source/destination outside the %d-node graph", n)
	}
	if len(ar.Primaries) > 0 {
		if len(ar.Primaries) != len(ar.SFC) {
			return fmt.Errorf("%d primaries for %d functions", len(ar.Primaries), len(ar.SFC))
		}
		for i, v := range ar.Primaries {
			if v < 0 || v >= n || s.state.base.Capacity[v] <= 0 {
				return fmt.Errorf("primary %d of position %d is not a cloudlet", v, i)
			}
		}
	}
	if ar.DeadlineMS < 0 {
		return fmt.Errorf("deadline_ms %d must be >= 0", ar.DeadlineMS)
	}
	return nil
}

// Ticket is an in-flight admission returned by Enqueue. Exactly one Wait
// call receives the outcome.
type Ticket struct {
	p *pending
}

// Outcome is the final answer for one enqueued augmentation.
type Outcome struct {
	// Status is the HTTP status code the request resolves to.
	Status int
	// Err is the failure detail when Status is not 200.
	Err string
	// Response is set when Status is 200.
	Response *AugmentResponse
	// Cached reports that the answer reused earlier solver work — an LRU hit
	// (including a negative, infeasible entry) or a within-batch share.
	Cached bool
	// Trace is the request's completed span timeline (nil with tracing
	// disabled). Present for every delivered outcome, success or failure.
	Trace *trace.Snapshot
}

// Wait blocks until the batcher has answered this ticket's request.
func (t *Ticket) Wait() Outcome {
	out := <-t.p.done
	if out.status != http.StatusOK {
		return Outcome{Status: out.status, Err: out.errText, Cached: out.cached, Trace: out.trace}
	}
	rec := out.placed
	counts := make([]int, len(rec.Secondaries))
	for i, sec := range rec.Secondaries {
		counts[i] = len(sec)
	}
	return Outcome{Status: http.StatusOK, Cached: out.cached, Trace: out.trace, Response: &AugmentResponse{
		ID:                 rec.ID,
		Primaries:          rec.Primaries,
		Secondaries:        rec.Secondaries,
		BackupCounts:       counts,
		InitialReliability: out.initial,
		Reliability:        rec.Reliability,
		MetExpectation:     rec.Met,
		Algorithm:          rec.Algorithm,
		ServedBy:           rec.ServedBy,
		Cached:             out.cached,
		QueueWaitMS:        out.queueWait.Seconds() * 1000,
		SolveMS:            out.solveTime.Seconds() * 1000,
	}}
}

// Enqueue validates ar, assigns it the next admission sequence number, and
// submits it to the bounded queue without waiting for the solve. It returns
// ErrQueueFull or ErrDraining on backpressure, a validation error otherwise.
// Callers that need deterministic placements must call Enqueue from a single
// goroutine (sequence numbers seed the per-request RNGs): the HTTP handler
// does not guarantee cross-connection admission order, the in-process load
// generator does.
func (s *Service) Enqueue(ar AugmentRequest) (*Ticket, error) {
	return s.enqueue(ar, false)
}

// enqueue is Enqueue with control over the recorded Sync flag: sync marks
// submissions the producer waits on before submitting anything else (the
// re-augmentation loop), so a trace replay can reproduce the exact
// enqueue/wait interleaving — micro-batch composition is an admission-order
// input to every solve (phase 1 charges the whole batch's primaries before
// any secondaries are placed).
func (s *Service) enqueue(ar AugmentRequest, sync bool) (*Ticket, error) {
	if err := s.validate(&ar); err != nil {
		return nil, err
	}
	p := &pending{
		seq:         int(s.nextSeq.Add(1)),
		tenant:      s.resolveTenant(ar.Tenant),
		sfc:         append([]int(nil), ar.SFC...),
		expectation: ar.Expectation,
		source:      ar.Source,
		destination: ar.Destination,
		primaries:   append([]int(nil), ar.Primaries...),
		deadline:    time.Duration(ar.DeadlineMS) * time.Millisecond,
		enqueued:    time.Now(),
		done:        make(chan outcome, 1),
	}
	if s.flight != nil {
		// The trace is built here and handed off with the pending through the
		// queue channel — single-owner at every point, so no span takes a lock.
		p.tr = trace.New(s.traceID(p.seq), p.seq, "request", p.enqueued)
		p.queueSpan = p.tr.StartSpanAt("queue", trace.Root, p.enqueued)
	}
	if err := s.queue.Submit(p); err != nil {
		return nil, err
	}
	if s.recorder != nil {
		// The default tenant is recorded as absence: a replayed empty tenant
		// resolves to it anyway, and tenantless recordings keep the exact
		// placement log they had before multi-tenancy existed.
		tenant := p.tenant
		if tenant == admission.DefaultTenant {
			tenant = ""
		}
		s.recorder.Record(TraceOp{
			Op:          OpAugment,
			Seq:         p.seq,
			SFC:         p.sfc,
			Expectation: p.expectation,
			Source:      p.source,
			Destination: p.destination,
			Primaries:   p.primaries,
			DeadlineMS:  ar.DeadlineMS,
			Tenant:      tenant,
			Sync:        sync,
		})
	}
	return &Ticket{p: p}, nil
}

// Release tears down a live placement: capacity returns to the ledger, the
// result cache is invalidated (entries are keyed on now-dead ledger hashes),
// and the release is recorded for replay. Returns the freed MHz.
func (s *Service) Release(id int) (float64, error) {
	freed, err := s.state.Release(id)
	if err != nil {
		return 0, err
	}
	s.cache.Invalidate()
	metrics.released.Inc()
	// A released session has no SLO to violate: clear its alert and any
	// queued re-augmentation.
	s.alerter.Resolve(watchdog.Key{Kind: watchdog.KindSession, ID: id}, "released")
	s.reaug.remove(id)
	if s.recorder != nil {
		s.recorder.Record(TraceOp{Op: OpRelease, ID: id})
	}
	return freed, nil
}

func (s *Service) handleAugment(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.augmentIns.total.Inc()
	defer func() { s.augmentIns.duration.ObserveSince(start) }()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var ar AugmentRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ar); err != nil {
		writeError(w, http.StatusBadRequest, "bad augment request: %v", err)
		return
	}
	t, err := s.Enqueue(ar)
	switch {
	case err == nil:
	case errors.Is(err, ErrQuotaExceeded):
		s.augmentIns.rejected[reasonQuota].Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrQueueFull):
		s.augmentIns.rejected[reasonFull].Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrDraining):
		s.augmentIns.rejected[reasonDraining].Inc()
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	default:
		writeError(w, http.StatusBadRequest, "bad augment request: %v", err)
		return
	}
	out := t.Wait()
	if out.Trace != nil {
		w.Header().Set("X-Trace-Id", out.Trace.TraceID)
	}
	if out.Status != http.StatusOK {
		if out.Status == http.StatusTooManyRequests {
			// Shed by knapsack admission under scarcity — retryable.
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, out.Status, errorResponse{Error: out.Err, Cached: out.Cached})
		return
	}
	if out.Trace != nil && r.URL.Query().Get("trace") == "1" {
		out.Response.Trace = out.Trace
	}
	writeJSON(w, http.StatusOK, out.Response)
}

func (s *Service) handleRelease(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.releaseIns.total.Inc()
	defer func() { s.releaseIns.duration.ObserveSince(start) }()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var rr ReleaseRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rr); err != nil {
		writeError(w, http.StatusBadRequest, "bad release request: %v", err)
		return
	}
	freed, err := s.Release(rr.ID)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ReleaseResponse{ID: rr.ID, FreedMHz: freed})
}

func (s *Service) handleState(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.stateIns.total.Inc()
	defer func() { s.stateIns.duration.ObserveSince(start) }()
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	cloudlets, epoch, hash := s.state.Snapshot()
	resp := StateResponse{
		Cloudlets:  cloudlets,
		Placed:     s.state.PlacedCount(),
		Epoch:      epoch,
		StateHash:  fmt.Sprintf("%016x", hash),
		QueueDepth: s.queue.Len(),
		CacheLen:   s.cache.Len(),
		Draining:   s.Draining(),
		Batchers:   s.opt.Batchers,
	}
	if l := s.state.wal; l != nil {
		resp.WALDir = l.Dir()
		resp.WALEntries = l.Entries()
		resp.WALSnapshots = l.Snapshots()
	}
	resp.DownNodes = s.state.DownNodes()
	resp.DegradedNodes = s.state.DegradedNodes()
	resp.ReaugPending = s.reaug.pending()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
