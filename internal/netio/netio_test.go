package netio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mec"
	"repro/internal/workload"
)

func sample(seed int64) (*mec.Network, []*mec.Request) {
	rng := rand.New(rand.NewSource(seed))
	cfg := workload.NewDefaultConfig()
	net := cfg.Network(rng)
	var reqs []*mec.Request
	for i := 0; i < 3; i++ {
		reqs = append(reqs, cfg.Request(rng, i, net.Catalog().Size()))
	}
	workload.PlacePrimariesRandom(net, reqs[0], rng)
	return net, reqs
}

func TestRoundTrip(t *testing.T) {
	net, reqs := sample(1)
	net.Consume(net.Cloudlets()[0], 100)
	s := Export(net, reqs)

	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	net2, reqs2, err := s2.Build()
	if err != nil {
		t.Fatal(err)
	}

	if net2.G.N() != net.G.N() || net2.G.M() != net.G.M() {
		t.Fatalf("graph mismatch: %d/%d vs %d/%d", net2.G.N(), net2.G.M(), net.G.N(), net.G.M())
	}
	for v := 0; v < net.G.N(); v++ {
		if net2.Capacity[v] != net.Capacity[v] {
			t.Fatalf("capacity mismatch at %d", v)
		}
		if net2.Residual(v) != net.Residual(v) {
			t.Fatalf("residual mismatch at %d: %v vs %v", v, net2.Residual(v), net.Residual(v))
		}
	}
	if net2.Catalog().Size() != net.Catalog().Size() {
		t.Fatal("catalog size mismatch")
	}
	for i := 0; i < net.Catalog().Size(); i++ {
		if net2.Catalog().Type(i) != net.Catalog().Type(i) {
			t.Fatalf("catalog entry %d mismatch", i)
		}
	}
	if len(reqs2) != len(reqs) {
		t.Fatalf("request count %d vs %d", len(reqs2), len(reqs))
	}
	if len(reqs2[0].Primaries) != len(reqs[0].Primaries) {
		t.Fatal("primaries lost in round trip")
	}
	for i, v := range reqs[0].Primaries {
		if reqs2[0].Primaries[i] != v {
			t.Fatal("primaries corrupted")
		}
	}
}

func TestRoundTripSolvable(t *testing.T) {
	net, reqs := sample(2)
	s := Export(net, reqs)
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	net2, reqs2, err := s2.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The rebuilt scenario must be directly solvable.
	rng := rand.New(rand.NewSource(3))
	workload.PlacePrimariesRandom(net2, reqs2[1], rng)
	inst := core.NewInstance(net2, reqs2[1], core.Params{L: 1})
	if _, err := core.SolveHeuristic(inst, core.HeuristicOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildValidation(t *testing.T) {
	base := func() *Scenario {
		net, reqs := sample(4)
		return Export(net, reqs)
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
		substr string
	}{
		{"zero nodes", func(s *Scenario) { s.Nodes = 0 }, "nodes"},
		{"capacity mismatch", func(s *Scenario) { s.Capacity = s.Capacity[:3] }, "capacities"},
		{"bad edge", func(s *Scenario) { s.Edges = append(s.Edges, [2]int{0, 9999}) }, "bad edge"},
		{"self edge", func(s *Scenario) { s.Edges = append(s.Edges, [2]int{1, 1}) }, "bad edge"},
		{"empty catalog", func(s *Scenario) { s.Catalog = nil }, "catalog"},
		{"bad function", func(s *Scenario) { s.Catalog[0].Reliability = 2 }, "bad function"},
		{"bad residual len", func(s *Scenario) { s.Residual = s.Residual[:2] }, "residuals"},
		{"residual above cap", func(s *Scenario) { s.Residual[0] = s.Capacity[0] + 1000 }, "residual"},
		{"bad sfc ref", func(s *Scenario) { s.Requests[0].SFC[0] = 999 }, "outside catalog"},
		{"bad endpoint", func(s *Scenario) { s.Requests[0].Source = -1 }, "endpoints"},
		{"primaries len", func(s *Scenario) {
			s.Requests[0].Primaries = []int{s.Requests[0].Primaries[0]}
		}, "primaries"},
	}
	for _, tc := range cases {
		s := base()
		tc.mutate(s)
		_, _, err := s.Build()
		if err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.substr) {
			t.Fatalf("%s: error %q missing %q", tc.name, err, tc.substr)
		}
	}
}

func TestReadRejectsUnknownFields(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"nodes": 2, "bogus": true}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestEmptyResidualMeansFullCapacity(t *testing.T) {
	net, reqs := sample(5)
	s := Export(net, reqs)
	s.Residual = nil
	net2, _, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range net2.Cloudlets() {
		if net2.Residual(v) != net2.Capacity[v] {
			t.Fatalf("residual at %d not full", v)
		}
	}
}
