// Package netio serializes MEC scenarios — topology, cloudlet capacities,
// function catalog, requests and solved placements — as JSON, so that
// cmd/sfcaugment and downstream users can pin experiments to files instead
// of seeds, and solved placements can be handed to deployment tooling.
package netio

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/mec"
)

// Scenario is the on-disk form of a full problem instance.
type Scenario struct {
	// Nodes is the AP count; Edges the undirected adjacency.
	Nodes int      `json:"nodes"`
	Edges [][2]int `json:"edges"`
	// Capacity per AP in MHz (0 = no cloudlet).
	Capacity []float64 `json:"capacity"`
	// Residual per AP; omitted/empty means full capacity.
	Residual []float64  `json:"residual,omitempty"`
	Catalog  []Function `json:"catalog"`
	Requests []Request  `json:"requests"`
}

// Function mirrors mec.FunctionType.
type Function struct {
	Name        string  `json:"name"`
	Demand      float64 `json:"demand"`
	Reliability float64 `json:"reliability"`
}

// Request mirrors mec.Request.
type Request struct {
	ID          int     `json:"id"`
	SFC         []int   `json:"sfc"`
	Expectation float64 `json:"expectation"`
	Source      int     `json:"source"`
	Destination int     `json:"destination"`
	Primaries   []int   `json:"primaries,omitempty"`
}

// PlacementDump is the on-disk form of a solved placement.
type PlacementDump struct {
	RequestID   int     `json:"request_id"`
	Algorithm   string  `json:"algorithm"`
	Reliability float64 `json:"reliability"`
	MetRho      bool    `json:"met_expectation"`
	// Secondaries[i] lists host cloudlets for chain position i.
	Secondaries [][]int `json:"secondaries"`
}

// Export captures a network and requests into a Scenario.
func Export(net *mec.Network, requests []*mec.Request) *Scenario {
	s := &Scenario{
		Nodes:    net.G.N(),
		Edges:    net.G.Edges(),
		Capacity: append([]float64(nil), net.Capacity...),
		Residual: net.ResidualSnapshot(),
	}
	for i := 0; i < net.Catalog().Size(); i++ {
		ft := net.Catalog().Type(i)
		s.Catalog = append(s.Catalog, Function{Name: ft.Name, Demand: ft.Demand, Reliability: ft.Reliability})
	}
	for _, r := range requests {
		s.Requests = append(s.Requests, Request{
			ID:          r.ID,
			SFC:         append([]int(nil), r.SFC...),
			Expectation: r.Expectation,
			Source:      r.Source,
			Destination: r.Destination,
			Primaries:   append([]int(nil), r.Primaries...),
		})
	}
	return s
}

// Build reconstructs the network and requests from a scenario, validating
// structural invariants.
func (s *Scenario) Build() (*mec.Network, []*mec.Request, error) {
	if s.Nodes <= 0 {
		return nil, nil, fmt.Errorf("netio: scenario has %d nodes", s.Nodes)
	}
	if len(s.Capacity) != s.Nodes {
		return nil, nil, fmt.Errorf("netio: %d capacities for %d nodes", len(s.Capacity), s.Nodes)
	}
	g := graph.New(s.Nodes)
	for _, e := range s.Edges {
		if e[0] < 0 || e[0] >= s.Nodes || e[1] < 0 || e[1] >= s.Nodes || e[0] == e[1] {
			return nil, nil, fmt.Errorf("netio: bad edge %v", e)
		}
		g.AddEdge(e[0], e[1])
	}
	if len(s.Catalog) == 0 {
		return nil, nil, fmt.Errorf("netio: empty catalog")
	}
	types := make([]mec.FunctionType, len(s.Catalog))
	for i, f := range s.Catalog {
		if f.Demand <= 0 || f.Reliability <= 0 || f.Reliability > 1 {
			return nil, nil, fmt.Errorf("netio: bad function %q (demand %v, reliability %v)", f.Name, f.Demand, f.Reliability)
		}
		types[i] = mec.FunctionType{Name: f.Name, Demand: f.Demand, Reliability: f.Reliability}
	}
	net := mec.NewNetwork(g, s.Capacity, mec.NewCatalog(types))
	if len(s.Residual) > 0 {
		if len(s.Residual) != s.Nodes {
			return nil, nil, fmt.Errorf("netio: %d residuals for %d nodes", len(s.Residual), s.Nodes)
		}
		for v, r := range s.Residual {
			if r < 0 || r > s.Capacity[v]+1e-9 {
				return nil, nil, fmt.Errorf("netio: residual %v out of [0,%v] at node %d", r, s.Capacity[v], v)
			}
		}
		net.RestoreResiduals(s.Residual)
	}

	var reqs []*mec.Request
	for _, r := range s.Requests {
		for _, f := range r.SFC {
			if f < 0 || f >= len(types) {
				return nil, nil, fmt.Errorf("netio: request %d references function %d outside catalog", r.ID, f)
			}
		}
		if r.Source < 0 || r.Source >= s.Nodes || r.Destination < 0 || r.Destination >= s.Nodes {
			return nil, nil, fmt.Errorf("netio: request %d has endpoints outside the graph", r.ID)
		}
		req := mec.NewRequest(r.ID, r.SFC, r.Expectation, r.Source, r.Destination)
		if len(r.Primaries) > 0 {
			if len(r.Primaries) != len(r.SFC) {
				return nil, nil, fmt.Errorf("netio: request %d has %d primaries for %d functions", r.ID, len(r.Primaries), len(r.SFC))
			}
			for _, v := range r.Primaries {
				if v < 0 || v >= s.Nodes || s.Capacity[v] <= 0 {
					return nil, nil, fmt.Errorf("netio: request %d primary on invalid cloudlet %d", r.ID, v)
				}
			}
			req.Primaries = append([]int(nil), r.Primaries...)
		}
		reqs = append(reqs, req)
	}
	return net, reqs, nil
}

// Write serializes the scenario as indented JSON.
func (s *Scenario) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Read parses a scenario from JSON. Malformed input errors carry the byte
// offset of the failure when the decoder reports one.
func Read(r io.Reader) (*Scenario, error) {
	s, err := decode(r)
	if err != nil {
		return nil, fmt.Errorf("netio: %w", err)
	}
	return s, nil
}

// decode is the shared scenario decoder behind Read and ReadFile; it applies
// offset context but no package prefix, so callers compose their own.
func decode(r io.Reader) (*Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, offsetContext(err)
	}
	return &s, nil
}
