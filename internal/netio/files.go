package netio

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// ReadFile loads a scenario from a JSON file. Errors carry the file name and,
// for malformed JSON, the byte offset of the failure, so a bad hand-edited
// scenario points at the offending spot instead of a bare decode error. The
// file handle is closed on every path.
func ReadFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("netio: read scenario: %w", err)
	}
	defer f.Close()
	s, err := decode(f)
	if err != nil {
		return nil, fmt.Errorf("netio: read scenario %s: %w", path, err)
	}
	return s, nil
}

// WriteFile atomically-ish saves a scenario as indented JSON: errors from
// Create, Write, and Close are all surfaced (a full disk often only shows up
// at Close), and the handle is never leaked on early return.
func WriteFile(path string, s *Scenario) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("netio: write scenario: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("netio: write scenario %s: %w", path, cerr)
		}
	}()
	if werr := s.Write(f); werr != nil {
		return fmt.Errorf("netio: write scenario %s: %w", path, werr)
	}
	return nil
}

// offsetContext annotates JSON decode errors that carry a byte offset.
// Returns err unchanged when no offset is available.
func offsetContext(err error) error {
	var syn *json.SyntaxError
	if errors.As(err, &syn) {
		return fmt.Errorf("at byte %d: %w", syn.Offset, err)
	}
	var typ *json.UnmarshalTypeError
	if errors.As(err, &typ) {
		return fmt.Errorf("at byte %d (field %q): %w", typ.Offset, typ.Field, err)
	}
	return err
}
