package admission

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/mec"
)

func testCatalog() *mec.Catalog {
	return mec.NewCatalog([]mec.FunctionType{
		{Name: "fw", Demand: 200, Reliability: 0.8},
		{Name: "nat", Demand: 300, Reliability: 0.9},
		{Name: "ids", Demand: 400, Reliability: 0.85},
	})
}

// line 0-1-2-3-4 with cloudlets at 1 and 3.
func lineNet(c1, c3 float64) *mec.Network {
	g := graph.New(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1)
	}
	return mec.NewNetwork(g, []float64{0, c1, 0, c3, 0}, testCatalog())
}

func TestPlaceRandomBasic(t *testing.T) {
	net := lineNet(4000, 4000)
	req := mec.NewRequest(1, []int{0, 1, 2}, 0.99, 0, 4)
	rng := rand.New(rand.NewSource(1))
	if err := PlaceRandom(net, req, rng); err != nil {
		t.Fatal(err)
	}
	if len(req.Primaries) != 3 {
		t.Fatalf("primaries %v", req.Primaries)
	}
	totalDemand := 200.0 + 300 + 400
	if got := (4000 - net.Residual(1)) + (4000 - net.Residual(3)); math.Abs(got-totalDemand) > 1e-9 {
		t.Fatalf("consumed %v, want %v", got, totalDemand)
	}
	for _, v := range req.Primaries {
		if v != 1 && v != 3 {
			t.Fatalf("primary on non-cloudlet %d", v)
		}
	}
}

func TestPlaceRandomRespectsCapacity(t *testing.T) {
	// only cloudlet 1 can host (cloudlet 3 too small for any function)
	net := lineNet(4000, 100)
	req := mec.NewRequest(1, []int{0, 0}, 0.99, 0, 4)
	rng := rand.New(rand.NewSource(2))
	if err := PlaceRandom(net, req, rng); err != nil {
		t.Fatal(err)
	}
	for _, v := range req.Primaries {
		if v != 1 {
			t.Fatalf("primary should only fit on cloudlet 1, got %v", req.Primaries)
		}
	}
}

func TestPlaceRandomFailureRollsBack(t *testing.T) {
	net := lineNet(450, 0) // fits fw(200) then nothing for ids(400)
	req := mec.NewRequest(1, []int{0, 2}, 0.99, 0, 4)
	rng := rand.New(rand.NewSource(3))
	err := PlaceRandom(net, req, rng)
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err=%v, want ErrNoCapacity", err)
	}
	if net.Residual(1) != 450 {
		t.Fatalf("ledger not rolled back: %v", net.Residual(1))
	}
	if req.Primaries != nil {
		t.Fatal("primaries set despite failure")
	}
}

func TestPlaceMaxReliabilityBasic(t *testing.T) {
	net := lineNet(4000, 4000)
	req := mec.NewRequest(1, []int{0, 1}, 0.99, 0, 4)
	if err := PlaceMaxReliability(net, req); err != nil {
		t.Fatal(err)
	}
	if len(req.Primaries) != 2 {
		t.Fatalf("primaries %v", req.Primaries)
	}
	consumed := (4000 - net.Residual(1)) + (4000 - net.Residual(3))
	if math.Abs(consumed-500) > 1e-9 {
		t.Fatalf("consumed %v, want 500", consumed)
	}
}

func TestPlaceMaxReliabilitySplitsWhenCapacityTight(t *testing.T) {
	// Each cloudlet can hold exactly one fw instance; a 2-fw chain must split.
	net := lineNet(250, 250)
	req := mec.NewRequest(1, []int{0, 0}, 0.99, 0, 4)
	if err := PlaceMaxReliability(net, req); err != nil {
		t.Fatal(err)
	}
	if req.Primaries[0] == req.Primaries[1] {
		t.Fatalf("both primaries on one cloudlet despite capacity: %v", req.Primaries)
	}
}

func TestPlaceMaxReliabilityInfeasible(t *testing.T) {
	net := lineNet(100, 100)
	req := mec.NewRequest(1, []int{0}, 0.99, 0, 4)
	err := PlaceMaxReliability(net, req)
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err=%v, want ErrNoCapacity", err)
	}
	if net.Residual(1) != 100 || net.Residual(3) != 100 {
		t.Fatal("ledger changed on failure")
	}
}

func TestPlaceMaxReliabilityNoCloudlets(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	net := mec.NewNetwork(g, []float64{0, 0, 0}, testCatalog())
	req := mec.NewRequest(1, []int{0}, 0.99, 0, 2)
	if err := PlaceMaxReliability(net, req); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err=%v, want ErrNoCapacity", err)
	}
}

func TestPlaceMaxReliabilityPrefersCompactChains(t *testing.T) {
	// Two cloudlets far apart; with ample capacity the hop penalty should
	// keep consecutive functions co-located (all reliabilities identical, so
	// only locality breaks ties).
	net := lineNet(8000, 8000)
	req := mec.NewRequest(1, []int{0, 0, 0}, 0.99, 0, 0) // src=dst=0, near cloudlet 1
	if err := PlaceMaxReliability(net, req); err != nil {
		t.Fatal(err)
	}
	for _, v := range req.Primaries {
		if v != 1 {
			t.Fatalf("expected all primaries near source on cloudlet 1, got %v", req.Primaries)
		}
	}
}

func TestInitialReliability(t *testing.T) {
	net := lineNet(4000, 4000)
	req := mec.NewRequest(1, []int{0, 1}, 0.99, 0, 4)
	want := 0.8 * 0.9
	if got := InitialReliability(net, req); math.Abs(got-want) > 1e-12 {
		t.Fatalf("initial reliability %v, want %v", got, want)
	}
}

func TestPlaceRandomManySeedsAlwaysValid(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		net := lineNet(4000, 8000)
		req := mec.NewRequest(1, []int{0, 1, 2, 0}, 0.99, 0, 4)
		rng := rand.New(rand.NewSource(seed))
		if err := PlaceRandom(net, req, rng); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p := &mec.Placement{Request: req, Secondaries: make([][]int, req.Len())}
		if err := p.Validate(net, 1); err != nil {
			t.Fatalf("seed %d: invalid placement: %v", seed, err)
		}
	}
}
