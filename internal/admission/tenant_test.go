package admission

import (
	"errors"
	"testing"
)

func TestParseTenants(t *testing.T) {
	ts, err := ParseTenants("gold:weight=4,rate=2,burst=8;silver:weight=2;free:weight=1,rate=1")
	if err != nil {
		t.Fatalf("ParseTenants: %v", err)
	}
	if len(ts) != 3 {
		t.Fatalf("got %d tenants, want 3", len(ts))
	}
	if ts[0].Name != "gold" || ts[0].Weight != 4 || ts[0].Rate != 2 || ts[0].Burst != 8 {
		t.Fatalf("gold parsed as %+v", ts[0])
	}
	if ts[1].Name != "silver" || ts[1].Weight != 2 || ts[1].Rate != 0 {
		t.Fatalf("silver parsed as %+v", ts[1])
	}
	// Rate without burst defaults burst to max(rate, 1).
	if ts[2].Burst != 1 {
		t.Fatalf("free burst = %v, want 1", ts[2].Burst)
	}
	if _, err := ParseTenants("a:weight=0"); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := ParseTenants("a;a"); err == nil {
		t.Fatal("duplicate tenant accepted")
	}
	if _, err := ParseTenants("a:bogus=1"); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	if ts, err := ParseTenants(""); err != nil || ts != nil {
		t.Fatalf("empty spec: %v %v", ts, err)
	}
}

// TestBucketBurstBoundary pins the exact-burst-exhaustion boundary: a bucket
// with burst B admits exactly B back-to-back requests, the (B+1)-th is
// rejected, and one virtual tick later exactly rate more fit.
func TestBucketBurstBoundary(t *testing.T) {
	b := NewBucket(2, 4)
	for i := 0; i < 4; i++ {
		if !b.TryTake() {
			t.Fatalf("take %d within burst rejected", i)
		}
	}
	if b.TryTake() {
		t.Fatal("take beyond burst admitted")
	}
	if b.Tokens() != 0 {
		t.Fatalf("tokens = %v, want 0", b.Tokens())
	}
	// Same tick: still empty. Next tick: rate=2 tokens credited.
	b.Refill(b.Tick())
	if b.TryTake() {
		t.Fatal("same-tick refill credited tokens")
	}
	b.Refill(b.Tick() + 1)
	if !b.TryTake() || !b.TryTake() {
		t.Fatal("refilled tokens not available")
	}
	if b.TryTake() {
		t.Fatal("refill exceeded rate")
	}
	// A long idle gap credits at most burst.
	b.Refill(b.Tick() + 1000)
	if b.Tokens() != 4 {
		t.Fatalf("tokens after idle = %v, want burst cap 4", b.Tokens())
	}
	// Seed clamps to burst and keeps the clock monotone.
	b.Seed(99, b.Tick()-5)
	if b.Tokens() != 4 || b.Tick() != 1001 {
		t.Fatalf("seed gave tokens=%v tick=%d", b.Tokens(), b.Tick())
	}
}

func TestFairQueueFIFOOrder(t *testing.T) {
	ts := []Tenant{{Name: "a", Weight: 1}, {Name: "b", Weight: 1}}
	q := NewFairQueue[int](ts, 4, false)
	for i, tn := range []string{"b", "a", "b", "a"} {
		if err := q.Push(tn, i); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if err := q.Push("a", 99); !errors.Is(err, ErrQueueSaturated) {
		t.Fatalf("push beyond depth: %v", err)
	}
	for want := 0; want < 4; want++ {
		v, _, ok := q.Pop()
		if !ok || v != want {
			t.Fatalf("pop %d got %v ok=%v", want, v, ok)
		}
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

// TestFairQueueStarvationFreedom drives a pathological heavy tenant that
// floods the queue and checks that (a) the light tenant always retains queue
// space (per-tenant bound) and (b) service interleaves by weight rather than
// arrival order, so the light tenant is never starved.
func TestFairQueueStarvationFreedom(t *testing.T) {
	ts := []Tenant{{Name: "heavy", Weight: 3}, {Name: "light", Weight: 1}}
	q := NewFairQueue[int](ts, 8, true)
	// The flood: heavy fills its share first.
	flooded := 0
	for i := 0; ; i++ {
		err := q.Push("heavy", i)
		if errors.Is(err, ErrTenantSaturated) {
			break
		}
		if err != nil {
			t.Fatalf("heavy push %d: %v", i, err)
		}
		flooded++
	}
	if flooded >= 8 {
		t.Fatalf("heavy flooded the whole queue (%d entries)", flooded)
	}
	// The light tenant still gets in despite the flood.
	for i := 0; i < q.TenantCap("light"); i++ {
		if err := q.Push("light", 100+i); err != nil {
			t.Fatalf("light push %d rejected during flood: %v", i, err)
		}
	}
	// Drain: DRR must serve light within the first weight-ratio window, not
	// after the whole heavy backlog.
	var order []string
	for {
		_, tn, ok := q.Pop()
		if !ok {
			break
		}
		order = append(order, tn)
	}
	firstLight := -1
	for i, tn := range order {
		if tn == "light" {
			firstLight = i
			break
		}
	}
	if firstLight == -1 {
		t.Fatal("light tenant never served")
	}
	// Quantum is 3:1, so light must be served after at most one heavy
	// quantum (3 requests), i.e. within the first 4 pops.
	if firstLight > 3 {
		t.Fatalf("light first served at position %d (order %v)", firstLight, order)
	}
}

// TestFairQueueDeterminism pins that two queues fed the identical push/pop
// sequence produce identical pop orders.
func TestFairQueueDeterminism(t *testing.T) {
	build := func() []int {
		ts := []Tenant{{Name: "a", Weight: 2}, {Name: "b", Weight: 1}, {Name: "c", Weight: 5}}
		q := NewFairQueue[int](ts, 32, true)
		names := []string{"a", "b", "c"}
		var out []int
		for i := 0; i < 48; i++ {
			_ = q.Push(names[i%3], i)
			if i%5 == 4 {
				if v, _, ok := q.Pop(); ok {
					out = append(out, v)
				}
			}
		}
		for {
			v, _, ok := q.Pop()
			if !ok {
				break
			}
			out = append(out, v)
		}
		return out
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pop %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}
