// Package admission implements the initial admission framework of Section
// 4.1: placing the primary VNF instances of a request's SFC onto cloudlets
// before any reliability augmentation happens.
//
// Two strategies are provided. PlaceMaxReliability follows the technique of
// the paper's reference [15]: a layered DAG is built whose layer i holds the
// candidate cloudlets for function f_i, and a shortest path under -log
// reliability weights yields the maximum-reliability primary placement.
// PlaceRandom places each primary on a uniformly random cloudlet with enough
// residual capacity — this is what the paper's evaluation section actually
// does ("Each VNF instance in the primary SFC deployed randomly into
// cloudlets"), so the experiments default to it.
//
// Both strategies consume residual capacity for the primaries they place.
package admission

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/mec"
)

// ErrNoCapacity is returned when some function of the SFC cannot be placed on
// any cloudlet with sufficient residual capacity.
var ErrNoCapacity = errors.New("admission: no cloudlet has capacity for a primary instance")

// PlaceRandom places each primary VNF instance of req on a uniformly random
// cloudlet that has residual capacity for it, consuming that capacity. On
// success req.Primaries is populated; on failure the ledger is unchanged.
func PlaceRandom(net *mec.Network, req *mec.Request, rng *rand.Rand) error {
	snap := net.ResidualSnapshot()
	primaries := make([]int, 0, req.Len())
	for _, ftID := range req.SFC {
		demand := net.Catalog().Type(ftID).Demand
		var candidates []int
		for _, v := range net.Cloudlets() {
			if net.Residual(v) >= demand {
				candidates = append(candidates, v)
			}
		}
		if len(candidates) == 0 {
			net.RestoreResiduals(snap)
			return fmt.Errorf("%w (function type %d, demand %v)", ErrNoCapacity, ftID, demand)
		}
		v := candidates[rng.Intn(len(candidates))]
		net.Consume(v, demand)
		primaries = append(primaries, v)
	}
	req.Primaries = primaries
	return nil
}

// hopPenalty softly prefers consecutive primaries on nearby cloudlets when
// reliabilities tie (all VNF instances of f_i have the same reliability
// everywhere, so the -log r part of the path weight is placement-invariant;
// the penalty is small enough never to override a reliability difference).
const hopPenalty = 1e-9

// PlaceMaxReliability places the primaries via the layered-DAG shortest-path
// construction of Section 4.1 (after [15]): nodes are (chain position,
// cloudlet) pairs plus a source s_j and destination t_j; an arc into layer i
// carries weight -log r_i plus a vanishing hop penalty. The shortest s→t
// path is the maximum-reliability placement. Capacity is consumed per
// function along the chosen path; when a cloudlet lacks capacity for all the
// functions routed onto it, the placement retries with that cloudlet's
// per-layer candidacy reduced.
func PlaceMaxReliability(net *mec.Network, req *mec.Request) error {
	snap := net.ResidualSnapshot()
	banned := make(map[[2]int]bool) // (layer, cloudlet) pairs excluded after overdraft

	for attempt := 0; attempt <= req.Len()*len(net.Cloudlets())+1; attempt++ {
		primaries, err := solveLayeredDAG(net, req, banned)
		if err != nil {
			net.RestoreResiduals(snap)
			return err
		}
		// Try to commit: consume capacity function by function.
		ok := true
		for i, v := range primaries {
			demand := net.Catalog().Type(req.SFC[i]).Demand
			if net.Residual(v) < demand {
				banned[[2]int{i, v}] = true
				ok = false
				break
			}
			net.Consume(v, demand)
		}
		if ok {
			req.Primaries = primaries
			return nil
		}
		net.RestoreResiduals(snap)
	}
	net.RestoreResiduals(snap)
	return fmt.Errorf("%w (layered-DAG retries exhausted)", ErrNoCapacity)
}

// solveLayeredDAG builds G_j and returns the cloudlet per chain position on
// the shortest path.
func solveLayeredDAG(net *mec.Network, req *mec.Request, banned map[[2]int]bool) ([]int, error) {
	cloudlets := net.Cloudlets()
	if len(cloudlets) == 0 {
		return nil, ErrNoCapacity
	}
	L := req.Len()
	// Node layout: 0 = source, 1 = destination, then L layers of cloudlets.
	nodeID := func(layer, ci int) int { return 2 + layer*len(cloudlets) + ci }
	d := graph.NewDAG(2 + L*len(cloudlets))

	// Precompute hop distances between cloudlets for the locality penalty.
	hop := make(map[int][]int, len(cloudlets))
	for _, v := range cloudlets {
		hop[v] = net.G.HopDistances(v)
	}
	srcHop := net.G.HopDistances(req.Source)

	for ci, v := range cloudlets {
		if banned[[2]int{0, v}] || net.Residual(v) < net.Catalog().Type(req.SFC[0]).Demand {
			continue
		}
		r0 := net.Catalog().Type(req.SFC[0]).Reliability
		w := -math.Log(r0) + hopPenalty*hopDistOrFar(srcHop, v)
		d.AddArc(0, nodeID(0, ci), w)
	}
	for layer := 0; layer+1 < L; layer++ {
		rNext := net.Catalog().Type(req.SFC[layer+1]).Reliability
		demNext := net.Catalog().Type(req.SFC[layer+1]).Demand
		for ci, u := range cloudlets {
			if banned[[2]int{layer, u}] {
				continue
			}
			for cj, v := range cloudlets {
				if banned[[2]int{layer + 1, v}] || net.Residual(v) < demNext {
					continue
				}
				w := -math.Log(rNext) + hopPenalty*hopDistOrFar(hop[u], v)
				d.AddArc(nodeID(layer, ci), nodeID(layer+1, cj), w)
			}
		}
	}
	dstHop := net.G.HopDistances(req.Destination)
	for ci, v := range cloudlets {
		if banned[[2]int{L - 1, v}] {
			continue
		}
		d.AddArc(nodeID(L-1, ci), 1, hopPenalty*hopDistOrFar(dstHop, v))
	}

	path, _, err := d.ShortestPathDAG(0, 1)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoCapacity, err)
	}
	if len(path) != L+2 {
		return nil, fmt.Errorf("admission: malformed path length %d for SFC length %d", len(path), L)
	}
	primaries := make([]int, L)
	for i, node := range path[1 : len(path)-1] {
		primaries[i] = cloudlets[(node-2)%len(cloudlets)]
	}
	return primaries, nil
}

// hopDistOrFar returns the hop distance to v, or a large finite stand-in for
// unreachable nodes so the penalty stays comparable.
func hopDistOrFar(dist []int, v int) float64 {
	if dist[v] < 0 {
		return 1e6
	}
	return float64(dist[v])
}

// InitialReliability returns Π r_i, the reliability the request achieves
// with primaries only (Section 3.1). It is placement-invariant under the
// paper's identical-reliability assumption but exposed here for reporting.
func InitialReliability(net *mec.Network, req *mec.Request) float64 {
	u := 1.0
	for _, ftID := range req.SFC {
		u *= net.Catalog().Type(ftID).Reliability
	}
	return u
}
