package admission

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// DefaultTenant is the catch-all principal: requests that carry no tenant
// ID, or an ID that matches no configured tenant, are accounted against it.
const DefaultTenant = "default"

// Tenant describes one admission-economics principal: a share of the fair
// queue (Weight) and an optional token-bucket quota (Rate tokens per virtual
// batch tick, bucket capacity Burst). A zero Rate means the tenant is not
// rate-limited. Weight must be positive.
type Tenant struct {
	// Name identifies the tenant; requests carry it in their "tenant" field.
	Name string
	// Weight is the deficit-round-robin share and the multiplier applied to
	// the request's log-gain during knapsack admission.
	Weight float64
	// Rate is the quota refill in tokens per virtual batch tick (one tick
	// per BatchSize admission sequence numbers). Zero disables the quota.
	Rate float64
	// Burst is the token-bucket capacity. Defaults to max(Rate, 1) when a
	// Rate is set but no Burst is given.
	Burst float64
}

// ParseTenants parses a CLI tenant specification of the form
//
//	name[:key=value[,key=value...]][;name...]
//
// where key is one of weight, rate, burst — for example
// "gold:weight=4,rate=2,burst=8;silver:weight=2;free:weight=1,rate=1".
// Omitted weights default to 1; a rate without a burst gets max(rate, 1).
// An empty spec yields no tenants (the server then runs with the implicit
// default tenant only).
func ParseTenants(spec string) ([]Tenant, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []Tenant
	seen := make(map[string]bool)
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, attrs, _ := strings.Cut(entry, ":")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("admission: tenant entry %q has no name", entry)
		}
		if seen[name] {
			return nil, fmt.Errorf("admission: duplicate tenant %q", name)
		}
		seen[name] = true
		t := Tenant{Name: name, Weight: 1}
		for _, kv := range strings.Split(attrs, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("admission: tenant %q: attribute %q is not key=value", name, kv)
			}
			f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
			if err != nil {
				return nil, fmt.Errorf("admission: tenant %q: attribute %q: %v", name, kv, err)
			}
			switch strings.TrimSpace(key) {
			case "weight":
				t.Weight = f
			case "rate":
				t.Rate = f
			case "burst":
				t.Burst = f
			default:
				return nil, fmt.Errorf("admission: tenant %q: unknown attribute %q", name, key)
			}
		}
		if t.Weight <= 0 || math.IsNaN(t.Weight) || math.IsInf(t.Weight, 0) {
			return nil, fmt.Errorf("admission: tenant %q: weight must be positive and finite", name)
		}
		if t.Rate < 0 || t.Burst < 0 {
			return nil, fmt.Errorf("admission: tenant %q: rate and burst must be non-negative", name)
		}
		if t.Rate > 0 && t.Burst == 0 {
			t.Burst = math.Max(t.Rate, 1)
		}
		out = append(out, t)
	}
	return out, nil
}

// Bucket is a deterministic token bucket. It is refilled on an externally
// supplied virtual clock — the serving layer uses the admission sequence
// number divided by the batch size — so that quota decisions are a pure
// function of the admission order and trace replay reproduces them
// bit-identically regardless of wall-clock timing.
type Bucket struct {
	rate   float64
	burst  float64
	tokens float64
	tick   int64
}

// NewBucket returns a full bucket with the given refill rate (tokens per
// tick) and capacity.
func NewBucket(rate, burst float64) *Bucket {
	return &Bucket{rate: rate, burst: burst, tokens: burst}
}

// Refill advances the bucket's virtual clock to tick, crediting
// rate×elapsed tokens up to the burst capacity. Ticks earlier than the
// bucket's current clock are ignored (the clock is monotone).
func (b *Bucket) Refill(tick int64) {
	if tick <= b.tick {
		return
	}
	b.tokens = math.Min(b.burst, b.tokens+b.rate*float64(tick-b.tick))
	b.tick = tick
}

// TryTake consumes one token if at least one is available and reports
// whether it did.
func (b *Bucket) TryTake() bool {
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens returns the current token balance.
func (b *Bucket) Tokens() float64 { return b.tokens }

// Tick returns the bucket's current virtual-clock position.
func (b *Bucket) Tick() int64 { return b.tick }

// Seed restores a journaled bucket state (token balance and clock) after a
// WAL replay, clamped to the configured burst capacity.
func (b *Bucket) Seed(tokens float64, tick int64) {
	b.tokens = math.Min(b.burst, math.Max(0, tokens))
	if tick > b.tick {
		b.tick = tick
	}
}

// Queueing errors returned by FairQueue.Push. The serving layer maps both
// to HTTP 429 but distinguishes them in metrics.
var (
	// ErrQueueSaturated reports that the global queue bound is reached.
	ErrQueueSaturated = errors.New("admission: queue full")
	// ErrTenantSaturated reports that the tenant's fair-share sub-queue
	// bound is reached (only enforced in fair/knapsack disciplines).
	ErrTenantSaturated = errors.New("admission: tenant sub-queue full")
)

type fairEntry[T any] struct {
	v       T
	arrival int64
}

type subQueue[T any] struct {
	name    string
	weight  float64
	quantum float64
	cap     int
	deficit float64
	items   []fairEntry[T]
	head    int
}

func (s *subQueue[T]) len() int { return len(s.items) - s.head }

func (s *subQueue[T]) push(e fairEntry[T]) {
	if s.head > 0 && s.head == len(s.items) {
		s.items = s.items[:0]
		s.head = 0
	}
	s.items = append(s.items, e)
}

func (s *subQueue[T]) pop() fairEntry[T] {
	e := s.items[s.head]
	var zero fairEntry[T]
	s.items[s.head] = zero
	s.head++
	if s.head == len(s.items) {
		s.items = s.items[:0]
		s.head = 0
	}
	return e
}

// FairQueue is a bounded multi-tenant admission queue. In FIFO mode it
// preserves global arrival order exactly (the pre-tenant discipline); in
// fair mode it runs deficit round-robin over per-tenant sub-queues with
// quantum proportional to tenant weight, and additionally bounds each
// sub-queue to its fair share of the global depth so a flooding tenant can
// never starve the others out of queue space.
//
// FairQueue is not safe for concurrent use; the serving layer serializes
// access under its queue mutex. All operations are deterministic functions
// of the push/pop sequence.
type FairQueue[T any] struct {
	fair    bool
	depth   int
	size    int
	arrival int64
	subs    []*subQueue[T]
	byName  map[string]int
	cur     int
	granted bool
}

// NewFairQueue builds a queue bounded to depth entries over the given
// tenants (order is preserved for the round-robin scan; callers should pass
// a deterministic order). When fair is false the queue degenerates to a
// single global FIFO and per-tenant bounds are not enforced. Tenants must be
// non-empty and depth positive.
func NewFairQueue[T any](tenants []Tenant, depth int, fair bool) *FairQueue[T] {
	if len(tenants) == 0 {
		tenants = []Tenant{{Name: DefaultTenant, Weight: 1}}
	}
	q := &FairQueue[T]{
		fair:   fair,
		depth:  depth,
		byName: make(map[string]int, len(tenants)),
	}
	minW := math.Inf(1)
	sumW := 0.0
	for _, t := range tenants {
		minW = math.Min(minW, t.Weight)
		sumW += t.Weight
	}
	for _, t := range tenants {
		capN := depth
		if fair && len(tenants) > 1 {
			capN = int(math.Round(float64(depth) * t.Weight / sumW))
			if capN < 1 {
				capN = 1
			}
		}
		q.byName[t.Name] = len(q.subs)
		q.subs = append(q.subs, &subQueue[T]{
			name:    t.Name,
			weight:  t.Weight,
			quantum: t.Weight / minW,
			cap:     capN,
		})
	}
	return q
}

// Push enqueues v for the named tenant. It returns ErrQueueSaturated when
// the global depth bound is reached, ErrTenantSaturated when the tenant's
// fair-share bound is reached in fair mode, and an error for unknown
// tenants (callers resolve names against the configured set first).
func (q *FairQueue[T]) Push(tenant string, v T) error {
	idx, ok := q.byName[tenant]
	if !ok {
		return fmt.Errorf("admission: unknown tenant %q", tenant)
	}
	if q.size >= q.depth {
		return ErrQueueSaturated
	}
	s := q.subs[idx]
	if q.fair && s.len() >= s.cap {
		return ErrTenantSaturated
	}
	q.arrival++
	s.push(fairEntry[T]{v: v, arrival: q.arrival})
	q.size++
	return nil
}

// Pop dequeues the next entry under the configured discipline, returning
// the value, the owning tenant's name, and false when the queue is empty.
func (q *FairQueue[T]) Pop() (T, string, bool) {
	var zero T
	if q.size == 0 {
		return zero, "", false
	}
	if !q.fair {
		// Global FIFO: pop the oldest head across sub-queues.
		best := -1
		for i, s := range q.subs {
			if s.len() == 0 {
				continue
			}
			if best == -1 || s.items[s.head].arrival < q.subs[best].items[q.subs[best].head].arrival {
				best = i
			}
		}
		s := q.subs[best]
		e := s.pop()
		q.size--
		return e.v, s.name, true
	}
	// Deficit round-robin: the first pop of each visit to a backlogged
	// tenant grants its quantum (normalized so the lightest tenant's
	// quantum is 1); each request costs one unit, and the cursor moves on
	// when the deficit is spent. Empty tenants forfeit their deficit.
	for {
		s := q.subs[q.cur]
		if s.len() == 0 {
			s.deficit = 0
			q.advance()
			continue
		}
		if !q.granted {
			s.deficit += s.quantum
			q.granted = true
		}
		if s.deficit < 1 {
			q.advance()
			continue
		}
		s.deficit--
		e := s.pop()
		q.size--
		if s.len() == 0 {
			s.deficit = 0
			q.advance()
		}
		return e.v, s.name, true
	}
}

func (q *FairQueue[T]) advance() {
	q.cur = (q.cur + 1) % len(q.subs)
	q.granted = false
}

// Len returns the total number of queued entries.
func (q *FairQueue[T]) Len() int { return q.size }

// TenantLen returns the number of queued entries for the named tenant
// (zero for unknown names).
func (q *FairQueue[T]) TenantLen(tenant string) int {
	idx, ok := q.byName[tenant]
	if !ok {
		return 0
	}
	return q.subs[idx].len()
}

// TenantCap returns the per-tenant sub-queue bound enforced in fair mode
// (the global depth in FIFO mode; zero for unknown names).
func (q *FairQueue[T]) TenantCap(tenant string) int {
	idx, ok := q.byName[tenant]
	if !ok {
		return 0
	}
	return q.subs[idx].cap
}

// Names returns the configured tenant names in round-robin order.
func (q *FairQueue[T]) Names() []string {
	out := make([]string, len(q.subs))
	for i, s := range q.subs {
		out[i] = s.name
	}
	return out
}

// SortTenants orders tenant specs by name for deterministic round-robin
// scans, returning the same slice.
func SortTenants(ts []Tenant) []Tenant {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Name < ts[j].Name })
	return ts
}
