// Package obs is the repo's stdlib-only observability layer: a
// concurrency-safe registry of counters, gauges, and fixed-bucket histograms,
// Prometheus-text and JSON exposition writers, a lightweight span/timer API,
// slog-based structured run logging, and an HTTP server exposing /metrics,
// /debug/vars (expvar), and /debug/pprof.
//
// Design constraints, in order:
//
//   - Stdlib only. No prometheus/client_golang, no OpenTelemetry; the
//     exposition format is the Prometheus text format v0.0.4 subset that
//     every scraper understands.
//   - Cheap on the hot path. A counter increment is one atomic add
//     (BenchmarkObsRegistry pins it under 100ns/op including the registry
//     lookup; callers that hold the *Counter pay only the add). Histograms
//     observe with a binary search over ~a dozen bounds plus three atomics.
//   - Deterministic-neutral. Nothing in this package draws from the
//     experiment rngs or feeds back into solver decisions, so instrumented
//     runs are bit-identical to uninstrumented ones (see DESIGN.md).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the Prometheus contract; not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram with inclusive upper bounds
// (Prometheus `le` semantics). The +Inf bucket is implicit. Sample arms an
// optional bounded reservoir for exact quantiles; disarmed (the default),
// Observe touches only atomics.
type Histogram struct {
	bounds  []float64       // strictly increasing upper bounds
	buckets []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	count   atomic.Uint64
	sumBits atomic.Uint64

	// Exact-quantile reservoir, armed by Sample. sampling gates the hot
	// path: one atomic load when disarmed, a short critical section when
	// armed. The replacement rng is a self-seeded splitmix64 stream —
	// deterministic and independent of every experiment rng, keeping the
	// package's determinism-neutrality contract.
	sampling  atomic.Bool
	smu       sync.Mutex
	samples   []float64
	sampleCap int
	seen      uint64
	rngState  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			break
		}
	}
	if h.sampling.Load() {
		h.observeSample(v)
	}
}

// Sample arms the histogram's exact-quantile reservoir with the given
// capacity: every later Observe retains its value until the reservoir is
// full, then replaces a uniformly chosen slot (Vitter's algorithm R), so
// Quantile is exact while the observation count stays within capacity and a
// uniform-sample estimate beyond it. capacity <= 0 disarms sampling.
func (h *Histogram) Sample(capacity int) {
	if capacity <= 0 {
		h.sampling.Store(false)
		return
	}
	h.smu.Lock()
	h.sampleCap = capacity
	h.samples = make([]float64, 0, capacity)
	h.seen = 0
	h.rngState = 0x9e3779b97f4a7c15
	h.smu.Unlock()
	h.sampling.Store(true)
}

func (h *Histogram) observeSample(v float64) {
	h.smu.Lock()
	defer h.smu.Unlock()
	h.seen++
	if len(h.samples) < h.sampleCap {
		h.samples = append(h.samples, v)
		return
	}
	if j := h.nextRand() % h.seen; j < uint64(h.sampleCap) {
		h.samples[j] = v
	}
}

// nextRand advances the reservoir's private splitmix64 stream. Callers hold
// smu.
func (h *Histogram) nextRand() uint64 {
	h.rngState += 0x9e3779b97f4a7c15
	z := h.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Quantile returns the p-quantile (p clamped to [0,1]) of the observed
// values. With sampling armed (Sample) it is the exact nearest-rank order
// statistic of the retained samples — exact over all observations while
// their count stays within the reservoir capacity, a uniform-sample
// estimate beyond. Without sampling it falls back to linear interpolation
// within the histogram's buckets. NaN when nothing was observed.
func (h *Histogram) Quantile(p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	if h.sampling.Load() {
		h.smu.Lock()
		s := append([]float64(nil), h.samples...)
		h.smu.Unlock()
		if len(s) > 0 {
			sort.Float64s(s)
			i := int(math.Ceil(p*float64(len(s)))) - 1
			if i < 0 {
				i = 0
			}
			return s[i]
		}
	}
	return h.bucketQuantile(p)
}

// bucketQuantile estimates the p-quantile by linear interpolation within
// the bucket containing the target rank — the Prometheus histogram_quantile
// estimate, biased by bucket width.
func (h *Histogram) bucketQuantile(p float64) float64 {
	s := h.Snapshot()
	if s.Count == 0 {
		return math.NaN()
	}
	rank := p * float64(s.Count)
	cum := uint64(0)
	for i, c := range s.Counts {
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			// Target lands in +Inf: the largest finite bound is the best
			// statement the buckets can make.
			if len(s.Bounds) == 0 {
				return math.NaN()
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		frac := (rank - float64(cum-c)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lo + (hi-lo)*frac
	}
	if len(s.Bounds) == 0 {
		return math.NaN()
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// HistogramSnapshot is a point-in-time copy of a histogram's state. Counts
// are per-bucket (not cumulative); Counts[len(Bounds)] is the +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram state. Buckets are read individually, so a
// snapshot taken during concurrent observes may be off by in-flight samples —
// fine for exposition, which is inherently a sample.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// ExpBuckets returns n exponentially spaced bounds start, start*factor, ....
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("obs: ExpBuckets requires start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n linearly spaced bounds start, start+width, ....
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n <= 0 {
		panic("obs: LinearBuckets requires width > 0, n > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// DurationBuckets spans 100µs to ~100s exponentially — wide enough for both
// a single simplex pivot and a full ILP component search.
var DurationBuckets = ExpBuckets(100e-6, 4, 11)

// CountBuckets spans 1 to ~1M exponentially — for pivot and node counts.
var CountBuckets = ExpBuckets(1, 4, 11)

// RatioBuckets covers [0,1] in tenths — for utilization-style ratios.
var RatioBuckets = LinearBuckets(0.1, 0.1, 10)

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// entry is one registered metric instance (one label combination).
type entry struct {
	base   string // metric family name, no labels
	labels string // rendered `k="v",k2="v2"`, or ""
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named metrics. All methods are safe for concurrent use;
// the getters create on first use and return the same instance thereafter
// (get-or-create), so callers may re-resolve on every operation or cache the
// returned pointer — caching skips the map lookup on the hot path.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry     // key: base{labels}
	kinds   map[string]metricKind // key: base — one kind per family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		entries: make(map[string]*entry),
		kinds:   make(map[string]metricKind),
	}
}

// defaultRegistry is the process-wide registry the instrumented packages
// (engine, core, batch, des) record into and the CLIs expose.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// fullName renders the registry key for a metric family plus label pairs.
// labels alternate key, value; values are escaped for the Prometheus text
// format.
func fullName(name string, labels []string) (full, rendered string) {
	if name == "" {
		panic("obs: metric name must be non-empty")
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %q has odd label list %v", name, labels))
	}
	if len(labels) == 0 {
		return name, ""
	}
	var b strings.Builder
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], escapeLabel(labels[i+1]))
	}
	rendered = b.String()
	return name + "{" + rendered + "}", rendered
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

// lookup returns the entry for (name, labels), creating it with mk on first
// use. It panics if the family is already registered with a different kind —
// that is always a programming error, and silently returning the wrong type
// would corrupt the exposition.
func (r *Registry) lookup(kind metricKind, name string, labels []string, mk func() *entry) *entry {
	full, rendered := fullName(name, labels)
	r.mu.RLock()
	e, ok := r.entries[full]
	r.mu.RUnlock()
	if ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q is a %s, requested as %s", full, e.kind, kind))
		}
		return e
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok = r.entries[full]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q is a %s, requested as %s", full, e.kind, kind))
		}
		return e
	}
	if k, ok := r.kinds[name]; ok && k != kind {
		panic(fmt.Sprintf("obs: metric family %q is a %s, requested as %s", name, k, kind))
	}
	e = mk()
	e.base = name
	e.labels = rendered
	e.kind = kind
	r.entries[full] = e
	r.kinds[name] = kind
	return e
}

// Counter returns the counter for name plus label pairs, creating it on
// first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.lookup(kindCounter, name, labels, func() *entry {
		return &entry{c: &Counter{}}
	}).c
}

// Gauge returns the gauge for name plus label pairs, creating it on first
// use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.lookup(kindGauge, name, labels, func() *entry {
		return &entry{g: &Gauge{}}
	}).g
}

// Histogram returns the histogram for name plus label pairs, creating it on
// first use with the given bucket bounds (strictly increasing; the +Inf
// bucket is implicit). The bounds of the first registration win for the
// whole family; later calls may pass nil.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	return r.lookup(kindHistogram, name, labels, func() *entry {
		if len(bounds) == 0 {
			bounds = DurationBuckets
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing: %v", name, bounds))
			}
		}
		b := append([]float64(nil), bounds...)
		return &entry{h: &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}}
	}).h
}

// sortedEntries returns the entries ordered by (family, labels) for stable
// exposition output.
func (r *Registry) sortedEntries() []*entry {
	r.mu.RLock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].base != out[j].base {
			return out[i].base < out[j].base
		}
		return out[i].labels < out[j].labels
	})
	return out
}
