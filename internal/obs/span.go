package obs

import "time"

// Span times one logical operation — a trial, a solver call, an experiment
// point — into the registry's span_duration_seconds histogram, labeled by
// span name. It is a value type: StartSpan costs one registry lookup and a
// clock read, End one histogram observe. Spans do not nest or propagate
// context; for this repo's flat call shapes (trial → solves) that is all the
// tracing needed, at a price payable inside hot loops.
//
//	sp := obs.Default().StartSpan("experiments_point", "fig", "fig1")
//	... work ...
//	sp.End()
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing a span with the given name and optional label
// pairs.
func (r *Registry) StartSpan(name string, labels ...string) Span {
	return Span{
		h:     r.Histogram("span_duration_seconds", DurationBuckets, append([]string{"span", name}, labels...)...),
		start: time.Now(),
	}
}

// End records the elapsed time and returns it.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	s.h.Observe(d.Seconds())
	return d
}

// SpanHandle is a pre-resolved span timer for hot loops: the registry
// lookup and the label-slice allocation StartSpan pays per call are paid
// once at handle construction, so Start costs exactly one clock read.
// BenchmarkSpanStart vs BenchmarkSpanHandleStart pins the gap; the serve
// batch path times its pipeline stages through handles resolved at package
// init (internal/serve/metrics.go).
type SpanHandle struct {
	h *Histogram
}

// SpanHandle resolves the span_duration_seconds histogram for the given
// span name and label pairs once, returning a handle whose Start allocates
// nothing.
func (r *Registry) SpanHandle(name string, labels ...string) SpanHandle {
	return SpanHandle{
		h: r.Histogram("span_duration_seconds", DurationBuckets, append([]string{"span", name}, labels...)...),
	}
}

// Start begins timing a span on the pre-resolved histogram.
func (s SpanHandle) Start() Span { return Span{h: s.h, start: time.Now()} }

// Observe records an externally measured duration on the handle's
// histogram — for stages whose boundaries are stamped once per batch rather
// than timed per call.
func (s SpanHandle) Observe(d time.Duration) { s.h.Observe(d.Seconds()) }

// ObserveSince records the seconds elapsed since start into h — the
// convenience the instrumented packages use when a Span value is overkill.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}
