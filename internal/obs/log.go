package obs

import (
	"fmt"
	"log/slog"
	"os"
	"strings"
)

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, error)", s)
}

// InitLogger installs a text slog handler on stderr at the given level as
// the process default and returns it. Structured run logs go to stderr so
// the CLIs' stdout stays machine-consumable (tables, CSV).
func InitLogger(level string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	l := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv}))
	slog.SetDefault(l)
	return l, nil
}

// Boot wires the standard CLI observability flags in one call: it installs
// the default logger at logLevel and, when addr is non-empty, starts the
// observability HTTP server on the Default registry, logging the resolved
// address. The returned Server is nil when addr is empty.
func Boot(logLevel, addr string) (*Server, error) {
	if _, err := InitLogger(logLevel); err != nil {
		return nil, err
	}
	if addr == "" {
		return nil, nil
	}
	srv, err := Serve(addr, Default())
	if err != nil {
		return nil, fmt.Errorf("obs: serve %s: %w", addr, err)
	}
	slog.Info("observability endpoint up",
		"addr", srv.Addr,
		"metrics", "http://"+srv.Addr+"/metrics",
		"pprof", "http://"+srv.Addr+"/debug/pprof/")
	return srv, nil
}
