package obs

import (
	"encoding/json"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "solver", "ILP")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("requests_total", "solver", "ILP"); again != c {
		t.Fatal("get-or-create returned a different counter instance")
	}
	// A different label combination is a different instance of the family.
	if other := r.Counter("requests_total", "solver", "Greedy"); other == c {
		t.Fatal("distinct labels must yield distinct counters")
	}

	g := r.Gauge("active")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge = %v, want 2.0", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le=0.1 is inclusive: 0.05 and 0.1 land in bucket 0.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (snapshot %+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-55.65) > 1e-9 {
		t.Fatalf("sum = %v, want 55.65", s.Sum)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Fatal("requesting a counter family as a gauge must panic")
		}
	}()
	r.Gauge("x_total")
}

func TestOddLabelsPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("odd label list must panic")
		}
	}()
	r.Counter("x_total", "solver")
}

// TestRegistryConcurrency hammers one registry from 16 goroutines doing
// mixed get-or-create and record operations on shared and per-goroutine
// metrics. It is primarily a race-detector test (`make test-race`), but the
// final counts are asserted too.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const ops = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			own := string(rune('a' + g))
			for i := 0; i < ops; i++ {
				r.Counter("shared_total").Inc()
				r.Counter("per_goroutine_total", "g", own).Inc()
				r.Gauge("shared_gauge").Set(float64(i))
				r.Histogram("shared_hist", CountBuckets).Observe(float64(i % 100))
				sp := r.StartSpan("work", "g", own)
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != goroutines*ops {
		t.Fatalf("shared_total = %d, want %d", got, goroutines*ops)
	}
	if got := r.Histogram("shared_hist", nil).Count(); got != goroutines*ops {
		t.Fatalf("shared_hist count = %d, want %d", got, goroutines*ops)
	}
	for g := 0; g < goroutines; g++ {
		own := string(rune('a' + g))
		if got := r.Counter("per_goroutine_total", "g", own).Value(); got != ops {
			t.Fatalf("per_goroutine_total{g=%s} = %d, want %d", own, got, ops)
		}
	}
}

func TestSpanRecordsDuration(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("solve", "solver", "ILP")
	if d := sp.End(); d < 0 {
		t.Fatalf("negative span duration %v", d)
	}
	h := r.Histogram("span_duration_seconds", nil, "span", "solve", "solver", "ILP")
	if h.Count() != 1 {
		t.Fatalf("span histogram count = %d, want 1", h.Count())
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"":      slog.LevelInfo,
		"WARN":  slog.LevelWarn,
		"error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = (%v, %v), want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel must reject unknown levels")
	}
}

func TestManifestWriteFile(t *testing.T) {
	r := NewRegistry()
	r.Counter("trials_total").Add(20)
	m := NewManifest("experiments")
	m.Seed = 42
	m.Trials = 20
	m.Solvers = []string{"ILP", "Heuristic"}
	m.Add(RunRecord{Name: "fig1", Label: "8", X: 8, Solver: "ILP", Trials: 20, Outcome: "ok", MeanMS: 1.5})
	m.Add(RunRecord{Name: "fig1", Label: "8", X: 8, Solver: "Heuristic", Trials: 20, Outcome: "ok"})

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path, r); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]interface{}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if back["command"] != "experiments" {
		t.Fatalf("command = %v", back["command"])
	}
	runs, ok := back["runs"].([]interface{})
	if !ok || len(runs) != 2 {
		t.Fatalf("runs = %v", back["runs"])
	}
	metrics, ok := back["metrics"].(map[string]interface{})
	if !ok {
		t.Fatalf("metrics missing: %v", back["metrics"])
	}
	if metrics["trials_total"] != float64(20) {
		t.Fatalf("metrics snapshot lost the counter: %v", metrics)
	}
	if !strings.Contains(string(data), "go_version") {
		t.Fatal("manifest must record the Go version")
	}
}

func TestPrometheusTextRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("solve_total", "solver", "ILP").Add(3)
	r.Gauge("last_objective").Set(1.25)
	h := r.Histogram("dur_seconds", []float64{0.001, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE solve_total counter",
		`solve_total{solver="ILP"} 3`,
		"# TYPE last_objective gauge",
		"last_objective 1.25",
		"# TYPE dur_seconds histogram",
		`dur_seconds_bucket{le="0.001"} 1`,
		`dur_seconds_bucket{le="0.1"} 2`,
		`dur_seconds_bucket{le="+Inf"} 3`,
		"dur_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramQuantileExact(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", ExpBuckets(0.001, 2, 10))
	h.Sample(1 << 12)
	// 1..1000 in a scrambled order: quantiles must not depend on arrival order.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64((i*617)%1000 + 1))
	}
	for _, tc := range []struct{ p, want float64 }{
		{0, 1}, {0.5, 500}, {0.99, 990}, {0.999, 999}, {1, 1000},
	} {
		if got := h.Quantile(tc.p); got != tc.want {
			t.Fatalf("Quantile(%v) = %v, want exact %v", tc.p, got, tc.want)
		}
	}
}

func TestHistogramQuantileBoundedReservoir(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", ExpBuckets(0.001, 2, 10))
	h.Sample(64)
	for i := 0; i < 10_000; i++ {
		h.Observe(float64(i % 100))
	}
	// Past capacity the reservoir estimates; it must stay bounded and the
	// estimate must stay within the observed range.
	if got := h.Quantile(0.5); got < 0 || got > 99 {
		t.Fatalf("reservoir estimate %v escaped the observed range [0,99]", got)
	}
	h.smu.Lock()
	n := len(h.samples)
	h.smu.Unlock()
	if n != 64 {
		t.Fatalf("reservoir holds %d samples, want capacity 64", n)
	}
}

func TestHistogramQuantileBucketFallback(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{1, 2, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram must return NaN")
	}
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in the (1,2] bucket
	}
	got := h.Quantile(0.5)
	if got < 1 || got > 2 {
		t.Fatalf("bucket interpolation %v escaped the (1,2] bucket", got)
	}
	// The +Inf bucket clamps to the largest finite bound.
	h.Observe(100)
	if got := h.Quantile(1); got != 4 {
		t.Fatalf("+Inf quantile = %v, want largest bound 4", got)
	}
}

func TestHistogramSampleDisarm(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{1})
	h.Sample(8)
	h.Observe(2)
	h.Sample(0) // disarm
	h.Observe(3)
	h.smu.Lock()
	n := len(h.samples)
	h.smu.Unlock()
	if n != 1 {
		t.Fatalf("disarmed histogram kept sampling: %d samples", n)
	}
}

// BenchmarkSpanStart measures the per-call price of StartSpan: a label-slice
// allocation plus a registry lookup per call.
func BenchmarkSpanStart(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.StartSpan("bench_stage", "path", "hot")
		sp.End()
	}
}

// BenchmarkSpanHandleStart measures the same span timed through a
// pre-resolved SpanHandle — the lookup and allocation are paid once outside
// the loop, which is why the serve batch path uses handles.
func BenchmarkSpanHandleStart(b *testing.B) {
	r := NewRegistry()
	h := r.SpanHandle("bench_stage", "path", "hot")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := h.Start()
		sp.End()
	}
}
