package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func scrape(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsEndpoint scrapes /metrics from an httptest server and checks
// the counter and histogram rendering end to end — the golden-ish shape a
// Prometheus scraper would ingest.
func TestMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine_trials_total").Add(160)
	r.Counter("solver_solve_total", "solver", "ILP").Add(40)
	// The branch-and-bound / simplex counters ilp.Solve records (their
	// registration from a real solve is pinned in internal/ilp's tests;
	// here we pin that the Prometheus path renders them).
	r.Counter("ilp_warmstart_hits").Add(12)
	r.Counter("ilp_cold_restarts").Add(3)
	r.Counter("ilp_bnb_nodes_claimed").Add(15)
	r.Counter("lp_eta_refreshes").Add(7)
	h := r.Histogram("solver_duration_seconds", []float64{0.01, 0.1, 1}, "solver", "ILP")
	h.Observe(0.005)
	h.Observe(0.5)

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	code, body := scrape(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE engine_trials_total counter",
		"engine_trials_total 160",
		"# TYPE ilp_warmstart_hits counter",
		"ilp_warmstart_hits 12",
		"ilp_cold_restarts 3",
		"ilp_bnb_nodes_claimed 15",
		"lp_eta_refreshes 7",
		`solver_solve_total{solver="ILP"} 40`,
		"# TYPE solver_duration_seconds histogram",
		`solver_duration_seconds_bucket{solver="ILP",le="0.01"} 1`,
		`solver_duration_seconds_bucket{solver="ILP",le="+Inf"} 2`,
		`solver_duration_seconds_sum{solver="ILP"} 0.505`,
		`solver_duration_seconds_count{solver="ILP"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = scrape(t, srv.URL+"/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics.json = %d", code)
	}
	var snap map[string]interface{}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not valid JSON: %v", err)
	}
	if snap["engine_trials_total"] != float64(160) {
		t.Fatalf("/metrics.json counter = %v", snap["engine_trials_total"])
	}
}

// TestDebugVarsEndpoint checks /debug/vars returns valid expvar JSON
// including the stdlib vars and the published registry snapshot.
func TestDebugVarsEndpoint(t *testing.T) {
	r := Default() // expvar mirrors the first-published registry (Default)
	r.Counter("debugvars_probe_total").Inc()

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	code, body := scrape(t, srv.URL+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/vars = %d", code)
	}
	var vars map[string]interface{}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not valid JSON: %v", err)
	}
	if _, ok := vars["cmdline"]; !ok {
		t.Fatal("/debug/vars missing stdlib cmdline var")
	}
	if _, ok := vars["memstats"]; !ok {
		t.Fatal("/debug/vars missing stdlib memstats var")
	}
	metrics, ok := vars["metrics"].(map[string]interface{})
	if !ok {
		t.Fatalf("/debug/vars missing published registry snapshot: %v", vars["metrics"])
	}
	if metrics["debugvars_probe_total"] != float64(1) {
		t.Fatalf("registry snapshot missing probe counter: %v", metrics["debugvars_probe_total"])
	}
}

// TestPprofIndex confirms the profiling endpoints are wired.
func TestPprofIndex(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry()))
	defer srv.Close()
	code, body := scrape(t, srv.URL+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %d", code)
	}
	if !strings.Contains(body, "goroutine") || !strings.Contains(body, "heap") {
		t.Fatalf("/debug/pprof/ index incomplete:\n%s", body)
	}
}

// TestServeBindsEphemeralPort covers the `-obs-addr :0` path the CLIs use.
func TestServeBindsEphemeralPort(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.Contains(srv.Addr, ":") || strings.HasSuffix(srv.Addr, ":0") {
		t.Fatalf("Serve did not resolve the ephemeral port: %q", srv.Addr)
	}
	code, _ := scrape(t, "http://"+srv.Addr+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics on ephemeral server = %d", code)
	}
}
