package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (v0.0.4 subset): one # TYPE line per metric family, counters and
// gauges as plain samples, histograms as cumulative _bucket{le=...} series
// plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var lastType string
	for _, e := range r.sortedEntries() {
		if e.base != lastType {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.base, e.kind); err != nil {
				return err
			}
			lastType = e.base
		}
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", sampleName(e.base, e.labels), e.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %s\n", sampleName(e.base, e.labels), fmtFloat(e.g.Value()))
		case kindHistogram:
			err = writePromHistogram(w, e)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, e *entry) error {
	s := e.h.Snapshot()
	cum := uint64(0)
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = fmtFloat(s.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s %d\n",
			sampleName(e.base+"_bucket", joinLabels(e.labels, `le="`+le+`"`)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", sampleName(e.base+"_sum", e.labels), fmtFloat(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", sampleName(e.base+"_count", e.labels), s.Count)
	return err
}

func sampleName(base, labels string) string {
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// histogramJSON is the JSON shape of one histogram in Snapshot/WriteJSON.
type histogramJSON struct {
	Count   uint64       `json:"count"`
	Sum     float64      `json:"sum"`
	Mean    float64      `json:"mean"`
	Buckets []bucketJSON `json:"buckets"`
}

type bucketJSON struct {
	LE         string `json:"le"`
	Cumulative uint64 `json:"count"`
}

// Snapshot returns the registry as a plain map from full metric name to
// value — int64 for counters, float64 for gauges, a histogramJSON-shaped
// object for histograms. It is the payload of /metrics.json, the expvar
// integration, and the manifest's metrics section.
func (r *Registry) Snapshot() map[string]interface{} {
	out := make(map[string]interface{})
	for _, e := range r.sortedEntries() {
		name := sampleName(e.base, e.labels)
		switch e.kind {
		case kindCounter:
			out[name] = e.c.Value()
		case kindGauge:
			out[name] = e.g.Value()
		case kindHistogram:
			s := e.h.Snapshot()
			hj := histogramJSON{Count: s.Count, Sum: s.Sum}
			if s.Count > 0 {
				hj.Mean = s.Sum / float64(s.Count)
			}
			cum := uint64(0)
			for i, c := range s.Counts {
				cum += c
				le := "+Inf"
				if i < len(s.Bounds) {
					le = fmtFloat(s.Bounds[i])
				}
				hj.Buckets = append(hj.Buckets, bucketJSON{LE: le, Cumulative: cum})
			}
			out[name] = hj
		}
	}
	return out
}

// WriteJSON renders the Snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
