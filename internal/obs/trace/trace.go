// Package trace is the request-lifecycle tracing layer of the observability
// stack: per-request traces made of nested stage spans (parent links,
// explicit start/end timestamps) plus an in-memory ring-buffer flight
// recorder that keeps the last N completed traces and serves them as JSON.
//
// It complements internal/obs rather than replacing it: obs histograms
// aggregate (p50 of every solve), a trace explains one request (this solve
// waited 3ms at the commit gate behind batch 17). The serving layer
// (internal/serve) builds one Trace per admitted request, stamps a span per
// pipeline stage — queue, exec(admit/solve/commit), gate_wait, wal_fsync —
// and hands the completed trace to the Recorder, which /debug/traces and the
// X-Trace-Id / ?trace=1 response surface expose.
//
// Concurrency contract: a *Trace is owned by one goroutine at a time and
// handed off through synchronizing channels (the serving queue), so its
// methods take no locks. The Recorder is fully concurrency-safe — completed
// traces arrive from batcher goroutines while HTTP readers snapshot the
// ring.
//
// Determinism: tracing observes, it never steers. Trace IDs are pure
// functions of the admission sequence, timestamps are recorded outside every
// seeded closure, and nothing here feeds back into solver decisions — traced
// runs stay bit-identical to untraced ones.
package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Root is the span index of every trace's root span.
const Root = 0

// Span is one timed stage within a trace. Parent links spans into a tree:
// the root span has Parent -1, every other span points at the index of its
// enclosing stage.
type Span struct {
	Name   string
	Parent int
	Start  time.Time
	End    time.Time // zero until the span is ended
	Note   string    // optional annotation (e.g. "speculative", "cache_hit")
}

// Trace is one request's lifecycle: a root span plus nested stage spans.
// Spans are identified by their index; Root (0) is the root span.
type Trace struct {
	id    uint64
	seq   int
	spans []Span
}

// New starts a trace: the root span is named rootName and opens at start.
// The id should be unique per request (the serving layer derives it from the
// admission sequence so a replayed request carries the recorded run's ID).
func New(id uint64, seq int, rootName string, start time.Time) *Trace {
	t := &Trace{id: id, seq: seq, spans: make([]Span, 1, 12)}
	t.spans[0] = Span{Name: rootName, Parent: -1, Start: start}
	return t
}

// ID returns the trace ID.
func (t *Trace) ID() uint64 { return t.id }

// HexID renders the trace ID as the 16-digit hex string used by the
// X-Trace-Id header and /debug/traces.
func (t *Trace) HexID() string { return fmt.Sprintf("%016x", t.id) }

// Seq returns the admission sequence number the trace was created for.
func (t *Trace) Seq() int { return t.seq }

// StartSpan opens a child span of parent at time.Now and returns its index.
func (t *Trace) StartSpan(name string, parent int) int {
	return t.StartSpanAt(name, parent, time.Now())
}

// StartSpanAt opens a child span of parent with an explicit start timestamp
// — the batch path stamps one measured boundary into every request of the
// batch instead of paying a clock read per request.
func (t *Trace) StartSpanAt(name string, parent int, at time.Time) int {
	t.spans = append(t.spans, Span{Name: name, Parent: parent, Start: at})
	return len(t.spans) - 1
}

// EndSpan closes span i at time.Now.
func (t *Trace) EndSpan(i int) { t.EndSpanAt(i, time.Now()) }

// EndSpanAt closes span i with an explicit end timestamp.
func (t *Trace) EndSpanAt(i int, at time.Time) { t.spans[i].End = at }

// Annotate attaches a note to span i; repeated notes join with commas.
func (t *Trace) Annotate(i int, note string) {
	if t.spans[i].Note == "" {
		t.spans[i].Note = note
		return
	}
	t.spans[i].Note += "," + note
}

// Spans returns the trace's spans (the live slice — callers must not retain
// it past the trace's ownership hand-off; Snapshot copies).
func (t *Trace) Spans() []Span { return t.spans }

// SpanSnapshot is the JSON view of one span: offsets are microseconds from
// the trace's root start, so a timeline reads without timestamp arithmetic.
type SpanSnapshot struct {
	Span       int    `json:"span"`
	Parent     int    `json:"parent"`
	Name       string `json:"name"`
	Note       string `json:"note,omitempty"`
	StartUS    int64  `json:"start_us"`
	DurationUS int64  `json:"duration_us"`
}

// Snapshot is the immutable JSON view of a completed trace — the flight
// recorder's unit of storage and the ?trace=1 response payload.
type Snapshot struct {
	TraceID    string         `json:"trace_id"`
	Seq        int            `json:"seq"`
	Start      time.Time      `json:"start"`
	DurationUS int64          `json:"duration_us"`
	Spans      []SpanSnapshot `json:"spans"`
}

// Snapshot deep-copies the trace into its JSON view. Spans never ended
// inherit the root's end (or, if the root is open too, report zero
// duration) so a snapshot of a half-finished trace is still well-formed.
func (t *Trace) Snapshot() Snapshot {
	root := t.spans[0]
	end := root.End
	s := Snapshot{
		TraceID: t.HexID(),
		Seq:     t.seq,
		Start:   root.Start,
		Spans:   make([]SpanSnapshot, len(t.spans)),
	}
	if !end.IsZero() {
		s.DurationUS = end.Sub(root.Start).Microseconds()
	}
	for i, sp := range t.spans {
		spEnd := sp.End
		if spEnd.IsZero() {
			spEnd = end
		}
		ss := SpanSnapshot{
			Span:    i,
			Parent:  sp.Parent,
			Name:    sp.Name,
			Note:    sp.Note,
			StartUS: sp.Start.Sub(root.Start).Microseconds(),
		}
		if !spEnd.IsZero() {
			ss.DurationUS = spEnd.Sub(sp.Start).Microseconds()
		}
		s.Spans[i] = ss
	}
	return s
}

// Timeline renders the snapshot as one compact line for log output:
//
//	request=1842µs: queue=210µs@+0 exec=1203µs@+210(speculative) ...
//
// Child spans are listed in start order with their offset from the root.
func (s Snapshot) Timeline() string {
	var b strings.Builder
	for i, sp := range s.Spans {
		if i == Root {
			fmt.Fprintf(&b, "%s=%dµs", sp.Name, sp.DurationUS)
			if sp.Note != "" {
				fmt.Fprintf(&b, "(%s)", sp.Note)
			}
			b.WriteString(":")
			continue
		}
		fmt.Fprintf(&b, " %s=%dµs@+%d", sp.Name, sp.DurationUS, sp.StartUS)
		if sp.Note != "" {
			fmt.Fprintf(&b, "(%s)", sp.Note)
		}
	}
	return b.String()
}

// Recorder is the flight recorder: a fixed-capacity ring of the most recent
// completed trace snapshots. Memory is bounded by the capacity — recording
// the (N+1)-th trace overwrites the oldest — and every method is safe for
// concurrent use.
type Recorder struct {
	capN  int // immutable after construction; read without the lock
	mu    sync.Mutex
	ring  []Snapshot
	next  int
	total uint64
}

// NewRecorder returns a flight recorder keeping the last n completed traces.
// n <= 0 yields a recorder that drops everything (Record is a no-op).
func NewRecorder(n int) *Recorder {
	if n < 0 {
		n = 0
	}
	return &Recorder{capN: n, ring: make([]Snapshot, 0, n)}
}

// Cap returns the recorder's capacity.
func (r *Recorder) Cap() int { return r.capN }

// Total returns how many traces were ever recorded (including overwritten
// ones).
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Record stores a completed trace, overwriting the oldest when full.
func (r *Recorder) Record(s Snapshot) {
	if r.capN == 0 {
		return
	}
	r.mu.Lock()
	if len(r.ring) < r.capN {
		r.ring = append(r.ring, s)
	} else {
		r.ring[r.next] = s
	}
	r.next = (r.next + 1) % r.capN
	r.total++
	r.mu.Unlock()
}

// Snapshots returns the recorded traces, newest first.
func (r *Recorder) Snapshots() []Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Snapshot, 0, len(r.ring))
	// The newest entry sits just before next (ring order); walk backwards.
	for i := 0; i < len(r.ring); i++ {
		idx := (r.next - 1 - i + 2*len(r.ring)) % len(r.ring)
		out = append(out, r.ring[idx])
	}
	return out
}

// tracesResponse is the JSON body of GET /debug/traces.
type tracesResponse struct {
	Capacity int        `json:"capacity"`
	Recorded uint64     `json:"recorded"`
	Returned int        `json:"returned"`
	Traces   []Snapshot `json:"traces"`
}

// Handler serves the flight recorder as JSON: the most recent traces,
// newest first. `?n=K` limits the count; `?id=<hex>` returns only the trace
// with that X-Trace-Id (if still in the ring).
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		traces := r.Snapshots()
		if id := req.URL.Query().Get("id"); id != "" {
			kept := traces[:0]
			for _, t := range traces {
				if t.TraceID == id {
					kept = append(kept, t)
				}
			}
			traces = kept
		}
		if nStr := req.URL.Query().Get("n"); nStr != "" {
			if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(traces) {
				traces = traces[:n]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(tracesResponse{
			Capacity: r.Cap(),
			Recorded: r.Total(),
			Returned: len(traces),
			Traces:   traces,
		})
	})
}
