package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// mkTrace builds a finished two-stage trace for recorder tests.
func mkTrace(seq int) Snapshot {
	start := time.Unix(1700000000, 0)
	t := New(uint64(seq)+1, seq, "request", start)
	q := t.StartSpanAt("queue", Root, start)
	t.EndSpanAt(q, start.Add(200*time.Microsecond))
	ex := t.StartSpanAt("exec", Root, start.Add(200*time.Microsecond))
	t.Annotate(ex, "speculative")
	t.EndSpanAt(ex, start.Add(1200*time.Microsecond))
	t.EndSpanAt(Root, start.Add(1500*time.Microsecond))
	return t.Snapshot()
}

func TestTraceSpansAndSnapshot(t *testing.T) {
	start := time.Unix(1700000000, 0)
	tr := New(0xabcd, 7, "request", start)
	q := tr.StartSpanAt("queue", Root, start)
	tr.EndSpanAt(q, start.Add(100*time.Microsecond))
	ex := tr.StartSpanAt("exec", Root, start.Add(100*time.Microsecond))
	solve := tr.StartSpanAt("solve", ex, start.Add(150*time.Microsecond))
	tr.Annotate(solve, "cache_hit")
	tr.Annotate(solve, "shared")
	tr.EndSpanAt(solve, start.Add(650*time.Microsecond))
	tr.EndSpanAt(ex, start.Add(700*time.Microsecond))
	tr.EndSpanAt(Root, start.Add(900*time.Microsecond))

	s := tr.Snapshot()
	if s.TraceID != "000000000000abcd" || s.Seq != 7 {
		t.Fatalf("snapshot header = %q seq=%d", s.TraceID, s.Seq)
	}
	if s.DurationUS != 900 {
		t.Fatalf("root duration = %dµs, want 900", s.DurationUS)
	}
	if len(s.Spans) != 4 {
		t.Fatalf("span count = %d, want 4", len(s.Spans))
	}
	if s.Spans[solve].Parent != ex || s.Spans[ex].Parent != Root || s.Spans[Root].Parent != -1 {
		t.Fatalf("parent links wrong: %+v", s.Spans)
	}
	if s.Spans[solve].StartUS != 150 || s.Spans[solve].DurationUS != 500 {
		t.Fatalf("solve span = %+v, want start 150µs dur 500µs", s.Spans[solve])
	}
	if s.Spans[solve].Note != "cache_hit,shared" {
		t.Fatalf("note = %q", s.Spans[solve].Note)
	}
	line := s.Timeline()
	for _, want := range []string{"request=900µs", "queue=100µs@+0", "solve=500µs@+150(cache_hit,shared)"} {
		if !strings.Contains(line, want) {
			t.Fatalf("timeline missing %q: %s", want, line)
		}
	}
}

// TestSnapshotOfOpenSpans checks that snapshotting a trace with unended
// spans stays well-formed: open spans inherit the root's end.
func TestSnapshotOfOpenSpans(t *testing.T) {
	start := time.Unix(1700000000, 0)
	tr := New(1, 1, "request", start)
	tr.StartSpanAt("queue", Root, start) // never ended
	tr.EndSpanAt(Root, start.Add(400*time.Microsecond))
	s := tr.Snapshot()
	if s.Spans[1].DurationUS != 400 {
		t.Fatalf("open span duration = %dµs, want root's 400", s.Spans[1].DurationUS)
	}
}

func TestRecorderWraparound(t *testing.T) {
	r := NewRecorder(4)
	for seq := 0; seq < 10; seq++ {
		r.Record(mkTrace(seq))
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d, want 10", r.Total())
	}
	got := r.Snapshots()
	if len(got) != 4 {
		t.Fatalf("ring holds %d traces, want capacity 4", len(got))
	}
	// Newest first: seqs 9, 8, 7, 6.
	for i, want := range []int{9, 8, 7, 6} {
		if got[i].Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d (ring %+v)", i, got[i].Seq, want, got)
		}
	}
}

func TestRecorderZeroCapacity(t *testing.T) {
	r := NewRecorder(0)
	r.Record(mkTrace(1))
	if r.Total() != 0 || len(r.Snapshots()) != 0 {
		t.Fatal("zero-capacity recorder must drop everything")
	}
}

// TestRecorderConcurrent hammers the recorder from writer goroutines while
// readers snapshot the ring and scrape the HTTP handler — the flight
// recorder's race-detector test (`make test-race`). Memory stays bounded:
// the ring never exceeds its capacity no matter how many traces complete.
func TestRecorderConcurrent(t *testing.T) {
	const (
		capacity = 32
		writers  = 8
		perG     = 500
	)
	r := NewRecorder(capacity)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Record(mkTrace(g*perG + i))
			}
		}(g)
	}
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := r.Snapshots(); len(got) > capacity {
					t.Errorf("ring grew past capacity: %d > %d", len(got), capacity)
					return
				}
				resp, err := http.Get(srv.URL)
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	if r.Total() != writers*perG {
		t.Fatalf("total = %d, want %d", r.Total(), writers*perG)
	}
	if got := len(r.Snapshots()); got != capacity {
		t.Fatalf("final ring size = %d, want %d", got, capacity)
	}
}

func TestRecorderHandler(t *testing.T) {
	r := NewRecorder(8)
	for seq := 1; seq <= 5; seq++ {
		r.Record(mkTrace(seq))
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces = %d", resp.StatusCode)
	}
	var body tracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if body.Capacity != 8 || body.Recorded != 5 || body.Returned != 2 {
		t.Fatalf("header = %+v", body)
	}
	if len(body.Traces) != 2 || body.Traces[0].Seq != 5 || body.Traces[1].Seq != 4 {
		t.Fatalf("traces = %+v, want seqs 5,4 newest-first", body.Traces)
	}

	// Filter by trace ID.
	id := fmt.Sprintf("%016x", 3+1) // mkTrace(3)'s ID
	resp2, err := http.Get(srv.URL + "?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var one tracesResponse
	if err := json.NewDecoder(resp2.Body).Decode(&one); err != nil {
		t.Fatal(err)
	}
	if len(one.Traces) != 1 || one.Traces[0].Seq != 3 {
		t.Fatalf("id filter returned %+v", one.Traces)
	}

	// Method discipline.
	resp3, err := http.Post(srv.URL, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /debug/traces = %d, want 405", resp3.StatusCode)
	}
}
