package obs

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"time"
)

// RunRecord is one unit of work in a run manifest: an experiment point ×
// algorithm, a batch policy run, a dessim rate, or a single solver
// invocation. Zero-valued fields are omitted so each CLI fills only what it
// has.
type RunRecord struct {
	Name    string  `json:"name"`              // e.g. "fig1", "batch", "dessim"
	Label   string  `json:"label,omitempty"`   // sweep point label, e.g. "8" or "[0.85,0.95)"
	X       float64 `json:"x,omitempty"`       // numeric x-axis position
	Solver  string  `json:"solver,omitempty"`  // registered solver name
	Policy  string  `json:"policy,omitempty"`  // batch ordering policy
	Seed    int64   `json:"seed,omitempty"`    // base RNG seed of the run
	Trials  int     `json:"trials,omitempty"`  // trials aggregated into this record
	Outcome string  `json:"outcome"`           // "ok" or "error"
	Detail  string  `json:"detail,omitempty"`  // error text or free-form note
	MeanMS  float64 `json:"mean_ms,omitempty"` // mean wall-clock per trial
}

// Manifest is the machine-readable record of one CLI invocation, written
// next to the results by the -run-manifest flag. It captures everything
// needed to attribute a results file to the exact run that produced it: the
// command and arguments, seeds, solver set, per-point outcomes, and a final
// snapshot of the metrics registry.
type Manifest struct {
	mu sync.Mutex

	Command   string                 `json:"command"`
	Args      []string               `json:"args,omitempty"`
	GoVersion string                 `json:"go_version"`
	Pid       int                    `json:"pid"`
	Start     time.Time              `json:"start"`
	End       time.Time              `json:"end"`
	Seed      int64                  `json:"seed,omitempty"`
	Trials    int                    `json:"trials,omitempty"`
	Workers   int                    `json:"workers,omitempty"`
	Solvers   []string               `json:"solvers,omitempty"`
	Runs      []RunRecord            `json:"runs"`
	Metrics   map[string]interface{} `json:"metrics,omitempty"`
}

// NewManifest starts a manifest for the named command, stamping the process
// arguments, Go version, pid, and start time.
func NewManifest(command string) *Manifest {
	return &Manifest{
		Command:   command,
		Args:      append([]string(nil), os.Args[1:]...),
		GoVersion: runtime.Version(),
		Pid:       os.Getpid(),
		Start:     time.Now(),
	}
}

// Add appends one run record. Safe for concurrent use.
func (m *Manifest) Add(rec RunRecord) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.Runs = append(m.Runs, rec)
	m.mu.Unlock()
}

// WriteFile stamps the end time, snapshots reg's metrics (when non-nil),
// and writes the manifest as indented JSON to path.
func (m *Manifest) WriteFile(path string, reg *Registry) error {
	m.mu.Lock()
	m.End = time.Now()
	if reg != nil {
		m.Metrics = reg.Snapshot()
	}
	data, err := json.MarshalIndent(m, "", "  ")
	m.mu.Unlock()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
