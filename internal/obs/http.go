package obs

import (
	"bytes"
	"expvar"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the one-time expvar publication: expvar.Publish panics
// on duplicate names, and the registry snapshot belongs under a single key.
// /debug/vars always mirrors the Default registry — expvar state is process
// global, so tying it to whichever registry a handler happens to serve would
// make the output depend on construction order.
var expvarOnce sync.Once

func publishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("metrics", expvar.Func(func() interface{} { return Default().Snapshot() }))
	})
}

// Handler returns the observability mux for a registry:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   JSON exposition
//	/debug/vars     expvar (cmdline, memstats, and the Default registry snapshot)
//	/debug/pprof/   CPU/heap/goroutine/etc. profiles
func Handler(r *Registry) http.Handler {
	publishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		// Render into a buffer first: an exposition error must surface as a
		// 500, and the status code has to be decided before the first body
		// byte reaches the client.
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			slog.Error("obs: rendering /metrics failed", "err", err)
			http.Error(w, "metrics exposition failed", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		if _, err := buf.WriteTo(w); err != nil {
			slog.Debug("obs: writing /metrics response", "err", err)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			slog.Error("obs: rendering /metrics.json failed", "err", err)
			http.Error(w, "metrics exposition failed", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		if _, err := buf.WriteTo(w); err != nil {
			slog.Debug("obs: writing /metrics.json response", "err", err)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(`<html><body><h1>observability</h1><ul>
<li><a href="/metrics">/metrics</a> (Prometheus text)</li>
<li><a href="/metrics.json">/metrics.json</a></li>
<li><a href="/debug/vars">/debug/vars</a> (expvar)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a></li>
</ul></body></html>`))
	})
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	// Addr is the bound address (resolves ":0" to the actual port).
	Addr string
	srv  *http.Server
}

// Serve binds addr (e.g. ":9090" or ":0") and serves Handler(r) on a
// background goroutine. The caller owns the returned Server and may Close it;
// CLIs typically let process exit tear it down.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(r)}
	go srv.Serve(ln)
	return &Server{Addr: ln.Addr().String(), srv: srv}, nil
}

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }
