package failsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mec"
	"repro/internal/workload"
)

// solvedPlacement builds a small network, solves the augmentation, and
// returns the result for simulation.
func solvedPlacement(t *testing.T, rho float64) *core.Result {
	t.Helper()
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	catalog := mec.NewCatalog([]mec.FunctionType{
		{Name: "a", Demand: 300, Reliability: 0.8},
		{Name: "b", Demand: 400, Reliability: 0.9},
	})
	net := mec.NewNetwork(g, []float64{2000, 0, 2000, 0}, catalog)
	req := mec.NewRequest(1, []int{0, 1}, rho, 0, 3)
	req.Primaries = []int{0, 2}
	net.Consume(0, 300)
	net.Consume(2, 400)
	inst := core.NewInstance(net, req, core.Params{L: 2})
	res, err := core.SolveILP(inst, core.ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// mustSimulate runs Simulate and fails the test on error.
func mustSimulate(t *testing.T, res *core.Result, trials int, rng *rand.Rand) *Outcome {
	t.Helper()
	out, err := Simulate(res, trials, rng)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestEmpiricalMatchesAnalytical(t *testing.T) {
	res := solvedPlacement(t, 1.0)
	rng := rand.New(rand.NewSource(5))
	out := mustSimulate(t, res, 200000, rng)
	// Normal-approximation 5-sigma band around the analytical value.
	p := out.Analytical
	sigma := math.Sqrt(p*(1-p)/float64(out.Trials)) + 1e-9
	if math.Abs(out.Availability-p) > 5*sigma+1e-4 {
		t.Fatalf("empirical %v vs analytical %v (sigma %v)", out.Availability, p, sigma)
	}
}

func TestEmpiricalMatchesAnalyticalNoBackups(t *testing.T) {
	// ρ low: trim removes all backups; availability must match Π r_i.
	res := solvedPlacement(t, 0.5)
	if got := totalCounts(res); got != 0 {
		t.Fatalf("expected no backups, got %d", got)
	}
	rng := rand.New(rand.NewSource(6))
	out := mustSimulate(t, res, 200000, rng)
	want := 0.8 * 0.9
	sigma := math.Sqrt(want * (1 - want) / float64(out.Trials))
	if math.Abs(out.Availability-want) > 5*sigma+1e-4 {
		t.Fatalf("empirical %v vs %v", out.Availability, want)
	}
}

func TestBackupsImproveAvailability(t *testing.T) {
	with := solvedPlacement(t, 1.0)
	without := solvedPlacement(t, 0.5) // trims to zero backups
	rng := rand.New(rand.NewSource(7))
	a1 := mustSimulate(t, with, 50000, rng).Availability
	a2 := mustSimulate(t, without, 50000, rng).Availability
	if a1 <= a2 {
		t.Fatalf("backups did not improve availability: %v vs %v", a1, a2)
	}
}

func TestFuncDownTracksWeakestLink(t *testing.T) {
	res := solvedPlacement(t, 0.5) // primaries only: r=0.8 vs r=0.9
	rng := rand.New(rand.NewSource(8))
	out := mustSimulate(t, res, 100000, rng)
	pos, count := out.WeakestLink()
	if pos != 0 {
		t.Fatalf("weakest link should be the r=0.8 function, got %d (count %d)", pos, count)
	}
	// Down rate of position 0 ≈ 0.2.
	rate := float64(out.FuncDown[0]) / float64(out.Trials)
	if math.Abs(rate-0.2) > 0.01 {
		t.Fatalf("func 0 down rate %v, want ≈0.2", rate)
	}
}

func TestFailoverDepthPopulated(t *testing.T) {
	res := solvedPlacement(t, 1.0)
	if totalCounts(res) == 0 {
		t.Skip("no backups placed")
	}
	rng := rand.New(rand.NewSource(9))
	out := mustSimulate(t, res, 50000, rng)
	if len(out.FailoverDepth) == 0 {
		t.Fatal("no failovers observed despite backups and r<1")
	}
	// Depth-1 failovers must dominate deeper ones (geometric decay).
	if out.FailoverDepth[1] <= out.FailoverDepth[2] {
		t.Fatalf("failover depth histogram not decaying: %v", out.FailoverDepth)
	}
}

func TestCloudletOutage(t *testing.T) {
	res := solvedPlacement(t, 1.0)
	rng := rand.New(rand.NewSource(10))
	base := mustSimulate(t, res, 50000, rng).Availability
	outage, err := CloudletOutage(res, 50000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(outage) == 0 {
		t.Fatal("no cloudlets in outage map")
	}
	for u, avail := range outage {
		if avail > base+0.01 {
			t.Fatalf("availability with cloudlet %d dark (%v) exceeds baseline (%v)", u, avail, base)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	res := solvedPlacement(t, 1.0)
	rng := rand.New(rand.NewSource(1))
	if _, err := Simulate(res, 0, rng); err == nil {
		t.Fatal("zero trials should error")
	}
	if _, err := Simulate(nil, 10, rng); err == nil {
		t.Fatal("nil result should error")
	}
	if _, err := Simulate(&core.Result{}, 10, rng); err == nil {
		t.Fatal("detached result should error")
	}
	if _, err := CloudletOutage(res, -1, rng); err == nil {
		t.Fatal("negative trials should error")
	}
	if _, err := CloudletOutage(&core.Result{}, 10, rng); err == nil {
		t.Fatal("detached result should error")
	}
}

// TestPaperScalePlacementAgreement runs the full pipeline at paper scale and
// requires the empirical availability of every solver's placement to agree
// with its analytical reliability.
func TestPaperScalePlacementAgreement(t *testing.T) {
	cfg := workload.NewDefaultConfig()
	rng := rand.New(rand.NewSource(77))
	net := cfg.Network(rng)
	req := cfg.RequestWithLength(rng, 0, 6, net.Catalog().Size())
	workload.PlacePrimariesRandom(net, req, rng)
	inst := core.NewInstance(net, req, core.Params{L: 1})

	heu, err := core.SolveHeuristic(inst, core.HeuristicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := mustSimulate(t, heu, 300000, rng)
	p := out.Analytical
	sigma := math.Sqrt(p*(1-p)/float64(out.Trials)) + 1e-9
	if math.Abs(out.Availability-p) > 5*sigma+2e-4 {
		t.Fatalf("empirical %v vs analytical %v", out.Availability, p)
	}
}

func totalCounts(r *core.Result) int {
	n := 0
	for _, c := range r.Counts {
		n += c
	}
	return n
}
