// Package failsim is a Monte-Carlo failure simulator for augmented SFC
// placements. The paper's reliability calculus (Eq. 1: R_i = 1-(1-r_i)^{n_i+1},
// chain reliability Π R_i) is an analytical model; failsim draws actual VNF
// instance up/down states and replays the failover discipline of Section 3 —
// the primary serves while up; on its failure any idle secondary (state-
// synchronised within l hops) takes over; the chain is up iff every function
// has at least one live instance — yielding an empirical service availability
// to cross-check the model, plus diagnostics the analytical model cannot
// give (which function breaks the chain most often, cloudlet blast radius).
package failsim

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// Outcome aggregates a simulation run.
type Outcome struct {
	Trials int
	// Up is the number of trials where the whole chain had a live instance
	// for every function.
	Up int
	// Availability = Up / Trials, the empirical counterpart of Π R_i.
	Availability float64
	// Analytical is the model's Π R_i for the same placement.
	Analytical float64
	// FuncDown[i] counts trials where chain position i had no live instance
	// (the chain's weakest links).
	FuncDown []int
	// FailoverDepth histograms, per trial-function with a dead primary but a
	// live secondary, how many instances were dead before the first live one
	// (1 = first secondary took over).
	FailoverDepth map[int]int
}

// Simulate draws trials independent failure scenarios for a solved placement.
// Each VNF instance of chain position i is up independently with probability
// r_i (the paper's identical-reliability assumption). Invalid input — a
// non-positive trial count, a nil result, or a result detached from its
// instance — is reported as an error, never a panic, so batch pipelines can
// skip the bad placement and keep going.
func Simulate(res *core.Result, trials int, rng *rand.Rand) (*Outcome, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("failsim: trials %d must be positive", trials)
	}
	if res == nil {
		return nil, fmt.Errorf("failsim: nil result")
	}
	inst := res.Instance
	if inst == nil {
		return nil, fmt.Errorf("failsim: result has no instance attached")
	}
	out := &Outcome{
		Trials:        trials,
		FuncDown:      make([]int, len(inst.Positions)),
		FailoverDepth: make(map[int]int),
		Analytical:    res.Reliability,
	}
	for t := 0; t < trials; t++ {
		chainUp := true
		for i := range inst.Positions {
			r := inst.Positions[i].Func.Reliability
			instances := 1 + res.Counts[i] // primary + secondaries
			alive := -1
			for k := 0; k < instances; k++ {
				if rng.Float64() < r {
					alive = k
					break
				}
			}
			if alive < 0 {
				out.FuncDown[i]++
				chainUp = false
				continue
			}
			if alive > 0 {
				out.FailoverDepth[alive]++
			}
		}
		if chainUp {
			out.Up++
		}
	}
	out.Availability = float64(out.Up) / float64(trials)
	return out, nil
}

// WeakestLink returns the chain position that most often had no live
// instance, with its failure count (-1 if the chain never failed).
func (o *Outcome) WeakestLink() (pos, count int) {
	pos, count = -1, 0
	for i, c := range o.FuncDown {
		if c > count {
			pos, count = i, c
		}
	}
	return pos, count
}

// CloudletOutage estimates chain availability when a whole cloudlet fails
// (all its instances down, others up/down as usual): for each cloudlet used
// by the placement, the availability conditioned on that cloudlet being dark.
// This is a blast-radius diagnostic outside the paper's model (the paper
// assumes independent per-instance failures; correlated cloudlet failures
// are the natural operator follow-up question). Like Simulate it reports
// invalid input as an error instead of panicking.
func CloudletOutage(res *core.Result, trials int, rng *rand.Rand) (map[int]float64, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("failsim: trials %d must be positive", trials)
	}
	if res == nil {
		return nil, fmt.Errorf("failsim: nil result")
	}
	inst := res.Instance
	if inst == nil {
		return nil, fmt.Errorf("failsim: result has no instance attached")
	}
	secondaries := res.Secondaries()
	used := make(map[int]bool)
	for i := range inst.Positions {
		used[inst.Req.Primaries[i]] = true
		for _, u := range secondaries[i] {
			used[u] = true
		}
	}
	out := make(map[int]float64, len(used))
	for dark := range used {
		up := 0
		for t := 0; t < trials; t++ {
			chainUp := true
			for i := range inst.Positions {
				r := inst.Positions[i].Func.Reliability
				alive := false
				if inst.Req.Primaries[i] != dark && rng.Float64() < r {
					alive = true
				}
				if !alive {
					for _, u := range secondaries[i] {
						if u != dark && rng.Float64() < r {
							alive = true
							break
						}
					}
				}
				if !alive {
					chainUp = false
					break
				}
			}
			if chainUp {
				up++
			}
		}
		out[dark] = float64(up) / float64(trials)
	}
	return out, nil
}
