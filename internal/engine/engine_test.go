package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCollectsInTrialOrder(t *testing.T) {
	got, err := Run(context.Background(), 100, 8, nil, func(trial int, _ *rand.Rand) (int, error) {
		if trial%7 == 0 {
			time.Sleep(time.Millisecond) // scramble completion order
		}
		return trial * trial, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("got %d results", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestRunDeterministicAcrossWorkerCounts is the engine-level half of the
// determinism guarantee: the rng stream a trial sees depends only on its
// seed, never on the worker count.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	seed := func(trial int) int64 { return 42*1_000_003 + int64(trial)*10_007 }
	run := func(workers int) []float64 {
		out, err := Run(context.Background(), 64, workers, seed, func(trial int, rng *rand.Rand) (float64, error) {
			x := 0.0
			for i := 0; i < 10+trial%5; i++ {
				x += rng.Float64()
			}
			return x, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	base := run(1)
	for _, workers := range []int{2, 4, 8, 0} {
		got := run(workers)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d diverges at trial %d: %v != %v", workers, i, got[i], base[i])
			}
		}
	}
}

func TestRunPropagatesLowestIndexError(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Run(context.Background(), 50, 4, nil, func(trial int, _ *rand.Rand) (int, error) {
		if trial >= 10 {
			return 0, fmt.Errorf("trial-%d: %w", trial, sentinel)
		}
		return trial, nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("error chain lost the cause: %v", err)
	}
	// The reported trial is the lowest-index failure among those that ran;
	// trial 10 always runs (the feeder is ahead of the failures), and no
	// trial below 10 fails, so the message must name trial >= 10.
	if !strings.Contains(err.Error(), "engine: trial 1") {
		t.Fatalf("error should name a failing trial index: %v", err)
	}
}

func TestRunTaggedErrorCarriesTag(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := RunTagged(context.Background(), "seed=7 point=3 solvers=ILP", 8, 2, nil,
		func(trial int, _ *rand.Rand) (int, error) {
			if trial == 5 {
				return 0, fmt.Errorf("trial-%d: %w", trial, sentinel)
			}
			return trial, nil
		})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("error chain lost the cause: %v", err)
	}
	if !strings.Contains(err.Error(), "seed=7 point=3 solvers=ILP") {
		t.Fatalf("error should carry the run tag: %v", err)
	}
	if !strings.Contains(err.Error(), "trial 5") {
		t.Fatalf("error should name the failing trial: %v", err)
	}
}

func TestRunStopsFeedingAfterError(t *testing.T) {
	var ran atomic.Int64
	_, err := Run(context.Background(), 10_000, 2, nil, func(trial int, _ *rand.Rand) (int, error) {
		ran.Add(1)
		return 0, errors.New("always fails")
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if n := ran.Load(); n >= 10_000 {
		t.Fatalf("all %d trials ran despite early failure", n)
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	go func() {
		for ran.Load() == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()
	_, err := Run(ctx, 1_000_000, 2, nil, func(trial int, _ *rand.Rand) (int, error) {
		ran.Add(1)
		time.Sleep(10 * time.Microsecond)
		return trial, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := ran.Load(); n >= 1_000_000 {
		t.Fatal("cancellation did not stop the run early")
	}
}

func TestRunEdgeCases(t *testing.T) {
	out, err := Run(context.Background(), 0, 4, nil, func(int, *rand.Rand) (int, error) { return 1, nil })
	if err != nil || out != nil {
		t.Fatalf("n=0: (%v, %v)", out, err)
	}
	// workers > n must not deadlock or spawn useless goroutines.
	out, err = Run(context.Background(), 3, 64, nil, func(trial int, _ *rand.Rand) (int, error) { return trial, nil })
	if err != nil || len(out) != 3 {
		t.Fatalf("workers>n: (%v, %v)", out, err)
	}
	// nil ctx and nil seeder are usable defaults.
	out, err = Run[int](nil, 2, 1, nil, func(trial int, rng *rand.Rand) (int, error) { return int(rng.Int63() & 0xff), nil })
	if err != nil || len(out) != 2 {
		t.Fatalf("nil ctx/seed: (%v, %v)", out, err)
	}
}

func TestRunNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil trial function must panic")
		}
	}()
	Run[int](context.Background(), 1, 1, nil, nil)
}
