package engine

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/obs"
)

// TrialError records one trial RunPartial could not complete. Failed trials
// leave the zero value in the results slice; the error list identifies them.
type TrialError struct {
	// Trial is the trial index within the run.
	Trial int
	// Seed is the RNG seed of the final attempt.
	Seed int64
	// Attempts is the number of attempts made (>= 1).
	Attempts int
	// Kind classifies the failure: "error" (trial function returned an
	// error), "panic" (recovered), or "deadline" (per-trial deadline hit).
	Kind string
	// Err is the final attempt's error (for deadlines, a synthesized one).
	Err error
}

// Error renders the trial index, failure kind, attempt count, and seed —
// everything needed to replay the failing trial deterministically.
func (e TrialError) Error() string {
	return fmt.Sprintf("trial %d (%s, %d attempt(s), seed %d): %v",
		e.Trial, e.Kind, e.Attempts, e.Seed, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e TrialError) Unwrap() error { return e.Err }

// Failure kinds reported in TrialError.Kind.
const (
	KindError    = "error"
	KindPanic    = "panic"
	KindDeadline = "deadline"
)

// FailSoftOptions tunes RunPartial.
type FailSoftOptions struct {
	// Tag is woven into failure logs and TrialError context, like RunTagged.
	Tag string
	// TrialTimeout bounds each attempt's wall clock (<= 0: unbounded). A
	// timed-out attempt is abandoned — its goroutine keeps running until the
	// trial function returns, but its result is discarded — and the trial is
	// reported as a KindDeadline TrialError. Deadline hits are never retried
	// (a retry would multiply the worst-case latency).
	TrialTimeout time.Duration
	// MaxAttempts caps total attempts per trial (<= 1: single attempt).
	// Retries are deterministic: attempt k reruns the trial with a seed that
	// is a pure function of (trial seed, k), so whether a retry happens and
	// what it computes depend only on the trial index — never on scheduling
	// or worker count.
	MaxAttempts int
	// Retryable reports whether a failed attempt is worth retrying. It sees
	// returned errors and recovered panics (wrapped, Kind in the TrialError
	// if all attempts fail); deadline hits are never offered. nil means
	// returned errors are retryable and panics are not.
	Retryable func(err error, panicked bool) bool
	// Source, when non-nil, constructs each attempt's rand.Source from its
	// seed in place of rand.NewSource. The stdlib source burns ~10µs warming
	// its 607-word table per construction, which dominates sub-100µs trials;
	// latency-sensitive callers inject a cheap-seed source instead. Changing
	// the source changes what seeded trials compute, so results are only
	// comparable across runs using the same source.
	Source func(seed int64) rand.Source
}

// failSoftMetrics are RunPartial's extra instruments. All recording happens
// in the pool machinery — never inside the seeded trial function — so
// instrumented fail-soft runs keep the worker-count bit-identity guarantee.
var failSoftMetrics = struct {
	runs            *obs.Counter
	recoveredPanics *obs.Counter
	retries         *obs.Counter
	deadlineHits    *obs.Counter
	dropped         *obs.Counter
}{
	runs:            obs.Default().Counter("engine_failsoft_runs_total"),
	recoveredPanics: obs.Default().Counter("engine_failsoft_recovered_panics_total"),
	retries:         obs.Default().Counter("engine_failsoft_retries_total"),
	deadlineHits:    obs.Default().Counter("engine_failsoft_deadline_hits_total"),
	dropped:         obs.Default().Counter("engine_failsoft_dropped_trials_total"),
}

// retrySeedStep is the odd 64-bit golden-ratio constant 0x9E3779B97F4A7C15
// (written as the int64 it wraps to) used to derive the seed of retry
// attempt k from the trial's base seed (base + k*step). Any odd constant
// gives distinct seeds for all k; this one also decorrelates neighbouring
// trials' retry streams.
const retrySeedStep int64 = -0x61C8864680B583EB

// RetrySeed returns the RNG seed of attempt k (0-based) for a trial whose
// base seed is base. Attempt 0 uses the base seed itself, so a run without
// failures is bit-identical to Run. Exposed for tests that reproduce a
// specific retry attempt.
func RetrySeed(base int64, attempt int) int64 {
	return base + int64(attempt)*retrySeedStep
}

// attemptOutcome is one attempt's result, sent over a channel when a
// deadline is armed so the worker can abandon a stuck attempt.
type attemptOutcome[T any] struct {
	res      T
	err      error
	panicked bool
}

// safeCall runs fn for one attempt, converting a panic into an error.
func safeCall[T any](fn TrialFunc[T], trial int, rng *rand.Rand) (out attemptOutcome[T]) {
	defer func() {
		if r := recover(); r != nil {
			out.panicked = true
			out.err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	out.res, out.err = fn(trial, rng)
	return out
}

// RunPartial executes fn for trials 0..n-1 like Run, but fails soft: a trial
// that panics, errors (after the retry policy is exhausted), or exceeds the
// per-trial deadline is recorded as a TrialError and the sweep continues.
// The results slice always has length n with the zero value at failed (or,
// after cancellation, never-started) indices; the TrialError list — ordered
// by trial index — identifies the holes.
//
// The returned error is non-nil only when ctx was canceled, in which case it
// is ctx.Err() and the results cover the trials that were fed before
// cancellation. Trial failures never abort the run and never surface in the
// error return.
//
// Determinism: attempt k of trial t always runs with RetrySeed(seed(t), k),
// so results — including which trials fail, how many attempts they take, and
// what retries compute — are bit-identical across worker counts. Deadline
// hits are the one wall-clock-dependent exception; runs that rely on
// bit-identity should not run close to TrialTimeout.
func RunPartial[T any](ctx context.Context, n, workers int, seed Seeder, fn TrialFunc[T], opts FailSoftOptions) ([]T, []TrialError, error) {
	if fn == nil {
		panic("engine: RunPartial requires a trial function")
	}
	if n <= 0 {
		return nil, nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if seed == nil {
		seed = func(trial int) int64 { return int64(trial) }
	}
	if ctx == nil {
		ctx = context.Background()
	}
	maxAttempts := opts.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	metrics.runs.Inc()
	failSoftMetrics.runs.Inc()

	// Single-trial single-worker fast path: run inline instead of paying a
	// worker goroutine, feed channel, and WaitGroup per call. Micro-batch
	// serving hits this shape on every one-request batch; the result is
	// bit-identical to the pooled path (same seed, same attempt derivation).
	if n == 1 && workers == 1 {
		results := make([]T, 1)
		var failures []TrialError
		start := time.Now()
		te := runFailSoftTrial(0, seed(0), maxAttempts, opts, fn, results)
		metrics.trialDur.Observe(time.Since(start).Seconds())
		metrics.trials.Inc()
		if te != nil {
			metrics.errors.Inc()
			slog.Error("engine: trial dropped",
				"tag", opts.Tag, "trial", 0, "kind", te.Kind,
				"attempts", te.Attempts, "seed", te.Seed, "err", te.Err)
			failures = append(failures, *te)
			failSoftMetrics.dropped.Inc()
		}
		return results, failures, ctx.Err()
	}

	// results[t] and failSlots[t] are each written by exactly one worker and
	// read only after wg.Wait — no locks needed (same discipline as Run).
	results := make([]T, n)
	failSlots := make([]*TrialError, n)
	trials := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			born := time.Now()
			var busy time.Duration
			defer func() {
				if life := time.Since(born); life > 0 {
					metrics.workerUtil.Observe(float64(busy) / float64(life))
				}
				wg.Done()
			}()
			for t := range trials {
				start := time.Now()
				failSlots[t] = runFailSoftTrial(t, seed(t), maxAttempts, opts, fn, results)
				d := time.Since(start)
				busy += d
				metrics.trialDur.Observe(d.Seconds())
				metrics.trials.Inc()
				if te := failSlots[t]; te != nil {
					metrics.errors.Inc()
					slog.Error("engine: trial dropped",
						"tag", opts.Tag, "trial", t, "kind", te.Kind,
						"attempts", te.Attempts, "seed", te.Seed, "err", te.Err)
				}
			}
		}()
	}
feed:
	for t := 0; t < n; t++ {
		waitStart := time.Now()
		select {
		case trials <- t:
			metrics.queueWait.Observe(time.Since(waitStart).Seconds())
		case <-ctx.Done():
			break feed
		}
	}
	close(trials)
	wg.Wait()

	var failures []TrialError
	for _, te := range failSlots {
		if te != nil {
			failures = append(failures, *te)
		}
	}
	failSoftMetrics.dropped.Add(int64(len(failures)))
	return results, failures, ctx.Err()
}

// runFailSoftTrial runs every attempt of one trial, writing a successful
// result into results[t]. It returns nil on success or the TrialError that
// drops the trial. Metric recording happens here, in the pool machinery,
// outside the seeded trial function.
func runFailSoftTrial[T any](t int, baseSeed int64, maxAttempts int, opts FailSoftOptions, fn TrialFunc[T], results []T) *TrialError {
	var lastErr error
	kind := KindError
	attempts := 0
	finalSeed := baseSeed
	for attempts < maxAttempts {
		attemptSeed := RetrySeed(baseSeed, attempts)
		attempts++
		finalSeed = attemptSeed
		src := opts.Source
		if src == nil {
			src = rand.NewSource
		}
		rng := rand.New(src(attemptSeed))

		var out attemptOutcome[T]
		timedOut := false
		if opts.TrialTimeout > 0 {
			// The attempt runs in its own goroutine owning its own rng; on
			// deadline it is abandoned (it still finishes, but only into the
			// buffered channel) and the trial is dropped.
			ch := make(chan attemptOutcome[T], 1)
			go func() { ch <- safeCall(fn, t, rng) }()
			timer := time.NewTimer(opts.TrialTimeout)
			select {
			case out = <-ch:
				timer.Stop()
			case <-timer.C:
				timedOut = true
			}
		} else {
			out = safeCall(fn, t, rng)
		}

		if timedOut {
			failSoftMetrics.deadlineHits.Inc()
			return &TrialError{
				Trial: t, Seed: attemptSeed, Attempts: attempts, Kind: KindDeadline,
				Err: fmt.Errorf("engine: trial exceeded %v deadline", opts.TrialTimeout),
			}
		}
		if out.err == nil {
			results[t] = out.res
			return nil
		}
		if out.panicked {
			failSoftMetrics.recoveredPanics.Inc()
			kind = KindPanic
		} else {
			kind = KindError
		}
		lastErr = out.err

		retryable := false
		if attempts < maxAttempts {
			if opts.Retryable != nil {
				retryable = opts.Retryable(out.err, out.panicked)
			} else {
				retryable = !out.panicked
			}
		}
		if !retryable {
			break
		}
		failSoftMetrics.retries.Inc()
	}
	return &TrialError{Trial: t, Seed: finalSeed, Attempts: attempts, Kind: kind, Err: lastErr}
}
