// Package engine is the deterministic parallel trial executor underneath the
// experiment harness. A run fans n independent trials out across a bounded
// worker pool; determinism is preserved by construction rather than by luck:
//
//   - every trial gets its own *rand.Rand seeded by a pure function of the
//     trial index, so no trial ever observes another trial's draws;
//   - results are collected into a slice indexed by trial, so the output
//     order is the trial order regardless of completion order;
//   - worker count only changes scheduling, never seeding, so a run with
//     workers=1 and workers=GOMAXPROCS is bit-identical.
//
// Trial functions must be pure with respect to shared state (build their own
// network, request, instance from the rng) — the executor enforces nothing
// beyond the seeding discipline, but `make test-race` runs the harness under
// the race detector to keep violations from creeping in.
//
// Every run records trial counts, per-trial durations, feeder queue wait,
// and per-worker utilization into the default obs registry. All recording
// happens in the pool machinery — outside the seeded trial function — and
// never feeds back into scheduling or seeding, so instrumented runs stay
// bit-identical (see DESIGN.md).
package engine

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
)

// Seeder derives the RNG seed for one trial. It must be a pure function of
// the trial index (the experiment harness uses
// Seed*1_000_003 + pointIdx*10_007 + trial).
type Seeder func(trial int) int64

// TrialFunc runs one trial. rng is freshly seeded for this trial and must
// not escape the call.
type TrialFunc[T any] func(trial int, rng *rand.Rand) (T, error)

// metrics are the engine's obs instruments, resolved once at package init.
var metrics = struct {
	trials     *obs.Counter
	errors     *obs.Counter
	runs       *obs.Counter
	trialDur   *obs.Histogram // wall-clock of one trial function call
	queueWait  *obs.Histogram // feeder blocking time per trial (all workers busy)
	workerUtil *obs.Histogram // per-worker busy/lifetime ratio per run
}{
	trials:     obs.Default().Counter("engine_trials_total"),
	errors:     obs.Default().Counter("engine_trial_errors_total"),
	runs:       obs.Default().Counter("engine_runs_total"),
	trialDur:   obs.Default().Histogram("engine_trial_duration_seconds", obs.DurationBuckets),
	queueWait:  obs.Default().Histogram("engine_queue_wait_seconds", obs.DurationBuckets),
	workerUtil: obs.Default().Histogram("engine_worker_utilization_ratio", obs.RatioBuckets),
}

// Run executes fn for trials 0..n-1 across a pool of workers and returns the
// results in trial order. workers <= 0 uses GOMAXPROCS; seed == nil seeds
// each trial with its index. On the first trial error the pool stops handing
// out new trials and Run returns the error of the lowest-index failed trial,
// wrapped with that index. A canceled ctx aborts between trials and returns
// ctx's error.
func Run[T any](ctx context.Context, n, workers int, seed Seeder, fn TrialFunc[T]) ([]T, error) {
	return RunTagged(ctx, "", n, workers, seed, fn)
}

// RunTagged is Run with a caller-supplied context tag — typically the
// experiment point and solver set from the run manifest — woven into trial
// errors and failure logs, so a batch failure is attributable to its exact
// sweep point from the logs alone.
func RunTagged[T any](ctx context.Context, tag string, n, workers int, seed Seeder, fn TrialFunc[T]) ([]T, error) {
	if fn == nil {
		panic("engine: Run requires a trial function")
	}
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if seed == nil {
		seed = func(trial int) int64 { return int64(trial) }
	}
	if ctx == nil {
		ctx = context.Background()
	}
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	metrics.runs.Inc()

	// results[t] and errs[t] are each written by exactly one worker (the one
	// that drew trial t) and read only after wg.Wait — no locks needed.
	results := make([]T, n)
	errs := make([]error, n)
	trials := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			born := time.Now()
			var busy time.Duration
			defer func() {
				// Worker utilization: the busy fraction of this worker's
				// lifetime. Near 1.0 means the pool is compute-bound; low
				// values mean trials are starved behind the feeder.
				if life := time.Since(born); life > 0 {
					metrics.workerUtil.Observe(float64(busy) / float64(life))
				}
				wg.Done()
			}()
			for t := range trials {
				rng := rand.New(rand.NewSource(seed(t)))
				start := time.Now()
				res, err := fn(t, rng)
				d := time.Since(start)
				busy += d
				metrics.trialDur.Observe(d.Seconds())
				metrics.trials.Inc()
				if err != nil {
					metrics.errors.Inc()
					slog.Error("engine: trial failed",
						"tag", tag, "trial", t, "seed", seed(t), "err", err)
					errs[t] = err
					cancel() // stop feeding; in-flight trials finish
					continue
				}
				results[t] = res
			}
		}()
	}
feed:
	for t := 0; t < n; t++ {
		waitStart := time.Now()
		select {
		case trials <- t:
			metrics.queueWait.Observe(time.Since(waitStart).Seconds())
		case <-ctx.Done():
			break feed
		}
	}
	close(trials)
	wg.Wait()

	for t, err := range errs {
		if err != nil {
			if tag != "" {
				return nil, fmt.Errorf("engine: %s: trial %d: %w", tag, t, err)
			}
			return nil, fmt.Errorf("engine: trial %d: %w", t, err)
		}
	}
	if err := parent.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
