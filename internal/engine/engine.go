// Package engine is the deterministic parallel trial executor underneath the
// experiment harness. A run fans n independent trials out across a bounded
// worker pool; determinism is preserved by construction rather than by luck:
//
//   - every trial gets its own *rand.Rand seeded by a pure function of the
//     trial index, so no trial ever observes another trial's draws;
//   - results are collected into a slice indexed by trial, so the output
//     order is the trial order regardless of completion order;
//   - worker count only changes scheduling, never seeding, so a run with
//     workers=1 and workers=GOMAXPROCS is bit-identical.
//
// Trial functions must be pure with respect to shared state (build their own
// network, request, instance from the rng) — the executor enforces nothing
// beyond the seeding discipline, but `make test-race` runs the harness under
// the race detector to keep violations from creeping in.
package engine

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
)

// Seeder derives the RNG seed for one trial. It must be a pure function of
// the trial index (the experiment harness uses
// Seed*1_000_003 + pointIdx*10_007 + trial).
type Seeder func(trial int) int64

// TrialFunc runs one trial. rng is freshly seeded for this trial and must
// not escape the call.
type TrialFunc[T any] func(trial int, rng *rand.Rand) (T, error)

// Run executes fn for trials 0..n-1 across a pool of workers and returns the
// results in trial order. workers <= 0 uses GOMAXPROCS; seed == nil seeds
// each trial with its index. On the first trial error the pool stops handing
// out new trials and Run returns the error of the lowest-index failed trial,
// wrapped with that index. A canceled ctx aborts between trials and returns
// ctx's error.
func Run[T any](ctx context.Context, n, workers int, seed Seeder, fn TrialFunc[T]) ([]T, error) {
	if fn == nil {
		panic("engine: Run requires a trial function")
	}
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if seed == nil {
		seed = func(trial int) int64 { return int64(trial) }
	}
	if ctx == nil {
		ctx = context.Background()
	}
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// results[t] and errs[t] are each written by exactly one worker (the one
	// that drew trial t) and read only after wg.Wait — no locks needed.
	results := make([]T, n)
	errs := make([]error, n)
	trials := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range trials {
				rng := rand.New(rand.NewSource(seed(t)))
				res, err := fn(t, rng)
				if err != nil {
					errs[t] = err
					cancel() // stop feeding; in-flight trials finish
					continue
				}
				results[t] = res
			}
		}()
	}
feed:
	for t := 0; t < n; t++ {
		select {
		case trials <- t:
		case <-ctx.Done():
			break feed
		}
	}
	close(trials)
	wg.Wait()

	for t, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("engine: trial %d: %w", t, err)
		}
	}
	if err := parent.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
