package engine

import (
	"context"
	"math/rand"
	"testing"
)

// benchTrial is a small but non-trivial deterministic workload: enough rng
// draws and arithmetic that the pool machinery is not the whole benchmark,
// small enough that per-trial overhead is still visible.
func benchTrial(_ int, rng *rand.Rand) (float64, error) {
	s := 0.0
	for i := 0; i < 512; i++ {
		s += rng.Float64()
	}
	return s, nil
}

// BenchmarkRun is the baseline the fail-soft path is measured against.
func BenchmarkRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), 256, 4, nil, benchTrial); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunPartialNoFailures measures RunPartial on the all-success path.
// The fail-soft machinery (per-trial recover, failure-slot bookkeeping) should
// stay within a few percent of Run — compare with BenchmarkRun.
func BenchmarkRunPartialNoFailures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, failures, err := RunPartial(context.Background(), 256, 4, nil, benchTrial, FailSoftOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(failures) != 0 {
			b.Fatalf("unexpected failures: %v", failures)
		}
	}
}

// BenchmarkRunPartialWithDeadline adds the per-attempt goroutine + timer that
// a TrialTimeout costs even when no trial times out.
func BenchmarkRunPartialWithDeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, failures, err := RunPartial(context.Background(), 256, 4, nil, benchTrial,
			FailSoftOptions{TrialTimeout: 10e9})
		if err != nil {
			b.Fatal(err)
		}
		if len(failures) != 0 {
			b.Fatalf("unexpected failures: %v", failures)
		}
	}
}
