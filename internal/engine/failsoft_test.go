package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunPartialRecoversPanics(t *testing.T) {
	results, failures, err := RunPartial(context.Background(), 20, 4, nil,
		func(trial int, _ *rand.Rand) (int, error) {
			if trial%5 == 0 {
				panic(fmt.Sprintf("trial %d exploded", trial))
			}
			return trial * 2, nil
		}, FailSoftOptions{Tag: "panic-test"})
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 4 {
		t.Fatalf("want 4 panicked trials, got %d: %v", len(failures), failures)
	}
	for _, f := range failures {
		if f.Kind != KindPanic {
			t.Fatalf("trial %d kind = %q, want %q", f.Trial, f.Kind, KindPanic)
		}
		if f.Trial%5 != 0 {
			t.Fatalf("unexpected failed trial %d", f.Trial)
		}
	}
	for i, v := range results {
		if i%5 == 0 {
			if v != 0 {
				t.Fatalf("failed trial %d left non-zero result %d", i, v)
			}
			continue
		}
		if v != i*2 {
			t.Fatalf("results[%d] = %d, want %d", i, v, i*2)
		}
	}
}

func TestRunPartialContinuesPastErrors(t *testing.T) {
	sentinel := errors.New("boom")
	var ran atomic.Int64
	results, failures, err := RunPartial(context.Background(), 200, 4, nil,
		func(trial int, _ *rand.Rand) (int, error) {
			ran.Add(1)
			if trial%3 == 0 {
				return 0, sentinel
			}
			return trial, nil
		}, FailSoftOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n := ran.Load(); n != 200 {
		t.Fatalf("fail-soft run stopped early: %d of 200 trials ran", n)
	}
	if len(results) != 200 {
		t.Fatalf("results length %d", len(results))
	}
	for _, f := range failures {
		if !errors.Is(f.Err, sentinel) {
			t.Fatalf("failure lost its cause: %v", f.Err)
		}
		if !errors.Is(f, sentinel) {
			t.Fatalf("TrialError does not unwrap to the cause: %v", f)
		}
	}
	// Failures are ordered by trial index.
	for i := 1; i < len(failures); i++ {
		if failures[i].Trial <= failures[i-1].Trial {
			t.Fatalf("failures out of order: %v", failures)
		}
	}
}

// TestRunPartialDeadline is the satellite requirement: a per-trial deadline
// converts a slow trial into a TrialError instead of stalling the sweep.
func TestRunPartialDeadline(t *testing.T) {
	start := time.Now()
	results, failures, err := RunPartial(context.Background(), 8, 2, nil,
		func(trial int, _ *rand.Rand) (int, error) {
			if trial == 3 {
				time.Sleep(5 * time.Second) // would stall the run for seconds
			}
			return trial, nil
		}, FailSoftOptions{TrialTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not cut the slow trial off (took %v)", elapsed)
	}
	if len(failures) != 1 || failures[0].Trial != 3 || failures[0].Kind != KindDeadline {
		t.Fatalf("want one deadline failure on trial 3, got %v", failures)
	}
	for i, v := range results {
		if i != 3 && v != i {
			t.Fatalf("results[%d] = %d", i, v)
		}
	}
}

// TestRunPartialCtxCancel is the satellite requirement: ctx canceled mid-run
// returns ctx.Err() alongside the partial results.
func TestRunPartialCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	go func() {
		for ran.Load() == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()
	results, _, err := RunPartial(ctx, 1_000_000, 2, nil,
		func(trial int, _ *rand.Rand) (int, error) {
			ran.Add(1)
			time.Sleep(10 * time.Microsecond)
			return trial + 1, nil
		}, FailSoftOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := ran.Load(); n >= 1_000_000 {
		t.Fatal("cancellation did not stop the run early")
	}
	if len(results) != 1_000_000 {
		t.Fatalf("results slice must keep full length, got %d", len(results))
	}
	completed := 0
	for _, v := range results {
		if v != 0 {
			completed++
		}
	}
	if completed == 0 || completed >= 1_000_000 {
		t.Fatalf("want partial results, got %d completed", completed)
	}
}

// TestRunContextCancelReturnsCtxErr is the Run-side half of the satellite:
// the fail-hard executor also surfaces ctx.Err() on cancellation (the
// pre-existing TestRunContextCancel covers the mid-run case; this pins the
// already-canceled one).
func TestRunContextCancelReturnsCtxErr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, 100, 2, nil, func(trial int, _ *rand.Rand) (int, error) {
		return trial, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// flakyTrial fails deterministically based on its rng draw: the base seed's
// first draw decides failure, so a retry (different seed) usually recovers.
// Everything is a pure function of the attempt seed — exactly the situation
// the deterministic retry policy is designed for.
func flakyTrial(trial int, rng *rand.Rand) (float64, error) {
	x := rng.Float64()
	if x < 0.4 {
		return 0, fmt.Errorf("flaky draw %v", x)
	}
	for i := 0; i < 5+trial%3; i++ {
		x += rng.Float64()
	}
	return x, nil
}

// TestRunPartialBitIdenticalAcrossWorkers is the satellite determinism
// requirement: RunPartial — with injected retries in play — returns
// bit-identical results and identical TrialError lists for workers=1 and
// workers=GOMAXPROCS.
func TestRunPartialBitIdenticalAcrossWorkers(t *testing.T) {
	seed := func(trial int) int64 { return 99*1_000_003 + int64(trial)*10_007 }
	run := func(workers int) ([]float64, []TrialError) {
		results, failures, err := RunPartial(context.Background(), 128, workers, seed, flakyTrial,
			FailSoftOptions{MaxAttempts: 2})
		if err != nil {
			t.Fatal(err)
		}
		return results, failures
	}
	baseRes, baseFail := run(1)
	if len(baseFail) == 0 {
		t.Fatal("test needs some trials to exhaust retries; tune the flaky threshold")
	}
	retried := false
	for _, f := range baseFail {
		if f.Attempts > 1 {
			retried = true
		}
	}
	if !retried {
		t.Fatal("no retries were exercised")
	}
	for _, workers := range []int{2, 4, 8, 0} {
		gotRes, gotFail := run(workers)
		for i := range baseRes {
			if gotRes[i] != baseRes[i] {
				t.Fatalf("workers=%d diverges at trial %d: %v != %v", workers, i, gotRes[i], baseRes[i])
			}
		}
		if !equalFailures(gotFail, baseFail) {
			t.Fatalf("workers=%d failure list diverges:\n%v\nvs\n%v", workers, gotFail, baseFail)
		}
	}
}

// equalFailures compares everything but the error text pointer identity.
func equalFailures(a, b []TrialError) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Trial != b[i].Trial || a[i].Seed != b[i].Seed ||
			a[i].Attempts != b[i].Attempts || a[i].Kind != b[i].Kind ||
			a[i].Err.Error() != b[i].Err.Error() {
			return false
		}
	}
	return true
}

// TestRunPartialRetrySeedDerivation pins the retry seeding discipline: a
// retried trial's attempt k runs with RetrySeed(seed(t), k), observable from
// inside the trial function.
func TestRunPartialRetrySeedDerivation(t *testing.T) {
	base := int64(12345)
	wantFirst := rand.New(rand.NewSource(RetrySeed(base, 0))).Int63()
	wantSecond := rand.New(rand.NewSource(RetrySeed(base, 1))).Int63()
	if wantFirst == wantSecond {
		t.Fatal("retry seed derivation produced identical streams")
	}
	var seen []int64
	_, failures, err := RunPartial(context.Background(), 1, 1,
		func(int) int64 { return base },
		func(trial int, rng *rand.Rand) (int, error) {
			seen = append(seen, rng.Int63())
			return 0, errors.New("always fails")
		}, FailSoftOptions{MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("want 2 attempts, saw %d", len(seen))
	}
	if seen[0] != wantFirst || seen[1] != wantSecond {
		t.Fatalf("attempt streams %v, want [%d %d]", seen, wantFirst, wantSecond)
	}
	if len(failures) != 1 || failures[0].Attempts != 2 || failures[0].Seed != RetrySeed(base, 1) {
		t.Fatalf("failure should carry the final attempt's seed: %+v", failures)
	}
}

// TestRunPartialNoFailureMatchesRun: on an all-success workload, RunPartial
// computes exactly what Run computes (the no-failure path is the same seeded
// computation, so fail-soft mode can be toggled without changing results).
func TestRunPartialNoFailureMatchesRun(t *testing.T) {
	seed := func(trial int) int64 { return 7*1_000_003 + int64(trial)*10_007 }
	fn := func(trial int, rng *rand.Rand) (float64, error) {
		x := 0.0
		for i := 0; i < 8+trial%4; i++ {
			x += rng.Float64()
		}
		return x, nil
	}
	want, err := Run(context.Background(), 64, 4, seed, fn)
	if err != nil {
		t.Fatal(err)
	}
	got, failures, err := RunPartial(context.Background(), 64, 4, seed, fn, FailSoftOptions{MaxAttempts: 3})
	if err != nil || len(failures) != 0 {
		t.Fatalf("unexpected failures: %v, %v", failures, err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("RunPartial diverges from Run on the no-failure path")
	}
}

func TestRunPartialCustomRetryable(t *testing.T) {
	transient := errors.New("transient")
	fatal := errors.New("fatal")
	var attempts atomic.Int64
	_, failures, err := RunPartial(context.Background(), 2, 1, nil,
		func(trial int, _ *rand.Rand) (int, error) {
			attempts.Add(1)
			if trial == 0 {
				return 0, transient
			}
			return 0, fatal
		}, FailSoftOptions{
			MaxAttempts: 3,
			Retryable:   func(err error, panicked bool) bool { return errors.Is(err, transient) },
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 2 {
		t.Fatalf("want 2 failures, got %v", failures)
	}
	if failures[0].Attempts != 3 {
		t.Fatalf("transient trial should exhaust attempts, got %d", failures[0].Attempts)
	}
	if failures[1].Attempts != 1 {
		t.Fatalf("fatal trial should not retry, got %d", failures[1].Attempts)
	}
}

func TestRunPartialEdgeCases(t *testing.T) {
	res, failures, err := RunPartial(context.Background(), 0, 4, nil,
		func(int, *rand.Rand) (int, error) { return 1, nil }, FailSoftOptions{})
	if err != nil || res != nil || failures != nil {
		t.Fatalf("n=0: (%v, %v, %v)", res, failures, err)
	}
	res, failures, err = RunPartial[int](nil, 3, 64, nil,
		func(trial int, _ *rand.Rand) (int, error) { return trial, nil }, FailSoftOptions{})
	if err != nil || len(res) != 3 || len(failures) != 0 {
		t.Fatalf("workers>n with nil ctx: (%v, %v, %v)", res, failures, err)
	}
}

func TestRunPartialNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil trial function must panic")
		}
	}()
	RunPartial[int](context.Background(), 1, 1, nil, nil, FailSoftOptions{})
}
