// Package ilp implements branch-and-bound for (mixed) 0/1 integer linear
// programs on top of the internal/lp simplex solver. It is the engine behind
// the paper's exact "ILP" algorithm: instances are the per-request
// reliability-augmentation programs of Section 4, whose LP relaxations are
// nearly integral, so trees stay small.
//
// The search is best-bound with a depth-first dive on ties, most-fractional
// branching, and an LP-rounding incumbent heuristic at every node. Node and
// pivot budgets make worst-case behaviour predictable; the result reports
// whether optimality was proven.
//
// Node relaxations reuse one mutable copy of the model — branching bound
// changes are applied before each solve and undone after — and each child
// starts phase 2 directly from its parent's optimal basis, falling back to
// a cold two-phase solve only when the warm start cannot be installed or
// does not conclude optimal.
package ilp

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/lp"
	"repro/internal/obs"
)

// intTol is how close to an integer an LP value must be to count as integral.
const intTol = 1e-6

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxNodes bounds the number of explored nodes; <=0 means 200000.
	MaxNodes int
	// GapTol stops the search when (incumbent-bound)/max(1,|incumbent|)
	// falls below it; <=0 means prove exact optimality (1e-9).
	GapTol float64
}

func (o Options) withDefaults() Options {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 200000
	}
	if o.GapTol <= 0 {
		o.GapTol = 1e-9
	}
	return o
}

// Result is the outcome of a branch-and-bound run.
type Result struct {
	Status    lp.Status // Optimal, Infeasible, or IterLimit (budget exhausted with/without incumbent)
	Objective float64
	X         []float64
	Nodes     int     // nodes explored
	Depth     int     // maximum tree depth among explored nodes (root = 0)
	Pivots    int     // simplex pivots over root + node relaxations (rounding re-solves excluded)
	Proven    bool    // true if optimality was proven within budgets
	Gap       float64 // remaining relative gap when !Proven and an incumbent exists
	WarmHits  int     // node relaxations answered by a warm-started phase 2
	ColdRuns  int     // node relaxations that needed the cold two-phase path
}

// Solve optimizes the model requiring the variables listed in intVars to take
// integer values. Integer variables must have finite bounds (in this repo
// they are 0/1); an infinite bound is reported as an error. The model is not
// mutated. Every run records its node count, max depth, simplex pivot total,
// and warm-start outcomes into the default obs registry (ilp_nodes,
// ilp_depth, ilp_lp_pivots histograms; ilp_warmstart_hits, ilp_cold_restarts
// counters).
func Solve(m *lp.Model, intVars []int, opt Options) (*Result, error) {
	res, err := solve(m, intVars, opt)
	if err != nil {
		return nil, err
	}
	r := obs.Default()
	r.Histogram("ilp_nodes", obs.CountBuckets).Observe(float64(res.Nodes))
	r.Histogram("ilp_depth", obs.CountBuckets).Observe(float64(res.Depth))
	r.Histogram("ilp_lp_pivots", obs.CountBuckets).Observe(float64(res.Pivots))
	r.Counter("ilp_warmstart_hits").Add(int64(res.WarmHits))
	r.Counter("ilp_cold_restarts").Add(int64(res.ColdRuns))
	return res, nil
}

func solve(m *lp.Model, intVars []int, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	for _, v := range intVars {
		lb, ub := m.VarBounds(v)
		if math.IsInf(lb, -1) || math.IsInf(ub, 1) {
			return nil, fmt.Errorf("ilp: integer variable %d has infinite bounds", v)
		}
	}

	sense := m.Sense()
	better := func(a, b float64) bool { // is a better than b?
		if sense == lp.Maximize {
			return a > b
		}
		return a < b
	}

	ws := lp.AcquireWorkspace()
	defer lp.ReleaseWorkspace(ws)

	// One mutable copy serves every node relaxation: branching fixes are
	// bound changes applied before the solve and undone (from m, which is
	// never touched) afterwards. A second copy serves the rounding
	// heuristic, which fixes all integer variables at once.
	work := m.Clone()
	roundWork := m.Clone()

	rootSol := work.SolveWithWorkspace(ws)
	res := &Result{Status: lp.Infeasible, Pivots: rootSol.Iterations}
	switch rootSol.Status {
	case lp.Infeasible:
		return res, nil
	case lp.Unbounded:
		res.Status = lp.Unbounded
		return res, nil
	case lp.IterLimit:
		res.Status = lp.IterLimit
		return res, nil
	}
	rootBasis := ws.FinalBasis(nil)

	var (
		incumbent    []float64
		incumbentObj float64
		haveInc      bool
	)
	consider := func(x []float64, obj float64) {
		if !haveInc || better(obj, incumbentObj) {
			incumbent = append([]float64(nil), x...)
			incumbentObj = obj
			haveInc = true
		}
	}

	// Try rounding the root solution for an initial incumbent.
	if x, obj, ok := roundToFeasible(m, roundWork, ws, intVars, rootSol.X); ok {
		consider(x, obj)
	}

	pq := &nodeHeap{better: better}
	pq.push(nodeEntry{bound: rootSol.Objective, depth: 0, basis: rootBasis})
	nodes := 0

	bestBound := rootSol.Objective
	for pq.len() > 0 && nodes < opt.MaxNodes {
		ent := pq.pop()
		nodes++
		if ent.depth > res.Depth {
			res.Depth = ent.depth
		}
		// Prune against incumbent.
		if haveInc && !better(ent.bound, incumbentObj) &&
			math.Abs(ent.bound-incumbentObj) > 1e-12 {
			continue
		}

		for _, f := range ent.fixes {
			work.SetVarBounds(f.v, f.val, f.val)
		}
		sol, warm := solveNode(work, ws, ent.basis)
		res.Pivots += sol.Iterations
		if warm {
			res.WarmHits++
		} else {
			res.ColdRuns++
		}
		if sol.Status != lp.Optimal {
			undoFixes(work, m, ent.fixes)
			continue
		}
		childBasis := ws.FinalBasis(nil)
		undoFixes(work, m, ent.fixes)
		if haveInc && !better(sol.Objective, incumbentObj) &&
			math.Abs(sol.Objective-incumbentObj) > intTol {
			continue
		}

		frac := mostFractional(sol.X, intVars)
		if frac < 0 {
			// Integral solution.
			consider(snapIntegers(sol.X, intVars), sol.Objective)
			continue
		}
		if x, obj, ok := roundToFeasible(m, roundWork, ws, intVars, sol.X); ok {
			consider(x, obj)
		}

		lbv := math.Floor(sol.X[frac])
		ubv := lbv + 1
		varLB, varUB := m.VarBounds(frac)
		for _, f := range ent.fixes {
			if f.v == frac {
				varLB, varUB = f.val, f.val
			}
		}
		if lbv >= varLB {
			down := append(append([]fix(nil), ent.fixes...), fix{v: frac, val: lbv})
			pq.push(nodeEntry{fixes: down, bound: sol.Objective, depth: ent.depth + 1, basis: childBasis})
		}
		if ubv <= varUB {
			up := append(append([]fix(nil), ent.fixes...), fix{v: frac, val: ubv})
			pq.push(nodeEntry{fixes: up, bound: sol.Objective, depth: ent.depth + 1, basis: childBasis})
		}

		// Termination by gap.
		if haveInc {
			bestBound = incumbentObj
			if pq.len() > 0 {
				bestBound = pq.peekBound()
			}
			gap := math.Abs(bestBound-incumbentObj) / math.Max(1, math.Abs(incumbentObj))
			if gap <= opt.GapTol {
				res.Status = lp.Optimal
				res.Objective = incumbentObj
				res.X = incumbent
				res.Nodes = nodes
				res.Proven = true
				return res, nil
			}
		}
	}

	res.Nodes = nodes
	if haveInc {
		res.Objective = incumbentObj
		res.X = incumbent
		if pq.len() == 0 {
			res.Status = lp.Optimal
			res.Proven = true
		} else {
			res.Status = lp.IterLimit
			res.Gap = math.Abs(pq.peekBound()-incumbentObj) / math.Max(1, math.Abs(incumbentObj))
		}
		return res, nil
	}
	if pq.len() == 0 {
		res.Status = lp.Infeasible
	} else {
		res.Status = lp.IterLimit
	}
	return res, nil
}

// solveNode evaluates one node relaxation: warm-started phase 2 from the
// parent basis when possible, cold two-phase otherwise. The bool result
// reports whether the warm path answered.
func solveNode(work *lp.Model, ws *lp.Workspace, basis []int) (*lp.Solution, bool) {
	if len(basis) > 0 {
		if sol, ok := work.SolveWarm(ws, basis, 0); ok && sol.Status == lp.Optimal {
			return sol, true
		}
	}
	return work.SolveWithWorkspace(ws), false
}

// undoFixes restores the bounds changed by a node's fixes from the pristine
// model.
func undoFixes(work, orig *lp.Model, fixes []fix) {
	for _, f := range fixes {
		lb, ub := orig.VarBounds(f.v)
		work.SetVarBounds(f.v, lb, ub)
	}
}

type fix struct {
	v   int
	val float64
}

// mostFractional returns the integer variable whose LP value is farthest from
// an integer, or -1 when all are integral.
func mostFractional(x []float64, intVars []int) int {
	best, bestDist := -1, intTol
	for _, v := range intVars {
		f := x[v] - math.Floor(x[v])
		d := math.Min(f, 1-f)
		if d > bestDist {
			bestDist = d
			best = v
		}
	}
	return best
}

// snapIntegers rounds near-integral entries exactly.
func snapIntegers(x []float64, intVars []int) []float64 {
	out := append([]float64(nil), x...)
	for _, v := range intVars {
		out[v] = math.Round(out[v])
	}
	return out
}

// roundToFeasible rounds the fractional LP point and re-solves the LP with
// the integers fixed, yielding a feasible mixed solution when one exists.
// Variables are rounded to the nearest integer; ties and capacity conflicts
// are resolved by the LP itself reporting infeasibility. sub is a scratch
// clone of m whose bounds are mutated for the solve and restored before
// returning.
func roundToFeasible(m, sub *lp.Model, ws *lp.Workspace, intVars []int, x []float64) ([]float64, float64, bool) {
	for _, v := range intVars {
		r := math.Round(x[v])
		lb, ub := m.VarBounds(v)
		if r < lb {
			r = math.Ceil(lb)
		}
		if r > ub {
			r = math.Floor(ub)
		}
		sub.SetVarBounds(v, r, r)
	}
	sol := sub.SolveWithWorkspace(ws)
	for _, v := range intVars {
		lb, ub := m.VarBounds(v)
		sub.SetVarBounds(v, lb, ub)
	}
	if sol.Status != lp.Optimal {
		return nil, 0, false
	}
	return snapIntegers(sol.X, intVars), sol.Objective, true
}

// nodeEntry is a frontier node ordered by bound (best-bound first), breaking
// ties by depth (deeper first: dive).
type nodeEntry struct {
	fixes []fix
	bound float64
	depth int
	basis []int // parent's optimal basis, the warm-start seed
}

type nodeHeap struct {
	items  []nodeEntry
	better func(a, b float64) bool
}

func (h *nodeHeap) len() int { return len(h.items) }

func (h *nodeHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.bound != b.bound {
		return h.better(a.bound, b.bound)
	}
	return a.depth > b.depth
}

func (h *nodeHeap) push(e nodeEntry) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.less(i, p) {
			h.items[i], h.items[p] = h.items[p], h.items[i]
			i = p
		} else {
			break
		}
	}
}

func (h *nodeHeap) pop() nodeEntry {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.less(l, small) {
			small = l
		}
		if r < len(h.items) && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}

func (h *nodeHeap) peekBound() float64 { return h.items[0].bound }

// SortVarsByFraction returns intVars ordered by decreasing fractionality of x
// (exported for tests and diagnostics).
func SortVarsByFraction(x []float64, intVars []int) []int {
	out := append([]int(nil), intVars...)
	fracOf := func(v int) float64 {
		f := x[v] - math.Floor(x[v])
		return math.Min(f, 1-f)
	}
	sort.SliceStable(out, func(i, j int) bool { return fracOf(out[i]) > fracOf(out[j]) })
	return out
}
