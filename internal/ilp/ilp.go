// Package ilp implements branch-and-bound for (mixed) 0/1 integer linear
// programs on top of the internal/lp simplex solver. It is the engine behind
// the paper's exact "ILP" algorithm: instances are the per-request
// reliability-augmentation programs of Section 4, whose LP relaxations are
// nearly integral, so trees stay small.
//
// The search is best-bound with a depth-first dive on ties, most-fractional
// branching, and an LP-rounding incumbent heuristic at every node. Node and
// pivot budgets make worst-case behaviour predictable; the result reports
// whether optimality was proven.
//
// Node relaxations reuse one mutable copy of the model — branching bound
// changes are applied before each solve and undone after — and each child
// starts phase 2 directly from its parent's optimal basis, falling back to
// a cold two-phase solve only when the warm start cannot be installed or
// does not conclude optimal.
package ilp

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/lp"
	"repro/internal/obs"
)

// intTol is how close to an integer an LP value must be to count as integral.
const intTol = 1e-6

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxNodes bounds the number of explored nodes; <=0 means 200000.
	MaxNodes int
	// GapTol stops the search when (incumbent-bound)/max(1,|incumbent|)
	// falls below it; <=0 means prove exact optimality (1e-9).
	GapTol float64
	// Workers is the number of goroutines evaluating node relaxations
	// (<=0 means 1). The explored tree, incumbent trajectory, and every
	// Result field are bit-identical at any worker count: nodes are claimed
	// from a fixed-width speculation window in index order and their results
	// committed in that same order (see solve).
	Workers int
	// TraceIncumbent, when non-nil, is invoked (from the commit goroutine,
	// in deterministic commit order) every time the incumbent improves —
	// with the 1-based sequence number of the node that produced it and the
	// new objective. Sequence 0 is the root rounding heuristic. This is a
	// test/diagnostic hook for pinning the incumbent trajectory.
	TraceIncumbent func(node int, obj float64)
}

// speculationWidth is the size of the per-round claim window: each round
// pops up to this many best-bound nodes, evaluates their LP relaxations in
// parallel, and commits the results in pop order. The width is a constant —
// NOT the worker count — so the set of nodes evaluated per round, and hence
// the entire explored tree, is identical no matter how many workers split
// the window. Workers beyond the width can never find a node to claim.
const speculationWidth = 8

func (o Options) withDefaults() Options {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 200000
	}
	if o.GapTol <= 0 {
		o.GapTol = 1e-9
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Workers > speculationWidth {
		o.Workers = speculationWidth
	}
	return o
}

// Result is the outcome of a branch-and-bound run.
type Result struct {
	Status       lp.Status // Optimal, Infeasible, or IterLimit (budget exhausted with/without incumbent)
	Objective    float64
	X            []float64
	Nodes        int     // nodes explored
	Depth        int     // maximum tree depth among explored nodes (root = 0)
	Pivots       int     // simplex pivots over root + node relaxations (rounding re-solves excluded)
	Proven       bool    // true if optimality was proven within budgets
	Gap          float64 // remaining relative gap when !Proven and an incumbent exists
	WarmHits     int     // node relaxations answered by a warm-started phase 2
	ColdRuns     int     // node relaxations that needed the cold two-phase path
	Claimed      int     // node relaxations evaluated, including speculative ones discarded at commit
	EtaRefreshes int     // simplex basis refactorizations across root + counted node relaxations
}

// Solve optimizes the model requiring the variables listed in intVars to take
// integer values. Integer variables must have finite bounds (in this repo
// they are 0/1); an infinite bound is reported as an error. The model is not
// mutated. Every run records its node count, max depth, simplex pivot total,
// and warm-start outcomes into the default obs registry (ilp_nodes,
// ilp_depth, ilp_lp_pivots histograms; ilp_warmstart_hits, ilp_cold_restarts
// counters).
func Solve(m *lp.Model, intVars []int, opt Options) (*Result, error) {
	res, err := solve(m, intVars, opt)
	if err != nil {
		return nil, err
	}
	r := obs.Default()
	r.Histogram("ilp_nodes", obs.CountBuckets).Observe(float64(res.Nodes))
	r.Histogram("ilp_depth", obs.CountBuckets).Observe(float64(res.Depth))
	r.Histogram("ilp_lp_pivots", obs.CountBuckets).Observe(float64(res.Pivots))
	r.Counter("ilp_warmstart_hits").Add(int64(res.WarmHits))
	r.Counter("ilp_cold_restarts").Add(int64(res.ColdRuns))
	r.Counter("ilp_bnb_nodes_claimed").Add(int64(res.Claimed))
	r.Counter("lp_eta_refreshes").Add(int64(res.EtaRefreshes))
	return res, nil
}

func solve(m *lp.Model, intVars []int, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	for _, v := range intVars {
		lb, ub := m.VarBounds(v)
		if math.IsInf(lb, -1) || math.IsInf(ub, 1) {
			return nil, fmt.Errorf("ilp: integer variable %d has infinite bounds", v)
		}
	}

	sense := m.Sense()
	better := func(a, b float64) bool { // is a better than b?
		if sense == lp.Maximize {
			return a > b
		}
		return a < b
	}

	// Worker contexts: each owns a mutable model copy for node relaxations
	// (branching bound changes applied before the solve, undone after), a
	// second copy for the rounding heuristic, and a workspace arena, so node
	// evaluations from different workers never share mutable state and the
	// resolves stay alloc-free.
	wcs := make([]*workerCtx, opt.Workers)
	for w := range wcs {
		wcs[w] = &workerCtx{work: m.Clone(), roundWork: m.Clone(), ws: lp.AcquireWorkspace()}
		defer lp.ReleaseWorkspace(wcs[w].ws)
	}
	ws := wcs[0].ws

	rootSol := wcs[0].work.SolveWithWorkspace(ws)
	res := &Result{Status: lp.Infeasible, Pivots: rootSol.Iterations, EtaRefreshes: rootSol.EtaRefreshes}
	switch rootSol.Status {
	case lp.Infeasible:
		return res, nil
	case lp.Unbounded:
		res.Status = lp.Unbounded
		return res, nil
	case lp.IterLimit:
		res.Status = lp.IterLimit
		return res, nil
	}
	rootBasis := ws.FinalBasis(nil)

	var (
		incumbent    []float64
		incumbentObj float64
		haveInc      bool
		nodes        int
	)
	consider := func(x []float64, obj float64) {
		if !haveInc || better(obj, incumbentObj) {
			incumbent = append([]float64(nil), x...)
			incumbentObj = obj
			haveInc = true
			if opt.TraceIncumbent != nil {
				opt.TraceIncumbent(nodes, obj)
			}
		}
	}

	// Try rounding the root solution for an initial incumbent.
	if x, obj, ok := roundToFeasible(m, wcs[0].roundWork, ws, intVars, rootSol.X); ok {
		consider(x, obj)
	}

	pq := &nodeHeap{better: better}
	pq.push(nodeEntry{bound: rootSol.Objective, depth: 0, basis: rootBasis})

	// Deterministic parallel exploration: each round pops up to
	// speculationWidth best-bound nodes in heap order, evaluates their
	// relaxations concurrently (workers claim window slots in index order
	// through an atomic cursor), then commits the results strictly in pop
	// order. All incumbent reads happen at commit, so a node the serial
	// discipline would have pruned just has its speculative result (and its
	// pivot/warm-start statistics) discarded — every Result field is
	// therefore a pure function of the model, independent of worker count
	// and goroutine scheduling.
	batch := make([]nodeEntry, 0, speculationWidth)
	results := make([]nodeResult, speculationWidth)
	for pq.len() > 0 && nodes < opt.MaxNodes {
		width := speculationWidth
		if r := opt.MaxNodes - nodes; width > r {
			width = r
		}
		if width > pq.len() {
			width = pq.len()
		}
		batch = batch[:0]
		for i := 0; i < width; i++ {
			batch = append(batch, pq.pop())
		}
		res.Claimed += width

		if nw := min(opt.Workers, width); nw <= 1 {
			for i := 0; i < width; i++ {
				results[i] = wcs[0].evalNode(m, intVars, &batch[i])
			}
		} else {
			var cursor atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < nw; w++ {
				wg.Add(1)
				go func(wc *workerCtx) {
					defer wg.Done()
					for {
						i := int(cursor.Add(1)) - 1
						if i >= width {
							return
						}
						results[i] = wc.evalNode(m, intVars, &batch[i])
					}
				}(wcs[w])
			}
			wg.Wait()
		}

		for i := 0; i < width; i++ {
			ent := batch[i]
			nodes++
			if ent.depth > res.Depth {
				res.Depth = ent.depth
			}
			// Prune against incumbent.
			if haveInc && !better(ent.bound, incumbentObj) &&
				math.Abs(ent.bound-incumbentObj) > 1e-12 {
				continue
			}
			nr := &results[i]
			res.Pivots += nr.sol.Iterations
			res.EtaRefreshes += nr.sol.EtaRefreshes
			if nr.warm {
				res.WarmHits++
			} else {
				res.ColdRuns++
			}
			if nr.sol.Status != lp.Optimal {
				continue
			}
			if haveInc && !better(nr.sol.Objective, incumbentObj) &&
				math.Abs(nr.sol.Objective-incumbentObj) > intTol {
				continue
			}

			if nr.frac < 0 {
				// Integral solution.
				consider(snapIntegers(nr.sol.X, intVars), nr.sol.Objective)
				continue
			}
			if nr.roundOK {
				consider(nr.roundX, nr.roundObj)
			}

			lbv := math.Floor(nr.sol.X[nr.frac])
			ubv := lbv + 1
			varLB, varUB := m.VarBounds(nr.frac)
			for _, f := range ent.fixes {
				if f.v == nr.frac {
					varLB, varUB = f.val, f.val
				}
			}
			if lbv >= varLB {
				down := append(append([]fix(nil), ent.fixes...), fix{v: nr.frac, val: lbv})
				pq.push(nodeEntry{fixes: down, bound: nr.sol.Objective, depth: ent.depth + 1, basis: nr.childBasis})
			}
			if ubv <= varUB {
				up := append(append([]fix(nil), ent.fixes...), fix{v: nr.frac, val: ubv})
				pq.push(nodeEntry{fixes: up, bound: nr.sol.Objective, depth: ent.depth + 1, basis: nr.childBasis})
			}

			// Termination by gap. The conceptual frontier includes the not
			// yet committed tail of this round's window (popped in heap
			// order, so batch[i+1] is the best of it) alongside the heap.
			if haveInc {
				bestBound := incumbentObj
				haveBound := false
				if i+1 < width {
					bestBound = batch[i+1].bound
					haveBound = true
				}
				if pq.len() > 0 && (!haveBound || better(pq.peekBound(), bestBound)) {
					bestBound = pq.peekBound()
					haveBound = true
				}
				gap := math.Abs(bestBound-incumbentObj) / math.Max(1, math.Abs(incumbentObj))
				if gap <= opt.GapTol {
					res.Status = lp.Optimal
					res.Objective = incumbentObj
					res.X = incumbent
					res.Nodes = nodes
					res.Proven = true
					return res, nil
				}
			}
		}
	}

	res.Nodes = nodes
	if haveInc {
		res.Objective = incumbentObj
		res.X = incumbent
		if pq.len() == 0 {
			res.Status = lp.Optimal
			res.Proven = true
		} else {
			res.Status = lp.IterLimit
			res.Gap = math.Abs(pq.peekBound()-incumbentObj) / math.Max(1, math.Abs(incumbentObj))
		}
		return res, nil
	}
	if pq.len() == 0 {
		res.Status = lp.Infeasible
	} else {
		res.Status = lp.IterLimit
	}
	return res, nil
}

// workerCtx is one evaluation worker's private state: a mutable model copy
// for node relaxations, a second for the rounding heuristic, and a
// workspace arena. Node evaluation is a pure function of the node entry
// given these, which is what makes speculative parallel evaluation safe.
type workerCtx struct {
	work      *lp.Model
	roundWork *lp.Model
	ws        *lp.Workspace
}

// nodeResult is everything a node evaluation produces; the commit loop
// decides (against the incumbent state at commit time) what survives.
type nodeResult struct {
	sol        *lp.Solution
	warm       bool
	childBasis []int
	frac       int // most-fractional integer variable, -1 when integral
	roundX     []float64
	roundObj   float64
	roundOK    bool
}

// evalNode evaluates one node's relaxation plus its speculative rounding
// probe. It mutates only wc's private state (and restores wc.work's bounds
// from orig before returning).
func (wc *workerCtx) evalNode(orig *lp.Model, intVars []int, ent *nodeEntry) nodeResult {
	for _, f := range ent.fixes {
		wc.work.SetVarBounds(f.v, f.val, f.val)
	}
	sol, warm := solveNode(wc.work, wc.ws, ent.basis)
	undoFixes(wc.work, orig, ent.fixes)
	nr := nodeResult{sol: sol, warm: warm, frac: -1}
	if sol.Status != lp.Optimal {
		return nr
	}
	nr.childBasis = wc.ws.FinalBasis(nil)
	nr.frac = mostFractional(sol.X, intVars)
	if nr.frac >= 0 {
		if x, obj, ok := roundToFeasible(orig, wc.roundWork, wc.ws, intVars, sol.X); ok {
			nr.roundX, nr.roundObj, nr.roundOK = x, obj, true
		}
	}
	return nr
}

// solveNode evaluates one node relaxation: warm-started phase 2 from the
// parent basis when possible, cold two-phase otherwise. The bool result
// reports whether the warm path answered.
func solveNode(work *lp.Model, ws *lp.Workspace, basis []int) (*lp.Solution, bool) {
	if len(basis) > 0 {
		if sol, ok := work.SolveWarm(ws, basis, 0); ok && sol.Status == lp.Optimal {
			return sol, true
		}
	}
	return work.SolveWithWorkspace(ws), false
}

// undoFixes restores the bounds changed by a node's fixes from the pristine
// model.
func undoFixes(work, orig *lp.Model, fixes []fix) {
	for _, f := range fixes {
		lb, ub := orig.VarBounds(f.v)
		work.SetVarBounds(f.v, lb, ub)
	}
}

type fix struct {
	v   int
	val float64
}

// mostFractional returns the integer variable whose LP value is farthest from
// an integer, or -1 when all are integral.
func mostFractional(x []float64, intVars []int) int {
	best, bestDist := -1, intTol
	for _, v := range intVars {
		f := x[v] - math.Floor(x[v])
		d := math.Min(f, 1-f)
		if d > bestDist {
			bestDist = d
			best = v
		}
	}
	return best
}

// snapIntegers rounds near-integral entries exactly.
func snapIntegers(x []float64, intVars []int) []float64 {
	out := append([]float64(nil), x...)
	for _, v := range intVars {
		out[v] = math.Round(out[v])
	}
	return out
}

// roundToFeasible rounds the fractional LP point and re-solves the LP with
// the integers fixed, yielding a feasible mixed solution when one exists.
// Variables are rounded to the nearest integer; ties and capacity conflicts
// are resolved by the LP itself reporting infeasibility. sub is a scratch
// clone of m whose bounds are mutated for the solve and restored before
// returning.
func roundToFeasible(m, sub *lp.Model, ws *lp.Workspace, intVars []int, x []float64) ([]float64, float64, bool) {
	for _, v := range intVars {
		r := math.Round(x[v])
		lb, ub := m.VarBounds(v)
		if r < lb {
			r = math.Ceil(lb)
		}
		if r > ub {
			r = math.Floor(ub)
		}
		sub.SetVarBounds(v, r, r)
	}
	sol := sub.SolveWithWorkspace(ws)
	for _, v := range intVars {
		lb, ub := m.VarBounds(v)
		sub.SetVarBounds(v, lb, ub)
	}
	if sol.Status != lp.Optimal {
		return nil, 0, false
	}
	return snapIntegers(sol.X, intVars), sol.Objective, true
}

// nodeEntry is a frontier node ordered by bound (best-bound first), breaking
// ties by depth (deeper first: dive).
type nodeEntry struct {
	fixes []fix
	bound float64
	depth int
	basis []int // parent's optimal basis, the warm-start seed
}

type nodeHeap struct {
	items  []nodeEntry
	better func(a, b float64) bool
}

func (h *nodeHeap) len() int { return len(h.items) }

func (h *nodeHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.bound != b.bound {
		return h.better(a.bound, b.bound)
	}
	return a.depth > b.depth
}

func (h *nodeHeap) push(e nodeEntry) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.less(i, p) {
			h.items[i], h.items[p] = h.items[p], h.items[i]
			i = p
		} else {
			break
		}
	}
}

func (h *nodeHeap) pop() nodeEntry {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.less(l, small) {
			small = l
		}
		if r < len(h.items) && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}

func (h *nodeHeap) peekBound() float64 { return h.items[0].bound }

// SortVarsByFraction returns intVars ordered by decreasing fractionality of x
// (exported for tests and diagnostics).
func SortVarsByFraction(x []float64, intVars []int) []int {
	out := append([]int(nil), intVars...)
	fracOf := func(v int) float64 {
		f := x[v] - math.Floor(x[v])
		return math.Min(f, 1-f)
	}
	sort.SliceStable(out, func(i, j int) bool { return fracOf(out[i]) > fracOf(out[j]) })
	return out
}
