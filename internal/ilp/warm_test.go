package ilp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
)

// randomGAP builds a random generalized-assignment model with 0/1 variables,
// the workload shape the B&B sees in this repo.
func randomGAP(rng *rand.Rand) (*lp.Model, []int) {
	n := 2 + rng.Intn(6)
	bins := 1 + rng.Intn(3)
	m := lp.NewModel(lp.Maximize)
	var intVars []int
	x := make([][]int, n)
	for i := 0; i < n; i++ {
		x[i] = make([]int, bins)
		rowTerms := make([]lp.Term, 0, bins)
		for b := 0; b < bins; b++ {
			x[i][b] = m.AddVar(0, 1, rng.Float64()*10, "x")
			intVars = append(intVars, x[i][b])
			rowTerms = append(rowTerms, lp.Term{Var: x[i][b], Coeff: 1})
		}
		m.AddConstr(rowTerms, lp.LE, 1, "assign")
	}
	for b := 0; b < bins; b++ {
		capTerms := make([]lp.Term, 0, n)
		for i := 0; i < n; i++ {
			capTerms = append(capTerms, lp.Term{Var: x[i][b], Coeff: 1 + rng.Float64()*3})
		}
		m.AddConstr(capTerms, lp.LE, 2+rng.Float64()*6, "cap")
	}
	return m, intVars
}

// TestWarmStartMatchesColdLP asserts the core warm-start contract at the LP
// level: after solving a model, fixing one binary (the branching move) and
// re-solving warm from the parent basis must agree with the cold two-phase
// solve on status and objective, bit for status and to tight tolerance on
// the objective (X may differ only across alternative optima).
func TestWarmStartMatchesColdLP(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ws := lp.NewWorkspace()
	wsCold := lp.NewWorkspace()
	attempted, installed := 0, 0
	for trial := 0; trial < 120; trial++ {
		m, intVars := randomGAP(rng)
		parent := m.Clone()
		psol := parent.SolveWithWorkspace(ws)
		if psol.Status != lp.Optimal {
			continue
		}
		basis := ws.FinalBasis(nil)

		// Branch: fix a random integer variable to 0 or 1.
		v := intVars[rng.Intn(len(intVars))]
		val := float64(rng.Intn(2))
		child := m.Clone()
		child.SetVarBounds(v, val, val)

		cold := child.SolveWithWorkspace(wsCold)
		attempted++
		warm, ok := child.SolveWarm(ws, basis, 0)
		if !ok {
			continue // install failed; the cold fallback path decides
		}
		installed++
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: warm status %v, cold status %v", trial, warm.Status, cold.Status)
		}
		if warm.Status == lp.Optimal && math.Abs(warm.Objective-cold.Objective) > 1e-7 {
			t.Fatalf("trial %d: warm obj %v, cold obj %v", trial, warm.Objective, cold.Objective)
		}
	}
	if attempted == 0 {
		t.Fatal("no warm starts were attempted; sampler is broken")
	}
	if installed == 0 {
		t.Fatal("no warm start ever installed; the fast path is dead")
	}
}

// TestWarmBBMatchesBruteAndReportsHits runs the full warm-started B&B on
// random instances and checks (a) the optimum still matches exhaustive
// enumeration, and (b) warm starts actually fire on trees that branch, so
// the fast path cannot silently regress to all-cold.
func TestWarmBBMatchesBruteAndReportsHits(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	totalWarm, totalCold := 0, 0
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(10)
		p := make([]float64, n)
		w := make([]float64, n)
		for i := range p {
			p[i] = math.Round(rng.Float64()*20) + 1
			w[i] = math.Round(rng.Float64()*10) + 1
		}
		cap := rng.Float64() * 25
		m := lp.NewModel(lp.Maximize)
		terms := make([]lp.Term, n)
		vars := make([]int, n)
		for i := 0; i < n; i++ {
			vars[i] = m.AddVar(0, 1, p[i], "x")
			terms[i] = lp.Term{Var: vars[i], Coeff: w[i]}
		}
		m.AddConstr(terms, lp.LE, cap, "cap")
		r := mustSolve(t, m, vars, Options{})
		if r.Status != lp.Optimal || !r.Proven {
			t.Fatalf("trial %d: status=%v proven=%v", trial, r.Status, r.Proven)
		}
		if want := bruteKnapsack(p, w, cap); math.Abs(r.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: ilp=%v brute=%v", trial, r.Objective, want)
		}
		if r.WarmHits+r.ColdRuns != r.Nodes {
			t.Fatalf("trial %d: WarmHits %d + ColdRuns %d != Nodes %d",
				trial, r.WarmHits, r.ColdRuns, r.Nodes)
		}
		totalWarm += r.WarmHits
		totalCold += r.ColdRuns
	}
	if totalWarm == 0 {
		t.Fatalf("no warm-start hit across all trials (cold runs: %d); the warm path never fires", totalCold)
	}
}
