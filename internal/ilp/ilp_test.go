package ilp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
	"repro/internal/obs"
)

// mustSolve runs Solve and fails the test on a model-validation error.
func mustSolve(t *testing.T, m *lp.Model, intVars []int, opt Options) *Result {
	t.Helper()
	r, err := Solve(m, intVars, opt)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return r
}

// bruteKnapsack solves 0/1 knapsack max Σp x, Σw x <= cap exactly by
// enumeration (n <= ~20).
func bruteKnapsack(p, w []float64, cap float64) float64 {
	n := len(p)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		var tp, tw float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				tp += p[i]
				tw += w[i]
			}
		}
		if tw <= cap+1e-12 && tp > best {
			best = tp
		}
	}
	return best
}

func TestKnapsackSmall(t *testing.T) {
	p := []float64{6, 10, 12}
	w := []float64{1, 2, 3}
	capV := 5.0
	m := lp.NewModel(lp.Maximize)
	terms := make([]lp.Term, 3)
	vars := make([]int, 3)
	for i := 0; i < 3; i++ {
		vars[i] = m.AddVar(0, 1, p[i], "x")
		terms[i] = lp.Term{Var: vars[i], Coeff: w[i]}
	}
	m.AddConstr(terms, lp.LE, capV, "cap")
	r := mustSolve(t, m, vars, Options{})
	if r.Status != lp.Optimal || !r.Proven {
		t.Fatalf("status=%v proven=%v", r.Status, r.Proven)
	}
	if math.Abs(r.Objective-22) > 1e-6 { // items 2+3
		t.Fatalf("obj=%v, want 22", r.Objective)
	}
	for _, v := range vars {
		x := r.X[v]
		if math.Abs(x-math.Round(x)) > 1e-6 {
			t.Fatalf("non-integral solution %v", r.X)
		}
	}
}

func TestKnapsackRandomAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(12)
		p := make([]float64, n)
		w := make([]float64, n)
		for i := range p {
			p[i] = math.Round(rng.Float64()*20) + 1
			w[i] = math.Round(rng.Float64()*10) + 1
		}
		cap := rng.Float64() * 30
		m := lp.NewModel(lp.Maximize)
		terms := make([]lp.Term, n)
		vars := make([]int, n)
		for i := 0; i < n; i++ {
			vars[i] = m.AddVar(0, 1, p[i], "x")
			terms[i] = lp.Term{Var: vars[i], Coeff: w[i]}
		}
		m.AddConstr(terms, lp.LE, cap, "cap")
		r := mustSolve(t, m, vars, Options{})
		if r.Status != lp.Optimal {
			t.Fatalf("trial %d: status %v", trial, r.Status)
		}
		want := bruteKnapsack(p, w, cap)
		if math.Abs(r.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: ilp=%v brute=%v", trial, r.Objective, want)
		}
	}
}

// bruteGAP exhaustively solves min-cost assignment of items to bins with
// capacities; assignment optional (item may stay unassigned), maximizing
// profit.
func bruteGAP(profit [][]float64, size []float64, capV []float64) float64 {
	n := len(size)
	m := len(capV)
	var rec func(i int, used []float64) float64
	rec = func(i int, used []float64) float64 {
		if i == n {
			return 0
		}
		best := rec(i+1, used) // skip item
		for b := 0; b < m; b++ {
			if used[b]+size[i] <= capV[b]+1e-12 {
				used[b] += size[i]
				if v := profit[i][b] + rec(i+1, used); v > best {
					best = v
				}
				used[b] -= size[i]
			}
		}
		return best
	}
	return rec(0, make([]float64, m))
}

func TestGAPRandomAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(6)
		bins := 1 + rng.Intn(3)
		profit := make([][]float64, n)
		size := make([]float64, n)
		capV := make([]float64, bins)
		for b := range capV {
			capV[b] = 2 + rng.Float64()*6
		}
		for i := 0; i < n; i++ {
			size[i] = 1 + rng.Float64()*3
			profit[i] = make([]float64, bins)
			for b := 0; b < bins; b++ {
				profit[i][b] = rng.Float64() * 10
			}
		}
		m := lp.NewModel(lp.Maximize)
		var intVars []int
		x := make([][]int, n)
		for i := 0; i < n; i++ {
			x[i] = make([]int, bins)
			rowTerms := make([]lp.Term, 0, bins)
			for b := 0; b < bins; b++ {
				x[i][b] = m.AddVar(0, 1, profit[i][b], "x")
				intVars = append(intVars, x[i][b])
				rowTerms = append(rowTerms, lp.Term{Var: x[i][b], Coeff: 1})
			}
			m.AddConstr(rowTerms, lp.LE, 1, "assign")
		}
		for b := 0; b < bins; b++ {
			capTerms := make([]lp.Term, 0, n)
			for i := 0; i < n; i++ {
				capTerms = append(capTerms, lp.Term{Var: x[i][b], Coeff: size[i]})
			}
			m.AddConstr(capTerms, lp.LE, capV[b], "cap")
		}
		r := mustSolve(t, m, intVars, Options{})
		if r.Status != lp.Optimal {
			t.Fatalf("trial %d: status %v", trial, r.Status)
		}
		want := bruteGAP(profit, size, capV)
		if math.Abs(r.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: ilp=%v brute=%v", trial, r.Objective, want)
		}
	}
}

func TestInfeasibleILP(t *testing.T) {
	m := lp.NewModel(lp.Maximize)
	x := m.AddVar(0, 1, 1, "x")
	y := m.AddVar(0, 1, 1, "y")
	m.AddConstr([]lp.Term{{Var: x, Coeff: 1}, {Var: y, Coeff: 1}}, lp.GE, 3, "impossible")
	r := mustSolve(t, m, []int{x, y}, Options{})
	if r.Status != lp.Infeasible {
		t.Fatalf("status %v, want infeasible", r.Status)
	}
}

func TestIntegerForcing(t *testing.T) {
	// LP optimum is x=2.5; ILP must settle at 2 (maximize x, x<=2.5).
	m := lp.NewModel(lp.Maximize)
	x := m.AddVar(0, 10, 1, "x")
	m.AddConstr([]lp.Term{{Var: x, Coeff: 1}}, lp.LE, 2.5, "cap")
	r := mustSolve(t, m, []int{x}, Options{})
	if r.Status != lp.Optimal || math.Abs(r.Objective-2) > 1e-6 {
		t.Fatalf("status=%v obj=%v, want optimal 2", r.Status, r.Objective)
	}
	// The fractional root forces at least one branch, so the tree must report
	// depth ≥ 1; depth counts edges from the root, so it is < nodes explored.
	if r.Depth < 1 {
		t.Fatalf("fractional root solved with Depth=%d, want >= 1", r.Depth)
	}
	if r.Depth >= r.Nodes {
		t.Fatalf("Depth=%d must be < Nodes=%d", r.Depth, r.Nodes)
	}
	if r.Pivots <= 0 {
		t.Fatalf("Pivots=%d, want > 0 (root + node relaxations)", r.Pivots)
	}
}

func TestIntegralRootHasZeroDepth(t *testing.T) {
	// The LP relaxation is already integral (maximize x, x<=2), so the search
	// never branches: root-only tree, depth 0.
	m := lp.NewModel(lp.Maximize)
	x := m.AddVar(0, 10, 1, "x")
	m.AddConstr([]lp.Term{{Var: x, Coeff: 1}}, lp.LE, 2, "cap")
	r := mustSolve(t, m, []int{x}, Options{})
	if r.Status != lp.Optimal || math.Abs(r.Objective-2) > 1e-6 {
		t.Fatalf("status=%v obj=%v, want optimal 2", r.Status, r.Objective)
	}
	if r.Depth != 0 {
		t.Fatalf("integral root explored to Depth=%d, want 0", r.Depth)
	}
}

func TestDepthBoundedByNodes(t *testing.T) {
	// On random GAP instances the reported depth must stay consistent with
	// the node count: 0 ≤ Depth < Nodes whenever any node was explored.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(5)
		m := lp.NewModel(lp.Maximize)
		terms := make([]lp.Term, n)
		vars := make([]int, n)
		for i := 0; i < n; i++ {
			vars[i] = m.AddVar(0, 1, rng.Float64()*10+1, "x")
			terms[i] = lp.Term{Var: vars[i], Coeff: rng.Float64()*5 + 1}
		}
		m.AddConstr(terms, lp.LE, float64(n), "cap")
		r := mustSolve(t, m, vars, Options{})
		if r.Status != lp.Optimal {
			t.Fatalf("trial %d: status %v", trial, r.Status)
		}
		if r.Depth < 0 {
			t.Fatalf("trial %d: negative Depth %d", trial, r.Depth)
		}
		if r.Nodes > 0 && r.Depth >= r.Nodes {
			t.Fatalf("trial %d: Depth=%d >= Nodes=%d", trial, r.Depth, r.Nodes)
		}
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max x + y, x integer <= 2.5, y continuous <= 0.7 → 2 + 0.7.
	m := lp.NewModel(lp.Maximize)
	x := m.AddVar(0, 10, 1, "x")
	y := m.AddVar(0, 0.7, 1, "y")
	m.AddConstr([]lp.Term{{Var: x, Coeff: 1}}, lp.LE, 2.5, "cx")
	r := mustSolve(t, m, []int{x}, Options{})
	if r.Status != lp.Optimal || math.Abs(r.Objective-2.7) > 1e-6 {
		t.Fatalf("status=%v obj=%v, want 2.7", r.Status, r.Objective)
	}
	if math.Abs(r.X[y]-0.7) > 1e-6 {
		t.Fatalf("continuous var y=%v, want 0.7", r.X[y])
	}
}

func TestMinimizationILP(t *testing.T) {
	// min 3x + 2y s.t. x + y >= 1.5, binaries → x=0,y=1 infeasible (sum 1 <
	// 1.5) so x=1,y=1 cost 5. Wait: need sum >= 1.5 with binaries → both 1.
	m := lp.NewModel(lp.Minimize)
	x := m.AddVar(0, 1, 3, "x")
	y := m.AddVar(0, 1, 2, "y")
	m.AddConstr([]lp.Term{{Var: x, Coeff: 1}, {Var: y, Coeff: 1}}, lp.GE, 1.5, "cover")
	r := mustSolve(t, m, []int{x, y}, Options{})
	if r.Status != lp.Optimal || math.Abs(r.Objective-5) > 1e-6 {
		t.Fatalf("status=%v obj=%v, want 5", r.Status, r.Objective)
	}
}

func TestNodeBudgetReportsGap(t *testing.T) {
	// A knapsack big enough to need some branching, with MaxNodes=1: the
	// result must be either proven quickly or flagged unproven with a gap.
	rng := rand.New(rand.NewSource(9))
	n := 15
	m := lp.NewModel(lp.Maximize)
	terms := make([]lp.Term, n)
	vars := make([]int, n)
	for i := 0; i < n; i++ {
		p := rng.Float64()*10 + 1
		w := rng.Float64()*10 + 1
		vars[i] = m.AddVar(0, 1, p, "x")
		terms[i] = lp.Term{Var: vars[i], Coeff: w}
	}
	m.AddConstr(terms, lp.LE, 25, "cap")
	r := mustSolve(t, m, vars, Options{MaxNodes: 1})
	if r.Status == lp.Optimal && !r.Proven {
		t.Fatal("optimal must imply proven")
	}
	if r.Status == lp.IterLimit && r.X == nil {
		t.Fatal("budgeted run should still carry the rounding incumbent")
	}
}

func TestInfiniteBoundIntegerIsError(t *testing.T) {
	m := lp.NewModel(lp.Maximize)
	x := m.AddVar(0, math.Inf(1), 1, "x")
	r, err := Solve(m, []int{x}, Options{})
	if err == nil {
		t.Fatalf("expected error for unbounded integer var, got result %+v", r)
	}
}

func TestSortVarsByFraction(t *testing.T) {
	x := []float64{0.5, 0.1, 0.9, 1.0}
	got := SortVarsByFraction(x, []int{0, 1, 2, 3})
	if got[0] != 0 {
		t.Fatalf("most fractional should be var 0, got %v", got)
	}
	if got[3] != 3 {
		t.Fatalf("integral var should sort last, got %v", got)
	}
}

// TestSolveRecordsBnBMetrics pins that every Solve records the warm-start,
// node-claim, and eta-refresh counters into the default obs registry — the
// values /metrics exposes (rendering is pinned in internal/obs's exposition
// test).
func TestSolveRecordsBnBMetrics(t *testing.T) {
	reg := obs.Default()
	names := []string{
		"ilp_warmstart_hits", "ilp_cold_restarts",
		"ilp_bnb_nodes_claimed", "lp_eta_refreshes",
	}
	before := make(map[string]int64, len(names))
	for _, n := range names {
		before[n] = reg.Counter(n).Value()
	}

	rng := rand.New(rand.NewSource(17))
	m, vars := randomGAP(rng)
	r := mustSolve(t, m, vars, Options{})
	if r.Claimed < r.Nodes || r.Claimed <= 0 {
		t.Fatalf("claimed=%d nodes=%d: claims must cover every counted node", r.Claimed, r.Nodes)
	}
	if got := reg.Counter("ilp_bnb_nodes_claimed").Value() - before["ilp_bnb_nodes_claimed"]; got != int64(r.Claimed) {
		t.Fatalf("ilp_bnb_nodes_claimed advanced by %d, want %d", got, r.Claimed)
	}
	if got := reg.Counter("ilp_warmstart_hits").Value() - before["ilp_warmstart_hits"]; got != int64(r.WarmHits) {
		t.Fatalf("ilp_warmstart_hits advanced by %d, want %d", got, r.WarmHits)
	}
	if got := reg.Counter("ilp_cold_restarts").Value() - before["ilp_cold_restarts"]; got != int64(r.ColdRuns) {
		t.Fatalf("ilp_cold_restarts advanced by %d, want %d", got, r.ColdRuns)
	}
	if got := reg.Counter("lp_eta_refreshes").Value() - before["lp_eta_refreshes"]; got != int64(r.EtaRefreshes) {
		t.Fatalf("lp_eta_refreshes advanced by %d, want %d", got, r.EtaRefreshes)
	}
}
