package mec

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

func testCatalog() *Catalog {
	return NewCatalog([]FunctionType{
		{Name: "fw", Demand: 200, Reliability: 0.8},
		{Name: "nat", Demand: 300, Reliability: 0.9},
		{Name: "ids", Demand: 400, Reliability: 0.85},
	})
}

func lineNetwork(caps []float64) *Network {
	g := graph.New(len(caps))
	for i := 0; i+1 < len(caps); i++ {
		g.AddEdge(i, i+1)
	}
	return NewNetwork(g, caps, testCatalog())
}

func TestCatalogBasics(t *testing.T) {
	c := testCatalog()
	if c.Size() != 3 {
		t.Fatalf("size %d", c.Size())
	}
	if c.Type(1).Name != "nat" || c.Type(1).ID != 1 {
		t.Fatalf("type 1 = %+v", c.Type(1))
	}
}

func TestCatalogAutoNames(t *testing.T) {
	c := NewCatalog([]FunctionType{{Demand: 100, Reliability: 0.5}})
	if c.Type(0).Name != "f0" {
		t.Fatalf("auto name %q", c.Type(0).Name)
	}
}

func TestCatalogValidation(t *testing.T) {
	for _, bad := range []FunctionType{
		{Demand: 0, Reliability: 0.5},
		{Demand: -1, Reliability: 0.5},
		{Demand: 100, Reliability: 0},
		{Demand: 100, Reliability: 1.2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("catalog entry %+v should panic", bad)
				}
			}()
			NewCatalog([]FunctionType{bad})
		}()
	}
}

func TestCatalogTypeOutOfRangePanics(t *testing.T) {
	c := testCatalog()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Type(9)
}

func TestCloudlets(t *testing.T) {
	n := lineNetwork([]float64{0, 4000, 0, 6000})
	cl := n.Cloudlets()
	if len(cl) != 2 || cl[0] != 1 || cl[1] != 3 {
		t.Fatalf("cloudlets %v", cl)
	}
}

func TestResidualLedger(t *testing.T) {
	n := lineNetwork([]float64{0, 4000})
	if n.Residual(1) != 4000 {
		t.Fatalf("initial residual %v", n.Residual(1))
	}
	n.Consume(1, 1500)
	if n.Residual(1) != 2500 {
		t.Fatalf("after consume %v", n.Residual(1))
	}
	n.Release(1, 500)
	if n.Residual(1) != 3000 {
		t.Fatalf("after release %v", n.Residual(1))
	}
	n.Release(1, 99999) // capped at capacity
	if n.Residual(1) != 4000 {
		t.Fatalf("release should cap at capacity: %v", n.Residual(1))
	}
}

func TestConsumeOverdraftPanics(t *testing.T) {
	n := lineNetwork([]float64{1000})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Consume(0, 1001)
}

func TestSetResidualFraction(t *testing.T) {
	n := lineNetwork([]float64{4000, 8000})
	n.SetResidualFraction(0.25)
	if n.Residual(0) != 1000 || n.Residual(1) != 2000 {
		t.Fatalf("residuals %v %v", n.Residual(0), n.Residual(1))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("fraction > 1 should panic")
		}
	}()
	n.SetResidualFraction(1.5)
}

func TestSnapshotRestore(t *testing.T) {
	n := lineNetwork([]float64{4000, 8000})
	snap := n.ResidualSnapshot()
	n.Consume(0, 4000)
	n.Consume(1, 1234)
	n.RestoreResiduals(snap)
	if n.Residual(0) != 4000 || n.Residual(1) != 8000 {
		t.Fatal("restore failed")
	}
	// snapshot must be a copy, not an alias
	snap[0] = -1
	if n.Residual(0) != 4000 {
		t.Fatal("snapshot aliases internal state")
	}
}

func TestNewNetworkValidation(t *testing.T) {
	g := graph.New(2)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("length mismatch should panic")
			}
		}()
		NewNetwork(g, []float64{1}, testCatalog())
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative capacity should panic")
			}
		}()
		NewNetwork(g, []float64{-5, 0}, testCatalog())
	}()
}

func TestRequestAccessors(t *testing.T) {
	r := NewRequest(7, []int{0, 2, 1}, 0.95, 0, 3)
	if r.Len() != 3 {
		t.Fatalf("len %d", r.Len())
	}
	c := testCatalog()
	rs := r.FunctionReliabilities(c)
	if rs[0] != 0.8 || rs[1] != 0.85 || rs[2] != 0.9 {
		t.Fatalf("reliabilities %v", rs)
	}
	ds := r.Demands(c)
	if ds[0] != 200 || ds[1] != 400 || ds[2] != 300 {
		t.Fatalf("demands %v", ds)
	}
}

func TestRequestValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("empty SFC should panic")
			}
		}()
		NewRequest(0, nil, 0.9, 0, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("bad expectation should panic")
			}
		}()
		NewRequest(0, []int{0}, 0, 0, 0)
	}()
}

func TestPlacementValidate(t *testing.T) {
	// line 0-1-2-3, cloudlets at 1 and 3 (2 hops apart).
	n := lineNetwork([]float64{0, 4000, 0, 6000})
	req := NewRequest(1, []int{0, 1}, 0.9, 0, 3)
	req.Primaries = []int{1, 3}

	ok := &Placement{Request: req, Secondaries: [][]int{{1}, {3, 3}}}
	if err := ok.Validate(n, 1); err != nil {
		t.Fatalf("valid placement rejected: %v", err)
	}

	// secondary at 3 for primary at 1 violates l=1 (distance 2)...
	farWithL1 := &Placement{Request: req, Secondaries: [][]int{{3}, nil}}
	if err := farWithL1.Validate(n, 1); err == nil || !strings.Contains(err.Error(), "hop") {
		t.Fatalf("expected hop violation, got %v", err)
	}
	// ...but is fine with l=2.
	if err := farWithL1.Validate(n, 2); err != nil {
		t.Fatalf("l=2 should allow distance-2 placement: %v", err)
	}

	// secondary on a non-cloudlet AP
	bad := &Placement{Request: req, Secondaries: [][]int{{0}, nil}}
	if err := bad.Validate(n, 1); err == nil || !strings.Contains(err.Error(), "non-cloudlet") {
		t.Fatalf("expected non-cloudlet error, got %v", err)
	}

	// missing primaries
	req2 := NewRequest(2, []int{0}, 0.9, 0, 3)
	incomplete := &Placement{Request: req2, Secondaries: [][]int{nil}}
	if err := incomplete.Validate(n, 1); err == nil {
		t.Fatal("placement without primaries should fail")
	}

	// wrong secondary list length
	req3 := NewRequest(3, []int{0, 1}, 0.9, 0, 3)
	req3.Primaries = []int{1, 3}
	shortLists := &Placement{Request: req3, Secondaries: [][]int{nil}}
	if err := shortLists.Validate(n, 1); err == nil {
		t.Fatal("wrong secondary list count should fail")
	}
}

func TestBackupCounts(t *testing.T) {
	p := &Placement{Secondaries: [][]int{{1, 1, 3}, nil, {5}}}
	ks := p.BackupCounts()
	if ks[0] != 3 || ks[1] != 0 || ks[2] != 1 {
		t.Fatalf("counts %v", ks)
	}
}

func TestForkIsolatesResiduals(t *testing.T) {
	n := lineNetwork([]float64{1000, 1000, 0, 1000})
	n.Consume(0, 100)

	fork := n.Fork(n.ResidualSnapshot())
	if fork.Residual(0) != 900 {
		t.Fatalf("fork residual %v, want 900", fork.Residual(0))
	}
	// Mutating the fork never touches the base, and vice versa.
	fork.Consume(1, 250)
	if n.Residual(1) != 1000 {
		t.Fatalf("base residual changed by fork mutation: %v", n.Residual(1))
	}
	n.Consume(3, 500)
	if fork.Residual(3) != 1000 {
		t.Fatalf("fork residual changed by base mutation: %v", fork.Residual(3))
	}
	// Topology, catalog, and the neighborhood memo are shared: both views
	// return the one canonical neighborhood slice.
	a := n.NeighborsWithinPlus(1, 1)
	b := fork.NeighborsWithinPlus(1, 1)
	if len(a) != len(b) || &a[0] != &b[0] {
		t.Fatalf("fork does not share the neighborhood memo: %p vs %p", a, b)
	}
	if fork.NumNodes() != n.NumNodes() {
		t.Fatalf("fork node count %d != %d", fork.NumNodes(), n.NumNodes())
	}
}

func TestForkLengthMismatchPanics(t *testing.T) {
	n := lineNetwork([]float64{1000, 1000})
	defer func() {
		if recover() == nil {
			t.Fatal("Fork with wrong residual length did not panic")
		}
	}()
	n.Fork([]float64{1})
}

func TestResidualViewInterface(t *testing.T) {
	var v ResidualView = lineNetwork([]float64{10, 0})
	if v.NumNodes() != 2 || v.Residual(0) != 10 {
		t.Fatalf("ResidualView over Network: nodes=%d res0=%v", v.NumNodes(), v.Residual(0))
	}
}
