// Package mec models the mobile edge-cloud network of Section 3: an AP graph
// where a subset of APs host cloudlets with finite computing capacity, a
// catalog of network function types with per-type computing demand and VNF
// reliability, requests with service function chains and reliability
// expectations, and a residual-capacity ledger that records placements.
//
// Capacities and demands are in MHz, following the paper's experiment setup
// (cloudlets 4000–8000 MHz, functions 200–400 MHz).
package mec

import (
	"fmt"
	"sync"

	"repro/internal/graph"
)

// FunctionType describes one entry of the network-function catalog ℱ.
type FunctionType struct {
	ID          int
	Name        string
	Demand      float64 // computing demand c(f) in MHz per VNF instance
	Reliability float64 // reliability r of any single VNF instance, in (0,1]
}

// Catalog is the set ℱ of network function types.
type Catalog struct {
	types []FunctionType
}

// NewCatalog builds a catalog, validating every entry.
func NewCatalog(types []FunctionType) *Catalog {
	c := &Catalog{types: append([]FunctionType(nil), types...)}
	for i := range c.types {
		ft := &c.types[i]
		ft.ID = i
		if ft.Demand <= 0 {
			panic(fmt.Sprintf("mec: function %q demand %v must be positive", ft.Name, ft.Demand))
		}
		if ft.Reliability <= 0 || ft.Reliability > 1 {
			panic(fmt.Sprintf("mec: function %q reliability %v out of (0,1]", ft.Name, ft.Reliability))
		}
		if ft.Name == "" {
			ft.Name = fmt.Sprintf("f%d", i)
		}
	}
	return c
}

// Size returns |ℱ|.
func (c *Catalog) Size() int { return len(c.types) }

// Type returns the function type with the given ID.
func (c *Catalog) Type(id int) FunctionType {
	if id < 0 || id >= len(c.types) {
		panic(fmt.Sprintf("mec: function type %d out of range [0,%d)", id, len(c.types)))
	}
	return c.types[id]
}

// ResidualView is a read-only view over per-node residual capacity. Both the
// mutable Network ledger and immutable copy-on-write forks of it (see Fork)
// satisfy it, which lets serving layers hand solvers a frozen snapshot while
// the live ledger keeps evolving.
type ResidualView interface {
	// Residual returns the residual capacity C'_v of node v in MHz.
	Residual(v int) float64
	// NumNodes returns the number of APs covered by the view.
	NumNodes() int
}

// nbrMemo is the NeighborsWithinPlus memo, held behind a pointer so that
// every Fork of a network shares one canonical cache (the AP graph is
// immutable after construction, so entries are valid across all forks).
type nbrMemo struct {
	mu sync.RWMutex
	m  map[uint64][]int
}

// Network is an MEC network: the AP graph plus cloudlet capacities.
// Capacity[v] == 0 means AP v has no co-located cloudlet.
type Network struct {
	G        *graph.Graph
	Capacity []float64 // total computing capacity C_v per AP, MHz
	residual []float64 // current residual capacity C'_v
	catalog  *Catalog

	// memo memoizes NeighborsWithinPlus per (v, l): the hop-bounded
	// neighborhoods are re-queried for every request built on this network,
	// and the graph never changes after construction.
	memo *nbrMemo
}

var _ ResidualView = (*Network)(nil)

// NewNetwork wraps a graph with cloudlet capacities and a function catalog.
// len(capacity) must equal g.N(). Residual capacity starts at full capacity.
func NewNetwork(g *graph.Graph, capacity []float64, catalog *Catalog) *Network {
	if len(capacity) != g.N() {
		panic(fmt.Sprintf("mec: %d capacities for %d nodes", len(capacity), g.N()))
	}
	for v, c := range capacity {
		if c < 0 {
			panic(fmt.Sprintf("mec: negative capacity %v at node %d", c, v))
		}
	}
	n := &Network{
		G:        g,
		Capacity: append([]float64(nil), capacity...),
		residual: append([]float64(nil), capacity...),
		catalog:  catalog,
		memo:     &nbrMemo{},
	}
	return n
}

// Fork returns a copy-on-write view of the network: it shares the immutable
// topology, total capacities, function catalog, and neighborhood memo with n,
// but owns a private residual ledger initialized from res (copied). Mutating
// the fork's residuals never touches n or any sibling fork, which is what
// lets a micro-batcher place and commit speculatively with no lock held.
// Callers must not mutate the shared Capacity slice.
func (n *Network) Fork(res []float64) *Network {
	if len(res) != len(n.residual) {
		panic(fmt.Sprintf("mec: fork residual length %d != %d nodes", len(res), len(n.residual)))
	}
	return &Network{
		G:        n.G,
		Capacity: n.Capacity,
		residual: append([]float64(nil), res...),
		catalog:  n.catalog,
		memo:     n.memo,
	}
}

// NumNodes returns the number of APs in the network (ResidualView).
func (n *Network) NumNodes() int { return len(n.residual) }

// Catalog returns the function catalog.
func (n *Network) Catalog() *Catalog { return n.catalog }

// NeighborsWithinPlus returns N_l^+(v) = N_l(v) ∪ {v} in ascending order,
// memoized per (v, l) for the lifetime of the network (the AP graph is
// immutable after construction). The returned slice is shared; callers must
// not modify it. Safe for concurrent use.
func (n *Network) NeighborsWithinPlus(v, l int) []int {
	key := uint64(uint32(v))<<32 | uint64(uint32(l))
	n.memo.mu.RLock()
	nbrs, ok := n.memo.m[key]
	n.memo.mu.RUnlock()
	if ok {
		return nbrs
	}
	nbrs = n.G.NeighborsWithinPlus(v, l)
	n.memo.mu.Lock()
	if cached, ok := n.memo.m[key]; ok {
		nbrs = cached // another goroutine won the race; keep one canonical slice
	} else {
		if n.memo.m == nil {
			n.memo.m = make(map[uint64][]int)
		}
		n.memo.m[key] = nbrs
	}
	n.memo.mu.Unlock()
	return nbrs
}

// Cloudlets returns the IDs of APs with nonzero total capacity, ascending.
func (n *Network) Cloudlets() []int {
	var out []int
	for v, c := range n.Capacity {
		if c > 0 {
			out = append(out, v)
		}
	}
	return out
}

// Residual returns the residual capacity C'_v of node v.
func (n *Network) Residual(v int) float64 {
	n.checkNode(v)
	return n.residual[v]
}

// SetResidualFraction resets every cloudlet's residual capacity to
// frac·C_v, modelling the paper's "ratio of residual computing capacity"
// experiment dimension. frac must lie in [0,1].
func (n *Network) SetResidualFraction(frac float64) {
	if frac < 0 || frac > 1 {
		panic(fmt.Sprintf("mec: residual fraction %v out of [0,1]", frac))
	}
	for v := range n.residual {
		n.residual[v] = n.Capacity[v] * frac
	}
}

// Consume reduces the residual capacity of node v by amount.
// It panics if the node would go negative beyond float tolerance.
func (n *Network) Consume(v int, amount float64) {
	n.checkNode(v)
	if amount < 0 {
		panic(fmt.Sprintf("mec: negative consumption %v", amount))
	}
	if n.residual[v]-amount < -1e-6 {
		panic(fmt.Sprintf("mec: node %d over-consumed: residual %v, requested %v", v, n.residual[v], amount))
	}
	n.residual[v] -= amount
	if n.residual[v] < 0 {
		n.residual[v] = 0
	}
}

// Release returns previously consumed capacity to node v, capped at C_v.
func (n *Network) Release(v int, amount float64) {
	n.checkNode(v)
	if amount < 0 {
		panic(fmt.Sprintf("mec: negative release %v", amount))
	}
	n.residual[v] += amount
	if n.residual[v] > n.Capacity[v] {
		n.residual[v] = n.Capacity[v]
	}
}

// ResidualSnapshot returns a copy of all residual capacities.
func (n *Network) ResidualSnapshot() []float64 {
	return append([]float64(nil), n.residual...)
}

// RestoreResiduals overwrites residual capacities from a snapshot.
func (n *Network) RestoreResiduals(snap []float64) {
	if len(snap) != len(n.residual) {
		panic(fmt.Sprintf("mec: snapshot length %d != %d nodes", len(snap), len(n.residual)))
	}
	copy(n.residual, snap)
}

func (n *Network) checkNode(v int) {
	if v < 0 || v >= len(n.residual) {
		panic(fmt.Sprintf("mec: node %d out of range [0,%d)", v, len(n.residual)))
	}
}

// Request is an admitted network-service request: an ordered SFC of function
// type IDs, a reliability expectation ρ, and (once admitted) the cloudlet of
// each primary VNF instance.
type Request struct {
	ID          int
	SFC         []int   // function type IDs, in chain order
	Expectation float64 // ρ_j in (0,1]
	Primaries   []int   // cloudlet per chain position; len == len(SFC) once placed
	Source      int     // source AP of the data traffic (admission framework)
	Destination int     // destination AP
}

// NewRequest validates and returns a request (primaries unset).
func NewRequest(id int, sfc []int, expectation float64, src, dst int) *Request {
	if len(sfc) == 0 {
		panic("mec: empty SFC")
	}
	if expectation <= 0 || expectation > 1 {
		panic(fmt.Sprintf("mec: expectation %v out of (0,1]", expectation))
	}
	return &Request{
		ID:          id,
		SFC:         append([]int(nil), sfc...),
		Expectation: expectation,
		Primaries:   nil,
		Source:      src,
		Destination: dst,
	}
}

// Len returns L_j = |SFC_j|.
func (r *Request) Len() int { return len(r.SFC) }

// FunctionReliabilities returns r_i for every chain position.
func (r *Request) FunctionReliabilities(c *Catalog) []float64 {
	rs := make([]float64, len(r.SFC))
	for i, ft := range r.SFC {
		rs[i] = c.Type(ft).Reliability
	}
	return rs
}

// Demands returns c(f_i) for every chain position.
func (r *Request) Demands(c *Catalog) []float64 {
	ds := make([]float64, len(r.SFC))
	for i, ft := range r.SFC {
		ds[i] = c.Type(ft).Demand
	}
	return ds
}

// Placement records the full outcome for one request: primaries plus the
// secondary instances chosen per chain position.
type Placement struct {
	Request *Request
	// Secondaries[i] lists the cloudlets hosting secondary instances of chain
	// position i (repeats allowed: multiple instances in one cloudlet).
	Secondaries [][]int
}

// BackupCounts returns n_i, the number of secondary instances per position.
func (p *Placement) BackupCounts() []int {
	ks := make([]int, len(p.Secondaries))
	for i, s := range p.Secondaries {
		ks[i] = len(s)
	}
	return ks
}

// Validate checks structural invariants of the placement against the network:
// primaries set for every position, all hosts are cloudlets, and every
// secondary lies within l hops of its primary.
func (p *Placement) Validate(n *Network, l int) error {
	req := p.Request
	if len(req.Primaries) != req.Len() {
		return fmt.Errorf("mec: request %d has %d primaries for %d functions", req.ID, len(req.Primaries), req.Len())
	}
	if len(p.Secondaries) != req.Len() {
		return fmt.Errorf("mec: request %d has %d secondary lists for %d functions", req.ID, len(p.Secondaries), req.Len())
	}
	for i, v := range req.Primaries {
		if n.Capacity[v] <= 0 {
			return fmt.Errorf("mec: primary of position %d on non-cloudlet AP %d", i, v)
		}
		allowed := make(map[int]bool)
		for _, u := range n.NeighborsWithinPlus(v, l) {
			allowed[u] = true
		}
		for _, u := range p.Secondaries[i] {
			if n.Capacity[u] <= 0 {
				return fmt.Errorf("mec: secondary of position %d on non-cloudlet AP %d", i, u)
			}
			if !allowed[u] {
				return fmt.Errorf("mec: secondary of position %d at AP %d violates %d-hop bound from primary %d", i, u, l, v)
			}
		}
	}
	return nil
}
