package lp

import (
	"math/rand"
	"runtime"
	"testing"
)

// contentionModel builds a small dense assignment LP; solving it repeatedly
// from many goroutines exercises the workspace pool's acquire/release path
// under contention (models are read-only during Solve, so sharing one is
// safe).
func contentionModel(n int) *Model {
	rng := rand.New(rand.NewSource(7))
	m := NewModel(Minimize)
	vars := make([][]int, n)
	for i := 0; i < n; i++ {
		vars[i] = make([]int, n)
		for j := 0; j < n; j++ {
			vars[i][j] = m.AddVar(0, 1, rng.Float64()*10, "x")
		}
	}
	for i := 0; i < n; i++ {
		row := make([]Term, 0, n)
		col := make([]Term, 0, n)
		for j := 0; j < n; j++ {
			row = append(row, Term{Var: vars[i][j], Coeff: 1})
			col = append(col, Term{Var: vars[j][i], Coeff: 1})
		}
		m.AddConstr(row, EQ, 1, "r")
		m.AddConstr(col, EQ, 1, "c")
	}
	return m
}

// BenchmarkWorkspacePoolContention measures parallel solves of one shared
// model through the sync.Pool of workspaces — the access pattern of
// engine.Run's trial fan-out. It is skipped under -short and under
// GOMAXPROCS < 2, where no cross-goroutine contention exists to measure
// (`make bench` fails fast in that configuration instead of reporting a
// meaningless number).
func BenchmarkWorkspacePoolContention(b *testing.B) {
	if testing.Short() {
		b.Skip("contention benchmark skipped under -short")
	}
	if p := runtime.GOMAXPROCS(0); p < 2 {
		b.Skipf("GOMAXPROCS=%d: no contention to measure", p)
	}
	m := contentionModel(8)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if s := m.Solve(); s.Status != Optimal {
				b.Errorf("status %v", s.Status)
				return
			}
		}
	})
}
