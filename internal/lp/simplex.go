package lp

import (
	"math"
)

const (
	eps      = 1e-9 // general numeric tolerance
	pivotEps = 1e-7 // minimum magnitude for a pivot element
)

// standardForm is the internal min c'y, Ay = b, y >= 0 representation built
// from a Model. Each model variable maps to either one shifted column
// (finite lb) or a pair of split columns (free variable).
type standardForm struct {
	a        [][]float64 // m rows × n structural+slack+artificial columns
	b        []float64
	c        []float64 // phase-2 costs per column
	n        int       // columns excluding artificials
	nArt     int       // artificial columns (appended at the end)
	basis    []int     // basic column per row
	objShift float64   // constant from lb shifting
	// mapping back to model variables:
	posCol []int // column of the positive part of each model var
	negCol []int // column of the negative part, or -1
	lbs    []float64
	flip   bool // true if the model was Maximize (costs were negated)
}

// Solve optimizes the model with the two-phase simplex method.
func (m *Model) Solve() *Solution {
	return m.SolveWithLimit(0)
}

// SolveWithLimit is Solve with an explicit pivot budget; maxIter <= 0 selects
// an automatic budget proportional to the model size.
func (m *Model) SolveWithLimit(maxIter int) *Solution {
	sf, infeasible := m.toStandardForm()
	if infeasible {
		return &Solution{Status: Infeasible, X: make([]float64, len(m.vars))}
	}
	if maxIter <= 0 {
		size := len(sf.b) + sf.n
		maxIter = 2000 + 40*size
	}
	iters := 0

	// Phase 1: minimize the sum of artificial variables.
	if sf.nArt > 0 {
		phase1 := make([]float64, sf.n+sf.nArt)
		for j := sf.n; j < sf.n+sf.nArt; j++ {
			phase1[j] = 1
		}
		st, it := sf.simplex(phase1, maxIter)
		iters += it
		if st == IterLimit {
			return &Solution{Status: IterLimit, Iterations: iters, X: make([]float64, len(m.vars))}
		}
		if st == Unbounded {
			// Phase 1 is bounded below by 0; an unbounded report signals
			// numerical degeneracy, which we treat as infeasible.
			return &Solution{Status: Infeasible, Iterations: iters, X: make([]float64, len(m.vars))}
		}
		if sf.phaseObjective(phase1) > 1e-7 {
			return &Solution{Status: Infeasible, Iterations: iters, X: make([]float64, len(m.vars))}
		}
		sf.driveOutArtificials()
	}

	// Phase 2: minimize original costs.
	st, it := sf.simplex(sf.c, maxIter)
	iters += it
	switch st {
	case Unbounded:
		return &Solution{Status: Unbounded, Iterations: iters, X: make([]float64, len(m.vars))}
	case IterLimit:
		return &Solution{Status: IterLimit, Iterations: iters, X: make([]float64, len(m.vars))}
	}

	x := sf.extract(len(m.vars))
	obj := 0.0
	for j, v := range m.vars {
		obj += v.obj * x[j]
	}
	return &Solution{Status: Optimal, Objective: obj, X: x, Iterations: iters}
}

// toStandardForm converts the model. The bool result reports trivial
// infeasibility detected during conversion (e.g., empty constraint with an
// unsatisfiable rhs).
func (m *Model) toStandardForm() (*standardForm, bool) {
	nv := len(m.vars)
	sf := &standardForm{
		posCol: make([]int, nv),
		negCol: make([]int, nv),
		lbs:    make([]float64, nv),
		flip:   m.sense == Maximize,
	}

	// Assign structural columns.
	col := 0
	type ubRow struct {
		v  int
		ub float64
	}
	var ubRows []ubRow
	for j, v := range m.vars {
		lb, ub := v.lb, v.ub
		switch {
		case math.IsInf(lb, -1):
			sf.posCol[j] = col
			sf.negCol[j] = col + 1
			sf.lbs[j] = 0
			col += 2
			if !math.IsInf(ub, 1) {
				ubRows = append(ubRows, ubRow{v: j, ub: ub})
			}
		default:
			sf.posCol[j] = col
			sf.negCol[j] = -1
			sf.lbs[j] = lb
			col++
			if !math.IsInf(ub, 1) {
				w := ub - lb
				if w < 0 {
					w = 0
				}
				ubRows = append(ubRows, ubRow{v: j, ub: w})
			}
		}
	}
	nStruct := col

	// Count rows: model constraints + finite upper-bound rows.
	rows := len(m.cons) + len(ubRows)
	a := make([][]float64, rows)
	b := make([]float64, rows)
	rels := make([]Rel, rows)
	for i := range a {
		a[i] = make([]float64, nStruct)
	}

	// Objective in min sense, adjusted for lb shifts.
	c := make([]float64, nStruct)
	objShift := 0.0
	for j, v := range m.vars {
		coef := v.obj
		if sf.flip {
			coef = -coef
		}
		c[sf.posCol[j]] += coef
		if sf.negCol[j] >= 0 {
			c[sf.negCol[j]] -= coef
		}
		objShift += coef * sf.lbs[j]
	}

	for i, con := range m.cons {
		rhs := con.rhs
		for _, t := range con.terms {
			j := t.Var
			a[i][sf.posCol[j]] += t.Coeff
			if sf.negCol[j] >= 0 {
				a[i][sf.negCol[j]] -= t.Coeff
			}
			rhs -= t.Coeff * sf.lbs[j]
		}
		b[i] = rhs
		rels[i] = con.rel
		if len(con.terms) == 0 {
			switch con.rel {
			case LE:
				if rhs < -eps {
					return nil, true
				}
			case GE:
				if rhs > eps {
					return nil, true
				}
			case EQ:
				if math.Abs(rhs) > eps {
					return nil, true
				}
			}
		}
	}
	for k, ur := range ubRows {
		i := len(m.cons) + k
		a[i][sf.posCol[ur.v]] = 1
		if sf.negCol[ur.v] >= 0 {
			a[i][sf.negCol[ur.v]] = -1
		}
		b[i] = ur.ub
		rels[i] = LE
	}

	// Add slack/surplus columns, then fix b >= 0, then artificials.
	slackCol := make([]int, rows)
	nSlack := 0
	for i := range rels {
		if rels[i] == EQ {
			slackCol[i] = -1
			continue
		}
		slackCol[i] = nStruct + nSlack
		nSlack++
	}
	total := nStruct + nSlack
	for i := range a {
		row := make([]float64, total)
		copy(row, a[i])
		if sc := slackCol[i]; sc >= 0 {
			if rels[i] == LE {
				row[sc] = 1
			} else {
				row[sc] = -1
			}
		}
		a[i] = row
	}
	cFull := make([]float64, total)
	copy(cFull, c)

	// Normalize to b >= 0.
	for i := range b {
		if b[i] < 0 {
			for j := range a[i] {
				a[i][j] = -a[i][j]
			}
			b[i] = -b[i]
		}
	}

	// Choose initial basis: a slack column with +1 coefficient if available,
	// otherwise a fresh artificial.
	basis := make([]int, rows)
	var artRows []int
	for i := range a {
		sc := slackCol[i]
		if sc >= 0 && a[i][sc] > 0.5 {
			basis[i] = sc
		} else {
			basis[i] = -1
			artRows = append(artRows, i)
		}
	}
	nArt := len(artRows)
	if nArt > 0 {
		for i := range a {
			row := make([]float64, total+nArt)
			copy(row, a[i])
			a[i] = row
		}
		for k, i := range artRows {
			a[i][total+k] = 1
			basis[i] = total + k
		}
	}

	sf.a = a
	sf.b = b
	sf.c = cFull
	sf.n = total
	sf.nArt = nArt
	sf.basis = basis
	sf.objShift = objShift
	return sf, false
}

// simplex runs the revised (full-tableau) simplex on the current basis with
// the given cost vector (length >= n; artificial columns beyond len(costs)
// are treated as cost 0 — callers pass a full-length vector in phase 1).
func (sf *standardForm) simplex(costs []float64, maxIter int) (Status, int) {
	mRows := len(sf.a)
	totalCols := sf.n + sf.nArt
	costAt := func(j int) float64 {
		if j < len(costs) {
			return costs[j]
		}
		return 0
	}

	// Price out the basis: reduced costs r_j = c_j - c_B' * a_j where a is
	// the current (transformed) tableau. We recompute r from scratch each
	// call and maintain it incrementally across pivots.
	r := make([]float64, totalCols)
	for j := 0; j < totalCols; j++ {
		r[j] = costAt(j)
	}
	for i := 0; i < mRows; i++ {
		cb := costAt(sf.basis[i])
		if cb == 0 {
			continue
		}
		row := sf.a[i]
		for j := 0; j < totalCols; j++ {
			r[j] -= cb * row[j]
		}
	}

	blandAfter := maxIter / 2
	for iter := 0; iter < maxIter; iter++ {
		// Entering column.
		enter := -1
		if iter < blandAfter {
			best := -eps
			for j := 0; j < totalCols; j++ {
				if r[j] < best {
					best = r[j]
					enter = j
				}
			}
		} else {
			for j := 0; j < totalCols; j++ {
				if r[j] < -eps {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return Optimal, iter
		}

		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < mRows; i++ {
			aie := sf.a[i][enter]
			if aie > pivotEps {
				ratio := sf.b[i] / aie
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && (leave < 0 || sf.basis[i] < sf.basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded, iter
		}

		sf.pivot(leave, enter, r, costAt)
	}
	return IterLimit, maxIter
}

// pivot performs a tableau pivot on (row, col) and updates reduced costs.
func (sf *standardForm) pivot(row, col int, r []float64, costAt func(int) float64) {
	mRows := len(sf.a)
	piv := sf.a[row][col]
	prow := sf.a[row]
	inv := 1 / piv
	for j := range prow {
		prow[j] *= inv
	}
	sf.b[row] *= inv
	prow[col] = 1 // fight rounding

	for i := 0; i < mRows; i++ {
		if i == row {
			continue
		}
		f := sf.a[i][col]
		if f == 0 {
			continue
		}
		arow := sf.a[i]
		for j := range arow {
			arow[j] -= f * prow[j]
		}
		arow[col] = 0
		sf.b[i] -= f * sf.b[row]
		if sf.b[i] < 0 && sf.b[i] > -eps {
			sf.b[i] = 0
		}
	}
	f := r[col]
	if f != 0 {
		for j := range r {
			r[j] -= f * prow[j]
		}
		r[col] = 0
	}
	sf.basis[row] = col
}

// phaseObjective evaluates Σ costs over the current basic solution.
func (sf *standardForm) phaseObjective(costs []float64) float64 {
	obj := 0.0
	for i, bj := range sf.basis {
		if bj < len(costs) && costs[bj] != 0 {
			obj += costs[bj] * sf.b[i]
		}
	}
	return obj
}

// driveOutArtificials removes artificial columns after a successful phase 1:
// basic artificials (necessarily at value 0) are pivoted out onto any
// structural/slack column with a usable pivot element; rows where no such
// column exists are rank-deficient (redundant constraints) and are deleted.
// Finally the artificial columns themselves are truncated so they can never
// re-enter in phase 2.
func (sf *standardForm) driveOutArtificials() {
	mRows := len(sf.a)
	for i := 0; i < mRows; i++ {
		if sf.basis[i] < sf.n { // structural or slack
			continue
		}
		// Try to pivot in any structural/slack column with nonzero entry.
		for j := 0; j < sf.n; j++ {
			if math.Abs(sf.a[i][j]) > pivotEps {
				// Manual pivot without reduced-cost bookkeeping (phase-2
				// simplex recomputes reduced costs from scratch).
				piv := sf.a[i][j]
				inv := 1 / piv
				for k := range sf.a[i] {
					sf.a[i][k] *= inv
				}
				sf.b[i] *= inv
				sf.a[i][j] = 1
				for i2 := 0; i2 < mRows; i2++ {
					if i2 == i {
						continue
					}
					f := sf.a[i2][j]
					if f == 0 {
						continue
					}
					for k := range sf.a[i2] {
						sf.a[i2][k] -= f * sf.a[i][k]
					}
					sf.a[i2][j] = 0
					sf.b[i2] -= f * sf.b[i]
				}
				sf.basis[i] = j
				break
			}
		}
	}
	// Delete rows whose artificial could not be pivoted out (redundant).
	keepA := sf.a[:0]
	keepB := sf.b[:0]
	keepBasis := sf.basis[:0]
	for i := 0; i < mRows; i++ {
		if sf.basis[i] >= sf.n {
			continue
		}
		keepA = append(keepA, sf.a[i])
		keepB = append(keepB, sf.b[i])
		keepBasis = append(keepBasis, sf.basis[i])
	}
	sf.a = keepA
	sf.b = keepB
	sf.basis = keepBasis
	// Hard-delete artificial columns so they can never re-enter.
	if sf.nArt > 0 {
		for i := range sf.a {
			sf.a[i] = sf.a[i][:sf.n]
		}
		sf.nArt = 0
	}
}

// extract reads the model-variable values out of the current basic solution.
func (sf *standardForm) extract(nVars int) []float64 {
	val := make([]float64, sf.n+sf.nArt)
	for i, bj := range sf.basis {
		v := sf.b[i]
		if v < 0 && v > -eps {
			v = 0
		}
		val[bj] = v
	}
	x := make([]float64, nVars)
	for j := 0; j < nVars; j++ {
		v := val[sf.posCol[j]]
		if sf.negCol[j] >= 0 {
			v -= val[sf.negCol[j]]
		}
		x[j] = v + sf.lbs[j]
	}
	return x
}
