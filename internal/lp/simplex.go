package lp

import (
	"math"
)

const (
	eps      = 1e-9 // general numeric tolerance
	pivotEps = 1e-7 // minimum magnitude for a pivot element
)

// standardForm is the internal min c'y, Ay = b, y >= 0 representation built
// from a Model. Each model variable maps to either one shifted column
// (finite lb) or a pair of split columns (free variable).
//
// The tableau is stored flat, row-major: row i occupies
// tab[i*stride : i*stride+cols]. stride is fixed at construction (the full
// width including artificial columns) while cols shrinks from n+nArt to n
// when driveOutArtificials truncates the artificial block, so every row
// kernel works on one contiguous slice. All backing slices live in the
// owning Workspace and are reused across solves.
type standardForm struct {
	tab    []float64 // rows × stride flat tableau (active width: cols)
	stride int
	cols   int // active columns: n + nArt, then n after drive-out
	rows   int

	b        []float64
	c        []float64 // phase-2 costs per column (length n)
	n        int       // columns excluding artificials
	nArt     int       // artificial columns (appended at the end)
	basis    []int     // basic column per row
	objShift float64   // constant from lb shifting
	// mapping back to model variables:
	posCol []int // column of the positive part of each model var
	negCol []int // column of the negative part, or -1
	lbs    []float64
	flip   bool // true if the model was Maximize (costs were negated)
}

// row returns the active slice of tableau row i.
func (sf *standardForm) row(i int) []float64 {
	off := i * sf.stride
	return sf.tab[off : off+sf.cols]
}

// scaleRow is the pivot-row kernel: row *= inv over one contiguous slice.
func scaleRow(row []float64, inv float64) {
	for j := range row {
		row[j] *= inv
	}
}

// elimRow is the rank-1 elimination kernel: dst -= f * src over two
// contiguous equal-length slices.
func elimRow(dst, src []float64, f float64) {
	if len(dst) != len(src) {
		panic("lp: elimRow length mismatch")
	}
	for j, s := range src {
		dst[j] -= f * s
	}
}

// Solve optimizes the model with the two-phase simplex method.
func (m *Model) Solve() *Solution {
	return m.SolveWithLimit(0)
}

// SolveWithLimit is Solve with an explicit pivot budget; maxIter <= 0 selects
// an automatic budget proportional to the model size. Scratch storage comes
// from the package workspace pool, so repeated solves allocate only the
// returned Solution.
func (m *Model) SolveWithLimit(maxIter int) *Solution {
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	return m.SolveWithLimitWorkspace(ws, maxIter)
}

// SolveWithWorkspace is Solve reusing an explicit workspace arena.
func (m *Model) SolveWithWorkspace(ws *Workspace) *Solution {
	return m.SolveWithLimitWorkspace(ws, 0)
}

// SolveWithLimitWorkspace solves the model with ws owning every piece of
// scratch storage (tableau, basis, reduced costs). The returned Solution and
// its X are freshly allocated and safe to retain; everything else is reused
// by the next solve through ws.
func (m *Model) SolveWithLimitWorkspace(ws *Workspace, maxIter int) *Solution {
	sf, infeasible := m.toStandardForm(ws, true)
	if infeasible {
		return &Solution{Status: Infeasible, X: make([]float64, len(m.vars))}
	}
	if maxIter <= 0 {
		size := sf.rows + sf.n
		maxIter = 2000 + 40*size
	}
	iters := 0

	// Phase 1: minimize the sum of artificial variables.
	if sf.nArt > 0 {
		phase1 := ws.costs(sf.n + sf.nArt)
		for j := sf.n; j < sf.n+sf.nArt; j++ {
			phase1[j] = 1
		}
		st, it := sf.simplex(phase1, maxIter, ws)
		iters += it
		if st == IterLimit {
			return &Solution{Status: IterLimit, Iterations: iters, X: make([]float64, len(m.vars))}
		}
		if st == Unbounded {
			// Phase 1 is bounded below by 0; an unbounded report signals
			// numerical degeneracy, which we treat as infeasible.
			return &Solution{Status: Infeasible, Iterations: iters, X: make([]float64, len(m.vars))}
		}
		if sf.phaseObjective(phase1) > 1e-7 {
			return &Solution{Status: Infeasible, Iterations: iters, X: make([]float64, len(m.vars))}
		}
		sf.driveOutArtificials()
	}

	// Phase 2: minimize original costs.
	st, it := sf.simplex(sf.c, maxIter, ws)
	iters += it
	switch st {
	case Unbounded:
		return &Solution{Status: Unbounded, Iterations: iters, X: make([]float64, len(m.vars))}
	case IterLimit:
		return &Solution{Status: IterLimit, Iterations: iters, X: make([]float64, len(m.vars))}
	}

	return sf.solution(m, iters, ws)
}

// solution extracts the optimum into a fresh Solution.
func (sf *standardForm) solution(m *Model, iters int, ws *Workspace) *Solution {
	x := sf.extract(len(m.vars), ws)
	obj := 0.0
	for j := range m.vars {
		obj += m.vars[j].obj * x[j]
	}
	return &Solution{Status: Optimal, Objective: obj, X: x, Iterations: iters}
}

// toStandardForm converts the model into ws's arena. The bool result reports
// trivial infeasibility detected during conversion (e.g., empty constraint
// with an unsatisfiable rhs). When artificials is false the conversion stops
// before choosing an initial basis: no artificial columns are created and
// basis is left unassigned (-1), which is the entry state for a warm start.
func (m *Model) toStandardForm(ws *Workspace, artificials bool) (*standardForm, bool) {
	nv := len(m.vars)
	sf := &ws.sf
	sf.posCol = grow(sf.posCol, nv)
	sf.negCol = grow(sf.negCol, nv)
	sf.lbs = growF(sf.lbs, nv)
	sf.flip = m.sense == Maximize
	sf.objShift = 0

	// Assign structural columns.
	col := 0
	ubV := ws.ubV[:0]
	ubW := ws.ubW[:0]
	for j := range m.vars {
		v := &m.vars[j]
		lb, ub := v.lb, v.ub
		switch {
		case math.IsInf(lb, -1):
			sf.posCol[j] = col
			sf.negCol[j] = col + 1
			sf.lbs[j] = 0
			col += 2
			if !math.IsInf(ub, 1) {
				ubV = append(ubV, j)
				ubW = append(ubW, ub)
			}
		default:
			sf.posCol[j] = col
			sf.negCol[j] = -1
			sf.lbs[j] = lb
			col++
			if !math.IsInf(ub, 1) {
				w := ub - lb
				if w < 0 {
					w = 0
				}
				ubV = append(ubV, j)
				ubW = append(ubW, w)
			}
		}
	}
	ws.ubV, ws.ubW = ubV, ubW
	nStruct := col

	// Count rows: model constraints + finite upper-bound rows.
	rows := len(m.cons) + len(ubV)
	sf.rows = rows
	b := growF(sf.b, rows)
	rels := ws.growRels(rows)

	// Objective in min sense, adjusted for lb shifts. c is filled to the full
	// slack-extended width below once nSlack is known.
	objShift := 0.0

	// First pass: adjusted right-hand sides, relations, and trivial
	// infeasibility — everything needed to size the tableau (slack and
	// artificial counts) before a single coefficient is written.
	for i := range m.cons {
		con := &m.cons[i]
		rhs := con.rhs
		for _, t := range con.terms {
			rhs -= t.Coeff * sf.lbs[t.Var]
		}
		b[i] = rhs
		rels[i] = con.rel
		if len(con.terms) == 0 {
			switch con.rel {
			case LE:
				if rhs < -eps {
					return nil, true
				}
			case GE:
				if rhs > eps {
					return nil, true
				}
			case EQ:
				if math.Abs(rhs) > eps {
					return nil, true
				}
			}
		}
	}
	for k := range ubV {
		i := len(m.cons) + k
		b[i] = ubW[k]
		rels[i] = LE
	}

	// Slack/surplus layout and, when requested, the artificial count: a row
	// keeps a slack basis iff its slack coefficient is +1 after the b >= 0
	// normalization, i.e. (LE, b >= 0) or (GE, b < 0). EQ rows and the rest
	// need an artificial.
	slackCol := ws.growSlack(rows)
	nSlack := 0
	for i := 0; i < rows; i++ {
		if rels[i] == EQ {
			slackCol[i] = -1
			continue
		}
		slackCol[i] = nStruct + nSlack
		nSlack++
	}
	total := nStruct + nSlack
	nArt := 0
	artRows := ws.artRows[:0]
	if artificials {
		for i := 0; i < rows; i++ {
			slackPlus := (rels[i] == LE) == (b[i] >= 0)
			if slackCol[i] < 0 || !slackPlus {
				artRows = append(artRows, i)
			}
		}
		nArt = len(artRows)
	}
	ws.artRows = artRows

	// Allocate the flat tableau at full final width and zero it.
	stride := total + nArt
	sf.stride = stride
	sf.cols = stride
	sf.n = total
	sf.nArt = nArt
	sf.tab = growF(sf.tab, rows*stride)
	clearF(sf.tab[:rows*stride])

	// Costs.
	c := growF(sf.c, total)
	clearF(c)
	for j := range m.vars {
		coef := m.vars[j].obj
		if sf.flip {
			coef = -coef
		}
		c[sf.posCol[j]] += coef
		if sf.negCol[j] >= 0 {
			c[sf.negCol[j]] -= coef
		}
		objShift += coef * sf.lbs[j]
	}
	sf.c = c
	sf.objShift = objShift

	// Structural coefficients.
	for i := range m.cons {
		row := sf.tab[i*stride : i*stride+stride]
		for _, t := range m.cons[i].terms {
			row[sf.posCol[t.Var]] += t.Coeff
			if sf.negCol[t.Var] >= 0 {
				row[sf.negCol[t.Var]] -= t.Coeff
			}
		}
	}
	for k, vj := range ubV {
		i := len(m.cons) + k
		row := sf.tab[i*stride : i*stride+stride]
		row[sf.posCol[vj]] = 1
		if sf.negCol[vj] >= 0 {
			row[sf.negCol[vj]] = -1
		}
	}

	// Slack/surplus coefficients.
	for i := 0; i < rows; i++ {
		if sc := slackCol[i]; sc >= 0 {
			if rels[i] == LE {
				sf.tab[i*stride+sc] = 1
			} else {
				sf.tab[i*stride+sc] = -1
			}
		}
	}

	// Normalize to b >= 0 (structural + slack columns only; the artificial
	// block is written after normalization, exactly like the seed solver).
	for i := 0; i < rows; i++ {
		if b[i] < 0 {
			row := sf.tab[i*stride : i*stride+total]
			for j := range row {
				row[j] = -row[j]
			}
			b[i] = -b[i]
		}
	}
	sf.b = b

	// Initial basis: slack where usable, fresh artificials elsewhere.
	basis := grow(sf.basis, rows)
	if artificials {
		for i := 0; i < rows; i++ {
			sc := slackCol[i]
			if sc >= 0 && sf.tab[i*stride+sc] > 0.5 {
				basis[i] = sc
			} else {
				basis[i] = -1
			}
		}
		for k, i := range artRows {
			sf.tab[i*stride+total+k] = 1
			basis[i] = total + k
		}
	} else {
		for i := 0; i < rows; i++ {
			basis[i] = -1
		}
	}
	sf.basis = basis
	return sf, false
}

// simplex runs the primal simplex on the current basis with the given cost
// vector (length >= n; artificial columns beyond len(costs) are treated as
// cost 0 — callers pass a full-length vector in phase 1).
func (sf *standardForm) simplex(costs []float64, maxIter int, ws *Workspace) (Status, int) {
	mRows := sf.rows
	totalCols := sf.cols
	costAt := func(j int) float64 {
		if j < len(costs) {
			return costs[j]
		}
		return 0
	}

	// Price out the basis: reduced costs r_j = c_j - c_B' * a_j where a is
	// the current (transformed) tableau. We recompute r from scratch each
	// call and maintain it incrementally across pivots.
	r := ws.reduced(totalCols)
	for j := 0; j < totalCols; j++ {
		r[j] = costAt(j)
	}
	for i := 0; i < mRows; i++ {
		cb := costAt(sf.basis[i])
		if cb == 0 {
			continue
		}
		elimRow(r, sf.row(i), cb)
	}

	blandAfter := maxIter / 2
	for iter := 0; iter < maxIter; iter++ {
		// Entering column.
		enter := -1
		if iter < blandAfter {
			best := -eps
			for j := 0; j < totalCols; j++ {
				if r[j] < best {
					best = r[j]
					enter = j
				}
			}
		} else {
			for j := 0; j < totalCols; j++ {
				if r[j] < -eps {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return Optimal, iter
		}

		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < mRows; i++ {
			aie := sf.tab[i*sf.stride+enter]
			if aie > pivotEps {
				ratio := sf.b[i] / aie
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && (leave < 0 || sf.basis[i] < sf.basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded, iter
		}

		sf.pivot(leave, enter, r)
	}
	return IterLimit, maxIter
}

// pivot performs a tableau pivot on (row, col) and updates reduced costs r
// (pass nil to skip the bookkeeping). The body is the two kernels: scale the
// pivot row, then rank-1-eliminate every other row.
func (sf *standardForm) pivot(row, col int, r []float64) {
	mRows := sf.rows
	prow := sf.row(row)
	piv := prow[col]
	inv := 1 / piv
	scaleRow(prow, inv)
	sf.b[row] *= inv
	prow[col] = 1 // fight rounding

	for i := 0; i < mRows; i++ {
		if i == row {
			continue
		}
		arow := sf.row(i)
		f := arow[col]
		if f == 0 {
			continue
		}
		elimRow(arow, prow, f)
		arow[col] = 0
		sf.b[i] -= f * sf.b[row]
		if sf.b[i] < 0 && sf.b[i] > -eps {
			sf.b[i] = 0
		}
	}
	if r != nil {
		f := r[col]
		if f != 0 {
			elimRow(r, prow, f)
			r[col] = 0
		}
	}
	sf.basis[row] = col
}

// phaseObjective evaluates Σ costs over the current basic solution.
func (sf *standardForm) phaseObjective(costs []float64) float64 {
	obj := 0.0
	for i, bj := range sf.basis[:sf.rows] {
		if bj < len(costs) && costs[bj] != 0 {
			obj += costs[bj] * sf.b[i]
		}
	}
	return obj
}

// driveOutArtificials removes artificial columns after a successful phase 1:
// basic artificials (necessarily at value 0) are pivoted out onto any
// structural/slack column with a usable pivot element; rows where no such
// column exists are rank-deficient (redundant constraints) and are deleted.
// Finally the artificial block is truncated (cols shrinks to n) so the
// columns can never re-enter in phase 2.
func (sf *standardForm) driveOutArtificials() {
	mRows := sf.rows
	for i := 0; i < mRows; i++ {
		if sf.basis[i] < sf.n { // structural or slack
			continue
		}
		// Try to pivot in any structural/slack column with nonzero entry.
		irow := sf.row(i)
		for j := 0; j < sf.n; j++ {
			if math.Abs(irow[j]) > pivotEps {
				// Manual pivot without reduced-cost bookkeeping (phase-2
				// simplex recomputes reduced costs from scratch).
				piv := irow[j]
				inv := 1 / piv
				scaleRow(irow, inv)
				sf.b[i] *= inv
				irow[j] = 1
				for i2 := 0; i2 < mRows; i2++ {
					if i2 == i {
						continue
					}
					arow := sf.row(i2)
					f := arow[j]
					if f == 0 {
						continue
					}
					elimRow(arow, irow, f)
					arow[j] = 0
					sf.b[i2] -= f * sf.b[i]
				}
				sf.basis[i] = j
				break
			}
		}
	}
	// Delete rows whose artificial could not be pivoted out (redundant),
	// compacting the flat tableau in place (same row order as the seed's
	// slice-of-rows filtering).
	keep := 0
	for i := 0; i < mRows; i++ {
		if sf.basis[i] >= sf.n {
			continue
		}
		if keep != i {
			copy(sf.tab[keep*sf.stride:keep*sf.stride+sf.cols], sf.tab[i*sf.stride:i*sf.stride+sf.cols])
			sf.b[keep] = sf.b[i]
			sf.basis[keep] = sf.basis[i]
		}
		keep++
	}
	sf.rows = keep
	// Truncate the artificial block so it can never re-enter.
	sf.cols = sf.n
	sf.nArt = 0
}

// extract reads the model-variable values out of the current basic solution.
func (sf *standardForm) extract(nVars int, ws *Workspace) []float64 {
	val := ws.values(sf.n + sf.nArt)
	for i, bj := range sf.basis[:sf.rows] {
		v := sf.b[i]
		if v < 0 && v > -eps {
			v = 0
		}
		val[bj] = v
	}
	x := make([]float64, nVars)
	for j := 0; j < nVars; j++ {
		v := val[sf.posCol[j]]
		if sf.negCol[j] >= 0 {
			v -= val[sf.negCol[j]]
		}
		x[j] = v + sf.lbs[j]
	}
	return x
}
