package lp

import (
	"math"
)

const (
	eps      = 1e-9 // general numeric tolerance
	pivotEps = 1e-7 // minimum magnitude for a pivot element
)

// Solve optimizes the model with the two-phase revised simplex method.
func (m *Model) Solve() *Solution {
	return m.SolveWithLimit(0)
}

// SolveWithLimit is Solve with an explicit pivot budget; maxIter <= 0 selects
// an automatic budget proportional to the model size. Scratch storage comes
// from the package workspace pool, so repeated solves allocate only the
// returned Solution.
func (m *Model) SolveWithLimit(maxIter int) *Solution {
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	return m.SolveWithLimitWorkspace(ws, maxIter)
}

// SolveWithWorkspace is Solve reusing an explicit workspace arena.
func (m *Model) SolveWithWorkspace(ws *Workspace) *Solution {
	return m.SolveWithLimitWorkspace(ws, 0)
}

// SolveWithLimitWorkspace solves the model with ws owning every piece of
// scratch storage (sparse matrix, basis factorization, pricing buffers). The
// returned Solution and its X are freshly allocated and safe to retain;
// everything else is reused by the next solve through ws.
func (m *Model) SolveWithLimitWorkspace(ws *Workspace, maxIter int) *Solution {
	sf, infeasible := m.toStandardForm(ws, true)
	if infeasible {
		return &Solution{Status: Infeasible, X: make([]float64, len(m.vars))}
	}
	if maxIter <= 0 {
		size := sf.rows + sf.n
		maxIter = 2000 + 40*size
	}
	iters := 0

	// The initial basis (slacks + artificials) is an identity matrix, so
	// this first factorization cannot fail; it is excluded from the
	// refresh count.
	f := &ws.fact
	if !f.factorize(sf, 1e-11) {
		return &Solution{Status: Infeasible, X: make([]float64, len(m.vars))}
	}
	f.refreshes = 0
	copy(sf.beta, sf.rhs[:sf.rows])

	// Phase 1: minimize the sum of artificial variables.
	if sf.nArt > 0 {
		phase1 := ws.costs(sf.n + sf.nArt)
		for j := sf.n; j < sf.n+sf.nArt; j++ {
			phase1[j] = 1
		}
		st, it := sf.simplex(f, ws, phase1, maxIter, true)
		iters += it
		if st == IterLimit {
			return &Solution{Status: IterLimit, Iterations: iters, EtaRefreshes: f.refreshes, X: make([]float64, len(m.vars))}
		}
		if st == Unbounded {
			// Phase 1 is bounded below by 0; an unbounded report signals
			// numerical degeneracy, which we treat as infeasible.
			return &Solution{Status: Infeasible, Iterations: iters, EtaRefreshes: f.refreshes, X: make([]float64, len(m.vars))}
		}
		if sf.phaseObjective(phase1) > 1e-7 {
			return &Solution{Status: Infeasible, Iterations: iters, EtaRefreshes: f.refreshes, X: make([]float64, len(m.vars))}
		}
		sf.driveOutArtificials(f, ws)
	}

	// Phase 2: minimize original costs.
	st, it := sf.simplex(f, ws, sf.c, maxIter, false)
	iters += it
	switch st {
	case Unbounded:
		return &Solution{Status: Unbounded, Iterations: iters, EtaRefreshes: f.refreshes, X: make([]float64, len(m.vars))}
	case IterLimit:
		return &Solution{Status: IterLimit, Iterations: iters, EtaRefreshes: f.refreshes, X: make([]float64, len(m.vars))}
	}

	return sf.solution(m, iters, f, ws)
}

// solution extracts the optimum into a fresh Solution.
func (sf *standardForm) solution(m *Model, iters int, f *basisFactor, ws *Workspace) *Solution {
	x := sf.extract(len(m.vars), ws)
	obj := 0.0
	for j := range m.vars {
		obj += m.vars[j].obj * x[j]
	}
	return &Solution{Status: Optimal, Objective: obj, X: x, Iterations: iters, EtaRefreshes: f.refreshes}
}

// simplex runs the revised primal simplex on the current basis and
// factorization with the given cost vector (length >= n; artificial columns
// beyond len(costs) are treated as cost 0 — callers pass a full-length
// vector in phase 1). allowArt permits artificial columns to enter (phase 1
// only); with it false, artificials stuck in the basis at value zero are
// forced out on degenerate pivots so they can never regrow.
func (sf *standardForm) simplex(f *basisFactor, ws *Workspace, costs []float64, maxIter int, allowArt bool) (Status, int) {
	mRows := sf.rows
	nCols := sf.n + sf.nArt
	if !allowArt {
		nCols = sf.n
	}
	costAt := func(j int) float64 {
		if j < len(costs) {
			return costs[j]
		}
		return 0
	}
	y := ws.duals(mRows)
	d := ws.spike(mRows)

	blandAfter := maxIter / 2
	for iter := 0; iter < maxIter; iter++ {
		// Refresh the factorization when the eta chain has grown stale, and
		// recompute beta from scratch to shed accumulated drift. A failed
		// refresh means the true basis matrix is singular at tolerance —
		// a drifted eta-chain spike can admit a pivot the exact basis does
		// not support. factorize leaves the active factors intact in that
		// case, so continuing on the existing chain is exactly the math of
		// not having attempted the refresh; subsequent pivots move the
		// basis and a backed-off retry (see needRefresh) recovers.
		if f.needRefresh() {
			if f.factorize(sf, 1e-11) {
				sf.refreshBeta(f)
			}
		}

		// Price: duals y = B⁻ᵀc_B, then reduced costs r_j = c_j − y·a_j per
		// sparse column. Dantzig picks the most negative (ties to the lowest
		// column, same as the dense solver); Bland takes over late to
		// guarantee termination.
		for i := 0; i < mRows; i++ {
			y[i] = costAt(sf.basis[i])
		}
		f.btran(y)
		enter := -1
		if iter < blandAfter {
			best := -eps
			for j := 0; j < nCols; j++ {
				if sf.inBasis[j] {
					continue
				}
				if r := costAt(j) - sf.colDot(j, y); r < best {
					best = r
					enter = j
				}
			}
		} else {
			for j := 0; j < nCols; j++ {
				if sf.inBasis[j] {
					continue
				}
				if costAt(j)-sf.colDot(j, y) < -eps {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return Optimal, iter
		}

		// Spike d = B⁻¹a_enter, then the ratio test (lowest basic column on
		// ties, like the dense solver).
		sf.scatterCol(enter, d)
		f.ftran(d)
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < mRows; i++ {
			di := d[i]
			ratio := math.Inf(1)
			switch {
			case di > pivotEps:
				ratio = sf.beta[i] / di
			case !allowArt && sf.basis[i] >= sf.n && di < -pivotEps:
				// Basic artificial (value 0, phase 2): it must not grow, so
				// it leaves on a degenerate pivot even with a negative spike
				// entry.
				ratio = sf.beta[i] / -di
			default:
				continue
			}
			if ratio < bestRatio-eps ||
				(ratio < bestRatio+eps && (leave < 0 || sf.basis[i] < sf.basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave < 0 {
			return Unbounded, iter
		}

		sf.pivot(f, leave, enter, d)
	}
	return IterLimit, maxIter
}

// pivot swaps column enter into basis row leave, updates beta by the pivot
// step θ = β_r/d_r, and extends the eta file (refactorizing instead when the
// spike pivot is too small for a stable eta).
func (sf *standardForm) pivot(f *basisFactor, leave, enter int, d []float64) {
	theta := sf.beta[leave] / d[leave]
	for i := 0; i < sf.rows; i++ {
		if i == leave || d[i] == 0 {
			continue
		}
		sf.beta[i] -= theta * d[i]
		if sf.beta[i] < 0 && sf.beta[i] > -eps {
			sf.beta[i] = 0
		}
	}
	if theta < 0 && theta > -eps {
		theta = 0
	}
	sf.beta[leave] = theta
	sf.inBasis[sf.basis[leave]] = false
	sf.inBasis[enter] = true
	sf.basis[leave] = enter
	// update cannot fail here: the ratio test only admits leave rows with
	// |d[leave]| > pivotEps, the exact threshold update enforces. The
	// refactorization fallback is belt-and-braces for that invariant.
	if !f.update(d, leave) {
		if f.factorize(sf, 1e-11) {
			sf.refreshBeta(f)
		}
	}
}

// refreshBeta recomputes the basic values from the pristine rhs through the
// current factorization, clamping rounding-noise negatives exactly like the
// incremental update does.
func (sf *standardForm) refreshBeta(f *basisFactor) {
	copy(sf.beta, sf.rhs[:sf.rows])
	f.ftran(sf.beta)
	for i := range sf.beta[:sf.rows] {
		if sf.beta[i] < 0 && sf.beta[i] > -eps {
			sf.beta[i] = 0
		}
	}
}

// phaseObjective evaluates Σ costs over the current basic solution.
func (sf *standardForm) phaseObjective(costs []float64) float64 {
	obj := 0.0
	for i, bj := range sf.basis[:sf.rows] {
		if bj < len(costs) && costs[bj] != 0 {
			obj += costs[bj] * sf.beta[i]
		}
	}
	return obj
}

// driveOutArtificials pivots basic artificials (necessarily at value ~0
// after a successful phase 1) out of the basis: for each such row the first
// nonbasic structural/slack column with a usable pivot element in that row
// enters on a degenerate pivot. Rows where no such column exists are
// rank-deficient (redundant constraints); their artificial stays basic at
// zero, which is harmless — every phase-2 spike is zero in a redundant row,
// so the artificial can never change value (the ratio-test guard in simplex
// is belt and braces).
func (sf *standardForm) driveOutArtificials(f *basisFactor, ws *Workspace) {
	var d []float64
	for i := 0; i < sf.rows; i++ {
		if sf.basis[i] < sf.n {
			continue
		}
		// rho = row i of B⁻¹; a column qualifies iff rho·a_j is a usable
		// pivot (that dot is exactly the spike entry d_i it would have).
		rho := ws.duals(sf.rows)
		clearF(rho)
		rho[i] = 1
		f.btran(rho)
		for j := 0; j < sf.n; j++ {
			if sf.inBasis[j] || math.Abs(sf.colDot(j, rho)) <= pivotEps {
				continue
			}
			if d == nil {
				d = ws.spike(sf.rows)
			}
			sf.scatterCol(j, d)
			f.ftran(d)
			if math.Abs(d[i]) <= pivotEps {
				continue // rounding disagreement; try the next column
			}
			sf.pivot(f, i, j, d)
			break
		}
	}
}

// extract reads the model-variable values out of the current basic solution.
func (sf *standardForm) extract(nVars int, ws *Workspace) []float64 {
	val := ws.values(sf.n + sf.nArt)
	for i, bj := range sf.basis[:sf.rows] {
		v := sf.beta[i]
		if v < 0 && v > -eps {
			v = 0
		}
		val[bj] = v
	}
	x := make([]float64, nVars)
	for j := 0; j < nVars; j++ {
		v := val[sf.posCol[j]]
		if sf.negCol[j] >= 0 {
			v -= val[sf.negCol[j]]
		}
		x[j] = v + sf.lbs[j]
	}
	return x
}
