package lp_test

import (
	"fmt"
	"math"

	"repro/internal/lp"
)

// A production-planning toy: maximize 3x + 5y subject to machine-hour
// limits. The optimum is the classic (2, 6) vertex.
func ExampleModel_Solve() {
	m := lp.NewModel(lp.Maximize)
	x := m.AddVar(0, math.Inf(1), 3, "x")
	y := m.AddVar(0, math.Inf(1), 5, "y")
	m.AddConstr([]lp.Term{{Var: x, Coeff: 1}}, lp.LE, 4, "machine1")
	m.AddConstr([]lp.Term{{Var: y, Coeff: 2}}, lp.LE, 12, "machine2")
	m.AddConstr([]lp.Term{{Var: x, Coeff: 3}, {Var: y, Coeff: 2}}, lp.LE, 18, "machine3")

	sol := m.Solve()
	fmt.Printf("%v objective=%.0f x=%.0f y=%.0f\n", sol.Status, sol.Objective, sol.X[x], sol.X[y])
	// Output: optimal objective=36 x=2 y=6
}

func ExampleModel_Solve_infeasible() {
	m := lp.NewModel(lp.Minimize)
	x := m.AddVar(0, 1, 1, "x")
	m.AddConstr([]lp.Term{{Var: x, Coeff: 1}}, lp.GE, 2, "impossible")
	fmt.Println(m.Solve().Status)
	// Output: infeasible
}
