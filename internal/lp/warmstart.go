package lp

// FinalBasis copies the basis left behind by the last solve that went
// through ws (one basic column index per row), appending into dst. The
// result identifies an optimal basis that SolveWarm can install into a
// *similar* model — in branch-and-bound, a child that only changed finite
// variable bounds, which preserves the standard-form shape (same rows, same
// columns) and perturbs only the right-hand side.
func (ws *Workspace) FinalBasis(dst []int) []int {
	sf := &ws.sf
	return append(dst[:0], sf.basis[:sf.rows]...)
}

// SolveWarm solves the model by installing a previously captured basis and
// running phase 2 directly, skipping phase 1 entirely. The second result is
// false when the warm start could not be attempted — the basis does not
// match the model's standard-form shape, references an artificial column
// (the parent had a rank-deficient row), its column set is singular, or the
// resulting basic point is not primal feasible — in which case the caller
// must fall back to the cold two-phase SolveWithLimitWorkspace. When it is
// true, the returned Solution is exactly what the cold path would conclude
// for Optimal/Unbounded outcomes (the optimal X may differ between the two
// paths only when the LP has multiple optima).
func (m *Model) SolveWarm(ws *Workspace, basis []int, maxIter int) (*Solution, bool) {
	sf, infeasible := m.toStandardForm(ws, false)
	if infeasible {
		return nil, false
	}
	if maxIter <= 0 {
		size := sf.rows + sf.n
		maxIter = 2000 + 40*size
	}
	if len(basis) != sf.rows {
		return nil, false
	}
	for i, c := range basis {
		if c < 0 || c >= sf.n {
			return nil, false
		}
		for j := 0; j < i; j++ { // rows stay small; O(rows²) beats a map
			if basis[j] == c {
				return nil, false
			}
		}
	}

	// Install the basis by factorizing its column set directly; a failed
	// factorization means the claimed basis matrix is singular for this
	// model.
	copy(sf.basis[:sf.rows], basis)
	for _, c := range basis {
		sf.inBasis[c] = true
	}
	f := &ws.fact
	if !f.factorize(sf, pivotEps) {
		return nil, false
	}
	f.refreshes = 0

	// The installed basic point is B⁻¹b; primal simplex needs it
	// non-negative. Tiny negatives are rounding noise and are clamped the
	// same way pivot does; anything beyond eps means the parent basis is
	// infeasible for the child and the cold path must decide.
	copy(sf.beta, sf.rhs[:sf.rows])
	f.ftran(sf.beta)
	for i := 0; i < sf.rows; i++ {
		if sf.beta[i] < 0 {
			if sf.beta[i] < -eps {
				return nil, false
			}
			sf.beta[i] = 0
		}
	}

	st, iters := sf.simplex(f, ws, sf.c, maxIter, false)
	switch st {
	case Unbounded:
		return &Solution{Status: Unbounded, Iterations: iters, EtaRefreshes: f.refreshes, X: make([]float64, len(m.vars))}, true
	case IterLimit:
		return &Solution{Status: IterLimit, Iterations: iters, EtaRefreshes: f.refreshes, X: make([]float64, len(m.vars))}, true
	}
	return sf.solution(m, iters, f, ws), true
}
