package lp

// FinalBasis copies the basis left behind by the last solve that went
// through ws (one basic column index per surviving tableau row), appending
// into dst. The result identifies an optimal basis that SolveWarm can
// install into a *similar* model — in branch-and-bound, a child that only
// changed finite variable bounds, which preserves the standard-form shape
// (same rows, same columns) and perturbs only the right-hand side.
func (ws *Workspace) FinalBasis(dst []int) []int {
	sf := &ws.sf
	return append(dst[:0], sf.basis[:sf.rows]...)
}

// SolveWarm solves the model by installing a previously captured basis and
// running phase 2 directly, skipping phase 1 entirely. The second result is
// false when the warm start could not be attempted — the basis does not
// match the model's standard-form shape, its column set is singular, or the
// resulting basic point is not primal feasible — in which case the caller
// must fall back to the cold two-phase SolveWithLimitWorkspace. When it is
// true, the returned Solution is exactly what the cold path would conclude
// for Optimal/Unbounded outcomes (the optimal X may differ between the two
// paths only when the LP has multiple optima).
func (m *Model) SolveWarm(ws *Workspace, basis []int, maxIter int) (*Solution, bool) {
	sf, infeasible := m.toStandardForm(ws, false)
	if infeasible {
		return nil, false
	}
	if maxIter <= 0 {
		size := sf.rows + sf.n
		maxIter = 2000 + 40*size
	}
	if len(basis) != sf.rows {
		return nil, false
	}
	for i, c := range basis {
		if c < 0 || c >= sf.n {
			return nil, false
		}
		for j := 0; j < i; j++ { // rows stay small; O(rows²) beats a map
			if basis[j] == c {
				return nil, false
			}
		}
	}

	// Install the basis with Gaussian pivots: each basis column is pivoted
	// into the not-yet-claimed row where it has the largest magnitude
	// (partial pivoting). A column with no usable pivot means the claimed
	// basis matrix is singular for this model.
	used := ws.rowUsed(sf.rows)
	for _, col := range basis {
		best, bestAbs := -1, pivotEps
		for i := 0; i < sf.rows; i++ {
			if used[i] {
				continue
			}
			a := sf.tab[i*sf.stride+col]
			if a < 0 {
				a = -a
			}
			if a > bestAbs {
				bestAbs = a
				best = i
			}
		}
		if best < 0 {
			return nil, false
		}
		sf.pivot(best, col, nil)
		used[best] = true
	}

	// The installed basic point is B⁻¹b; primal simplex needs it
	// non-negative. Tiny negatives are rounding noise and are clamped the
	// same way pivot does; anything beyond eps means the parent basis is
	// infeasible for the child and the cold path must decide.
	for i := 0; i < sf.rows; i++ {
		if sf.b[i] < 0 {
			if sf.b[i] < -eps {
				return nil, false
			}
			sf.b[i] = 0
		}
	}

	st, iters := sf.simplex(sf.c, maxIter, ws)
	switch st {
	case Unbounded:
		return &Solution{Status: Unbounded, Iterations: iters, X: make([]float64, len(m.vars))}, true
	case IterLimit:
		return &Solution{Status: IterLimit, Iterations: iters, X: make([]float64, len(m.vars))}, true
	}
	return sf.solution(m, iters, ws), true
}
